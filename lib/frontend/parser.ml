open Taco_ir
open Taco_ir.Var
module Diag = Taco_support.Diag

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Number of float
  | Lparen
  | Rparen
  | Comma
  | Plus
  | Minus
  | Star
  | Slash
  | Equals
  | Plus_equals
  | Eof

type lexed = { tok : token; pos : int }

(* Internal control flow only; every entry point converts to Diag. *)
exception Parse_error of { pos : int; code : string; msg : string }

let error ?(code = "E_PARSE_SYNTAX") pos fmt =
  Printf.ksprintf (fun s -> raise (Parse_error { pos; code; msg = s })) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let lex (src : string) : lexed list =
  let n = String.length src in
  let toks = ref [] in
  let push tok pos = toks := { tok; pos } :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (Ident (String.sub src start (!i - start))) pos
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      while
        !i < n
        && (is_digit src.[!i] || src.[!i] = '.' || src.[!i] = 'e' || src.[!i] = 'E'
           || ((src.[!i] = '+' || src.[!i] = '-')
              && !i > start
              && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E')))
      do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      match float_of_string_opt text with
      | Some v -> push (Number v) pos
      | None -> error ~code:"E_PARSE_NUMBER" pos "malformed number %s" text
    end
    else begin
      (match c with
      | '(' -> push Lparen pos
      | ')' -> push Rparen pos
      | ',' -> push Comma pos
      | '+' ->
          if !i + 1 < n && src.[!i + 1] = '=' then begin
            push Plus_equals pos;
            incr i
          end
          else push Plus pos
      | '-' -> push Minus pos
      | '*' -> push Star pos
      | '/' -> push Slash pos
      | '=' -> push Equals pos
      | _ -> error ~code:"E_PARSE_CHAR" pos "unexpected character %c" c);
      incr i
    end
  done;
  push Eof n;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : lexed list }

let peek s = match s.toks with [] -> { tok = Eof; pos = 0 } | t :: _ -> t

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let expect s tok what =
  let t = peek s in
  if t.tok = tok then advance s else error t.pos "expected %s" what

let lookup tensors pos name =
  match List.assoc_opt name tensors with
  | Some tv -> tv
  | None ->
      error ~code:"E_PARSE_UNKNOWN_TENSOR" pos
        "unknown tensor %s (not in the environment)" name

(* Parse [name] or [name(i,j,…)], resolving the tensor and checking its
   order; returns the components so callers need no re-matching. *)
let parse_access_parts tensors s name pos =
  if (peek s).tok = Lparen then begin
    advance s;
    let rec indices acc =
      match (peek s).tok with
      | Ident id ->
          advance s;
          let acc = Index_var.make id :: acc in
          if (peek s).tok = Comma then begin
            advance s;
            indices acc
          end
          else acc
      | _ -> error (peek s).pos "expected an index variable"
    in
    let idx = List.rev (indices []) in
    expect s Rparen "')'";
    let tv = lookup tensors pos name in
    if Tensor_var.order tv <> List.length idx then
      error ~code:"E_PARSE_ARITY" pos
        "tensor %s has order %d but %d indices were given" name
        (Tensor_var.order tv) (List.length idx);
    (tv, idx)
  end
  else begin
    let tv = lookup tensors pos name in
    if Tensor_var.order tv <> 0 then
      error ~code:"E_PARSE_ARITY" pos "tensor %s has order %d; indices required"
        name (Tensor_var.order tv);
    (tv, [])
  end

let parse_access tensors s name pos =
  let tv, idx = parse_access_parts tensors s name pos in
  Index_notation.Access (tv, idx)

let rec parse_expr_prec tensors s =
  let lhs = ref (parse_term tensors s) in
  let continue_ = ref true in
  while !continue_ do
    match (peek s).tok with
    | Plus ->
        advance s;
        lhs := Index_notation.Add (!lhs, parse_term tensors s)
    | Minus ->
        advance s;
        lhs := Index_notation.Sub (!lhs, parse_term tensors s)
    | _ -> continue_ := false
  done;
  !lhs

and parse_term tensors s =
  let lhs = ref (parse_factor tensors s) in
  let continue_ = ref true in
  while !continue_ do
    match (peek s).tok with
    | Star ->
        advance s;
        lhs := Index_notation.Mul (!lhs, parse_factor tensors s)
    | Slash ->
        advance s;
        lhs := Index_notation.Div (!lhs, parse_factor tensors s)
    | _ -> continue_ := false
  done;
  !lhs

and parse_factor tensors s =
  let t = peek s in
  match t.tok with
  | Number v ->
      advance s;
      Index_notation.Literal v
  | Minus ->
      advance s;
      Index_notation.Neg (parse_factor tensors s)
  | Lparen ->
      advance s;
      let e = parse_expr_prec tensors s in
      expect s Rparen "')'";
      e
  | Ident "sum" ->
      advance s;
      expect s Lparen "'(' after sum";
      let v =
        match (peek s).tok with
        | Ident id ->
            advance s;
            Index_var.make id
        | _ -> error (peek s).pos "expected an index variable after sum("
      in
      expect s Comma "','";
      let e = parse_expr_prec tensors s in
      expect s Rparen "')'";
      Index_notation.Sum (v, e)
  | Ident name ->
      advance s;
      parse_access tensors s name t.pos
  | Rparen | Comma | Plus | Star | Slash | Equals | Plus_equals | Eof ->
      error t.pos "expected an expression"

let with_errors f =
  match f () with
  | v -> Ok v
  | exception Parse_error { pos; code; msg } ->
      Error
        (Diag.make ~stage:Diag.Parse ~code
           ~context:[ ("position", string_of_int pos) ]
           msg)

let parse_expr ~tensors src =
  with_errors (fun () ->
      let s = { toks = lex src } in
      let e = parse_expr_prec tensors s in
      (match (peek s).tok with
      | Eof -> ()
      | _ -> error ~code:"E_PARSE_TRAILING" (peek s).pos "trailing input");
      e)

let parse_statement ~tensors src =
  Taco_support.Trace.with_span ~cat:"frontend" "parse" @@ fun () ->
  with_errors (fun () ->
      let s = { toks = lex src } in
      let t = peek s in
      let tv, idx =
        match t.tok with
        | Ident name ->
            advance s;
            parse_access_parts tensors s name t.pos
        | _ -> error t.pos "expected the result tensor access"
      in
      let op =
        match (peek s).tok with
        | Equals ->
            advance s;
            Index_notation.Assign
        | Plus_equals ->
            advance s;
            Index_notation.Accumulate
        | _ -> error (peek s).pos "expected '=' or '+='"
      in
      let rhs = parse_expr_prec tensors s in
      (match (peek s).tok with
      | Eof -> ()
      | _ -> error ~code:"E_PARSE_TRAILING" (peek s).pos "trailing input");
      let stmt = { Index_notation.lhs = tv; lhs_indices = idx; op; rhs } in
      match Index_notation.validate stmt with
      | Ok () -> stmt
      | Error e -> error ~code:"E_PARSE_VALIDATE" t.pos "%s" e)

(* ------------------------------------------------------------------ *)
(* Tensor pre-scan                                                     *)
(* ------------------------------------------------------------------ *)

(* A lexical scan, deliberately independent of the parser proper: it is
   used to build the tensor environment the parser needs, so it cannot
   itself require one. An identifier directly followed by '(' is a
   tensor access whose order is the number of top-level commas plus one;
   bare identifiers are index variables. *)
let scan_tensors src =
  let n = String.length src in
  let tensors = ref [] in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  let i = ref 0 in
  while !i < n do
    if is_ident src.[!i] && (!i = 0 || not (is_ident src.[!i - 1])) then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      let name = String.sub src start (!i - start) in
      let j = ref !i in
      while !j < n && src.[!j] = ' ' do
        incr j
      done;
      if name <> "sum" && String.length name > 0 && not (name.[0] >= '0' && name.[0] <= '9')
      then
        if !j < n && src.[!j] = '(' then begin
          (* Count top-level commas to find the order. *)
          let depth = ref 1 and commas = ref 0 and k = ref (!j + 1) in
          while !depth > 0 && !k < n do
            (match src.[!k] with
            | '(' -> incr depth
            | ')' -> decr depth
            | ',' -> if !depth = 1 then incr commas
            | _ -> ());
            incr k
          done;
          if not (List.mem_assoc name !tensors) then tensors := (name, !commas + 1) :: !tensors
        end
    end
    else incr i
  done;
  List.rev !tensors
