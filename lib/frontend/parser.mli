(** A small frontend for tensor index notation strings, e.g.

    {[ "A(i,j) = B(i,k) * C(k,j)" ]}
    {[ "a(i) += sum(j, B(i,j) * c(j))" ]}

    Tensor names resolve against a caller-supplied environment binding
    names to {!Taco_ir.Var.Tensor_var.t} (which carry order and storage
    format); index variables are created on first use. Reductions may be
    written explicitly with [sum(var, expr)] or left implicit (variables
    on the right that do not appear on the left are summed).

    Grammar:
    {v
    stmt   := access ("=" | "+=") expr
    expr   := term (("+" | "-") term)*
    term   := factor (("*" | "/") factor)*
    factor := number | "-" factor | "(" expr ")"
            | "sum" "(" ident "," expr ")" | access
    access := ident [ "(" ident ("," ident)* ")" ]
    v}

    (Menhir is not available in this environment, so the parser is a
    hand-written recursive-descent parser over a hand-written lexer.) *)

open Taco_ir

(** Parse a full statement. Failures are stage-[Parse] diagnostics whose
    context carries the source position ([("position", …)]); codes:
    [E_PARSE_SYNTAX], [E_PARSE_CHAR], [E_PARSE_NUMBER],
    [E_PARSE_UNKNOWN_TENSOR], [E_PARSE_ARITY], [E_PARSE_TRAILING] and
    [E_PARSE_VALIDATE] (well-formed syntax, ill-formed statement). *)
val parse_statement :
  tensors:(string * Var.Tensor_var.t) list ->
  string ->
  (Index_notation.t, Taco_support.Diag.t) result

(** Parse an expression only (e.g. the [expr] argument of precompute). *)
val parse_expr :
  tensors:(string * Var.Tensor_var.t) list ->
  string ->
  (Index_notation.expr, Taco_support.Diag.t) result

(** Lexically pre-scan a statement or expression for tensor accesses,
    returning each distinct tensor name with its order (number of index
    arguments), in first-occurrence order — for a statement, the result
    tensor first. Callers use this to build the [tensors] environment
    {!parse_statement} needs when only the source text is known (the CLI
    and the evaluation service). Bare identifiers are index variables
    and are not reported; [sum] is recognized as the reduction keyword. *)
val scan_tensors : string -> (string * int) list
