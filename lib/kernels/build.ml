open Taco_lower

let v name = Imp.Var name

let i n = Imp.Int_lit n

let f x = Imp.Float_lit x

let ( +: ) a b = Imp.Binop (Imp.Add, a, b)

let ( -: ) a b = Imp.Binop (Imp.Sub, a, b)

let ( *: ) a b = Imp.Binop (Imp.Mul, a, b)

let ( <: ) a b = Imp.Binop (Imp.Lt, a, b)

let ( >=: ) a b = Imp.Binop (Imp.Ge, a, b)

let ( =: ) a b = Imp.Binop (Imp.Eq, a, b)

let ( &&: ) a b = Imp.Binop (Imp.And, a, b)

let idx a e = Imp.Load (a, e)

let decl_int name e = Imp.Decl (Imp.Int, name, e)

let decl_bool name e = Imp.Decl (Imp.Bool, name, e)

let set name e = Imp.Assign (name, e)

let store a idx e = Imp.Store (a, idx, e)

let store_add a idx e = Imp.Store_add (a, idx, e)

let for_ var lo hi body = Imp.For (var, lo, hi, body)

let while_ c body = Imp.While (c, body)

let if_ c t = Imp.If (c, t, [])

let if_else c t e = Imp.If (c, t, e)

let incr name = Imp.Assign (name, Imp.Binop (Imp.Add, Imp.Var name, Imp.Int_lit 1))

let p_int name = { Imp.p_name = name; p_dtype = Imp.Int; p_array = false; p_output = false }

let p_iarr ?(output = false) name =
  { Imp.p_name = name; p_dtype = Imp.Int; p_array = true; p_output = output }

let p_farr ?(output = false) name =
  { Imp.p_name = name; p_dtype = Imp.Float; p_array = true; p_output = output }

let csr_params ?(output = false) t =
  [
    p_int (t ^ "1_dimension");
    p_int (t ^ "2_dimension");
    p_iarr ~output (t ^ "2_pos");
    p_iarr ~output (t ^ "2_crd");
    p_farr ~output (t ^ "_vals");
  ]

let info ~mode ~result ~inputs kernel =
  (match Imp.validate kernel with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Build.info: kernel %s: %s" kernel.Imp.k_name e));
  { Lower.kernel; inputs; result; mode }
