(** Per-tensor sparsity statistics.

    Collected once per packed tensor (a single pass over the level
    arrays, no value inspection beyond the stored count) and consumed by
    the cost model ({!Taco_ir.Cost}) to estimate loop trip counts and
    intermediate cardinalities, and by the plan cache to bucket tensors
    whose plans should agree.

    The per-segment fill distribution reuses the log-linear bucket
    machinery from {!Taco_support.Metrics}: segment lengths at the first
    compressed level are histogrammed with ≤ 1/16 relative error, so a
    skewed matrix (a few dense rows among many empty ones) is
    distinguishable from a uniform one with the same nnz. *)

type t = {
  dims : int array;  (** Logical dimension sizes. *)
  nnz : int;  (** Stored components with a nonzero value. *)
  n_positions : int array;
      (** Stored positions per storage level (dense levels count their
          materialized positions). *)
  fill : float array;
      (** Average children per parent position, per storage level: the
          expected inner trip count once the outer levels are bound. *)
  row_hist : int array;
      (** Log-linear histogram ({!Taco_support.Metrics.bucket_of}) of
          segment lengths at the first compressed storage level; all
          zeros for all-dense tensors. *)
  hist_level : int option;
      (** Storage level described by [row_hist], if any. *)
}

(** One pass over the packed representation. *)
val of_tensor : Taco_tensor.Tensor.t -> t

(** Memoized {!of_tensor} keyed on physical identity, safe to call from
    concurrent worker domains. Bounded (oldest entries dropped), so
    long-lived serving processes do not pin dead tensors. *)
val of_tensor_memo : Taco_tensor.Tensor.t -> t

(** Fraction of logically addressable components that are stored
    nonzero; in [0, 1] (0 for degenerate empty shapes). *)
val density : t -> float

(** Average stored entries per top-level slice (e.g. nnz/rows for a
    CSR matrix); falls back to [density * product(inner dims)] when the
    tensor has no compressed level. *)
val avg_fill : t -> float

(** [hist_quantile t q] estimates the [q]-quantile of the segment-length
    distribution recorded in [row_hist] (within one bucket width);
    [None] when no histogram was collected. *)
val hist_quantile : t -> float -> float option

(** Deterministic, low-cardinality bucket key for plan caching: dims and
    nnz quantized to powers of two. Tensors in the same bucket have
    trip-count estimates within 2x of each other, so a cached plan for
    one is (cost-wise) valid for the other. *)
val bucket : t -> string

(** One-line human summary (used by [--explain]). *)
val to_string : t -> string
