(* Sparsity statistics: one pass over the packed level arrays. See
   stats.mli for the model. *)

module T = Taco_tensor.Tensor
module Metrics = Taco_support.Metrics

type t = {
  dims : int array;
  nnz : int;
  n_positions : int array;
  fill : float array;
  row_hist : int array;
  hist_level : int option;
}

let of_tensor tensor =
  let dims = T.dims tensor in
  let order = Array.length dims in
  let n_positions = Array.make (max order 1) 0 in
  let fill = Array.make (max order 1) 0. in
  let row_hist = Array.make Metrics.n_buckets 0 in
  let hist_level = ref None in
  let parents = ref 1 in
  for l = 0 to order - 1 do
    (match T.level_data tensor l with
    | T.Dense_data { size } ->
        n_positions.(l) <- !parents * size;
        fill.(l) <- float_of_int size
    | T.Compressed_data { pos; crd } ->
        let stored = Array.length crd in
        n_positions.(l) <- stored;
        fill.(l) <-
          (if !parents > 0 then float_of_int stored /. float_of_int !parents
           else 0.);
        if !hist_level = None then begin
          hist_level := Some l;
          for p = 0 to Array.length pos - 2 do
            let seg = pos.(p + 1) - pos.(p) in
            let b = Metrics.bucket_of seg in
            row_hist.(b) <- row_hist.(b) + 1
          done
        end);
    parents := n_positions.(l)
  done;
  { dims; nnz = T.nnz tensor; n_positions; fill; row_hist; hist_level = !hist_level }

(* ------------------------------------------------------------------ *)
(* Memoized collection (service hot path)                              *)
(* ------------------------------------------------------------------ *)

let memo_cap = 64

let memo_lock = Mutex.create ()

let memo : (T.t * t) list ref = ref []

let of_tensor_memo tensor =
  Mutex.lock memo_lock;
  let hit = List.find_opt (fun (k, _) -> k == tensor) !memo in
  Mutex.unlock memo_lock;
  match hit with
  | Some (_, s) -> s
  | None ->
      let s = of_tensor tensor in
      Mutex.lock memo_lock;
      let entries = (tensor, s) :: !memo in
      memo :=
        (if List.length entries > memo_cap then
           List.filteri (fun i _ -> i < memo_cap) entries
         else entries);
      Mutex.unlock memo_lock;
      s

(* ------------------------------------------------------------------ *)
(* Derived quantities                                                  *)
(* ------------------------------------------------------------------ *)

let volume dims = Array.fold_left (fun acc d -> acc * d) 1 dims

let density t =
  let v = volume t.dims in
  if v <= 0 then 0. else Float.min 1. (float_of_int t.nnz /. float_of_int v)

let avg_fill t =
  match t.hist_level with
  | Some l -> t.fill.(l)
  | None ->
      if Array.length t.dims <= 1 then density t *. float_of_int (volume t.dims)
      else
        let inner = volume (Array.sub t.dims 1 (Array.length t.dims - 1)) in
        density t *. float_of_int inner

let hist_quantile t q =
  match t.hist_level with
  | None -> None
  | Some _ ->
      let total = Array.fold_left ( + ) 0 t.row_hist in
      if total = 0 then Some 0.
      else begin
        let q = Float.max 0. (Float.min 1. q) in
        let target = Float.max 1. (q *. float_of_int total) in
        let cum = ref 0. and res = ref 0. and found = ref false in
        Array.iteri
          (fun i c ->
            if (not !found) && c > 0 then begin
              let before = !cum in
              cum := !cum +. float_of_int c;
              if !cum >= target then begin
                let lower, width = Metrics.bucket_bounds i in
                res := lower +. ((target -. before) /. float_of_int c *. width);
                found := true
              end
            end)
          t.row_hist;
        Some !res
      end

(* ------------------------------------------------------------------ *)
(* Cache-key bucketing                                                 *)
(* ------------------------------------------------------------------ *)

(* ceil(log2 n) for n >= 1; 0 for n <= 1. Power-of-two quantization
   keeps the key cardinality low while bounding the trip-count error a
   cached plan can hide to 2x. *)
let log2_ceil n =
  if n <= 1 then 0
  else begin
    let e = ref 0 and x = ref (n - 1) in
    while !x > 0 do
      incr e;
      x := !x lsr 1
    done;
    !e
  end

let bucket t =
  let dims =
    t.dims |> Array.to_list
    |> List.map (fun d -> string_of_int (log2_ceil d))
    |> String.concat "x"
  in
  Printf.sprintf "d%s:n%d" dims (log2_ceil t.nnz)

let to_string t =
  Printf.sprintf "dims=[%s] nnz=%d fill=%.2f density=%.2e"
    (String.concat ","
       (Array.to_list (Array.map string_of_int t.dims)))
    t.nnz (avg_fill t) (density t)
