open Taco_ir.Var
module Tensor = Taco_tensor.Tensor
module F = Taco_tensor.Format
module L = Taco_tensor.Level
module Lower = Taco_lower.Lower

type t = { info : Taco_lower.Lower.kernel_info; compiled : Compile.compiled }

let prepare ?checked ?profile ?opt ?backend info =
  { info; compiled = Compile.compile ?checked ?profile ?opt ?backend info.Lower.kernel }

let info t = t.info

let backend t = Compile.backend_of t.compiled

let native_phases t = Compile.native_phases t.compiled

let profile_stats t = Compile.profile_stats t.compiled

let profile_reset t = Compile.profile_reset t.compiled

let imp t = Compile.kernel t.compiled

let c_source t = Taco_lower.Codegen_c.emit (Compile.kernel t.compiled)

let tensor_args tv tensor =
  if Tensor_var.order tv <> Tensor.order tensor then
    invalid_arg
      (Printf.sprintf "Kernel: tensor %s has order %d, expected %d" (Tensor_var.name tv)
         (Tensor.order tensor) (Tensor_var.order tv));
  if not (F.equal (Tensor_var.format tv) (Tensor.format tensor)) then
    invalid_arg
      (Printf.sprintf "Kernel: tensor %s is stored as %s, expected %s"
         (Tensor_var.name tv)
         (F.to_string (Tensor.format tensor))
         (F.to_string (Tensor_var.format tv)));
  let dims = Tensor.dims tensor in
  let fmt = Tensor.format tensor in
  let level_args =
    List.concat
      (List.init (Tensor.order tensor) (fun l ->
           let dim = (Lower.dimension_var tv l, Compile.Aint dims.(F.mode_of_level fmt l)) in
           match Tensor.level_data tensor l with
           | Tensor.Dense_data _ -> [ dim ]
           | Tensor.Compressed_data { pos; crd } ->
               [
                 dim;
                 (Lower.pos_var tv l, Compile.Aint_array pos);
                 (Lower.crd_var tv l, Compile.Aint_array crd);
               ]))
  in
  level_args @ [ (Lower.vals_var tv, Compile.Afloat_array (Tensor.vals tensor)) ]

let input_args t inputs =
  List.concat_map
    (fun tv ->
      match List.find_opt (fun (v, _) -> Tensor_var.equal v tv) inputs with
      | Some (_, tensor) -> tensor_args tv tensor
      | None ->
          invalid_arg
            (Printf.sprintf "Kernel: no binding for input tensor %s" (Tensor_var.name tv)))
    t.info.Lower.inputs

(* Pre-allocation guard for outputs materialized by the wrapper itself
   (dense results): reject before [Tensor.zero] when the value array
   alone would blow the byte budget. *)
let check_output_budget t dims =
  let limit = Budget.mem_limit () in
  if limit <> max_int then begin
    let elems = Array.fold_left (fun acc d -> acc * max 1 d) 1 dims in
    if elems > limit / 8 then
      Taco_support.Diag.fail ~stage:Taco_support.Diag.Execute ~code:"E_EXEC_MEM"
        ~context:
          [
            ("kernel", t.info.Lower.kernel.Taco_lower.Imp.k_name);
            ("variable", "output");
            ("bytes", string_of_int (elems * 8));
            ("limit_bytes", string_of_int limit);
          ]
        "dense output of %d elements (%d bytes) exceeds the memory budget (%d bytes)"
        elems (elems * 8) limit
  end

let run_compute ?domains ?deadline_ns t ~inputs ~output =
  (match t.info.Lower.mode with
  | Lower.Compute -> ()
  | Lower.Assemble _ -> invalid_arg "Kernel.run_compute: kernel is an assembly kernel");
  let args = tensor_args t.info.Lower.result output @ input_args t inputs in
  ignore (Compile.run ?domains ?deadline_ns t.compiled ~args : string -> Compile.arg);
  Taco_support.Faultinject.corrupt "exec.result" (Tensor.vals output)

(* Dimension-only arguments for an assembled result. *)
let result_dim_args tv dims =
  let fmt = Tensor_var.format tv in
  List.init (Tensor_var.order tv) (fun l ->
      (Lower.dimension_var tv l, Compile.Aint dims.(F.mode_of_level fmt l)))

let run_assemble ?domains ?deadline_ns t ~inputs ~dims =
  let emit_values, sorted =
    match t.info.Lower.mode with
    | Lower.Assemble { emit_values; sorted } -> (emit_values, sorted)
    | Lower.Compute -> invalid_arg "Kernel.run_assemble: kernel is a compute kernel"
  in
  let result = t.info.Lower.result in
  let fmt = Tensor_var.format result in
  let order = Tensor_var.order result in
  if Array.length dims <> order then invalid_arg "Kernel.run_assemble: dims arity";
  if F.is_all_dense fmt then begin
    (* Dense results have nothing to assemble; behave like compute. *)
    check_output_budget t dims;
    let output = Tensor.zero dims fmt in
    let args = tensor_args result output @ input_args t inputs in
    ignore (Compile.run ?domains ?deadline_ns t.compiled ~args : string -> Compile.arg);
    Taco_support.Faultinject.corrupt "exec.result" (Tensor.vals output);
    output
  end
  else begin
    let args = result_dim_args result dims @ input_args t inputs in
    let read = Compile.run ?domains ?deadline_ns t.compiled ~args in
    (* Locate the single compressed level. *)
    let l =
      let rec go l =
        if l >= order then invalid_arg "Kernel.run_assemble: no compressed level"
        else match F.level fmt l with L.Compressed -> l | L.Dense -> go (l + 1)
      in
      go 0
    in
    let parent_size =
      let rec go lvl acc =
        if lvl >= l then acc else go (lvl + 1) (acc * dims.(F.mode_of_level fmt lvl))
      in
      go 0 1
    in
    let pos =
      match read (Lower.pos_var result l) with
      | Compile.Aint_array a -> Array.sub a 0 (parent_size + 1)
      | Compile.Aint _ | Compile.Afloat _ | Compile.Afloat_array _ ->
          invalid_arg "Kernel.run_assemble: bad pos read-back"
    in
    let nnz = pos.(parent_size) in
    let crd =
      match read (Lower.crd_var result l) with
      | Compile.Aint_array a -> Array.sub a 0 nnz
      | Compile.Aint _ | Compile.Afloat _ | Compile.Afloat_array _ ->
          invalid_arg "Kernel.run_assemble: bad crd read-back"
    in
    let vals =
      if emit_values then
        match read (Lower.vals_var result) with
        | Compile.Afloat_array a -> Array.sub a 0 nnz
        | Compile.Aint _ | Compile.Afloat _ | Compile.Aint_array _ ->
            invalid_arg "Kernel.run_assemble: bad vals read-back"
      else Array.make nnz 0.
    in
    (* Unsorted kernels (MKL-style, paper Fig. 11 right) leave each row's
       coordinates in insertion order; sort them when wrapping so the
       packed invariants hold. The kernel itself ran unsorted. *)
    if not sorted then
      for p = 0 to parent_size - 1 do
        Taco_support.Util.sort_paired crd vals pos.(p) pos.(p + 1)
      done;
    Taco_support.Faultinject.corrupt "exec.result" vals;
    let levels =
      Array.init order (fun lvl ->
          if lvl = l then Tensor.Compressed_data { pos; crd }
          else Tensor.Dense_data { size = dims.(F.mode_of_level fmt lvl) })
    in
    Tensor.of_parts ~dims ~format:fmt ~levels ~vals
  end

let run_assemble_raw ?domains ?deadline_ns t ~inputs ~dims =
  (match t.info.Lower.mode with
  | Lower.Assemble _ -> ()
  | Lower.Compute -> invalid_arg "Kernel.run_assemble_raw: kernel is a compute kernel");
  let result = t.info.Lower.result in
  if F.is_all_dense (Tensor_var.format result) then
    ignore (run_assemble ?domains ?deadline_ns t ~inputs ~dims : Tensor.t)
  else begin
    let args = result_dim_args result dims @ input_args t inputs in
    ignore (Compile.run ?domains ?deadline_ns t.compiled ~args : string -> Compile.arg)
  end

let run_dense ?domains ?deadline_ns t ~inputs ~dims =
  let result = t.info.Lower.result in
  if not (F.is_all_dense (Tensor_var.format result)) then
    invalid_arg "Kernel.run_dense: result is not dense";
  check_output_budget t dims;
  let output = Tensor.zero dims (Tensor_var.format result) in
  run_compute ?domains ?deadline_ns t ~inputs ~output;
  output
