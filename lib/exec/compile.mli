(** Executing imperative IR kernels.

    The paper compiles emitted C with a system compiler; in this sealed
    reproduction the imperative IR is instead compiled to OCaml closures
    over a slot-based environment (variable names resolve to array slots
    at compile time, so no hashing happens in loops). All benchmarked
    variants — generated and hand-written baselines — run through this
    same executor, so relative comparisons are apples-to-apples. *)

type compiled

(** Values bound to kernel parameters (arrays are shared, not copied:
    output arrays are written in place). *)
type arg =
  | Aint of int
  | Afloat of float
  | Aint_array of int array
  | Afloat_array of float array

(** Typecheck and compile a kernel. Raises [Invalid_argument] on malformed
    IR (unknown variables, type mismatches).

    With [~checked:true] the compiled closures bounds-check every array
    load, store and memset; a violation raises
    [Taco_support.Diag.Error] whose diagnostic names the kernel, the
    array variable, the offending index and the array length (stage
    [Execute], code [E_EXEC_BOUNDS]). Unchecked closures still get
    OCaml's own array bounds safety, but failures surface as a bare
    [Invalid_argument] with no kernel context. *)
val compile : ?checked:bool -> Taco_lower.Imp.kernel -> compiled

(** Like {!compile}, reporting malformed IR as a [Diag.t] result (stage
    [Compile], code [E_COMPILE_TYPE]). *)
val compile_res :
  ?checked:bool -> Taco_lower.Imp.kernel -> (compiled, Taco_support.Diag.t) result

val kernel : compiled -> Taco_lower.Imp.kernel

(** Was the kernel compiled with [~checked:true]? *)
val is_checked : compiled -> bool

(** [run compiled ~args] binds parameters by name and executes. Returns a
    reader for variables left in the environment (used to retrieve arrays
    the kernel allocated, e.g. assembled indices). Missing or ill-typed
    bindings raise [Invalid_argument]. *)
val run : compiled -> args:(string * arg) list -> (string -> arg)
