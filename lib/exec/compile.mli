(** Executing imperative IR kernels.

    The paper compiles emitted C with a system compiler; in this sealed
    reproduction the imperative IR is instead compiled to OCaml closures
    over a slot-based environment (variable names resolve to array slots
    at compile time, so no hashing happens in loops). All benchmarked
    variants — generated and hand-written baselines — run through this
    same executor, so relative comparisons are apples-to-apples. *)

type compiled

(** Values bound to kernel parameters (arrays are shared, not copied:
    output arrays are written in place). *)
type arg =
  | Aint of int
  | Afloat of float
  | Aint_array of int array
  | Afloat_array of float array

(** Which executor runs the kernel. [`Closure] (the default) interprets
    the IR through OCaml closures; [`Native] renders it to C
    ({!Taco_lower.Codegen_c.emit_exec}), builds a shared object with the
    system compiler and calls it through [dlopen] — see {!Native}.

    [`Native] is a request, not a guarantee: when the compiler is
    missing, the build fails, or the kernel is not expressible under the
    native ABI, compilation silently downgrades to closures. The
    downgrade is counted in {!backend_stats}, traced as an
    ["exec.backend.downgrade"] counter, and its reason is kept on the
    compiled kernel ({!downgrade_reason}) — it is never a client error.
    [~checked] and [~profile] also pin execution to closures (the native
    code carries neither bounds checks nor profiling counters); that
    deliberate narrowing is not counted as a downgrade. *)
type backend = [ `Closure | `Native ]

(** Process-wide per-backend counters. *)
type backend_stats = {
  native_builds : int;  (** Shared objects built and loaded. *)
  native_runs : int;  (** Runs dispatched to native code. *)
  closure_runs : int;  (** Runs dispatched to closures. *)
  downgrades : int;  (** [`Native] requests served by closures. *)
}

val backend_stats : unit -> backend_stats

(** The backend that will actually run this kernel ([`Closure] when a
    [`Native] request was downgraded). *)
val backend_of : compiled -> backend

(** Why a [`Native] request fell back to closures, if it did. *)
val downgrade_reason : compiled -> string option

(** Build-phase timings (emit / cc / dlopen) for natively compiled
    kernels; [None] for closure-backed ones. *)
val native_phases : compiled -> Native.phases option

(** Typecheck and compile a kernel. Raises [Invalid_argument] on malformed
    IR (unknown variables, type mismatches).

    The kernel first runs through the {!Taco_lower.Opt} pipeline ([opt],
    default {!Taco_lower.Opt.all}; pass {!Taco_lower.Opt.none} to compile
    the IR verbatim). The optimizer validates the kernel before and after
    every pass, so a malformed kernel is rejected here with the
    validator's message.

    With [~cache:true] (the default) compiled kernels are memoized in a
    process-wide table keyed by the structure of the post-optimization
    kernel, the [checked]/[profile] flags and the requested [backend]
    (including the resolved compiler for [`Native], so changing
    [TACO_CC] never serves a stale entry); recompiling an identical
    kernel returns the cached executable. Native builds join the same
    single-flight discipline: one [cc] invocation per distinct
    structure, however many domains race for it.

    With [~checked:true] the compiled closures bounds-check every array
    load, store and memset; a violation raises
    [Taco_support.Diag.Error] whose diagnostic names the kernel, the
    array variable, the offending index and the array length (stage
    [Execute], code [E_EXEC_BOUNDS]). Unchecked closures still get
    OCaml's own array bounds safety, but failures surface as a bare
    [Invalid_argument] with no kernel context.

    With [~profile:true] the compiled closures additionally count the
    work they do (loop iterations, scalar ops, workspace allocations,
    zeroed bytes — see {!run_stats}); counters accumulate across runs
    until {!profile_reset}. Profiled and unprofiled compilations of the
    same kernel are distinct cache entries. The default [profile:false]
    compiles exactly the closures it always did — profiling costs
    nothing unless requested. *)
val compile :
  ?checked:bool ->
  ?profile:bool ->
  ?opt:Taco_lower.Opt.config ->
  ?cache:bool ->
  ?backend:backend ->
  Taco_lower.Imp.kernel ->
  compiled

(** Like {!compile}, reporting malformed IR as a [Diag.t] result (stage
    [Compile], code [E_COMPILE_TYPE]). *)
val compile_res :
  ?checked:bool ->
  ?profile:bool ->
  ?opt:Taco_lower.Opt.config ->
  ?cache:bool ->
  ?backend:backend ->
  Taco_lower.Imp.kernel ->
  (compiled, Taco_support.Diag.t) result

(** The kernel as compiled — i.e. after optimization. *)
val kernel : compiled -> Taco_lower.Imp.kernel

(** {2 Runtime profiling}

    Executor work counters, gathered only by kernels compiled with
    [~profile:true]. Counters accumulate across {!run}s of the same
    compiled kernel; snapshot before/after a run (or {!profile_reset}
    in between) for per-run numbers. When tracing is enabled, {!run}
    wraps execution in an ["exec.run"] span carrying the per-run deltas
    and folds them into trace counters. *)

type run_stats = {
  iterations : int;  (** Loop iterations executed (for + while). *)
  scalar_ops : int;  (** Scalar declarations/assignments and array stores. *)
  allocs : int;  (** Workspace/output array allocations. *)
  alloc_elems : int;  (** Total elements allocated. *)
  zero_bytes : int;  (** Bytes zero-initialized (allocs + memsets, 8 B/elem). *)
  reallocs : int;  (** Capacity-growing reallocations. *)
  sorts : int;  (** Sort statements executed. *)
}

(** [Some stats] for kernels compiled with [~profile:true], [None]
    otherwise. *)
val profile_stats : compiled -> run_stats option

(** Zero the counters of a profiled kernel (no-op otherwise). *)
val profile_reset : compiled -> unit

(** {2 Compiled-kernel cache}

    The cache is domain-safe: the table and its counters sit behind a
    mutex, and compilation is single-flighted — when several domains
    concurrently request the same (not yet cached) kernel structure,
    exactly one builds it while the rest block and then take the cached
    result. [misses] therefore counts actual closure builds: each
    distinct kernel structure compiles exactly once per process however
    many domains race for it. *)

type cache_stats = {
  hits : int;  (** Lookups served from the table. *)
  misses : int;  (** Closure builds (one per distinct structure). *)
  entries : int;
  evictions : int;
  coalesced : int;
      (** Hits that waited for a concurrent in-flight build of the same
          kernel instead of compiling it again (a subset of [hits]). *)
}

val cache_stats : unit -> cache_stats

val cache_clear : unit -> unit

(** Bound the cache to [n] (>= 1) entries; the oldest entries beyond the
    bound are evicted insertion-first (FIFO) and counted in
    [cache_stats().evictions]. Default capacity: 512. *)
val set_cache_capacity : int -> unit

(** Was the kernel compiled with [~checked:true]? *)
val is_checked : compiled -> bool

(** [run compiled ~args] binds parameters by name and executes. Returns a
    reader for variables left in the environment (used to retrieve arrays
    the kernel allocated, e.g. assembled indices). Missing or ill-typed
    bindings raise [Invalid_argument].

    [?domains] (default 1) sets the chunk count for
    {!Taco_lower.Imp.ParallelFor} regions: the parallel loop's iteration
    space splits into that many contiguous chunks, each run against a
    private copy of the environment and merged back in chunk order.
    Results are bit-identical for every [domains] value — the chunk
    count fixes the merge, while how many OCaml domains actually run
    chunks is decided per region by {!Budget.acquire} (degrading to the
    calling domain when the pot is empty). Kernels compiled with
    [~profile:true] execute parallel regions sequentially (the shared
    profile counters would race), again with identical results.

    [?deadline_ns] arms the cooperative watchdog: outermost loops (and
    every ParallelFor chunk) compare the {!Taco_support.Trace.now_ns}
    clock against it every 256 iterations and abort the run with a
    stage-[Execute] [E_EXEC_CANCELLED] diagnostic once it passes — so a
    deadline expiring mid-kernel stops the running work instead of only
    being noticed afterwards. Omitted (or [Int64.max_int]) means no
    watchdog and zero per-iteration overhead.

    Allocations executed by the kernel (workspaces, growing reallocs)
    are additionally guarded by {!Budget.set_mem_limit}: an allocation
    whose 8-bytes-per-element estimate exceeds the budget raises
    [E_EXEC_MEM] before allocating.

    Kernels compiled with [~backend:`Native] (and not downgraded)
    dispatch to the shared object instead: same argument binding, same
    reader contract, same [E_EXEC_MEM]/[E_EXEC_CANCELLED] semantics
    (the budget and deadline cross the ABI and are enforced inside the
    generated C). Two narrowings, both documented in DESIGN.md: the
    watchdog does not poll inside OpenMP parallel loops, and [?domains]
    is ignored (OpenMP picks the thread count). A native entry point
    failing in a way the closures cannot (nonzero unexpected return
    code) raises a stage-[Execute] [E_EXEC_NATIVE] diagnostic. *)
val run :
  ?domains:int ->
  ?deadline_ns:int64 ->
  compiled ->
  args:(string * arg) list ->
  (string -> arg)
