/* OCaml <-> dlopen bridge for the native execution backend.
 *
 * The generated translation unit (Codegen_c.emit_exec) exports one
 * entry point with a flat ABI:
 *
 *   int taco_entry(const int64_t* iargs, const double* fargs,
 *                  void** aargs, void** esc, int64_t* esc_len,
 *                  int64_t mem_limit, int64_t deadline_ns);
 *
 * taco_nat_call marshals an OCaml call_spec record into that shape:
 *   - float arrays cross with no copy: an OCaml float array is a flat
 *     double buffer, so its value pointer IS the double*. The call
 *     performs no OCaml allocation before the copy-back below, so the
 *     GC cannot move the buffers while the kernel runs (any other
 *     domain asking for a stop-the-world collection blocks until this
 *     call returns — the documented cost of the zero-copy path);
 *   - int arrays are tagged words on the OCaml side and int32_t on the
 *     C side, so they are copied into temporary buffers on the way in
 *     and written back (output kinds only) on the way out;
 *   - arrays the kernel allocates come back through esc/esc_len and
 *     are re-boxed as fresh OCaml arrays; the malloc'd originals are
 *     freed here.
 *
 * The call_spec record layout is fixed by lib/exec/native.ml — field
 * order there is field order here:
 *   0 cs_ints      int array      (int scalar params, in order)
 *   1 cs_floats    float array    (float scalar params, in order)
 *   2 cs_arrays    Obj.t array    (array params, in order)
 *   3 cs_kinds     int array      (0 = int input, 1 = float in-place,
 *                                  2 = int output: copy back)
 *   4 cs_esc_kinds int array      (0 = int escape, 1 = float escape)
 *   5 cs_mem_limit int64
 *   6 cs_deadline  int64
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <dlfcn.h>

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>

typedef int (*taco_entry_fn)(const int64_t *, const double *, void **, void **,
                             int64_t *, int64_t, int64_t);

CAMLprim value taco_nat_dlopen(value vpath)
{
  CAMLparam1(vpath);
  void *h = dlopen(String_val(vpath), RTLD_NOW | RTLD_LOCAL);
  CAMLreturn(caml_copy_nativeint((intnat)h));
}

CAMLprim value taco_nat_dlsym(value vhandle, value vname)
{
  CAMLparam2(vhandle, vname);
  void *h = (void *)Nativeint_val(vhandle);
  void *fn = h ? dlsym(h, String_val(vname)) : NULL;
  CAMLreturn(caml_copy_nativeint((intnat)fn));
}

CAMLprim value taco_nat_dlclose(value vhandle)
{
  CAMLparam1(vhandle);
  void *h = (void *)Nativeint_val(vhandle);
  if (h) dlclose(h);
  CAMLreturn(Val_unit);
}

static void *xmalloc(size_t n) { return malloc(n ? n : 1); }

CAMLprim value taco_nat_call(value vfn, value vspec)
{
  CAMLparam2(vfn, vspec);
  CAMLlocal3(vres, vescs, varr);

  taco_entry_fn fn = (taco_entry_fn)Nativeint_val(vfn);

  mlsize_t n_ints = Wosize_val(Field(vspec, 0));
  mlsize_t n_floats = Wosize_val(Field(vspec, 1));
  mlsize_t n_arr = Wosize_val(Field(vspec, 2));
  mlsize_t n_esc = Wosize_val(Field(vspec, 4));
  int64_t mem_limit = Int64_val(Field(vspec, 5));
  int64_t deadline = Int64_val(Field(vspec, 6));

  int64_t *iargs = xmalloc(sizeof(int64_t) * n_ints);
  double *fargs = xmalloc(sizeof(double) * n_floats);
  void **aargs = xmalloc(sizeof(void *) * n_arr);
  int32_t **icopies = xmalloc(sizeof(int32_t *) * n_arr);
  void **esc = xmalloc(sizeof(void *) * n_esc);
  int64_t *esc_len = xmalloc(sizeof(int64_t) * n_esc);
  if (!iargs || !fargs || !aargs || !icopies || !esc || !esc_len) {
    free(iargs); free(fargs); free(aargs); free(icopies); free(esc); free(esc_len);
    caml_failwith("taco_nat_call: out of memory");
  }
  memset(icopies, 0, sizeof(int32_t *) * n_arr);
  memset(esc, 0, sizeof(void *) * n_esc);
  memset(esc_len, 0, sizeof(int64_t) * n_esc);

  for (mlsize_t i = 0; i < n_ints; i++)
    iargs[i] = Long_val(Field(Field(vspec, 0), i));
  for (mlsize_t i = 0; i < n_floats; i++)
    fargs[i] = Double_flat_field(Field(vspec, 1), i);

  int oom = 0;
  for (mlsize_t i = 0; i < n_arr; i++) {
    long kind = Long_val(Field(Field(vspec, 3), i));
    value a = Field(Field(vspec, 2), i);
    if (kind == 1) {
      /* float array: the unboxed double buffer crosses directly. */
      aargs[i] = (void *)((double *)a);
    } else {
      mlsize_t len = Wosize_val(a);
      int32_t *buf = xmalloc(sizeof(int32_t) * len);
      if (!buf) { oom = 1; break; }
      for (mlsize_t j = 0; j < len; j++)
        buf[j] = (int32_t)Long_val(Field(a, j));
      icopies[i] = buf;
      aargs[i] = buf;
    }
  }

  int rc;
  if (oom) {
    rc = 1; /* maps to E_EXEC_MEM on the OCaml side */
  } else {
    rc = fn(iargs, fargs, aargs, esc, esc_len, mem_limit, deadline);
  }

  /* Copy mutated int output buffers back before any OCaml allocation
     can move their owning arrays. */
  if (rc == 0) {
    for (mlsize_t i = 0; i < n_arr; i++) {
      if (Long_val(Field(Field(vspec, 3), i)) == 2 && icopies[i]) {
        value a = Field(Field(vspec, 2), i);
        mlsize_t len = Wosize_val(a);
        for (mlsize_t j = 0; j < len; j++)
          Store_field(a, j, Val_long((intnat)icopies[i][j]));
      }
    }
  }

  /* Re-box escapes. Allocation happens here, so every OCaml value is
     re-read through the registered roots vspec/vescs/varr. */
  if (rc == 0 && n_esc > 0) {
    vescs = caml_alloc(n_esc, 0);
    for (mlsize_t i = 0; i < n_esc; i++) {
      long kind = Long_val(Field(Field(vspec, 4), i));
      mlsize_t len = esc_len[i] > 0 ? (mlsize_t)esc_len[i] : 0;
      if (kind == 1) {
        varr = caml_alloc_float_array(len);
        if (len > 0) memcpy((double *)varr, esc[i], len * sizeof(double));
      } else {
        varr = caml_alloc(len, 0);
        for (mlsize_t j = 0; j < len; j++)
          Store_field(varr, j, Val_long((intnat)((int32_t *)esc[i])[j]));
      }
      Store_field(vescs, i, varr);
    }
  } else {
    vescs = Atom(0);
  }
  /* On success the kernel handed ownership of the escape buffers to
     us; on failure it already freed everything and esc[] is NULL. */
  for (mlsize_t i = 0; i < n_esc; i++) free(esc[i]);
  for (mlsize_t i = 0; i < n_arr; i++) free(icopies[i]);
  free(iargs); free(fargs); free(aargs); free(icopies); free(esc); free(esc_len);

  vres = caml_alloc_tuple(2);
  Store_field(vres, 0, Val_long(rc));
  Store_field(vres, 1, vescs);
  CAMLreturn(vres);
}
