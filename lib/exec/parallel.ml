open Taco_ir.Var
module Tensor = Taco_tensor.Tensor

let run_dense ?(clamp = true) kern ~inputs ~dims ~split ~domains =
  if domains <= 0 then invalid_arg "Parallel.run_dense: domains must be positive";
  (* Oversubscribing domains only adds spawn/join overhead; clamp against
     the process-wide domain budget, so concurrent callers (and kernels
     running their own ParallelFor loops) cannot together exceed what the
     runtime recommends for this machine. [~clamp:false] keeps the
     requested count so correctness can be exercised at domain counts
     the hardware would otherwise collapse to 1. *)
  let permits = if clamp then Budget.acquire (domains - 1) else 0 in
  let domains = if clamp then permits + 1 else domains in
  Fun.protect ~finally:(fun () -> Budget.release permits) @@ fun () ->
  if domains = 1 then Kernel.run_dense kern ~inputs ~dims
  else begin
    let to_split =
      match List.find_opt (fun (tv, _) -> Tensor_var.equal tv split) inputs with
      | Some (_, t) -> t
      | None -> invalid_arg "Parallel.run_dense: split tensor not among the inputs"
    in
    let others = List.filter (fun (tv, _) -> not (Tensor_var.equal tv split)) inputs in
    (* split_rows pads with empty partitions when the tensor has fewer
       populated row ranges than requested; an empty partition
       contributes only zeros, so skip it instead of spawning a domain
       for it. *)
    let parts =
      List.filter (fun p -> Tensor.nnz p > 0) (Tensor.split_rows to_split ~parts:domains)
    in
    match parts with
    | [] ->
        (* Every partition empty (the split tensor has no stored
           values): the kernel still defines the result shape. *)
        Kernel.run_dense kern ~inputs ~dims
    | [ only ] -> Kernel.run_dense kern ~inputs:((split, only) :: others) ~dims
    | parts ->
        Taco_support.Faultinject.hit ~stage:Taco_support.Diag.Execute "par.spawn";
        let workers =
          List.map
            (fun part ->
              Domain.spawn (fun () ->
                  Kernel.run_dense kern ~inputs:((split, part) :: others) ~dims))
            parts
        in
        (* Join every worker before propagating a failure: bailing on
           the first raising join would leak the remaining domains (and
           strand their Budget permits until process exit). *)
        let outcomes =
          List.map (fun w -> try Ok (Domain.join w) with e -> Error e) workers
        in
        let results =
          List.map (function Ok r -> r | Error e -> raise e) outcomes
        in
        (* Sum the dense partials (partitions touch disjoint output rows for
           row-major kernels, but addition is correct regardless). *)
        (match results with
        | [] -> invalid_arg "Parallel.run_dense: no partitions"
        | first :: rest ->
            let acc = Tensor.vals first in
            List.iter
              (fun r ->
                let v = Tensor.vals r in
                for k = 0 to Array.length acc - 1 do
                  acc.(k) <- acc.(k) +. v.(k)
                done)
              rest;
            first)
  end
