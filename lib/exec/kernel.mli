(** Binding packed tensors to lowered kernels and running them.

    Parameter names follow the conventions of {!Taco_lower.Lower}. *)

open Taco_ir.Var
module Tensor = Taco_tensor.Tensor

type t

(** Compile a lowered kernel once; it can be run many times. [checked]
    enables the bounds-checked execution mode of {!Compile.compile};
    [profile] its runtime work counters (see {!Compile.run_stats});
    [opt] selects the optimizer passes applied first (default: all);
    [backend] the executor ([`Closure] default, [`Native] compiles the
    emitted C to a shared object, downgrading to closures when no
    compiler is available — see {!Compile.backend}). *)
val prepare :
  ?checked:bool ->
  ?profile:bool ->
  ?opt:Taco_lower.Opt.config ->
  ?backend:Compile.backend ->
  Taco_lower.Lower.kernel_info ->
  t

val info : t -> Taco_lower.Lower.kernel_info

(** The backend actually executing this kernel ([`Closure] when a
    [`Native] request was downgraded — see {!Compile.backend_of}). *)
val backend : t -> Compile.backend

(** Native build-phase timings (emit / cc / dlopen); [None] for
    closure-backed kernels. *)
val native_phases : t -> Native.phases option

(** Accumulated executor counters of a kernel prepared with
    [~profile:true]; [None] otherwise. *)
val profile_stats : t -> Compile.run_stats option

(** Zero the profile counters (no-op for unprofiled kernels). *)
val profile_reset : t -> unit

(** The imperative IR as compiled, i.e. after the optimizer pipeline
    ({!info} retains the kernel as lowered). *)
val imp : t -> Taco_lower.Imp.kernel

(** The C rendering of the optimized kernel (for inspection). *)
val c_source : t -> string

(** Arguments for one tensor: dimension scalars, pos/crd arrays of
    compressed levels and the value array. *)
val tensor_args : Tensor_var.t -> Tensor.t -> (string * Compile.arg) list

(** [run_compute t ~inputs ~output] executes a [Compute]-mode kernel.
    [output] must be pre-assembled (its index structure covers the
    result's nonzeros); its value array is overwritten in place. Raises
    [Invalid_argument] on arity/format mismatches.

    On every run entry point, [?domains] (default 1) is the chunk count
    for parallelized kernels — see {!Compile.run}. Results are
    bit-identical for every value; kernels without a ParallelFor region
    ignore it. [?deadline_ns] arms the cooperative cancellation
    watchdog ([E_EXEC_CANCELLED] once the clock passes it — see
    {!Compile.run}); entry points that materialize a dense output also
    pre-check it against {!Budget.set_mem_limit} ([E_EXEC_MEM]). *)
val run_compute :
  ?domains:int ->
  ?deadline_ns:int64 ->
  t ->
  inputs:(Tensor_var.t * Tensor.t) list ->
  output:Tensor.t ->
  unit

(** [run_assemble t ~inputs ~dims] executes an [Assemble]-mode kernel and
    builds the result tensor from the assembled arrays. With
    [~emit_values:false] kernels the returned tensor has the assembled
    structure and zero values (the symbolic/numeric split common in
    numerical code, paper §VI). *)
val run_assemble :
  ?domains:int ->
  ?deadline_ns:int64 ->
  t ->
  inputs:(Tensor_var.t * Tensor.t) list ->
  dims:int array ->
  Tensor.t

(** Execute an [Assemble]-mode kernel without reading back or wrapping
    the result (no trimming, no sorting of unsorted rows): the timing
    entry point used by benchmarks that measure kernel execution alone. *)
val run_assemble_raw :
  ?domains:int ->
  ?deadline_ns:int64 ->
  t ->
  inputs:(Tensor_var.t * Tensor.t) list ->
  dims:int array ->
  unit

(** Convenience for compute kernels with dense results: allocates the
    output, runs, returns it. *)
val run_dense :
  ?domains:int ->
  ?deadline_ns:int64 ->
  t ->
  inputs:(Tensor_var.t * Tensor.t) list ->
  dims:int array ->
  Tensor.t
