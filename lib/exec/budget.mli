(** Process-wide budget of extra domains.

    OCaml 5 domains are expensive to oversubscribe: the runtime
    recommends at most {!recommended} of them in total. Every component
    that spawns domains — the {!Compile} ParallelFor executor,
    {!Parallel.run_dense}'s clamped path and the {!Taco_service} worker
    pool — acquires permits here before spawning and releases them
    after joining, so their combined live count stays bounded even when
    a serve request itself executes a parallel kernel.

    A permit stands for one domain beyond the caller's own. The default
    capacity is [recommended () - 1]. Acquisition is best-effort:
    {!acquire} grants between [0] and [want] permits and never blocks —
    a caller granted fewer permits runs the remaining work on its own
    domain, which the deterministic chunk merge makes observationally
    identical. *)

(** [Domain.recommended_domain_count ()]. *)
val recommended : unit -> int

val capacity : unit -> int

(** Resize the pot (test/bench hook: force real multi-domain execution
    on small machines, or starve it to prove sequential degradation).
    Permits already held stay held; the new capacity bounds future
    grants. *)
val set_capacity : int -> unit

(** [acquire want] grants [min want available] permits (possibly 0). *)
val acquire : int -> int

(** Return permits granted by a previous {!acquire}. *)
val release : int -> unit

(** [set_mem_limit bytes] bounds individual kernel-side allocations
    (workspaces, reallocations, dense outputs): the executor rejects an
    allocation whose estimated size exceeds the limit with a stage-
    [Execute] diagnostic ([E_EXEC_MEM]) {e before} allocating, instead
    of running the process out of memory. [bytes <= 0] removes the
    limit (the default is unlimited). Process-wide. *)
val set_mem_limit : int -> unit

(** The current allocation limit in bytes ([max_int] when unlimited). *)
val mem_limit : unit -> int

(** Permits currently held across the process. *)
val live_extra : unit -> int

(** High-water mark of {!live_extra} since the last {!reset_peak} —
    the oversubscription witness asserted by the concurrency tests. *)
val peak_extra : unit -> int

val reset_peak : unit -> unit
