(* Native execution backend: render a lowered kernel to C
   (Codegen_c.emit_exec), build it with the system C compiler into a
   per-process temp directory, dlopen the shared object and call its
   entry point through the flat ABI implemented by native_stubs.c.

   This is the paper's actual execution model — taco emits C and a
   system compiler turns it into the code that runs — where the rest of
   the executor interprets Imp IR through OCaml closures. The backend
   is strictly optional: every failure between "is there a compiler?"
   and "did dlsym find the entry point?" is reported as [Error reason]
   and the caller (Compile) downgrades to the closure executor.

   Artifact hygiene: the .c/.so/.log files are unlinked as soon as the
   .so is mapped — on Linux dlopen holds the inode alive, so nothing is
   left on disk for the lifetime of the process and nothing needs
   cleanup on exit. [cleanup] (called from Service.shutdown and at_exit)
   sweeps whatever a failed load may have left and removes the process
   directory. Set TACO_NATIVE_KEEP=1 to keep sources for debugging. *)

module Imp = Taco_lower.Imp
module Codegen_c = Taco_lower.Codegen_c
module Trace = Taco_support.Trace

type phases = { emit_ns : int64; cc_ns : int64; dlopen_ns : int64 }

type loaded = {
  l_name : string;  (** kernel name, for spans and diagnostics *)
  l_fn : nativeint;  (** resolved taco_entry pointer *)
  l_handle : nativeint;  (** dlopen handle (never closed while cached) *)
  l_arr_kinds : int array;
      (** per array-parameter marshalling kind, in parameter order:
          0 int input, 1 float in-place, 2 int output (copied back) *)
  l_escapes : (string * Imp.dtype) list;
      (** allocated arrays handed back by the kernel, in escape order *)
  l_phases : phases;
}

(* Layout contract with native_stubs.c: field order here is Field(i)
   there. Do not reorder. *)
type spec = {
  cs_ints : int array;
  cs_floats : float array;
  cs_arrays : Obj.t array;
  cs_kinds : int array;
  cs_esc_kinds : int array;
  cs_mem_limit : int64;
  cs_deadline : int64;
}

external nat_dlopen : string -> nativeint = "taco_nat_dlopen"
external nat_dlsym : nativeint -> string -> nativeint = "taco_nat_dlsym"
external nat_dlclose : nativeint -> unit = "taco_nat_dlclose"
external nat_call : nativeint -> spec -> int * Obj.t array = "taco_nat_call"

(* ------------------------------------------------------------------ *)
(* Compiler resolution and availability probing                       *)
(* ------------------------------------------------------------------ *)

let compiler () =
  match Sys.getenv_opt "TACO_CC" with Some c when c <> "" -> c | _ -> "cc"

(* Part of the kernel-cache key: a compiled entry is only valid for the
   compiler that built it (TACO_CC can change between calls, e.g. the
   bogus-compiler tests). *)
let compiler_id = compiler

let probe_tbl : (string, bool) Hashtbl.t = Hashtbl.create 4
let probe_mutex = Mutex.create ()

(* One [cc -dumpversion] probe per distinct compiler string, cached for
   the process. *)
let available () =
  let cc = compiler () in
  Mutex.lock probe_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock probe_mutex)
    (fun () ->
      match Hashtbl.find_opt probe_tbl cc with
      | Some ok -> ok
      | None ->
          let ok =
            try Sys.command (Filename.quote cc ^ " -dumpversion >/dev/null 2>&1") = 0
            with Sys_error _ -> false
          in
          Hashtbl.add probe_tbl cc ok;
          ok)

(* ------------------------------------------------------------------ *)
(* Temp-directory and artifact bookkeeping                            *)
(* ------------------------------------------------------------------ *)

let keep_artifacts () = Sys.getenv_opt "TACO_NATIVE_KEEP" <> None

let art_mutex = Mutex.create ()
let artifacts : (string, unit) Hashtbl.t = Hashtbl.create 16
let tmp_dir : string option ref = ref None

let track path =
  Mutex.lock art_mutex;
  Hashtbl.replace artifacts path ();
  Mutex.unlock art_mutex

let untrack_remove path =
  (try Sys.remove path with Sys_error _ -> ());
  Mutex.lock art_mutex;
  Hashtbl.remove artifacts path;
  Mutex.unlock art_mutex

(* Remove every artifact still on disk and the process directory itself
   (which only succeeds once empty). Loaded .so handles stay valid:
   their inodes are alive until process exit. *)
let cleanup () =
  let paths =
    Mutex.lock art_mutex;
    let ps = Hashtbl.fold (fun p () acc -> p :: acc) artifacts [] in
    Hashtbl.reset artifacts;
    Mutex.unlock art_mutex;
    ps
  in
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths;
  match !tmp_dir with
  | None -> ()
  | Some d -> ( try Sys.rmdir d with Sys_error _ -> ())

let () = at_exit (fun () -> if not (keep_artifacts ()) then cleanup ())

(* The per-process build directory, created on first use. A read-only
   tmpdir (or any mkdir failure) is an [Error]: the caller counts it as
   a downgrade and serves the request through closures. *)
let ensure_dir () =
  Mutex.lock art_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock art_mutex)
    (fun () ->
      match !tmp_dir with
      | Some d -> Ok d
      | None -> (
          let root = try Filename.get_temp_dir_name () with _ -> "/tmp" in
          let d =
            Filename.concat root (Printf.sprintf "taco_native_%d" (Unix.getpid ()))
          in
          try
            if not (Sys.file_exists d) then Sys.mkdir d 0o700;
            tmp_dir := Some d;
            Ok d
          with Sys_error m ->
            Error (Printf.sprintf "cannot create native build dir %s: %s" d m)))

(* ------------------------------------------------------------------ *)
(* Building and loading                                               *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  try
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents);
    Ok ()
  with Sys_error m -> Error (Printf.sprintf "cannot write %s: %s" path m)

let read_log path =
  try
    In_channel.with_open_bin path (fun ic ->
        let s = In_channel.input_all ic in
        let s = String.trim s in
        if String.length s > 400 then String.sub s 0 400 ^ "..." else s)
  with Sys_error _ -> ""

let arr_kinds kernel =
  let written = Codegen_c.written_arrays kernel in
  kernel.Imp.k_params
  |> List.filter (fun p -> p.Imp.p_array)
  |> List.map (fun p ->
         match p.Imp.p_dtype with
         | Imp.Float -> 1
         | Imp.Int -> if List.mem p.Imp.p_name written then 2 else 0
         | Imp.Bool -> invalid_arg "Native.load: bool parameter")
  |> Array.of_list

(* Emit, compile, load. Every failure is an [Error reason] for the
   caller's counted downgrade — nothing in here raises on the expected
   paths (no compiler, compile error, read-only tmpdir, dlopen/dlsym
   failure). *)
let load (kernel : Imp.kernel) : (loaded, string) result =
  match Codegen_c.exec_unsupported kernel with
  | Some r -> Error ("kernel not expressible natively: " ^ r)
  | None -> (
      if not (available ()) then
        Error (Printf.sprintf "C compiler %S unavailable" (compiler ()))
      else
        match ensure_dir () with
        | Error e -> Error e
        | Ok dir -> (
            let name = kernel.Imp.k_name in
            let t0 = Trace.now_ns () in
            let src =
              Trace.with_span ~cat:"exec" ~args:[ ("kernel", name) ] "native.emit"
                (fun () -> Codegen_c.emit_exec kernel)
            in
            let t1 = Trace.now_ns () in
            let cc = compiler () in
            (* The digest covers source and compiler so concurrent loads
               of distinct structures (or one structure under two
               TACO_CC values) never share artifact paths. *)
            let tag = Digest.to_hex (Digest.string (cc ^ "\x00" ^ src)) in
            let base = Filename.concat dir ("k_" ^ tag) in
            let cfile = base ^ ".c" and sofile = base ^ ".so" and logfile = base ^ ".log" in
            List.iter track [ cfile; sofile; logfile ];
            let discard () = List.iter untrack_remove [ cfile; sofile; logfile ] in
            match write_file cfile src with
            | Error e ->
                discard ();
                Error e
            | Ok () -> (
                (* -ffp-contract=off: the closure executor evaluates a*b+c
                   as multiply-then-add with intermediate rounding; letting
                   gcc fuse it into fma would break bit-identity. *)
                let cmd =
                  Printf.sprintf "%s -O3 -shared -fPIC -ffp-contract=off%s -o %s %s 2> %s"
                    (Filename.quote cc)
                    (if Codegen_c.has_parallel kernel then " -fopenmp" else "")
                    (Filename.quote sofile) (Filename.quote cfile)
                    (Filename.quote logfile)
                in
                let rc =
                  Trace.with_span ~cat:"exec" ~args:[ ("kernel", name) ] "native.cc"
                    (fun () -> try Sys.command cmd with Sys_error _ -> 127)
                in
                let t2 = Trace.now_ns () in
                if rc <> 0 then begin
                  let log = read_log logfile in
                  discard ();
                  Error
                    (Printf.sprintf "%s exited with %d building %s%s" cc rc name
                       (if log = "" then "" else ": " ^ log))
                end
                else
                  let handle =
                    Trace.with_span ~cat:"exec" ~args:[ ("kernel", name) ] "native.dlopen"
                      (fun () -> nat_dlopen sofile)
                  in
                  let t3 = Trace.now_ns () in
                  if handle = 0n then begin
                    discard ();
                    Error (Printf.sprintf "dlopen failed for %s" name)
                  end
                  else
                    let fn = nat_dlsym handle Codegen_c.entry_name in
                    if fn = 0n then begin
                      nat_dlclose handle;
                      discard ();
                      Error (Printf.sprintf "dlsym(%s) failed for %s" Codegen_c.entry_name name)
                    end
                    else begin
                      (* Mapped: drop the on-disk files now (the inode
                         stays alive) unless asked to keep them. *)
                      if keep_artifacts () then untrack_remove logfile else discard ();
                      Ok
                        {
                          l_name = name;
                          l_fn = fn;
                          l_handle = handle;
                          l_arr_kinds = arr_kinds kernel;
                          l_escapes = Codegen_c.exec_escapes kernel;
                          l_phases =
                            {
                              emit_ns = Int64.sub t1 t0;
                              cc_ns = Int64.sub t2 t1;
                              dlopen_ns = Int64.sub t3 t2;
                            };
                        }
                    end)))

let run (l : loaded) (s : spec) : int * Obj.t array =
  Trace.with_span ~cat:"exec" ~args:[ ("kernel", l.l_name) ] "native.run"
    (fun () -> nat_call l.l_fn s)
