module Imp = Taco_lower.Imp
module Diag = Taco_support.Diag
module Trace = Taco_support.Trace
module Fault = Taco_support.Faultinject

type arg =
  | Aint of int
  | Afloat of float
  | Aint_array of int array
  | Afloat_array of float array

type env = {
  ints : int array;
  floats : float array;
  bools : bool array;
  iarr : int array array;
  farr : float array array;
  barr : bool array array;
  mutable par_domains : int;
      (* Requested chunk count for ParallelFor regions in this run.
         Determines the deterministic chunking, not the number of
         domains actually spawned (that is Budget-limited). *)
  mutable deadline_ns : int64;
      (* Cooperative-cancellation deadline on the Trace.now_ns clock;
         [Int64.max_int] means none. Outermost loops poll it every 256
         iterations and abort with E_EXEC_CANCELLED once it passes. *)
}

type slot = { s_dtype : Imp.dtype; s_array : bool; s_index : int }

(* Executor work counters, bumped by the instrumented closures of a
   profiled compilation. Mutable record fields keep the increments to a
   load, an add and a store. *)
type prof = {
  mutable p_iters : int;
  mutable p_scalar_ops : int;
  mutable p_allocs : int;
  mutable p_alloc_elems : int;
  mutable p_zero_elems : int;
  mutable p_reallocs : int;
  mutable p_sorts : int;
}

let fresh_prof () =
  {
    p_iters = 0;
    p_scalar_ops = 0;
    p_allocs = 0;
    p_alloc_elems = 0;
    p_zero_elems = 0;
    p_reallocs = 0;
    p_sorts = 0;
  }

type run_stats = {
  iterations : int;
  scalar_ops : int;
  allocs : int;
  alloc_elems : int;
  zero_bytes : int;
  reallocs : int;
  sorts : int;
}

(* Which executor runs the kernel. [`Closure] interprets the Imp IR
   through the compiled OCaml closures below; [`Native] renders the
   kernel to C, builds it with the system compiler and calls it through
   dlopen (see {!Native}), falling back to the closures — with a
   counted, traced downgrade — whenever the native path is unavailable. *)
type backend = [ `Closure | `Native ]

type backend_stats = {
  native_builds : int;  (** successful emit+cc+dlopen builds *)
  native_runs : int;  (** kernel executions through the native entry *)
  closure_runs : int;  (** kernel executions through closures *)
  downgrades : int;  (** native requests served by closures instead *)
}

let bs_native_builds = Atomic.make 0
let bs_native_runs = Atomic.make 0
let bs_closure_runs = Atomic.make 0
let bs_downgrades = Atomic.make 0

let backend_stats () =
  {
    native_builds = Atomic.get bs_native_builds;
    native_runs = Atomic.get bs_native_runs;
    closure_runs = Atomic.get bs_closure_runs;
    downgrades = Atomic.get bs_downgrades;
  }

type compiled = {
  c_kernel : Imp.kernel;
  c_checked : bool;
  c_prof : prof option;
  c_requested : backend;  (* what the caller asked for (part of cache validity) *)
  c_native : Native.loaded option;  (* Some when the native build succeeded *)
  c_downgrade : string option;  (* why a [`Native] request fell back, if it did *)
  slots : (string, slot) Hashtbl.t;
  n_ints : int;
  n_floats : int;
  n_bools : int;
  n_iarr : int;
  n_farr : int;
  n_barr : int;
  code : env -> unit;
}

(* The executor that will actually run this kernel. *)
let backend_of c : backend = if c.c_native = None then `Closure else `Native

let downgrade_reason c = c.c_downgrade

let native_phases c = Option.map (fun l -> l.Native.l_phases) c.c_native

let kernel c = c.c_kernel

let is_checked c = c.c_checked

exception Type_error of string

let terror fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

(* Compilation context: the slot table plus the checked-execution flag
   and kernel name (so bounds diagnostics can name their kernel).
   [prof = None] compiles exactly the uninstrumented closures. *)
type ctx = {
  slots : (string, slot) Hashtbl.t;
  checked : bool;
  kname : string;
  prof : prof option;
  depth : int;
      (* Loop-nesting depth at this statement. Only depth-0 loops carry
         the deadline watchdog, keeping the poll out of inner hot loops
         (an outermost loop iterates often enough to bound latency). *)
}

(* Raised by checked closures on an out-of-bounds array access. *)
let oob ~ctx ~var ~index ~len =
  Diag.fail ~stage:Diag.Execute ~code:"E_EXEC_BOUNDS"
    ~context:
      [
        ("kernel", ctx.kname);
        ("variable", var);
        ("index", string_of_int index);
        ("length", string_of_int len);
      ]
    "array access out of bounds: %s[%d] with %d elements" var index len

(* Raised by the cooperative watchdog when a run's deadline passes while
   a kernel loop is still going. *)
let cancelled ~kname =
  Diag.fail ~stage:Diag.Execute ~code:"E_EXEC_CANCELLED"
    ~context:[ ("kernel", kname) ]
    "deadline expired: cancelled kernel %s mid-execution" kname

(* Iterations between watchdog clock reads in guarded loops. *)
let watchdog_mask = 255

(* Pre-allocation memory guard: every executor allocation estimates its
   footprint (8 bytes per element for int/float/bool slots alike — a
   deliberate over-estimate for bools) and rejects with E_EXEC_MEM
   before touching the allocator when it exceeds [Budget.mem_limit]. *)
let check_alloc ~kname ~var elems =
  let limit = Budget.mem_limit () in
  if limit <> max_int && elems > limit / 8 then
    Diag.fail ~stage:Diag.Execute ~code:"E_EXEC_MEM"
      ~context:
        [
          ("kernel", kname);
          ("variable", var);
          ("bytes", string_of_int (elems * 8));
          ("limit_bytes", string_of_int limit);
        ]
      "allocation of %d elements (%d bytes) for %s exceeds the memory budget (%d bytes)"
      elems (elems * 8) var limit

(* ------------------------------------------------------------------ *)
(* Slot assignment                                                     *)
(* ------------------------------------------------------------------ *)

let assign_slots (k : Imp.kernel) =
  let slots = Hashtbl.create 64 in
  let counters = [| 0; 0; 0; 0; 0; 0 |] in
  let category dtype arr =
    match (dtype, arr) with
    | Imp.Int, false -> 0
    | Imp.Float, false -> 1
    | Imp.Bool, false -> 2
    | Imp.Int, true -> 3
    | Imp.Float, true -> 4
    | Imp.Bool, true -> 5
  in
  let declare name dtype arr =
    match Hashtbl.find_opt slots name with
    | Some s ->
        if s.s_dtype <> dtype || s.s_array <> arr then
          terror "variable %s redeclared with a different type" name
    | None ->
        let c = category dtype arr in
        Hashtbl.replace slots name { s_dtype = dtype; s_array = arr; s_index = counters.(c) };
        counters.(c) <- counters.(c) + 1
  in
  List.iter (fun p -> declare p.Imp.p_name p.Imp.p_dtype p.Imp.p_array) k.k_params;
  let rec scan = function
    | Imp.Decl (t, v, _) -> declare v t false
    | Imp.Alloc (t, v, _) -> declare v t true
    | Imp.For (v, _, _, body) | Imp.ParallelFor (v, _, _, body, _) ->
        declare v Imp.Int false;
        List.iter scan body
    | Imp.While (_, body) -> List.iter scan body
    | Imp.If (_, a, b) ->
        List.iter scan a;
        List.iter scan b
    | Imp.Assign _ | Imp.Store _ | Imp.Store_add _ | Imp.Store_reduce _ | Imp.Realloc _
    | Imp.Memset _ | Imp.Fill _ | Imp.Sort _ | Imp.Comment _ -> ()
  in
  List.iter scan k.k_body;
  (slots, counters)

let find_slot ctx v =
  match Hashtbl.find_opt ctx.slots v with
  | Some s -> s
  | None -> terror "unknown variable %s" v

(* ------------------------------------------------------------------ *)
(* Typing                                                              *)
(* ------------------------------------------------------------------ *)

let rec infer ctx = function
  | Imp.Var v -> (
      match Hashtbl.find_opt ctx.slots v with
      | Some s when not s.s_array -> s.s_dtype
      | Some _ -> terror "array %s used as a scalar" v
      | None -> terror "unknown variable %s" v)
  | Imp.Int_lit _ -> Imp.Int
  | Imp.Float_lit _ -> Imp.Float
  | Imp.Bool_lit _ -> Imp.Bool
  | Imp.Load (a, _) -> (
      match Hashtbl.find_opt ctx.slots a with
      | Some s when s.s_array -> s.s_dtype
      | Some _ -> terror "scalar %s indexed as an array" a
      | None -> terror "unknown array %s" a)
  | Imp.Binop ((Imp.Add | Imp.Sub | Imp.Mul | Imp.Div | Imp.Min | Imp.Max), a, b) -> (
      match (infer ctx a, infer ctx b) with
      | Imp.Int, Imp.Int -> Imp.Int
      | Imp.Float, Imp.Float -> Imp.Float
      | ta, tb ->
          if ta <> tb then terror "arithmetic on mixed types" else terror "arithmetic on bools")
  | Imp.Binop ((Imp.Eq | Imp.Ne | Imp.Lt | Imp.Le | Imp.Gt | Imp.Ge), a, b) ->
      if infer ctx a <> infer ctx b then terror "comparison on mixed types" else Imp.Bool
  | Imp.Binop ((Imp.And | Imp.Or), a, b) ->
      if infer ctx a <> Imp.Bool || infer ctx b <> Imp.Bool then
        terror "logical operator on non-bool"
      else Imp.Bool
  | Imp.Not e -> if infer ctx e <> Imp.Bool then terror "not on non-bool" else Imp.Bool
  | Imp.Round_single e ->
      if infer ctx e <> Imp.Float then terror "round_single on non-float" else Imp.Float
  | Imp.Ternary (c, a, b) ->
      if infer ctx c <> Imp.Bool then terror "ternary condition not bool"
      else
        let ta = infer ctx a in
        if ta <> infer ctx b then terror "ternary branches of mixed type" else ta

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(*                                                                     *)
(* Every compiled expression node is a closure, so the interpreter's   *)
(* unit of cost is the closure call. Operands that are slot reads or   *)
(* literals are therefore folded into their consumer instead of being  *)
(* compiled to their own closure: a binop over two scalars or a load   *)
(* at a scalar index is one call, not three. The optimizer leans on    *)
(* this directly — reducing operands to Var/literal shape (copy        *)
(* propagation, CSE, LICM temporaries) is what moves an expression     *)
(* onto these fast paths.                                              *)
(* ------------------------------------------------------------------ *)

(* Operand shape: a direct int-slot read, an int constant, or a
   general compiled subexpression. *)
type ishape = ISlot of int | ILit of int | IGen of (env -> int)

type fshape = FSlot of int | FLit of float | FGen of (env -> float)

let rec cint ctx (e : Imp.expr) : env -> int =
  match e with
  | Imp.Var v ->
      let s = find_slot ctx v in
      if s.s_dtype <> Imp.Int || s.s_array then terror "expected int scalar %s" v;
      let i = s.s_index in
      fun env -> Array.unsafe_get env.ints i
  | Imp.Int_lit n -> fun _ -> n
  | Imp.Load (a, idx) ->
      let s = find_slot ctx a in
      if s.s_dtype <> Imp.Int || not s.s_array then terror "expected int array %s" a;
      let i = s.s_index in
      if ctx.checked then
        let cidx = cint ctx idx in
        fun env ->
          let arr = Array.unsafe_get env.iarr i in
          let k = cidx env in
          if k < 0 || k >= Array.length arr then
            oob ~ctx ~var:a ~index:k ~len:(Array.length arr);
          Array.unsafe_get arr k
      else (
        match ishape ctx idx with
        | ISlot j ->
            fun env ->
              (Array.unsafe_get env.iarr i).(Array.unsafe_get env.ints j)
        | ILit n -> fun env -> (Array.unsafe_get env.iarr i).(n)
        | IGen g -> fun env -> (Array.unsafe_get env.iarr i).(g env))
  | Imp.Binop (op, a, b) -> (
      (* Arithmetic keeps the uniform one-closure-per-node scheme:
         canonicalizing repeated index arithmetic into scalar slots is
         the optimizer's job (CSE/LICM), and the slot reads it produces
         hit the operand fast paths of the consumers below (loads,
         stores, comparisons). *)
      let ca = cint ctx a and cb = cint ctx b in
      match op with
      | Imp.Add -> fun env -> ca env + cb env
      | Imp.Sub -> fun env -> ca env - cb env
      | Imp.Mul -> fun env -> ca env * cb env
      | Imp.Div -> fun env -> ca env / cb env
      | Imp.Min -> fun env -> min (ca env) (cb env)
      | Imp.Max -> fun env -> max (ca env) (cb env)
      | Imp.Eq | Imp.Ne | Imp.Lt | Imp.Le | Imp.Gt | Imp.Ge | Imp.And | Imp.Or ->
          terror "boolean expression in int context")
  | Imp.Ternary (c, a, b) ->
      let cc = cbool ctx c and ca = cint ctx a and cb = cint ctx b in
      fun env -> if cc env then ca env else cb env
  | Imp.Float_lit _ | Imp.Bool_lit _ | Imp.Not _ | Imp.Round_single _ ->
      terror "expected an int expression"

and ishape ctx (e : Imp.expr) : ishape =
  match e with
  | Imp.Var v ->
      let s = find_slot ctx v in
      if s.s_dtype <> Imp.Int || s.s_array then terror "expected int scalar %s" v;
      ISlot s.s_index
  | Imp.Int_lit n -> ILit n
  | _ -> IGen (cint ctx e)

and iget = function
  | ISlot i -> fun env -> Array.unsafe_get env.ints i
  | ILit n -> fun _ -> n
  | IGen g -> g

and cfloat ctx (e : Imp.expr) : env -> float =
  match e with
  | Imp.Var v ->
      let s = find_slot ctx v in
      if s.s_dtype <> Imp.Float || s.s_array then terror "expected float scalar %s" v;
      let i = s.s_index in
      fun env -> Array.unsafe_get env.floats i
  | Imp.Float_lit v -> fun _ -> v
  | Imp.Load (a, idx) ->
      let s = find_slot ctx a in
      if s.s_dtype <> Imp.Float || not s.s_array then terror "expected float array %s" a;
      let i = s.s_index in
      if ctx.checked then
        let cidx = cint ctx idx in
        fun env ->
          let arr = Array.unsafe_get env.farr i in
          let k = cidx env in
          if k < 0 || k >= Array.length arr then
            oob ~ctx ~var:a ~index:k ~len:(Array.length arr);
          Array.unsafe_get arr k
      else (
        match ishape ctx idx with
        | ISlot j ->
            fun env ->
              (Array.unsafe_get env.farr i).(Array.unsafe_get env.ints j)
        | ILit n -> fun env -> (Array.unsafe_get env.farr i).(n)
        | IGen g -> fun env -> (Array.unsafe_get env.farr i).(g env))
  | Imp.Binop (op, a, b) -> (
      let sa = fshape ctx a and sb = fshape ctx b in
      match (op, sa, sb) with
      | Imp.Add, FSlot i, FSlot j ->
          fun env -> Array.unsafe_get env.floats i +. Array.unsafe_get env.floats j
      | Imp.Add, FSlot i, FGen g -> fun env -> Array.unsafe_get env.floats i +. g env
      | Imp.Add, FGen g, FSlot j -> fun env -> g env +. Array.unsafe_get env.floats j
      | Imp.Add, FGen g, FGen h -> fun env -> g env +. h env
      | Imp.Add, _, _ ->
          let ga = fget sa and gb = fget sb in
          fun env -> ga env +. gb env
      | Imp.Sub, FSlot i, FSlot j ->
          fun env -> Array.unsafe_get env.floats i -. Array.unsafe_get env.floats j
      | Imp.Sub, FSlot i, FGen g -> fun env -> Array.unsafe_get env.floats i -. g env
      | Imp.Sub, FGen g, FSlot j -> fun env -> g env -. Array.unsafe_get env.floats j
      | Imp.Sub, FGen g, FGen h -> fun env -> g env -. h env
      | Imp.Sub, _, _ ->
          let ga = fget sa and gb = fget sb in
          fun env -> ga env -. gb env
      | Imp.Mul, FSlot i, FSlot j ->
          fun env -> Array.unsafe_get env.floats i *. Array.unsafe_get env.floats j
      | Imp.Mul, FSlot i, FGen g -> fun env -> Array.unsafe_get env.floats i *. g env
      | Imp.Mul, FGen g, FSlot j -> fun env -> g env *. Array.unsafe_get env.floats j
      | Imp.Mul, FGen g, FGen h -> fun env -> g env *. h env
      | Imp.Mul, _, _ ->
          let ga = fget sa and gb = fget sb in
          fun env -> ga env *. gb env
      | Imp.Div, _, _ ->
          let ga = fget sa and gb = fget sb in
          fun env -> ga env /. gb env
      | Imp.Min, _, _ ->
          let ga = fget sa and gb = fget sb in
          fun env -> Float.min (ga env) (gb env)
      | Imp.Max, _, _ ->
          let ga = fget sa and gb = fget sb in
          fun env -> Float.max (ga env) (gb env)
      | (Imp.Eq | Imp.Ne | Imp.Lt | Imp.Le | Imp.Gt | Imp.Ge | Imp.And | Imp.Or), _, _ ->
          terror "boolean expression in float context")
  | Imp.Ternary (c, a, b) ->
      let cc = cbool ctx c and ca = cfloat ctx a and cb = cfloat ctx b in
      fun env -> if cc env then ca env else cb env
  | Imp.Round_single e ->
      let ce = cfloat ctx e in
      fun env -> Int32.float_of_bits (Int32.bits_of_float (ce env))
  | Imp.Int_lit _ | Imp.Bool_lit _ | Imp.Not _ -> terror "expected a float expression"

and fshape ctx (e : Imp.expr) : fshape =
  match e with
  | Imp.Var v ->
      let s = find_slot ctx v in
      if s.s_dtype <> Imp.Float || s.s_array then terror "expected float scalar %s" v;
      FSlot s.s_index
  | Imp.Float_lit v -> FLit v
  | _ -> FGen (cfloat ctx e)

and fget = function
  | FSlot i -> fun env -> Array.unsafe_get env.floats i
  | FLit v -> fun _ -> v
  | FGen g -> g

and cbool ctx (e : Imp.expr) : env -> bool =
  match e with
  | Imp.Var v ->
      let s = find_slot ctx v in
      if s.s_dtype <> Imp.Bool || s.s_array then terror "expected bool scalar %s" v;
      let i = s.s_index in
      fun env -> Array.unsafe_get env.bools i
  | Imp.Bool_lit b -> fun _ -> b
  | Imp.Load (a, idx) ->
      let s = find_slot ctx a in
      if s.s_dtype <> Imp.Bool || not s.s_array then terror "expected bool array %s" a;
      let i = s.s_index in
      if ctx.checked then
        let cidx = cint ctx idx in
        fun env ->
          let arr = Array.unsafe_get env.barr i in
          let k = cidx env in
          if k < 0 || k >= Array.length arr then
            oob ~ctx ~var:a ~index:k ~len:(Array.length arr);
          Array.unsafe_get arr k
      else (
        match ishape ctx idx with
        | ISlot j ->
            fun env ->
              (Array.unsafe_get env.barr i).(Array.unsafe_get env.ints j)
        | ILit n -> fun env -> (Array.unsafe_get env.barr i).(n)
        | IGen g -> fun env -> (Array.unsafe_get env.barr i).(g env))
  | Imp.Binop ((Imp.And | Imp.Or) as op, a, b) -> (
      let ca = cbool ctx a and cb = cbool ctx b in
      match op with
      | Imp.And -> fun env -> ca env && cb env
      | Imp.Or -> fun env -> ca env || cb env
      | _ -> assert false)
  | Imp.Binop (((Imp.Eq | Imp.Ne | Imp.Lt | Imp.Le | Imp.Gt | Imp.Ge) as op), a, b) -> (
      match infer ctx a with
      | Imp.Int -> (
          let sa = ishape ctx a and sb = ishape ctx b in
          match (op, sa, sb) with
          | Imp.Eq, ISlot i, ISlot j ->
              fun env -> Array.unsafe_get env.ints i = Array.unsafe_get env.ints j
          | Imp.Eq, ISlot i, ILit n -> fun env -> Array.unsafe_get env.ints i = n
          | Imp.Eq, _, _ ->
              let ga = iget sa and gb = iget sb in
              fun env -> ga env = gb env
          | Imp.Ne, ISlot i, ISlot j ->
              fun env -> Array.unsafe_get env.ints i <> Array.unsafe_get env.ints j
          | Imp.Ne, ISlot i, ILit n -> fun env -> Array.unsafe_get env.ints i <> n
          | Imp.Ne, _, _ ->
              let ga = iget sa and gb = iget sb in
              fun env -> ga env <> gb env
          | Imp.Lt, ISlot i, ISlot j ->
              fun env -> Array.unsafe_get env.ints i < Array.unsafe_get env.ints j
          | Imp.Lt, ISlot i, ILit n -> fun env -> Array.unsafe_get env.ints i < n
          | Imp.Lt, IGen g, ISlot j -> fun env -> g env < Array.unsafe_get env.ints j
          | Imp.Lt, ISlot i, IGen g -> fun env -> Array.unsafe_get env.ints i < g env
          | Imp.Lt, _, _ ->
              let ga = iget sa and gb = iget sb in
              fun env -> ga env < gb env
          | Imp.Le, ISlot i, ISlot j ->
              fun env -> Array.unsafe_get env.ints i <= Array.unsafe_get env.ints j
          | Imp.Le, ISlot i, ILit n -> fun env -> Array.unsafe_get env.ints i <= n
          | Imp.Le, _, _ ->
              let ga = iget sa and gb = iget sb in
              fun env -> ga env <= gb env
          | Imp.Gt, ISlot i, ISlot j ->
              fun env -> Array.unsafe_get env.ints i > Array.unsafe_get env.ints j
          | Imp.Gt, ISlot i, ILit n -> fun env -> Array.unsafe_get env.ints i > n
          | Imp.Gt, _, _ ->
              let ga = iget sa and gb = iget sb in
              fun env -> ga env > gb env
          | Imp.Ge, ISlot i, ISlot j ->
              fun env -> Array.unsafe_get env.ints i >= Array.unsafe_get env.ints j
          | Imp.Ge, ISlot i, ILit n -> fun env -> Array.unsafe_get env.ints i >= n
          | Imp.Ge, _, _ ->
              let ga = iget sa and gb = iget sb in
              fun env -> ga env >= gb env
          | _ -> assert false)
      | Imp.Float -> (
          let ca = cfloat ctx a and cb = cfloat ctx b in
          match op with
          | Imp.Eq -> fun env -> ca env = cb env
          | Imp.Ne -> fun env -> ca env <> cb env
          | Imp.Lt -> fun env -> ca env < cb env
          | Imp.Le -> fun env -> ca env <= cb env
          | Imp.Gt -> fun env -> ca env > cb env
          | Imp.Ge -> fun env -> ca env >= cb env
          | _ -> assert false)
      | Imp.Bool -> terror "comparison on bools")
  | Imp.Not e ->
      let ce = cbool ctx e in
      fun env -> not (ce env)
  | Imp.Ternary (c, a, b) ->
      let cc = cbool ctx c and ca = cbool ctx a and cb = cbool ctx b in
      fun env -> if cc env then ca env else cb env
  | Imp.Int_lit _ | Imp.Float_lit _ | Imp.Binop _ | Imp.Round_single _ ->
      terror "expected a bool expression"

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)
(* ------------------------------------------------------------------ *)

let seq (fs : (env -> unit) array) : env -> unit =
  match Array.length fs with
  | 0 -> fun _ -> ()
  | 1 -> fs.(0)
  | 2 ->
      let a = fs.(0) and b = fs.(1) in
      fun env -> a env; b env
  | _ ->
      fun env ->
        for i = 0 to Array.length fs - 1 do
          (Array.unsafe_get fs i) env
        done

(* In-place monomorphic sort of the int slice [lo, hi): Sort runs once
   per assembled row, on slices that are usually tiny, so the generic
   [Array.sort compare] path (an allocation, a blit and a polymorphic
   comparison per step) is measurable kernel overhead. Insertion sort
   below a small cutoff, median-of-three quicksort above it. *)
let sort_int_range (arr : int array) lo hi =
  let swap a b =
    let t = Array.unsafe_get arr a in
    Array.unsafe_set arr a (Array.unsafe_get arr b);
    Array.unsafe_set arr b t
  in
  let insertion lo hi =
    for idx = lo + 1 to hi - 1 do
      let x = Array.unsafe_get arr idx in
      let j = ref (idx - 1) in
      while !j >= lo && Array.unsafe_get arr !j > x do
        Array.unsafe_set arr (!j + 1) (Array.unsafe_get arr !j);
        decr j
      done;
      Array.unsafe_set arr (!j + 1) x
    done
  in
  let rec qsort lo hi =
    if hi - lo <= 16 then insertion lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      (* Median of first/middle/last as the pivot, parked at [lo]. *)
      if Array.unsafe_get arr mid < Array.unsafe_get arr lo then swap mid lo;
      if Array.unsafe_get arr (hi - 1) < Array.unsafe_get arr lo then swap (hi - 1) lo;
      if Array.unsafe_get arr (hi - 1) < Array.unsafe_get arr mid then swap (hi - 1) mid;
      swap lo mid;
      let pivot = Array.unsafe_get arr lo in
      let i = ref (lo + 1) and j = ref (hi - 1) in
      while !i <= !j do
        while !i <= !j && Array.unsafe_get arr !i <= pivot do incr i done;
        while !i <= !j && Array.unsafe_get arr !j > pivot do decr j done;
        if !i < !j then swap !i !j
      done;
      swap lo !j;
      qsort lo !j;
      qsort (!j + 1) hi
    end
  in
  if hi - lo > 1 then qsort lo hi

(* [cstmt] adds the profiling wrapper (when the context asks for it)
   around the uninstrumented closure from [cstmt_base]; loop iteration
   counts live inside the For/While arms of [cstmt_base] where the trip
   counts are at hand. With [prof = None] the wrapper is the identity
   and the closures are bit-for-bit the unprofiled ones. *)
let rec cstmt ctx (s : Imp.stmt) : env -> unit =
  let f = cstmt_base ctx s in
  match ctx.prof with
  | None -> f
  | Some st -> (
      match s with
      | Imp.Decl _ | Imp.Assign _ | Imp.Store _ | Imp.Store_add _ | Imp.Store_reduce _ ->
          fun env ->
            st.p_scalar_ops <- st.p_scalar_ops + 1;
            f env
      | Imp.Alloc (_, _, n) ->
          (* The extent expression is pure; re-evaluating it for the
             counters cannot diverge from the allocation's own read. *)
          let cn = cint ctx n in
          fun env ->
            let m = max 1 (cn env) in
            st.p_allocs <- st.p_allocs + 1;
            st.p_alloc_elems <- st.p_alloc_elems + m;
            st.p_zero_elems <- st.p_zero_elems + m;
            f env
      | Imp.Memset (_, n) | Imp.Fill (_, n, _) ->
          let cn = cint ctx n in
          fun env ->
            st.p_zero_elems <- st.p_zero_elems + max 0 (cn env);
            f env
      | Imp.Realloc _ ->
          fun env ->
            st.p_reallocs <- st.p_reallocs + 1;
            f env
      | Imp.Sort _ ->
          fun env ->
            st.p_sorts <- st.p_sorts + 1;
            f env
      | Imp.For _ | Imp.ParallelFor _ | Imp.While _ | Imp.If _ | Imp.Comment _ -> f)

and cstmt_base ctx (s : Imp.stmt) : env -> unit =
  match s with
  | Imp.Decl (_, v, e) | Imp.Assign (v, e) -> (
      let s = find_slot ctx v in
      let i = s.s_index in
      match s.s_dtype with
      | Imp.Int ->
          let ce = cint ctx e in
          fun env -> Array.unsafe_set env.ints i (ce env)
      | Imp.Float ->
          let ce = cfloat ctx e in
          fun env -> Array.unsafe_set env.floats i (ce env)
      | Imp.Bool ->
          let ce = cbool ctx e in
          fun env -> Array.unsafe_set env.bools i (ce env))
  | Imp.Store (a, idx, v) -> (
      let s = find_slot ctx a in
      let i = s.s_index in
      let guard env arr k =
        if k < 0 || k >= Array.length arr then
          oob ~ctx ~var:a ~index:k ~len:(Array.length arr);
        ignore env
      in
      match s.s_dtype with
      | Imp.Float -> (
          let cv = cfloat ctx v in
          if ctx.checked then
            let cidx = cint ctx idx in
            fun env ->
              let arr = Array.unsafe_get env.farr i in
              let k = cidx env in
              guard env arr k;
              Array.unsafe_set arr k (cv env)
          else
            match ishape ctx idx with
            | ISlot j ->
                fun env ->
                  (Array.unsafe_get env.farr i).(Array.unsafe_get env.ints j) <- cv env
            | ILit n -> fun env -> (Array.unsafe_get env.farr i).(n) <- cv env
            | IGen g -> fun env -> (Array.unsafe_get env.farr i).(g env) <- cv env)
      | Imp.Int -> (
          let cv = cint ctx v in
          if ctx.checked then
            let cidx = cint ctx idx in
            fun env ->
              let arr = Array.unsafe_get env.iarr i in
              let k = cidx env in
              guard env arr k;
              Array.unsafe_set arr k (cv env)
          else
            match ishape ctx idx with
            | ISlot j ->
                fun env ->
                  (Array.unsafe_get env.iarr i).(Array.unsafe_get env.ints j) <- cv env
            | ILit n -> fun env -> (Array.unsafe_get env.iarr i).(n) <- cv env
            | IGen g -> fun env -> (Array.unsafe_get env.iarr i).(g env) <- cv env)
      | Imp.Bool -> (
          let cv = cbool ctx v in
          if ctx.checked then
            let cidx = cint ctx idx in
            fun env ->
              let arr = Array.unsafe_get env.barr i in
              let k = cidx env in
              guard env arr k;
              Array.unsafe_set arr k (cv env)
          else
            match ishape ctx idx with
            | ISlot j ->
                fun env ->
                  (Array.unsafe_get env.barr i).(Array.unsafe_get env.ints j) <- cv env
            | ILit n -> fun env -> (Array.unsafe_get env.barr i).(n) <- cv env
            | IGen g -> fun env -> (Array.unsafe_get env.barr i).(g env) <- cv env))
  | Imp.Store_add (a, idx, v) -> (
      let s = find_slot ctx a in
      let i = s.s_index in
      match s.s_dtype with
      | Imp.Float -> (
          let cv = cfloat ctx v in
          if ctx.checked then
            let cidx = cint ctx idx in
            fun env ->
              let arr = Array.unsafe_get env.farr i in
              let k = cidx env in
              if k < 0 || k >= Array.length arr then
                oob ~ctx ~var:a ~index:k ~len:(Array.length arr);
              Array.unsafe_set arr k (Array.unsafe_get arr k +. cv env)
          else
            match ishape ctx idx with
            | ISlot j ->
                fun env ->
                  let arr = Array.unsafe_get env.farr i in
                  let k = Array.unsafe_get env.ints j in
                  arr.(k) <- arr.(k) +. cv env
            | ILit n ->
                fun env ->
                  let arr = Array.unsafe_get env.farr i in
                  arr.(n) <- arr.(n) +. cv env
            | IGen g ->
                fun env ->
                  let arr = Array.unsafe_get env.farr i in
                  let k = g env in
                  arr.(k) <- arr.(k) +. cv env)
      | Imp.Int -> (
          let cv = cint ctx v in
          if ctx.checked then
            let cidx = cint ctx idx in
            fun env ->
              let arr = Array.unsafe_get env.iarr i in
              let k = cidx env in
              if k < 0 || k >= Array.length arr then
                oob ~ctx ~var:a ~index:k ~len:(Array.length arr);
              Array.unsafe_set arr k (Array.unsafe_get arr k + cv env)
          else
            match ishape ctx idx with
            | ISlot j ->
                fun env ->
                  let arr = Array.unsafe_get env.iarr i in
                  let k = Array.unsafe_get env.ints j in
                  arr.(k) <- arr.(k) + cv env
            | ILit n ->
                fun env ->
                  let arr = Array.unsafe_get env.iarr i in
                  arr.(n) <- arr.(n) + cv env
            | IGen g ->
                fun env ->
                  let arr = Array.unsafe_get env.iarr i in
                  let k = g env in
                  arr.(k) <- arr.(k) + cv env)
      | Imp.Bool -> terror "+= on bool array %s" a)
  | Imp.Store_reduce (r, a, idx, v) -> (
      let s = find_slot ctx a in
      let i = s.s_index in
      let combine =
        match r with
        | Imp.Red_min -> fun a v -> if v < a then v else a
        | Imp.Red_max -> fun a v -> if v > a then v else a
        | Imp.Red_or -> fun a v -> if a <> 0. || v <> 0. then 1. else 0.
      in
      match s.s_dtype with
      | Imp.Float -> (
          let cv = cfloat ctx v in
          if ctx.checked then
            let cidx = cint ctx idx in
            fun env ->
              let arr = Array.unsafe_get env.farr i in
              let k = cidx env in
              if k < 0 || k >= Array.length arr then
                oob ~ctx ~var:a ~index:k ~len:(Array.length arr);
              Array.unsafe_set arr k (combine (Array.unsafe_get arr k) (cv env))
          else
            match ishape ctx idx with
            | ISlot j ->
                fun env ->
                  let arr = Array.unsafe_get env.farr i in
                  let k = Array.unsafe_get env.ints j in
                  arr.(k) <- combine arr.(k) (cv env)
            | ILit n ->
                fun env ->
                  let arr = Array.unsafe_get env.farr i in
                  arr.(n) <- combine arr.(n) (cv env)
            | IGen g ->
                fun env ->
                  let arr = Array.unsafe_get env.farr i in
                  let k = g env in
                  arr.(k) <- combine arr.(k) (cv env))
      | Imp.Int | Imp.Bool -> terror "reduce-store on non-float array %s" a)
  | Imp.Alloc (t, v, n) -> (
      let i = (find_slot ctx v).s_index in
      let cn = cint ctx n in
      let kname = ctx.kname in
      let size env =
        let m = max 1 (cn env) in
        Fault.hit ~stage:Diag.Execute "exec.alloc";
        check_alloc ~kname ~var:v m;
        m
      in
      match t with
      | Imp.Int -> fun env -> env.iarr.(i) <- Array.make (size env) 0
      | Imp.Float -> fun env -> env.farr.(i) <- Array.make (size env) 0.
      | Imp.Bool -> fun env -> env.barr.(i) <- Array.make (size env) false)
  | Imp.Realloc (v, n) -> (
      let s = find_slot ctx v in
      let i = s.s_index in
      let cn = cint ctx n in
      let kname = ctx.kname in
      let size env old_len =
        let m = max old_len (cn env) in
        check_alloc ~kname ~var:v m;
        m
      in
      match s.s_dtype with
      | Imp.Int ->
          fun env ->
            let old = env.iarr.(i) in
            let fresh = Array.make (size env (Array.length old)) 0 in
            Array.blit old 0 fresh 0 (Array.length old);
            env.iarr.(i) <- fresh
      | Imp.Float ->
          fun env ->
            let old = env.farr.(i) in
            let fresh = Array.make (size env (Array.length old)) 0. in
            Array.blit old 0 fresh 0 (Array.length old);
            env.farr.(i) <- fresh
      | Imp.Bool ->
          fun env ->
            let old = env.barr.(i) in
            let fresh = Array.make (size env (Array.length old)) false in
            Array.blit old 0 fresh 0 (Array.length old);
            env.barr.(i) <- fresh)
  | Imp.Memset (v, n) -> (
      let s = find_slot ctx v in
      let i = s.s_index in
      let cn = cint ctx n in
      let checked_n env len =
        let n = cn env in
        if n < 0 || n > len then oob ~ctx ~var:v ~index:n ~len;
        n
      in
      match s.s_dtype with
      | Imp.Float ->
          if ctx.checked then
            fun env ->
              let arr = env.farr.(i) in
              Array.fill arr 0 (checked_n env (Array.length arr)) 0.
          else fun env -> Array.fill env.farr.(i) 0 (cn env) 0.
      | Imp.Int ->
          if ctx.checked then
            fun env ->
              let arr = env.iarr.(i) in
              Array.fill arr 0 (checked_n env (Array.length arr)) 0
          else fun env -> Array.fill env.iarr.(i) 0 (cn env) 0
      | Imp.Bool ->
          if ctx.checked then
            fun env ->
              let arr = env.barr.(i) in
              Array.fill arr 0 (checked_n env (Array.length arr)) false
          else fun env -> Array.fill env.barr.(i) 0 (cn env) false)
  | Imp.Fill (v, n, x) -> (
      let s = find_slot ctx v in
      let i = s.s_index in
      let cn = cint ctx n in
      let checked_n env len =
        let n = cn env in
        if n < 0 || n > len then oob ~ctx ~var:v ~index:n ~len;
        n
      in
      match s.s_dtype with
      | Imp.Float ->
          let cx = cfloat ctx x in
          if ctx.checked then
            fun env ->
              let arr = env.farr.(i) in
              Array.fill arr 0 (checked_n env (Array.length arr)) (cx env)
          else fun env -> Array.fill env.farr.(i) 0 (cn env) (cx env)
      | Imp.Int | Imp.Bool -> terror "fill on non-float array %s" v)
  | Imp.For (v, lo, hi, body) -> (
      let i = (find_slot ctx v).s_index in
      let clo = cint ctx lo and chi = cint ctx hi in
      let bctx = { ctx with depth = ctx.depth + 1 } in
      let cbody = seq (Array.of_list (List.map (cstmt bctx) body)) in
      let kname = ctx.kname in
      let guarded = ctx.depth = 0 in
      match ctx.prof with
      | None ->
          fun env ->
            let hi = chi env in
            let ints = env.ints in
            let deadline = env.deadline_ns in
            if guarded && deadline <> Int64.max_int then
              for x = clo env to hi - 1 do
                if x land watchdog_mask = 0 && Trace.now_ns () > deadline then
                  cancelled ~kname;
                Array.unsafe_set ints i x;
                cbody env
              done
            else
              (* The loop variable may be read but not written by the body, so
                 the native for counter can own the induction. *)
              for x = clo env to hi - 1 do
                Array.unsafe_set ints i x;
                cbody env
              done
      | Some st ->
          fun env ->
            let lo = clo env in
            let hi = chi env in
            if hi > lo then st.p_iters <- st.p_iters + (hi - lo);
            let ints = env.ints in
            let deadline = env.deadline_ns in
            let guarded = guarded && deadline <> Int64.max_int in
            for x = lo to hi - 1 do
              if guarded && x land watchdog_mask = 0 && Trace.now_ns () > deadline then
                cancelled ~kname;
              Array.unsafe_set ints i x;
              cbody env
            done)
  | Imp.ParallelFor (v, lo, hi, body, info) -> (
      let i = (find_slot ctx v).s_index in
      let clo = cint ctx lo and chi = cint ctx hi in
      let bctx = { ctx with depth = ctx.depth + 1 } in
      let cbody = seq (Array.of_list (List.map (cstmt bctx) body)) in
      let kname = ctx.kname in
      (* Resolve the merge metadata to slots up front so a malformed
         annotation fails at compile time, profiled or not. *)
      let array_slot what name =
        let s = find_slot ctx name in
        if not s.s_array then terror "parallel %s %s is not an array" what name;
        (s.s_dtype, s.s_index)
      in
      let priv = List.map (array_slot "private") info.Imp.par_private in
      let stage =
        Option.map
          (fun stg ->
            let cs = find_slot ctx stg.Imp.pa_counter in
            if cs.s_array || cs.s_dtype <> Imp.Int then
              terror "parallel append counter %s is not an int scalar" stg.Imp.pa_counter;
            let arrs = List.map (array_slot "staged array") stg.Imp.pa_arrays in
            let pos =
              Option.map
                (fun p ->
                  match array_slot "pos array" p with
                  | Imp.Int, si -> si
                  | _ -> terror "parallel pos array %s is not an int array" p)
                stg.Imp.pa_pos
            in
            (cs.s_index, arrs, pos))
          info.Imp.par_stage
      in
      match ctx.prof with
      | Some st ->
          (* Profiled closures bump one shared mutable counter record;
             parallel chunks would race on it. Profiled compilations
             therefore execute the loop sequentially — bit-identical by
             the determinism contract. *)
          fun env ->
            let lo = clo env in
            let hi = chi env in
            if hi > lo then st.p_iters <- st.p_iters + (hi - lo);
            let ints = env.ints in
            let deadline = env.deadline_ns in
            let guarded = deadline <> Int64.max_int in
            for x = lo to hi - 1 do
              if guarded && x land watchdog_mask = 0 && Trace.now_ns () > deadline then
                cancelled ~kname;
              Array.unsafe_set ints i x;
              cbody env
            done
      | None ->
          let copy_slot penv (t, si) =
            match t with
            | Imp.Int -> penv.iarr.(si) <- Array.copy penv.iarr.(si)
            | Imp.Float -> penv.farr.(si) <- Array.copy penv.farr.(si)
            | Imp.Bool -> penv.barr.(si) <- Array.copy penv.barr.(si)
          in
          fun env ->
            let lo = clo env and hi = chi env in
            let total = hi - lo in
            let want = env.par_domains in
            if want <= 1 || total <= 1 then begin
              let ints = env.ints in
              let deadline = env.deadline_ns in
              let guarded = deadline <> Int64.max_int in
              for x = lo to hi - 1 do
                if guarded && x land watchdog_mask = 0 && Trace.now_ns () > deadline
                then cancelled ~kname;
                Array.unsafe_set ints i x;
                cbody env
              done
            end
            else begin
              (* Deterministic chunking: [want] contiguous chunks of the
                 iteration space, regardless of how many domains the
                 budget actually grants. Every chunk starts from a
                 private copy of the pre-loop environment — scalars and
                 slot tables are copied wholesale (so in-body
                 Alloc/Realloc stay private), the annotated private and
                 staged arrays are deep-copied, and everything else
                 shares storage: inputs are read-only and non-staged
                 output writes are disjoint across chunks. *)
              let nchunks = min want total in
              let bounds = Array.init (nchunks + 1) (fun k -> lo + (total * k / nchunks)) in
              let c0 = match stage with None -> 0 | Some (ci, _, _) -> env.ints.(ci) in
              let mk_penv () =
                let p =
                  {
                    ints = Array.copy env.ints;
                    floats = Array.copy env.floats;
                    bools = Array.copy env.bools;
                    iarr = Array.copy env.iarr;
                    farr = Array.copy env.farr;
                    barr = Array.copy env.barr;
                    par_domains = 1;
                    deadline_ns = env.deadline_ns;
                  }
                in
                List.iter (copy_slot p) priv;
                (match stage with
                | None -> ()
                | Some (_, arrs, pos) ->
                    List.iter (copy_slot p) arrs;
                    Option.iter (fun pi -> p.iarr.(pi) <- Array.copy p.iarr.(pi)) pos);
                p
              in
              let penvs = Array.init nchunks (fun _ -> mk_penv ()) in
              let run_chunk d =
                Fault.hit ~stage:Diag.Execute "par.chunk";
                let p = penvs.(d) in
                let ints = p.ints in
                let deadline = p.deadline_ns in
                let guarded = deadline <> Int64.max_int in
                for x = bounds.(d) to bounds.(d + 1) - 1 do
                  if guarded && x land watchdog_mask = 0 && Trace.now_ns () > deadline
                  then cancelled ~kname;
                  Array.unsafe_set ints i x;
                  cbody p
                done
              in
              (* Chunks run on 1 + however many extra domains the budget
                 grants; chunk-to-domain placement cannot affect results
                 (each chunk is self-contained until the merge). *)
              let extra = Budget.acquire (nchunks - 1) in
              Fun.protect
                ~finally:(fun () -> Budget.release extra)
                (fun () ->
                  if extra = 0 then
                    for d = 0 to nchunks - 1 do
                      run_chunk d
                    done
                  else begin
                    let groups = extra + 1 in
                    let group g =
                      let glo = nchunks * g / groups and ghi = nchunks * (g + 1) / groups in
                      for d = glo to ghi - 1 do
                        run_chunk d
                      done
                    in
                    let workers =
                      List.init extra (fun g -> Domain.spawn (fun () -> group (g + 1)))
                    in
                    (* Join every worker even when one raises: a chunk
                       failure (watchdog, injected fault, bounds) must
                       not leak live domains or skew the Budget pot.
                       The first failure wins; ours takes precedence
                       since it fired first in program order. *)
                    let own = (try group 0; None with e -> Some e) in
                    let failed =
                      List.fold_left
                        (fun acc w ->
                          match (try Domain.join w; None with e -> Some e) with
                          | Some _ as e when acc = None -> e
                          | _ -> acc)
                        own workers
                    in
                    Option.iter raise failed
                  end);
              (* Merge, in chunk order. Stage concatenation first (it
                 reads the pre-loop arrays still referenced by [env]'s
                 own tables), then scalars and tables from the last
                 chunk (sequential semantics: the final environment is
                 the one the last iteration leaves behind). *)
              let merged = ref [] in
              let tot = ref c0 in
              (match stage with
              | None -> ()
              | Some (ci, arrs, pos) ->
                  let counts = Array.init nchunks (fun d -> penvs.(d).ints.(ci) - c0) in
                  let bases = Array.make (nchunks + 1) c0 in
                  for d = 0 to nchunks - 1 do
                    bases.(d + 1) <- bases.(d) + counts.(d)
                  done;
                  tot := bases.(nchunks);
                  (* Concatenate a staged array: chunk [d] appended its
                     entries at [c0..c0+counts d) of its private copy;
                     they land at [bases d ..) of the merged array. The
                     original pre-loop array still holds the [0, c0)
                     prefix untouched (every chunk wrote only to its
                     copy), so it can be reused when large enough. *)
                  let blit_segments ~get ~make si =
                    let orig = get env si in
                    let dst =
                      if Array.length orig >= !tot then orig
                      else begin
                        let grown = make (max !tot (2 * Array.length orig)) in
                        Array.blit orig 0 grown 0 c0;
                        grown
                      end
                    in
                    for d = 0 to nchunks - 1 do
                      if counts.(d) > 0 then
                        Array.blit (get penvs.(d) si) c0 dst bases.(d) counts.(d)
                    done;
                    dst
                  in
                  List.iter
                    (fun (t, si) ->
                      match t with
                      | Imp.Int ->
                          let a =
                            blit_segments ~get:(fun e k -> e.iarr.(k))
                              ~make:(fun n -> Array.make n 0)
                              si
                          in
                          merged := `I (si, a) :: !merged
                      | Imp.Float ->
                          let a =
                            blit_segments ~get:(fun e k -> e.farr.(k))
                              ~make:(fun n -> Array.make n 0.)
                              si
                          in
                          merged := `F (si, a) :: !merged
                      | Imp.Bool ->
                          let a =
                            blit_segments ~get:(fun e k -> e.barr.(k))
                              ~make:(fun n -> Array.make n false)
                              si
                          in
                          merged := `B (si, a) :: !merged)
                    arrs;
                  Option.iter
                    (fun pi ->
                      (* Each chunk closed its own rows' pos entries
                         against its local counter (which started at
                         [c0]); rebase them by the chunk's global start
                         offset into the shared pre-loop array. *)
                      let orig_pos = env.iarr.(pi) in
                      for d = 0 to nchunks - 1 do
                        let src = penvs.(d).iarr.(pi) in
                        let delta = bases.(d) - c0 in
                        for k = bounds.(d) + 1 to bounds.(d + 1) do
                          orig_pos.(k) <- src.(k) + delta
                        done
                      done;
                      merged := `I (pi, orig_pos) :: !merged)
                    pos);
              let last = penvs.(nchunks - 1) in
              Array.blit last.ints 0 env.ints 0 (Array.length env.ints);
              Array.blit last.floats 0 env.floats 0 (Array.length env.floats);
              Array.blit last.bools 0 env.bools 0 (Array.length env.bools);
              Array.blit last.iarr 0 env.iarr 0 (Array.length env.iarr);
              Array.blit last.farr 0 env.farr 0 (Array.length env.farr);
              Array.blit last.barr 0 env.barr 0 (Array.length env.barr);
              List.iter
                (function
                  | `I (k, a) -> env.iarr.(k) <- a
                  | `F (k, a) -> env.farr.(k) <- a
                  | `B (k, a) -> env.barr.(k) <- a)
                !merged;
              (match stage with
              | None -> ()
              | Some (ci, _, _) -> env.ints.(ci) <- !tot);
              if Trace.active () then begin
                Trace.add "exec.par.regions" 1;
                Trace.add "exec.par.chunks" nchunks;
                Trace.add "exec.par.domains" (extra + 1)
              end
            end)
  | Imp.While (c, body) -> (
      let cc = cbool ctx c in
      let bctx = { ctx with depth = ctx.depth + 1 } in
      let cbody = seq (Array.of_list (List.map (cstmt bctx) body)) in
      let kname = ctx.kname in
      let guarded = ctx.depth = 0 in
      match ctx.prof with
      | None ->
          fun env ->
            if guarded && env.deadline_ns <> Int64.max_int then begin
              let deadline = env.deadline_ns in
              let n = ref 0 in
              while cc env do
                incr n;
                if !n land watchdog_mask = 0 && Trace.now_ns () > deadline then
                  cancelled ~kname;
                cbody env
              done
            end
            else
              while cc env do
                cbody env
              done
      | Some st ->
          fun env ->
            let deadline = env.deadline_ns in
            let guarded = guarded && deadline <> Int64.max_int in
            let n = ref 0 in
            while cc env do
              st.p_iters <- st.p_iters + 1;
              incr n;
              if guarded && !n land watchdog_mask = 0 && Trace.now_ns () > deadline then
                cancelled ~kname;
              cbody env
            done)
  | Imp.If (c, t, []) ->
      let cc = cbool ctx c in
      let ct = seq (Array.of_list (List.map (cstmt ctx) t)) in
      fun env -> if cc env then ct env
  | Imp.If (c, [], e) ->
      (* Else-only shape, produced by the optimizer's branch flip. *)
      let cc = cbool ctx c in
      let ce = seq (Array.of_list (List.map (cstmt ctx) e)) in
      fun env -> if not (cc env) then ce env
  | Imp.If (c, t, e) ->
      let cc = cbool ctx c in
      let ct = seq (Array.of_list (List.map (cstmt ctx) t)) in
      let ce = seq (Array.of_list (List.map (cstmt ctx) e)) in
      fun env -> if cc env then ct env else ce env
  | Imp.Sort (v, lo, hi) ->
      let s = find_slot ctx v in
      if s.s_dtype <> Imp.Int || not s.s_array then terror "sort expects an int array";
      let i = s.s_index in
      let clo = cint ctx lo and chi = cint ctx hi in
      let checked = ctx.checked in
      let check_range env arr lo hi =
        if lo < 0 || hi < lo || hi > Array.length arr then
          oob ~ctx ~var:v ~index:hi ~len:(Array.length arr);
        ignore env
      in
      fun env ->
        let arr = env.iarr.(i) in
        let lo = clo env and hi = chi env in
        if checked then check_range env arr lo hi;
        sort_int_range arr lo hi
  | Imp.Comment _ -> fun _ -> ()

let build ~checked ~profile ~backend k =
  match
    let slots, counters = assign_slots k in
    let prof = if profile then Some (fresh_prof ()) else None in
    let ctx = { slots; checked; kname = k.Imp.k_name; prof; depth = 0 } in
    let code = seq (Array.of_list (List.map (cstmt ctx) k.Imp.k_body)) in
    (* The closures are always built: they are the checked/profiled
       executors, the fallback when the native path degrades, and cheap
       next to a gcc invocation. *)
    let native, downgrade =
      match backend with
      | `Closure -> (None, None)
      | `Native ->
          if checked || profile then
            (* Bounds checking and work profiling are closure-executor
               instruments; a [`Native] request with either flag pins
               the closures deliberately (documented, not a downgrade). *)
            (None, None)
          else begin
            match Native.load k with
            | Ok l ->
                Atomic.incr bs_native_builds;
                (Some l, None)
            | Error reason ->
                Atomic.incr bs_downgrades;
                Trace.add "exec.backend.downgrade" 1;
                Trace.set_args [ ("backend_downgrade", reason) ];
                (None, Some reason)
          end
    in
    {
      c_kernel = k;
      c_checked = checked;
      c_prof = prof;
      c_requested = backend;
      c_native = native;
      c_downgrade = downgrade;
      slots;
      n_ints = counters.(0);
      n_floats = counters.(1);
      n_bools = counters.(2);
      n_iarr = counters.(3);
      n_farr = counters.(4);
      n_barr = counters.(5);
      code;
    }
  with
  | c -> c
  | exception Type_error msg -> invalid_arg ("Compile.compile: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Compiled-kernel cache                                               *)
(*                                                                     *)
(* Keyed by a digest of the post-optimization kernel structure plus    *)
(* the checked flag, so repeated scheduling/benchmark runs of the same *)
(* kernel skip closure compilation. The digest is only a lookup key:   *)
(* on a hit the stored kernel is compared structurally and a mismatch  *)
(* (digest collision, or NaN literals defeating structural equality)   *)
(* falls back to a fresh compile. Compiled closures are immutable and  *)
(* reusable across runs; the mutex keeps the table safe under domains. *)
(* ------------------------------------------------------------------ *)

type cache_stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;
  coalesced : int;
}

let cache_table : (string, compiled) Hashtbl.t = Hashtbl.create 64

let cache_mutex = Mutex.create ()

(* Signalled whenever an in-flight build finishes (successfully or not),
   waking domains that coalesced onto it. *)
let cache_cond = Condition.create ()

(* Keys whose build is currently running on some domain. Guarded by
   [cache_mutex]. *)
let cache_in_flight : (string, unit) Hashtbl.t = Hashtbl.create 8

let cache_hits = ref 0

let cache_misses = ref 0

let cache_evictions = ref 0

let cache_coalesced = ref 0

let cache_capacity = ref 512

(* Insertion order; every key in [cache_table] is in this queue exactly
   once (insertions push only new keys, eviction is the only removal
   besides [cache_clear]). *)
let cache_order : string Queue.t = Queue.create ()

let locked f =
  Mutex.lock cache_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mutex) f

let cache_key ~checked ~profile ~backend (k : Imp.kernel) =
  (* The compiler string joins the key for native entries: a cached .so
     built by one TACO_CC must not be served when the variable changes
     (the downgraded form of a native entry is compiler-specific too —
     a bogus compiler's fallback must not mask a working one). *)
  let btag =
    match backend with `Closure -> "closure" | `Native -> "native:" ^ Native.compiler_id ()
  in
  Digest.string (Marshal.to_string (checked, profile, btag, k) [])

let cache_stats () =
  locked (fun () ->
      {
        hits = !cache_hits;
        misses = !cache_misses;
        entries = Hashtbl.length cache_table;
        evictions = !cache_evictions;
        coalesced = !cache_coalesced;
      })

let cache_clear () =
  locked (fun () ->
      Hashtbl.reset cache_table;
      Queue.clear cache_order;
      (* In-flight builds are owned by their building domain; leave the
         markers so their completion signal still pairs up. *)
      cache_hits := 0;
      cache_misses := 0;
      cache_evictions := 0;
      cache_coalesced := 0)

let set_cache_capacity n = locked (fun () -> cache_capacity := max 1 n)

(* Call under the cache mutex. Returns how many entries were evicted. *)
let rec evict_over_capacity dropped =
  if Hashtbl.length cache_table <= !cache_capacity then dropped
  else
    match Queue.take_opt cache_order with
    | None -> dropped
    | Some old ->
        let present = Hashtbl.mem cache_table old in
        if present then begin
          Hashtbl.remove cache_table old;
          incr cache_evictions
        end;
        evict_over_capacity (if present then dropped + 1 else dropped)

let compile_inner ~checked ~profile ?opt ~cache ~backend k =
  (* Before the cache lookup, so an armed rule fires on hits too. *)
  Fault.hit ~stage:Diag.Compile "compile.build";
  let k =
    match Taco_lower.Opt.optimize ?config:opt k with
    | Ok k' -> k'
    | Error msg -> invalid_arg ("Compile.compile: optimizer " ^ msg)
  in
  let build_traced () =
    Trace.with_span ~cat:"compile" ~args:[ ("kernel", k.Imp.k_name) ] "compile.build"
      (fun () -> build ~checked ~profile ~backend k)
  in
  if not cache then build_traced ()
  else begin
    let key = cache_key ~checked ~profile ~backend k in
    (* Single-flight: under the mutex, either take a valid entry (hit),
       or — when another domain is already building this key — wait for
       its completion signal and re-check (a coalesced hit), or claim
       the build by marking the key in flight. Many concurrent requests
       for the same kernel structure thus compile it exactly once —
       including the gcc invocation of a native build, which is the
       cache's most expensive coalesced unit. *)
    let valid c =
      c.c_checked = checked
      && c.c_prof <> None = profile
      && c.c_requested = backend
      && c.c_kernel = k
    in
    let decision =
      locked (fun () ->
          let rec acquire ~waited =
            match Hashtbl.find_opt cache_table key with
            | Some c when valid c ->
                incr cache_hits;
                if waited then incr cache_coalesced;
                `Hit c
            | _ ->
                if Hashtbl.mem cache_in_flight key then begin
                  Condition.wait cache_cond cache_mutex;
                  acquire ~waited:true
                end
                else begin
                  Hashtbl.replace cache_in_flight key ();
                  `Build
                end
          in
          acquire ~waited:false)
    in
    match decision with
    | `Hit c ->
        Trace.add "compile.cache.hit" 1;
        c
    | `Build ->
        let release () =
          Hashtbl.remove cache_in_flight key;
          Condition.broadcast cache_cond
        in
        let c =
          match build_traced () with
          | c -> c
          | exception e ->
              locked release;
              raise e
        in
        let dropped =
          locked (fun () ->
              incr cache_misses;
              let fresh = not (Hashtbl.mem cache_table key) in
              Hashtbl.replace cache_table key c;
              if fresh then Queue.push key cache_order;
              let dropped = evict_over_capacity 0 in
              release ();
              dropped)
        in
        Trace.add "compile.cache.miss" 1;
        if dropped > 0 then Trace.add "compile.cache.evict" dropped;
        c
  end

let compile ?(checked = false) ?(profile = false) ?opt ?(cache = true) ?(backend = `Closure) k =
  Trace.with_span ~cat:"compile" ~args:[ ("kernel", k.Imp.k_name) ] "compile" (fun () ->
      compile_inner ~checked ~profile ?opt ~cache ~backend k)

let compile_res ?checked ?profile ?opt ?cache ?backend k =
  match compile ?checked ?profile ?opt ?cache ?backend k with
  | c -> Ok c
  | exception Invalid_argument msg ->
      Diag.error ~stage:Diag.Compile ~code:"E_COMPILE_TYPE"
        ~context:[ ("kernel", k.Imp.k_name) ]
        "%s" msg

let profile_stats c =
  Option.map
    (fun p ->
      {
        iterations = p.p_iters;
        scalar_ops = p.p_scalar_ops;
        allocs = p.p_allocs;
        alloc_elems = p.p_alloc_elems;
        zero_bytes = 8 * p.p_zero_elems;
        reallocs = p.p_reallocs;
        sorts = p.p_sorts;
      })
    c.c_prof

let profile_reset c =
  match c.c_prof with
  | None -> ()
  | Some p ->
      p.p_iters <- 0;
      p.p_scalar_ops <- 0;
      p.p_allocs <- 0;
      p.p_alloc_elems <- 0;
      p.p_zero_elems <- 0;
      p.p_reallocs <- 0;
      p.p_sorts <- 0

let empty_int_array : int array = [||]

let empty_float_array : float array = [||]

(* Execute through the native entry point. Bindings are validated with
   the same messages as the closure path; array parameters cross by
   pointer (floats) or round-trip copy (ints, written ones copied
   back), arrays the kernel allocates come back as the escape list.
   Runtime failures map to the closure executor's diagnostics and are
   deliberately NOT downgraded: by the time the kernel runs, output
   parameters may be partially written, so retrying through closures
   could double-apply work — and both failure modes (budget, deadline)
   are client-visible semantics, not environment problems. *)
let run_native c l ~deadline_ns ~args =
  let kname = c.c_kernel.Imp.k_name in
  let ints = ref [] and arrays = ref [] in
  List.iter
    (fun p ->
      let name = p.Imp.p_name in
      match (List.assoc_opt name args, p.Imp.p_dtype, p.Imp.p_array) with
      | Some (Aint v), Imp.Int, false -> ints := v :: !ints
      | Some (Aint_array v), Imp.Int, true -> arrays := Obj.repr v :: !arrays
      | Some (Afloat_array v), Imp.Float, true -> arrays := Obj.repr v :: !arrays
      | Some _, _, _ -> invalid_arg (Printf.sprintf "Compile.run: bad binding for %s" name)
      | None, _, _ -> invalid_arg (Printf.sprintf "Compile.run: missing binding for %s" name))
    c.c_kernel.k_params;
  let spec =
    {
      Native.cs_ints = Array.of_list (List.rev !ints);
      cs_floats = [||];
      cs_arrays = Array.of_list (List.rev !arrays);
      cs_kinds = l.Native.l_arr_kinds;
      cs_esc_kinds =
        Array.of_list
          (List.map (fun (_, t) -> if t = Imp.Int then 0 else 1) l.Native.l_escapes);
      cs_mem_limit =
        (let lim = Budget.mem_limit () in
         if lim = max_int then Int64.max_int else Int64.of_int lim);
      cs_deadline = deadline_ns;
    }
  in
  let rc, escs = Native.run l spec in
  (match rc with
  | 0 -> ()
  | 1 ->
      Diag.fail ~stage:Diag.Execute ~code:"E_EXEC_MEM"
        ~context:
          [
            ("kernel", kname);
            ("backend", "native");
            ("limit_bytes", string_of_int (Budget.mem_limit ()));
          ]
        "allocation exceeds the memory budget in native kernel %s" kname
  | 2 -> cancelled ~kname
  | n ->
      Diag.fail ~stage:Diag.Execute ~code:"E_EXEC_NATIVE"
        ~context:[ ("kernel", kname); ("rc", string_of_int n) ]
        "native kernel %s failed with unexpected return code %d" kname n);
  let escapes = List.mapi (fun i (nm, t) -> (nm, (t, i))) l.Native.l_escapes in
  fun name ->
    match List.assoc_opt name escapes with
    | Some (Imp.Int, i) -> Aint_array (Obj.obj escs.(i) : int array)
    | Some (Imp.Float, i) -> Afloat_array (Obj.obj escs.(i) : float array)
    | Some (Imp.Bool, _) -> invalid_arg "Compile.run: bool array read-back unsupported"
    | None -> (
        match List.assoc_opt name args with
        | Some v -> v
        | None -> invalid_arg (Printf.sprintf "Compile.run: unknown variable %s" name))

let run_closure ~domains ~deadline_ns c ~args =
  let env =
    {
      ints = Array.make (max 1 c.n_ints) 0;
      floats = Array.make (max 1 c.n_floats) 0.;
      bools = Array.make (max 1 c.n_bools) false;
      iarr = Array.make (max 1 c.n_iarr) empty_int_array;
      farr = Array.make (max 1 c.n_farr) empty_float_array;
      barr = Array.make (max 1 c.n_barr) [||];
      par_domains = max 1 domains;
      deadline_ns;
    }
  in
  List.iter
    (fun p ->
      let name = p.Imp.p_name in
      match (List.assoc_opt name args, p.Imp.p_dtype, p.Imp.p_array) with
      | Some (Aint v), Imp.Int, false -> env.ints.((Hashtbl.find c.slots name).s_index) <- v
      | Some (Aint_array v), Imp.Int, true ->
          env.iarr.((Hashtbl.find c.slots name).s_index) <- v
      | Some (Afloat_array v), Imp.Float, true ->
          env.farr.((Hashtbl.find c.slots name).s_index) <- v
      | Some _, _, _ -> invalid_arg (Printf.sprintf "Compile.run: bad binding for %s" name)
      | None, _, _ -> invalid_arg (Printf.sprintf "Compile.run: missing binding for %s" name))
    c.c_kernel.k_params;
  c.code env;
  fun name ->
    match Hashtbl.find_opt c.slots name with
    | None -> invalid_arg (Printf.sprintf "Compile.run: unknown variable %s" name)
    | Some s -> (
        match (s.s_dtype, s.s_array) with
        | Imp.Int, false -> Aint env.ints.(s.s_index)
        | Imp.Int, true -> Aint_array env.iarr.(s.s_index)
        | Imp.Float, true -> Afloat_array env.farr.(s.s_index)
        | Imp.Bool, false -> Aint (if env.bools.(s.s_index) then 1 else 0)
        | Imp.Float, false -> Afloat env.floats.(s.s_index)
        | Imp.Bool, true -> invalid_arg "Compile.run: bool array read-back unsupported")

let run_plain ?(domains = 1) ?(deadline_ns = Int64.max_int) c ~args =
  match c.c_native with
  | Some l ->
      (* [domains] is a closure-chunking knob; the native path hands
         parallel loops to OpenMP, whose thread count is the runtime's
         business. Results are bit-identical either way. *)
      Atomic.incr bs_native_runs;
      run_native c l ~deadline_ns ~args
  | None ->
      Atomic.incr bs_closure_runs;
      run_closure ~domains ~deadline_ns c ~args

let run ?domains ?deadline_ns c ~args =
  if not (Trace.active ()) then run_plain ?domains ?deadline_ns c ~args
  else
    let before = profile_stats c in
    Trace.with_span ~cat:"exec"
      ~args:[ ("kernel", c.c_kernel.Imp.k_name) ]
      "exec.run"
      (fun () ->
        let reader = run_plain ?domains ?deadline_ns c ~args in
        (match (before, profile_stats c) with
        | Some b, Some a ->
            let d f = f a - f b in
            let iters = d (fun s -> s.iterations) in
            let sops = d (fun s -> s.scalar_ops) in
            let allocs = d (fun s -> s.allocs) in
            let zbytes = d (fun s -> s.zero_bytes) in
            Trace.set_args
              [
                ("iterations", string_of_int iters);
                ("scalar_ops", string_of_int sops);
                ("allocs", string_of_int allocs);
                ("alloc_elems", string_of_int (d (fun s -> s.alloc_elems)));
                ("zero_bytes", string_of_int zbytes);
                ("reallocs", string_of_int (d (fun s -> s.reallocs)));
                ("sorts", string_of_int (d (fun s -> s.sorts)));
              ];
            Trace.add "exec.iterations" iters;
            Trace.add "exec.scalar_ops" sops;
            Trace.add "exec.allocs" allocs;
            Trace.add "exec.zero_bytes" zbytes
        | _ -> ());
        reader)
