(** Data-parallel kernel execution over OCaml 5 domains.

    The paper's MTTKRP measurements (§VIII-C) run parallel on a single
    socket, parallelizing the outer loop with per-thread workspaces. The
    equivalent here is data decomposition: one operand is partitioned
    into contiguous level-0 coordinate ranges ({!Taco_tensor.Tensor.split_rows}),
    each domain runs the unchanged kernel on its partition (getting its
    own private workspaces, since those are allocated inside the kernel),
    and the dense partial results are summed.

    Correctness requires the kernel to be linear in the partitioned
    operand (every multilinear tensor algebra kernel is, in each operand),
    and the result to be dense. *)

open Taco_ir.Var

(** [run_dense t ~inputs ~dims ~split ~domains] — [split] names the input
    tensor to partition. [domains] is clamped against the process-wide
    {!Budget} (permits are acquired for the run and released after, so
    concurrent callers share the machine's recommended domain count)
    unless [~clamp:false] (used by correctness tests to force real
    multi-domain execution on small machines); empty partitions (a split
    tensor with fewer populated row ranges than domains) are skipped
    rather than given a domain each.
    With one (effective) domain or partition this is exactly
    {!Kernel.run_dense}. Results are identical across domain counts:
    partitions cover disjoint level-0 coordinate ranges, so each output
    element is produced by exactly one partition. *)
val run_dense :
  ?clamp:bool ->
  Kernel.t ->
  inputs:(Tensor_var.t * Taco_tensor.Tensor.t) list ->
  dims:int array ->
  split:Tensor_var.t ->
  domains:int ->
  Taco_tensor.Tensor.t
