(* Process-wide budget of extra domains (beyond the one running the
   caller). Every component that spawns domains — the ParallelFor
   executor, Parallel.run_dense's clamped path, the service worker
   pool — draws permits from this one pot, so their combined live
   domain count stays within what the hardware offers even when a
   serve request itself runs a parallel kernel. *)

type state = {
  mutable capacity : int;  (* total permits *)
  mutable available : int;  (* permits not currently held *)
  mutable live : int;  (* permits currently held *)
  mutable peak : int;  (* high-water mark of [live] *)
}

let s =
  let c = max 0 (Domain.recommended_domain_count () - 1) in
  { capacity = c; available = c; live = 0; peak = 0 }

let m = Mutex.create ()

let locked f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let recommended () = Domain.recommended_domain_count ()

let capacity () = locked (fun () -> s.capacity)

let set_capacity n =
  locked (fun () ->
      let n = max 0 n in
      let in_use = s.live in
      s.capacity <- n;
      s.available <- max 0 (n - in_use))

let acquire want =
  locked (fun () ->
      let got = min (max 0 want) s.available in
      s.available <- s.available - got;
      s.live <- s.live + got;
      if s.live > s.peak then s.peak <- s.live;
      got)

let release got =
  if got < 0 then invalid_arg "Budget.release: negative permit count";
  locked (fun () ->
      s.live <- max 0 (s.live - got);
      s.available <- min (s.capacity - s.live) (s.available + got) |> max 0)

(* Byte budget for kernel-side allocations (workspaces, assembled
   outputs, dense results). A plain ref, not mutex-guarded: the guard in
   the executor reads it once per allocation, and a torn read can only
   make one allocation use the old or the new limit — both of which were
   valid limits. [max_int] means unlimited (the default). *)
let mem_limit_bytes = ref max_int

let set_mem_limit n = mem_limit_bytes := (if n <= 0 then max_int else n)

let mem_limit () = !mem_limit_bytes

let live_extra () = locked (fun () -> s.live)

let peak_extra () = locked (fun () -> s.peak)

let reset_peak () = locked (fun () -> s.peak <- s.live)
