(** Native execution backend: compile a lowered kernel's C rendering
    ({!Taco_lower.Codegen_c.emit_exec}) into a shared object with the
    system C compiler and call it through [dlopen].

    Strictly optional — {!load} reports every environmental failure
    (no compiler, compile error, read-only tmpdir, dlopen failure) as
    [Error reason] so {!Compile} can fall back to the closure executor
    with a counted, traced downgrade rather than failing the request.

    The compiler is [cc] or the [TACO_CC] environment variable; its
    availability is probed once per distinct compiler string. Build
    artifacts live in a per-process temp directory and are unlinked as
    soon as the shared object is mapped (set [TACO_NATIVE_KEEP=1] to
    keep them); {!cleanup} sweeps any leftovers. *)

module Imp = Taco_lower.Imp

(** Build-phase wall-clock costs of one {!load}. *)
type phases = { emit_ns : int64; cc_ns : int64; dlopen_ns : int64 }

type loaded = {
  l_name : string;
  l_fn : nativeint;
  l_handle : nativeint;
  l_arr_kinds : int array;
      (** marshalling kind per array parameter, in parameter order:
          0 int input, 1 float in-place, 2 int output (copied back) *)
  l_escapes : (string * Imp.dtype) list;
      (** kernel-allocated arrays handed back, in escape order *)
  l_phases : phases;
}

(** Call descriptor; field order is the layout contract with
    [native_stubs.c]. Scalars and arrays each appear in
    kernel-parameter order; [cs_kinds] aligns with [cs_arrays] and
    [cs_esc_kinds] with the loaded kernel's escape list.
    [cs_mem_limit]/[cs_deadline] use [Int64.max_int] for "none". *)
type spec = {
  cs_ints : int array;
  cs_floats : float array;
  cs_arrays : Obj.t array;
  cs_kinds : int array;
  cs_esc_kinds : int array;
  cs_mem_limit : int64;
  cs_deadline : int64;
}

(** Resolved compiler command ([TACO_CC] or ["cc"]). *)
val compiler : unit -> string

(** Identifier mixed into the kernel-cache key so entries built by one
    compiler are not served under another. *)
val compiler_id : unit -> string

(** Whether the resolved compiler answers [-dumpversion]; probed once
    per compiler string and cached. *)
val available : unit -> bool

(** Emit, compile, dlopen. Emits [native.emit]/[native.cc]/
    [native.dlopen] trace spans and records the same timings in
    [l_phases]. *)
val load : Imp.kernel -> (loaded, string) result

(** Invoke the kernel. Returns the entry point's return code (0 ok,
    1 allocation failure/budget, 2 deadline expired) and the escaped
    arrays ([int array]/[float array] values per [l_escapes]), empty on
    failure. Emits a [native.run] span. *)
val run : loaded -> spec -> int * Obj.t array

(** Remove any on-disk build artifacts and the per-process directory.
    Loaded kernels stay callable (the mapped inodes survive). Called on
    [Service.shutdown] and at process exit. *)
val cleanup : unit -> unit
