module Tensor = Taco_tensor.Tensor
module Dense = Taco_tensor.Dense
module Coo = Taco_tensor.Coo
module Format = Taco_tensor.Format
module Semiring = Taco_ir.Semiring
module I = Taco_ir.Index_notation
module Schedule = Taco_ir.Schedule
open Taco_ir.Var

type backend = Taco_exec.Compile.backend

let ( let* ) = Result.bind

let dflat r = Taco_support.Diag.flatten r

let vi = Index_var.make "i"

let vj = Index_var.make "j"

let backend_tag = function `Closure -> "closure" | `Native -> "native"

(* Compiled-kernel cache keyed by operation, semiring, formats and
   backend (the backend is part of the key so a suite can compare
   executors without evicting each other's kernels). *)
let cache : (string, Taco.compiled) Hashtbl.t = Hashtbl.create 16

let cache_key op sr backend fmts =
  String.concat "|"
    (op :: sr.Semiring.name :: backend_tag backend :: List.map Format.to_string fmts)

let compiled ~key build =
  match Hashtbl.find_opt cache key with
  | Some c -> Ok c
  | None ->
      let* c = build () in
      Hashtbl.replace cache key c;
      Ok c

let dense_vector arr = Tensor.of_dense (Dense.of_buffer [| Array.length arr |] arr) Format.dense_vector

let spmv ?(backend = `Closure) sr a x =
  if Tensor.order a <> 2 || Tensor.order x <> 1 then
    Error "Graph.spmv: expected a matrix and a vector"
  else if (Tensor.dims a).(1) <> (Tensor.dims x).(0) then
    Error "Graph.spmv: dimension mismatch"
  else begin
    let fmt_a = Tensor.format a and fmt_x = Tensor.format x in
    let yv = Tensor_var.make "y" ~order:1 ~format:Format.dense_vector in
    let av = Tensor_var.make "A" ~order:2 ~format:fmt_a in
    let xv = Tensor_var.make "x" ~order:1 ~format:fmt_x in
    let key = cache_key "spmv" sr backend [ fmt_a; fmt_x ] in
    let* kern =
      compiled ~key (fun () ->
          let stmt =
            I.assign yv [ vi ] (I.sum vj (I.Mul (I.access av [ vi; vj ], I.access xv [ vj ])))
          in
          let* sched = Schedule.of_index_notation stmt in
          dflat (Taco.compile ~name:("spmv_" ^ sr.Semiring.name) ~semiring:sr ~backend sched))
    in
    dflat (Taco.run kern ~inputs:[ (av, a); (xv, x) ])
  end

let vadd ?(backend = `Closure) sr x y =
  if Tensor.order x <> 1 || Tensor.order y <> 1 then
    Error "Graph.vadd: expected two vectors"
  else if Tensor.dims x <> Tensor.dims y then Error "Graph.vadd: dimension mismatch"
  else begin
    let fmt_x = Tensor.format x and fmt_y = Tensor.format y in
    let zv = Tensor_var.make "z" ~order:1 ~format:Format.dense_vector in
    let xv = Tensor_var.make "x" ~order:1 ~format:fmt_x in
    let yv = Tensor_var.make "w" ~order:1 ~format:fmt_y in
    let key = cache_key "vadd" sr backend [ fmt_x; fmt_y ] in
    let* kern =
      compiled ~key (fun () ->
          let stmt =
            I.assign zv [ vi ] (I.Add (I.access xv [ vi ], I.access yv [ vi ]))
          in
          let* sched = Schedule.of_index_notation stmt in
          dflat (Taco.compile ~name:("vadd_" ^ sr.Semiring.name) ~semiring:sr ~backend sched))
    in
    dflat (Taco.run kern ~inputs:[ (xv, x); (yv, y) ])
  end

let fixpoint ?(max_iters = 10_000) step init =
  let rec go it state =
    if it >= max_iters then
      Error (Printf.sprintf "fixpoint: no convergence after %d iterations" max_iters)
    else
      let* next = step it state in
      match next with None -> Ok (state, it) | Some s -> go (it + 1) s
  in
  go 0 init

let square_adjacency ~op a =
  if Tensor.order a <> 2 then Error (op ^ ": expected an adjacency matrix")
  else
    let dims = Tensor.dims a in
    if dims.(0) <> dims.(1) then Error (op ^ ": adjacency matrix must be square")
    else Ok dims.(0)

(* --- PageRank --------------------------------------------------------- *)

let pagerank ?(backend = `Closure) ?(damping = 0.85) ?(tol = 1e-12) ?(max_iters = 1_000)
    a =
  let* n = square_adjacency ~op:"Graph.pagerank" a in
  if n = 0 then Ok ([||], 0)
  else begin
    (* Column-stochastic transition matrix P(j, i) = a(i, j) / outdeg(i),
       so ranks flow along edges under a plain (+, ×) SpMV. *)
    let outdeg = Array.make n 0. in
    Tensor.iteri_stored (fun c v -> if v <> 0. then outdeg.(c.(0)) <- outdeg.(c.(0)) +. 1.) a;
    let coo = Coo.create [| n; n |] in
    Tensor.iteri_stored
      (fun c v -> if v <> 0. then Coo.push coo [| c.(1); c.(0) |] (1. /. outdeg.(c.(0))))
      a;
    let p = Tensor.pack coo Format.csr in
    let uniform = 1. /. float_of_int n in
    let r0 = Array.make n uniform in
    let step _it r =
      let* pr = spmv ~backend Semiring.plus_times p (dense_vector r) in
      let pr = Tensor.vals pr in
      let dangling =
        let m = ref 0. in
        Array.iteri (fun i ri -> if outdeg.(i) = 0. then m := !m +. ri) r;
        !m
      in
      let base = ((1. -. damping) +. (damping *. dangling)) *. uniform in
      let r' = Array.map (fun x -> base +. (damping *. x)) pr in
      let delta = ref 0. in
      Array.iteri (fun i x -> delta := !delta +. abs_float (x -. r.(i))) r';
      if !delta < tol then Ok None else Ok (Some r')
    in
    let* r, iters = fixpoint ~max_iters step r0 in
    Ok (r, iters)
  end

(* --- BFS -------------------------------------------------------------- *)

let bfs ?(backend = `Closure) a ~src =
  let* n = square_adjacency ~op:"Graph.bfs" a in
  if src < 0 || src >= n then Error "Graph.bfs: source out of range"
  else begin
    (* Frontier propagation next(j) = ⊕_i f(i) ⊗ a(i,j) over or-and is
       an SpMV of the transposed adjacency. *)
    let at = Taco_ops.Ops.transpose a in
    let levels = Array.make n (-1) in
    levels.(src) <- 0;
    let f0 = Array.make n 0. in
    f0.(src) <- 1.;
    let step it f =
      let* nf = spmv ~backend Semiring.bool_or_and at (dense_vector f) in
      let nf = Tensor.vals nf in
      let frontier = Array.make n 0. in
      let any = ref false in
      Array.iteri
        (fun i x ->
          if x <> 0. && levels.(i) < 0 then begin
            levels.(i) <- it + 1;
            frontier.(i) <- 1.;
            any := true
          end)
        nf;
      if !any then Ok (Some frontier) else Ok None
    in
    let* _, iters = fixpoint ~max_iters:(n + 1) step f0 in
    Ok (levels, iters)
  end

(* --- Bellman-Ford ----------------------------------------------------- *)

let bellman_ford ?(backend = `Closure) a ~src =
  let* n = square_adjacency ~op:"Graph.bellman_ford" a in
  if src < 0 || src >= n then Error "Graph.bellman_ford: source out of range"
  else begin
    let neg = ref false in
    Tensor.iteri_stored (fun _ v -> if v < 0. then neg := true) a;
    if !neg then Error "Graph.bellman_ford: negative edge weights are not supported"
    else begin
      let at = Taco_ops.Ops.transpose a in
      let d0 = Array.make n infinity in
      d0.(src) <- 0.;
      let step _it d =
        let dv = dense_vector d in
        (* relax(j) = min_i (d(i) + w(i,j)): a min-plus SpMV, where the
           +inf semiring zero makes absent edges non-contributing. *)
        let* relax = spmv ~backend Semiring.min_plus at dv in
        let* d' = vadd ~backend Semiring.min_plus relax dv in
        let d' = Tensor.vals d' in
        if Array.for_all2 (fun x y -> x = y) d' d then Ok None else Ok (Some d')
      in
      let* d, iters = fixpoint ~max_iters:(n + 1) step d0 in
      Ok (d, iters)
    end
  end

(* --- Triangle counting ------------------------------------------------ *)

let triangle_count ?(backend = `Closure) a =
  let* n = square_adjacency ~op:"Graph.triangle_count" a in
  if n = 0 then Ok 0.
  else begin
    let fmt = Tensor.format a in
    let av = Tensor_var.make "A" ~order:2 ~format:fmt in
    let bv = Tensor_var.make "B" ~order:2 ~format:fmt in
    let cv = Tensor_var.make "C" ~order:2 ~format:Format.csr in
    let sr = Semiring.plus_times in
    (* Paths of length 2: C = A·A, a (+, ×) spgemm (workspaced by the
       autoscheduler). *)
    let* kern_mm =
      compiled ~key:(cache_key "tri_spgemm" sr backend [ fmt ]) (fun () ->
          let vk = Index_var.make "k" in
          let stmt =
            I.assign cv [ vi; vj ]
              (I.sum vk (I.Mul (I.access av [ vi; vk ], I.access bv [ vk; vj ])))
          in
          let* sched = Schedule.of_index_notation stmt in
          let* c, _steps = dflat (Taco.auto_compile ~name:"tri_spgemm" ~backend sched) in
          Ok c)
    in
    let* c2 = dflat (Taco.run kern_mm ~inputs:[ (av, a); (bv, a) ]) in
    (* Closing edges: mask the path count by the adjacency and sum.
       Every triangle is counted once per corner and direction. *)
    let alpha = Tensor_var.make "alpha" ~order:0 ~format:(Format.of_levels []) in
    let mv = Tensor_var.make "M" ~order:2 ~format:fmt in
    let pv = Tensor_var.make "P" ~order:2 ~format:(Tensor.format c2) in
    let* kern_in =
      compiled ~key:(cache_key "tri_inner" sr backend [ fmt; Tensor.format c2 ]) (fun () ->
          let stmt =
            I.assign alpha []
              (I.sum vi
                 (I.sum vj (I.Mul (I.access mv [ vi; vj ], I.access pv [ vi; vj ]))))
          in
          let* sched = Schedule.of_index_notation stmt in
          dflat (Taco.compile ~name:"tri_inner" ~backend sched))
    in
    let* masked = dflat (Taco.run kern_in ~inputs:[ (mv, a); (pv, c2) ]) in
    Ok ((Tensor.vals masked).(0) /. 6.)
  end
