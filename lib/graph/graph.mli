(** Graph algorithms as fixpoints of semiring-generalized kernels.

    Every workload iterates a compiled sparse kernel — SpMV under the
    appropriate semiring, or a (+, ×) spgemm — to a fixpoint in an
    OCaml driver. Kernels are compiled once per
    (operation, semiring, format, backend) and cached, in the style of
    {!Taco_ops.Ops}.

    Graphs are adjacency matrices in any sparse or dense matrix format:
    entry (i, j) is the weight of the directed edge i → j. A stored
    value of 0 is indistinguishable from a structural zero, so edge
    weights must be non-zero (BFS/PageRank/triangles use 0/1
    adjacencies; Bellman-Ford requires strictly positive weights). *)

module Tensor = Taco_tensor.Tensor
module Semiring = Taco_ir.Semiring

(** Executor selection for every compiled kernel an algorithm uses;
    [`Native] downgrades to closures when no C compiler is available
    (see {!Taco_exec.Compile.backend}). *)
type backend = Taco_exec.Compile.backend

(** {2 Semiring kernels} *)

(** [spmv ?backend sr a x] = y with y(i) = ⊕{_j} a(i,j) ⊗ x(j) under
    [sr]; absent entries of [a] act as the semiring zero. The result is
    a dense vector. *)
val spmv :
  ?backend:backend -> Semiring.t -> Tensor.t -> Tensor.t -> (Tensor.t, string) result

(** [vadd ?backend sr x y] = elementwise x(i) ⊕ y(i) of two dense
    vectors (e.g. the relaxation min under min-plus). *)
val vadd :
  ?backend:backend -> Semiring.t -> Tensor.t -> Tensor.t -> (Tensor.t, string) result

(** Wrap a float array as a dense vector tensor. *)
val dense_vector : float array -> Tensor.t

(** {2 Fixpoint driver} *)

(** [fixpoint ?max_iters step init] iterates [step it state] until it
    returns [None] (converged; the last state is returned along with
    the number of steps taken) or [max_iters] is hit (an error). *)
val fixpoint :
  ?max_iters:int ->
  (int -> 'a -> ('a option, string) result) ->
  'a ->
  ('a * int, string) result

(** {2 Workloads} *)

(** [pagerank ?backend ?damping ?tol ?max_iters a] ranks the nodes of
    the 0/1 adjacency [a] by power iteration on the column-stochastic
    transition matrix ((+, ×) SpMV per step), with teleport and a
    uniform redistribution of dangling-node mass. Returns the rank
    vector (sums to 1) and the iteration count. *)
val pagerank :
  ?backend:backend ->
  ?damping:float ->
  ?tol:float ->
  ?max_iters:int ->
  Tensor.t ->
  (float array * int, string) result

(** [bfs ?backend a ~src] runs breadth-first search from [src] by
    iterating a boolean or-and SpMV of the frontier to fixpoint.
    Returns hop levels ([levels.(src) = 0], unreachable nodes [-1]) and
    the number of frontier expansions. *)
val bfs : ?backend:backend -> Tensor.t -> src:int -> (int array * int, string) result

(** [bellman_ford ?backend a ~src] computes single-source shortest
    distances over the strictly-positive edge weights of [a] by
    iterating a min-plus SpMV relaxation to fixpoint. Returns distances
    ([infinity] for unreachable nodes) and the number of relaxation
    rounds. *)
val bellman_ford :
  ?backend:backend -> Tensor.t -> src:int -> (float array * int, string) result

(** [triangle_count ?backend a] counts triangles in the undirected
    simple graph whose symmetric 0/1 adjacency is [a], as
    inner(A, A·A) / 6 — a (+, ×) spgemm masked by the adjacency's
    sparsity through the inner product. *)
val triangle_count : ?backend:backend -> Tensor.t -> (float, string) result
