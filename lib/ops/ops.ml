module Tensor = Taco_tensor.Tensor
module Format = Taco_tensor.Format
module Level = Taco_tensor.Level
module I = Taco_ir.Index_notation
module Cin = Taco_ir.Cin
module Schedule = Taco_ir.Schedule
open Taco_ir.Var

let ( let* ) = Result.bind

(* Ops keep the historical string-error API; structured diagnostics from
   the facade are flattened at this boundary. *)
let dflat r = Taco_support.Diag.flatten r

let vi = Index_var.make "i"

let vj = Index_var.make "j"

let vk = Index_var.make "k"

let vl = Index_var.make "l"

let has_sparse t = not (Format.is_all_dense (Tensor.format t))

let default_matrix_out a b =
  if has_sparse a || has_sparse b then Format.csr else Format.dense_matrix

(* Compiled-kernel cache keyed by operation and formats. *)
let cache : (string, Taco.compiled) Hashtbl.t = Hashtbl.create 16

let cache_key op fmts = op ^ "|" ^ String.concat "|" (List.map Format.to_string fmts)

let compiled ~key build =
  match Hashtbl.find_opt cache key with
  | Some c -> Ok c
  | None ->
      let* c = build () in
      Hashtbl.replace cache key c;
      Ok c

(* Build, auto-compile and run a binary matrix operation. *)
let binary_matrix_op ~opname ~rhs ?out b c =
  let fmt_b = Tensor.format b and fmt_c = Tensor.format c in
  let out = match out with Some f -> f | None -> default_matrix_out b c in
  let av = Tensor_var.make "A" ~order:2 ~format:out in
  let bv = Tensor_var.make "B" ~order:2 ~format:fmt_b in
  let cv = Tensor_var.make "C" ~order:2 ~format:fmt_c in
  let key = cache_key opname [ out; fmt_b; fmt_c ] in
  let* kern =
    compiled ~key (fun () ->
        let stmt = I.assign av [ vi; vj ] (rhs bv cv) in
        let* sched = Schedule.of_index_notation stmt in
        let* c, _steps = dflat (Taco.auto_compile ~name:opname sched) in
        Ok c)
  in
  dflat (Taco.run kern ~inputs:[ (bv, b); (cv, c) ])

let matmul ?out b c =
  if (Tensor.dims b).(1) <> (Tensor.dims c).(0) then
    Error "matmul: inner dimensions differ"
  else
    binary_matrix_op ~opname:"matmul"
      ~rhs:(fun bv cv -> I.sum vk (I.Mul (I.access bv [ vi; vk ], I.access cv [ vk; vj ])))
      ?out b c

let add ?out b c =
  if Tensor.dims b <> Tensor.dims c then Error "add: dimension mismatch"
  else
    binary_matrix_op ~opname:"add"
      ~rhs:(fun bv cv -> I.Add (I.access bv [ vi; vj ], I.access cv [ vi; vj ]))
      ?out b c

let mul ?out b c =
  if Tensor.dims b <> Tensor.dims c then Error "mul: dimension mismatch"
  else
    binary_matrix_op ~opname:"mul"
      ~rhs:(fun bv cv -> I.Mul (I.access bv [ vi; vj ], I.access cv [ vi; vj ]))
      ?out b c

let spmv b x =
  if Tensor.order b <> 2 || Tensor.order x <> 1 then Error "spmv: expected a matrix and a vector"
  else if (Tensor.dims b).(1) <> (Tensor.dims x).(0) then Error "spmv: dimension mismatch"
  else begin
    let fmt_b = Tensor.format b and fmt_x = Tensor.format x in
    let yv = Tensor_var.make "y" ~order:1 ~format:Format.dense_vector in
    let bv = Tensor_var.make "B" ~order:2 ~format:fmt_b in
    let xv = Tensor_var.make "x" ~order:1 ~format:fmt_x in
    let key = cache_key "spmv" [ fmt_b; fmt_x ] in
    let* kern =
      compiled ~key (fun () ->
          let stmt =
            I.assign yv [ vi ] (I.sum vj (I.Mul (I.access bv [ vi; vj ], I.access xv [ vj ])))
          in
          let* sched = Schedule.of_index_notation stmt in
          let* c, _ = dflat (Taco.auto_compile ~name:"spmv" sched) in
          Ok c)
    in
    dflat (Taco.run kern ~inputs:[ (bv, b); (xv, x) ])
  end

(* Scaling touches every stored value once and cannot change the pattern;
   it is a library-level map rather than a compiled kernel. *)
let scale alpha t =
  let vals = Array.map (fun v -> alpha *. v) (Tensor.vals t) in
  let levels =
    Array.init (Tensor.order t) (fun l -> Tensor.level_data t l)
  in
  match
    Tensor.of_parts ~dims:(Tensor.dims t) ~format:(Tensor.format t) ~levels ~vals
  with
  | t -> Ok t
  | exception Invalid_argument e -> Error e

let inner a b =
  if Tensor.dims a <> Tensor.dims b then Error "inner: dimension mismatch"
  else begin
    let order = Tensor.order a in
    let vars = List.filteri (fun q _ -> q < order) [ vi; vj; vk; vl ] in
    if List.length vars < order then Error "inner: order > 4 not supported"
    else begin
      let alpha = Tensor_var.make "alpha" ~order:0 ~format:(Format.of_levels []) in
      let av = Tensor_var.make "B" ~order ~format:(Tensor.format a) in
      let bv = Tensor_var.make "C" ~order ~format:(Tensor.format b) in
      let key = cache_key (Printf.sprintf "inner%d" order) [ Tensor.format a; Tensor.format b ] in
      let* kern =
        compiled ~key (fun () ->
            let rhs =
              List.fold_right (fun v e -> I.sum v e) vars
                (I.Mul (I.access av vars, I.access bv vars))
            in
            let stmt = I.assign alpha [] rhs in
            let* sched = Schedule.of_index_notation stmt in
            let* c, _ = dflat (Taco.auto_compile ~name:"inner" sched) in
            Ok c)
      in
      let* result = dflat (Taco.run kern ~inputs:[ (av, a); (bv, b) ]) in
      Ok (Tensor.vals result).(0)
    end
  end

let mttkrp x c d =
  if Tensor.order x <> 3 then Error "mttkrp: expected an order-3 tensor"
  else begin
    let dims = Tensor.dims x in
    let jdim = (Tensor.dims c).(1) in
    if (Tensor.dims c).(0) <> dims.(2) || (Tensor.dims d).(0) <> dims.(1) || (Tensor.dims d).(1) <> jdim
    then Error "mttkrp: factor dimensions do not match the tensor"
    else begin
      let av = Tensor_var.make "A" ~order:2 ~format:Format.dense_matrix in
      let xv = Tensor_var.make "X" ~order:3 ~format:(Tensor.format x) in
      let cv = Tensor_var.make "C" ~order:2 ~format:(Tensor.format c) in
      let dv = Tensor_var.make "D" ~order:2 ~format:(Tensor.format d) in
      let key = cache_key "mttkrp" [ Tensor.format x; Tensor.format c; Tensor.format d ] in
      let* kern =
        compiled ~key (fun () ->
            (* The §VII schedule: loop order i,k,l,j with X·C hoisted into
               a row workspace. *)
            let stmt =
              I.assign av [ vi; vj ]
                (I.sum vk
                   (I.sum vl
                      (I.Mul
                         ( I.Mul (I.access xv [ vi; vk; vl ], I.access cv [ vl; vj ]),
                           I.access dv [ vk; vj ] ))))
            in
            let* sched = Schedule.of_index_notation stmt in
            let* sched = Schedule.reorder vj vk sched in
            let* sched = Schedule.reorder vj vl sched in
            let w = Taco.workspace "w" Format.dense_vector in
            let e =
              Cin.Mul
                (Cin.Access (Cin.access xv [ vi; vk; vl ]), Cin.Access (Cin.access cv [ vl; vj ]))
            in
            let* sched = Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched in
            dflat (Taco.compile ~name:"mttkrp" sched))
      in
      dflat (Taco.run kern ~inputs:[ (xv, x); (cv, c); (dv, d) ])
    end
  end

let sddmm b c d =
  if Tensor.order b <> 2 || Tensor.order c <> 2 || Tensor.order d <> 2 then
    Error "sddmm: expected three matrices"
  else if
    (Tensor.dims c).(1) <> (Tensor.dims d).(0)
    || (Tensor.dims b).(0) <> (Tensor.dims c).(0)
    || (Tensor.dims b).(1) <> (Tensor.dims d).(1)
  then Error "sddmm: dimension mismatch"
  else begin
    let av = Tensor_var.make "A" ~order:2 ~format:(Tensor.format b) in
    let bv = Tensor_var.make "B" ~order:2 ~format:(Tensor.format b) in
    let cv = Tensor_var.make "C" ~order:2 ~format:(Tensor.format c) in
    let dv = Tensor_var.make "D" ~order:2 ~format:(Tensor.format d) in
    let key =
      cache_key "sddmm" [ Tensor.format b; Tensor.format c; Tensor.format d ]
    in
    let* kern =
      compiled ~key (fun () ->
          (* The reduction over k nests inside the sparse j loop; the
             scalar-temporary concretization (§VI) keeps the sparse
             result appendable. *)
          let stmt =
            I.assign av [ vi; vj ]
              (I.Mul
                 ( I.access bv [ vi; vj ],
                   I.sum vk (I.Mul (I.access cv [ vi; vk ], I.access dv [ vk; vj ])) ))
          in
          let* sched = Schedule.of_index_notation stmt in
          let* c, _ = dflat (Taco.auto_compile ~name:"sddmm" sched) in
          Ok c)
    in
    dflat (Taco.run kern ~inputs:[ (bv, b); (cv, c); (dv, d) ])
  end

let transpose t =
  if Tensor.order t <> 2 then invalid_arg "Ops.transpose: order-2 only";
  let dims = Tensor.dims t in
  let coo = Taco_tensor.Coo.create [| dims.(1); dims.(0) |] in
  Tensor.iteri_stored
    (fun c v -> if v <> 0. then Taco_tensor.Coo.push coo [| c.(1); c.(0) |] v)
    t;
  Tensor.pack coo (Tensor.format t)
