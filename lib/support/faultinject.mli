(** Deterministic fault injection for chaos testing.

    Named fault points are woven through the compile pipeline, the
    executor and the serving layer (e.g. ["compile.build"],
    ["exec.alloc"], ["serve.worker"]). A disarmed point costs one
    mutable-flag read — the production default. {!configure} arms a set
    of rules against a seeded PRNG, so a chaos campaign's fault schedule
    is a pure function of the seed: the same seed fires the same faults
    at the same hits, which is what lets the chaos suite assert exact
    outcomes and the fuzz harness replay failures.

    Three actions:
    - {b Crash}: raise {!Taco_support.Diag.Error} (stage chosen by the
      fault site, code [E_FAULT_INJECTED], context naming the point), as
      if the component failed at that point;
    - {b Delay}: sleep for a fixed number of milliseconds, simulating a
      stall (slow compile, scheduling hiccup) so deadline paths fire;
    - {b Corrupt}: perturb one element of a float array at a
      {!corrupt} site, flipping a mantissa bit — the corruption must be
      caught downstream by a differential check (corrupt-and-detect).

    The registry is process-global and mutex-guarded; points may be hit
    from any domain. Tests should bracket campaigns with
    {!configure}/{!disarm} ([Fun.protect] recommended). *)

(** What an armed rule does when it fires. *)
type action =
  | Crash  (** raise [Diag.Error] with code [E_FAULT_INJECTED] *)
  | Delay of int  (** sleep this many milliseconds, then continue *)
  | Corrupt  (** perturb a float at a {!corrupt} site; no-op at {!hit} sites *)

type rule = {
  r_point : string;  (** fault-point name, e.g. ["compile.build"] *)
  r_action : action;
  r_prob : float;  (** firing probability per hit, in [0, 1] *)
  r_max_fires : int;  (** stop firing after this many; [<= 0] = unlimited *)
}

(** [rule ?prob ?max_fires point action] — [prob] defaults to [1.0],
    [max_fires] to unlimited. *)
val rule : ?prob:float -> ?max_fires:int -> string -> action -> rule

(** Arm the given rules against a fresh PRNG seeded with [seed],
    replacing any previous configuration and zeroing fire counts. *)
val configure : seed:int -> rule list -> unit

(** Disarm every point; fire counts are kept for post-mortem reads. *)
val disarm : unit -> unit

(** Is any rule armed? *)
val armed : unit -> bool

(** [hit ~stage point] — a Crash/Delay fault site. Returns immediately
    (one flag read) when disarmed or when no rule matches [point].
    A firing Crash rule raises [Diag.Error] at the given [stage]. *)
val hit : stage:Diag.stage -> string -> unit

(** [corrupt point arr] — a Corrupt fault site: when a Corrupt rule on
    [point] fires and [arr] is nonempty, one element (PRNG-chosen) gets
    a low mantissa bit flipped. Crash/Delay rules on the point behave as
    at {!hit} sites (stage [Execute]). *)
val corrupt : string -> float array -> unit

(** Times the named point has fired since the last {!configure}. *)
val fires : string -> int

(** Total fires across all points since the last {!configure}. *)
val total_fires : unit -> int
