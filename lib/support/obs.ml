(* Logs wiring for the whole compiler: one "taco" source for general
   messages plus a TACO_LOG-driven setup used by every executable
   entry point (tacocli, bench). Libraries log through [Log] freely;
   nothing prints unless an executable called [setup] (or installed its
   own reporter). *)

let src = Logs.Src.create "taco" ~doc:"Taco tensor algebra compiler"

module Log = (val Logs.src_log src : Logs.LOG)

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "quiet" | "off" | "none" -> Ok None
  | "error" -> Ok (Some Logs.Error)
  | "warn" | "warning" -> Ok (Some Logs.Warning)
  | "info" -> Ok (Some Logs.Info)
  | "debug" -> Ok (Some Logs.Debug)
  | "app" -> Ok (Some Logs.App)
  | _ -> Error (`Msg (Printf.sprintf "TACO_LOG: unknown level %S (try quiet|error|warn|info|debug)" s))

let setup ?(default = Some Logs.Warning) () =
  let level =
    match Sys.getenv_opt "TACO_LOG" with
    | None -> default
    | Some s -> (
        match level_of_string s with
        | Ok l -> l
        | Error (`Msg m) ->
            Printf.eprintf "%s\n%!" m;
            default)
  in
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level
