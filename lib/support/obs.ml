(* Logs wiring for the whole compiler: one "taco" source for general
   messages plus a TACO_LOG-driven setup used by every executable
   entry point (tacocli, bench). Libraries log through [Log] freely;
   nothing prints unless an executable called [setup] (or installed its
   own reporter).

   TACO_LOG is a comma-separated spec: a bare level sets the global
   level, and SRC=LEVEL fragments override individual sources (matched
   by full name or with the "taco." prefix implied), e.g.

     TACO_LOG=warn,service=debug     # quiet compiler, chatty service
     TACO_LOG=debug                  # everything *)

let src = Logs.Src.create "taco" ~doc:"Taco tensor algebra compiler"

module Log = (val Logs.src_log src : Logs.LOG)

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "quiet" | "off" | "none" -> Ok None
  | "error" -> Ok (Some Logs.Error)
  | "warn" | "warning" -> Ok (Some Logs.Warning)
  | "info" -> Ok (Some Logs.Info)
  | "debug" -> Ok (Some Logs.Debug)
  | "app" -> Ok (Some Logs.App)
  | _ -> Error (`Msg (Printf.sprintf "unknown level %S (try quiet|error|warn|info|debug)" s))

(* A malformed fragment falls back (globally to [default], per-source to
   the global level) but always says which fragment was bad — a typo'd
   TACO_LOG must not silently turn into the default. *)
let setup ?(default = Some Logs.Warning) () =
  Logs.set_reporter (Logs_fmt.reporter ());
  match Sys.getenv_opt "TACO_LOG" with
  | None -> Logs.set_level default
  | Some spec ->
      let frags =
        String.split_on_char ',' spec |> List.map String.trim |> List.filter (( <> ) "")
      in
      let globals, per_src = List.partition (fun f -> not (String.contains f '=')) frags in
      let level =
        List.fold_left
          (fun acc frag ->
            match level_of_string frag with
            | Ok l -> l
            | Error (`Msg m) ->
                Printf.eprintf "TACO_LOG: bad fragment %S: %s\n%!" frag m;
                acc)
          default globals
      in
      Logs.set_level level;
      List.iter
        (fun frag ->
          match String.index_opt frag '=' with
          | None -> ()
          | Some i -> (
              let name = String.trim (String.sub frag 0 i) in
              let lvl_s = String.sub frag (i + 1) (String.length frag - i - 1) in
              match level_of_string lvl_s with
              | Error (`Msg m) ->
                  Printf.eprintf "TACO_LOG: bad fragment %S: %s\n%!" frag m
              | Ok lvl -> (
                  let matches s =
                    let n = Logs.Src.name s in
                    n = name || n = "taco." ^ name
                  in
                  match List.filter matches (Logs.Src.list ()) with
                  | [] ->
                      Printf.eprintf "TACO_LOG: bad fragment %S: no log source %S (have: %s)\n%!"
                        frag name
                        (String.concat ", "
                           (List.sort String.compare (List.map Logs.Src.name (Logs.Src.list ()))))
                  | srcs -> List.iter (fun s -> Logs.Src.set_level s lvl) srcs)))
        per_src
