(* JSONL event sink. The path comes from TACO_EVENTS (read once) or
   set_path; the channel opens lazily and appends, one flushed line per
   emit under a mutex so worker domains interleave whole lines. *)

type field =
  | Int of int
  | I64 of int64
  | Float of float
  | Str of string
  | Bool of bool

let mutex = Mutex.create ()

(* [path] is the configured sink; [oc] the lazily opened channel. *)
let path : string option ref = ref (Sys.getenv_opt "TACO_EVENTS")
let oc : out_channel option ref = ref None

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let enabled () = !path <> None

let close_locked () =
  match !oc with
  | None -> ()
  | Some ch ->
      (try close_out ch with Sys_error _ -> ());
      oc := None

let close () = locked close_locked

let set_path p =
  locked (fun () ->
      close_locked ();
      path := p)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let buf_field b (k, v) =
  Buffer.add_string b (Printf.sprintf "\"%s\":" (json_escape k));
  match v with
  | Int n -> Buffer.add_string b (string_of_int n)
  | I64 n -> Buffer.add_string b (Int64.to_string n)
  | Float f ->
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.9g" f)
      else Buffer.add_string b "null"
  | Str s -> Buffer.add_string b (Printf.sprintf "\"%s\"" (json_escape s))
  | Bool x -> Buffer.add_string b (if x then "true" else "false")

let emit event fields =
  if !path <> None then begin
    let fields = ("event", Str event) :: ("ts_ns", I64 (Trace.now_ns ())) :: fields in
    let b = Buffer.create 256 in
    Buffer.add_char b '{';
    List.iteri
      (fun i f ->
        if i > 0 then Buffer.add_char b ',';
        buf_field b f)
      fields;
    Buffer.add_string b "}\n";
    locked (fun () ->
        match !path with
        | None -> ()
        | Some p -> (
            let chan =
              match !oc with
              | Some ch -> Some ch
              | None -> (
                  match open_out_gen [ Open_append; Open_creat ] 0o644 p with
                  | ch ->
                      oc := Some ch;
                      Some ch
                  | exception Sys_error msg ->
                      Printf.eprintf "taco: TACO_EVENTS: cannot open %s: %s (disabling)\n%!" p
                        msg;
                      path := None;
                      None)
            in
            match chan with
            | None -> ()
            | Some ch -> (
                try
                  output_string ch (Buffer.contents b);
                  flush ch
                with Sys_error msg ->
                  Printf.eprintf "taco: TACO_EVENTS: write failed: %s (disabling)\n%!" msg;
                  close_locked ();
                  path := None)))
  end
