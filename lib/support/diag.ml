type stage =
  | Parse
  | Concretize
  | Reorder
  | Workspace
  | Lower
  | Compile
  | Execute
  | Tensor
  | Io
  | Serve

type t = {
  stage : stage;
  code : string;
  message : string;
  context : (string * string) list;
}

exception Error of t

let make ~stage ~code ?(context = []) message = { stage; code; message; context }

let error ~stage ~code ?context fmt =
  Printf.ksprintf (fun s -> Result.Error (make ~stage ~code ?context s)) fmt

let fail ~stage ~code ?context fmt =
  Printf.ksprintf (fun s -> raise (Error (make ~stage ~code ?context s))) fmt

let of_msg ~stage ~code = function
  | Ok _ as ok -> ok
  | Result.Error msg -> Result.Error (make ~stage ~code msg)

let add_context pairs t = { t with context = t.context @ pairs }

let to_result f =
  match f () with v -> Ok v | exception Error d -> Result.Error d

let stage_name = function
  | Parse -> "parse"
  | Concretize -> "concretize"
  | Reorder -> "reorder"
  | Workspace -> "workspace"
  | Lower -> "lower"
  | Compile -> "compile"
  | Execute -> "execute"
  | Tensor -> "tensor"
  | Io -> "io"
  | Serve -> "serve"

let to_string t =
  let ctx =
    match t.context with
    | [] -> ""
    | pairs ->
        Printf.sprintf " (%s)"
          (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) pairs))
  in
  Printf.sprintf "%s error[%s]: %s%s" (stage_name t.stage) t.code t.message ctx

let flatten r = Result.map_error to_string r

let pp fmt t = Format.pp_print_string fmt (to_string t)
