(** In-process tracing: spans, counters and one-shot events for the
    compile pipeline and the kernel executor.

    The tracer is a process-global buffer behind a single [enabled]
    flag. When disabled (the default) every entry point returns after
    one flag read — no clock reads, no allocation, no locking — so
    instrumented code paths cost nothing in production. When enabled,
    events carry monotonic-clock timestamps (nanoseconds, via the
    bechamel clock stub) and buffer in memory until exported as Chrome
    trace-event JSON ({!write_chrome}, loadable in [chrome://tracing]
    and Perfetto) or summarized as text ({!summary}).

    Three event kinds:
    - {b spans} ({!with_span}, {!span_complete}): begin/end pairs with
      nesting; exceptions still close the span;
    - {b counters} ({!add}): named monotonically accumulated totals,
      exported as Chrome "C" events so they render as counter tracks;
    - {b instants} ({!instant}): one-shot markers.

    Span begin/end events are recorded in chronological buffer order;
    {!span_complete} records a retroactive "X" (complete) event for
    callers that measured a duration themselves. The exporter sorts by
    timestamp so the emitted JSON is monotonic either way.

    A [Logs] side channel: when the [taco.trace] source is at [Debug]
    level (see {!Obs.setup} and the [TACO_LOG] environment variable),
    span close also logs the span name and duration — and spans are
    timed-and-logged even with the buffer disabled, so [TACO_LOG=debug]
    alone gives a poor man's profile without any JSON machinery.

    Thread safety: the buffer is mutex-protected and the open-span stack
    is domain-local (one stack per domain, via [Domain.DLS]), so
    concurrent domains can record spans without corrupting each other's
    nesting. Every event carries the recording domain's id and is
    exported with it as the Chrome [tid], letting viewers (and
    [bin/trace_check]) pair B/E events per domain. {!set_args} attaches
    to the calling domain's innermost open span. {!clear} resets the
    shared buffer and the calling domain's stack; call it only while no
    other domain has spans open. *)

(** Monotonic clock, nanoseconds. Usable independently of tracing. *)
val now_ns : unit -> int64

(** Is the buffer recording? *)
val enabled : unit -> bool

(** [enabled () || debug-logging on || a span hook is installed]:
    whether instrumented paths should bother gathering data (used by
    callers that compute span arguments eagerly, and to route execution
    through the instrumented path when only metrics are on). *)
val active : unit -> bool

(** A span-close callback: called with every closed span's name,
    category and measured duration — from {!with_span} (even when the
    buffer is disabled; the span is timed just for the hook) and
    {!span_complete}. Installed by [Metrics.enable] to feed per-stage
    latency histograms from the same measurements the tracer records. *)
type span_hook = name:string -> cat:string -> dur_ns:int64 -> unit

val set_span_hook : span_hook option -> unit

(** {2 Request ids}

    The current request id is domain-local. While set, every event the
    domain records carries an ["rid"] argument, so Chrome traces join
    against the service's per-request event log (and [bin/trace_check]
    can validate per-request invariants). *)

val set_request_id : int option -> unit

val request_id : unit -> int option

val enable : unit -> unit

val disable : unit -> unit

(** Drop all buffered events, counter totals and open spans. *)
val clear : unit -> unit

(** [with_span name f] runs [f ()] inside a span. The span closes (and
    is recorded) even if [f] raises. [args] attach as Chrome event
    arguments; more can be added from inside [f] with {!set_args}. *)
val with_span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Append arguments to the calling domain's innermost open span (no-op
    when disabled or outside any span). *)
val set_args : (string * string) list -> unit

(** Record a complete span retroactively from a caller-measured start
    timestamp and duration (both from {!now_ns}). *)
val span_complete :
  ?cat:string -> ?args:(string * string) list -> ts:int64 -> dur_ns:int64 -> string -> unit

(** [add name n] accumulates [n] into counter [name] and records the new
    total as a counter event. *)
val add : string -> int -> unit

val instant : ?args:(string * string) list -> string -> unit

(** Current accumulated total of a counter (0 if never touched). *)
val counter_total : string -> int

(** All counters with their totals, sorted by name. *)
val counters : unit -> (string * int) list

(** Number of buffered events (spans count twice: begin and end). *)
val event_count : unit -> int

(** Number of currently open spans across all domains (0 when all spans
    are balanced). *)
val open_spans : unit -> int

(** The buffer as Chrome trace-event JSON: an object with a
    ["traceEvents"] array, events sorted by timestamp. *)
val to_chrome_json : unit -> string

val write_chrome : string -> unit

(** Human-readable per-span-name aggregation (count, total, mean) plus
    counter totals. *)
val summary : unit -> string
