(* Process-wide metrics registry. Counters and histograms shard per
   domain through Domain.DLS and merge at scrape time; gauges are rare
   last-write-wins sets behind a mutex. Everything is gated on [on] so
   the disabled path is one ref read, mirroring Trace. See metrics.mli
   for the model. *)

type labels = (string * string) list

(* ------------------------------------------------------------------ *)
(* Log-linear buckets                                                  *)
(* ------------------------------------------------------------------ *)

(* 16 sub-buckets per power of two: relative bucket width 1/16. Values
   are nanosecond durations; everything at or above 2^40 ns (~18 min)
   lands in one overflow bucket. *)
let sub_bits = 4
let sub = 1 lsl sub_bits
let max_exp = 40
let n_buckets = sub + ((max_exp - sub_bits) * sub) + 1

let bucket_of v =
  let v = if v < 0 then 0 else v in
  if v < sub then v
  else begin
    let e = ref sub_bits and x = ref (v lsr sub_bits) in
    while !x > 1 do
      incr e;
      x := !x lsr 1
    done;
    if !e >= max_exp then n_buckets - 1
    else ((!e - sub_bits + 1) * sub) + ((v lsr (!e - sub_bits)) land (sub - 1))
  end

(* Lower edge and width of bucket [i] (inverse of [bucket_of]). *)
let bucket_bounds i =
  if i < sub then (float_of_int i, 1.)
  else if i = n_buckets - 1 then (Float.ldexp 1. max_exp, Float.ldexp 1. max_exp)
  else begin
    let e = sub_bits + (i lsr sub_bits) - 1 in
    let width = 1 lsl (e - sub_bits) in
    let lower = (1 lsl e) + ((i land (sub - 1)) * width) in
    (float_of_int lower, float_of_int width)
  end

type histogram = { h_count : int; h_sum_ns : float; h_buckets : int array }

let quantile h q =
  if h.h_count <= 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = Float.max 1. (q *. float_of_int h.h_count) in
    let cum = ref 0. and res = ref 0. and found = ref false in
    Array.iteri
      (fun i c ->
        if (not !found) && c > 0 then begin
          let before = !cum in
          cum := !cum +. float_of_int c;
          if !cum >= target then begin
            let lower, width = bucket_bounds i in
            res := lower +. ((target -. before) /. float_of_int c *. width);
            found := true
          end
        end)
      h.h_buckets;
    !res
  end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type cell = Counter of { mutable c : int } | Hist of hist_cell
and hist_cell = { counts : int array; mutable sum_ns : float; mutable n : int }

type shard = ((string * labels), cell) Hashtbl.t

let on = ref false
let mutex = Mutex.create ()
let shards : shard list ref = ref []
let gauges : (string * labels, float) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s : shard = Hashtbl.create 32 in
      locked (fun () -> shards := s :: !shards);
      s)

let my_shard () = Domain.DLS.get shard_key

let norm_labels = function
  | ([] | [ _ ]) as ls -> ls
  | ls -> List.sort compare ls

let enabled () = !on

let inc ?(labels = []) ?(by = 1) name =
  if !on then begin
    let key = (name, norm_labels labels) in
    let tbl = my_shard () in
    match Hashtbl.find_opt tbl key with
    | Some (Counter c) -> c.c <- c.c + by
    | Some (Hist _) -> ()
    | None -> Hashtbl.replace tbl key (Counter { c = by })
  end

let set_gauge ?(labels = []) name v =
  if !on then
    let key = (name, norm_labels labels) in
    locked (fun () -> Hashtbl.replace gauges key v)

let observe_ns ?(labels = []) name ns =
  if !on then begin
    let key = (name, norm_labels labels) in
    let tbl = my_shard () in
    let h =
      match Hashtbl.find_opt tbl key with
      | Some (Hist h) -> h
      | Some (Counter _) | None ->
          let h = { counts = Array.make n_buckets 0; sum_ns = 0.; n = 0 } in
          Hashtbl.replace tbl key (Hist h);
          h
    in
    let v = Int64.to_int (Int64.max 0L ns) in
    let b = bucket_of v in
    h.counts.(b) <- h.counts.(b) + 1;
    h.sum_ns <- h.sum_ns +. float_of_int v;
    h.n <- h.n + 1
  end

let time ?labels name f =
  if !on then begin
    let t0 = Trace.now_ns () in
    Fun.protect
      ~finally:(fun () -> observe_ns ?labels name (Int64.sub (Trace.now_ns ()) t0))
      f
  end
  else f ()

(* The Trace hook: every closed span becomes one observation of the
   per-stage histogram, so --trace spans and scraped stage latencies are
   the same measurements on the same clock. *)
let stage_hook ~name ~cat:_ ~dur_ns =
  observe_ns ~labels:[ ("stage", name) ] "taco_stage_duration_seconds" dur_ns

let enable () =
  on := true;
  Trace.set_span_hook (Some stage_hook)

let disable () =
  on := false;
  Trace.set_span_hook None

let reset () =
  locked (fun () ->
      List.iter Hashtbl.reset !shards;
      Hashtbl.reset gauges)

(* ------------------------------------------------------------------ *)
(* Scraping                                                            *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  counters : ((string * labels) * int) list;
  gauges : ((string * labels) * float) list;
  histograms : ((string * labels) * histogram) list;
}

let snapshot () =
  let counters : (string * labels, int) Hashtbl.t = Hashtbl.create 16 in
  let hists : (string * labels, histogram) Hashtbl.t = Hashtbl.create 16 in
  let gauge_list =
    locked (fun () ->
        List.iter
          (fun (shard : shard) ->
            Hashtbl.iter
              (fun key cell ->
                match cell with
                | Counter c ->
                    let prev = Option.value ~default:0 (Hashtbl.find_opt counters key) in
                    Hashtbl.replace counters key (prev + c.c)
                | Hist h ->
                    let merged =
                      match Hashtbl.find_opt hists key with
                      | None ->
                          {
                            h_count = h.n;
                            h_sum_ns = h.sum_ns;
                            h_buckets = Array.copy h.counts;
                          }
                      | Some m ->
                          Array.iteri
                            (fun i c -> m.h_buckets.(i) <- m.h_buckets.(i) + c)
                            h.counts;
                          {
                            m with
                            h_count = m.h_count + h.n;
                            h_sum_ns = m.h_sum_ns +. h.sum_ns;
                          }
                    in
                    Hashtbl.replace hists key merged)
              shard)
          !shards;
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauges [])
  in
  let sorted tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare in
  {
    counters = sorted counters;
    gauges = List.sort compare gauge_list;
    histograms = sorted hists;
  }

let quantile_ns ?labels name q =
  let snap = snapshot () in
  let matching =
    List.filter
      (fun ((n, ls), _) ->
        n = name
        && match labels with None -> true | Some want -> ls = norm_labels want)
      snap.histograms
  in
  match matching with
  | [] -> None
  | series ->
      let merged =
        List.fold_left
          (fun acc (_, h) ->
            Array.iteri (fun i c -> acc.h_buckets.(i) <- acc.h_buckets.(i) + c) h.h_buckets;
            {
              acc with
              h_count = acc.h_count + h.h_count;
              h_sum_ns = acc.h_sum_ns +. h.h_sum_ns;
            })
          { h_count = 0; h_sum_ns = 0.; h_buckets = Array.make n_buckets 0 }
          series
      in
      if merged.h_count = 0 then None else Some (quantile merged q)

(* ------------------------------------------------------------------ *)
(* Encoders                                                            *)
(* ------------------------------------------------------------------ *)

let valid_name_char i c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | '0' .. '9' -> i > 0
  | _ -> false

let sanitize_name s =
  if s = "" then "_"
  else String.mapi (fun i c -> if valid_name_char i c then c else '_') s

let sanitize_label s =
  let s = if s = "" then "_" else s in
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    s

let escape_value s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let label_block ?extra ls =
  let ls = match extra with None -> ls | Some kv -> ls @ [ kv ] in
  if ls = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize_label k) (escape_value v)) ls)
    ^ "}"

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

(* (json key, Prometheus quantile label, q) *)
let quantile_points =
  [ ("p50", "0.5", 0.5); ("p90", "0.9", 0.9); ("p99", "0.99", 0.99); ("p999", "0.999", 0.999) ]

let to_prometheus () =
  let snap = snapshot () in
  let b = Buffer.create 4096 in
  let typed = Hashtbl.create 16 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.replace typed name ();
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun ((name, ls), v) ->
      let name = sanitize_name name in
      type_line name "counter";
      Buffer.add_string b (Printf.sprintf "%s%s %d\n" name (label_block ls) v))
    snap.counters;
  List.iter
    (fun ((name, ls), v) ->
      let name = sanitize_name name in
      type_line name "gauge";
      Buffer.add_string b (Printf.sprintf "%s%s %s\n" name (label_block ls) (fmt_float v)))
    snap.gauges;
  List.iter
    (fun ((name, ls), h) ->
      let name = sanitize_name name in
      type_line name "summary";
      List.iter
        (fun (_, qs, q) ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" name
               (label_block ~extra:("quantile", qs) ls)
               (fmt_float (quantile h q /. 1e9))))
        quantile_points;
      Buffer.add_string b
        (Printf.sprintf "%s_sum%s %s\n" name (label_block ls) (fmt_float (h.h_sum_ns /. 1e9)));
      Buffer.add_string b (Printf.sprintf "%s_count%s %d\n" name (label_block ls) h.h_count))
    snap.histograms;
  Buffer.contents b

(* JSON; same escaping rules as Trace's exporter. *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_labels b ls =
  Buffer.add_string b "\"labels\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    ls;
  Buffer.add_char b '}'

let to_json () =
  let snap = snapshot () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"counters\":[";
  List.iteri
    (fun i ((name, ls), v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"name\":\"%s\"," (json_escape name));
      json_labels b ls;
      Buffer.add_string b (Printf.sprintf ",\"value\":%d}" v))
    snap.counters;
  Buffer.add_string b "],\"gauges\":[";
  List.iteri
    (fun i ((name, ls), v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"name\":\"%s\"," (json_escape name));
      json_labels b ls;
      Buffer.add_string b (Printf.sprintf ",\"value\":%s}" (fmt_float v)))
    snap.gauges;
  Buffer.add_string b "],\"histograms\":[";
  List.iteri
    (fun i ((name, ls), h) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"name\":\"%s\"," (json_escape name));
      json_labels b ls;
      Buffer.add_string b
        (Printf.sprintf ",\"count\":%d,\"sum_s\":%s" h.h_count (fmt_float (h.h_sum_ns /. 1e9)));
      List.iter
        (fun (key, _, q) ->
          Buffer.add_string b
            (Printf.sprintf ",\"%s_s\":%s" key (fmt_float (quantile h q /. 1e9))))
        quantile_points;
      Buffer.add_char b '}')
    snap.histograms;
  Buffer.add_string b "]}\n";
  Buffer.contents b
