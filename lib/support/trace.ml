(* Process-global trace buffer. Everything is guarded by [on]: the
   disabled path is one ref read per call so instrumentation can stay
   compiled into hot paths. See trace.mli for the model. *)

let src = Logs.Src.create "taco.trace" ~doc:"Taco trace spans"

module Log = (val Logs.src_log src : Logs.LOG)

let now_ns = Monotonic_clock.now

(* A span begin; [sp_args] is mutable so [set_args] can attach data
   discovered while the span body runs (node counts, run stats). *)
type span = {
  sp_name : string;
  sp_cat : string;
  sp_ts : int64;
  sp_tid : int;
  mutable sp_args : (string * string) list;
}

type event =
  | E_begin of span
  | E_end of { e_name : string; e_ts : int64; e_tid : int }
  | E_complete of {
      x_name : string;
      x_cat : string;
      x_ts : int64;
      x_dur : int64;
      x_tid : int;
      x_args : (string * string) list;
    }
  | E_counter of { c_name : string; c_ts : int64; c_total : int }
  | E_instant of { i_name : string; i_ts : int64; i_tid : int; i_args : (string * string) list }

let on = ref false
let mutex = Mutex.create ()

(* Most recent first; reversed (then ts-sorted) at export. *)
let events : event list ref = ref []
let n_events = ref 0

(* The open-span stack is domain-local: each worker domain nests its own
   spans and never sees (or corrupts) another domain's stack. The event
   buffer stays shared behind the mutex; events carry the domain id so
   exporters can pair B/E per domain. *)
let stack_key : span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let my_stack () = Domain.DLS.get stack_key

let tid () = (Domain.self () :> int)

(* Global count of open spans across all domains (the per-domain stacks
   of other domains cannot be walked); guarded by [mutex]. *)
let open_count = ref 0
let totals : (string, int) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let push e =
  events := e :: !events;
  incr n_events

let enabled () = !on

let logging () =
  match Logs.Src.level src with Some Logs.Debug -> true | _ -> false

(* Span-close hook (installed by Metrics.enable): called with every
   closed span's duration, whether or not the buffer is recording, so
   per-stage latency histograms share the tracer's clock and names. *)
type span_hook = name:string -> cat:string -> dur_ns:int64 -> unit

let span_hook : span_hook option ref = ref None

let set_span_hook h = span_hook := h

let hook_on () = Option.is_some !span_hook

let call_hook name cat dur_ns =
  match !span_hook with None -> () | Some f -> f ~name ~cat ~dur_ns

let active () = !on || logging () || hook_on ()

(* The current request id is domain-local, like the span stack: a worker
   domain serves one request at a time, and every event it records while
   the id is set is stamped with it (an ["rid"] argument), making trace
   output joinable with the service's per-request event log. *)
let rid_key : int option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let set_request_id rid = Domain.DLS.get rid_key := rid

let request_id () = !(Domain.DLS.get rid_key)

let rid_args args =
  match request_id () with
  | None -> args
  | Some r -> ("rid", string_of_int r) :: args

let enable () = on := true
let disable () = on := false

let clear () =
  locked (fun () ->
      events := [];
      n_events := 0;
      open_count := 0;
      Hashtbl.reset totals);
  (* Only the calling domain's stack is reachable; other domains' stacks
     unwind on their own as their [with_span] frames return. *)
  my_stack () := []

let ms_of_ns ns = Int64.to_float ns /. 1e6

let log_span name t0 t1 =
  Log.debug (fun m -> m "span %s: %.3f ms" name (ms_of_ns (Int64.sub t1 t0)))

let with_span ?(cat = "taco") ?(args = []) name f =
  if !on then begin
    let t = tid () in
    let sp =
      { sp_name = name; sp_cat = cat; sp_ts = now_ns (); sp_tid = t; sp_args = rid_args args }
    in
    let stack = my_stack () in
    locked (fun () ->
        push (E_begin sp);
        incr open_count);
    stack := sp :: !stack;
    Fun.protect
      ~finally:(fun () ->
        let t1 = now_ns () in
        (match !stack with _ :: tl -> stack := tl | [] -> ());
        locked (fun () ->
            decr open_count;
            push (E_end { e_name = name; e_ts = t1; e_tid = t }));
        call_hook name cat (Int64.sub t1 sp.sp_ts);
        log_span name sp.sp_ts t1)
      f
  end
  else if logging () || hook_on () then begin
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now_ns () in
        call_hook name cat (Int64.sub t1 t0);
        log_span name t0 t1)
      f
  end
  else f ()

let set_args kv =
  if !on then
    match !(my_stack ()) with
    | sp :: _ -> locked (fun () -> sp.sp_args <- sp.sp_args @ kv)
    | [] -> ()

let span_complete ?(cat = "taco") ?(args = []) ~ts ~dur_ns name =
  if !on then begin
    let t = tid () in
    let args = rid_args args in
    locked (fun () ->
        push
          (E_complete
             { x_name = name; x_cat = cat; x_ts = ts; x_dur = dur_ns; x_tid = t; x_args = args }))
  end;
  call_hook name cat dur_ns;
  if logging () then log_span name ts (Int64.add ts dur_ns)

let add name n =
  if !on then
    locked (fun () ->
        let total = (try Hashtbl.find totals name with Not_found -> 0) + n in
        Hashtbl.replace totals name total;
        push (E_counter { c_name = name; c_ts = now_ns (); c_total = total }))

let instant ?(args = []) name =
  if !on then
    let t = tid () in
    let args = rid_args args in
    locked (fun () -> push (E_instant { i_name = name; i_ts = now_ns (); i_tid = t; i_args = args }))

let counter_total name =
  locked (fun () -> try Hashtbl.find totals name with Not_found -> 0)

let counters () =
  locked (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let event_count () = locked (fun () -> !n_events)
let open_spans () = locked (fun () -> !open_count)

(* ---- export ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_ts = function
  | E_begin sp -> sp.sp_ts
  | E_end e -> e.e_ts
  | E_complete x -> x.x_ts
  | E_counter c -> c.c_ts
  | E_instant i -> i.i_ts

(* Chronological order with a stable tiebreak on buffer order, so
   retroactive X events (whose ts is their start) interleave correctly
   with B/E pairs recorded around them. *)
let snapshot () =
  let evs = locked (fun () -> List.rev !events) in
  List.stable_sort (fun a b -> Int64.compare (event_ts a) (event_ts b)) evs

let buf_args b args =
  Buffer.add_string b "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    args;
  Buffer.add_char b '}'

let to_chrome_json () =
  let evs = snapshot () in
  let t0 = match evs with [] -> 0L | e :: _ -> event_ts e in
  (* Microseconds relative to the first event, with sub-µs precision
     kept so distinct ns timestamps stay distinct. *)
  let us ts = Int64.to_float (Int64.sub ts t0) /. 1e3 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n";
      (match e with
      | E_begin sp ->
          Buffer.add_string b
            (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"B\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,"
               (json_escape sp.sp_name) (json_escape sp.sp_cat) (us sp.sp_ts) sp.sp_tid);
          buf_args b sp.sp_args;
          Buffer.add_char b '}'
      | E_end e ->
          Buffer.add_string b
            (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"E\",\"ts\":%.3f,\"pid\":1,\"tid\":%d}"
               (json_escape e.e_name) (us e.e_ts) e.e_tid)
      | E_complete x ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,"
               (json_escape x.x_name) (json_escape x.x_cat) (us x.x_ts)
               (Int64.to_float x.x_dur /. 1e3) x.x_tid);
          buf_args b x.x_args;
          Buffer.add_char b '}'
      | E_counter c ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"args\":{\"value\":%d}}"
               (json_escape c.c_name) (us c.c_ts) c.c_total)
      | E_instant i ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"s\":\"t\","
               (json_escape i.i_name) (us i.i_ts) i.i_tid);
          buf_args b i.i_args;
          Buffer.add_char b '}'))
    evs;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_chrome path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_chrome_json ()))

(* ---- text summary ---- *)

let summary () =
  let evs = snapshot () in
  (* Pair B/E events with an explicit stack per domain (concurrent
     domains interleave their pairs in the buffer); X events contribute
     directly. Aggregates keyed by span name. *)
  let agg : (string, int * int64) Hashtbl.t = Hashtbl.create 16 in
  let record name dur =
    let n, tot = try Hashtbl.find agg name with Not_found -> (0, 0L) in
    Hashtbl.replace agg name (n + 1, Int64.add tot dur)
  in
  let order : string list ref = ref [] in
  let seen name = if not (List.mem name !order) then order := name :: !order in
  let stacks : (int, (string * int64) list) Hashtbl.t = Hashtbl.create 4 in
  let stk t = try Hashtbl.find stacks t with Not_found -> [] in
  List.iter
    (fun e ->
      match e with
      | E_begin sp ->
          seen sp.sp_name;
          Hashtbl.replace stacks sp.sp_tid ((sp.sp_name, sp.sp_ts) :: stk sp.sp_tid)
      | E_end e -> (
          match stk e.e_tid with
          | (name, t0) :: tl when name = e.e_name ->
              Hashtbl.replace stacks e.e_tid tl;
              record name (Int64.sub e.e_ts t0)
          | _ -> ())
      | E_complete x ->
          seen x.x_name;
          record x.x_name x.x_dur
      | E_counter _ | E_instant _ -> ())
    evs;
  let b = Buffer.create 1024 in
  Buffer.add_string b "trace summary\n";
  Buffer.add_string b
    (Printf.sprintf "  %-28s %6s %12s %12s\n" "span" "count" "total(ms)" "mean(ms)");
  List.iter
    (fun name ->
      match Hashtbl.find_opt agg name with
      | None -> ()
      | Some (n, tot) ->
          let tot_ms = ms_of_ns tot in
          Buffer.add_string b
            (Printf.sprintf "  %-28s %6d %12.3f %12.3f\n" name n tot_ms
               (tot_ms /. float_of_int n)))
    (List.rev !order);
  (match counters () with
  | [] -> ()
  | cs ->
      Buffer.add_string b "counters\n";
      List.iter
        (fun (name, total) -> Buffer.add_string b (Printf.sprintf "  %-28s %12d\n" name total))
        cs);
  Buffer.contents b
