(** Structured JSONL event log: one JSON object per line, appended to
    the file named by the [TACO_EVENTS] environment variable (or set
    programmatically with {!set_path}).

    The service emits one event per request — request id, expression,
    outcome, backend, and phase timings — keyed by the same request id
    that {!Trace} stamps on span events, so a Chrome trace and the event
    log are joinable per request.

    When no path is configured every entry point is a no-op after one
    flag read. Writes are mutex-serialized and flushed per line, so
    concurrent worker domains produce valid interleaved JSONL. *)

(** Field values for one event line. *)
type field =
  | Int of int
  | I64 of int64
  | Float of float
  | Str of string
  | Bool of bool

(** Is a sink configured? *)
val enabled : unit -> bool

(** Route events to [Some path] (appending; the file is opened lazily on
    the first emit) or disable with [None]. Overrides [TACO_EVENTS]. *)
val set_path : string option -> unit

(** [emit event fields] appends one event line; [event] becomes the
    ["event"] field and a ["ts_ns"] field (monotonic clock) is prepended
    automatically. No-op when disabled; write failures disable the sink
    with one warning rather than failing the request. *)
val emit : string -> (string * field) list -> unit

(** Flush and close the sink (it reopens on the next emit). *)
val close : unit -> unit
