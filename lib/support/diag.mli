(** Structured diagnostics for the compile pipeline.

    Every user-facing failure carries the pipeline stage it arose in, a
    stable machine-readable error code, a human-readable message and
    optional named context (tensor, kernel, variable, line number, …).
    Stage boundaries return [('a, Diag.t) result]; deep execution paths
    that cannot thread a result (checked array accesses) raise {!Error}
    and the nearest boundary converts back to a result. *)

(** The pipeline stage a diagnostic originated in. *)
type stage =
  | Parse  (** index notation string → AST ([Taco_frontend.Parser]) *)
  | Concretize  (** index notation → concrete index notation *)
  | Reorder  (** reorder transformations on concrete index notation *)
  | Workspace  (** the workspace transformation ([precompute]) *)
  | Lower  (** concrete index notation → imperative IR *)
  | Compile  (** imperative IR → executable closures *)
  | Execute  (** running a compiled kernel *)
  | Tensor  (** tensor construction / structural validation *)
  | Io  (** tensor file readers and writers *)
  | Serve  (** the concurrent evaluation service ([Taco_service]) *)

type t = {
  stage : stage;
  code : string;  (** stable, grep-able, e.g. ["E_IO_SIZE_LINE"] *)
  message : string;
  context : (string * string) list;  (** named context, e.g. [("line", "7")] *)
}

exception Error of t

(** [make ~stage ~code ?context message] builds a diagnostic. *)
val make : stage:stage -> code:string -> ?context:(string * string) list -> string -> t

(** [error ~stage ~code ?context fmt …] formats a message and returns
    [Result.Error] carrying the diagnostic. *)
val error :
  stage:stage ->
  code:string ->
  ?context:(string * string) list ->
  ('a, unit, string, ('b, t) result) format4 ->
  'a

(** Like {!error} but raises {!Error} (for deep call paths). *)
val fail :
  stage:stage ->
  code:string ->
  ?context:(string * string) list ->
  ('a, unit, string, 'b) format4 ->
  'a

(** [of_msg ~stage ~code r] tags a plain [string]-error result. *)
val of_msg : stage:stage -> code:string -> ('a, string) result -> ('a, t) result

(** Append context pairs to a diagnostic (existing pairs kept first). *)
val add_context : (string * string) list -> t -> t

(** [to_result f] runs [f ()], catching {!Error}. *)
val to_result : (unit -> 'a) -> ('a, t) result

val stage_name : stage -> string

(** Render as ["stage error[CODE]: message (key=value, …)"]. *)
val to_string : t -> string

(** Drop the structure: [Result.map_error to_string]. *)
val flatten : ('a, t) result -> ('a, string) result

val pp : Format.formatter -> t -> unit
