(** Process-wide metrics: counters, gauges and log-linear latency
    histograms, cheap enough to leave enabled in a serving process.

    The registry mirrors {!Trace}'s discipline: everything is behind one
    [enabled] flag, and a disabled entry point returns after a single
    flag read — no clock, no allocation, no locking — so instrumented
    hot paths cost nothing when observability is off.

    {b Sharding.} Counter increments and histogram observations go to a
    per-domain shard (via [Domain.DLS], the same pattern as {!Trace}'s
    per-domain span stacks), so worker domains record concurrently
    without contending on a lock. Shards are merged at scrape time
    ({!snapshot}, {!to_prometheus}, {!to_json}). A scrape that races
    recording domains may observe a slightly stale view; after the
    recording domains are joined the merge is exact. Gauges are
    last-write-wins process globals (sets are rare — queue depth, live
    workers), kept in a small mutex-guarded table.

    {b Histograms} are HDR-style log-linear: 16 sub-buckets per power of
    two, so any recorded duration is bucketed with a relative error of
    at most 1/16 (~6.25%), using a fixed ~600-slot int array per series
    per domain and no allocation per observation. Values are
    nanoseconds; quantiles interpolate within the resolved bucket.

    {b Series identity} is (metric name, sorted label pairs). Metric
    names should already be valid Prometheus names
    ([[a-zA-Z_:][a-zA-Z0-9_:]*]); the encoders sanitize defensively.
    Histogram metrics are duration-valued by convention: name them
    [*_seconds] — the Prometheus and JSON encoders convert the stored
    nanoseconds to seconds on output.

    {b Pipeline stages.} {!enable} installs a {!Trace} span-close hook
    that feeds every closed span's duration into the
    [taco_stage_duration_seconds{stage=<span name>}] histogram, so the
    tracer and the metrics registry share one clock and one set of stage
    names — a request's [--trace] spans and its scraped stage histograms
    are the same measurements. *)

type labels = (string * string) list

val enabled : unit -> bool

(** Turn recording on and hook {!Trace} span closes into the
    [taco_stage_duration_seconds] histogram. *)
val enable : unit -> unit

(** Turn recording off and uninstall the {!Trace} hook. *)
val disable : unit -> unit

(** Drop every recorded series (all domains' shards and the gauge
    table). Call while no other domain is recording. *)
val reset : unit -> unit

(** {2 Recording} *)

(** [inc name] adds [by] (default 1) to the counter series
    [(name, labels)]. Labels default to none. *)
val inc : ?labels:labels -> ?by:int -> string -> unit

(** Last-write-wins gauge set. *)
val set_gauge : ?labels:labels -> string -> float -> unit

(** Record one duration (nanoseconds) into a histogram series. Negative
    values clamp to 0. *)
val observe_ns : ?labels:labels -> string -> int64 -> unit

(** Time [f] and record its duration into the histogram (the timing is
    skipped entirely when disabled). *)
val time : ?labels:labels -> string -> (unit -> 'a) -> 'a

(** {2 Log-linear buckets}

    The bucket machinery is exposed so other subsystems (tensor
    sparsity statistics in [Taco_stats]) can histogram arbitrary
    non-negative integers — segment lengths, fills — with the same
    ≤ 1/16 relative-error log-linear layout the latency histograms
    use. *)

(** Number of buckets in a log-linear histogram array. *)
val n_buckets : int

(** [bucket_of v] maps a non-negative integer to its bucket index in
    [\[0, n_buckets)]. Negative values clamp to 0. *)
val bucket_of : int -> int

(** [bucket_bounds i] is the (lower edge, width) of bucket [i] — the
    inverse of {!bucket_of} up to bucket resolution. *)
val bucket_bounds : int -> float * float

(** {2 Scraping} *)

(** A merged histogram: total count, summed nanoseconds, and the raw
    log-linear bucket counts. *)
type histogram = { h_count : int; h_sum_ns : float; h_buckets : int array }

(** [quantile h q] for [q] in [0,1]: an estimate of the [q]-quantile in
    nanoseconds, within one bucket width (≤ 1/16 relative error) of the
    true order statistic. 0 when the histogram is empty. *)
val quantile : histogram -> float -> float

type snapshot = {
  counters : ((string * labels) * int) list;
  gauges : ((string * labels) * float) list;
  histograms : ((string * labels) * histogram) list;
}

(** Merge all shards into a deterministic (name- then label-sorted)
    snapshot. *)
val snapshot : unit -> snapshot

(** [quantile_ns name q] merges every histogram series of family [name]
    (or exactly the [(name, labels)] series when [labels] is given) and
    returns its [q]-quantile in nanoseconds; [None] when nothing was
    recorded. *)
val quantile_ns : ?labels:labels -> string -> float -> float option

(** Prometheus text exposition (version 0.0.4). Counters and gauges
    expose as their own types; histograms expose as summaries with
    [quantile] labels 0.5/0.9/0.99/0.999 plus [_sum]/[_count] (seconds).
    Families are sorted by name, series by labels, so output is
    deterministic for a deterministic recording. *)
val to_prometheus : unit -> string

(** The same snapshot as one JSON object
    [{"counters":[...],"gauges":[...],"histograms":[...]}], each series
    with its labels, histograms with count/sum and p50/p90/p99/p999 (in
    seconds, like the Prometheus encoder). *)
val to_json : unit -> string
