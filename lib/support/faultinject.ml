(* Deterministic fault injection. The armed flag is the only state read
   on the hot path: a disarmed [hit]/[corrupt] is one load and a branch,
   so the points woven through the pipeline cost nothing in production.
   The armed registry (rules, PRNG, fire counts) lives behind a mutex so
   worker domains hitting points concurrently draw from one seeded
   stream — the fault schedule is a function of the seed and the global
   hit order, which is deterministic for the single-domain campaigns the
   chaos tests run and reproducible enough for multi-domain ones. *)

type action = Crash | Delay of int | Corrupt

type rule = { r_point : string; r_action : action; r_prob : float; r_max_fires : int }

let rule ?(prob = 1.0) ?(max_fires = 0) point action =
  { r_point = point; r_action = action; r_prob = prob; r_max_fires = max_fires }

type state = {
  prng : Prng.t;
  rules : (string, rule * int ref) Hashtbl.t;  (* point -> rule, fires *)
  counts : (string, int) Hashtbl.t;  (* survives disarm, for post-mortems *)
}

let armed_flag = ref false

let registry : state option ref = ref None

let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let configure ~seed rules =
  locked (fun () ->
      let tbl = Hashtbl.create 8 in
      List.iter (fun r -> Hashtbl.replace tbl r.r_point (r, ref 0)) rules;
      registry := Some { prng = Prng.create seed; rules = tbl; counts = Hashtbl.create 8 };
      armed_flag := rules <> [])

let disarm () =
  locked (fun () ->
      (match !registry with
      | Some st -> Hashtbl.reset st.rules
      | None -> ());
      armed_flag := false)

let armed () = !armed_flag

let fires point =
  locked (fun () ->
      match !registry with
      | None -> 0
      | Some st -> Option.value ~default:0 (Hashtbl.find_opt st.counts point))

let total_fires () =
  locked (fun () ->
      match !registry with
      | None -> 0
      | Some st -> Hashtbl.fold (fun _ n acc -> acc + n) st.counts 0)

(* Decide under the mutex whether [point] fires, returning the action to
   perform outside it (sleeping under the registry mutex would serialize
   unrelated points). *)
let draw point =
  locked (fun () ->
      match !registry with
      | None -> None
      | Some st -> (
          match Hashtbl.find_opt st.rules point with
          | None -> None
          | Some (r, fired) ->
              if r.r_max_fires > 0 && !fired >= r.r_max_fires then None
              else if not (r.r_prob >= 1.0 || Prng.bool st.prng r.r_prob) then None
              else begin
                incr fired;
                Hashtbl.replace st.counts point
                  (1 + Option.value ~default:0 (Hashtbl.find_opt st.counts point));
                Some (r.r_action, st.prng)
              end))

let crash ~stage point =
  Trace.add "fault.injected" 1;
  Diag.fail ~stage ~code:"E_FAULT_INJECTED"
    ~context:[ ("fault_point", point) ]
    "injected fault at %s" point

let hit ~stage point =
  if !armed_flag then
    match draw point with
    | None | Some (Corrupt, _) -> ()
    | Some (Crash, _) -> crash ~stage point
    | Some (Delay ms, _) -> Unix.sleepf (float_of_int ms /. 1000.)

let corrupt point arr =
  if !armed_flag then
    match draw point with
    | None -> ()
    | Some (Crash, _) -> crash ~stage:Diag.Execute point
    | Some (Delay ms, _) -> Unix.sleepf (float_of_int ms /. 1000.)
    | Some (Corrupt, prng) ->
        if Array.length arr > 0 then begin
          let i = locked (fun () -> Prng.int prng (Array.length arr)) in
          (* Flip a low mantissa bit: a perturbation no float identity
             can hide, so any bitwise differential check downstream must
             catch it. *)
          arr.(i) <- Int64.float_of_bits (Int64.logxor (Int64.bits_of_float arr.(i)) 1L);
          Trace.add "fault.corrupted" 1
        end
