(** [Logs] wiring shared by every executable surface.

    Libraries log through {!Log} (source ["taco"]); nothing is printed
    until an executable installs a reporter, which {!setup} does based
    on the [TACO_LOG] environment variable. [TACO_LOG=debug]
    additionally makes {!Trace.with_span} time and log every span even
    when the trace buffer is disabled.

    [TACO_LOG] is a comma-separated spec. A bare level
    ([quiet|error|warn|info|debug], default warn) sets the global level;
    [SRC=LEVEL] fragments override one source, with the ["taco."]
    prefix implied — [TACO_LOG=warn,service=debug] debugs the service
    layer ([taco.service]) without drowning in compiler logs. Malformed
    or unmatched fragments fall back and print the offending fragment
    on stderr. *)

val src : Logs.src

module Log : Logs.LOG

(** Parse a [TACO_LOG] level string (one level, not the full
    comma-separated spec). *)
val level_of_string : string -> (Logs.level option, [ `Msg of string ]) result

(** Install a {!Logs_fmt} reporter and apply the [TACO_LOG] spec,
    falling back to [default] (default: warnings) when the variable is
    unset or its global fragment is unparseable. *)
val setup : ?default:Logs.level option -> unit -> unit
