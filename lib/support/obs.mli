(** [Logs] wiring shared by every executable surface.

    Libraries log through {!Log} (source ["taco"]); nothing is printed
    until an executable installs a reporter, which {!setup} does based
    on the [TACO_LOG] environment variable
    ([quiet|error|warn|info|debug], default warn). [TACO_LOG=debug]
    additionally makes {!Trace.with_span} time and log every span even
    when the trace buffer is disabled. *)

val src : Logs.src

module Log : Logs.LOG

(** Parse a [TACO_LOG] level string. *)
val level_of_string : string -> (Logs.level option, [ `Msg of string ]) result

(** Install a {!Logs_fmt} reporter and set the global level from
    [TACO_LOG], falling back to [default] (default: warnings) when the
    variable is unset or unparseable. *)
val setup : ?default:Logs.level option -> unit -> unit
