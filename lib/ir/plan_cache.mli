(** Bounded, thread-safe cache mapping plan keys to chosen plans.

    Keys are opaque strings built by the caller from (expression
    structure, stats bucket) — see {!Autoschedule.search} — so repeat
    traffic on the service skips the plan search entirely. FIFO
    eviction; all operations take an internal mutex, so worker domains
    can share one instance. *)

type 'a t

type stats = { hits : int; misses : int; evictions : int; size : int }

(** [create ()] with the given capacity (default 256 entries). Raises
    [Invalid_argument] on a non-positive capacity. *)
val create : ?capacity:int -> unit -> 'a t

(** Lookup; counts a hit or a miss. *)
val find : 'a t -> string -> 'a option

(** Insert (first writer wins; re-adding an existing key is a no-op).
    Evicts the oldest entry when full. *)
val add : 'a t -> string -> 'a -> unit

val stats : 'a t -> stats

(** Drop all entries and reset the counters. *)
val clear : 'a t -> unit
