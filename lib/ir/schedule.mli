(** The scheduling API of paper §III: [reorder] and [precompute] commands
    applied to an index statement, in the spirit of Halide.

    A schedule wraps a concrete index notation statement; commands
    transform it and report precondition failures as [Error]. The result
    is handed to the lowering stage. *)

open Var

type t

(** Concretize an index notation statement into a fresh schedule. *)
val of_index_notation : ?scalar_temps:bool -> Index_notation.t -> (t, string) result

val of_stmt : Cin.stmt -> t

val stmt : t -> Cin.stmt

(** The paper's [reorder(k, j)]: exchange two loop variables. *)
val reorder : Index_var.t -> Index_var.t -> t -> (t, string) result

(** [parallelize i]: mark the outermost loop for parallel execution.
    The lowered kernel wraps that loop in {!Taco_lower.Imp.ParallelFor};
    the executor splits its iterations into contiguous chunks with
    per-chunk workspaces and staging buffers, merged deterministically —
    results are bit-identical to sequential execution for every domain
    count.

    Fails when chunks could interfere: [i] must be the outermost forall
    binder (reorder it outward first), and every non-workspace tensor
    written under the loop must be indexed by [i]. A reduction into a
    shared output is the classic illegal case; the fix is the workspace
    transformation ({!precompute}), which gives each chunk a private
    accumulator. *)
val parallelize : Index_var.t -> t -> (t, string) result

(** The index variable marked by {!parallelize}, if any. *)
val parallel : t -> Index_var.t option

(** The paper's [precompute(expr, {{old, consumer, producer}, …}, w)]:
    apply the workspace transformation over the [old] variables, then
    rename each [old] to [consumer] on the consumer side and [producer]
    on the producer side (when that side rebinds it). *)
val precompute :
  expr:Cin.expr ->
  vars:(Index_var.t * Index_var.t * Index_var.t) list ->
  workspace:Tensor_var.t ->
  t ->
  (t, string) result

(** [precompute] without the renaming triplets. *)
val precompute_simple :
  expr:Cin.expr ->
  over:Index_var.t list ->
  workspace:Tensor_var.t ->
  t ->
  (t, string) result

(** Translate a [Sum]-free index notation expression for use as the
    [expr] argument of {!precompute}. *)
val expr_of_index_notation : Index_notation.expr -> (Cin.expr, string) result

val pp : Format.formatter -> t -> unit
