(* Semirings: the (zero, add, mul) algebra a kernel computes over.

   The lowering pipeline only assumes an additive reduction into a
   workspace/result and a multiplicative combine, so the algebra is a
   parameter rather than a hard-wired (+, ×) over floats.  A semiring
   here is a small closed vocabulary of add/mul operators (enough for
   the graph workloads: shortest paths, reachability, Viterbi-style
   max products) instead of arbitrary closures, so kernels stay
   marshalable for the compiled-kernel cache and emit plain C.

   Sparsity contract: a stored-out value equals [zero], and [zero]
   must annihilate under [mul] ([annihilates]) for sparse operands to
   be prunable from merge-lattice branches. *)

type add_op = Add_plus | Add_min | Add_max | Add_or
type mul_op = Mul_times | Mul_plus | Mul_and

type t = {
  name : string;
  zero : float;  (* additive identity; the "absent value" of sparse storage *)
  one : float;  (* multiplicative identity *)
  add : add_op;
  mul : mul_op;
  annihilates : bool;  (* zero (x) x = zero, so absent operands prune *)
}

let plus_times =
  { name = "plus_times"; zero = 0.; one = 1.; add = Add_plus; mul = Mul_times; annihilates = true }

(* Tropical / shortest-path semiring: (min, +) over R ∪ {+inf}. *)
let min_plus =
  { name = "min_plus"; zero = infinity; one = 0.; add = Add_min; mul = Mul_plus; annihilates = true }

(* Viterbi-style semiring over the non-negative reals: (max, ×). *)
let max_times =
  { name = "max_times"; zero = 0.; one = 1.; add = Add_max; mul = Mul_times; annihilates = true }

(* Boolean reachability semiring, encoded in floats: 0. / 1. *)
let bool_or_and =
  { name = "bool_or_and"; zero = 0.; one = 1.; add = Add_or; mul = Mul_and; annihilates = true }

let all = [ plus_times; min_plus; max_times; bool_or_and ]

let is_plus_times sr = sr.add = Add_plus && sr.mul = Mul_times

(* Whether the additive identity is all-zero bits, i.e. whether
   memset(0) produces a zeroed array.  min_plus (+inf) is the
   counterexample: zeroing must go through an explicit fill loop. *)
let zero_is_bits0 sr = Int64.equal (Int64.bits_of_float sr.zero) 0L

let to_string sr = sr.name

let of_string = function
  | "plus_times" | "default" -> Some plus_times
  | "min_plus" | "minplus" | "tropical" -> Some min_plus
  | "max_times" | "maxtimes" -> Some max_times
  | "bool_or_and" | "boolor" | "boolean" -> Some bool_or_and
  | _ -> None

let names = List.map to_string all

(* Reference float-level evaluation, for oracles and law tests. *)
let add_f sr a b =
  match sr.add with
  | Add_plus -> a +. b
  | Add_min -> Float.min a b
  | Add_max -> Float.max a b
  | Add_or -> if a <> 0. || b <> 0. then 1. else 0.

let mul_f sr a b =
  match sr.mul with
  | Mul_times -> a *. b
  | Mul_plus -> a +. b
  | Mul_and -> if a <> 0. && b <> 0. then 1. else 0.

let pp ppf sr = Fmt.string ppf sr.name
