(** Semirings: the (zero, add, mul) algebra a kernel computes over.

    The add/mul operators come from a small closed vocabulary (enough
    for graph workloads) so kernels stay marshalable and emit plain C.
    Sparsity contract: absent values equal [zero], which must
    annihilate under [mul] for sparse operands to prune. *)

type add_op = Add_plus | Add_min | Add_max | Add_or
type mul_op = Mul_times | Mul_plus | Mul_and

type t = {
  name : string;
  zero : float;
  one : float;
  add : add_op;
  mul : mul_op;
  annihilates : bool;
}

val plus_times : t
(** The default arithmetic semiring: (+, ×) over floats, zero 0. *)

val min_plus : t
(** Tropical / shortest-path semiring: (min, +), zero +inf, one 0. *)

val max_times : t
(** Viterbi-style semiring over non-negative reals: (max, ×). *)

val bool_or_and : t
(** Boolean reachability semiring encoded in floats (0. / 1.). *)

val all : t list

val is_plus_times : t -> bool
(** Whether the semiring is the default algebra, i.e. lowering may use
    the plain [+]/[*]/[+=] paths (and all existing rewrites). *)

val zero_is_bits0 : t -> bool
(** Whether the additive identity is all-zero bits, i.e. memset(0) is a
    valid zeroing of an array of [zero]s. False for min_plus (+inf):
    zeroing must go through an explicit fill loop. *)

val to_string : t -> string

val of_string : string -> t option
(** Accepts canonical names and a few aliases ("tropical", "boolor",
    "default"); [None] for unknown names. *)

val names : string list

val add_f : t -> float -> float -> float
(** Reference evaluation of the additive operator. *)

val mul_f : t -> float -> float -> float
(** Reference evaluation of the multiplicative operator. *)

val pp : Format.formatter -> t -> unit
