(** A scheduling policy system (the future work the paper's §I proposes
    building on top of the scheduling API): drive a statement to a
    lowerable, efficient form automatically.

    Two policies are provided. {!run} is the original breadth-first
    policy: iterate reorders and the §V-C workspace heuristics until the
    supplied [lowerable] check accepts the statement, and return the
    first acceptance. {!search} is the cost-ranked policy: explore the
    same move space best-first under the statistics-driven cost model
    ({!Cost}), collect every lowerable schedule within the budget, and
    return the cheapest — falling back to the breadth-first plan unless
    the estimated win is decisive. The result records which steps were
    taken, so users can audit (and replay through the manual API) what
    the policy chose. *)

open Var

type step =
  | Reordered of Index_var.t * Index_var.t
  | Precomputed of Heuristics.suggestion * Tensor_var.t  (** and its workspace *)
  | Parallelized of Index_var.t
      (** advisory: the plan's outermost loop can run in parallel *)

val step_to_string : step -> string

(** [run ~lowerable stmt] — [lowerable] returns [Ok ()] or the lowering
    error message for a candidate statement (pass
    [fun s -> Result.map ignore (Lower.lower ~mode s)] from the caller;
    this module cannot depend on the lowering library). *)
val run :
  lowerable:(Cin.stmt -> (unit, string) result) ->
  Cin.stmt ->
  (Cin.stmt * step list, string) result

(** {2 Cost-ranked search} *)

(** A chosen plan: the scheduled statement, the steps that produced it,
    an advisory parallelization of the outermost loop (only proposed
    when statistics say the kernel is large enough to amortize domain
    startup, and only when provably race-free), and its estimated cost
    under the model. *)
type plan = {
  p_stmt : Cin.stmt;
  p_steps : step list;
  p_par : Index_var.t option;
  p_cost : float;
}

(** Search audit trail, surfaced by [tacocli --explain]. *)
type explain = {
  e_considered : int;  (** states examined by the best-first search *)
  e_lowerable : int;  (** lowerable schedules found (incl. the default) *)
  e_default_cost : float;  (** estimated cost of the breadth-first plan *)
  e_chosen_cost : float;
  e_search_ns : int64;  (** wall time spent searching *)
  e_cache_hit : bool;  (** plan served from the cache, search skipped *)
  e_top : (string * float) list;  (** up to 3 cheapest (schedule, cost) *)
}

(** [search ?stats ?key ~lowerable stmt] returns the cheapest lowerable
    plan under the cost model built from [stats] (per-tensor statistics
    keyed by tensor name; absent tensors use model defaults). The
    breadth-first plan is always in the candidate pool, and is kept
    unless a candidate beats it by a decisive margin — so the chosen
    plan is never estimated slower than {!run}'s.

    When [key] is given, the plan cache is consulted first and the
    chosen plan is stored under it: a cached plan whose statement still
    passes [lowerable] is returned without any search ([e_cache_hit]).
    Build keys from (expression structure, stats bucket); see
    {!Taco_stats.Stats.bucket}. *)
val search :
  ?stats:(string * Taco_stats.Stats.t) list ->
  ?key:string ->
  lowerable:(Cin.stmt -> (unit, string) result) ->
  Cin.stmt ->
  (plan * explain, string) result

(** Global plan-cache counters (hits/misses/evictions/size). *)
val cache_stats : unit -> Plan_cache.stats

(** Drop all cached plans and reset the counters (tests). *)
val cache_clear : unit -> unit
