open Var

type t = { stmt : Cin.stmt; par : Index_var.t option }

let of_index_notation ?scalar_temps stmt =
  Result.map (fun s -> { stmt = s; par = None }) (Concretize.run ?scalar_temps stmt)

let of_stmt stmt = { stmt; par = None }

let stmt t = t.stmt

let parallel t = t.par

(* Every transformation is bracketed by the concrete-index-notation
   verifier: a malformed input is reported before the transform touches
   it, and a transform that produces a malformed statement is an internal
   error (caught here rather than as a mysterious lowering failure). *)
let checked_transform_body name f t =
  match Cin.validate t.stmt with
  | Error e -> Error (Printf.sprintf "%s: input statement is malformed: %s" name e)
  | Ok () -> (
      match f t.stmt with
      | Error _ as e -> e
      | Ok stmt' -> (
          match Cin.validate stmt' with
          | Ok () -> Ok { t with stmt = stmt' }
          | Error e ->
              Error
                (Printf.sprintf "internal: %s produced a malformed statement: %s"
                   name e)))

(* Each scheduling transform (reorder, precompute) shows up as one
   "schedule.<name>" span. *)
let checked_transform name f t =
  Taco_support.Trace.with_span ~cat:"schedule" ("schedule." ^ name) (fun () ->
      checked_transform_body name f t)

let reorder v1 v2 t = checked_transform "reorder" (Reorder.reorder v1 v2) t

let rec written_accesses = function
  | Cin.Assignment { lhs; _ } -> [ lhs ]
  | Cin.Forall (_, s) -> written_accesses s
  | Cin.Where (c, p) -> written_accesses c @ written_accesses p
  | Cin.Sequence (a, b) -> written_accesses a @ written_accesses b

(* The paper's parallelize(i): run the iterations of the outermost loop
   in parallel chunks. Legal only when chunks cannot interfere: [v] must
   be the outermost forall, and every write to a non-workspace tensor
   under it must be indexed by [v] (so distinct iterations touch
   distinct output locations — sparse appends stay ordered because the
   executor concatenates chunk-local staging buffers in chunk order).
   A reduction into a shared output is reported here with the standard
   remedy: precompute into a workspace first, which gives every chunk a
   private accumulator. *)
let parallelize v t =
  Taco_support.Trace.with_span ~cat:"schedule" "schedule.parallelize" (fun () ->
      match Cin.validate t.stmt with
      | Error e ->
          Error (Printf.sprintf "parallelize: input statement is malformed: %s" e)
      | Ok () -> (
          match t.stmt with
          | Cin.Forall (w, body) when Index_var.equal w v -> (
              let shared =
                List.filter
                  (fun (a : Cin.access) ->
                    (not (Tensor_var.is_workspace a.tensor))
                    && not (List.exists (Index_var.equal v) a.indices))
                  (written_accesses body)
              in
              match shared with
              | [] -> Ok { t with par = Some v }
              | a :: _ ->
                  Error
                    (Printf.sprintf
                       "cannot parallelize %s: iterations reduce into %s, which is \
                        not indexed by %s, so parallel chunks would race on the \
                        same locations; precompute into a workspace first"
                       (Index_var.name v)
                       (Tensor_var.name a.Cin.tensor)
                       (Index_var.name v)))
          | Cin.Forall (w, _) ->
              Error
                (Printf.sprintf
                   "cannot parallelize %s: it is not the outermost loop (the \
                    outermost forall binds %s); only the outermost forall can be \
                    parallelized — reorder it outward first"
                   (Index_var.name v) (Index_var.name w))
          | Cin.Assignment _ | Cin.Where _ | Cin.Sequence _ ->
              Error
                (Printf.sprintf
                   "cannot parallelize %s: the statement's outermost construct is \
                    not a forall" (Index_var.name v))))

let rec binds v = function
  | Cin.Assignment _ -> false
  | Cin.Forall (w, s) -> Index_var.equal v w || binds v s
  | Cin.Where (c, p) -> binds v c || binds v p
  | Cin.Sequence (a, b) -> binds v a || binds v b

(* Rename [old] to [fresh] within a side, but only when that side rebinds
   [old] with its own forall (otherwise the variable is bound outside the
   split and must keep its name). *)
let rename_side old fresh side =
  if Index_var.equal old fresh then side
  else if binds old side then Cin.rename_var ~from:old ~into:fresh side
  else side

(* Locate the where (or, for result reuse, sequence) introduced for
   [workspace] and rename the triplets on each side. *)
let apply_renames stmt ~workspace vars =
  let writes_ws s =
    List.exists (Tensor_var.equal workspace) (Cin.tensors_written s)
  in
  let rename_split consumer producer =
    List.fold_left
      (fun (c, p) (old, cvar, pvar) ->
        (rename_side old cvar c, rename_side old pvar p))
      (consumer, producer) vars
  in
  let found = ref false in
  let rec go s =
    if !found then s
    else
      match s with
      | Cin.Assignment _ -> s
      | Cin.Forall (v, body) -> Cin.Forall (v, go body)
      | Cin.Where (c, p) when writes_ws p && not (writes_ws c) ->
          found := true;
          let c, p = rename_split c p in
          Cin.Where (c, p)
      | Cin.Where (c, p) -> Cin.Where (go c, go p)
      | Cin.Sequence (a, b) when writes_ws a && writes_ws b ->
          found := true;
          let a, b = rename_split a b in
          Cin.Sequence (a, b)
      | Cin.Sequence (a, b) -> Cin.Sequence (go a, go b)
  in
  go stmt

let precompute_simple ~expr ~over ~workspace t =
  checked_transform "precompute" (fun s -> Workspace.precompute s ~expr ~over ~workspace) t

let precompute ~expr ~vars ~workspace t =
  let over = List.map (fun (old, _, _) -> old) vars in
  checked_transform "precompute"
    (fun s ->
      match Workspace.precompute s ~expr ~over ~workspace with
      | Error _ as e -> e
      | Ok stmt -> Ok (apply_renames stmt ~workspace vars))
    t

let expr_of_index_notation e =
  let rec go = function
    | Index_notation.Literal v -> Ok (Cin.Literal v)
    | Index_notation.Access (tv, indices) -> Ok (Cin.Access (Cin.access tv indices))
    | Index_notation.Neg a -> Result.map (fun a -> Cin.Neg a) (go a)
    | Index_notation.Add (a, b) -> both (fun a b -> Cin.Add (a, b)) a b
    | Index_notation.Sub (a, b) -> both (fun a b -> Cin.Sub (a, b)) a b
    | Index_notation.Mul (a, b) -> both (fun a b -> Cin.Mul (a, b)) a b
    | Index_notation.Div (a, b) -> both (fun a b -> Cin.Div (a, b)) a b
    | Index_notation.Sum _ ->
        Error "expr_of_index_notation: reductions cannot be precomputed directly"
  and both mk a b =
    match go a with
    | Error e -> Error e
    | Ok a -> ( match go b with Error e -> Error e | Ok b -> Ok (mk a b))
  in
  go e

let pp fmt t = Cin.pp fmt t.stmt
