open Var

type step =
  | Reordered of Index_var.t * Index_var.t
  | Precomputed of Heuristics.suggestion * Tensor_var.t

let step_to_string = function
  | Reordered (a, b) ->
      Printf.sprintf "reorder(%s, %s)" (Index_var.name a) (Index_var.name b)
  | Precomputed (s, w) ->
      Printf.sprintf "precompute(%s, {%s}, %s)  [%s]"
        (Stdlib.Format.asprintf "%a" Cin.pp_expr s.Heuristics.expr)
        (String.concat "," (List.map Index_var.name s.Heuristics.over))
        (Tensor_var.name w)
        (Heuristics.reason_to_string s.Heuristics.reason)

let ws_counter = ref 0

let fresh_workspace over =
  incr ws_counter;
  Tensor_var.workspace
    (Printf.sprintf "ws%d" !ws_counter)
    ~order:(List.length over)
    ~format:(Taco_tensor.Format.dense (List.length over))

(* Candidate moves from a statement: workspace heuristics first (they
   remove scatters, which reorders cannot), then loop interchanges. *)
let candidates stmt =
  let from_heuristics =
    List.filter_map
      (fun (s : Heuristics.suggestion) ->
        let w = fresh_workspace s.Heuristics.over in
        match
          Workspace.precompute stmt ~expr:s.Heuristics.expr ~over:s.Heuristics.over
            ~workspace:w
        with
        | Ok stmt' -> Some (stmt', Precomputed (s, w))
        | Error _ -> None)
      (Heuristics.suggest stmt)
  in
  let vars = Cin.stmt_vars stmt in
  let from_reorders =
    List.concat_map
      (fun v1 ->
        List.filter_map
          (fun v2 ->
            if Index_var.compare v1 v2 >= 0 then None
            else
              match Reorder.reorder v1 v2 stmt with
              | Ok stmt' -> Some (stmt', Reordered (v1, v2))
              | Error _ -> None)
          vars)
      vars
  in
  from_heuristics @ from_reorders

let run ~lowerable stmt =
  Taco_support.Trace.with_span ~cat:"schedule" "autoschedule" @@ fun () ->
  match Cin.validate stmt with
  | Error e -> Error e
  | Ok () -> (
      (* Breadth-first search over schedules, bounded and deduplicated. *)
      let visited = Hashtbl.create 64 in
      let queue = Queue.create () in
      let budget = ref 500 in
      Queue.add (stmt, []) queue;
      Hashtbl.replace visited (Cin.to_string stmt) ();
      let first_error = ref None in
      let rec search () =
        if Queue.is_empty queue || !budget <= 0 then
          Error
            (Printf.sprintf "autoschedule: no lowerable schedule found%s"
               (match !first_error with
               | Some e -> " (first lowering error: " ^ e ^ ")"
               | None -> ""))
        else begin
          let s, steps = Queue.pop queue in
          decr budget;
          match lowerable s with
          | Ok () -> Ok (s, List.rev steps)
          | Error e ->
              if !first_error = None then first_error := Some e;
              if List.length steps < 6 then
                List.iter
                  (fun (s', step) ->
                    let key = Cin.to_string s' in
                    if not (Hashtbl.mem visited key) then begin
                      Hashtbl.replace visited key ();
                      Queue.add (s', step :: steps) queue
                    end)
                  (candidates s);
              search ()
        end
      in
      search ())
