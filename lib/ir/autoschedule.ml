open Var
module Metrics = Taco_support.Metrics
module Trace = Taco_support.Trace

type step =
  | Reordered of Index_var.t * Index_var.t
  | Precomputed of Heuristics.suggestion * Tensor_var.t
  | Parallelized of Index_var.t

let step_to_string = function
  | Reordered (a, b) ->
      Printf.sprintf "reorder(%s, %s)" (Index_var.name a) (Index_var.name b)
  | Precomputed (s, w) ->
      Printf.sprintf "precompute(%s, {%s}, %s)  [%s]"
        (Stdlib.Format.asprintf "%a" Cin.pp_expr s.Heuristics.expr)
        (String.concat "," (List.map Index_var.name s.Heuristics.over))
        (Tensor_var.name w)
        (Heuristics.reason_to_string s.Heuristics.reason)
  | Parallelized v -> Printf.sprintf "parallelize(%s)" (Index_var.name v)

(* Workspace names are derived from the statement and the suggestion, so
   two searches over the same statement — on any domain, in any order —
   produce identical names. A global counter here raced under
   concurrent service compiles and leaked nondeterministic names into
   structural cache keys. *)
let fresh_workspace stmt (s : Heuristics.suggestion) =
  let tag =
    Digest.to_hex
      (Digest.string
         (String.concat "|"
            [
              Cin.to_string stmt;
              Stdlib.Format.asprintf "%a" Cin.pp_expr s.Heuristics.expr;
              String.concat "," (List.map Index_var.name s.Heuristics.over);
            ]))
  in
  let over = s.Heuristics.over in
  Tensor_var.workspace
    (Printf.sprintf "ws_%s" (String.sub tag 0 8))
    ~order:(List.length over)
    ~format:(Taco_tensor.Format.dense (List.length over))

(* Candidate moves from a statement: workspace heuristics first (they
   remove scatters, which reorders cannot), then loop interchanges.
   Each candidate is a child statement plus the steps that reach it
   (outermost-applied first). *)
let candidates stmt =
  let from_heuristics =
    List.filter_map
      (fun (s : Heuristics.suggestion) ->
        let w = fresh_workspace stmt s in
        match
          Workspace.precompute stmt ~expr:s.Heuristics.expr ~over:s.Heuristics.over
            ~workspace:w
        with
        | Ok stmt' -> Some (stmt', [ Precomputed (s, w) ])
        | Error _ -> None)
      (Heuristics.suggest stmt)
  in
  let vars = Cin.stmt_vars stmt in
  let from_reorders =
    List.concat_map
      (fun v1 ->
        List.filter_map
          (fun v2 ->
            if Index_var.compare v1 v2 >= 0 then None
            else
              match Reorder.reorder v1 v2 stmt with
              | Ok stmt' -> Some (stmt', [ Reordered (v1, v2) ])
              | Error _ -> None)
          vars)
      vars
  in
  from_heuristics @ from_reorders

(* Composite moves: sink one loop variable to the innermost position of
   its nest by successive pairwise swaps. Pairwise interchange alone
   needs several search levels to move a variable far, and the
   workspace heuristics (notably Hoist_invariant) only fire once the
   invariant variable is innermost — sinking as a single candidate
   brings those states within a shallow search horizon. *)
let sink_candidates stmt =
  let vars, _ = Cin.peel_foralls stmt in
  List.filter_map
    (fun v ->
      let rec sink s steps =
        let order, _ = Cin.peel_foralls s in
        match List.exists (Index_var.equal v) order with
        | false -> None
        | true -> (
            let rec after = function
              | [] -> None
              | x :: tl -> if Index_var.equal x v then List.nth_opt tl 0 else after tl
            in
            match after order with
            | None -> if steps = [] then None else Some (s, List.rev steps)
            | Some next -> (
                match Reorder.reorder v next s with
                | Ok s' -> sink s' (Reordered (v, next) :: steps)
                | Error _ ->
                    if steps = [] then None else Some (s, List.rev steps)))
      in
      sink stmt [])
    vars

(* ------------------------------------------------------------------ *)
(* Legacy policy: first lowerable schedule, breadth-first               *)
(* ------------------------------------------------------------------ *)

let bfs_first ~lowerable stmt =
  (* Breadth-first search over schedules, bounded and deduplicated. *)
  let visited = Hashtbl.create 64 in
  let queue = Queue.create () in
  let budget = ref 500 in
  Queue.add (stmt, []) queue;
  Hashtbl.replace visited (Cin.to_string stmt) ();
  let first_error = ref None in
  let rec search () =
    if Queue.is_empty queue || !budget <= 0 then
      Error
        (Printf.sprintf "autoschedule: no lowerable schedule found%s"
           (match !first_error with
           | Some e -> " (first lowering error: " ^ e ^ ")"
           | None -> ""))
    else begin
      let s, steps = Queue.pop queue in
      decr budget;
      match lowerable s with
      | Ok () -> Ok (s, List.rev steps)
      | Error e ->
          if !first_error = None then first_error := Some e;
          if List.length steps < 6 then
            List.iter
              (fun (s', new_steps) ->
                let key = Cin.to_string s' in
                if not (Hashtbl.mem visited key) then begin
                  Hashtbl.replace visited key ();
                  Queue.add (s', List.rev_append new_steps steps) queue
                end)
              (candidates s);
          search ()
    end
  in
  search ()

let run ~lowerable stmt =
  Trace.with_span ~cat:"schedule" "autoschedule" @@ fun () ->
  match Cin.validate stmt with
  | Error e -> Error e
  | Ok () -> bfs_first ~lowerable stmt

(* ------------------------------------------------------------------ *)
(* Cost-ranked search                                                  *)
(* ------------------------------------------------------------------ *)

type plan = {
  p_stmt : Cin.stmt;
  p_steps : step list;
  p_par : Index_var.t option;
  p_cost : float;
}

type explain = {
  e_considered : int;
  e_lowerable : int;
  e_default_cost : float;
  e_chosen_cost : float;
  e_search_ns : int64;
  e_cache_hit : bool;
  e_top : (string * float) list;
}

let cache : plan Plan_cache.t = Plan_cache.create ~capacity:256 ()

let cache_stats () = Plan_cache.stats cache

let cache_clear () = Plan_cache.clear cache

let publish_cache_gauge () =
  if Metrics.enabled () then
    Metrics.set_gauge "taco_plan_cache_size"
      (float_of_int (Plan_cache.stats cache).Plan_cache.size)

(* Keep the cost-chosen plan only when it is decisively cheaper than
   the baseline. Estimates within the margin are noise — ties between
   pure reorders of dense loops, model error on unknown fills — and
   the baseline plan has the advantage of being the known-good
   behavior. *)
let margin = 0.8

(* Parallelization is advisory and only proposed for genuinely large
   plans: below this estimated operation count, domain spawn/join
   overheads dominate any win. *)
let parallel_threshold = 1e8

let search_budget = 300

let max_depth = 6

let search ?(stats = []) ?key ~lowerable stmt =
  Trace.with_span ~cat:"schedule" "autoschedule.search" @@ fun () ->
  match Cin.validate stmt with
  | Error e -> Error e
  | Ok () -> (
      let t0 = Trace.now_ns () in
      let cached =
        match key with
        | None -> None
        | Some k -> (
            match Plan_cache.find cache k with
            | Some plan when lowerable plan.p_stmt = Ok () ->
                if Metrics.enabled () then
                  Metrics.inc "taco_plan_cache_hits_total";
                Some plan
            | _ ->
                if Metrics.enabled () then
                  Metrics.inc "taco_plan_cache_misses_total";
                None)
      in
      match cached with
      | Some plan ->
          Ok
            ( plan,
              {
                e_considered = 0;
                e_lowerable = 0;
                e_default_cost = plan.p_cost;
                e_chosen_cost = plan.p_cost;
                e_search_ns = Int64.sub (Trace.now_ns ()) t0;
                e_cache_hit = true;
                e_top = [];
              } )
      | None -> (
          match bfs_first ~lowerable stmt with
          | Error e -> Error e
          | Ok (default_stmt, default_steps) ->
              let env = Cost.env stats in
              let cost_memo = Hashtbl.create 64 in
              let cost_of s =
                let k = Cin.to_string s in
                match Hashtbl.find_opt cost_memo k with
                | Some c -> c
                | None ->
                    let c = Cost.estimate env s in
                    Hashtbl.replace cost_memo k c;
                    c
              in
              let default_cost = cost_of default_stmt in
              (* Best-first over schedule space, cheapest estimate
                 expanded next. Lowerable states are collected rather
                 than returned eagerly: the cheapest plan may sit behind
                 a more expensive intermediate. *)
              let visited = Hashtbl.create 64 in
              let frontier = ref [ (cost_of stmt, stmt, []) ] in
              let pool = ref [] in
              let considered = ref 0 in
              Hashtbl.replace visited (Cin.to_string stmt) ();
              let push (s, new_steps) steps =
                let k = Cin.to_string s in
                if not (Hashtbl.mem visited k) then begin
                  Hashtbl.replace visited k ();
                  let entry = (cost_of s, s, List.rev_append new_steps steps) in
                  let rec insert = function
                    | [] -> [ entry ]
                    | ((c', _, _) as hd) :: tl ->
                        let (c, _, _) = entry in
                        if c < c' then entry :: hd :: tl else hd :: insert tl
                  in
                  frontier := insert !frontier
                end
              in
              let budget = ref search_budget in
              while !frontier <> [] && !budget > 0 do
                match !frontier with
                | [] -> ()
                | (c, s, steps) :: rest ->
                    frontier := rest;
                    decr budget;
                    incr considered;
                    (* Lowering is the expensive probe, so only states
                       that could actually displace the baseline (cost
                       under the margin) are tested; the rest are just
                       expanded. *)
                    if c < margin *. default_cost && lowerable s = Ok () then
                      pool := (c, s, steps) :: !pool;
                    if List.length steps < max_depth then
                      List.iter
                        (fun child -> push child steps)
                        (candidates s @ sink_candidates s)
              done;
              let pool =
                (default_cost, default_stmt, List.rev default_steps) :: List.rev !pool
              in
              let best =
                List.fold_left
                  (fun ((bc, _, _) as b) ((c, _, _) as x) ->
                    if c < bc then x else b)
                  (List.hd pool) (List.tl pool)
              in
              let chosen_cost, chosen_stmt, chosen_rev_steps =
                let (bc, _, _) = best in
                if bc < margin *. default_cost then best
                else (default_cost, default_stmt, List.rev default_steps)
              in
              let chosen_steps = List.rev chosen_rev_steps in
              (* Advisory parallelization of the outermost loop, only
                 for plans big enough to amortize domain startup and
                 only when it is provably race-free. *)
              let par, chosen_steps =
                if stats <> [] && chosen_cost >= parallel_threshold then
                  match chosen_stmt with
                  | Cin.Forall (v, _) -> (
                      match Schedule.parallelize v (Schedule.of_stmt chosen_stmt) with
                      | Ok _ -> (Some v, chosen_steps @ [ Parallelized v ])
                      | Error _ -> (None, chosen_steps))
                  | _ -> (None, chosen_steps)
                else (None, chosen_steps)
              in
              let plan =
                {
                  p_stmt = chosen_stmt;
                  p_steps = chosen_steps;
                  p_par = par;
                  p_cost = chosen_cost;
                }
              in
              (match key with
              | Some k -> Plan_cache.add cache k plan
              | None -> ());
              publish_cache_gauge ();
              let top =
                List.sort
                  (fun (a, _, _) (b, _, _) -> Float.compare a b)
                  pool
                |> List.filteri (fun i _ -> i < 3)
                |> List.map (fun (c, s, _) -> (Cin.to_string s, c))
              in
              Ok
                ( plan,
                  {
                    e_considered = !considered;
                    e_lowerable = List.length pool;
                    e_default_cost = default_cost;
                    e_chosen_cost = chosen_cost;
                    e_search_ns = Int64.sub (Trace.now_ns ()) t0;
                    e_cache_hit = false;
                    e_top = top;
                  } )))
