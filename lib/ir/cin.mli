(** Concrete index notation (paper §IV): index notation extended with
    constructs that fix the order of loops and the placement and identity
    of temporaries, while staying above the level of sparse imperative
    code.

    Grammar (paper Fig. 3):
    {v
    statement := assignment | forall | where | sequence
    assignment := access = expr | access += expr
    forall := ∀index statement
    where := statement where statement
    sequence := statement ; statement
    v} *)

open Var

type access = { tensor : Tensor_var.t; indices : Index_var.t list }

type expr =
  | Literal of float
  | Access of access
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

type op = Assign | Accumulate

type stmt =
  | Assignment of { lhs : access; op : op; rhs : expr }
  | Forall of Index_var.t * stmt
  | Where of stmt * stmt  (** [Where (consumer, producer)] *)
  | Sequence of stmt * stmt

(** {2 Constructors} *)

val access : Tensor_var.t -> Index_var.t list -> access

val assign : access -> expr -> stmt

val accumulate : access -> expr -> stmt

val forall : Index_var.t -> stmt -> stmt

(** [foralls [i; j; k] s] is [∀i ∀j ∀k s]. *)
val foralls : Index_var.t list -> stmt -> stmt

val where : consumer:stmt -> producer:stmt -> stmt

val sequence : stmt -> stmt -> stmt

(** {2 Analysis} *)

val equal_expr : expr -> expr -> bool

val equal_stmt : stmt -> stmt -> bool

(** Index variables occurring in an expression, first-use order. *)
val expr_vars : expr -> Index_var.t list

(** Index variables used anywhere in a statement (bound or free). *)
val stmt_vars : stmt -> Index_var.t list

(** [uses_var s v]: does [v] occur in any access or forall binder of [s]? *)
val uses_var : stmt -> Index_var.t -> bool

val tensors_read : stmt -> Tensor_var.t list

val tensors_written : stmt -> Tensor_var.t list

val tensors : stmt -> Tensor_var.t list

val contains_sequence : stmt -> bool

(** [contains_expr haystack needle] — structural subexpression test. *)
val contains_expr : expr -> expr -> bool

(** [subst_expr ~from ~into e] replaces every structural occurrence. *)
val subst_expr : from:expr -> into:expr -> expr -> expr

(** Substitute in every assignment right-hand side of a statement. *)
val subst_stmt : from:expr -> into:expr -> stmt -> stmt

(** [rename_var ~from ~into s] alpha-renames an index variable (binders and
    uses). *)
val rename_var : from:Index_var.t -> into:Index_var.t -> stmt -> stmt

(** [zero_tensor tv e] replaces accesses to [tv] by literal 0 and
    simplifies; used when a merge-lattice point has exhausted [tv]. *)
val zero_tensor : Tensor_var.t -> expr -> expr

(** Algebraic simplification: [0*x → 0], [0+x → x], [x/1 → x], … *)
val simplify : expr -> expr

(** Semiring-aware identity/annihilator elimination: [Add] is read as
    the semiring add (identity [zero]), [Mul] as the semiring mul
    (identity [one]; [zero] annihilates only when [annihilates]).
    Performs no constant folding — under min-plus, [3 + 4] is 3. *)
val simplify_sr : zero:float -> one:float -> annihilates:bool -> expr -> expr

(** {!zero_tensor} generalized to a semiring: substitutes
    [Literal zero] for accesses to [tv], then {!simplify_sr}. *)
val zero_tensor_sr :
  zero:float -> one:float -> annihilates:bool -> Tensor_var.t -> expr -> expr

(** Peel the outer forall nest: [∀i∀j S ↦ ([i;j], S)]. *)
val peel_foralls : stmt -> Index_var.t list * stmt

(** Well-formedness: access arities, all access indices bound by enclosing
    foralls, no duplicate binders on a path, where-producers write at least
    one tensor that the consumer reads. *)
val validate : stmt -> (unit, string) result

(** {2 Printing} *)

val pp_expr : Format.formatter -> expr -> unit

(** Mathematical form, e.g. [∀i (∀j A(i,j) = w(j)) where (∀k ∀j w(j) += B(i,k) * C(k,j))]. *)
val pp : Format.formatter -> stmt -> unit

val to_string : stmt -> string

(** Loop-nest pseudocode form (the gray right-hand column of the paper's
    examples). *)
val pp_pseudocode : Format.formatter -> stmt -> unit
