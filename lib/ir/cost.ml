(* Asymptotic cost model over concrete index notation, driven by
   per-tensor sparsity statistics (Taco_stats.Stats). See cost.mli. *)

open Var
module S = Taco_stats.Stats
module F = Taco_tensor.Format
module L = Taco_tensor.Level

type env = {
  stats : (string * S.t) list;
  default_dim : int;
  default_density : float;
}

let env ?(default_dim = 1000) ?(default_density = 0.05) stats =
  { stats; default_dim; default_density }

let no_stats = env []

let lookup e tv = List.assoc_opt (Tensor_var.name tv) e.stats

(* ------------------------------------------------------------------ *)
(* Access collection and variable ranges                               *)
(* ------------------------------------------------------------------ *)

let rec expr_accesses = function
  | Cin.Literal _ -> []
  | Cin.Access a -> [ a ]
  | Cin.Neg e -> expr_accesses e
  | Cin.Add (a, b) | Cin.Sub (a, b) | Cin.Mul (a, b) | Cin.Div (a, b) ->
      expr_accesses a @ expr_accesses b

let rec stmt_accesses = function
  | Cin.Assignment { lhs; rhs; _ } -> lhs :: expr_accesses rhs
  | Cin.Forall (_, s) -> stmt_accesses s
  | Cin.Where (c, p) -> stmt_accesses c @ stmt_accesses p
  | Cin.Sequence (a, b) -> stmt_accesses a @ stmt_accesses b

(* Variable ranges, inferred from the accesses whose tensors carry
   stats: index var [v] at logical mode [m] of tensor [t] ranges over
   [dims t].(m). Workspaces are dense over vars that also appear in
   stats-carrying accesses, so their extents come out of the same
   table. Unconstrained vars fall back to [default_dim]. *)
let ranges e stmt =
  let tbl : (Index_var.t, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a : Cin.access) ->
      match lookup e a.Cin.tensor with
      | None -> ()
      | Some st ->
          List.iteri
            (fun m v ->
              if m < Array.length st.S.dims then
                let d = st.S.dims.(m) in
                let prev = Option.value ~default:0 (Hashtbl.find_opt tbl v) in
                Hashtbl.replace tbl v (max prev d))
            a.Cin.indices)
    (stmt_accesses stmt);
  tbl

let var_range e tbl v =
  match Hashtbl.find_opt tbl v with
  | Some d -> max 1 d
  | None -> e.default_dim

(* ------------------------------------------------------------------ *)
(* Trip counts                                                         *)
(* ------------------------------------------------------------------ *)

let index_position v indices =
  let rec go i = function
    | [] -> None
    | x :: tl -> if Index_var.equal x v then Some i else go (i + 1) tl
  in
  go 0 indices

(* How many iterations loop [v] performs, given the accesses in its
   body and the set of already-bound vars. Each access constrains the
   trip count; the tightest (smallest) constraint wins, because
   lowering co-iterates intersections over the sparsest operand.

   - dense level: the full dimension;
   - compressed level whose outer storage levels are all bound: the
     average segment fill (children per bound parent position);
   - compressed level with an unbound parent: the kernel cannot use
     the hierarchy, so at best it scans all stored positions of the
     level (capped by the dimension);
   - tensors without stats use format structure with defaults. *)
let trips e tbl bound accesses v =
  let range_v = var_range e tbl v in
  let constraints =
    List.filter_map
      (fun (a : Cin.access) ->
        match index_position v a.Cin.indices with
        | None -> None
        | Some m ->
            let fmt = Tensor_var.format a.Cin.tensor in
            if m >= F.order fmt then None
            else
              let l = F.level_of_mode fmt m in
              let parents_bound =
                let ok = ref true in
                for l' = 0 to l - 1 do
                  let m' = F.mode_of_level fmt l' in
                  match List.nth_opt a.Cin.indices m' with
                  | Some v' when List.exists (Index_var.equal v') bound -> ()
                  | _ -> ok := false
                done;
                !ok
              in
              match (F.level fmt l, lookup e a.Cin.tensor) with
              | L.Dense, Some st when m < Array.length st.S.dims ->
                  Some (float_of_int st.S.dims.(m))
              | L.Dense, _ -> Some (float_of_int range_v)
              | L.Compressed, Some st ->
                  if parents_bound then Some (Float.max 1. st.S.fill.(l))
                  else Some (float_of_int (min st.S.n_positions.(l) range_v))
              | L.Compressed, None ->
                  if parents_bound then
                    Some
                      (Float.max 1.
                         (e.default_density *. float_of_int range_v))
                  else Some (float_of_int range_v))
      accesses
  in
  match constraints with
  | [] -> float_of_int range_v
  | cs -> Float.max 1. (List.fold_left Float.min Float.infinity cs)

(* ------------------------------------------------------------------ *)
(* Statement cost                                                      *)
(* ------------------------------------------------------------------ *)

let rec n_ops = function
  | Cin.Literal _ | Cin.Access _ -> 0
  | Cin.Neg e -> 1 + n_ops e
  | Cin.Add (a, b) | Cin.Sub (a, b) | Cin.Mul (a, b) | Cin.Div (a, b) ->
      1 + n_ops a + n_ops b

let has_compressed fmt = List.exists (L.equal L.Compressed) (F.levels fmt)

(* Relative penalty for accumulating out of order into compressed
   storage (the scatter the workspace transformation exists to avoid):
   each such update is an insertion, not a streaming append. *)
let scatter_penalty = 16.

(* Cost of zeroing + materializing the workspaces a producer writes:
   proportional to their dense extents, paid per surrounding iteration. *)
let workspace_extent e tbl producer =
  let ws =
    List.filter Tensor_var.is_workspace (Cin.tensors_written producer)
  in
  List.fold_left
    (fun acc w ->
      let indices =
        List.find_map
          (fun (a : Cin.access) ->
            if Tensor_var.equal a.Cin.tensor w then Some a.Cin.indices else None)
          (stmt_accesses producer)
      in
      match indices with
      | None -> acc
      | Some idx ->
          acc
          +. List.fold_left
               (fun p v -> p *. float_of_int (var_range e tbl v))
               1. idx)
    0. ws

let estimate e stmt =
  let tbl = ranges e stmt in
  let rec go mult bound = function
    | Cin.Forall (v, s) ->
        let t = trips e tbl bound (stmt_accesses s) v in
        let mult' = mult *. t in
        mult' +. go mult' (v :: bound) s
    | Cin.Assignment { lhs; op; rhs } ->
        let flops = float_of_int (max 1 (n_ops rhs)) in
        let scatter =
          if
            op = Cin.Accumulate
            && has_compressed (Tensor_var.format lhs.Cin.tensor)
            && List.exists
                 (fun v ->
                   not (List.exists (Index_var.equal v) lhs.Cin.indices))
                 bound
          then scatter_penalty
          else 0.
        in
        mult *. (flops +. 1. +. scatter)
    | Cin.Where (c, p) ->
        go mult bound p +. go mult bound c
        +. (mult *. workspace_extent e tbl p)
    | Cin.Sequence (a, b) -> go mult bound a +. go mult bound b
  in
  go 1. [] stmt

(* ------------------------------------------------------------------ *)
(* Cardinality estimation                                              *)
(* ------------------------------------------------------------------ *)

(* Bernoulli independence: every component of a tensor is nonzero with
   the tensor's density, independently. Products intersect, sums
   unite, and a reduction over [n] terms is nonzero when any term is:
   1 - (1-p)^n, computed in log space to survive tiny p and large n. *)
let rec expr_density e = function
  | Cin.Literal v -> if v = 0. then 0. else 1.
  | Cin.Access a ->
      if Tensor_var.is_workspace a.Cin.tensor then 1.
      else (
        match lookup e a.Cin.tensor with
        | Some st -> S.density st
        | None -> e.default_density)
  | Cin.Neg x -> expr_density e x
  | Cin.Mul (a, b) -> expr_density e a *. expr_density e b
  | Cin.Div (a, _) -> expr_density e a
  | Cin.Add (a, b) | Cin.Sub (a, b) ->
      let da = expr_density e a and db = expr_density e b in
      da +. db -. (da *. db)

let union_over_terms ~terms p =
  if p >= 1. then 1.
  else if p <= 0. then 0.
  else -.Float.expm1 (terms *. Float.log1p (-.p))

(* The statement's principal assignment: the innermost write to a
   non-workspace tensor (the consumer side of any Where). *)
let rec principal = function
  | Cin.Assignment { lhs; op = _; rhs } ->
      if Tensor_var.is_workspace lhs.Cin.tensor then None else Some (lhs, rhs)
  | Cin.Forall (_, s) -> principal s
  | Cin.Where (c, _) -> principal c
  | Cin.Sequence (a, b) -> (
      match principal b with Some x -> Some x | None -> principal a)

let estimate_nnz e stmt =
  match principal stmt with
  | None -> None
  | Some (lhs, rhs) ->
      let tbl = ranges e stmt in
      let out = lhs.Cin.indices in
      let reduction =
        List.filter
          (fun v -> not (List.exists (Index_var.equal v) out))
          (Cin.expr_vars rhs)
      in
      let terms =
        List.fold_left
          (fun p v -> p *. float_of_int (var_range e tbl v))
          1. reduction
      in
      let p = union_over_terms ~terms (expr_density e rhs) in
      let positions =
        List.fold_left
          (fun p v -> p *. float_of_int (var_range e tbl v))
          1. out
      in
      Some (positions *. p)
