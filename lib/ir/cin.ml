open Var

type access = { tensor : Tensor_var.t; indices : Index_var.t list }

type expr =
  | Literal of float
  | Access of access
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

type op = Assign | Accumulate

type stmt =
  | Assignment of { lhs : access; op : op; rhs : expr }
  | Forall of Index_var.t * stmt
  | Where of stmt * stmt
  | Sequence of stmt * stmt

let access tensor indices =
  if List.length indices <> Tensor_var.order tensor then
    invalid_arg "Cin.access: arity mismatch";
  { tensor; indices }

let assign lhs rhs = Assignment { lhs; op = Assign; rhs }

let accumulate lhs rhs = Assignment { lhs; op = Accumulate; rhs }

let forall v s = Forall (v, s)

let foralls vars s = List.fold_right forall vars s

let where ~consumer ~producer = Where (consumer, producer)

let sequence a b = Sequence (a, b)

let equal_access a b =
  Tensor_var.equal a.tensor b.tensor
  && List.length a.indices = List.length b.indices
  && List.for_all2 Index_var.equal a.indices b.indices

let rec equal_expr a b =
  match (a, b) with
  | Literal x, Literal y -> x = y
  | Access x, Access y -> equal_access x y
  | Neg x, Neg y -> equal_expr x y
  | Add (x1, x2), Add (y1, y2)
  | Sub (x1, x2), Sub (y1, y2)
  | Mul (x1, x2), Mul (y1, y2)
  | Div (x1, x2), Div (y1, y2) -> equal_expr x1 y1 && equal_expr x2 y2
  | (Literal _ | Access _ | Neg _ | Add _ | Sub _ | Mul _ | Div _), _ -> false

let rec equal_stmt a b =
  match (a, b) with
  | Assignment x, Assignment y ->
      equal_access x.lhs y.lhs && x.op = y.op && equal_expr x.rhs y.rhs
  | Forall (v, s), Forall (w, t) -> Index_var.equal v w && equal_stmt s t
  | Where (c1, p1), Where (c2, p2) -> equal_stmt c1 c2 && equal_stmt p1 p2
  | Sequence (s1, s2), Sequence (t1, t2) -> equal_stmt s1 t1 && equal_stmt s2 t2
  | (Assignment _ | Forall _ | Where _ | Sequence _), _ -> false

let dedup = Taco_support.Util.dedup_stable

let rec expr_vars_raw = function
  | Literal _ -> []
  | Access a -> a.indices
  | Neg e -> expr_vars_raw e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      expr_vars_raw a @ expr_vars_raw b

let expr_vars e = dedup (expr_vars_raw e)

let rec stmt_vars_raw = function
  | Assignment { lhs; rhs; _ } -> lhs.indices @ expr_vars_raw rhs
  | Forall (v, s) -> v :: stmt_vars_raw s
  | Where (c, p) -> stmt_vars_raw c @ stmt_vars_raw p
  | Sequence (a, b) -> stmt_vars_raw a @ stmt_vars_raw b

let stmt_vars s = dedup (stmt_vars_raw s)

let uses_var s v = List.exists (Index_var.equal v) (stmt_vars_raw s)

let rec expr_tensors = function
  | Literal _ -> []
  | Access a -> [ a.tensor ]
  | Neg e -> expr_tensors e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      expr_tensors a @ expr_tensors b

let rec reads = function
  | Assignment { rhs; _ } -> expr_tensors rhs
  | Forall (_, s) -> reads s
  | Where (c, p) -> reads c @ reads p
  | Sequence (a, b) -> reads a @ reads b

let rec writes = function
  | Assignment { lhs; _ } -> [ lhs.tensor ]
  | Forall (_, s) -> writes s
  | Where (c, p) -> writes c @ writes p
  | Sequence (a, b) -> writes a @ writes b

let tensors_read s = dedup (reads s)

let tensors_written s = dedup (writes s)

let tensors s = dedup (writes s @ reads s)

let rec contains_sequence = function
  | Assignment _ -> false
  | Forall (_, s) -> contains_sequence s
  | Where (c, p) -> contains_sequence c || contains_sequence p
  | Sequence _ -> true

let rec contains_expr haystack needle =
  equal_expr haystack needle
  ||
  match haystack with
  | Literal _ | Access _ -> false
  | Neg e -> contains_expr e needle
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      contains_expr a needle || contains_expr b needle

let rec subst_expr ~from ~into e =
  if equal_expr e from then into
  else
    match e with
    | Literal _ | Access _ -> e
    | Neg a -> Neg (subst_expr ~from ~into a)
    | Add (a, b) -> Add (subst_expr ~from ~into a, subst_expr ~from ~into b)
    | Sub (a, b) -> Sub (subst_expr ~from ~into a, subst_expr ~from ~into b)
    | Mul (a, b) -> Mul (subst_expr ~from ~into a, subst_expr ~from ~into b)
    | Div (a, b) -> Div (subst_expr ~from ~into a, subst_expr ~from ~into b)

let rec subst_stmt ~from ~into = function
  | Assignment { lhs; op; rhs } ->
      Assignment { lhs; op; rhs = subst_expr ~from ~into rhs }
  | Forall (v, s) -> Forall (v, subst_stmt ~from ~into s)
  | Where (c, p) -> Where (subst_stmt ~from ~into c, subst_stmt ~from ~into p)
  | Sequence (a, b) -> Sequence (subst_stmt ~from ~into a, subst_stmt ~from ~into b)

let rename_in_access ~from ~into a =
  {
    a with
    indices =
      List.map (fun v -> if Index_var.equal v from then into else v) a.indices;
  }

let rec rename_in_expr ~from ~into = function
  | Literal v -> Literal v
  | Access a -> Access (rename_in_access ~from ~into a)
  | Neg e -> Neg (rename_in_expr ~from ~into e)
  | Add (a, b) -> Add (rename_in_expr ~from ~into a, rename_in_expr ~from ~into b)
  | Sub (a, b) -> Sub (rename_in_expr ~from ~into a, rename_in_expr ~from ~into b)
  | Mul (a, b) -> Mul (rename_in_expr ~from ~into a, rename_in_expr ~from ~into b)
  | Div (a, b) -> Div (rename_in_expr ~from ~into a, rename_in_expr ~from ~into b)

let rec rename_var ~from ~into = function
  | Assignment { lhs; op; rhs } ->
      Assignment
        {
          lhs = rename_in_access ~from ~into lhs;
          op;
          rhs = rename_in_expr ~from ~into rhs;
        }
  | Forall (v, s) ->
      Forall
        ( (if Index_var.equal v from then into else v),
          rename_var ~from ~into s )
  | Where (c, p) -> Where (rename_var ~from ~into c, rename_var ~from ~into p)
  | Sequence (a, b) ->
      Sequence (rename_var ~from ~into a, rename_var ~from ~into b)

let is_zero = function Literal 0. -> true | Literal _ | Access _ | Neg _ | Add _ | Sub _ | Mul _ | Div _ -> false

let is_one = function Literal 1. -> true | Literal _ | Access _ | Neg _ | Add _ | Sub _ | Mul _ | Div _ -> false

let rec simplify e =
  match e with
  | Literal _ | Access _ -> e
  | Neg a -> (
      match simplify a with
      | Literal v -> Literal (-.v)
      | a' -> Neg a')
  | Add (a, b) -> (
      match (simplify a, simplify b) with
      | a', b' when is_zero a' -> b'
      | a', b' when is_zero b' -> a'
      | Literal x, Literal y -> Literal (x +. y)
      | a', b' -> Add (a', b'))
  | Sub (a, b) -> (
      match (simplify a, simplify b) with
      | a', b' when is_zero b' -> a'
      | a', b' when is_zero a' -> simplify (Neg b')
      | Literal x, Literal y -> Literal (x -. y)
      | a', b' -> Sub (a', b'))
  | Mul (a, b) -> (
      match (simplify a, simplify b) with
      | a', _ when is_zero a' -> Literal 0.
      | _, b' when is_zero b' -> Literal 0.
      | a', b' when is_one a' -> b'
      | a', b' when is_one b' -> a'
      | Literal x, Literal y -> Literal (x *. y)
      | a', b' -> Mul (a', b'))
  | Div (a, b) -> (
      match (simplify a, simplify b) with
      | a', _ when is_zero a' -> Literal 0.
      | a', b' when is_one b' -> a'
      | Literal x, Literal y when y <> 0. -> Literal (x /. y)
      | a', b' -> Div (a', b'))

let is_lit v = function
  | Literal x -> x = v
  | Access _ | Neg _ | Add _ | Sub _ | Mul _ | Div _ -> false

(* Identity/annihilator elimination under a semiring reading of the
   tree: [Add] is the semiring add (identity [zero]) and [Mul] the
   semiring mul (identity [one]; [zero] annihilates only when the
   semiring says so). No constant folding — [Literal 3. + Literal 4.]
   is min-plus 3, not 7, so folding with float (+) would lie. *)
let rec simplify_sr ~zero ~one ~annihilates e =
  let s = simplify_sr ~zero ~one ~annihilates in
  match e with
  | Literal _ | Access _ -> e
  | Neg a -> Neg (s a)
  | Add (a, b) -> (
      match (s a, s b) with
      | a', b' when is_lit zero a' -> b'
      | a', b' when is_lit zero b' -> a'
      | a', b' -> Add (a', b'))
  | Sub (a, b) -> Sub (s a, s b)
  | Mul (a, b) -> (
      match (s a, s b) with
      | a', _ when annihilates && is_lit zero a' -> Literal zero
      | _, b' when annihilates && is_lit zero b' -> Literal zero
      | a', b' when is_lit one a' -> b'
      | a', b' when is_lit one b' -> a'
      | a', b' -> Mul (a', b'))
  | Div (a, b) -> Div (s a, s b)

let rec zero_tensor_raw ~zero tv = function
  | Literal v -> Literal v
  | Access a -> if Tensor_var.equal a.tensor tv then Literal zero else Access a
  | Neg e -> Neg (zero_tensor_raw ~zero tv e)
  | Add (a, b) -> Add (zero_tensor_raw ~zero tv a, zero_tensor_raw ~zero tv b)
  | Sub (a, b) -> Sub (zero_tensor_raw ~zero tv a, zero_tensor_raw ~zero tv b)
  | Mul (a, b) -> Mul (zero_tensor_raw ~zero tv a, zero_tensor_raw ~zero tv b)
  | Div (a, b) -> Div (zero_tensor_raw ~zero tv a, zero_tensor_raw ~zero tv b)

let zero_tensor tv e = simplify (zero_tensor_raw ~zero:0. tv e)

let zero_tensor_sr ~zero ~one ~annihilates tv e =
  simplify_sr ~zero ~one ~annihilates (zero_tensor_raw ~zero tv e)

let rec peel_foralls = function
  | Forall (v, s) ->
      let vars, body = peel_foralls s in
      (v :: vars, body)
  | (Assignment _ | Where _ | Sequence _) as s -> ([], s)

let validate stmt =
  let ( let* ) r f = Result.bind r f in
  let check_access bound a =
    if List.length a.indices <> Tensor_var.order a.tensor then
      Error
        (Printf.sprintf "access to %s has %d indices but order %d"
           (Tensor_var.name a.tensor) (List.length a.indices)
           (Tensor_var.order a.tensor))
    else
      match
        List.find_opt
          (fun v -> not (List.exists (Index_var.equal v) bound))
          a.indices
      with
      | Some v ->
          Error
            (Printf.sprintf "index variable %s is not bound by a forall"
               (Index_var.name v))
      | None -> Ok ()
  in
  let rec check_expr bound = function
    | Literal _ -> Ok ()
    | Access a -> check_access bound a
    | Neg e -> check_expr bound e
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
        let* () = check_expr bound a in
        check_expr bound b
  in
  let rec check bound = function
    | Assignment { lhs; rhs; _ } ->
        let* () = check_access bound lhs in
        check_expr bound rhs
    | Forall (v, s) ->
        if List.exists (Index_var.equal v) bound then
          Error (Printf.sprintf "duplicate forall binder %s" (Index_var.name v))
        else check (v :: bound) s
    | Where (c, p) ->
        let* () = check bound p in
        let* () = check bound c in
        let written = tensors_written p in
        let read = tensors_read c in
        if List.exists (fun t -> List.exists (Tensor_var.equal t) read) written
        then Ok ()
        else Error "where-producer writes no tensor that the consumer reads"
    | Sequence (a, b) ->
        let* () = check bound a in
        check bound b
  in
  check [] stmt

let prec_expr = function
  | Literal _ | Access _ -> 3
  | Neg _ -> 2
  | Mul _ | Div _ -> 1
  | Add _ | Sub _ -> 0

let rec pp_expr fmt e =
  let child fmt c =
    if prec_expr c < prec_expr e then Format.fprintf fmt "(%a)" pp_expr c
    else pp_expr fmt c
  in
  match e with
  | Literal v -> Format.fprintf fmt "%g" v
  | Access { tensor; indices = [] } -> Tensor_var.pp fmt tensor
  | Access { tensor; indices } ->
      Format.fprintf fmt "%a(%s)" Tensor_var.pp tensor
        (String.concat "," (List.map Index_var.name indices))
  | Neg a -> Format.fprintf fmt "-%a" child a
  | Add (a, b) -> Format.fprintf fmt "%a + %a" child a child b
  | Sub (a, b) -> Format.fprintf fmt "%a - %a" child a child b
  | Mul (a, b) -> Format.fprintf fmt "%a * %a" child a child b
  | Div (a, b) -> Format.fprintf fmt "%a / %a" child a child b

let rec pp fmt = function
  | Assignment { lhs; op; rhs } ->
      let op = match op with Assign -> "=" | Accumulate -> "+=" in
      Format.fprintf fmt "%a %s %a" pp_expr (Access lhs) op pp_expr rhs
  | Forall (v, s) -> (
      (* Merge consecutive foralls: ∀i,k,j. *)
      let vars, body = peel_foralls (Forall (v, s)) in
      match body with
      | Assignment _ ->
          Format.fprintf fmt "@[<hov 2>∀%s %a@]"
            (String.concat "," (List.map Index_var.name vars))
            pp body
      | Where _ | Sequence _ | Forall _ ->
          Format.fprintf fmt "@[<hov 2>∀%s (%a)@]"
            (String.concat "," (List.map Index_var.name vars))
            pp body)
  | Where (c, p) ->
      Format.fprintf fmt "@[<hov 2>(%a)@ where@ (%a)@]" pp c pp p
  | Sequence (a, b) -> Format.fprintf fmt "@[<hov 2>%a ;@ %a@]" pp a pp b

let to_string s =
  let buf = Buffer.create 128 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_set_margin fmt max_int;
  pp fmt s;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let pp_pseudocode fmt stmt =
  let indent n = String.make (2 * n) ' ' in
  let rec go depth = function
    | Assignment { lhs; op; rhs } ->
        let op = match op with Assign -> "=" | Accumulate -> "+=" in
        Format.fprintf fmt "%s%s %s %s@." (indent depth)
          (Format.asprintf "%a" pp_expr (Access lhs))
          op
          (Format.asprintf "%a" pp_expr rhs)
    | Forall (v, s) ->
        Format.fprintf fmt "%sfor %s ∈ %s@." (indent depth) (Index_var.name v)
          (String.uppercase_ascii (Index_var.name v));
        go (depth + 1) s
    | Where (c, p) ->
        let ws = tensors_written p in
        List.iter
          (fun w ->
            if Tensor_var.is_workspace w then
              Format.fprintf fmt "%s%s = 0@." (indent depth) (Tensor_var.name w))
          ws;
        go depth p;
        go depth c
    | Sequence (a, b) ->
        go depth a;
        go depth b
  in
  go 0 stmt
