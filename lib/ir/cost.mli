(** Statistics-driven cost model over concrete index notation.

    Scores a scheduled statement with an asymptotic operation count:
    nested loop trip counts are estimated from per-tensor sparsity
    statistics ({!Taco_stats.Stats}) — dense levels iterate the full
    dimension, compressed levels iterate the average segment fill once
    their outer levels are bound — and accumulation into compressed
    storage out of insertion order pays a scatter penalty. The model
    only needs to *rank* candidate schedules; absolute values are
    operation counts, not seconds.

    Cardinality estimation uses the Bernoulli independence model
    (products intersect densities, additions unite them, reductions
    union over the reduced extent), the standard baseline the Galley
    line of work starts from. *)

type env

(** [env stats] builds an estimation environment from named tensor
    statistics (names match the {!Var.Tensor_var} names in the
    statement). Tensors absent from [stats] fall back to [default_dim]
    (dimension extents, default 1000) and [default_density] (default
    0.05). *)
val env :
  ?default_dim:int ->
  ?default_density:float ->
  (string * Taco_stats.Stats.t) list ->
  env

(** The empty environment: every tensor estimated from defaults. Still
    useful — format structure (dense vs compressed levels) alone
    separates badly-ordered plans from well-ordered ones. *)
val no_stats : env

(** Estimated operation count of executing the statement. *)
val estimate : env -> Cin.stmt -> float

(** Estimated number of nonzeros in the statement's result (the
    principal non-workspace assignment); [None] for statements without
    one. *)
val estimate_nnz : env -> Cin.stmt -> float option
