(* Bounded, thread-safe string-keyed cache for chosen plans. FIFO
   eviction keeps the implementation obviously correct; plan searches
   are expensive enough that any hit pays for the simplicity. *)

type stats = { hits : int; misses : int; evictions : int; size : int }

type 'a t = {
  capacity : int;
  lock : Mutex.t;
  table : (string, 'a) Hashtbl.t;
  order : string Queue.t;  (* insertion order, oldest first *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be positive";
  {
    capacity;
    lock = Mutex.create ();
    table = Hashtbl.create 64;
    order = Queue.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some v ->
          t.hits <- t.hits + 1;
          Some v
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t key value =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        if Hashtbl.length t.table >= t.capacity then begin
          match Queue.take_opt t.order with
          | Some oldest ->
              Hashtbl.remove t.table oldest;
              t.evictions <- t.evictions + 1
          | None -> ()
        end;
        Hashtbl.replace t.table key value;
        Queue.add key t.order
      end)

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.table;
      })

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      Queue.clear t.order;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)
