open Var
module I = Index_notation

let scalar_format = Taco_tensor.Format.of_levels []

(* Translate an index-notation expression to a CIN expression. Nested
   [Sum]s become scalar-temporary producers to be attached with [Where]
   around the consuming assignment. Returns the translated expression and
   the producers, innermost first. *)
let rec translate (e : I.expr) : Cin.expr * Cin.stmt list =
  match e with
  | I.Literal v -> (Cin.Literal v, [])
  | I.Access (tv, indices) -> (Cin.Access (Cin.access tv indices), [])
  | I.Neg a ->
      let a', ps = translate a in
      (Cin.Neg a', ps)
  | I.Add (a, b) ->
      let a', pa = translate a in
      let b', pb = translate b in
      (Cin.Add (a', b'), pa @ pb)
  | I.Sub (a, b) ->
      let a', pa = translate a in
      let b', pb = translate b in
      (Cin.Sub (a', b'), pa @ pb)
  | I.Mul (a, b) ->
      let a', pa = translate a in
      let b', pb = translate b in
      (Cin.Mul (a', b'), pa @ pb)
  | I.Div (a, b) ->
      let a', pa = translate a in
      let b', pb = translate b in
      (Cin.Div (a', b'), pa @ pb)
  | I.Sum (v, a) ->
      let a', inner = translate a in
      let temp =
        Tensor_var.workspace (Index_var.name (Index_var.fresh "t")) ~order:0
          ~format:scalar_format
      in
      let t_access = Cin.access temp [] in
      let producer =
        Cin.Forall
          ( v,
            List.fold_left
              (fun consumer p -> Cin.Where (consumer, p))
              (Cin.accumulate t_access a') inner )
      in
      (Cin.Access t_access, [ producer ])

(* Strip reductions spanning the whole right-hand side. *)
let rec strip_top_sums = function
  | I.Sum (v, e) ->
      let vars, inner = strip_top_sums e in
      (v :: vars, inner)
  | (I.Literal _ | I.Access _ | I.Neg _ | I.Add _ | I.Sub _ | I.Mul _ | I.Div _) as e ->
      ([], e)

let run_body ?(scalar_temps = false) (stmt : I.t) =
  match I.validate stmt with
  | Error e -> Error e
  | Ok () ->
      let rec sum_bound = function
        | I.Sum (w, e) -> w :: sum_bound e
        | I.Neg e -> sum_bound e
        | I.Add (a, b) | I.Sub (a, b) | I.Mul (a, b) | I.Div (a, b) ->
            sum_bound a @ sum_bound b
        | I.Literal _ | I.Access _ -> []
      in
      let bound = sum_bound stmt.rhs in
      let implicit =
        List.filter
          (fun v -> not (List.exists (Index_var.equal v) bound))
          (I.reduction_vars stmt)
      in
      if scalar_temps then begin
        (* Fold implicit reduction variables into an explicit whole-rhs
           sum, then apply the literal rule of §VI: every reduction
           produces into a scalar temporary via a where statement. *)
        let rhs = List.fold_right (fun v e -> I.Sum (v, e)) implicit stmt.rhs in
        let rhs', producers = translate rhs in
        let lhs = Cin.access stmt.lhs stmt.lhs_indices in
        let body =
          match stmt.op with
          | I.Assign -> Cin.assign lhs rhs'
          | I.Accumulate -> Cin.accumulate lhs rhs'
        in
        let body =
          List.fold_left (fun consumer p -> Cin.Where (consumer, p)) body producers
        in
        Ok (Cin.foralls stmt.lhs_indices body)
      end
      else begin
        let top_sums, inner_rhs = strip_top_sums stmt.rhs in
        let rhs', producers = translate inner_rhs in
        let reduction_vars = top_sums @ implicit in
        let lhs = Cin.access stmt.lhs stmt.lhs_indices in
        let op =
          match (stmt.op, reduction_vars) with
          | I.Assign, [] -> Cin.Assign
          | I.Assign, _ :: _ -> Cin.Accumulate
          | I.Accumulate, _ -> Cin.Accumulate
        in
        let body = Cin.Assignment { lhs; op; rhs = rhs' } in
        let body =
          List.fold_left (fun consumer p -> Cin.Where (consumer, p)) body producers
        in
        Ok (Cin.foralls (stmt.lhs_indices @ reduction_vars) body)
      end

let run ?scalar_temps stmt =
  Taco_support.Trace.with_span ~cat:"frontend" "concretize" (fun () ->
      run_body ?scalar_temps stmt)

let run_exn ?scalar_temps stmt =
  match run ?scalar_temps stmt with
  | Ok s -> s
  | Error e -> invalid_arg ("Concretize.run: " ^ e)
