module Diag = Taco_support.Diag

let with_out path f =
  let oc = open_out path in
  match f oc with
  | v ->
      close_out oc;
      v
  | exception e ->
      close_out_noerr oc;
      raise e

(* A reader that tracks the 1-based line number and strips CRLF endings,
   so malformed files are reported by line. *)
type reader = { ic : in_channel; path : string; mutable lineno : int }

let reader path ic = { ic; path; lineno = 0 }

let fail r ~code fmt =
  Diag.fail ~stage:Diag.Io ~code
    ~context:[ ("file", r.path); ("line", string_of_int r.lineno) ]
    fmt

let next_line r =
  let line = input_line r.ic in
  r.lineno <- r.lineno + 1;
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

(* Next line that holds data: blank lines and comment lines (leading
   [%] or [#]) are skipped wherever they appear. *)
let rec next_data_line r =
  let line = next_line r in
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '%' || trimmed.[0] = '#' then next_data_line r
  else trimmed

let split_ws line =
  String.split_on_char ' ' (String.trim line)
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let int_field r what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail r ~code:"E_IO_FIELD" "malformed %s: %s" what s

let float_field r what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail r ~code:"E_IO_FIELD" "malformed %s: %s" what s

let read_result r f =
  match f () with
  | v -> Ok v
  | exception Diag.Error d -> Error d
  | exception End_of_file ->
      Error
        (Diag.make ~stage:Diag.Io ~code:"E_IO_EOF"
           ~context:[ ("file", r.path); ("line", string_of_int r.lineno) ]
           "unexpected end of file")
  | exception Sys_error msg ->
      Error (Diag.make ~stage:Diag.Io ~code:"E_IO_SYS" ~context:[ ("file", r.path) ] msg)
  | exception Invalid_argument msg ->
      Error
        (Diag.make ~stage:Diag.Io ~code:"E_IO_BAD_DATA"
           ~context:[ ("file", r.path); ("line", string_of_int r.lineno) ]
           msg)

let read_matrix_market path =
  match open_in path with
  | exception Sys_error msg ->
      Error (Diag.make ~stage:Diag.Io ~code:"E_IO_SYS" ~context:[ ("file", path) ] msg)
  | ic ->
      let r = reader path ic in
      let res =
        read_result r (fun () ->
            let header = next_line r in
            let lower = String.lowercase_ascii header in
            if
              not (String.length lower >= 14 && String.sub lower 0 14 = "%%matrixmarket")
            then fail r ~code:"E_IO_HEADER" "not a MatrixMarket file";
            let has word =
              let rec contains i =
                i + String.length word <= String.length lower
                && (String.sub lower i (String.length word) = word || contains (i + 1))
              in
              contains 0
            in
            if not (has "coordinate") then
              fail r ~code:"E_IO_UNSUPPORTED" "only coordinate format is supported";
            let symmetric = has "symmetric" in
            let pattern = has "pattern" in
            if has "complex" then
              fail r ~code:"E_IO_UNSUPPORTED" "complex matrices are not supported";
            let rows, cols, nnz =
              match split_ws (next_data_line r) with
              | [ rr; c; n ] ->
                  (int_field r "rows" rr, int_field r "cols" c, int_field r "nnz" n)
              | _ -> fail r ~code:"E_IO_SIZE_LINE" "malformed size line"
            in
            if rows < 0 || cols < 0 || nnz < 0 then
              fail r ~code:"E_IO_SIZE_LINE" "negative size field";
            let coo = Coo.create [| rows; cols |] in
            for _ = 1 to nnz do
              match split_ws (next_data_line r) with
              | rr :: c :: rest ->
                  let i = int_field r "row" rr - 1 and j = int_field r "col" c - 1 in
                  let v =
                    match (pattern, rest) with
                    | true, _ -> 1.
                    | false, [ v ] -> float_field r "value" v
                    | false, _ -> fail r ~code:"E_IO_ENTRY" "missing value"
                  in
                  Coo.push coo [| i; j |] v;
                  if symmetric && i <> j then Coo.push coo [| j; i |] v
              | _ -> fail r ~code:"E_IO_ENTRY" "malformed entry"
            done;
            coo)
      in
      close_in_noerr ic;
      res

let write_matrix_market path t =
  if Tensor.order t <> 2 then
    Diag.error ~stage:Diag.Io ~code:"E_IO_ORDER" ~context:[ ("file", path) ]
      "write_matrix_market: tensor has order %d, expected 2" (Tensor.order t)
  else
    match
      with_out path (fun oc ->
          let dims = Tensor.dims t in
          let entries = ref [] in
          let count = ref 0 in
          Tensor.iteri_stored
            (fun c v ->
              if v <> 0. then begin
                entries := (c.(0) + 1, c.(1) + 1, v) :: !entries;
                incr count
              end)
            t;
          output_string oc "%%MatrixMarket matrix coordinate real general\n";
          Printf.fprintf oc "%d %d %d\n" dims.(0) dims.(1) !count;
          List.iter
            (fun (i, j, v) -> Printf.fprintf oc "%d %d %.17g\n" i j v)
            (List.rev !entries))
    with
    | () -> Ok ()
    | exception Sys_error msg ->
        Error (Diag.make ~stage:Diag.Io ~code:"E_IO_SYS" ~context:[ ("file", path) ] msg)

let read_frostt ?dims path =
  match open_in path with
  | exception Sys_error msg ->
      Error (Diag.make ~stage:Diag.Io ~code:"E_IO_SYS" ~context:[ ("file", path) ] msg)
  | ic ->
      let r = reader path ic in
      let res =
        read_result r (fun () ->
            let entries = ref [] in
            (try
               while true do
                 let line = String.trim (next_line r) in
                 if line <> "" && line.[0] <> '#' && line.[0] <> '%' then begin
                   match List.rev (split_ws line) with
                   | value :: rev_coords when rev_coords <> [] ->
                       let coords =
                         List.rev_map (fun s -> int_field r "coordinate" s - 1) rev_coords
                       in
                       entries :=
                         (Array.of_list coords, float_field r "value" value, r.lineno)
                         :: !entries
                   | _ -> fail r ~code:"E_IO_ENTRY" "malformed line: %s" line
                 end
               done
             with End_of_file -> ());
            let entries = List.rev !entries in
            let order =
              match entries with
              | [] -> (
                  match dims with
                  | Some d -> Array.length d
                  | None -> fail r ~code:"E_IO_EMPTY" "empty tensor and no dims")
              | (c, _, _) :: _ -> Array.length c
            in
            List.iter
              (fun (c, _, lineno) ->
                if Array.length c <> order then begin
                  r.lineno <- lineno;
                  fail r ~code:"E_IO_ENTRY"
                    "inconsistent coordinate arity (%d, expected %d)" (Array.length c)
                    order
                end)
              entries;
            let dims =
              match dims with
              | Some d ->
                  if Array.length d <> order then
                    fail r ~code:"E_IO_DIMS" "dims arity mismatch (%d given, order %d)"
                      (Array.length d) order;
                  d
              | None ->
                  let d = Array.make order 1 in
                  List.iter
                    (fun (c, _, _) ->
                      Array.iteri (fun m x -> if x + 1 > d.(m) then d.(m) <- x + 1) c)
                    entries;
                  d
            in
            let coo = Coo.create dims in
            List.iter (fun (c, v, _) -> Coo.push coo c v) entries;
            coo)
      in
      close_in_noerr ic;
      res

let write_frostt path t =
  match
    with_out path (fun oc ->
        Tensor.iteri_stored
          (fun c v ->
            if v <> 0. then begin
              Array.iter (fun x -> Printf.fprintf oc "%d " (x + 1)) c;
              Printf.fprintf oc "%.17g\n" v
            end)
          t)
  with
  | () -> Ok ()
  | exception Sys_error msg ->
      Error (Diag.make ~stage:Diag.Io ~code:"E_IO_SYS" ~context:[ ("file", path) ] msg)
