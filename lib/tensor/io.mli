(** Tensor file I/O.

    - Matrix Market coordinate format ([.mtx]) for matrices, the format
      SuiteSparse distributes — so real Table I inputs can be dropped in
      for the synthetic stand-ins when available.
    - The FROSTT text format ([.tns]) for higher-order tensors: one line
      per nonzero, 1-based coordinates followed by the value.

    Readers tolerate CRLF line endings, blank lines and interleaved
    comment lines ([%] or [#]). Failures are stage-[Io] diagnostics whose
    context names the file and the offending line ([("line", …)]); codes
    include [E_IO_HEADER], [E_IO_UNSUPPORTED], [E_IO_SIZE_LINE],
    [E_IO_ENTRY], [E_IO_FIELD], [E_IO_EOF] and [E_IO_SYS]. *)

(** [read_matrix_market path] reads a real-valued coordinate-format
    matrix ([general] or [symmetric]) into a COO buffer. Pattern files
    read as 1.0 values. *)
val read_matrix_market : string -> (Coo.t, Taco_support.Diag.t) result

(** [write_matrix_market path t] writes the stored nonzeros in
    coordinate format ([general]). [Error] with code [E_IO_ORDER] if the
    tensor is not order 2. *)
val write_matrix_market : string -> Tensor.t -> (unit, Taco_support.Diag.t) result

(** [read_frostt path ~dims] reads a FROSTT [.tns] file. When [dims] is
    omitted they are inferred as the per-mode coordinate maxima. *)
val read_frostt : ?dims:int array -> string -> (Coo.t, Taco_support.Diag.t) result

val write_frostt : string -> Tensor.t -> (unit, Taco_support.Diag.t) result
