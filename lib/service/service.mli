(** A concurrent tensor-algebra evaluation service over the compile
    pipeline.

    Clients submit requests — an index notation statement as text,
    schedule directives, and named operand tensors — and the service
    parses, concretizes, schedules, lowers, compiles and executes them
    on a fixed pool of OCaml 5 worker domains behind a bounded
    submission queue.

    The serving layer is the system's third amortizer, after the paper's
    workspaces (amortizing insertion cost) and the structure-keyed
    compiled-kernel cache (amortizing compilation): concurrent requests
    with the same post-optimization kernel structure coalesce onto a
    single compilation ({!Taco_exec.Compile}'s single-flight cache), so
    a flood of requests for one expression shape compiles it exactly
    once and spends the pool on execution.

    Operational semantics:
    - {b Backpressure}: {!submit} rejects immediately with a stage-
      [Serve] diagnostic ([E_SERVE_QUEUE_FULL]) when the queue holds
      [queue_depth] jobs, rather than growing without bound. The
      diagnostic's context carries a [retry_after_ms] hint estimating
      when a slot should free up.
    - {b Load shedding}: once the queue length crosses the shed
      high-water mark ([shed_queue], default 3/4 of [queue_depth]),
      requests are still accepted but served {e degraded}: the
      optimizer pipeline is skipped, trading per-kernel run time for
      faster queue drain. Results are bit-identical (the optimizer is
      semantics-preserving); only latency differs. Shed counts surface
      in {!stats} and the [serve.shed] trace counter.
    - {b Deadlines}: a request's optional [deadline_ms] bounds its time
      in the system. It is checked when a worker dequeues the job,
      again between compilation and execution, and — via the executor's
      cooperative watchdog — every few hundred iterations {e inside}
      running kernel loops, so an expiry mid-kernel cancels the work.
      An expired request completes with [E_SERVE_DEADLINE].
    - {b Supervision}: a worker domain killed by an escaped exception
      (only injected faults or serving-machinery bugs — request
      failures are contained) is detected and replaced, and its job is
      retried once. A request structure that kills two workers is a
      poison pill: it resolves with [E_SERVE_POISON], its structure is
      quarantined, and future submissions of it are rejected at
      admission with the same code.
    - {b Shutdown}: {!shutdown} stops admission ([E_SERVE_SHUTDOWN]),
      lets workers drain every queued job, and joins all worker domains
      (including any replacements) before returning; every outstanding
      ticket is resolved and no domains are left running.
    - {b Failure containment}: pipeline failures (parse through
      execute) resolve the ticket with their own staged diagnostic;
      unexpected exceptions resolve it with [E_SERVE_INTERNAL].

    When tracing is enabled ({!Taco_support.Trace.enable}), the service
    records per-request [serve.wait] (queue time, retroactive) and
    [serve.exec] spans and maintains the counters [serve.submitted],
    [serve.rejected], [serve.timeout], [serve.completed],
    [serve.failed], [serve.shed], [serve.shed.degraded],
    [serve.worker_crash], [serve.worker_replaced], [serve.quarantined]
    and the gauge [serve.queue_depth].

    {b Metrics.} When {!Taco_support.Metrics.enable} is on, every
    request feeds the registry: [taco_serve_requests_total{outcome
    [,code]}] (outcomes [completed]/[shed]/[timed_out]/[failed]/
    [rejected]; failures and rejections carry their diagnostic [code]),
    [taco_serve_submitted_total], latency histograms
    [taco_serve_wait_seconds] and [taco_serve_run_seconds] labeled by
    [backend] ([native]/[closure]/[downgraded]/[none]) and [outcome],
    [taco_serve_compile_seconds{backend}] for the compile phase, and
    gauges [taco_serve_queue_depth], [taco_serve_live_workers] and
    [taco_compile_cache_hit_ratio]. Pipeline stages land in
    [taco_stage_duration_seconds{stage}] via the trace span hook.

    {b Request ids.} Each submission draws a process-global request id;
    while a worker processes the job the id is bound to the domain
    ({!Taco_support.Trace.set_request_id}), so its trace spans carry a
    [rid] argument, and the structured event log ([TACO_EVENTS=path],
    {!Taco_support.Events}) gets one [serve.request] line per finished
    job (and a [serve.reject] line per refused submission) carrying the
    same id, joining trace, log and client-side bookkeeping.

    The service logs through the [taco.service] source — enable it
    alone with [TACO_LOG=warn,service=debug]. *)

module Format = Taco_tensor.Format
module Tensor = Taco_tensor.Tensor
module Diag = Taco_support.Diag

(** Schedule directives, mirroring the CLI's scheduling surface. *)
type directive =
  | Reorder of string * string  (** exchange two index variables *)
  | Precompute of { expr : string; over : string list; workspace : string }
      (** precompute [expr] over [over] into a dense workspace *)
  | Parallelize of string
      (** run the named (outermost) index variable's loop in parallel
          chunks; an illegal directive fails the request with
          [E_PAR_ILLEGAL] (see {!Taco.parallelize}) *)
  | Auto  (** autoschedule instead of manual directives *)

type request = {
  expr : string;  (** index notation statement, e.g. ["A(i,j) = B(i,k) * C(k,j)"] *)
  directives : directive list;
  inputs : (string * Tensor.t) list;
      (** operand tensors by name; formats are taken from the tensors *)
  result_format : Format.t option;
      (** storage format of the result (default: all-dense of its order) *)
  domains : int option;
      (** chunk count for a [Parallelize]d kernel (default 1). The
          domains actually spawned are clamped against the process-wide
          {!Taco.Budget}, of which this pool's workers hold their share;
          results are bit-identical either way. *)
  backend : Taco.Compile.backend option;
      (** execution backend (default [`Closure]). [`Native] compiles
          the kernel's emitted C to a shared object; when no C compiler
          is available the request is served by closures anyway and
          counted in [stats.backend_downgraded] — never a client
          error. *)
  semiring : string option;
      (** semiring to evaluate under, by name or alias (see
          {!Taco.Semiring.of_string}; default the ordinary (+, ×)
          arithmetic). An unknown name fails the request with
          [E_SERVE_SEMIRING] listing the known names. *)
}

(** Convenience constructor; [directives], [result_format], [domains],
    [backend] and [semiring] default to none. *)
val request :
  ?directives:directive list ->
  ?result_format:Format.t ->
  ?domains:int ->
  ?backend:Taco.Compile.backend ->
  ?semiring:string ->
  expr:string ->
  inputs:(string * Tensor.t) list ->
  unit ->
  request

type response = {
  tensor : Tensor.t;  (** the evaluated result *)
  kernel_name : string;
  wait_ns : int64;  (** submission → dequeue by a worker *)
  run_ns : int64;  (** dequeue → completion (parse, compile, execute) *)
}

type t

(** A handle to one submitted request, resolved exactly once. *)
type ticket

(** Cumulative service counters (monotone since {!create}). *)
type stats = {
  submitted : int;  (** accepted submissions *)
  rejected : int;  (** refused at submission: queue full or shutdown *)
  completed : int;  (** resolved with a result *)
  timed_out : int;  (** resolved with [E_SERVE_DEADLINE] *)
  failed : int;  (** resolved with any other diagnostic *)
  peak_queue : int;  (** high-water mark of the queue *)
  total_wait_ns : int64;  (** summed queue time of processed requests *)
  total_run_ns : int64;  (** summed processing time of processed requests *)
  shed : int;  (** accepted past the shed mark, served unoptimized *)
  crashed : int;  (** worker domains killed by escaped exceptions *)
  replaced : int;  (** replacement workers spawned *)
  quarantined : int;  (** request structures quarantined as poison *)
  live_workers : int;  (** workers currently in their serving loop *)
  peak_workers : int;  (** high-water mark of [live_workers] *)
  exec_native : int;  (** requests whose kernel ran natively *)
  exec_closure : int;  (** requests whose kernel ran through closures *)
  backend_downgraded : int;
      (** [`Native] requests served by closures (compiler unavailable
          or build failed) *)
}

(** [create ~domains ~queue_depth ()] spawns the worker pool. [domains]
    (default 1, max 128) is the exact number of worker domains — it is
    deliberately not clamped to the machine's core count, so concurrency
    is exercisable anywhere; [queue_depth] (default 64) bounds the
    submission queue. Raises [Invalid_argument] on non-positive
    values. The pool acquires (best-effort) one {!Taco.Budget} permit per
    worker for its lifetime, so parallel kernels executing inside a busy
    pool cannot oversubscribe the machine; {!shutdown} returns the
    permits.

    [shed_queue] sets the queue length at which accepted requests are
    served degraded (see {e Load shedding} above); default
    [3 * queue_depth / 4], minimum 1. *)
val create : ?domains:int -> ?queue_depth:int -> ?shed_queue:int -> unit -> t

(** Enqueue a request. Returns a ticket, or rejects immediately with
    [E_SERVE_QUEUE_FULL] (context: [retry_after_ms]) /
    [E_SERVE_POISON] (quarantined structure) / [E_SERVE_SHUTDOWN].
    [deadline_ms] is relative to submission. *)
val submit : t -> ?deadline_ms:int -> request -> (ticket, Diag.t) result

(** Block until the ticket resolves. Idempotent. *)
val await : ticket -> (response, Diag.t) result

(** [Some] once the ticket has resolved, without blocking. *)
val poll : ticket -> (response, Diag.t) result option

(** [submit] then [await]. *)
val eval : t -> ?deadline_ms:int -> request -> (response, Diag.t) result

val stats : t -> stats

(** Jobs currently queued (excluding those being executed). *)
val queue_length : t -> int

(** Worker-domain count of the pool. *)
val domains : t -> int

(** Stop admission, drain the queue, join every worker domain, then
    sweep the native backend's on-disk build artifacts
    ({!Taco.Native.cleanup}). Idempotent; concurrent callers all return
    after the drain. *)
val shutdown : t -> unit
