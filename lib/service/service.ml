(* The concurrent evaluation service: a bounded MPMC job queue feeding a
   fixed pool of worker domains, each running the whole pipeline (parse →
   concretize → schedule → lower → compile → execute) through the Taco
   facade. Compilation coalescing is not implemented here: it falls out
   of the single-flight compiled-kernel cache in [Taco_exec.Compile],
   which this service merely hammers from many domains. See service.mli
   for the queueing/deadline/backpressure semantics. *)

module Format = Taco_tensor.Format
module Tensor = Taco_tensor.Tensor
module Diag = Taco_support.Diag
module Trace = Taco_support.Trace
module Metrics = Taco_support.Metrics
module Events = Taco_support.Events
module Fault = Taco_support.Faultinject
module P = Taco_frontend.Parser
module Tensor_var = Taco_ir.Var.Tensor_var

let log_src = Logs.Src.create "taco.service" ~doc:"Taco evaluation service"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Request ids are process-global (one sequence across all pools), so a
   trace, the event log and client-side bookkeeping agree on them. *)
let next_rid = Atomic.make 1

type directive =
  | Reorder of string * string
  | Precompute of { expr : string; over : string list; workspace : string }
  | Parallelize of string
  | Auto

type request = {
  expr : string;
  directives : directive list;
  inputs : (string * Tensor.t) list;
  result_format : Format.t option;
  domains : int option;
  backend : Taco.Compile.backend option;
  semiring : string option;
}

let request ?(directives = []) ?result_format ?domains ?backend ?semiring ~expr ~inputs
    () =
  { expr; directives; inputs; result_format; domains; backend; semiring }

type response = {
  tensor : Tensor.t;
  kernel_name : string;
  wait_ns : int64;
  run_ns : int64;
}

type ticket = {
  tk_mutex : Mutex.t;
  tk_cond : Condition.t;
  mutable tk_state : (response, Diag.t) result option;
}

type job = {
  j_rid : int;
  j_req : request;
  j_enq_ns : int64;
  j_deadline_ns : int64 option;  (* absolute, from the monotonic clock *)
  j_deadline_ms : int option;  (* as requested, for diagnostics *)
  j_ticket : ticket;
  j_shed : bool;
      (* Accepted past the shed high-water mark: serve it degraded
         (optimizer skipped) to drain the backlog faster. *)
  mutable j_backend : string;
      (* executor that actually served it: native/closure/downgraded,
         or "none" before (or without) a successful compile *)
  mutable j_compile_ns : int64;  (* measured compile-phase duration *)
}

type state = Running | Draining | Stopped

type stats = {
  submitted : int;
  rejected : int;
  completed : int;
  timed_out : int;
  failed : int;
  peak_queue : int;
  total_wait_ns : int64;
  total_run_ns : int64;
  shed : int;
  crashed : int;
  replaced : int;
  quarantined : int;
  live_workers : int;
  peak_workers : int;
  exec_native : int;
  exec_closure : int;
  backend_downgraded : int;
}

type t = {
  s_mutex : Mutex.t;
  s_nonempty : Condition.t;  (* a job was queued, or the state changed *)
  s_stopped : Condition.t;  (* the pool reached [Stopped] *)
  s_queue : job Queue.t;
  s_depth : int;
  s_domains : int;
  s_shed_hwm : int;  (* queue length at which accepted jobs degrade *)
  s_crashes : (string, int) Hashtbl.t;  (* request key -> workers killed *)
  s_quarantine : (string, unit) Hashtbl.t;  (* poison-pill request keys *)
  mutable s_state : state;
  mutable s_workers : unit Domain.t list;
  mutable s_live : int;  (* workers currently in their loop *)
  mutable s_permits : int;  (* domain-budget permits held for the pool *)
  mutable st_submitted : int;
  mutable st_rejected : int;
  mutable st_completed : int;
  mutable st_timed_out : int;
  mutable st_failed : int;
  mutable st_peak_queue : int;
  mutable st_total_wait_ns : int64;
  mutable st_total_run_ns : int64;
  mutable st_shed : int;
  mutable st_crashed : int;
  mutable st_replaced : int;
  mutable st_quarantined : int;
  mutable st_peak_workers : int;
  mutable st_exec_native : int;
  mutable st_exec_closure : int;
  mutable st_backend_downgraded : int;
}

let serve_error ?context code fmt = Diag.error ~stage:Diag.Serve ~code ?context fmt

(* ------------------------------------------------------------------ *)
(* The request pipeline (runs on a worker domain)                      *)
(* ------------------------------------------------------------------ *)

(* Raised between pipeline steps when the request's deadline passes. *)
exception Expired of Diag.t

let deadline_diag ?waited_ms job =
  let context =
    [ ("deadline_ms", string_of_int (Option.value ~default:0 job.j_deadline_ms)) ]
    @ match waited_ms with Some w -> [ ("waited_ms", string_of_int w) ] | None -> []
  in
  Diag.make ~stage:Diag.Serve ~code:"E_SERVE_DEADLINE" ~context
    "request deadline exceeded"

let check_deadline job =
  match job.j_deadline_ns with
  | Some d when Trace.now_ns () > d -> raise (Expired (deadline_diag job))
  | _ -> ()

(* Build the tensor-variable environment for the parser: operand formats
   come from the bound input tensors, the result's from the request. The
   first scanned tensor is the statement's result (grammar: the lhs
   access comes first). Operands with no bound input get a placeholder
   variable and are returned in the [missing] list: the caller parses
   the statement first, so a syntax error wins over a missing binding
   (whose scanned order may be garbage anyway). *)
let build_env req =
  match P.scan_tensors req.expr with
  | [] -> serve_error "E_SERVE_EXPR" "no tensor access found in %S" req.expr
  | (result_name, _) :: _ as scanned ->
      let bound name = List.assoc_opt name req.inputs in
      let rec vars acc missing = function
        | [] -> Ok (List.rev acc, List.rev missing)
        | (name, order) :: rest -> (
            if name = result_name then
              let fmt =
                match req.result_format with
                | Some f -> f
                | None -> Format.dense order
              in
              if Format.order fmt <> order then
                serve_error "E_SERVE_INPUT"
                  ~context:[ ("tensor", name) ]
                  "result format has order %d but %s is accessed with %d indices"
                  (Format.order fmt) name order
              else
                vars ((name, Tensor_var.make name ~order ~format:fmt) :: acc) missing rest
            else
              match bound name with
              | None ->
                  vars
                    ((name, Tensor_var.make name ~order ~format:(Format.dense order)) :: acc)
                    (name :: missing) rest
              | Some tensor ->
                  if Tensor.order tensor <> order then
                    serve_error "E_SERVE_INPUT"
                      ~context:[ ("tensor", name) ]
                      "input %s has order %d but is accessed with %d indices" name
                      (Tensor.order tensor) order
                  else
                    vars ((name, Tensor_var.make name ~order ~format:(Tensor.format tensor)) :: acc)
                      missing rest)
      in
      (* Reject stray bindings early: a misspelled operand otherwise
         surfaces later as a confusing missing-operand error. *)
      let stray =
        List.find_opt (fun (name, _) -> not (List.mem_assoc name scanned)) req.inputs
      in
      (match stray with
      | Some (name, _) ->
          serve_error "E_SERVE_INPUT"
            ~context:[ ("tensor", name) ]
            "input %s does not occur in the expression" name
      | None ->
          if List.mem_assoc result_name req.inputs then
            serve_error "E_SERVE_INPUT"
              ~context:[ ("tensor", result_name) ]
              "the result tensor %s must not be bound as an input" result_name
          else vars [] [] scanned)

let apply_directive env sched d =
  let ivar = Taco.ivar in
  match d with
  | Auto -> Ok sched
  | Reorder (a, b) ->
      Diag.of_msg ~stage:Diag.Reorder ~code:"E_REORDER"
        (Taco.Schedule.reorder (ivar a) (ivar b) sched)
  | Parallelize v -> Taco.parallelize (ivar v) sched
  | Precompute { expr; over; workspace } -> (
      match P.parse_expr ~tensors:env expr with
      | Error e -> Error e
      | Ok e -> (
          match
            Diag.of_msg ~stage:Diag.Workspace ~code:"E_WORKSPACE"
              (Taco.Schedule.expr_of_index_notation e)
          with
          | Error e -> Error e
          | Ok cexpr ->
              let over = List.map ivar over in
              let w =
                Tensor_var.workspace workspace ~order:(List.length over)
                  ~format:(Format.dense (List.length over))
              in
              Diag.of_msg ~stage:Diag.Workspace ~code:"E_WORKSPACE"
                (Taco.Schedule.precompute_simple ~expr:cexpr ~over ~workspace:w sched)))

(* Identifies a request's structure (expression and directives, not the
   bound tensors) for crash accounting: a structure that kills workers
   keeps doing so however often it is resubmitted. *)
let poison_key req =
  Digest.to_hex (Digest.string (Marshal.to_string (req.expr, req.directives, req.semiring) []))

(* Per-request backend accounting: which executor actually serves the
   kernel, and whether a native request fell back to closures. The job
   carries the answer as a metric label ("downgraded" rather than the
   executor it landed on, so fallbacks stay visible in histograms). *)
let record_backend t job compiled ~requested =
  let actual = Taco.backend_of compiled in
  let downgraded = requested = `Native && actual = `Closure in
  job.j_backend <-
    (if downgraded then "downgraded"
     else match actual with `Native -> "native" | `Closure -> "closure");
  Mutex.lock t.s_mutex;
  (match actual with
  | `Native -> t.st_exec_native <- t.st_exec_native + 1
  | `Closure -> t.st_exec_closure <- t.st_exec_closure + 1);
  if downgraded then t.st_backend_downgraded <- t.st_backend_downgraded + 1;
  Mutex.unlock t.s_mutex

let pipeline t job =
  Fault.hit ~stage:Diag.Serve "serve.pipeline";
  let req = job.j_req in
  let ( let* ) = Result.bind in
  let* env, missing = build_env req in
  let result_name = fst (List.hd env) in
  let* stmt = P.parse_statement ~tensors:env req.expr in
  let* () =
    match missing with
    | [] -> Ok ()
    | name :: _ ->
        serve_error "E_SERVE_INPUT"
          ~context:[ ("tensor", name) ]
          "operand %s has no bound input tensor" name
  in
  let* sched =
    Diag.of_msg ~stage:Diag.Concretize ~code:"E_CONCRETIZE"
      (Taco.Schedule.of_index_notation stmt)
  in
  let* sched =
    List.fold_left
      (fun acc d -> match acc with Error _ -> acc | Ok s -> apply_directive env s d)
      (Ok sched) req.directives
  in
  let name = "serve_" ^ result_name in
  (* An unknown semiring name is a client error at admission quality:
     reject with the known names rather than defaulting silently. *)
  let* semiring =
    match req.semiring with
    | None -> Ok None
    | Some sname -> (
        match Taco.Semiring.of_string sname with
        | Some sr -> Ok (Some sr)
        | None ->
            serve_error "E_SERVE_SEMIRING"
              ~context:[ ("semiring", sname) ]
              "unknown semiring %S (known: %s)" sname
              (String.concat ", " Taco.Semiring.names))
  in
  (* A shed job skips the optimizer pipeline: an unoptimized kernel
     compiles faster and computes the bit-identical result, trading its
     own run time for queue drain. *)
  let opt = if job.j_shed then Some Taco.Opt.none else None in
  if job.j_shed then Trace.add "serve.shed.degraded" 1;
  let compile_t0 = Trace.now_ns () in
  let compiled_r =
    if List.mem Auto req.directives then begin
      (* Input sparsity statistics drive the cost-ranked plan search;
         collection is memoized on tensor identity, and passing stats
         also keys the chosen plan into the plan cache, so repeat
         traffic on the same expression shape skips the search. *)
      let stats =
        List.map (fun (n, tensor) -> (n, Taco.Stats.of_tensor_memo tensor)) req.inputs
      in
      Result.map
        (fun (c, _, _) -> c)
        (Taco.auto_compile_explained ~name ?semiring ?opt ?backend:req.backend ~stats
           sched)
    end
    else Taco.compile ~name ?semiring ?opt ?backend:req.backend sched
  in
  job.j_compile_ns <- Int64.sub (Trace.now_ns ()) compile_t0;
  let* compiled = compiled_r in
  record_backend t job compiled
    ~requested:(Option.value ~default:`Closure req.backend);
  if Metrics.enabled () then
    Metrics.observe_ns
      ~labels:[ ("backend", job.j_backend) ]
      "taco_serve_compile_seconds" job.j_compile_ns;
  (* The deadline may have passed while compiling; do not burn a worker
     on executing a result nobody is waiting for. *)
  check_deadline job;
  Fault.hit ~stage:Diag.Serve "serve.exec";
  let inputs =
    List.map (fun (n, tensor) -> (List.assoc n env, tensor)) req.inputs
  in
  (* [domains] is the requested chunk count; the kernel executor clamps
     the domains it actually spawns against the process-wide budget, of
     which this pool's workers already hold their share — so a parallel
     kernel inside a busy pool degrades to (deterministically identical)
     sequential chunks instead of oversubscribing the machine. The
     deadline is passed down so the executor's cooperative watchdog can
     cancel a kernel still running when it expires. *)
  let* tensor =
    match
      Taco.run ?domains:req.domains ?deadline_ns:job.j_deadline_ns compiled ~inputs
    with
    | Error d when d.Diag.code = "E_EXEC_CANCELLED" ->
        (* The watchdog firing mid-kernel is this job's deadline. *)
        Error (deadline_diag job)
    | r -> r
  in
  Ok (tensor, (Taco.Kernel.info (Taco.kernel compiled)).Taco.Lower.kernel.Taco.Imp.k_name)

(* ------------------------------------------------------------------ *)
(* Tickets                                                             *)
(* ------------------------------------------------------------------ *)

let fresh_ticket () =
  { tk_mutex = Mutex.create (); tk_cond = Condition.create (); tk_state = None }

let resolve ticket outcome =
  Mutex.lock ticket.tk_mutex;
  if ticket.tk_state = None then ticket.tk_state <- Some outcome;
  Condition.broadcast ticket.tk_cond;
  Mutex.unlock ticket.tk_mutex

let await ticket =
  Mutex.lock ticket.tk_mutex;
  let rec wait () =
    match ticket.tk_state with
    | Some outcome -> outcome
    | None ->
        Condition.wait ticket.tk_cond ticket.tk_mutex;
        wait ()
  in
  let outcome = wait () in
  Mutex.unlock ticket.tk_mutex;
  outcome

let poll ticket =
  Mutex.lock ticket.tk_mutex;
  let s = ticket.tk_state in
  Mutex.unlock ticket.tk_mutex;
  s

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

let ms_of_ns ns = Int64.to_int (Int64.div ns 1_000_000L)

let set_worker_gauge live =
  if Metrics.enabled () then
    Metrics.set_gauge "taco_serve_live_workers" (float_of_int live)

(* Classify and record one finished job. Called on the worker, off the
   service mutex for the trace counters, metrics and the event log. *)
let finish t job ~wait_ns ~run_ns outcome =
  let kind =
    match outcome with
    | Ok _ -> `Completed
    | Error d when d.Diag.code = "E_SERVE_DEADLINE" -> `Timed_out
    | Error _ -> `Failed
  in
  Mutex.lock t.s_mutex;
  (match kind with
  | `Completed -> t.st_completed <- t.st_completed + 1
  | `Timed_out -> t.st_timed_out <- t.st_timed_out + 1
  | `Failed -> t.st_failed <- t.st_failed + 1);
  t.st_total_wait_ns <- Int64.add t.st_total_wait_ns wait_ns;
  t.st_total_run_ns <- Int64.add t.st_total_run_ns run_ns;
  Mutex.unlock t.s_mutex;
  (match kind with
  | `Completed -> Trace.add "serve.completed" 1
  | `Timed_out -> Trace.add "serve.timeout" 1
  | `Failed -> Trace.add "serve.failed" 1);
  (* A shed job that still completed is its own outcome: it was served
     degraded, and its latency belongs in a separate series. Timeouts
     and failures of shed jobs keep the failure outcome — that is the
     more important fact about them. *)
  let outcome_l =
    match kind with
    | `Completed -> if job.j_shed then "shed" else "completed"
    | `Timed_out -> "timed_out"
    | `Failed -> "failed"
  in
  let code =
    match (kind, outcome) with
    | `Failed, Error d -> Some d.Diag.code
    | _ -> None
  in
  if Metrics.enabled () then begin
    Metrics.inc
      ~labels:
        (("outcome", outcome_l)
        :: (match code with Some c -> [ ("code", c) ] | None -> []))
      "taco_serve_requests_total";
    let bl = [ ("backend", job.j_backend); ("outcome", outcome_l) ] in
    Metrics.observe_ns ~labels:bl "taco_serve_wait_seconds" wait_ns;
    Metrics.observe_ns ~labels:bl "taco_serve_run_seconds" run_ns;
    let cs = Taco.Compile.cache_stats () in
    let lookups = cs.Taco.Compile.hits + cs.Taco.Compile.misses in
    if lookups > 0 then
      Metrics.set_gauge "taco_compile_cache_hit_ratio"
        (float_of_int cs.Taco.Compile.hits /. float_of_int lookups)
  end;
  if Events.enabled () then
    Events.emit "serve.request"
      ([
         ("rid", Events.Int job.j_rid);
         ("expr", Events.Str job.j_req.expr);
         ("outcome", Events.Str outcome_l);
         ("backend", Events.Str job.j_backend);
         ("shed", Events.Bool job.j_shed);
         ("wait_ns", Events.I64 wait_ns);
         ("run_ns", Events.I64 run_ns);
         ("compile_ns", Events.I64 job.j_compile_ns);
       ]
      @ (match code with Some c -> [ ("code", Events.Str c) ] | None -> [])
      @
      match job.j_deadline_ms with
      | Some ms -> [ ("deadline_ms", Events.Int ms) ]
      | None -> []);
  Log.debug (fun m ->
      m "rid=%d %s backend=%s wait=%dms run=%dms" job.j_rid outcome_l
        job.j_backend (ms_of_ns wait_ns) (ms_of_ns run_ns));
  resolve job.j_ticket outcome

let process t job =
  (* Bind the request id to this worker domain for the job's duration:
     every trace span and instant the pipeline emits below is stamped
     with it, joining the trace to the event log and the submitter. *)
  Trace.set_request_id (Some job.j_rid);
  let dequeue_ns = Trace.now_ns () in
  let wait_ns = Int64.sub dequeue_ns job.j_enq_ns in
  if Trace.active () then begin
    Trace.add "serve.queue_depth" (-1);
    Trace.span_complete ~cat:"serve" ~ts:job.j_enq_ns ~dur_ns:wait_ns "serve.wait"
  end;
  let expired =
    match job.j_deadline_ns with Some d -> dequeue_ns > d | None -> false
  in
  (if expired then
     finish t job ~wait_ns ~run_ns:0L
       (Error (deadline_diag ~waited_ms:(ms_of_ns wait_ns) job))
   else begin
     let outcome =
       match
         Trace.with_span ~cat:"serve"
           ~args:[ ("expr", job.j_req.expr) ]
           "serve.exec"
           (fun () -> pipeline t job)
       with
       | outcome -> outcome
       | exception Expired d -> Error d
       | exception Diag.Error d -> Error d
       | exception exn ->
           serve_error "E_SERVE_INTERNAL" "unexpected exception: %s"
             (Printexc.to_string exn)
     in
     let run_ns = Int64.sub (Trace.now_ns ()) dequeue_ns in
     let outcome =
       Result.map
         (fun (tensor, kernel_name) -> { tensor; kernel_name; wait_ns; run_ns })
         outcome
     in
     finish t job ~wait_ns ~run_ns outcome
   end);
  Trace.set_request_id None

let rec worker_loop t current =
  Mutex.lock t.s_mutex;
  let rec next () =
    if not (Queue.is_empty t.s_queue) then Some (Queue.pop t.s_queue)
    else
      match t.s_state with
      | Running ->
          Condition.wait t.s_nonempty t.s_mutex;
          next ()
      | Draining | Stopped -> None
  in
  let job = next () in
  (match job with
  | Some _ ->
      Metrics.set_gauge "taco_serve_queue_depth"
        (float_of_int (Queue.length t.s_queue))
  | None -> ());
  Mutex.unlock t.s_mutex;
  match job with
  | None -> ()
  | Some job ->
      current := Some job;
      (* The one fault site outside [process]'s catch-all: a Crash rule
         here escapes the loop and kills the worker domain, exercising
         the supervision path below. *)
      Fault.hit ~stage:Diag.Serve "serve.worker";
      process t job;
      current := None;
      worker_loop t current

(* A worker domain: runs the loop, and on an escaped exception reports
   the death so the pool can replace it. [process] catches everything a
   request can throw, so escapes are either injected faults or failures
   of the serving machinery itself — both mean this domain is done. *)
let rec spawn_worker t =
  let current = ref None in
  Domain.spawn (fun () ->
      try worker_loop t current with exn -> handle_crash t current exn)

and handle_crash t current exn =
  Trace.add "serve.worker_crash" 1;
  let victim = !current in
  Mutex.lock t.s_mutex;
  t.st_crashed <- t.st_crashed + 1;
  t.s_live <- t.s_live - 1;
  let poisoned =
    match victim with
    | None -> None
    | Some job ->
        let key = poison_key job.j_req in
        let kills = 1 + Option.value ~default:0 (Hashtbl.find_opt t.s_crashes key) in
        Hashtbl.replace t.s_crashes key kills;
        if kills >= 2 then begin
          (* Second worker killed by the same request structure: stop
             retrying it, and pre-reject future submissions of it. *)
          Hashtbl.replace t.s_quarantine key ();
          t.st_quarantined <- t.st_quarantined + 1;
          t.st_failed <- t.st_failed + 1;
          Some (job, kills)
        end
        else if t.s_state = Running then begin
          (* First strike: requeue for one more attempt (possibly on
             another worker — the crash may have been the worker's). *)
          Queue.push job t.s_queue;
          Condition.signal t.s_nonempty;
          None
        end
        else begin
          (* No replacement is coming during drain; fail it rather than
             strand the submitter on an unresolved ticket. *)
          t.st_failed <- t.st_failed + 1;
          Some (job, kills)
        end
  in
  let replace = t.s_state = Running in
  if replace then begin
    let w = spawn_worker t in
    t.s_workers <- w :: t.s_workers;
    t.s_live <- t.s_live + 1;
    t.st_replaced <- t.st_replaced + 1
  end;
  let live = t.s_live in
  Mutex.unlock t.s_mutex;
  Log.warn (fun m ->
      m "worker domain died (%s); %s" (Printexc.to_string exn)
        (if replace then "replaced" else "not replacing during drain"));
  set_worker_gauge live;
  if replace then Trace.add "serve.worker_replaced" 1;
  match poisoned with
  | None -> ()
  | Some (job, kills) ->
      let context =
        [ ("workers_killed", string_of_int kills); ("exn", Printexc.to_string exn) ]
      in
      let diag =
        if kills >= 2 then begin
          Trace.add "serve.quarantined" 1;
          Diag.make ~stage:Diag.Serve ~code:"E_SERVE_POISON" ~context
            "request killed a worker domain; quarantined"
        end
        else
          Diag.make ~stage:Diag.Serve ~code:"E_SERVE_INTERNAL" ~context
            "worker domain died during shutdown"
      in
      resolve job.j_ticket (Error diag)

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let create ?(domains = 1) ?(queue_depth = 64) ?shed_queue () =
  if domains < 1 || domains > 128 then
    invalid_arg "Service.create: domains must be in 1..128";
  if queue_depth < 1 then invalid_arg "Service.create: queue_depth must be positive";
  let shed_hwm =
    match shed_queue with
    | None -> max 1 (3 * queue_depth / 4)
    | Some n ->
        if n < 1 then invalid_arg "Service.create: shed_queue must be positive";
        n
  in
  let t =
    {
      s_mutex = Mutex.create ();
      s_nonempty = Condition.create ();
      s_stopped = Condition.create ();
      s_queue = Queue.create ();
      s_depth = queue_depth;
      s_domains = domains;
      s_shed_hwm = shed_hwm;
      s_crashes = Hashtbl.create 8;
      s_quarantine = Hashtbl.create 8;
      s_state = Running;
      s_workers = [];
      s_live = domains;
      (* Account the worker domains against the process-wide budget:
         while the pool is up, kernels (here or elsewhere) see that many
         fewer domains to spawn. Best-effort — a pool larger than the
         machine still comes up, it just leaves no budget for nesting. *)
      s_permits = Taco.Budget.acquire domains;
      st_submitted = 0;
      st_rejected = 0;
      st_completed = 0;
      st_timed_out = 0;
      st_failed = 0;
      st_peak_queue = 0;
      st_total_wait_ns = 0L;
      st_total_run_ns = 0L;
      st_shed = 0;
      st_crashed = 0;
      st_replaced = 0;
      st_quarantined = 0;
      st_peak_workers = domains;
      st_exec_native = 0;
      st_exec_closure = 0;
      st_backend_downgraded = 0;
    }
  in
  t.s_workers <- List.init domains (fun _ -> spawn_worker t);
  set_worker_gauge domains;
  t

(* A submission that never reached the queue still counts as a request
   (outcome="rejected") and still gets an event-log line, so load
   studies see the offered load, not just the accepted one. *)
let note_rejected rid req code =
  Trace.add "serve.rejected" 1;
  if Metrics.enabled () then
    Metrics.inc
      ~labels:[ ("outcome", "rejected"); ("code", code) ]
      "taco_serve_requests_total";
  if Events.enabled () then
    Events.emit "serve.reject"
      [
        ("rid", Events.Int rid);
        ("expr", Events.Str req.expr);
        ("code", Events.Str code);
      ]

let submit t ?deadline_ms req =
  let enq_ns = Trace.now_ns () in
  let rid = Atomic.fetch_and_add next_rid 1 in
  Mutex.lock t.s_mutex;
  let verdict =
    if t.s_state <> Running then `Shutdown
    else if
      Hashtbl.length t.s_quarantine > 0
      && Hashtbl.mem t.s_quarantine (poison_key req)
    then `Poison
    else if Queue.length t.s_queue >= t.s_depth then begin
      (* Estimate when a slot should free up: the average job service
         time scaled by how many jobs each live worker has ahead of it.
         A hint, not a promise — good enough to spread retries. *)
      let processed = t.st_completed + t.st_timed_out + t.st_failed in
      let avg_ms =
        if processed = 0 then 5
        else max 1 (ms_of_ns (Int64.div t.st_total_run_ns (Int64.of_int processed)))
      in
      `Full (max 1 (avg_ms * Queue.length t.s_queue / max 1 t.s_live))
    end
    else begin
      let ticket = fresh_ticket () in
      let deadline_ns =
        Option.map
          (fun ms -> Int64.add enq_ns (Int64.mul (Int64.of_int (max 0 ms)) 1_000_000L))
          deadline_ms
      in
      let shed = Queue.length t.s_queue >= t.s_shed_hwm in
      if shed then t.st_shed <- t.st_shed + 1;
      Queue.push
        {
          j_rid = rid;
          j_req = req;
          j_enq_ns = enq_ns;
          j_deadline_ns = deadline_ns;
          j_deadline_ms = deadline_ms;
          j_ticket = ticket;
          j_shed = shed;
          j_backend = "none";
          j_compile_ns = 0L;
        }
        t.s_queue;
      t.st_submitted <- t.st_submitted + 1;
      t.st_peak_queue <- max t.st_peak_queue (Queue.length t.s_queue);
      (* Under the service mutex so enqueue/dequeue gauge writes are
         ordered (the gauge table has its own lock and never takes this
         one back — no deadlock). *)
      Metrics.set_gauge "taco_serve_queue_depth"
        (float_of_int (Queue.length t.s_queue));
      Condition.signal t.s_nonempty;
      `Accepted (ticket, shed)
    end
  in
  (match verdict with
  | `Shutdown | `Full _ | `Poison -> t.st_rejected <- t.st_rejected + 1
  | `Accepted _ -> ());
  Mutex.unlock t.s_mutex;
  match verdict with
  | `Accepted (ticket, shed) ->
      if Trace.enabled () then begin
        Trace.add "serve.submitted" 1;
        Trace.add "serve.queue_depth" 1;
        if shed then Trace.add "serve.shed" 1
      end;
      Metrics.inc "taco_serve_submitted_total";
      Ok ticket
  | `Full retry_after_ms ->
      note_rejected rid req "E_SERVE_QUEUE_FULL";
      serve_error "E_SERVE_QUEUE_FULL"
        ~context:
          [
            ("queue_depth", string_of_int t.s_depth);
            ("retry_after_ms", string_of_int retry_after_ms);
          ]
        "submission queue is full"
  | `Poison ->
      note_rejected rid req "E_SERVE_POISON";
      serve_error "E_SERVE_POISON" "request structure is quarantined (killed workers)"
  | `Shutdown ->
      note_rejected rid req "E_SERVE_SHUTDOWN";
      serve_error "E_SERVE_SHUTDOWN" "service is shut down"

let eval t ?deadline_ms req =
  match submit t ?deadline_ms req with Error e -> Error e | Ok ticket -> await ticket

let stats t =
  Mutex.lock t.s_mutex;
  let s =
    {
      submitted = t.st_submitted;
      rejected = t.st_rejected;
      completed = t.st_completed;
      timed_out = t.st_timed_out;
      failed = t.st_failed;
      peak_queue = t.st_peak_queue;
      total_wait_ns = t.st_total_wait_ns;
      total_run_ns = t.st_total_run_ns;
      shed = t.st_shed;
      crashed = t.st_crashed;
      replaced = t.st_replaced;
      quarantined = t.st_quarantined;
      live_workers = t.s_live;
      peak_workers = t.st_peak_workers;
      exec_native = t.st_exec_native;
      exec_closure = t.st_exec_closure;
      backend_downgraded = t.st_backend_downgraded;
    }
  in
  Mutex.unlock t.s_mutex;
  s

let queue_length t =
  Mutex.lock t.s_mutex;
  let n = Queue.length t.s_queue in
  Mutex.unlock t.s_mutex;
  n

let domains t = t.s_domains

let shutdown t =
  Mutex.lock t.s_mutex;
  let workers =
    match t.s_state with
    | Running ->
        t.s_state <- Draining;
        let w = t.s_workers in
        t.s_workers <- [];
        Condition.broadcast t.s_nonempty;
        w
    | Draining | Stopped -> []
  in
  Mutex.unlock t.s_mutex;
  if workers <> [] then begin
    List.iter Domain.join workers;
    (* Replacements spawned after the drain snapshot joined the list
       under the mutex; pick them up until none are left. *)
    let rec drain_late () =
      Mutex.lock t.s_mutex;
      let late = t.s_workers in
      t.s_workers <- [];
      Mutex.unlock t.s_mutex;
      if late <> [] then begin
        List.iter Domain.join late;
        drain_late ()
      end
    in
    drain_late ();
    Taco.Budget.release t.s_permits;
    Mutex.lock t.s_mutex;
    t.s_permits <- 0;
    t.s_live <- 0;
    t.s_state <- Stopped;
    Condition.broadcast t.s_stopped;
    Mutex.unlock t.s_mutex;
    set_worker_gauge 0;
    (* Temp-artifact hygiene: sweep native build leftovers now that no
       worker can be mid-compile (loaded kernels stay callable). *)
    Taco.Native.cleanup ()
  end
  else begin
    (* Another domain owns the drain; wait for it to finish. *)
    Mutex.lock t.s_mutex;
    while t.s_state <> Stopped do
      Condition.wait t.s_stopped t.s_mutex
    done;
    Mutex.unlock t.s_mutex
  end
