(* The concurrent evaluation service: a bounded MPMC job queue feeding a
   fixed pool of worker domains, each running the whole pipeline (parse →
   concretize → schedule → lower → compile → execute) through the Taco
   facade. Compilation coalescing is not implemented here: it falls out
   of the single-flight compiled-kernel cache in [Taco_exec.Compile],
   which this service merely hammers from many domains. See service.mli
   for the queueing/deadline/backpressure semantics. *)

module Format = Taco_tensor.Format
module Tensor = Taco_tensor.Tensor
module Diag = Taco_support.Diag
module Trace = Taco_support.Trace
module P = Taco_frontend.Parser
module Tensor_var = Taco_ir.Var.Tensor_var

type directive =
  | Reorder of string * string
  | Precompute of { expr : string; over : string list; workspace : string }
  | Parallelize of string
  | Auto

type request = {
  expr : string;
  directives : directive list;
  inputs : (string * Tensor.t) list;
  result_format : Format.t option;
  domains : int option;
}

let request ?(directives = []) ?result_format ?domains ~expr ~inputs () =
  { expr; directives; inputs; result_format; domains }

type response = {
  tensor : Tensor.t;
  kernel_name : string;
  wait_ns : int64;
  run_ns : int64;
}

type ticket = {
  tk_mutex : Mutex.t;
  tk_cond : Condition.t;
  mutable tk_state : (response, Diag.t) result option;
}

type job = {
  j_req : request;
  j_enq_ns : int64;
  j_deadline_ns : int64 option;  (* absolute, from the monotonic clock *)
  j_deadline_ms : int option;  (* as requested, for diagnostics *)
  j_ticket : ticket;
}

type state = Running | Draining | Stopped

type stats = {
  submitted : int;
  rejected : int;
  completed : int;
  timed_out : int;
  failed : int;
  peak_queue : int;
  total_wait_ns : int64;
  total_run_ns : int64;
}

type t = {
  s_mutex : Mutex.t;
  s_nonempty : Condition.t;  (* a job was queued, or the state changed *)
  s_stopped : Condition.t;  (* the pool reached [Stopped] *)
  s_queue : job Queue.t;
  s_depth : int;
  s_domains : int;
  mutable s_state : state;
  mutable s_workers : unit Domain.t list;
  mutable s_permits : int;  (* domain-budget permits held for the pool *)
  mutable st_submitted : int;
  mutable st_rejected : int;
  mutable st_completed : int;
  mutable st_timed_out : int;
  mutable st_failed : int;
  mutable st_peak_queue : int;
  mutable st_total_wait_ns : int64;
  mutable st_total_run_ns : int64;
}

let serve_error ?context code fmt = Diag.error ~stage:Diag.Serve ~code ?context fmt

(* ------------------------------------------------------------------ *)
(* The request pipeline (runs on a worker domain)                      *)
(* ------------------------------------------------------------------ *)

(* Raised between pipeline steps when the request's deadline passes. *)
exception Expired of Diag.t

let deadline_diag ?waited_ms job =
  let context =
    [ ("deadline_ms", string_of_int (Option.value ~default:0 job.j_deadline_ms)) ]
    @ match waited_ms with Some w -> [ ("waited_ms", string_of_int w) ] | None -> []
  in
  Diag.make ~stage:Diag.Serve ~code:"E_SERVE_DEADLINE" ~context
    "request deadline exceeded"

let check_deadline job =
  match job.j_deadline_ns with
  | Some d when Trace.now_ns () > d -> raise (Expired (deadline_diag job))
  | _ -> ()

(* Build the tensor-variable environment for the parser: operand formats
   come from the bound input tensors, the result's from the request. The
   first scanned tensor is the statement's result (grammar: the lhs
   access comes first). Operands with no bound input get a placeholder
   variable and are returned in the [missing] list: the caller parses
   the statement first, so a syntax error wins over a missing binding
   (whose scanned order may be garbage anyway). *)
let build_env req =
  match P.scan_tensors req.expr with
  | [] -> serve_error "E_SERVE_EXPR" "no tensor access found in %S" req.expr
  | (result_name, _) :: _ as scanned ->
      let bound name = List.assoc_opt name req.inputs in
      let rec vars acc missing = function
        | [] -> Ok (List.rev acc, List.rev missing)
        | (name, order) :: rest -> (
            if name = result_name then
              let fmt =
                match req.result_format with
                | Some f -> f
                | None -> Format.dense order
              in
              if Format.order fmt <> order then
                serve_error "E_SERVE_INPUT"
                  ~context:[ ("tensor", name) ]
                  "result format has order %d but %s is accessed with %d indices"
                  (Format.order fmt) name order
              else
                vars ((name, Tensor_var.make name ~order ~format:fmt) :: acc) missing rest
            else
              match bound name with
              | None ->
                  vars
                    ((name, Tensor_var.make name ~order ~format:(Format.dense order)) :: acc)
                    (name :: missing) rest
              | Some tensor ->
                  if Tensor.order tensor <> order then
                    serve_error "E_SERVE_INPUT"
                      ~context:[ ("tensor", name) ]
                      "input %s has order %d but is accessed with %d indices" name
                      (Tensor.order tensor) order
                  else
                    vars ((name, Tensor_var.make name ~order ~format:(Tensor.format tensor)) :: acc)
                      missing rest)
      in
      (* Reject stray bindings early: a misspelled operand otherwise
         surfaces later as a confusing missing-operand error. *)
      let stray =
        List.find_opt (fun (name, _) -> not (List.mem_assoc name scanned)) req.inputs
      in
      (match stray with
      | Some (name, _) ->
          serve_error "E_SERVE_INPUT"
            ~context:[ ("tensor", name) ]
            "input %s does not occur in the expression" name
      | None ->
          if List.mem_assoc result_name req.inputs then
            serve_error "E_SERVE_INPUT"
              ~context:[ ("tensor", result_name) ]
              "the result tensor %s must not be bound as an input" result_name
          else vars [] [] scanned)

let apply_directive env sched d =
  let ivar = Taco.ivar in
  match d with
  | Auto -> Ok sched
  | Reorder (a, b) ->
      Diag.of_msg ~stage:Diag.Reorder ~code:"E_REORDER"
        (Taco.Schedule.reorder (ivar a) (ivar b) sched)
  | Parallelize v -> Taco.parallelize (ivar v) sched
  | Precompute { expr; over; workspace } -> (
      match P.parse_expr ~tensors:env expr with
      | Error e -> Error e
      | Ok e -> (
          match
            Diag.of_msg ~stage:Diag.Workspace ~code:"E_WORKSPACE"
              (Taco.Schedule.expr_of_index_notation e)
          with
          | Error e -> Error e
          | Ok cexpr ->
              let over = List.map ivar over in
              let w =
                Tensor_var.workspace workspace ~order:(List.length over)
                  ~format:(Format.dense (List.length over))
              in
              Diag.of_msg ~stage:Diag.Workspace ~code:"E_WORKSPACE"
                (Taco.Schedule.precompute_simple ~expr:cexpr ~over ~workspace:w sched)))

let pipeline job =
  let req = job.j_req in
  let ( let* ) = Result.bind in
  let* env, missing = build_env req in
  let result_name = fst (List.hd env) in
  let* stmt = P.parse_statement ~tensors:env req.expr in
  let* () =
    match missing with
    | [] -> Ok ()
    | name :: _ ->
        serve_error "E_SERVE_INPUT"
          ~context:[ ("tensor", name) ]
          "operand %s has no bound input tensor" name
  in
  let* sched =
    Diag.of_msg ~stage:Diag.Concretize ~code:"E_CONCRETIZE"
      (Taco.Schedule.of_index_notation stmt)
  in
  let* sched =
    List.fold_left
      (fun acc d -> match acc with Error _ -> acc | Ok s -> apply_directive env s d)
      (Ok sched) req.directives
  in
  let name = "serve_" ^ result_name in
  let* compiled =
    if List.mem Auto req.directives then
      Result.map fst (Taco.auto_compile ~name sched)
    else Taco.compile ~name sched
  in
  (* The deadline may have passed while compiling; do not burn a worker
     on executing a result nobody is waiting for. *)
  check_deadline job;
  let inputs =
    List.map (fun (n, tensor) -> (List.assoc n env, tensor)) req.inputs
  in
  (* [domains] is the requested chunk count; the kernel executor clamps
     the domains it actually spawns against the process-wide budget, of
     which this pool's workers already hold their share — so a parallel
     kernel inside a busy pool degrades to (deterministically identical)
     sequential chunks instead of oversubscribing the machine. *)
  let* tensor = Taco.run ?domains:req.domains compiled ~inputs in
  Ok (tensor, (Taco.Kernel.info (Taco.kernel compiled)).Taco.Lower.kernel.Taco.Imp.k_name)

(* ------------------------------------------------------------------ *)
(* Tickets                                                             *)
(* ------------------------------------------------------------------ *)

let fresh_ticket () =
  { tk_mutex = Mutex.create (); tk_cond = Condition.create (); tk_state = None }

let resolve ticket outcome =
  Mutex.lock ticket.tk_mutex;
  if ticket.tk_state = None then ticket.tk_state <- Some outcome;
  Condition.broadcast ticket.tk_cond;
  Mutex.unlock ticket.tk_mutex

let await ticket =
  Mutex.lock ticket.tk_mutex;
  let rec wait () =
    match ticket.tk_state with
    | Some outcome -> outcome
    | None ->
        Condition.wait ticket.tk_cond ticket.tk_mutex;
        wait ()
  in
  let outcome = wait () in
  Mutex.unlock ticket.tk_mutex;
  outcome

let poll ticket =
  Mutex.lock ticket.tk_mutex;
  let s = ticket.tk_state in
  Mutex.unlock ticket.tk_mutex;
  s

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

let ms_of_ns ns = Int64.to_int (Int64.div ns 1_000_000L)

(* Classify and record one finished job. Called on the worker, off the
   service mutex for the trace counters. *)
let finish t job ~wait_ns ~run_ns outcome =
  let kind =
    match outcome with
    | Ok _ -> `Completed
    | Error d when d.Diag.code = "E_SERVE_DEADLINE" -> `Timed_out
    | Error _ -> `Failed
  in
  Mutex.lock t.s_mutex;
  (match kind with
  | `Completed -> t.st_completed <- t.st_completed + 1
  | `Timed_out -> t.st_timed_out <- t.st_timed_out + 1
  | `Failed -> t.st_failed <- t.st_failed + 1);
  t.st_total_wait_ns <- Int64.add t.st_total_wait_ns wait_ns;
  t.st_total_run_ns <- Int64.add t.st_total_run_ns run_ns;
  Mutex.unlock t.s_mutex;
  (match kind with
  | `Completed -> Trace.add "serve.completed" 1
  | `Timed_out -> Trace.add "serve.timeout" 1
  | `Failed -> Trace.add "serve.failed" 1);
  resolve job.j_ticket outcome

let process t job =
  let dequeue_ns = Trace.now_ns () in
  let wait_ns = Int64.sub dequeue_ns job.j_enq_ns in
  if Trace.enabled () then begin
    Trace.add "serve.queue_depth" (-1);
    Trace.span_complete ~cat:"serve" ~ts:job.j_enq_ns ~dur_ns:wait_ns "serve.wait"
  end;
  let expired =
    match job.j_deadline_ns with Some d -> dequeue_ns > d | None -> false
  in
  if expired then
    finish t job ~wait_ns ~run_ns:0L
      (Error (deadline_diag ~waited_ms:(ms_of_ns wait_ns) job))
  else begin
    let outcome =
      match
        Trace.with_span ~cat:"serve"
          ~args:[ ("expr", job.j_req.expr) ]
          "serve.exec"
          (fun () -> pipeline job)
      with
      | outcome -> outcome
      | exception Expired d -> Error d
      | exception Diag.Error d -> Error d
      | exception exn ->
          serve_error "E_SERVE_INTERNAL" "unexpected exception: %s"
            (Printexc.to_string exn)
    in
    let run_ns = Int64.sub (Trace.now_ns ()) dequeue_ns in
    let outcome =
      Result.map
        (fun (tensor, kernel_name) -> { tensor; kernel_name; wait_ns; run_ns })
        outcome
    in
    finish t job ~wait_ns ~run_ns outcome
  end

let rec worker t =
  Mutex.lock t.s_mutex;
  let rec next () =
    if not (Queue.is_empty t.s_queue) then Some (Queue.pop t.s_queue)
    else
      match t.s_state with
      | Running ->
          Condition.wait t.s_nonempty t.s_mutex;
          next ()
      | Draining | Stopped -> None
  in
  let job = next () in
  Mutex.unlock t.s_mutex;
  match job with
  | None -> ()
  | Some job ->
      process t job;
      worker t

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let create ?(domains = 1) ?(queue_depth = 64) () =
  if domains < 1 || domains > 128 then
    invalid_arg "Service.create: domains must be in 1..128";
  if queue_depth < 1 then invalid_arg "Service.create: queue_depth must be positive";
  let t =
    {
      s_mutex = Mutex.create ();
      s_nonempty = Condition.create ();
      s_stopped = Condition.create ();
      s_queue = Queue.create ();
      s_depth = queue_depth;
      s_domains = domains;
      s_state = Running;
      s_workers = [];
      (* Account the worker domains against the process-wide budget:
         while the pool is up, kernels (here or elsewhere) see that many
         fewer domains to spawn. Best-effort — a pool larger than the
         machine still comes up, it just leaves no budget for nesting. *)
      s_permits = Taco.Budget.acquire domains;
      st_submitted = 0;
      st_rejected = 0;
      st_completed = 0;
      st_timed_out = 0;
      st_failed = 0;
      st_peak_queue = 0;
      st_total_wait_ns = 0L;
      st_total_run_ns = 0L;
    }
  in
  t.s_workers <- List.init domains (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t ?deadline_ms req =
  let enq_ns = Trace.now_ns () in
  Mutex.lock t.s_mutex;
  let verdict =
    if t.s_state <> Running then `Shutdown
    else if Queue.length t.s_queue >= t.s_depth then `Full
    else begin
      let ticket = fresh_ticket () in
      let deadline_ns =
        Option.map
          (fun ms -> Int64.add enq_ns (Int64.mul (Int64.of_int (max 0 ms)) 1_000_000L))
          deadline_ms
      in
      Queue.push
        {
          j_req = req;
          j_enq_ns = enq_ns;
          j_deadline_ns = deadline_ns;
          j_deadline_ms = deadline_ms;
          j_ticket = ticket;
        }
        t.s_queue;
      t.st_submitted <- t.st_submitted + 1;
      t.st_peak_queue <- max t.st_peak_queue (Queue.length t.s_queue);
      Condition.signal t.s_nonempty;
      `Accepted ticket
    end
  in
  (match verdict with
  | `Shutdown | `Full -> t.st_rejected <- t.st_rejected + 1
  | `Accepted _ -> ());
  Mutex.unlock t.s_mutex;
  match verdict with
  | `Accepted ticket ->
      if Trace.enabled () then begin
        Trace.add "serve.submitted" 1;
        Trace.add "serve.queue_depth" 1
      end;
      Ok ticket
  | `Full ->
      Trace.add "serve.rejected" 1;
      serve_error "E_SERVE_QUEUE_FULL"
        ~context:[ ("queue_depth", string_of_int t.s_depth) ]
        "submission queue is full"
  | `Shutdown ->
      Trace.add "serve.rejected" 1;
      serve_error "E_SERVE_SHUTDOWN" "service is shut down"

let eval t ?deadline_ms req =
  match submit t ?deadline_ms req with Error e -> Error e | Ok ticket -> await ticket

let stats t =
  Mutex.lock t.s_mutex;
  let s =
    {
      submitted = t.st_submitted;
      rejected = t.st_rejected;
      completed = t.st_completed;
      timed_out = t.st_timed_out;
      failed = t.st_failed;
      peak_queue = t.st_peak_queue;
      total_wait_ns = t.st_total_wait_ns;
      total_run_ns = t.st_total_run_ns;
    }
  in
  Mutex.unlock t.s_mutex;
  s

let queue_length t =
  Mutex.lock t.s_mutex;
  let n = Queue.length t.s_queue in
  Mutex.unlock t.s_mutex;
  n

let domains t = t.s_domains

let shutdown t =
  Mutex.lock t.s_mutex;
  let workers =
    match t.s_state with
    | Running ->
        t.s_state <- Draining;
        let w = t.s_workers in
        t.s_workers <- [];
        Condition.broadcast t.s_nonempty;
        w
    | Draining | Stopped -> []
  in
  Mutex.unlock t.s_mutex;
  if workers <> [] then begin
    List.iter Domain.join workers;
    Taco.Budget.release t.s_permits;
    Mutex.lock t.s_mutex;
    t.s_permits <- 0;
    t.s_state <- Stopped;
    Condition.broadcast t.s_stopped;
    Mutex.unlock t.s_mutex
  end
  else begin
    (* Another domain owns the drain; wait for it to finish. *)
    Mutex.lock t.s_mutex;
    while t.s_state <> Stopped do
      Condition.wait t.s_stopped t.s_mutex
    done;
    Mutex.unlock t.s_mutex
  end
