open Imp
module SS = Set.Make (String)
module SM = Map.Make (String)

type config = {
  simplify : bool;
  memset_fusion : bool;
  while_to_for : bool;
  branch_fusion : bool;
  cse : bool;
  licm : bool;
  dce : bool;
}

let all =
  {
    simplify = true;
    memset_fusion = true;
    while_to_for = true;
    branch_fusion = true;
    cse = true;
    licm = true;
    dce = true;
  }

let none =
  {
    simplify = false;
    memset_fusion = false;
    while_to_for = false;
    branch_fusion = false;
    cse = false;
    licm = false;
    dce = false;
  }

(* Rewrite-fire accounting: every pass bumps [fires] at each discrete
   rewrite it performs (a fold, a fused memset, a hoisted decl, a
   dropped statement, ...). [optimize_stats] resets the counter around
   each pass and reports the per-pass totals. The counter is a plain
   module-level ref: concurrent optimizations from several domains
   would interleave counts (stats only — kernel results are
   unaffected). *)
let fires = ref 0

let fire () = incr fires

(* ------------------------------------------------------------------ *)
(* Shared analysis helpers                                             *)
(* ------------------------------------------------------------------ *)

type vkind = Vscalar of dtype | Varray of dtype

(* Flat typing environment of a validated kernel. Validation guarantees
   redeclarations agree on type/arity, so one map covers every scope. *)
let kernel_env (k : kernel) : vkind SM.t =
  let declare env name kind = SM.add name kind env in
  let env =
    List.fold_left
      (fun env p ->
        declare env p.p_name (if p.p_array then Varray p.p_dtype else Vscalar p.p_dtype))
      SM.empty k.k_params
  in
  let rec go_stmts env ss = List.fold_left go_stmt env ss
  and go_stmt env = function
    | Decl (t, v, _) -> declare env v (Vscalar t)
    | Alloc (t, v, _) -> declare env v (Varray t)
    | For (v, _, _, body) | ParallelFor (v, _, _, body, _) ->
        go_stmts (declare env v (Vscalar Int)) body
    | While (_, body) -> go_stmts env body
    | If (_, t, e) -> go_stmts (go_stmts env t) e
    | Assign _ | Store _ | Store_add _ | Store_reduce _ | Realloc _ | Memset _ | Fill _
    | Sort _ | Comment _ ->
        env
  in
  go_stmts env k.k_body

(* Only called on validated kernels; the fallbacks are unreachable. *)
let rec infer_type env = function
  | Var v -> ( match SM.find_opt v env with Some (Vscalar t) -> t | _ -> Int)
  | Int_lit _ -> Int
  | Float_lit _ -> Float
  | Bool_lit _ -> Bool
  | Load (a, _) -> ( match SM.find_opt a env with Some (Varray t) -> t | _ -> Float)
  | Binop ((Add | Sub | Mul | Div | Min | Max), a, _) -> infer_type env a
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> Bool
  | Not _ -> Bool
  | Ternary (_, a, _) -> infer_type env a
  | Round_single _ -> Float

let rec refs_into (scalars, arrays) = function
  | Var v -> (SS.add v scalars, arrays)
  | Int_lit _ | Float_lit _ | Bool_lit _ -> (scalars, arrays)
  | Load (a, i) -> refs_into (scalars, SS.add a arrays) i
  | Binop (_, a, b) -> refs_into (refs_into (scalars, arrays) a) b
  | Not e | Round_single e -> refs_into (scalars, arrays) e
  | Ternary (c, a, b) -> refs_into (refs_into (refs_into (scalars, arrays) c) a) b

let expr_refs e = refs_into (SS.empty, SS.empty) e

let expr_names e =
  let s, a = expr_refs e in
  SS.union s a

let rec expr_has p e =
  p e
  ||
  match e with
  | Var _ | Int_lit _ | Float_lit _ | Bool_lit _ -> false
  | Load (_, i) -> expr_has p i
  | Binop (_, a, b) -> expr_has p a || expr_has p b
  | Not a | Round_single a -> expr_has p a
  | Ternary (c, a, b) -> expr_has p c || expr_has p a || expr_has p b

let has_load e = expr_has (function Load _ -> true | _ -> false) e

let has_div e = expr_has (function Binop (Div, _, _) -> true | _ -> false) e

(* Scalars written by the statements: Assign targets, Decl'd names and
   loop variables, at any nesting depth. *)
let assigned_scalars ss =
  let rec go acc = function
    | Decl (_, v, _) | Assign (v, _) -> SS.add v acc
    | For (v, _, _, body) | ParallelFor (v, _, _, body, _) ->
        List.fold_left go (SS.add v acc) body
    | While (_, body) -> List.fold_left go acc body
    | If (_, t, e) -> List.fold_left go (List.fold_left go acc t) e
    | Store _ | Store_add _ | Store_reduce _ | Alloc _ | Realloc _ | Memset _ | Fill _
    | Sort _ | Comment _ ->
        acc
  in
  List.fold_left go SS.empty ss

(* Arrays written (or replaced) by the statements, at any depth. *)
let mutated_arrays ss =
  let rec go acc = function
    | Store (a, _, _) | Store_add (a, _, _) | Store_reduce (_, a, _, _) | Realloc (a, _)
    | Memset (a, _) | Fill (a, _, _) | Sort (a, _, _)
      ->
        SS.add a acc
    | Alloc (_, a, _) -> SS.add a acc
    | For (_, _, _, body) | ParallelFor (_, _, _, body, _) | While (_, body) ->
        List.fold_left go acc body
    | If (_, t, e) -> List.fold_left go (List.fold_left go acc t) e
    | Decl _ | Assign _ | Comment _ -> acc
  in
  List.fold_left go SS.empty ss

(* Assign targets only (no Decls, no loop variables): used by dead-code
   elimination to keep a declaration alive while a later assignment to
   the same name survives. *)
let assign_targets ss =
  let rec go acc = function
    | Assign (v, _) -> SS.add v acc
    | Decl _ -> acc
    | For (_, _, _, body) | ParallelFor (_, _, _, body, _) | While (_, body) ->
        List.fold_left go acc body
    | If (_, t, e) -> List.fold_left go (List.fold_left go acc t) e
    | Store _ | Store_add _ | Store_reduce _ | Alloc _ | Realloc _ | Memset _ | Fill _
    | Sort _ | Comment _ ->
        acc
  in
  List.fold_left go SS.empty ss

let map_stmt_exprs f =
  let rec go = function
    | Decl (t, v, e) -> Decl (t, v, f e)
    | Assign (v, e) -> Assign (v, f e)
    | Store (a, i, x) -> Store (a, f i, f x)
    | Store_add (a, i, x) -> Store_add (a, f i, f x)
    | Store_reduce (r, a, i, x) -> Store_reduce (r, a, f i, f x)
    | Alloc (t, v, n) -> Alloc (t, v, f n)
    | Realloc (a, n) -> Realloc (a, f n)
    | Memset (a, n) -> Memset (a, f n)
    | Fill (a, n, x) -> Fill (a, f n, f x)
    | Sort (a, lo, hi) -> Sort (a, f lo, f hi)
    | For (v, lo, hi, body) -> For (v, f lo, f hi, List.map go body)
    | ParallelFor (v, lo, hi, body, info) ->
        ParallelFor (v, f lo, f hi, List.map go body, info)
    | While (c, body) -> While (f c, List.map go body)
    | If (c, t, e) -> If (f c, List.map go t, List.map go e)
    | Comment _ as s -> s
  in
  go

(* ------------------------------------------------------------------ *)
(* Pass: simplify                                                      *)
(*                                                                     *)
(* Constant folding, algebraic identities, copy/constant propagation   *)
(* and statically-decided branches. Folding mirrors the executor       *)
(* exactly (same OCaml primitives, including IEEE float semantics), so *)
(* folded kernels produce bit-identical values. Float identities are   *)
(* restricted to exact ones (times/divide by 1.0); x +. 0.0 is NOT the *)
(* identity on -0.0 and is never applied. Integer division folds only  *)
(* with a nonzero literal divisor.                                     *)
(* ------------------------------------------------------------------ *)

let cmp_int op (x : int) (y : int) =
  match op with
  | Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y
  | _ -> assert false

let cmp_float op (x : float) (y : float) =
  match op with
  | Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y
  | _ -> assert false

(* Copy/constant substitution: var -> Var u | literal. A binding dies
   when its target or its source is reassigned. *)
let kill_var v subst =
  SM.filter
    (fun key value -> key <> v && (match value with Var u -> u <> v | _ -> true))
    subst

let kill_set vs subst =
  if SS.is_empty vs then subst
  else
    SM.filter
      (fun key value ->
        (not (SS.mem key vs)) && (match value with Var u -> not (SS.mem u vs) | _ -> true))
      subst

let rec simp_expr env subst e =
  match e with
  | Var v -> (
      match SM.find_opt v subst with
      | Some e' ->
          fire ();
          e'
      | None -> e)
  | Int_lit _ | Float_lit _ | Bool_lit _ -> e
  | Load (a, i) -> Load (a, simp_expr env subst i)
  | Binop (op, a, b) -> simp_binop env op (simp_expr env subst a) (simp_expr env subst b)
  | Not a -> (
      match simp_expr env subst a with
      | Bool_lit b ->
          fire ();
          Bool_lit (not b)
      | Not x ->
          fire ();
          x
      | a' -> Not a')
  | Ternary (c, a, b) -> (
      let c' = simp_expr env subst c in
      let a' = simp_expr env subst a in
      let b' = simp_expr env subst b in
      match c' with
      | Bool_lit true ->
          fire ();
          a'
      | Bool_lit false ->
          fire ();
          b'
      | Not c'' ->
          fire ();
          if a' = b' then a' else Ternary (c'', b', a')
      | _ ->
          if a' = b' then begin
            fire ();
            a'
          end
          else Ternary (c', a', b'))
  | Round_single a -> (
      match simp_expr env subst a with
      | Float_lit v ->
          fire ();
          Float_lit (Int32.float_of_bits (Int32.bits_of_float v))
      | a' -> Round_single a')

(* The fallthrough arm reconstructs [Binop (op, a, b)] from the very
   operands it matched on, so "did a rewrite fire" is a physical
   equality check on the result. *)
and simp_binop env op a b =
  let r = simp_binop_arms env op a b in
  (match r with
  | Binop (op', x, y) when op' = op && x == a && y == b -> ()
  | _ -> fire ());
  r

and simp_binop_arms env op a b =
  match (op, a, b) with
  | Add, Int_lit x, Int_lit y -> Int_lit (x + y)
  | Sub, Int_lit x, Int_lit y -> Int_lit (x - y)
  | Mul, Int_lit x, Int_lit y -> Int_lit (x * y)
  | Div, Int_lit x, Int_lit y when y <> 0 -> Int_lit (x / y)
  | Min, Int_lit x, Int_lit y -> Int_lit (min x y)
  | Max, Int_lit x, Int_lit y -> Int_lit (max x y)
  | Add, e, Int_lit 0 | Add, Int_lit 0, e -> e
  | Sub, e, Int_lit 0 -> e
  | Mul, e, Int_lit 1 | Mul, Int_lit 1, e -> e
  | Mul, _, Int_lit 0 | Mul, Int_lit 0, _ -> Int_lit 0
  | Div, e, Int_lit 1 -> e
  | Add, Float_lit x, Float_lit y -> Float_lit (x +. y)
  | Sub, Float_lit x, Float_lit y -> Float_lit (x -. y)
  | Mul, Float_lit x, Float_lit y -> Float_lit (x *. y)
  | Div, Float_lit x, Float_lit y -> Float_lit (x /. y)
  | Min, Float_lit x, Float_lit y -> Float_lit (Float.min x y)
  | Max, Float_lit x, Float_lit y -> Float_lit (Float.max x y)
  | Mul, e, Float_lit 1. | Mul, Float_lit 1., e -> e
  | Div, e, Float_lit 1. -> e
  | (Eq | Ne | Lt | Le | Gt | Ge), Int_lit x, Int_lit y -> Bool_lit (cmp_int op x y)
  | (Eq | Ne | Lt | Le | Gt | Ge), Float_lit x, Float_lit y -> Bool_lit (cmp_float op x y)
  (* Reflexive comparisons of one and the same integer scalar; floats
     are excluded (NaN <> NaN). *)
  | (Eq | Le | Ge), Var x, Var y when x = y && infer_type env (Var x) = Int -> Bool_lit true
  | (Ne | Lt | Gt), Var x, Var y when x = y && infer_type env (Var x) = Int ->
      Bool_lit false
  | (Min | Max), x, y when x = y -> x
  | And, Bool_lit true, e | And, e, Bool_lit true -> e
  | And, Bool_lit false, _ | And, _, Bool_lit false -> Bool_lit false
  | Or, Bool_lit false, e | Or, e, Bool_lit false -> e
  | Or, Bool_lit true, _ | Or, _, Bool_lit true -> Bool_lit true
  | _ -> Binop (op, a, b)

let record_binding v e subst =
  match e with
  | Var u when u <> v -> SM.add v e subst
  | Int_lit _ | Float_lit _ | Bool_lit _ -> SM.add v e subst
  | _ -> subst

let rec simp_stmts env subst ss =
  match ss with
  | [] -> ([], subst)
  | s :: rest ->
      let s', subst' = simp_stmt env subst s in
      let rest', subst'' = simp_stmts env subst' rest in
      (s' @ rest', subst'')

and simp_stmt env subst s =
  match s with
  | Decl (t, v, e) ->
      let e' = simp_expr env subst e in
      let subst = record_binding v e' (kill_var v subst) in
      ([ Decl (t, v, e') ], subst)
  | Assign (v, e) ->
      let e' = simp_expr env subst e in
      let subst = kill_var v subst in
      if e' = Var v then begin
        fire ();
        ([], subst)
      end
      else ([ Assign (v, e') ], record_binding v e' subst)
  | Store (a, i, x) -> ([ Store (a, simp_expr env subst i, simp_expr env subst x) ], subst)
  | Store_add (a, i, x) ->
      ([ Store_add (a, simp_expr env subst i, simp_expr env subst x) ], subst)
  | Store_reduce (r, a, i, x) ->
      ([ Store_reduce (r, a, simp_expr env subst i, simp_expr env subst x) ], subst)
  | Alloc (t, v, n) -> ([ Alloc (t, v, simp_expr env subst n) ], subst)
  | Realloc (a, n) -> ([ Realloc (a, simp_expr env subst n) ], subst)
  | Memset (a, n) -> ([ Memset (a, simp_expr env subst n) ], subst)
  | Fill (a, n, x) -> ([ Fill (a, simp_expr env subst n, simp_expr env subst x) ], subst)
  | Sort (a, lo, hi) -> ([ Sort (a, simp_expr env subst lo, simp_expr env subst hi) ], subst)
  | Comment _ -> ([ s ], subst)
  | If (c, t, e) -> (
      let c' = simp_expr env subst c in
      match c' with
      | Bool_lit true ->
          fire ();
          simp_stmts env subst t
      | Bool_lit false ->
          fire ();
          simp_stmts env subst e
      | _ ->
          let t', _ = simp_stmts env subst t in
          let e', _ = simp_stmts env subst e in
          let after = kill_set (assigned_scalars (t @ e)) subst in
          if t' = [] && e' = [] then begin
            fire ();
            ([], after)
          end
          else
            (* Branch flip: evaluating the un-negated condition is one
               expression node cheaper, and an empty then-branch gets
               the executor's else-only fast path. *)
            let c', t', e' =
              match c' with Not c'' -> (c'', e', t') | _ -> (c', t', e')
            in
            ([ If (c', t', e') ], after))
  | While (c, body) -> (
      (* Bindings invalidated anywhere in the body are dead for the
         condition and the body alike (the back edge re-executes both). *)
      let inner = kill_set (assigned_scalars body) subst in
      let c' = simp_expr env inner c in
      let body', _ = simp_stmts env inner body in
      match c' with
      | Bool_lit false ->
          fire ();
          ([], inner)
      | _ -> ([ While (c', body') ], inner))
  | For (v, lo, hi, body) ->
      (* lo/hi are evaluated once at entry: entry bindings apply. *)
      let lo' = simp_expr env subst lo in
      let hi' = simp_expr env subst hi in
      let inner = kill_set (SS.add v (assigned_scalars body)) subst in
      let body', _ = simp_stmts env inner body in
      ([ For (v, lo', hi', body') ], inner)
  | ParallelFor (v, lo, hi, body, info) ->
      (* Same as [For]: entry bindings are valid inside (each domain's
         private environment is a copy of the pre-loop state). *)
      let lo' = simp_expr env subst lo in
      let hi' = simp_expr env subst hi in
      let inner = kill_set (SS.add v (assigned_scalars body)) subst in
      let body', _ = simp_stmts env inner body in
      ([ ParallelFor (v, lo', hi', body', info) ], inner)

let simplify_pass k =
  let env = kernel_env k in
  { k with k_body = fst (simp_stmts env SM.empty k.k_body) }

(* ------------------------------------------------------------------ *)
(* Pass: memset fusion                                                 *)
(*                                                                     *)
(* Alloc already zeroes (the executor's Array.make and the C           *)
(* rendering's calloc), so a Memset of the same extent reachable from  *)
(* the Alloc through simple statements that neither write the array    *)
(* nor disturb the extent expression is redundant.                     *)
(* ------------------------------------------------------------------ *)

let memset_fusion_pass k =
  let rec fuse_list ss =
    let ss = List.map fuse_stmt ss in
    let rec go = function
      | [] -> []
      | (Alloc (_, v, n) as a) :: rest -> a :: go (absorb v n rest)
      | s :: rest -> s :: go rest
    and absorb v n ss =
      let n_names = expr_names n in
      let keeps_zero = function
        (* Statements that cannot write v or change what n evaluates to. *)
        | Decl (_, x, _) | Assign (x, _) -> not (SS.mem x n_names)
        (* Fill is an array write like the rest; it is never itself
           absorbed (scan only drops Memset), so a non-bit-zero fill of
           a freshly calloc'd workspace always survives this pass. *)
        | Store (a, _, _) | Store_add (a, _, _) | Store_reduce (_, a, _, _)
        | Realloc (a, _) | Memset (a, _) | Fill (a, _, _) | Sort (a, _, _) ->
            a <> v && not (SS.mem a n_names)
        | Alloc (_, x, _) -> x <> v && not (SS.mem x n_names)
        | Comment _ -> true
        | For _ | ParallelFor _ | While _ | If _ -> false
      in
      let rec scan = function
        | Memset (v', m) :: rest when v' = v && m = n ->
            fire ();
            rest
        | s :: rest when keeps_zero s -> s :: scan rest
        | ss -> ss
      in
      scan ss
    in
    go ss
  and fuse_stmt = function
    | For (v, lo, hi, body) -> For (v, lo, hi, fuse_list body)
    | ParallelFor (v, lo, hi, body, info) -> ParallelFor (v, lo, hi, fuse_list body, info)
    | While (c, body) -> While (c, fuse_list body)
    | If (c, t, e) -> If (c, fuse_list t, fuse_list e)
    | s -> s
  in
  { k with k_body = fuse_list k.k_body }

(* ------------------------------------------------------------------ *)
(* Pass: while -> for                                                  *)
(*                                                                     *)
(* while (p < bound) { body; p = p + 1 }  with p not otherwise written *)
(* and bound invariant becomes  for (p = p; p < bound; p++) { body }   *)
(* followed by p = max(p, bound): the executor's for loop leaves the   *)
(* slot at the last iteration's value (or untouched on a zero-trip     *)
(* loop), and tail merge loops read the position variable afterwards.  *)
(* The payoff is the executor evaluating the bound once instead of     *)
(* re-running the full condition closure every iteration.              *)
(* ------------------------------------------------------------------ *)

let rec subst_var p q = function
  | Var x when x = p -> Var q
  | (Var _ | Int_lit _ | Float_lit _ | Bool_lit _) as e -> e
  | Load (a, i) -> Load (a, subst_var p q i)
  | Binop (op, a, b) -> Binop (op, subst_var p q a, subst_var p q b)
  | Not e -> Not (subst_var p q e)
  | Ternary (c, t, e) -> Ternary (subst_var p q c, subst_var p q t, subst_var p q e)
  | Round_single e -> Round_single (subst_var p q e)

let while_to_for_pass k =
  (* The for loop gets a fresh variable rather than reusing [p]: reusing
     it would redeclare a live variable (fine in the flat-scoped
     executor, but it renders as self-initializing shadowing in C). [p]
     itself is then untouched by the loop, so the fix-up reads its entry
     value: max(p, bound) is [bound] if the loop ran (p < bound) and [p]
     unchanged otherwise — exactly where the while leaves it. *)
  let used = ref (SM.fold (fun name _ acc -> SS.add name acc) (kernel_env k) SS.empty) in
  let counter = ref 0 in
  let fresh () =
    let rec next () =
      let n = Printf.sprintf "_c%d" !counter in
      incr counter;
      if SS.mem n !used then next ()
      else begin
        used := SS.add n !used;
        n
      end
    in
    next ()
  in
  let rec rw_list ss = List.concat_map rw_stmt ss
  and rw_stmt = function
    | For (v, lo, hi, body) -> [ For (v, lo, hi, rw_list body) ]
    | ParallelFor (v, lo, hi, body, info) -> [ ParallelFor (v, lo, hi, rw_list body, info) ]
    | If (c, t, e) -> [ If (c, rw_list t, rw_list e) ]
    | While (c, body) -> (
        let body = rw_list body in
        match (c, List.rev body) with
        | ( Binop (Lt, Var p, bound),
            Assign (p', Binop (Add, Var p'', Int_lit 1)) :: rev_init )
          when p = p' && p = p'' ->
            let init = List.rev rev_init in
            let asg = assigned_scalars init in
            let b_scalars, b_arrays = expr_refs bound in
            let convertible =
              (not (SS.mem p asg))
              && SS.is_empty (SS.inter b_scalars asg)
              && SS.is_empty (SS.inter b_arrays (mutated_arrays init))
              && not (SS.mem p b_scalars)
            in
            if convertible then begin
              fire ();
              let q = fresh () in
              let init = List.map (map_stmt_exprs (subst_var p q)) init in
              [ For (q, Var p, bound, init); Assign (p, Binop (Max, Var p, bound)) ]
            end
            else [ While (c, body) ]
        | _ -> [ While (c, body) ])
    | s -> [ s ]
  in
  { k with k_body = rw_list k.k_body }

(* ------------------------------------------------------------------ *)
(* Pass: branch-implication fusion                                     *)
(*                                                                     *)
(* Merge-lattice lowering emits a case analysis followed by guarded    *)
(* pointer advances that re-test the comparisons the case analysis     *)
(* just decided:                                                       *)
(*                                                                     *)
(*   if (a && b) { both } else if (a) { left } else if (b) { right }   *)
(*   if (a) pB++;                                                      *)
(*   if (b) pC++;                                                      *)
(*                                                                     *)
(* In every arm of the case analysis the truth of [a] and [b] is       *)
(* already decided (the else of [a && b] plus [a] forces [b] false),   *)
(* so the trailing guards sink into the arms and their re-tests        *)
(* disappear:                                                          *)
(*                                                                     *)
(*   if (a && b) { both; pB++; pC++ }                                  *)
(*   else if (a) { left; pB++ }                                        *)
(*   else if (b) { right; pC++ }                                       *)
(*                                                                     *)
(* A guard sinks only when its condition is decided in every arm of    *)
(* the case analysis — the pass never duplicates an undecided guard —  *)
(* and only when no arm writes an operand (scalar or array) of any     *)
(* condition involved, so the truth values established when the head   *)
(* condition was evaluated still hold where the guard's body lands.    *)
(* Guard conditions containing division are left alone (sinking drops  *)
(* re-evaluations, and a division fault must not be skipped); dropped  *)
(* evaluations of loads fall in the tolerated bounds-fault divergence  *)
(* class. Guard bodies are duplicated at most once per arm, a          *)
(* compile-time cost only.                                             *)
(* ------------------------------------------------------------------ *)

let branch_fusion_pass k =
  let rec conjuncts = function
    | Binop (And, a, b) -> conjuncts a @ conjuncts b
    | e -> [ e ]
  in
  (* [trues] are conjuncts known to hold; each entry of [falses] is a
     conjunct set of which at least one member is false. A conjunct is
     decided false when every other member of such a set is known
     true. *)
  let decide g (trues, falses) =
    let known_true c = List.mem c trues in
    let known_false c =
      List.exists
        (fun f -> List.mem c f && List.for_all (fun x -> x = c || known_true x) f)
        falses
    in
    let gs = conjuncts g in
    if List.for_all known_true gs then Some true
    else if List.exists known_false gs then Some false
    else None
  in
  let try_sink target guard =
    match (target, guard) with
    | If (c, t, e), If (g, gt, ge) when not (has_div g) ->
        let gsc, gar = expr_refs g in
        let csc, car = expr_refs c in
        let cond_scalars = SS.union gsc csc and cond_arrays = SS.union gar car in
        let arms = t @ e in
        let safe =
          SS.is_empty (SS.inter (assigned_scalars arms) cond_scalars)
          && SS.is_empty (SS.inter (mutated_arrays arms) cond_arrays)
        in
        if not safe then None
        else
          let rec sink_arm ctx stmts =
            match decide g ctx with
            | Some true -> Some (stmts @ gt)
            | Some false -> Some (stmts @ ge)
            | None -> (
                match stmts with
                | [ If (c2, t2, e2) ] -> (
                    let trues, falses = ctx in
                    match
                      ( sink_arm (conjuncts c2 @ trues, falses) t2,
                        sink_arm (trues, conjuncts c2 :: falses) e2 )
                    with
                    | Some t2', Some e2' -> Some [ If (c2, t2', e2') ]
                    | _ -> None)
                | _ -> None)
          in
          let ctx_then = (conjuncts c, []) and ctx_else = ([], [ conjuncts c ]) in
          (match (sink_arm ctx_then t, sink_arm ctx_else e) with
          | Some t', Some e' -> Some (If (c, t', e'))
          | _ -> None)
    | _ -> None
  in
  let rec rw_list = function
    | [] -> []
    | s :: rest -> absorb (rw_stmt s) rest
  and rw_stmt = function
    | If (c, t, e) -> If (c, rw_list t, rw_list e)
    | For (v, lo, hi, body) -> For (v, lo, hi, rw_list body)
    | ParallelFor (v, lo, hi, body, info) -> ParallelFor (v, lo, hi, rw_list body, info)
    | While (c, body) -> While (c, rw_list body)
    | s -> s
  and absorb s rest =
    match (s, rest) with
    | (If _ as s), (If _ as g0) :: rest' -> (
        let g = rw_stmt g0 in
        match try_sink s g with
        | Some s' ->
            fire ();
            absorb s' rest'
        | None -> s :: absorb g rest')
    | _ -> s :: rw_list rest
  in
  { k with k_body = rw_list k.k_body }

(* ------------------------------------------------------------------ *)
(* Pass: common subexpression elimination                              *)
(*                                                                     *)
(* Local value numbering over pure scalar expressions (no loads, no    *)
(* division): an expression evaluated two or more times in a straight- *)
(* line region with no intervening write to its operands is computed   *)
(* once into a fresh temporary and the later occurrences read it. The  *)
(* payoff on the interpreted executor is direct: every expression node *)
(* is a closure call, so  jB == j  evaluated three times per merge     *)
(* iteration costs nine calls unoptimized and five once shared.        *)
(* Purity makes soundness trivial — the temporary's value is exactly   *)
(* what each occurrence would have computed, and occurrences are only  *)
(* rewritten while no operand has been reassigned (loop bodies drop    *)
(* every binding their iteration can invalidate before being entered). *)
(* ------------------------------------------------------------------ *)

let cse_pass k =
  let env = kernel_env k in
  let used = ref (SM.fold (fun name _ acc -> SS.add name acc) env SS.empty) in
  let counter = ref 0 in
  let fresh () =
    let rec next () =
      let n = Printf.sprintf "_t%d" !counter in
      incr counter;
      if SS.mem n !used then next ()
      else begin
        used := SS.add n !used;
        n
      end
    in
    next ()
  in
  (* Sharable: a compound pure expression over scalars. Loads are
     excluded (stores would have to invalidate them), and integer
     division is excluded so a fault cannot move across an earlier
     statement's fault. Expressions the executor already compiles to a
     single fused closure — comparisons and float arithmetic whose
     operands are variables or literals — are excluded too: sharing
     them saves nothing, while the temporary's declaration would add a
     statement per iteration. *)
  let atom = function Var _ | Int_lit _ | Float_lit _ | Bool_lit _ -> true | _ -> false in
  let fused_by_executor = function
    | Binop ((Eq | Ne | Lt | Le | Gt | Ge), a, b) -> atom a && atom b
    | Binop ((Add | Sub | Mul | Div | Min | Max), a, b) ->
        infer_type env a = Float && atom a && atom b
    | _ -> false
  in
  let cse_ok e =
    (not (atom e))
    && (not (fused_by_executor e))
    && (not (has_load e))
    && (not (has_div e))
    && not (SS.is_empty (expr_names e))
  in
  (* Candidate subexpressions of [e], outermost first: an outer match
     absorbs its children, so parents are offered before children. *)
  let rec collect_cands acc e =
    let acc = if cse_ok e then acc @ [ e ] else acc in
    match e with
    | Var _ | Int_lit _ | Float_lit _ | Bool_lit _ -> acc
    | Load (_, i) -> collect_cands acc i
    | Binop (_, a, b) -> collect_cands (collect_cands acc a) b
    | Not a | Round_single a -> collect_cands acc a
    | Ternary (c, a, b) -> collect_cands (collect_cands (collect_cands acc c) a) b
  in
  (* Occurrences of [e] in [x]; a whole-expression match does not
     descend (the occurrence is replaced as a unit). *)
  let rec count_expr e x =
    if x = e then 1
    else
      match x with
      | Var _ | Int_lit _ | Float_lit _ | Bool_lit _ -> 0
      | Load (_, i) -> count_expr e i
      | Binop (_, a, b) -> count_expr e a + count_expr e b
      | Not a | Round_single a -> count_expr e a
      | Ternary (c, a, b) -> count_expr e c + count_expr e a + count_expr e b
  in
  (* Occurrences of [e] reachable from the list head before any write
     to one of its operand scalars. Branch-local kills stop the count
     inside that branch only (the rewrite phase re-checks kills at
     statement granularity, so an overcount merely materializes a
     temporary with fewer live uses than estimated — sound, just not
     profitable). Loops whose body writes an operand contribute
     nothing and end the scan. *)
  let rec count_stmts e vars ss =
    match ss with
    | [] -> 0
    | s :: rest ->
        let n, stop = count_stmt e vars s in
        if stop then n else n + count_stmts e vars rest
  and count_stmt e vars = function
    | Decl (_, v, x) | Assign (v, x) -> (count_expr e x, SS.mem v vars)
    | Alloc (_, v, n) -> (count_expr e n, SS.mem v vars)
    | Store (_, i, x) | Store_add (_, i, x) | Store_reduce (_, _, i, x) | Fill (_, i, x) ->
        (count_expr e i + count_expr e x, false)
    | Realloc (_, n) | Memset (_, n) -> (count_expr e n, false)
    | Sort (_, lo, hi) -> (count_expr e lo + count_expr e hi, false)
    | Comment _ -> (0, false)
    | If (c, t, el) ->
        let kills = not (SS.is_empty (SS.inter (assigned_scalars (t @ el)) vars)) in
        (count_expr e c + count_stmts e vars t + count_stmts e vars el, kills)
    | While (c, body) ->
        if SS.is_empty (SS.inter (assigned_scalars body) vars) then
          (count_expr e c + count_stmts e vars body, false)
        else (0, true)
    | For (v, lo, hi, body) | ParallelFor (v, lo, hi, body, _) ->
        let n = count_expr e lo + count_expr e hi in
        if SS.is_empty (SS.inter (SS.add v (assigned_scalars body)) vars) then
          (n + count_stmts e vars body, false)
        else (n, true)
  in
  (* avail: association list from expression to the temporary holding
     its value, valid at the current program point. *)
  let rec rw avail e =
    match List.assoc_opt e avail with
    | Some t -> Var t
    | None -> (
        match e with
        | Var _ | Int_lit _ | Float_lit _ | Bool_lit _ -> e
        | Load (a, i) -> Load (a, rw avail i)
        | Binop (op, a, b) -> Binop (op, rw avail a, rw avail b)
        | Not a -> Not (rw avail a)
        | Round_single a -> Round_single (rw avail a)
        | Ternary (c, a, b) -> Ternary (rw avail c, rw avail a, rw avail b))
  in
  let kill vs avail =
    if SS.is_empty vs then avail
    else List.filter (fun (e, _) -> SS.is_empty (SS.inter (expr_names e) vs)) avail
  in
  let kill1 v = kill (SS.singleton v) in
  (* Expressions a statement evaluates unconditionally at its own list
     level — the anchor positions where a new temporary may be
     introduced (dominating every later occurrence). While conditions
     re-evaluate per iteration and are left to licm. *)
  let immediate_exprs = function
    | Decl (_, _, e) | Assign (_, e) | Alloc (_, _, e) | Realloc (_, e) | Memset (_, e) ->
        [ e ]
    | Store (_, i, x) | Store_add (_, i, x) | Store_reduce (_, _, i, x) | Fill (_, i, x) ->
        [ i; x ]
    | Sort (_, lo, hi) -> [ lo; hi ]
    | If (c, _, _) -> [ c ]
    | For (_, lo, hi, _) | ParallelFor (_, lo, hi, _, _) -> [ lo; hi ]
    | While _ | Comment _ -> []
  in
  let rec go avail ss =
    match ss with
    | [] -> []
    | s :: rest ->
        let decls, avail =
          List.fold_left
            (fun acc e0 ->
              List.fold_left
                (fun (decls, avail) e ->
                  if List.mem_assoc e avail then (decls, avail)
                  else
                    let uses = count_stmts e (expr_names e) (s :: rest) in
                    if uses >= 2 then
                      let () = fire () in
                      let t = fresh () in
                      (decls @ [ Decl (infer_type env e, t, rw avail e) ], (e, t) :: avail)
                    else (decls, avail))
                acc (collect_cands [] e0))
            ([], avail) (immediate_exprs s)
        in
        let s', avail' = rw_stmt avail s in
        decls @ (s' :: go avail' rest)
  and rw_stmt avail s =
    match s with
    | Decl (t, v, e) -> (Decl (t, v, rw avail e), kill1 v avail)
    | Assign (v, e) -> (Assign (v, rw avail e), kill1 v avail)
    | Store (a, i, x) -> (Store (a, rw avail i, rw avail x), avail)
    | Store_add (a, i, x) -> (Store_add (a, rw avail i, rw avail x), avail)
    | Store_reduce (r, a, i, x) -> (Store_reduce (r, a, rw avail i, rw avail x), avail)
    | Alloc (t, v, n) -> (Alloc (t, v, rw avail n), kill1 v avail)
    | Realloc (a, n) -> (Realloc (a, rw avail n), avail)
    | Memset (a, n) -> (Memset (a, rw avail n), avail)
    | Fill (a, n, x) -> (Fill (a, rw avail n, rw avail x), avail)
    | Sort (a, lo, hi) -> (Sort (a, rw avail lo, rw avail hi), avail)
    | Comment _ -> (s, avail)
    | If (c, t, e) ->
        let c' = rw avail c in
        let t' = go avail t in
        let e' = go avail e in
        (If (c', t', e'), kill (assigned_scalars (t @ e)) avail)
    | While (c, body) ->
        (* The back edge re-executes condition and body with whatever
           the body wrote: only bindings the body cannot invalidate
           survive inside. *)
        let avail_in = kill (assigned_scalars body) avail in
        (While (rw avail_in c, go avail_in body), avail_in)
    | For (v, lo, hi, body) ->
        let lo' = rw avail lo and hi' = rw avail hi in
        let avail_in = kill (SS.add v (assigned_scalars body)) avail in
        (For (v, lo', hi', go avail_in body), avail_in)
    | ParallelFor (v, lo, hi, body, info) ->
        let lo' = rw avail lo and hi' = rw avail hi in
        let avail_in = kill (SS.add v (assigned_scalars body)) avail in
        (ParallelFor (v, lo', hi', go avail_in body, info), avail_in)
  in
  { k with k_body = go [] k.k_body }

(* ------------------------------------------------------------------ *)
(* Pass: loop-invariant code motion                                    *)
(*                                                                     *)
(* Hoists invariant compound expressions out of loops into fresh       *)
(* temporaries. Pure index arithmetic (no loads, no division) hoists   *)
(* from anywhere in the body. Expressions containing loads or division *)
(* hoist only from positions that execute on every iteration (the      *)
(* statement spine of a for body, or a while condition), because a     *)
(* zero-trip loop must not evaluate them; for-loop hoists of such      *)
(* expressions are additionally guarded with  lo < hi ? e : 0  so the  *)
(* load happens exactly when the original loop would have run it.      *)
(* ------------------------------------------------------------------ *)

let licm_pass k =
  let env = kernel_env k in
  let used = ref (SM.fold (fun name _ acc -> SS.add name acc) env SS.empty) in
  let counter = ref 0 in
  let fresh () =
    let rec next () =
      let n = Printf.sprintf "_h%d" !counter in
      incr counter;
      if SS.mem n !used then next ()
      else begin
        used := SS.add n !used;
        n
      end
    in
    next ()
  in
  let invariant ~asg ~muts e =
    let scalars, arrays = expr_refs e in
    SS.is_empty (SS.inter scalars asg) && SS.is_empty (SS.inter arrays muts)
  in
  let compound = function Var _ | Int_lit _ | Float_lit _ | Bool_lit _ -> false | _ -> true in
  (* Top-down maximal collection: an eligible invariant expression is
     taken whole; otherwise its children are searched. [effects_ok]
     permits loads and division (spine positions only). *)
  let rec collect_expr ~effects_ok ~asg ~muts acc e =
    if
      compound e
      && invariant ~asg ~muts e
      && (effects_ok || ((not (has_load e)) && not (has_div e)))
    then e :: acc
    else
      match e with
      | Var _ | Int_lit _ | Float_lit _ | Bool_lit _ -> acc
      | Load (_, i) -> collect_expr ~effects_ok ~asg ~muts acc i
      | Binop (_, a, b) ->
          collect_expr ~effects_ok ~asg ~muts (collect_expr ~effects_ok ~asg ~muts acc a) b
      | Not a | Round_single a -> collect_expr ~effects_ok ~asg ~muts acc a
      | Ternary (c, a, b) ->
          collect_expr ~effects_ok ~asg ~muts
            (collect_expr ~effects_ok ~asg ~muts
               (collect_expr ~effects_ok ~asg ~muts acc c)
               a)
            b
  in
  let rec collect_stmts ~spine ~asg ~muts acc ss =
    List.fold_left (collect_stmt ~spine ~asg ~muts) acc ss
  and collect_stmt ~spine ~asg ~muts acc s =
    let ce acc e = collect_expr ~effects_ok:spine ~asg ~muts acc e in
    match s with
    | Decl (_, _, e) | Assign (_, e) | Realloc (_, e) | Memset (_, e) -> ce acc e
    | Store (_, i, x) | Store_add (_, i, x) | Store_reduce (_, _, i, x) | Fill (_, i, x) ->
        ce (ce acc i) x
    | Alloc (_, _, n) -> ce acc n
    | Sort (_, lo, hi) -> ce (ce acc lo) hi
    | Comment _ -> acc
    | If (c, t, e) ->
        collect_stmts ~spine:false ~asg ~muts
          (collect_stmts ~spine:false ~asg ~muts (ce acc c) t)
          e
    | While (c, body) -> collect_stmts ~spine:false ~asg ~muts (ce acc c) body
    | For (_, lo, hi, body) -> collect_stmts ~spine:false ~asg ~muts (ce (ce acc lo) hi) body
    | ParallelFor (_, lo, hi, _, _) ->
        (* The parallel region is an optimization barrier: expressions
           inside it are never hoisted across it. Only the bounds, which
           evaluate on the spine at entry, are candidates. *)
        ce (ce acc lo) hi
  in
  let dedup cands =
    List.fold_left (fun acc e -> if List.mem e acc then acc else acc @ [ e ]) [] cands
  in
  let zero_lit = function Int -> Int_lit 0 | Float -> Float_lit 0. | Bool -> Bool_lit false in
  let rec replace ~from ~temp e =
    if e = from then temp
    else
      match e with
      | Var _ | Int_lit _ | Float_lit _ | Bool_lit _ -> e
      | Load (a, i) -> Load (a, replace ~from ~temp i)
      | Binop (op, a, b) -> Binop (op, replace ~from ~temp a, replace ~from ~temp b)
      | Not a -> Not (replace ~from ~temp a)
      | Round_single a -> Round_single (replace ~from ~temp a)
      | Ternary (c, a, b) ->
          Ternary (replace ~from ~temp c, replace ~from ~temp a, replace ~from ~temp b)
  in
  let apply_substs substs e =
    List.fold_left (fun e (from, temp) -> replace ~from ~temp e) e substs
  in
  (* guard = Some (lo, hi) wraps load/division hoists of a for loop. *)
  let mk_decls ~guard cands =
    List.fold_left
      (fun (decls, substs) e ->
        fire ();
        let t = infer_type env e in
        let name = fresh () in
        let e' = apply_substs substs e in
        let init =
          match guard with
          | Some (lo, hi) when has_load e' || has_div e' -> (
              match lt lo hi with
              | Bool_lit true -> e'
              | Bool_lit false -> zero_lit t
              | g -> Ternary (g, e', zero_lit t))
          | _ -> e'
        in
        (decls @ [ Decl (t, name, init) ], substs @ [ (e, Var name) ]))
      ([], []) cands
  in
  let rec licm_stmts ss = List.concat_map licm_stmt ss
  and licm_stmt s =
    match s with
    | If (c, t, e) -> [ If (c, licm_stmts t, licm_stmts e) ]
    | ParallelFor (v, lo, hi, body, info) ->
        (* Inner loops still hoist within the parallel body, but nothing
           crosses the parallel boundary itself. *)
        [ ParallelFor (v, lo, hi, licm_stmts body, info) ]
    | For (v, lo, hi, body) ->
        let body = licm_stmts body in
        let asg = SS.add v (assigned_scalars body) in
        let muts = mutated_arrays body in
        let cands =
          dedup (List.rev (collect_stmts ~spine:true ~asg ~muts [] body))
        in
        if cands = [] then [ For (v, lo, hi, body) ]
        else
          let decls, substs = mk_decls ~guard:(Some (lo, hi)) cands in
          decls @ [ For (v, lo, hi, List.map (map_stmt_exprs (apply_substs substs)) body) ]
    | While (c, body) ->
        let body = licm_stmts body in
        let asg = assigned_scalars body in
        let muts = mutated_arrays body in
        (* The condition evaluates at least once, so its invariant loads
           hoist unguarded; body positions may never execute and only
           give up pure arithmetic. *)
        let cands =
          dedup
            (List.rev
               (collect_stmts ~spine:false ~asg ~muts
                  (collect_expr ~effects_ok:true ~asg ~muts [] c)
                  body))
        in
        if cands = [] then [ While (c, body) ]
        else
          let decls, substs = mk_decls ~guard:None cands in
          decls
          @ [
              While
                (apply_substs substs c, List.map (map_stmt_exprs (apply_substs substs)) body);
            ]
    | s -> [ s ]
  in
  { k with k_body = licm_stmts k.k_body }

(* ------------------------------------------------------------------ *)
(* Pass: dead code elimination                                         *)
(*                                                                     *)
(* Backward liveness over scalars. Arrays are never removed, and       *)
(* parameters plus kernel-level declarations stay live at exit: the    *)
(* executor's run returns a reader over the final environment, so      *)
(* top-level names are externally observable. Loop bodies use the      *)
(* conservative "everything the body reads may be live around the back *)
(* edge" rule, refined once (two-pass) so that reads from statements   *)
(* already known dead do not keep others alive. A declaration is only  *)
(* dropped when no surviving later assignment still needs the name to  *)
(* have been declared (Imp.validate's def-before-use is flat).         *)
(* ------------------------------------------------------------------ *)

(* Upward-exposed reads of a statement list: variables that may be read
   before any definite (unconditional) scalar assignment to them. This
   is the gen set for loop liveness — a variable killed at the top of
   every iteration (like a per-iteration temporary) is not live around
   the back edge, which raw [stmt_reads] cannot see. Kills inside
   loops and single If branches are conditional, so they kill nothing;
   an If kills what both branches kill. *)
let rec ue_stmts ss =
  List.fold_left
    (fun (ue, kill) s ->
      let ue_s, kill_s = ue_stmt s in
      (SS.union ue (SS.diff ue_s kill), SS.union kill kill_s))
    (SS.empty, SS.empty) ss

and ue_stmt = function
  | Decl (_, v, e) | Assign (v, e) -> (expr_names e, SS.singleton v)
  | Alloc (_, v, n) -> (expr_names n, SS.singleton v)
  | Store (a, i, x) | Store_add (a, i, x) | Store_reduce (_, a, i, x) | Fill (a, i, x) ->
      (SS.add a (SS.union (expr_names i) (expr_names x)), SS.empty)
  | Realloc (a, n) | Memset (a, n) -> (SS.add a (expr_names n), SS.empty)
  | Sort (a, lo, hi) -> (SS.add a (SS.union (expr_names lo) (expr_names hi)), SS.empty)
  | Comment _ -> (SS.empty, SS.empty)
  | If (c, t, e) ->
      let ue_t, kill_t = ue_stmts t in
      let ue_e, kill_e = ue_stmts e in
      (SS.union (expr_names c) (SS.union ue_t ue_e), SS.inter kill_t kill_e)
  | While (c, body) ->
      let ue_b, _ = ue_stmts body in
      (SS.union (expr_names c) ue_b, SS.empty)
  | For (v, lo, hi, body) ->
      let ue_b, _ = ue_stmts body in
      ( SS.union (expr_names lo) (SS.union (expr_names hi) (SS.remove v ue_b)),
        SS.empty )
  | ParallelFor (v, lo, hi, body, info) ->
      let ue_b, _ = ue_stmts body in
      let meta =
        List.fold_left (fun acc a -> SS.add a acc)
          (match info.par_stage with
          | None -> SS.empty
          | Some st ->
              List.fold_left (fun acc a -> SS.add a acc)
                (SS.add st.pa_counter
                   (match st.pa_pos with None -> SS.empty | Some p -> SS.singleton p))
                st.pa_arrays)
          info.par_private
      in
      ( SS.union meta
          (SS.union (expr_names lo) (SS.union (expr_names hi) (SS.remove v ue_b))),
        SS.empty )

let dce_pass k =
  let protected =
    let from_params =
      List.fold_left (fun acc p -> SS.add p.p_name acc) SS.empty k.k_params
    in
    List.fold_left
      (fun acc s ->
        match s with Decl (_, v, _) | Alloc (_, v, _) -> SS.add v acc | _ -> acc)
      from_params k.k_body
  in
  let re acc e = SS.union acc (expr_names e) in
  let rec go_list ss ~live ~later =
    match ss with
    | [] -> ([], live, later)
    | s :: rest ->
        let rest', live_r, later_r = go_list rest ~live ~later in
        let s', live', later' = go_stmt s ~live:live_r ~later:later_r in
        (s' @ rest', live', later')
  and go_stmt s ~live ~later =
    match s with
    | Decl (_, v, e) ->
        if (not (SS.mem v live)) && (not (SS.mem v later)) && not (SS.mem v protected) then begin
          fire ();
          ([], live, later)
        end
        else ([ s ], re (SS.remove v live) e, later)
    | Assign (v, e) ->
        if (not (SS.mem v live)) && not (SS.mem v protected) then begin
          fire ();
          ([], live, later)
        end
        else ([ s ], re (SS.remove v live) e, SS.add v later)
    | Store (a, i, x) | Store_add (a, i, x) | Store_reduce (_, a, i, x) | Fill (a, i, x) ->
        ([ s ], SS.add a (re (re live i) x), later)
    | Alloc (_, _, n) -> ([ s ], re live n, later)
    | Realloc (a, n) | Memset (a, n) -> ([ s ], SS.add a (re live n), later)
    | Sort (a, lo, hi) -> ([ s ], SS.add a (re (re live lo) hi), later)
    | Comment _ -> ([ s ], live, later)
    | If (c, t, e) ->
        let t', live_t, later_t = go_list t ~live ~later:(SS.union later (assign_targets e)) in
        let e', live_e, later_e = go_list e ~live ~later:(SS.union later (assign_targets t)) in
        if t' = [] && e' = [] then begin
          fire ();
          ([], live, later)
        end
        else
          ( [ If (c, t', e') ],
            re (SS.union live_t live_e) c,
            SS.union later_t later_e )
    | While (c, body) ->
        let later_b = SS.union later (assign_targets body) in
        let out1 = SS.union live (re (fst (ue_stmts body)) c) in
        let body1, _, _ = go_list body ~live:out1 ~later:later_b in
        let out2 = SS.union live (re (fst (ue_stmts body1)) c) in
        let body2, live_in, later_in = go_list body ~live:out2 ~later:later_b in
        ([ While (c, body2) ], re (SS.union live live_in) c, later_in)
    | For (v, lo, hi, body) ->
        let later_b = SS.union later (assign_targets body) in
        let out1 = SS.union live (SS.remove v (fst (ue_stmts body))) in
        let body1, _, _ = go_list body ~live:out1 ~later:later_b in
        let out2 = SS.union live (SS.remove v (fst (ue_stmts body1))) in
        let body2, live_in, later_in = go_list body ~live:out2 ~later:later_b in
        if body2 = [] && (not (SS.mem v live)) && not (SS.mem v protected) then begin
          fire ();
          ([], live, later)
        end
        else ([ For (v, lo, hi, body2) ], re (re (SS.union live live_in) lo) hi, later_in)
    | ParallelFor (v, lo, hi, body, info) ->
        (* The merge reads the stage counter and arrays after the barrier,
           so they stay live at loop exit regardless of downstream code. *)
        let meta =
          List.fold_left (fun acc a -> SS.add a acc)
            (match info.par_stage with
            | None -> SS.empty
            | Some st ->
                List.fold_left (fun acc a -> SS.add a acc)
                  (SS.add st.pa_counter
                     (match st.pa_pos with None -> SS.empty | Some p -> SS.singleton p))
                  st.pa_arrays)
            info.par_private
        in
        let live = SS.union live meta in
        let later_b = SS.union later (assign_targets body) in
        let out1 = SS.union live (SS.remove v (fst (ue_stmts body))) in
        let body1, _, _ = go_list body ~live:out1 ~later:later_b in
        let out2 = SS.union live (SS.remove v (fst (ue_stmts body1))) in
        let body2, live_in, later_in = go_list body ~live:out2 ~later:later_b in
        ( [ ParallelFor (v, lo, hi, body2, info) ],
          re (re (SS.union live live_in) lo) hi,
          later_in )
  in
  let body, _, _ = go_list k.k_body ~live:protected ~later:SS.empty in
  { k with k_body = body }

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let passes config =
  List.filter_map
    (fun (name, enabled, f) -> if enabled then Some (name, f) else None)
    [
      ("simplify", config.simplify, simplify_pass);
      ("memset_fusion", config.memset_fusion, memset_fusion_pass);
      ("while_to_for", config.while_to_for, while_to_for_pass);
      (* branch_fusion runs before cse so sunk guard bodies are in
         place when uses are counted. *)
      ("branch_fusion", config.branch_fusion, branch_fusion_pass);
      (* cse runs after while_to_for (so it cannot disturb the p = p + 1
         pattern) and before licm (an invariant shared temporary then
         hoists like any other invariant declaration). *)
      ("cse", config.cse, cse_pass);
      ("licm", config.licm, licm_pass);
      (* licm introduces copy chains when a guard condition is itself
         invariant at the next level out; a second simplify collapses
         them so dce can drop the intermediate temporaries. *)
      ("simplify/cleanup", config.simplify && config.licm, simplify_pass);
      ("dce", config.dce, dce_pass);
    ]

type pass_stat = {
  ps_pass : string;
  ps_time_ns : int64;
  ps_nodes_before : int;
  ps_nodes_after : int;
  ps_fires : int;
}

module Trace = Taco_support.Trace

let optimize_stats ?(config = all) k =
  match passes config with
  | [] -> Ok (k, [])
  | ps -> (
      match validate k with
      | Error msg -> Error (Printf.sprintf "precondition: %s" msg)
      | Ok () ->
          let rec go k acc = function
            | [] -> Ok (k, List.rev acc)
            | (name, f) :: rest -> (
                let nodes_before = node_count k in
                fires := 0;
                Taco_support.Faultinject.hit ~stage:Taco_support.Diag.Compile "opt.pass";
                let t0 = Trace.now_ns () in
                let k' = f k in
                let dt = Int64.sub (Trace.now_ns ()) t0 in
                let pass_fires = !fires in
                let nodes_after = node_count k' in
                if Trace.active () then
                  Trace.span_complete ~cat:"opt" ~ts:t0 ~dur_ns:dt
                    ~args:
                      [
                        ("nodes_before", string_of_int nodes_before);
                        ("nodes_after", string_of_int nodes_after);
                        ("fires", string_of_int pass_fires);
                      ]
                    ("opt." ^ name);
                let st =
                  {
                    ps_pass = name;
                    ps_time_ns = dt;
                    ps_nodes_before = nodes_before;
                    ps_nodes_after = nodes_after;
                    ps_fires = pass_fires;
                  }
                in
                match validate k' with
                | Error msg -> Error (Printf.sprintf "pass %s broke the kernel: %s" name msg)
                | Ok () -> go k' (st :: acc) rest)
          in
          go k [] ps)

let optimize ?config k = Result.map fst (optimize_stats ?config k)

let optimize_exn ?config k =
  match optimize ?config k with Ok k -> k | Error msg -> invalid_arg ("Opt.optimize: " ^ msg)
