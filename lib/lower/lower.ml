open Taco_ir.Var
module Cin = Taco_ir.Cin
module Semiring = Taco_ir.Semiring
module F = Taco_tensor.Format
module L = Taco_tensor.Level
module Util = Taco_support.Util

type mode = Compute | Assemble of { emit_values : bool; sorted : bool }

type kernel_info = {
  kernel : Imp.kernel;
  inputs : Tensor_var.t list;
  result : Tensor_var.t;
  mode : mode;
}

exception Lower_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Lower_error s)) fmt

let dimension_var tv l = Printf.sprintf "%s%d_dimension" (Tensor_var.name tv) (l + 1)

let pos_var tv l = Printf.sprintf "%s%d_pos" (Tensor_var.name tv) (l + 1)

let crd_var tv l = Printf.sprintf "%s%d_crd" (Tensor_var.name tv) (l + 1)

let vals_var tv = Tensor_var.name tv ^ "_vals"

let scalar_var tv = Tensor_var.name tv ^ "_val"

(* Initial capacity of assembled crd/vals arrays, grown by doubling. *)
let initial_capacity = 1024

type append_info = { counter : string; assemble : bool; emit_values : bool; coord : Imp.expr }

type ctx = {
  bound : (string * Imp.expr) list;  (* index var -> coordinate *)
  cpos : ((string * int) * Imp.expr) list;  (* (tensor, level) -> position *)
  append : append_info option;  (* active append target for the result *)
  track : string option;  (* workspace with coordinate-list tracking (producer side) *)
  wlist : string option;  (* workspace whose list drives the consumer loop *)
}

type state = {
  mutable top : Imp.stmt list;  (* kernel-top statements, in order *)
  mutable allocated : string list;  (* workspaces already allocated *)
  mutable reset_on_read : string list;  (* workspaces restored to zero after reads *)
  mutable has_seen : string list;  (* workspaces with a guard array *)
  mutable counter_declared : bool;
  mutable pos_close : (string option * Imp.stmt) list;
      (* pos-finalize statements keyed by the parent loop variable *)
  mutable append_parent : string option;
      (* parent loop variable of the result's pos finalize, recorded when
         the append state is created (drives the parallel pos merge) *)
  ranges : (string, Imp.expr) Hashtbl.t;
  ws_dims : (string, Imp.expr list) Hashtbl.t;
  mode : mode;
  result : Tensor_var.t;
}

let rec stmt_accesses = function
  | Cin.Assignment { lhs; rhs; _ } -> lhs :: expr_accesses rhs
  | Cin.Forall (_, s) -> stmt_accesses s
  | Cin.Where (c, p) -> stmt_accesses c @ stmt_accesses p
  | Cin.Sequence (a, b) -> stmt_accesses a @ stmt_accesses b

and expr_accesses = function
  | Cin.Literal _ -> []
  | Cin.Access a -> [ a ]
  | Cin.Neg e -> expr_accesses e
  | Cin.Add (a, b) | Cin.Sub (a, b) | Cin.Mul (a, b) | Cin.Div (a, b) ->
      expr_accesses a @ expr_accesses b

let rec rhs_accesses = function
  | Cin.Assignment { rhs; _ } -> expr_accesses rhs
  | Cin.Forall (_, s) -> rhs_accesses s
  | Cin.Where (c, p) -> rhs_accesses c @ rhs_accesses p
  | Cin.Sequence (a, b) -> rhs_accesses a @ rhs_accesses b

let rec assignments = function
  | Cin.Assignment { lhs; op; rhs } -> [ (lhs, op, rhs) ]
  | Cin.Forall (_, s) -> assignments s
  | Cin.Where (c, p) -> assignments c @ assignments p
  | Cin.Sequence (a, b) -> assignments a @ assignments b

let var_at_level (acc : Cin.access) l =
  List.nth acc.indices (F.mode_of_level (Tensor_var.format acc.tensor) l)

(* Storage level of [acc] indexed by variable [v], if any. *)
let level_of_var (acc : Cin.access) v =
  match Util.list_index_of v acc.indices with
  | None -> None
  | Some mode -> Some (F.level_of_mode (Tensor_var.format acc.tensor) mode)

let compressed_at (acc : Cin.access) v =
  match level_of_var acc v with
  | None -> false
  | Some l -> L.equal (F.level (Tensor_var.format acc.tensor) l) L.Compressed

(* Position of [acc] within storage level [level], derived from resolved
   compressed positions and bound dense coordinates. *)
let rec pos_at ctx acc level =
  if level < 0 then Imp.Int_lit 0
  else
    match List.assoc_opt (Tensor_var.name acc.Cin.tensor, level) ctx.cpos with
    | Some p -> p
    | None -> (
        let tv = acc.Cin.tensor in
        match F.level (Tensor_var.format tv) level with
        | L.Dense -> (
            let parent = pos_at ctx acc (level - 1) in
            let v = var_at_level acc level in
            match List.assoc_opt (Index_var.name v) ctx.bound with
            | Some coord ->
                Imp.add (Imp.mul parent (Imp.Var (dimension_var tv level))) coord
            | None ->
                fail
                  "index variable %s of %s is not yet bound: the loop order is \
                   incompatible with the tensor's storage order (reorder first)"
                  (Index_var.name v) (Tensor_var.name tv))
        | L.Compressed ->
            fail
              "compressed level %d of %s is not driven by a loop; if the \
               statement reduces into a sparse result, apply the workspace \
               transformation (precompute) first"
              (level + 1) (Tensor_var.name tv))

let value_of_access ctx (acc : Cin.access) =
  let tv = acc.Cin.tensor in
  if Tensor_var.order tv = 0 && Tensor_var.is_workspace tv then Imp.Var (scalar_var tv)
  else Imp.Load (vals_var tv, pos_at ctx acc (Tensor_var.order tv - 1))

(* Imp expression builders for the semiring's operators. [Ternary]
   renders in C as [(c ? a : b)], so the boolean-encoded ops get
   short-circuit evaluation for free. Values stay doubles throughout:
   the or-and semiring encodes truth as 0./1. *)
let ne0 e = Imp.Binop (Imp.Ne, e, Imp.Float_lit 0.)

let sr_add (sr : Semiring.t) a b =
  match sr.Semiring.add with
  | Semiring.Add_plus -> Imp.Binop (Imp.Add, a, b)
  | Semiring.Add_min -> Imp.Binop (Imp.Min, a, b)
  | Semiring.Add_max -> Imp.Binop (Imp.Max, a, b)
  | Semiring.Add_or ->
      Imp.Ternary (Imp.Binop (Imp.Or, ne0 a, ne0 b), Imp.Float_lit 1., Imp.Float_lit 0.)

let sr_mul (sr : Semiring.t) a b =
  match sr.Semiring.mul with
  | Semiring.Mul_times -> Imp.Binop (Imp.Mul, a, b)
  | Semiring.Mul_plus -> Imp.Binop (Imp.Add, a, b)
  | Semiring.Mul_and ->
      Imp.Ternary (Imp.Binop (Imp.And, ne0 a, ne0 b), Imp.Float_lit 1., Imp.Float_lit 0.)

(* Array accumulation: (+, ×) keeps {!Imp.Store_add}; the other additive
   monoids map to a {!Imp.Store_reduce}. *)
let sr_reduce (sr : Semiring.t) =
  match sr.Semiring.add with
  | Semiring.Add_plus -> None
  | Semiring.Add_min -> Some Imp.Red_min
  | Semiring.Add_max -> Some Imp.Red_max
  | Semiring.Add_or -> Some Imp.Red_or

let rec compile_expr sr ctx = function
  | Cin.Literal v -> Imp.Float_lit v
  | Cin.Access a -> value_of_access ctx a
  | Cin.Neg e ->
      if not (Semiring.is_plus_times sr) then
        fail "negation is not defined under the %s semiring" sr.Semiring.name;
      Imp.Binop (Imp.Sub, Imp.Float_lit 0., compile_expr sr ctx e)
  | Cin.Add (a, b) -> sr_add sr (compile_expr sr ctx a) (compile_expr sr ctx b)
  | Cin.Sub (a, b) ->
      if not (Semiring.is_plus_times sr) then
        fail "subtraction is not defined under the %s semiring" sr.Semiring.name;
      Imp.Binop (Imp.Sub, compile_expr sr ctx a, compile_expr sr ctx b)
  | Cin.Mul (a, b) -> sr_mul sr (compile_expr sr ctx a) (compile_expr sr ctx b)
  | Cin.Div (a, b) ->
      if not (Semiring.is_plus_times sr) then
        fail "division is not defined under the %s semiring" sr.Semiring.name;
      Imp.Binop (Imp.Div, compile_expr sr ctx a, compile_expr sr ctx b)

(* Symbolically exhaust an access in a statement (merge-lattice branch
   bodies): its reads become the semiring zero and the statement
   simplifies. The (+, ×) path keeps the folding {!Cin.simplify} so its
   emitted kernels stay byte-identical. *)
let rec zero_access sr (acc : Cin.access) = function
  | Cin.Assignment { lhs; op; rhs } ->
      let zero = sr.Semiring.zero in
      let substituted =
        Cin.subst_expr ~from:(Cin.Access acc) ~into:(Cin.Literal zero) rhs
      in
      let rhs =
        if Semiring.is_plus_times sr then Cin.simplify substituted
        else
          Cin.simplify_sr ~zero ~one:sr.Semiring.one
            ~annihilates:sr.Semiring.annihilates substituted
      in
      Cin.Assignment { lhs; op; rhs }
  | Cin.Forall (v, s) -> Cin.Forall (v, zero_access sr acc s)
  | Cin.Where (c, p) -> Cin.Where (zero_access sr acc c, zero_access sr acc p)
  | Cin.Sequence (a, b) -> Cin.Sequence (zero_access sr acc a, zero_access sr acc b)

(* Drop statements that became no-ops after zero substitution. *)
let rec prune sr = function
  | Cin.Assignment { op = Cin.Accumulate; rhs = Cin.Literal z; _ }
    when z = sr.Semiring.zero ->
      None
  | Cin.Assignment _ as a -> Some a
  | Cin.Forall (v, s) -> Option.map (fun s -> Cin.Forall (v, s)) (prune sr s)
  | Cin.Where (c, p) -> (
      match prune sr c with
      | None -> None
      | Some c -> (
          match prune sr p with None -> Some c | Some p -> Some (Cin.Where (c, p))))
  | Cin.Sequence (a, b) -> (
      match (prune sr a, prune sr b) with
      | None, None -> None
      | Some a, None -> Some a
      | None, Some b -> Some b
      | Some a, Some b -> Some (Cin.Sequence (a, b)))

let dims_product tv order =
  let rec go l acc =
    if l >= order then acc
    else go (l + 1) (Imp.mul acc (Imp.Var (dimension_var tv l)))
  in
  go 0 (Imp.Int_lit 1)

let crd_capacity_var tv l = Printf.sprintf "%s%d_crd_capacity" (Tensor_var.name tv) (l + 1)

let append_counter_var tv l = Printf.sprintf "p%s%d" (Tensor_var.name tv) (l + 1)

let seen_var name = name ^ "_seen"

let list_var name = name ^ "_list"

let list_size_var name = name ^ "_list_size"

(* The result's single compressed level in Compute/Assemble append mode;
   earlier levels must be dense for assembly. *)
let result_compressed_level tv =
  let fmt = Tensor_var.format tv in
  let order = Tensor_var.order tv in
  let rec go l acc =
    if l >= order then acc
    else
      match F.level fmt l with
      | L.Dense -> go (l + 1) acc
      | L.Compressed -> go (l + 1) (l :: acc)
  in
  match go 0 [] with [] -> None | [ l ] -> Some l | _ :: _ :: _ -> Some (-2)

let lower ?(name = "kernel") ?(splits = []) ?(single_precision = [])
    ?(semiring = Semiring.plus_times) ?parallel ~mode stmt =
  let build () =
    (match Cin.validate stmt with Ok () -> () | Error e -> fail "invalid statement: %s" e);
    let sr = semiring in
    if single_precision <> [] && not (Semiring.is_plus_times sr) then
      fail "mixed precision is only supported under the (+, ×) semiring";
    (* Zero the first [n] elements of a float array: memset when the
       semiring zero is all-zero bits, an explicit fill otherwise
       (min-plus zeroes with +inf, which memset cannot write). *)
    let zeroer arr n =
      if Semiring.zero_is_bits0 sr then Imp.Memset (arr, n)
      else Imp.Fill (arr, n, Imp.Float_lit sr.Semiring.zero)
    in
    (* Accumulate into a float array slot under the semiring add. *)
    let store_acc arr off rhs =
      match sr_reduce sr with
      | None -> Imp.Store_add (arr, off, rhs)
      | Some r -> Imp.Store_reduce (r, arr, off, rhs)
    in
    let result =
      match
        List.filter (fun tv -> not (Tensor_var.is_workspace tv)) (Cin.tensors_written stmt)
      with
      | [ r ] -> r
      | [] -> fail "the statement writes no result tensor"
      | rs ->
          fail "the statement writes %d result tensors; expected one" (List.length rs)
    in
    let all_accesses = Util.dedup_stable (stmt_accesses stmt) in
    let inputs =
      Util.dedup_stable
        (List.filter_map
           (fun (a : Cin.access) ->
             if Tensor_var.is_workspace a.tensor || Tensor_var.equal a.tensor result
             then None
             else Some a.tensor)
           all_accesses)
    in
    (* Index variable ranges from non-workspace accesses. *)
    let ranges : (string, Imp.expr) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (a : Cin.access) ->
        if not (Tensor_var.is_workspace a.tensor) then
          List.iteri
            (fun mode_idx v ->
              let key = Index_var.name v in
              if not (Hashtbl.mem ranges key) then
                let l = F.level_of_mode (Tensor_var.format a.tensor) mode_idx in
                Hashtbl.replace ranges key (Imp.Var (dimension_var a.tensor l)))
            a.indices)
      all_accesses;
    List.iter
      (fun v ->
        if not (Hashtbl.mem ranges (Index_var.name v)) then
          fail "cannot infer the range of index variable %s" (Index_var.name v))
      (Cin.stmt_vars stmt);
    let range v =
      Hashtbl.find ranges (Index_var.name v)
    in
    (* Workspace dimensions (used for allocation and dense offsets). *)
    let ws_dims : (string, Imp.expr list) Hashtbl.t = Hashtbl.create 4 in
    List.iter
      (fun (a : Cin.access) ->
        if Tensor_var.is_workspace a.tensor && Tensor_var.order a.tensor > 0 then
          let key = Tensor_var.name a.tensor in
          if not (Hashtbl.mem ws_dims key) then
            Hashtbl.replace ws_dims key (List.map range a.indices))
      all_accesses;
    let st =
      {
        top = [];
        allocated = [];
        reset_on_read = [];
        has_seen = [];
        counter_declared = false;
        pos_close = [];
        append_parent = None;
        ranges;
        ws_dims;
        mode;
        result;
      }
    in
    let push_top s = st.top <- st.top @ [ s ] in
    (* --- assignment emission ------------------------------------------- *)
    let lower_assignment ctx (lhs : Cin.access) op rhs_cin =
      let rhs = compile_expr sr ctx rhs_cin in
      let tv = lhs.tensor in
      let single = List.exists (Tensor_var.equal tv) single_precision in
      let rhs = if single then Imp.Round_single rhs else rhs in
      (* Restore hoisted workspaces to zero after their values are read. *)
      let resets =
        List.concat_map
          (fun (a : Cin.access) ->
            let wname = Tensor_var.name a.tensor in
            if
              Tensor_var.is_workspace a.tensor
              && List.mem wname st.reset_on_read
              && Tensor_var.order a.tensor > 0
            then begin
              let off = pos_at ctx a (Tensor_var.order a.tensor - 1) in
              Imp.Store (vals_var a.tensor, off, Imp.Float_lit sr.Semiring.zero)
              ::
              (if List.mem wname st.has_seen then
                 [ Imp.Store (seen_var wname, off, Imp.Bool_lit false) ]
               else [])
            end
            else [])
          (Util.dedup_stable (expr_accesses rhs_cin))
      in
      let main =
        if Tensor_var.order tv = 0 && Tensor_var.is_workspace tv then
          match (op, single) with
          | Cin.Assign, _ -> [ Imp.Assign (scalar_var tv, rhs) ]
          | Cin.Accumulate, false ->
              [ Imp.Assign (scalar_var tv, sr_add sr (Imp.Var (scalar_var tv)) rhs) ]
          | Cin.Accumulate, true ->
              [
                Imp.Assign
                  ( scalar_var tv,
                    Imp.Round_single (Imp.Binop (Imp.Add, Imp.Var (scalar_var tv), rhs)) );
              ]
        else if F.is_all_dense (Tensor_var.format tv) then begin
          let off = pos_at ctx lhs (Tensor_var.order tv - 1) in
          let store =
            match (op, single) with
            | Cin.Assign, _ -> Imp.Store (vals_var tv, off, rhs)
            | Cin.Accumulate, false -> store_acc (vals_var tv) off rhs
            | Cin.Accumulate, true ->
                (* Round after every accumulation, as 32-bit storage would. *)
                Imp.Store
                  ( vals_var tv,
                    off,
                    Imp.Round_single (Imp.Binop (Imp.Add, Imp.Load (vals_var tv, off), rhs)) )
          in
          (* Workspace coordinate tracking during assembly (Fig. 8). *)
          let wname = Tensor_var.name tv in
          if ctx.track = Some wname then
            [
              Imp.If
                ( Imp.Not (Imp.Load (seen_var wname, off)),
                  [
                    Imp.Store (seen_var wname, off, Imp.Bool_lit true);
                    Imp.Store (list_var wname, Imp.Var (list_size_var wname), off);
                    Imp.Assign
                      (list_size_var wname, Imp.add (Imp.Var (list_size_var wname)) (Imp.Int_lit 1));
                  ],
                  [] );
              store;
            ]
          else [ store ]
        end
        else
          (* Compressed result. *)
          match ctx.append with
          | Some ap ->
              let l =
                match result_compressed_level tv with
                | Some l when l >= 0 -> l
                | Some _ | None -> fail "unsupported result format for append"
              in
              (if op = Cin.Accumulate then
                 fail
                   "cannot accumulate into a sparse result while appending; \
                    apply the workspace transformation (precompute)");
              let grow =
                if ap.assemble then
                  [
                    Imp.If
                      ( Imp.Binop (Imp.Ge, Imp.Var ap.counter, Imp.Var (crd_capacity_var tv l)),
                        [
                          Imp.Assign
                            (crd_capacity_var tv l, Imp.mul (Imp.Var (crd_capacity_var tv l)) (Imp.Int_lit 2));
                          Imp.Realloc (crd_var tv l, Imp.Var (crd_capacity_var tv l));
                        ]
                        @ (if ap.emit_values then
                             [ Imp.Realloc (vals_var tv, Imp.Var (crd_capacity_var tv l)) ]
                           else []),
                        [] );
                    Imp.Store (crd_var tv l, Imp.Var ap.counter, ap.coord);
                  ]
                else []
              in
              let value =
                if ap.emit_values then [ Imp.Store (vals_var tv, Imp.Var ap.counter, rhs) ]
                else []
              in
              grow @ value
              @ [ Imp.Assign (ap.counter, Imp.add (Imp.Var ap.counter) (Imp.Int_lit 1)) ]
          | None -> (
              let pos = pos_at ctx lhs (Tensor_var.order tv - 1) in
              match (op, single) with
              | Cin.Assign, _ -> [ Imp.Store (vals_var tv, pos, rhs) ]
              | Cin.Accumulate, false -> [ store_acc (vals_var tv) pos rhs ]
              | Cin.Accumulate, true ->
                  [
                    Imp.Store
                      ( vals_var tv,
                        pos,
                        Imp.Round_single
                          (Imp.Binop (Imp.Add, Imp.Load (vals_var tv, pos), rhs)) );
                  ])
      in
      main @ resets
    in
    (* --- forall lowering ------------------------------------------------ *)
    let rec lower_stmt ctx = function
      | Cin.Assignment { lhs; op; rhs } -> lower_assignment ctx lhs op rhs
      | Cin.Forall (v, body) -> lower_forall ctx v body
      | Cin.Where (c, p) -> lower_where ctx c p
      | Cin.Sequence (a, b) -> lower_stmt ctx a @ lower_stmt ctx b
    and lower_forall ctx v body =
      let vname = Index_var.name v in
      let body_accs = Util.dedup_stable (stmt_accesses body) in
      (* Sparse iterators at v among the operands. *)
      let sparse_iters =
        List.filter
          (fun (a : Cin.access) ->
            (not (Tensor_var.equal a.tensor st.result)) && compressed_at a v)
          body_accs
      in
      let result_acc =
        List.find_opt (fun (a : Cin.access) -> Tensor_var.equal a.tensor st.result) body_accs
      in
      let result_level_at_v =
        match result_acc with
        | Some a when compressed_at a v -> level_of_var a v
        | Some _ | None -> None
      in
      let bind_coord coord = (vname, coord) :: ctx.bound in
      (* Lower a lattice-branch body: exhaust absent iterators, prune. *)
      let branch ctx' present =
        let absent =
          List.filter
            (fun (a : Cin.access) -> not (List.memq a present))
            sparse_iters
        in
        let body' = List.fold_left (fun b a -> zero_access sr a b) body absent in
        match prune sr body' with None -> [] | Some b -> lower_stmt ctx' b
      in
      (* Close a pending pos-finalize whose parent loop is v. *)
      let closes () =
        let mine, rest =
          List.partition (fun (parent, _) -> parent = Some vname) st.pos_close
        in
        st.pos_close <- rest;
        List.map snd mine
      in
      (* Create the append state for a compressed result driven by v. *)
      let make_append (lhs_acc : Cin.access) coord =
        let tv = lhs_acc.tensor in
        let l =
          match result_compressed_level tv with
          | Some l when l >= 0 -> l
          | Some _ -> fail "results with several compressed levels are not supported"
          | None -> fail "internal: append into dense result"
        in
        (* Scatter check: an enclosing loop that is not a result index
           would revisit positions (taco's unsupported case; fixed by the
           workspace transformation). *)
        List.iter
          (fun (bv, _) ->
            if not (List.exists (fun iv -> Index_var.name iv = bv) lhs_acc.indices) then
              fail
                "assignment into compressed result %s under loop %s scatters \
                 into sparse storage; apply the workspace transformation \
                 (precompute)"
                (Tensor_var.name tv) bv)
          ctx.bound;
        let counter = append_counter_var tv l in
        if not st.counter_declared then begin
          st.counter_declared <- true;
          push_top (Imp.Decl (Imp.Int, counter, Imp.Int_lit 0))
        end;
        (* Register the pos finalize in the parent loop. *)
        let parent_key, parent_pos =
          if l = 0 then (None, Imp.Int_lit 0)
          else
            let pv = var_at_level lhs_acc (l - 1) in
            (Some (Index_var.name pv), pos_at ctx lhs_acc (l - 1))
        in
        st.append_parent <- parent_key;
        if not (List.exists (fun (k, _) -> k = parent_key) st.pos_close) then
          st.pos_close <-
            ( parent_key,
              Imp.Store (pos_var tv l, Imp.add parent_pos (Imp.Int_lit 1), Imp.Var counter) )
            :: st.pos_close;
        let assemble, emit_values =
          match st.mode with
          | Compute -> (false, true)
          | Assemble { emit_values; _ } -> (true, emit_values)
        in
        { counter; assemble; emit_values; coord }
      in
      let iter_names =
        List.map
          (fun (a : Cin.access) ->
            let l = Option.get (level_of_var a v) in
            (a, l, Printf.sprintf "p%s%d" (Tensor_var.name a.Cin.tensor) (l + 1)))
          sparse_iters
      in
      let pos_load (a, l, _) side =
        let parent = pos_at ctx a (l - 1) in
        let idx = if side = `Lo then parent else Imp.add parent (Imp.Int_lit 1) in
        Imp.Load (pos_var a.Cin.tensor l, idx)
      in
      match iter_names with
      | [] -> (
          match result_level_at_v with
          | Some l when l >= 0 -> (
              let lhs_acc = Option.get result_acc in
              match st.mode with
              | Compute ->
                  (* Result-index-driven loop (Fig. 1d consumer). *)
                  let pvar = Printf.sprintf "p%s%d" (Tensor_var.name st.result) (l + 1) in
                  let parent = pos_at ctx lhs_acc (l - 1) in
                  let ctx' =
                    {
                      ctx with
                      bound = bind_coord (Imp.Var vname);
                      cpos = ((Tensor_var.name st.result, l), Imp.Var pvar) :: ctx.cpos;
                    }
                  in
                  let inner = lower_stmt ctx' body in
                  let cl = closes () in
                  [
                    Imp.For
                      ( pvar,
                        Imp.Load (pos_var st.result l, parent),
                        Imp.Load (pos_var st.result l, Imp.add parent (Imp.Int_lit 1)),
                        (Imp.Decl (Imp.Int, vname, Imp.Load (crd_var st.result l, Imp.Var pvar))
                         :: inner)
                        @ cl );
                  ]
              | Assemble { sorted; _ } -> (
                  (* Workspace-coordinate-list-driven loop (Fig. 8). *)
                  match ctx.wlist with
                  | None ->
                      fail
                        "cannot assemble the index of %s from a dense expression \
                         without a workspace; precompute into a workspace first"
                        (Tensor_var.name st.result)
                  | Some w ->
                      let q = Printf.sprintf "p%s_list" w in
                      let ap = make_append lhs_acc (Imp.Var vname) in
                      let ctx' =
                        { ctx with bound = bind_coord (Imp.Var vname); append = Some ap }
                      in
                      let inner = lower_stmt ctx' body in
                      let cl = closes () in
                      (if sorted then
                         [ Imp.Sort (list_var w, Imp.Int_lit 0, Imp.Var (list_size_var w)) ]
                       else [])
                      @ [
                          Imp.For
                            ( q,
                              Imp.Int_lit 0,
                              Imp.Var (list_size_var w),
                              (Imp.Decl (Imp.Int, vname, Imp.Load (list_var w, Imp.Var q))
                               :: inner)
                              @ cl );
                        ]))
          | Some _ | None -> (
              (* Dense loop over the variable's range, optionally
                 strip-mined. *)
              let ctx' = { ctx with bound = bind_coord (Imp.Var vname) } in
              let inner = lower_stmt ctx' body in
              let cl = closes () in
              match List.find_opt (fun (w, _) -> Index_var.equal w v) splits with
              | None -> [ Imp.For (vname, Imp.Int_lit 0, range v, inner @ cl) ]
              | Some (_, factor) when factor <= 0 ->
                  fail "split factor for %s must be positive" vname
              | Some (_, factor) ->
                  let outer = vname ^ "_o" and inner_v = vname ^ "_i" in
                  let n = range v in
                  let trip =
                    Imp.Binop
                      (Imp.Div, Imp.add n (Imp.Int_lit (factor - 1)), Imp.Int_lit factor)
                  in
                  [
                    Imp.For
                      ( outer,
                        Imp.Int_lit 0,
                        trip,
                        [
                          Imp.For
                            ( inner_v,
                              Imp.Int_lit 0,
                              Imp.Int_lit factor,
                              [
                                Imp.Decl
                                  ( Imp.Int,
                                    vname,
                                    Imp.add
                                      (Imp.mul (Imp.Var outer) (Imp.Int_lit factor))
                                      (Imp.Var inner_v) );
                                Imp.If (Imp.lt (Imp.Var vname) n, inner @ cl, []);
                              ] );
                        ] );
                  ]))
      | _ :: _ when List.exists (fun (w, _) -> Index_var.equal w v) splits ->
          fail
            "cannot strip-mine %s: it drives sparse iteration (only dense loops \
             can be split)"
            vname
      | _ :: _ -> (
          (* Coiteration: find the one assignment whose rhs merges them. *)
          let lattice_expr =
            let holding =
              List.filter
                (fun (_, _, rhs) ->
                  let rhs_accs = expr_accesses rhs in
                  List.exists
                    (fun (a : Cin.access) ->
                      List.exists
                        (fun (b : Cin.access) -> Cin.equal_expr (Cin.Access a) (Cin.Access b))
                        rhs_accs)
                    sparse_iters)
                (assignments body)
            in
            match holding with
            | [ (_, _, rhs) ] -> rhs
            | [] -> fail "internal: sparse iterators not found in any assignment"
            | _ ->
                fail
                  "sparse operands of %s are merged across several assignments; \
                   restructure the schedule (split_forall)"
                  vname
          in
          let sparse_id (a : Cin.access) =
            let rec idx i = function
              | [] -> None
              | (b, _, _) :: rest ->
                  if Cin.equal_expr (Cin.Access a) (Cin.Access b) then Some i
                  else idx (i + 1) rest
            in
            idx 0 iter_names
          in
          let lattice = Merge_lattice.build ~sparse_id lattice_expr in
          let nth_iter i = List.nth iter_names i in
          let point_accs p = List.map (fun i -> let a, _, _ = nth_iter i in a) p in
          let pos_decls =
            List.map (fun it -> let _, _, pv = it in Imp.Decl (Imp.Int, pv, pos_load it `Lo)) iter_names
          in
          let in_bounds it = Imp.lt (Imp.Var (let _, _, pv = it in pv)) (pos_load it `Hi) in
          let coord_of it =
            let a, l, pv = it in
            Imp.Load (crd_var a.Cin.tensor l, Imp.Var pv)
          in
          let ctx_for point coord_expr append =
            let cpos =
              List.fold_left
                (fun cp i ->
                  let a, l, pv = nth_iter i in
                  ((Tensor_var.name a.Cin.tensor, l), Imp.Var pv) :: cp)
                ctx.cpos point
            in
            { ctx with bound = bind_coord coord_expr; cpos; append }
          in
          if lattice.needs_full then begin
            match (result_level_at_v, st.mode) with
            | Some _, Assemble _ ->
                fail
                  "cannot assemble a compressed result from an expression with \
                   a dense term; use a dense result or a workspace"
            | Some l, Compute ->
                (* Result-driven loop with tracked sparse operands. *)
                let lhs_acc = Option.get result_acc in
                let pvar = Printf.sprintf "p%s%d" (Tensor_var.name st.result) (l + 1) in
                let parent = pos_at ctx lhs_acc (l - 1) in
                let advances =
                  List.map
                    (fun it ->
                      let _, _, pv = it in
                      Imp.While
                        ( Imp.and_ (in_bounds it) (Imp.lt (coord_of it) (Imp.Var vname)),
                          [ Imp.Assign (pv, Imp.add (Imp.Var pv) (Imp.Int_lit 1)) ] ))
                    iter_names
                in
                let match_flag it = Imp.and_ (in_bounds it) (Imp.eq (coord_of it) (Imp.Var vname)) in
                let with_result_pos c =
                  { c with cpos = ((Tensor_var.name st.result, l), Imp.Var pvar) :: c.cpos }
                in
                let chain =
                  let rec chain_of = function
                    | [] -> branch (with_result_pos (ctx_for [] (Imp.Var vname) None)) []
                    | p :: rest ->
                        let cond = Imp.and_list (List.map (fun i -> match_flag (nth_iter i)) p) in
                        let ctxp = with_result_pos (ctx_for p (Imp.Var vname) None) in
                        let body_p = branch ctxp (point_accs p) in
                        [ Imp.If (cond, body_p, chain_of rest) ]
                  in
                  chain_of lattice.points
                in
                let cl = closes () in
                pos_decls
                @ [
                    Imp.For
                      ( pvar,
                        Imp.Load (pos_var st.result l, parent),
                        Imp.Load (pos_var st.result l, Imp.add parent (Imp.Int_lit 1)),
                        (Imp.Decl (Imp.Int, vname, Imp.Load (crd_var st.result l, Imp.Var pvar))
                         :: advances)
                        @ chain @ cl );
                  ]
            | None, _ ->
                (* Dense loop with conditional advancement of the sparse
                   operands. *)
                let flag_name it = let a, _, _ = it in Printf.sprintf "%s%s_match" vname (Tensor_var.name a.Cin.tensor) in
                let flags =
                  List.map
                    (fun it ->
                      Imp.Decl
                        ( Imp.Bool,
                          flag_name it,
                          Imp.and_ (in_bounds it) (Imp.eq (coord_of it) (Imp.Var vname)) ))
                    iter_names
                in
                let rec chain_of = function
                  | [] -> branch (ctx_for [] (Imp.Var vname) ctx.append) []
                  | p :: rest ->
                      let cond =
                        Imp.and_list (List.map (fun i -> Imp.Var (flag_name (nth_iter i))) p)
                      in
                      let body_p = branch (ctx_for p (Imp.Var vname) ctx.append) (point_accs p) in
                      [ Imp.If (cond, body_p, chain_of rest) ]
                in
                let advances =
                  List.map
                    (fun it ->
                      let _, _, pv = it in
                      Imp.If
                        ( Imp.Var (flag_name it),
                          [ Imp.Assign (pv, Imp.add (Imp.Var pv) (Imp.Int_lit 1)) ],
                          [] ))
                    iter_names
                in
                let chain = chain_of lattice.points in
                let cl = closes () in
                pos_decls
                @ [ Imp.For (vname, Imp.Int_lit 0, range v, flags @ chain @ advances @ cl) ]
          end
          else begin
            (* Sparse-driven merge loops, one per lattice point. *)
            let append =
              match result_level_at_v with
              | Some _ ->
                  let lhs_acc = Option.get result_acc in
                  Some (make_append lhs_acc (Imp.Var vname))
              | None -> ctx.append
            in
            let loop_for_point p =
              let its = List.map nth_iter p in
              match (lattice.points, its) with
              | [ _ ], [ it ] ->
                  (* Single sparse operand: a plain positional for loop. *)
                  let a, l, pv = it in
                  let ctx' = ctx_for p (Imp.Var vname) append in
                  [
                    Imp.For
                      ( pv,
                        pos_load it `Lo,
                        pos_load it `Hi,
                        Imp.Decl (Imp.Int, vname, Imp.Load (crd_var a.Cin.tensor l, Imp.Var pv))
                        :: branch ctx' (point_accs p) );
                  ]
              | _ ->
                  let cvar it = let a, _, _ = it in vname ^ Tensor_var.name a.Cin.tensor in
                  let cdecls = List.map (fun it -> Imp.Decl (Imp.Int, cvar it, coord_of it)) its in
                  let vdecl =
                    Imp.Decl (Imp.Int, vname, Imp.min_list (List.map (fun it -> Imp.Var (cvar it)) its))
                  in
                  let rec chain_of = function
                    | [] -> []
                    | q :: rest ->
                        let cond =
                          Imp.and_list
                            (List.map
                               (fun i ->
                                 let it = nth_iter i in
                                 Imp.eq (Imp.Var (cvar it)) (Imp.Var vname))
                               q)
                        in
                        let ctxq = ctx_for q (Imp.Var vname) append in
                        [ Imp.If (cond, branch ctxq (point_accs q), chain_of rest) ]
                  in
                  let subs = Merge_lattice.sub_points lattice p in
                  let advances =
                    List.map
                      (fun it ->
                        let _, _, pv = it in
                        Imp.If
                          ( Imp.eq (Imp.Var (cvar it)) (Imp.Var vname),
                            [ Imp.Assign (pv, Imp.add (Imp.Var pv) (Imp.Int_lit 1)) ],
                            [] ))
                      its
                  in
                  [
                    Imp.While
                      ( Imp.and_list (List.map in_bounds its),
                        cdecls @ [ vdecl ] @ chain_of subs @ advances );
                  ]
            in
            let loops = List.concat_map loop_for_point lattice.points in
            let cl = closes () in
            let inject = function
              | Imp.For (x, lo, hi, body) -> Imp.For (x, lo, hi, body @ cl)
              | Imp.While (c, body) -> Imp.While (c, body @ cl)
              | s -> s
            in
            (* The single-operand for loop declares its own position. *)
            let simple_for =
              match (lattice.points, iter_names) with [ _ ], [ _ ] -> true | _ -> false
            in
            (if simple_for then [] else pos_decls)
            @ (if cl = [] then loops else List.map inject loops)
          end)
    and lower_where ctx c p =
      (* A workspace belongs to the innermost where whose producer writes
         it; skip workspaces owned by a where nested inside [p]. *)
      let rec owned_by_nested tv = function
        | Cin.Assignment _ -> false
        | Cin.Forall (_, s) -> owned_by_nested tv s
        | Cin.Where (c', p') ->
            List.exists (Tensor_var.equal tv) (Cin.tensors_written p')
            || owned_by_nested tv c'
        | Cin.Sequence (a, b) -> owned_by_nested tv a || owned_by_nested tv b
      in
      let workspaces =
        List.filter
          (fun tv -> Tensor_var.is_workspace tv && not (owned_by_nested tv p))
          (Cin.tensors_written p)
      in
      let consumer_input_accesses =
        List.filter
          (fun (a : Cin.access) ->
            (not (Tensor_var.is_workspace a.tensor))
            && not (Tensor_var.equal a.tensor st.result))
          (rhs_accesses c)
      in
      let prelude = ref [] in
      let emit s = prelude := !prelude @ [ s ] in
      let track = ref ctx.track and wlist = ref ctx.wlist in
      List.iter
        (fun w ->
          let wname = Tensor_var.name w in
          if Tensor_var.order w = 0 then begin
            if not (List.mem wname st.allocated) then begin
              st.allocated <- wname :: st.allocated;
              push_top (Imp.Decl (Imp.Float, scalar_var w, Imp.Float_lit sr.Semiring.zero))
            end;
            emit (Imp.Assign (scalar_var w, Imp.Float_lit sr.Semiring.zero))
          end
          else begin
            let dims =
              match Hashtbl.find_opt st.ws_dims wname with
              | Some d -> d
              | None -> fail "internal: workspace %s has no inferred dimensions" wname
            in
            let size = dims_product w (Tensor_var.order w) in
            if not (List.mem wname st.allocated) then begin
              st.allocated <- wname :: st.allocated;
              List.iteri
                (fun l d -> push_top (Imp.Decl (Imp.Int, dimension_var w l, d)))
                dims;
              push_top (Imp.Alloc (Imp.Float, vals_var w, size))
            end;
            (* The workspace's producer access (for its index variables). *)
            let w_vars =
              match
                List.find_opt
                  (fun (a : Cin.access) -> Tensor_var.equal a.tensor w)
                  (stmt_accesses p)
              with
              | Some a -> a.indices
              | None -> []
            in
            (* Covered: the consumer visits every workspace position the
               producer wrote (it copies into the result's index or loops
               densely), so the memset hoists to the kernel top and the
               consumer restores zeros after reading (Fig. 5b). Otherwise
               the workspace is re-zeroed here, inside the enclosing loops
               (Fig. 10). *)
            let covered =
              not
                (List.exists
                   (fun (a : Cin.access) ->
                     List.exists (fun v -> compressed_at a v) w_vars)
                   consumer_input_accesses)
            in
            if covered then begin
              if not (List.mem wname st.reset_on_read) then begin
                st.reset_on_read <- wname :: st.reset_on_read;
                push_top (zeroer (vals_var w) size)
              end
            end
            else emit (zeroer (vals_var w) size);
            (* Coordinate tracking for assembly: the consumer copies this
               workspace into the compressed result. *)
            (match st.mode with
            | Assemble _ ->
                let consumer_copies =
                  List.exists
                    (fun ((lhs : Cin.access), _, rhs) ->
                      Tensor_var.equal lhs.tensor st.result
                      && (not (F.is_all_dense (Tensor_var.format st.result)))
                      && List.exists
                           (fun (a : Cin.access) -> Tensor_var.equal a.tensor w)
                           (expr_accesses rhs))
                    (assignments c)
                in
                if consumer_copies then begin
                  if Tensor_var.order w <> 1 then
                    fail "assembly tracking supports order-1 workspaces only";
                  if not (List.mem wname st.has_seen) then begin
                    st.has_seen <- wname :: st.has_seen;
                    let dim = List.hd dims in
                    push_top (Imp.Alloc (Imp.Bool, seen_var wname, dim));
                    push_top (Imp.Alloc (Imp.Int, list_var wname, dim));
                    push_top (Imp.Decl (Imp.Int, list_size_var wname, Imp.Int_lit 0))
                  end;
                  emit (Imp.Assign (list_size_var wname, Imp.Int_lit 0));
                  track := Some wname;
                  wlist := Some wname
                end
            | Compute -> ())
          end)
        workspaces;
      let stmts_p = lower_stmt { ctx with track = !track } p in
      let stmts_c = lower_stmt { ctx with wlist = !wlist } c in
      !prelude @ stmts_p @ stmts_c
    in
    let ctx0 = { bound = []; cpos = []; append = None; track = None; wlist = None } in
    let body = lower_stmt ctx0 stmt in
    (* --- parallelization ------------------------------------------------ *)
    (* Wrap the kernel-top loop that drives the parallelized index in
       ParallelFor, annotated with what the executor must privatize per
       chunk (workspace arrays) and merge in chunk order (the result's
       append staging). Everything else is safe to share: inputs are
       read-only and non-staged output writes are indexed by the
       parallel variable, hence disjoint across chunks. *)
    let body =
      match parallel with
      | None -> body
      | Some pv ->
          let vname = Index_var.name pv in
          (* The driving loop either binds [vname] itself (dense loop) or
             iterates positions and recovers the coordinate as its first
             declaration (sparse operand-driven loop). *)
          let drives = function
            | Imp.For (x, _, _, inner) -> (
                x = vname
                ||
                match inner with
                | Imp.Decl (Imp.Int, d, _) :: _ -> d = vname
                | _ -> false)
            | _ -> false
          in
          let loop_var, loop_inner =
            match List.filter drives body with
            | [ Imp.For (x, _, _, inner) ] -> (x, inner)
            | [] ->
                fail
                  "cannot parallelize %s: no kernel-top loop drives it (the \
                   variable is merged by coiteration or nested under another \
                   loop; reorder it outermost or apply precompute first)"
                  vname
            | _ -> fail "cannot parallelize %s: several kernel-top loops drive it" vname
          in
          let privates =
            List.concat_map
              (fun wname ->
                if Hashtbl.mem st.ws_dims wname then
                  (wname ^ "_vals")
                  ::
                  (if List.mem wname st.has_seen then [ seen_var wname; list_var wname ]
                   else [])
                else [])
              st.allocated
          in
          let stage =
            if not st.counter_declared then None
            else begin
              let l =
                match result_compressed_level result with
                | Some l when l >= 0 -> l
                | Some _ | None -> fail "internal: append counter without compressed level"
              in
              let assemble, emit_values =
                match st.mode with
                | Compute -> (false, true)
                | Assemble { emit_values; _ } -> (true, emit_values)
              in
              let arrays =
                (if assemble then [ crd_var result l ] else [])
                @ if emit_values then [ vals_var result ] else []
              in
              let pos =
                match st.append_parent with
                | None -> None
                | Some pk when pk = vname ->
                    (* Iteration [x] of the parallel loop finalizes
                       pos[x+1] against the chunk-local counter; the
                       merge rebases those entries by the chunk's global
                       base. This only lines up when the loop variable is
                       the pos parent coordinate itself. *)
                    if loop_var <> vname then
                      fail
                        "cannot parallelize %s: the loop driving it iterates \
                         operand positions while the result's pos array is \
                         finalized per %s coordinate" vname vname
                    else Some (pos_var result l)
                | Some pk ->
                    fail
                      "cannot parallelize %s: the result's pos array is finalized \
                       by the inner loop %s; only the pos parent loop can be \
                       parallelized" vname pk
              in
              Some { Imp.pa_counter = append_counter_var result l; pa_arrays = arrays; pa_pos = pos }
            end
          in
          (* A scalar declared before the loop and reassigned inside it
             is loop-carried state: each chunk would start from the
             pre-loop value rather than the value preceding iterations
             left behind (e.g. the advancing position cursor of a sparse
             operand scanned under a dense loop). The append counter is
             merged explicitly, capacity counters only size chunk-private
             reallocations, and workspace list sizes are reset at the top
             of every iteration; any other carried scalar makes chunked
             execution unsound, so reject it. *)
          let rec assigned acc = function
            | Imp.Assign (n, _) -> n :: acc
            | Imp.Decl _ | Imp.Store _ | Imp.Store_add _ | Imp.Store_reduce _ | Imp.Alloc _
            | Imp.Realloc _ | Imp.Memset _ | Imp.Fill _ | Imp.Sort _ | Imp.Comment _ ->
                acc
            | Imp.For (_, _, _, b) | Imp.ParallelFor (_, _, _, b, _) | Imp.While (_, b) ->
                List.fold_left assigned acc b
            | Imp.If (_, a, b) -> List.fold_left assigned (List.fold_left assigned acc a) b
          in
          let body_assigns = List.fold_left assigned [] loop_inner in
          let rec decls_before acc = function
            | [] -> acc
            | s :: _ when drives s -> acc
            | Imp.Decl (_, n, _) :: rest -> decls_before (n :: acc) rest
            | _ :: rest -> decls_before acc rest
          in
          let pre_scalars = decls_before [] body in
          let carried_ok =
            (match stage with
            | Some s ->
                s.Imp.pa_counter
                :: (match result_compressed_level result with
                   | Some l when l >= 0 -> [ crd_capacity_var result l ]
                   | Some _ | None -> [])
            | None -> [])
            @ List.filter_map
                (fun wname ->
                  if Hashtbl.mem st.ws_dims wname && List.mem wname st.has_seen then
                    Some (list_size_var wname)
                  else None)
                st.allocated
          in
          (match
             List.find_opt
               (fun n -> List.mem n pre_scalars && not (List.mem n carried_ok))
               body_assigns
           with
          | Some n ->
              fail
                "cannot parallelize %s: the loop carries scalar state across \
                 iterations (%s is declared before the loop and updated inside \
                 it), so chunks cannot start independently" vname n
          | None -> ());
          List.map
            (fun s ->
              match s with
              | Imp.For (x, lo, hi, inner) when drives s ->
                  Imp.ParallelFor
                    (x, lo, hi, inner, { Imp.par_private = privates; par_stage = stage })
              | s -> s)
            body
    in
    (* Kernel prelude for the result. *)
    let result_prelude =
      if F.is_all_dense (Tensor_var.format result) then
        if Tensor_var.order result = 0 then
          (* The runtime hands the kernel a bit-zeroed value buffer; only
             a non-bit-zero semiring zero needs an explicit store. *)
          if Semiring.zero_is_bits0 sr then []
          else
            [ Imp.Store (vals_var result, Imp.Int_lit 0, Imp.Float_lit sr.Semiring.zero) ]
        else [ zeroer (vals_var result) (dims_product result (Tensor_var.order result)) ]
      else
        match st.mode with
        | Compute -> []
        | Assemble { emit_values; _ } -> (
            match result_compressed_level result with
            | Some l when l >= 0 ->
                let parent_size =
                  let rec go lvl acc =
                    if lvl >= l then acc
                    else go (lvl + 1) (Imp.mul acc (Imp.Var (dimension_var result lvl)))
                  in
                  go 0 (Imp.Int_lit 1)
                in
                [
                  Imp.Alloc (Imp.Int, pos_var result l, Imp.add parent_size (Imp.Int_lit 1));
                  Imp.Store (pos_var result l, Imp.Int_lit 0, Imp.Int_lit 0);
                  Imp.Decl (Imp.Int, crd_capacity_var result l, Imp.Int_lit initial_capacity);
                  Imp.Alloc (Imp.Int, crd_var result l, Imp.Var (crd_capacity_var result l));
                ]
                @
                if emit_values then
                  [ Imp.Alloc (Imp.Float, vals_var result, Imp.Var (crd_capacity_var result l)) ]
                else []
            | Some _ -> fail "results with several compressed levels cannot be assembled"
            | None -> fail "internal: compressed result without compressed level")
    in
    (* Pending pos closes at the root (sparse vector results). *)
    let root_closes =
      let mine, rest = List.partition (fun (parent, _) -> parent = None) st.pos_close in
      st.pos_close <- rest;
      List.map snd mine
    in
    if st.pos_close <> [] then fail "internal: unplaced pos finalization";
    (* When the parent loop is itself sparse (e.g. the row loop iterates a
       compressed operand mode), rows absent from the operand are never
       visited and their pos entries stay zero; a monotonic fix-up sweep
       closes them. *)
    let pos_fixup =
      match (st.mode, result_compressed_level result) with
      | Assemble _, Some l when l > 0 && st.counter_declared ->
          let parent_size =
            let rec go lvl acc =
              if lvl >= l then acc
              else go (lvl + 1) (Imp.mul acc (Imp.Var (dimension_var result lvl)))
            in
            go 0 (Imp.Int_lit 1)
          in
          [
            Imp.For
              ( "pfix",
                Imp.Int_lit 0,
                parent_size,
                [
                  Imp.If
                    ( Imp.lt
                        (Imp.Load (pos_var result l, Imp.add (Imp.Var "pfix") (Imp.Int_lit 1)))
                        (Imp.Load (pos_var result l, Imp.Var "pfix")),
                      [
                        Imp.Store
                          ( pos_var result l,
                            Imp.add (Imp.Var "pfix") (Imp.Int_lit 1),
                            Imp.Load (pos_var result l, Imp.Var "pfix") );
                      ],
                      [] );
                ] );
          ]
      | (Assemble _ | Compute), _ -> []
    in
    let root_closes = root_closes @ pos_fixup in
    (* Parameters. *)
    let params_of_tensor tv ~output =
      let fmt = Tensor_var.format tv in
      let order = Tensor_var.order tv in
      let assembled_result =
        output && (match st.mode with Assemble _ -> true | Compute -> false)
        && not (F.is_all_dense fmt)
      in
      let level_params =
        List.concat
          (List.init order (fun l ->
               let dim =
                 { Imp.p_name = dimension_var tv l; p_dtype = Imp.Int; p_array = false; p_output = false }
               in
               match F.level fmt l with
               | L.Dense -> [ dim ]
               | L.Compressed ->
                   if assembled_result then [ dim ]
                   else
                     [
                       dim;
                       { Imp.p_name = pos_var tv l; p_dtype = Imp.Int; p_array = true; p_output = output };
                       { Imp.p_name = crd_var tv l; p_dtype = Imp.Int; p_array = true; p_output = output };
                     ]))
      in
      let vals =
        if assembled_result then []
        else [ { Imp.p_name = vals_var tv; p_dtype = Imp.Float; p_array = true; p_output = output } ]
      in
      level_params @ vals
    in
    let params =
      params_of_tensor result ~output:true
      @ List.concat_map (fun tv -> params_of_tensor tv ~output:false) inputs
    in
    let kernel =
      { Imp.k_name = name; k_params = params; k_body = result_prelude @ st.top @ body @ root_closes }
    in
    (match Imp.validate kernel with
    | Ok () -> ()
    | Error e -> fail "internal: generated kernel fails the verifier: %s" e);
    { kernel; inputs; result; mode }
  in
  let module Trace = Taco_support.Trace in
  Trace.with_span ~cat:"lower" ~args:[ ("kernel", name) ] "lower" (fun () ->
      match build () with
      | info ->
          Trace.set_args [ ("nodes", string_of_int (Imp.node_count info.kernel)) ];
          Ok info
      | exception Lower_error msg -> Error msg)
