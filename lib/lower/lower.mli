(** Lowering concrete index notation to imperative sparse code (paper §VI).

    Forall statements become loops over the tensor modes their variable
    indexes: dense loops, single sparse loops, coiterating merge loops
    (driven by {!Merge_lattice}), result-index-driven loops, or
    workspace-coordinate-list loops. Where statements lower to producer
    code followed by consumer code, with workspace allocation, memset
    hoisting (when the consumer covers every written position, the memset
    moves to the kernel top and the consumer restores zeros after
    reading — compare the paper's Fig. 5b and Fig. 10), and, during
    assembly, the coordinate-list/guard-array tracking of Fig. 8.

    Three kernel modes:
    - [Compute]: result indices pre-assembled (Fig. 1d, 5b, 9, 10);
    - [Assemble ~emit_values:false]: assemble result [pos]/[crd] only
      (Fig. 8);
    - [Assemble ~emit_values:true]: fused assembly and compute.

    Reproduced taco limitation, by design: lowering an incrementing
    assignment that scatters into a compressed result (an enclosing
    reduction loop) fails with an error directing the user to the
    workspace transformation — this is the kernel class the paper's
    transformation newly enables. *)

open Taco_ir.Var

type mode =
  | Compute
  | Assemble of { emit_values : bool; sorted : bool }

type kernel_info = {
  kernel : Imp.kernel;
  inputs : Tensor_var.t list;  (** operand tensors, in parameter order *)
  result : Tensor_var.t;
  mode : mode;
}

(** [lower ?name ?splits ~mode stmt] — [stmt] must be validated concrete
    index notation with exactly one non-workspace result tensor.

    [splits] strip-mines the named index variables by the given factors
    (the loop-splitting the paper's conclusion proposes growing concrete
    index notation towards): a dense loop [for v in 0..n) becomes
    [for v_o in 0..ceil(n/f)) for v_i in 0..f) { v = v_o*f + v_i; if (v < n) ... }].
    Only loops that lower densely can be strip-mined; a split on a
    variable that drives sparse iteration is an error.

    [parallel] marks one index variable for parallel execution: the
    kernel-top loop driving it (a dense loop binding the variable, or a
    sparse loop recovering its coordinate) is wrapped in
    {!Imp.ParallelFor}, annotated with the workspace arrays each chunk
    must privatize and the result's append staging (counter, crd/vals
    arrays, pos) the executor concatenates in chunk order. Lowering
    fails (["cannot parallelize …"]) when no kernel-top loop drives the
    variable — it is merged by coiteration or nested inside another
    loop — or when the result's pos array is not finalized against that
    same loop. *)
val lower :
  ?name:string ->
  ?splits:(Taco_ir.Var.Index_var.t * int) list ->
  ?single_precision:Tensor_var.t list ->
  ?semiring:Taco_ir.Semiring.t ->
  ?parallel:Taco_ir.Var.Index_var.t ->
  mode:mode ->
  Taco_ir.Cin.stmt ->
  (kernel_info, string) result

(** [single_precision] lists tensors (typically workspaces) whose stored
    values are rounded to IEEE single precision on every write — the
    mixed-precision facility of paper §III (e.g. accumulate a single
    precision product stream in a double workspace, or vice versa).
    Storage stays 64-bit; only the value range is narrowed, which is what
    determines the numerics. *)

(** [semiring] (default {!Taco_ir.Semiring.plus_times}) reinterprets the
    statement's [+]/[*] as the semiring's add/mul: accumulation becomes
    the additive monoid's reduce, sparsity exploits the semiring zero and
    its annihilator law, and workspace/result zeroing writes the semiring
    zero (an explicit fill when it is not all-zero bits, e.g. min-plus
    +inf). Negation, subtraction, division and mixed precision are only
    defined under (+, ×). *)

(** {2 Parameter naming conventions}

    For a tensor [T] with storage levels 1-based:
    - every level has an [T<l>_dimension] int parameter;
    - compressed levels add [T<l>_pos] and [T<l>_crd] int arrays;
    - values live in [T_vals].

    In [Assemble] mode the result's [pos]/[crd]/[vals] arrays are
    allocated inside the kernel and read back by name; its dimensions
    remain parameters. *)

val dimension_var : Tensor_var.t -> int -> string

val pos_var : Tensor_var.t -> int -> string

val crd_var : Tensor_var.t -> int -> string

val vals_var : Tensor_var.t -> string
