let ctype = function Imp.Int -> "int32_t" | Imp.Float -> "double" | Imp.Bool -> "bool"

let binop_str = function
  | Imp.Add -> "+"
  | Imp.Sub -> "-"
  | Imp.Mul -> "*"
  | Imp.Div -> "/"
  | Imp.Min -> "TACO_MIN"
  | Imp.Max -> "TACO_MAX"
  | Imp.Eq -> "=="
  | Imp.Ne -> "!="
  | Imp.Lt -> "<"
  | Imp.Le -> "<="
  | Imp.Gt -> ">"
  | Imp.Ge -> ">="
  | Imp.And -> "&&"
  | Imp.Or -> "||"

let rec expr buf = function
  | Imp.Var v -> Buffer.add_string buf v
  | Imp.Int_lit n -> Buffer.add_string buf (string_of_int n)
  | Imp.Float_lit v ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" v)
      else Buffer.add_string buf (Printf.sprintf "%.17g" v)
  | Imp.Bool_lit b -> Buffer.add_string buf (if b then "1" else "0")
  | Imp.Load (a, i) ->
      Buffer.add_string buf a;
      Buffer.add_char buf '[';
      expr buf i;
      Buffer.add_char buf ']'
  | Imp.Binop (((Imp.Min | Imp.Max) as op), a, b) ->
      Buffer.add_string buf (binop_str op);
      Buffer.add_char buf '(';
      expr buf a;
      Buffer.add_string buf ", ";
      expr buf b;
      Buffer.add_char buf ')'
  | Imp.Binop (op, a, b) ->
      Buffer.add_char buf '(';
      expr buf a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (binop_str op);
      Buffer.add_char buf ' ';
      expr buf b;
      Buffer.add_char buf ')'
  | Imp.Not e ->
      Buffer.add_string buf "!(";
      expr buf e;
      Buffer.add_char buf ')'
  | Imp.Ternary (c, a, b) ->
      Buffer.add_char buf '(';
      expr buf c;
      Buffer.add_string buf " ? ";
      expr buf a;
      Buffer.add_string buf " : ";
      expr buf b;
      Buffer.add_char buf ')'
  | Imp.Round_single e ->
      Buffer.add_string buf "(double)(float)(";
      expr buf e;
      Buffer.add_char buf ')'

let estr e =
  let buf = Buffer.create 32 in
  expr buf e;
  Buffer.contents buf

let rec stmt buf ind s =
  let pad () = Buffer.add_string buf (String.make (2 * ind) ' ') in
  let line fmt = Printf.ksprintf (fun s -> pad (); Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  match s with
  | Imp.Decl (t, v, e) -> line "%s %s = %s;" (ctype t) v (estr e)
  | Imp.Assign (v, e) -> line "%s = %s;" v (estr e)
  | Imp.Store (a, i, v) -> line "%s[%s] = %s;" a (estr i) (estr v)
  | Imp.Store_add (a, i, v) -> line "%s[%s] += %s;" a (estr i) (estr v)
  | Imp.Alloc (t, v, n) -> line "%s* %s = (%s*)calloc(%s, sizeof(%s));" (ctype t) v (ctype t) (estr n) (ctype t)
  | Imp.Realloc (v, n) -> line "%s = realloc(%s, %s * sizeof(*%s));" v v (estr n) v
  | Imp.Memset (v, n) -> line "memset(%s, 0, %s * sizeof(*%s));" v (estr n) v
  | Imp.For (v, lo, hi, body) ->
      line "for (int32_t %s = %s; %s < %s; %s++) {" v (estr lo) v (estr hi) v;
      List.iter (stmt buf (ind + 1)) body;
      line "}"
  | Imp.ParallelFor (v, lo, hi, body, info) ->
      (* Annotation for inspection: the closure executor implements the
         chunked schedule itself, but the C rendering shows what a system
         compiler would be told. Private workspaces and ordered-append
         staging are spelled out so the concatenation contract is
         reviewable. *)
      let privates =
        match info.Imp.par_private with [] -> "" | ps -> " private(" ^ String.concat ", " ps ^ ")"
      in
      let stage =
        match info.Imp.par_stage with
        | None -> ""
        | Some st ->
            Printf.sprintf " // taco: ordered-append(%s: %s%s)" st.Imp.pa_counter
              (String.concat ", " st.Imp.pa_arrays)
              (match st.Imp.pa_pos with None -> "" | Some p -> "; pos " ^ p)
      in
      line "#pragma omp parallel for schedule(static)%s%s" privates stage;
      line "for (int32_t %s = %s; %s < %s; %s++) {" v (estr lo) v (estr hi) v;
      List.iter (stmt buf (ind + 1)) body;
      line "}"
  | Imp.While (c, body) ->
      line "while (%s) {" (estr c);
      List.iter (stmt buf (ind + 1)) body;
      line "}"
  | Imp.If (c, t, []) ->
      line "if (%s) {" (estr c);
      List.iter (stmt buf (ind + 1)) t;
      line "}"
  | Imp.If (c, [], e) ->
      (* Else-only Ifs (optimizer branch flip) print as a negated test
         rather than an empty then-block. *)
      line "if (%s) {" (estr (Imp.Not c));
      List.iter (stmt buf (ind + 1)) e;
      line "}"
  | Imp.If (c, t, e) ->
      line "if (%s) {" (estr c);
      List.iter (stmt buf (ind + 1)) t;
      line "} else {";
      List.iter (stmt buf (ind + 1)) e;
      line "}"
  | Imp.Sort (v, lo, hi) -> line "qsort(%s + %s, %s - %s, sizeof(int32_t), cmp_int32);" v (estr lo) (estr hi) (estr lo)
  | Imp.Comment c -> line "// %s" c

let emit_body kernel =
  let buf = Buffer.create 1024 in
  List.iter (stmt buf 1) kernel.Imp.k_body;
  Buffer.contents buf

let emit_untraced kernel =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "#include <stdint.h>\n#include <stdbool.h>\n#include <stdlib.h>\n#include <string.h>\n";
  Buffer.add_string buf "#define TACO_MIN(a, b) ((a) < (b) ? (a) : (b))\n";
  Buffer.add_string buf "#define TACO_MAX(a, b) ((a) > (b) ? (a) : (b))\n";
  Buffer.add_string buf
    "static int cmp_int32(const void* a, const void* b) { return *(const int32_t*)a - *(const int32_t*)b; }\n\n";
  let param p =
    let t = ctype p.Imp.p_dtype in
    if p.Imp.p_array then Printf.sprintf "%s* restrict %s" t p.Imp.p_name
    else Printf.sprintf "%s %s" t p.Imp.p_name
  in
  Buffer.add_string buf
    (Printf.sprintf "int %s(%s) {\n" kernel.Imp.k_name
       (String.concat ", " (List.map param kernel.Imp.k_params)));
  Buffer.add_string buf (emit_body kernel);
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.contents buf

let emit kernel =
  Taco_support.Trace.with_span ~cat:"lower"
    ~args:[ ("kernel", kernel.Imp.k_name) ]
    "codegen_c"
    (fun () -> emit_untraced kernel)
