let ctype = function Imp.Int -> "int32_t" | Imp.Float -> "double" | Imp.Bool -> "bool"

let binop_str = function
  | Imp.Add -> "+"
  | Imp.Sub -> "-"
  | Imp.Mul -> "*"
  | Imp.Div -> "/"
  | Imp.Min -> "TACO_MIN"
  | Imp.Max -> "TACO_MAX"
  | Imp.Eq -> "=="
  | Imp.Ne -> "!="
  | Imp.Lt -> "<"
  | Imp.Le -> "<="
  | Imp.Gt -> ">"
  | Imp.Ge -> ">="
  | Imp.And -> "&&"
  | Imp.Or -> "||"

let rec expr buf = function
  | Imp.Var v -> Buffer.add_string buf v
  | Imp.Int_lit n -> Buffer.add_string buf (string_of_int n)
  | Imp.Float_lit v ->
      (* Non-finite literals (the min-plus zero is +inf) have no C
         literal syntax; use the math.h macro. *)
      if v = Float.infinity then Buffer.add_string buf "INFINITY"
      else if v = Float.neg_infinity then Buffer.add_string buf "(-INFINITY)"
      else if Float.is_nan v then Buffer.add_string buf "NAN"
      else if Float.is_integer v && Float.abs v < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" v)
      else Buffer.add_string buf (Printf.sprintf "%.17g" v)
  | Imp.Bool_lit b -> Buffer.add_string buf (if b then "1" else "0")
  | Imp.Load (a, i) ->
      Buffer.add_string buf a;
      Buffer.add_char buf '[';
      expr buf i;
      Buffer.add_char buf ']'
  | Imp.Binop (((Imp.Min | Imp.Max) as op), a, b) ->
      Buffer.add_string buf (binop_str op);
      Buffer.add_char buf '(';
      expr buf a;
      Buffer.add_string buf ", ";
      expr buf b;
      Buffer.add_char buf ')'
  | Imp.Binop (op, a, b) ->
      Buffer.add_char buf '(';
      expr buf a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (binop_str op);
      Buffer.add_char buf ' ';
      expr buf b;
      Buffer.add_char buf ')'
  | Imp.Not e ->
      Buffer.add_string buf "!(";
      expr buf e;
      Buffer.add_char buf ')'
  | Imp.Ternary (c, a, b) ->
      Buffer.add_char buf '(';
      expr buf c;
      Buffer.add_string buf " ? ";
      expr buf a;
      Buffer.add_string buf " : ";
      expr buf b;
      Buffer.add_char buf ')'
  | Imp.Round_single e ->
      Buffer.add_string buf "(double)(float)(";
      expr buf e;
      Buffer.add_char buf ')'

let estr e =
  let buf = Buffer.create 32 in
  expr buf e;
  Buffer.contents buf

(* A reduce-store as a single C statement. Min/max go through fmin/fmax
   (math.h, pulled into the prelude on demand); boolean-or reads as a
   short-circuiting test over the 0./1. encoding. *)
let reduce_line r a i v =
  match r with
  | Imp.Red_min -> Printf.sprintf "%s[%s] = fmin(%s[%s], %s);" a i a i v
  | Imp.Red_max -> Printf.sprintf "%s[%s] = fmax(%s[%s], %s);" a i a i v
  | Imp.Red_or ->
      Printf.sprintf "%s[%s] = ((%s[%s] != 0.0) || ((%s) != 0.0)) ? 1.0 : 0.0;" a i a i v

(* ------------------------------------------------------------------ *)
(* Static analyses shared by the inspection renderer and the native-  *)
(* backend (exec) renderer.                                           *)
(* ------------------------------------------------------------------ *)

(* Names whose value is read somewhere in [body]: every variable in an
   expression plus every array whose pointer is consumed by a builtin
   (memset/realloc/qsort and stores read the pointer). A declared name
   absent from this set would trip gcc's -Wunused-variable /
   -Wunused-but-set-variable under -Wall -Werror. *)
let used_tbl body =
  let tbl = Hashtbl.create 64 in
  let add v = Hashtbl.replace tbl v () in
  let add_e e = List.iter add (Imp.expr_vars e) in
  let rec go = function
    | Imp.Decl (_, _, e) | Imp.Assign (_, e) | Imp.Alloc (_, _, e) -> add_e e
    | Imp.Store (a, i, v) | Imp.Store_add (a, i, v) | Imp.Store_reduce (_, a, i, v)
    | Imp.Fill (a, i, v) ->
        add a;
        add_e i;
        add_e v
    | Imp.Realloc (v, n) | Imp.Memset (v, n) ->
        add v;
        add_e n
    | Imp.For (_, lo, hi, b) | Imp.ParallelFor (_, lo, hi, b, _) ->
        add_e lo;
        add_e hi;
        List.iter go b
    | Imp.While (c, b) ->
        add_e c;
        List.iter go b
    | Imp.If (c, t, e) ->
        add_e c;
        List.iter go t;
        List.iter go e
    | Imp.Sort (v, lo, hi) ->
        add v;
        add_e lo;
        add_e hi
    | Imp.Comment _ -> ()
  in
  List.iter go body;
  tbl

(* Array names the kernel writes through (store, +=, memset, realloc,
   sort). Everything else can be passed as [const]. *)
let written_arrays kernel =
  let tbl = Hashtbl.create 16 in
  let rec go = function
    | Imp.Store (a, _, _) | Imp.Store_add (a, _, _) | Imp.Store_reduce (_, a, _, _) ->
        Hashtbl.replace tbl a ()
    | Imp.Memset (a, _) | Imp.Fill (a, _, _) | Imp.Realloc (a, _) | Imp.Sort (a, _, _) ->
        Hashtbl.replace tbl a ()
    | Imp.Alloc (_, v, _) -> Hashtbl.replace tbl v ()
    | Imp.For (_, _, _, b) | Imp.ParallelFor (_, _, _, b, _) | Imp.While (_, b) ->
        List.iter go b
    | Imp.If (_, t, e) ->
        List.iter go t;
        List.iter go e
    | Imp.Decl _ | Imp.Assign _ | Imp.Comment _ -> ()
  in
  List.iter go kernel.Imp.k_body;
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []

let rec stmt_exists p s =
  p s
  ||
  match s with
  | Imp.For (_, _, _, b) | Imp.ParallelFor (_, _, _, b, _) | Imp.While (_, b) ->
      List.exists (stmt_exists p) b
  | Imp.If (_, t, e) -> List.exists (stmt_exists p) t || List.exists (stmt_exists p) e
  | _ -> false

let body_has p body = List.exists (stmt_exists p) body

let has_sort body = body_has (function Imp.Sort _ -> true | _ -> false) body

let rec expr_exists p e =
  p e
  ||
  match e with
  | Imp.Load (_, i) -> expr_exists p i
  | Imp.Binop (_, a, b) -> expr_exists p a || expr_exists p b
  | Imp.Not a | Imp.Round_single a -> expr_exists p a
  | Imp.Ternary (c, a, b) -> expr_exists p c || expr_exists p a || expr_exists p b
  | Imp.Var _ | Imp.Int_lit _ | Imp.Float_lit _ | Imp.Bool_lit _ -> false

let stmt_exprs = function
  | Imp.Decl (_, _, e) | Imp.Assign (_, e) | Imp.Alloc (_, _, e)
  | Imp.Realloc (_, e)
  | Imp.Memset (_, e) ->
      [ e ]
  | Imp.Store (_, i, v)
  | Imp.Store_add (_, i, v)
  | Imp.Store_reduce (_, _, i, v)
  | Imp.Fill (_, i, v)
  | Imp.Sort (_, i, v) ->
      [ i; v ]
  | Imp.For (_, lo, hi, _) | Imp.ParallelFor (_, lo, hi, _, _) -> [ lo; hi ]
  | Imp.While (c, _) -> [ c ]
  | Imp.If (c, _, _) -> [ c ]
  | Imp.Comment _ -> []

(* math.h is needed by fmin/fmax (min/max reduce-stores) and by the
   INFINITY/NAN macros that render non-finite float literals (the
   min-plus semiring zeroes arrays with +inf). *)
let needs_math body =
  let nonfinite = function
    | Imp.Float_lit v -> not (Float.is_finite v)
    | Imp.Var _ | Imp.Int_lit _ | Imp.Bool_lit _ | Imp.Load _ | Imp.Binop _
    | Imp.Not _ | Imp.Ternary _ | Imp.Round_single _ ->
        false
  in
  body_has
    (fun s ->
      (match s with
      | Imp.Store_reduce ((Imp.Red_min | Imp.Red_max), _, _, _) -> true
      | _ -> false)
      || List.exists (expr_exists nonfinite) (stmt_exprs s))
    body

let has_parallel kernel =
  body_has (function Imp.ParallelFor _ -> true | _ -> false) kernel.Imp.k_body

(* Arrays the kernel allocates, in first-Alloc order (deduplicated:
   an array re-allocated on several branches keeps one entry). *)
let alloc_list body =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec go = function
    | Imp.Alloc (t, v, _) ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          out := (v, t) :: !out
        end
    | Imp.For (_, _, _, b) | Imp.ParallelFor (_, _, _, b, _) | Imp.While (_, b) ->
        List.iter go b
    | Imp.If (_, t, e) ->
        List.iter go t;
        List.iter go e
    | _ -> ()
  in
  List.iter go body;
  List.rev !out

(* The arrays the exec rendering hands back to the host: every allocated
   int/float array, in first-Alloc order. Bool workspaces stay internal
   (the host ABI has no bool buffers, and no reader ever asks for them). *)
let exec_escapes kernel =
  List.filter (fun (_, t) -> t <> Imp.Bool) (alloc_list kernel.Imp.k_body)

(* Scalars assigned inside [body] (used to decide whether a ParallelFor
   body mutates state declared outside itself). *)
let assign_targets body =
  let out = ref [] in
  let rec go = function
    | Imp.Assign (v, _) -> out := v :: !out
    | Imp.For (_, _, _, b) | Imp.ParallelFor (_, _, _, b, _) | Imp.While (_, b) ->
        List.iter go b
    | Imp.If (_, t, e) ->
        List.iter go t;
        List.iter go e
    | _ -> ()
  in
  List.iter go body;
  !out

(* Kernels the exec rendering cannot express under the flat ABI. *)
let exec_unsupported kernel =
  let allocs = alloc_list kernel.Imp.k_body in
  if List.exists (fun p -> p.Imp.p_dtype = Imp.Bool) kernel.Imp.k_params then
    Some "bool parameter"
  else if
    body_has
      (function
        | Imp.Realloc (v, _) -> not (List.mem_assoc v allocs) | _ -> false)
      kernel.Imp.k_body
  then Some "realloc of a parameter array"
  else None

(* Rename arrays (used when giving OpenMP threads private workspace
   copies). Scalars and arrays share one namespace, so renaming [Var]
   too is safe and keeps the substitution total. *)
let rec subst_expr f = function
  | Imp.Var v -> Imp.Var (f v)
  | (Imp.Int_lit _ | Imp.Float_lit _ | Imp.Bool_lit _) as e -> e
  | Imp.Load (a, i) -> Imp.Load (f a, subst_expr f i)
  | Imp.Binop (op, a, b) -> Imp.Binop (op, subst_expr f a, subst_expr f b)
  | Imp.Not e -> Imp.Not (subst_expr f e)
  | Imp.Ternary (c, a, b) ->
      Imp.Ternary (subst_expr f c, subst_expr f a, subst_expr f b)
  | Imp.Round_single e -> Imp.Round_single (subst_expr f e)

let rec subst_stmt f s =
  let e = subst_expr f in
  match s with
  | Imp.Decl (t, v, x) -> Imp.Decl (t, v, e x)
  | Imp.Assign (v, x) -> Imp.Assign (f v, e x)
  | Imp.Store (a, i, x) -> Imp.Store (f a, e i, e x)
  | Imp.Store_add (a, i, x) -> Imp.Store_add (f a, e i, e x)
  | Imp.Store_reduce (r, a, i, x) -> Imp.Store_reduce (r, f a, e i, e x)
  | Imp.Alloc (t, v, n) -> Imp.Alloc (t, v, e n)
  | Imp.Realloc (v, n) -> Imp.Realloc (f v, e n)
  | Imp.Memset (v, n) -> Imp.Memset (f v, e n)
  | Imp.Fill (a, n, x) -> Imp.Fill (f a, e n, e x)
  | Imp.For (v, lo, hi, b) -> Imp.For (v, e lo, e hi, List.map (subst_stmt f) b)
  | Imp.ParallelFor (v, lo, hi, b, info) ->
      Imp.ParallelFor (v, e lo, e hi, List.map (subst_stmt f) b, info)
  | Imp.While (c, b) -> Imp.While (e c, List.map (subst_stmt f) b)
  | Imp.If (c, t, el) ->
      Imp.If (e c, List.map (subst_stmt f) t, List.map (subst_stmt f) el)
  | Imp.Sort (v, lo, hi) -> Imp.Sort (f v, e lo, e hi)
  | Imp.Comment _ as c -> c

(* ------------------------------------------------------------------ *)
(* Inspection rendering (paper Fig. 6 style): one C function with the *)
(* tensor buffers as parameters, allocations as plain calloc.         *)
(* ------------------------------------------------------------------ *)

let rec stmt ?(unused = fun _ -> false) buf ind s =
  let pad () = Buffer.add_string buf (String.make (2 * ind) ' ') in
  let line fmt = Printf.ksprintf (fun s -> pad (); Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let stmt = stmt ~unused in
  match s with
  | Imp.Decl (t, v, e) ->
      line "%s %s = %s;%s" (ctype t) v (estr e) (if unused v then " (void)" ^ v ^ ";" else "")
  | Imp.Assign (v, e) -> line "%s = %s;" v (estr e)
  | Imp.Store (a, i, v) -> line "%s[%s] = %s;" a (estr i) (estr v)
  | Imp.Store_add (a, i, v) -> line "%s[%s] += %s;" a (estr i) (estr v)
  | Imp.Store_reduce (r, a, i, v) -> line "%s" (reduce_line r a (estr i) (estr v))
  | Imp.Alloc (t, v, n) ->
      line "%s* %s = (%s*)calloc(%s, sizeof(%s));%s" (ctype t) v (ctype t) (estr n) (ctype t)
        (if unused v then " (void)" ^ v ^ ";" else "")
  | Imp.Realloc (v, n) -> line "%s = realloc(%s, %s * sizeof(*%s));" v v (estr n) v
  | Imp.Memset (v, n) -> line "memset(%s, 0, %s * sizeof(*%s));" v (estr n) v
  | Imp.Fill (a, n, v) ->
      line "for (int32_t taco_fi = 0; taco_fi < %s; taco_fi++) %s[taco_fi] = %s;" (estr n) a
        (estr v)
  | Imp.For (v, lo, hi, body) ->
      line "for (int32_t %s = %s; %s < %s; %s++) {" v (estr lo) v (estr hi) v;
      List.iter (stmt buf (ind + 1)) body;
      line "}"
  | Imp.ParallelFor (v, lo, hi, body, info) ->
      (* Annotation for inspection: the closure executor implements the
         chunked schedule itself, but the C rendering shows what a system
         compiler would be told. Workspaces are [firstprivate] — every
         chunk starts from a copy of the pre-loop workspace, which is
         OpenMP's copy-in clause (plain [private] would leave them
         uninitialized) — and ordered-append staging is spelled out so
         the concatenation contract is reviewable. *)
      let privates =
        match info.Imp.par_private with
        | [] -> ""
        | ps -> " firstprivate(" ^ String.concat ", " ps ^ ")"
      in
      let stage =
        match info.Imp.par_stage with
        | None -> ""
        | Some st ->
            Printf.sprintf " // taco: ordered-append(%s: %s%s)" st.Imp.pa_counter
              (String.concat ", " st.Imp.pa_arrays)
              (match st.Imp.pa_pos with None -> "" | Some p -> "; pos " ^ p)
      in
      line "#pragma omp parallel for schedule(static)%s%s" privates stage;
      line "for (int32_t %s = %s; %s < %s; %s++) {" v (estr lo) v (estr hi) v;
      List.iter (stmt buf (ind + 1)) body;
      line "}"
  | Imp.While (c, body) ->
      line "while (%s) {" (estr c);
      List.iter (stmt buf (ind + 1)) body;
      line "}"
  | Imp.If (c, t, []) ->
      line "if (%s) {" (estr c);
      List.iter (stmt buf (ind + 1)) t;
      line "}"
  | Imp.If (c, [], e) ->
      (* Else-only Ifs (optimizer branch flip) print as a negated test
         rather than an empty then-block. *)
      line "if (%s) {" (estr (Imp.Not c));
      List.iter (stmt buf (ind + 1)) e;
      line "}"
  | Imp.If (c, t, e) ->
      line "if (%s) {" (estr c);
      List.iter (stmt buf (ind + 1)) t;
      line "} else {";
      List.iter (stmt buf (ind + 1)) e;
      line "}"
  | Imp.Sort (v, lo, hi) -> line "qsort(%s + %s, %s - %s, sizeof(int32_t), cmp_int32);" v (estr lo) (estr hi) (estr lo)
  | Imp.Comment c -> line "// %s" c

let emit_body kernel =
  let buf = Buffer.create 1024 in
  List.iter (stmt buf 1) kernel.Imp.k_body;
  Buffer.contents buf

let prelude ~sort ~math buf =
  Buffer.add_string buf "#include <stdint.h>\n#include <stdbool.h>\n#include <stdlib.h>\n#include <string.h>\n";
  if math then Buffer.add_string buf "#include <math.h>\n";
  Buffer.add_string buf "#define TACO_MIN(a, b) ((a) < (b) ? (a) : (b))\n";
  Buffer.add_string buf "#define TACO_MAX(a, b) ((a) > (b) ? (a) : (b))\n";
  if sort then
    Buffer.add_string buf
      "static int cmp_int32(const void* a, const void* b) { return *(const int32_t*)a - *(const int32_t*)b; }\n"

let emit_untraced kernel =
  let buf = Buffer.create 2048 in
  prelude ~sort:(has_sort kernel.Imp.k_body) ~math:(needs_math kernel.Imp.k_body) buf;
  Buffer.add_char buf '\n';
  let written = written_arrays kernel in
  let param p =
    let t = ctype p.Imp.p_dtype in
    if p.Imp.p_array then
      if List.mem p.Imp.p_name written then Printf.sprintf "%s* restrict %s" t p.Imp.p_name
      else Printf.sprintf "const %s* restrict %s" t p.Imp.p_name
    else Printf.sprintf "%s %s" t p.Imp.p_name
  in
  Buffer.add_string buf
    (Printf.sprintf "int %s(%s) {\n" kernel.Imp.k_name
       (String.concat ", " (List.map param kernel.Imp.k_params)));
  let used = used_tbl kernel.Imp.k_body in
  let unused v = not (Hashtbl.mem used v) in
  List.iter (stmt ~unused buf 1) kernel.Imp.k_body;
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.contents buf

let emit kernel =
  Taco_support.Trace.with_span ~cat:"lower"
    ~args:[ ("kernel", kernel.Imp.k_name) ]
    "codegen_c"
    (fun () -> emit_untraced kernel)

(* ------------------------------------------------------------------ *)
(* Exec rendering: the translation unit the native backend compiles   *)
(* with the system C compiler and calls through dlopen. One exported  *)
(* entry point with a flat ABI:                                       *)
(*                                                                    *)
(*   int taco_entry(const int64_t* iargs, const double* fargs,        *)
(*                  void** aargs, void** esc, int64_t* esc_len,       *)
(*                  int64_t mem_limit, int64_t deadline_ns)           *)
(*                                                                    *)
(* Scalar parameters arrive in iargs/fargs and array parameters in    *)
(* aargs, each in kernel-parameter order. Arrays the kernel allocates *)
(* (workspaces and assembled outputs) are returned through esc[] /    *)
(* esc_len[] in {!exec_escapes} order; ownership of those buffers     *)
(* passes to the caller on success. Return codes: 0 ok, 1 allocation  *)
(* failed or exceeded [mem_limit] (host maps it to E_EXEC_MEM), 2     *)
(* deadline expired (E_EXEC_CANCELLED). On a nonzero return every     *)
(* kernel allocation has been freed and esc[] is untouched.           *)
(*                                                                    *)
(* Semantics mirror the closure executor so results are bit-identical:*)
(* allocations are [max 1 n] elements zeroed, reallocs grow to        *)
(* [max old n] with a zeroed tail, the budget check is element-count  *)
(* > limit/8 on the clamped size, and outermost For loops poll the    *)
(* deadline every 256 iterations. The host passes -ffp-contract=off   *)
(* so the compiler cannot fuse a*b+c into fma and change rounding.    *)
(* ------------------------------------------------------------------ *)

type ectx = {
  ebuf : Buffer.t;
  allocs : (string * Imp.dtype) list;
  used : (string, unit) Hashtbl.t;
  mutable uses_clock : bool;
  mutable uses_fail : bool;
  mutable par_id : int;
}

(* A ParallelFor the exec rendering can hand to OpenMP directly: no
   ordered-append staging, every private an allocated array (each
   thread gets a heap copy), no allocation inside the body, and no
   assignment to scalars declared outside the body. Anything else runs
   sequentially (the closure executor's chunk-merge protocol has no
   cheap OpenMP equivalent, and a goto out of a parallel region —
   which the allocation failure paths need — is illegal C). *)
let omp_parallelizable ctx body info =
  info.Imp.par_stage = None
  && List.for_all (fun p -> List.mem_assoc p ctx.allocs) info.Imp.par_private
  && (not
        (body_has
           (function Imp.Alloc _ | Imp.Realloc _ -> true | _ -> false)
           body))
  &&
  let decl = Imp.declared body in
  List.for_all (fun v -> List.mem v decl) (assign_targets body)

let rec stmt_exec ctx ind ~depth s =
  let buf = ctx.ebuf in
  let pad () = Buffer.add_string buf (String.make (2 * ind) ' ') in
  let line fmt = Printf.ksprintf (fun s -> pad (); Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let fail rc = Printf.sprintf "{ taco_rc = %d; goto taco_fail; }" rc in
  match s with
  | Imp.Decl (t, v, e) ->
      line "%s %s = %s;%s" (ctype t) v (estr e)
        (if Hashtbl.mem ctx.used v then "" else " (void)" ^ v ^ ";")
  | Imp.Assign (v, e) -> line "%s = %s;" v (estr e)
  | Imp.Store (a, i, v) -> line "%s[%s] = %s;" a (estr i) (estr v)
  | Imp.Store_add (a, i, v) -> line "%s[%s] += %s;" a (estr i) (estr v)
  | Imp.Store_reduce (r, a, i, v) -> line "%s" (reduce_line r a (estr i) (estr v))
  | Imp.Alloc (t, v, n) ->
      ctx.uses_fail <- true;
      line "{";
      line "  int64_t taco_n = (int64_t)(%s);" (estr n);
      line "  if (taco_n < 1) taco_n = 1;";
      line "  if (taco_mem_limit != INT64_MAX && taco_n > taco_mem_limit / 8) %s" (fail 1);
      line "  free(%s);" v;
      line "  %s = (%s*)calloc((size_t)taco_n, sizeof(%s));" v (ctype t) (ctype t);
      line "  if (!%s) %s" v (fail 1);
      line "  taco_cap_%s = taco_n;" v;
      line "}"
  | Imp.Realloc (v, n) ->
      ctx.uses_fail <- true;
      let t = try List.assoc v ctx.allocs with Not_found -> invalid_arg "Codegen_c.emit_exec: realloc of a parameter array" in
      line "{";
      line "  int64_t taco_n = (int64_t)(%s);" (estr n);
      line "  if (taco_n < taco_cap_%s) taco_n = taco_cap_%s;" v v;
      line "  if (taco_mem_limit != INT64_MAX && taco_n > taco_mem_limit / 8) %s" (fail 1);
      line "  %s* taco_p = (%s*)realloc(%s, (size_t)taco_n * sizeof(%s));" (ctype t) (ctype t) v (ctype t);
      line "  if (!taco_p) %s" (fail 1);
      line "  memset(taco_p + taco_cap_%s, 0, (size_t)(taco_n - taco_cap_%s) * sizeof(%s));" v v (ctype t);
      line "  %s = taco_p;" v;
      line "  taco_cap_%s = taco_n;" v;
      line "}"
  | Imp.Memset (v, n) -> line "memset(%s, 0, (size_t)(%s) * sizeof(*%s));" v (estr n) v
  | Imp.Fill (a, n, v) ->
      line "for (int32_t taco_fi = 0; taco_fi < %s; taco_fi++) %s[taco_fi] = %s;" (estr n) a
        (estr v)
  | Imp.For (v, lo, hi, body) ->
      line "for (int32_t %s = %s; %s < %s; %s++) {" v (estr lo) v (estr hi) v;
      if depth = 0 then begin
        ctx.uses_clock <- true;
        ctx.uses_fail <- true;
        line "  if (taco_deadline_ns != INT64_MAX && (%s & %d) == 0 && taco_now_ns() > taco_deadline_ns) %s"
          v 255 (fail 2)
      end;
      List.iter (stmt_exec ctx (ind + 1) ~depth:(depth + 1)) body;
      line "}"
  | Imp.ParallelFor (v, lo, hi, body, info) ->
      if not (omp_parallelizable ctx body info) then begin
        line "// taco: parallel loop run sequentially by the native backend (staged append)";
        stmt_exec ctx ind ~depth (Imp.For (v, lo, hi, body))
      end
      else begin
        let id = ctx.par_id in
        ctx.par_id <- ctx.par_id + 1;
        let privates =
          List.map (fun p -> (p, List.assoc p ctx.allocs)) info.Imp.par_private
        in
        let pv p = Printf.sprintf "taco_pv%d_%s" id p in
        let body =
          if privates = [] then body
          else
            let f a = if List.mem_assoc a privates then pv a else a in
            List.map (subst_stmt f) body
        in
        (* No deadline poll inside these loops: a goto out of an OpenMP
           region is illegal C, so parallel loops are not cancellable
           mid-flight (the host documents this narrowing). *)
        if privates = [] then begin
          line "#pragma omp parallel for schedule(static)";
          line "for (int32_t %s = %s; %s < %s; %s++) {" v (estr lo) v (estr hi) v;
          List.iter (stmt_exec ctx (ind + 1) ~depth:(depth + 1)) body;
          line "}"
        end
        else begin
          ctx.uses_fail <- true;
          line "{";
          line "  int taco_oom%d = 0;" id;
          line "  #pragma omp parallel reduction(|:taco_oom%d)" id;
          line "  {";
          List.iter
            (fun (p, t) ->
              line "    %s* %s = (%s*)malloc((size_t)TACO_MAX(taco_cap_%s, 1) * sizeof(%s));"
                (ctype t) (pv p) (ctype t) p (ctype t))
            privates;
          line "    int taco_ok%d = %s;" id
            (String.concat " && " (List.map (fun (p, _) -> pv p ^ " != NULL") privates));
          line "    if (taco_ok%d) {" id;
          List.iter
            (fun (p, t) ->
              line "      memcpy(%s, %s, (size_t)taco_cap_%s * sizeof(%s));" (pv p) p p (ctype t))
            privates;
          line "    } else {";
          line "      taco_oom%d = 1;" id;
          line "    }";
          line "    #pragma omp for schedule(static)";
          line "    for (int32_t %s = %s; %s < %s; %s++) {" v (estr lo) v (estr hi) v;
          line "      if (taco_ok%d) {" id;
          List.iter (stmt_exec ctx (ind + 4) ~depth:(depth + 1)) body;
          line "      }";
          line "    }";
          List.iter (fun (p, _) -> line "    free(%s);" (pv p)) privates;
          line "  }";
          line "  if (taco_oom%d) %s" id (fail 1);
          line "}"
        end
      end
  | Imp.While (c, body) ->
      line "while (%s) {" (estr c);
      List.iter (stmt_exec ctx (ind + 1) ~depth:(depth + 1)) body;
      line "}"
  | Imp.If (c, t, []) ->
      line "if (%s) {" (estr c);
      List.iter (stmt_exec ctx (ind + 1) ~depth) t;
      line "}"
  | Imp.If (c, [], e) ->
      line "if (%s) {" (estr (Imp.Not c));
      List.iter (stmt_exec ctx (ind + 1) ~depth) e;
      line "}"
  | Imp.If (c, t, e) ->
      line "if (%s) {" (estr c);
      List.iter (stmt_exec ctx (ind + 1) ~depth) t;
      line "} else {";
      List.iter (stmt_exec ctx (ind + 1) ~depth) e;
      line "}"
  | Imp.Sort (v, lo, hi) ->
      line "qsort(%s + %s, %s - %s, sizeof(int32_t), cmp_int32);" v (estr lo) (estr hi) (estr lo)
  | Imp.Comment c -> line "// %s" c

let entry_name = "taco_entry"

let emit_exec_untraced kernel =
  (match exec_unsupported kernel with
  | Some r -> invalid_arg ("Codegen_c.emit_exec: " ^ r)
  | None -> ());
  let body = kernel.Imp.k_body in
  let allocs = alloc_list body in
  let escapes = exec_escapes kernel in
  let written = written_arrays kernel in
  let used = used_tbl body in
  let ctx = { ebuf = Buffer.create 4096; allocs; used; uses_clock = false; uses_fail = false; par_id = 0 } in
  List.iter (stmt_exec ctx 1 ~depth:0) body;
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Printf.sprintf "// taco native rendering of kernel %s\n" kernel.Imp.k_name);
  prelude ~sort:(has_sort body) ~math:(needs_math body) buf;
  if ctx.uses_clock then begin
    Buffer.add_string buf "#include <time.h>\n";
    Buffer.add_string buf
      "static int64_t taco_now_ns(void) {\n\
      \  struct timespec taco_ts;\n\
      \  clock_gettime(CLOCK_MONOTONIC, &taco_ts);\n\
      \  return (int64_t)taco_ts.tv_sec * 1000000000LL + (int64_t)taco_ts.tv_nsec;\n\
       }\n"
  end;
  Buffer.add_string buf
    (Printf.sprintf
       "\nint %s(const int64_t* taco_iargs, const double* taco_fargs, void** taco_aargs,\n\
       \               void** taco_esc, int64_t* taco_esc_len, int64_t taco_mem_limit,\n\
       \               int64_t taco_deadline_ns) {\n" entry_name);
  Buffer.add_string buf
    "  (void)taco_iargs; (void)taco_fargs; (void)taco_aargs; (void)taco_esc;\n\
    \  (void)taco_esc_len; (void)taco_mem_limit; (void)taco_deadline_ns;\n";
  if ctx.uses_fail then Buffer.add_string buf "  int taco_rc = 0;\n";
  (* Parameter bindings, in kernel-parameter order with one running
     index per argument bank. *)
  let ii = ref 0 and fi = ref 0 and ai = ref 0 in
  List.iter
    (fun p ->
      let n = p.Imp.p_name in
      let silence = if Hashtbl.mem used n then "" else Printf.sprintf " (void)%s;" n in
      (if not p.Imp.p_array then begin
         match p.Imp.p_dtype with
         | Imp.Int ->
             Buffer.add_string buf
               (Printf.sprintf "  int32_t %s = (int32_t)taco_iargs[%d];%s\n" n !ii silence);
             incr ii
         | Imp.Float ->
             Buffer.add_string buf
               (Printf.sprintf "  double %s = taco_fargs[%d];%s\n" n !fi silence);
             incr fi
         | Imp.Bool -> invalid_arg "Codegen_c.emit_exec: bool parameter"
       end
       else
         let t = ctype p.Imp.p_dtype in
         let decl =
           if List.mem n written then Printf.sprintf "  %s* restrict %s = (%s*)taco_aargs[%d];%s\n" t n t !ai silence
           else Printf.sprintf "  const %s* restrict %s = (const %s*)taco_aargs[%d];%s\n" t n t !ai silence
         in
         Buffer.add_string buf decl;
         incr ai))
    kernel.Imp.k_params;
  (* Allocated arrays: declared up front (NULL) with a capacity tracker
     so re-allocation, the zeroed realloc tail and the escape lengths
     all have one source of truth, and so the failure path can free
     everything unconditionally. *)
  List.iter
    (fun (v, t) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s* %s = NULL; int64_t taco_cap_%s = 0; (void)taco_cap_%s;\n" (ctype t) v v v))
    allocs;
  Buffer.add_string buf (Buffer.contents ctx.ebuf);
  (* Success epilogue: hand escaping buffers to the host, free the rest. *)
  List.iteri
    (fun i (v, _) ->
      Buffer.add_string buf
        (Printf.sprintf "  taco_esc[%d] = %s; taco_esc_len[%d] = taco_cap_%s;\n" i v i v))
    escapes;
  List.iter
    (fun (v, t) ->
      if t = Imp.Bool then Buffer.add_string buf (Printf.sprintf "  free(%s);\n" v))
    allocs;
  Buffer.add_string buf "  return 0;\n";
  if ctx.uses_fail then begin
    Buffer.add_string buf "taco_fail:\n";
    List.iter (fun (v, _) -> Buffer.add_string buf (Printf.sprintf "  free(%s);\n" v)) allocs;
    Buffer.add_string buf "  return taco_rc;\n"
  end;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let emit_exec kernel =
  Taco_support.Trace.with_span ~cat:"lower"
    ~args:[ ("kernel", kernel.Imp.k_name) ]
    "codegen_c.exec"
    (fun () -> emit_exec_untraced kernel)
