type dtype = Int | Float | Bool

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Min
  | Max
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr =
  | Var of string
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | Load of string * expr
  | Binop of binop * expr * expr
  | Not of expr
  | Ternary of expr * expr * expr
  | Round_single of expr

type par_append = {
  pa_counter : string;
  pa_arrays : string list;
  pa_pos : string option;
}

type par_info = { par_private : string list; par_stage : par_append option }

type reduce = Red_min | Red_max | Red_or

type stmt =
  | Decl of dtype * string * expr
  | Assign of string * expr
  | Store of string * expr * expr
  | Store_add of string * expr * expr
  | Store_reduce of reduce * string * expr * expr
  | Alloc of dtype * string * expr
  | Realloc of string * expr
  | Memset of string * expr
  | Fill of string * expr * expr
  | For of string * expr * expr * stmt list
  | ParallelFor of string * expr * expr * stmt list * par_info
  | While of expr * stmt list
  | If of expr * stmt list * stmt list
  | Sort of string * expr * expr
  | Comment of string

type param = { p_name : string; p_dtype : dtype; p_array : bool; p_output : bool }

type kernel = { k_name : string; k_params : param list; k_body : stmt list }

let add a b =
  match (a, b) with
  | Int_lit 0, e | e, Int_lit 0 -> e
  | Int_lit x, Int_lit y -> Int_lit (x + y)
  | a, b -> Binop (Add, a, b)

let sub a b =
  match (a, b) with
  | e, Int_lit 0 -> e
  | Int_lit x, Int_lit y -> Int_lit (x - y)
  | a, b -> Binop (Sub, a, b)

let mul a b =
  match (a, b) with
  | Int_lit 0, _ | _, Int_lit 0 -> Int_lit 0
  | Int_lit 1, e | e, Int_lit 1 -> e
  | Int_lit x, Int_lit y -> Int_lit (x * y)
  | a, b -> Binop (Mul, a, b)

let min_ a b = if a = b then a else Binop (Min, a, b)

let eq a b = Binop (Eq, a, b)

let lt a b = Binop (Lt, a, b)

let and_ a b =
  match (a, b) with
  | Bool_lit true, e | e, Bool_lit true -> e
  | a, b -> Binop (And, a, b)

let or_ a b =
  match (a, b) with
  | Bool_lit false, e | e, Bool_lit false -> e
  | a, b -> Binop (Or, a, b)

let min_list = function
  | [] -> invalid_arg "Imp.min_list: empty"
  | x :: rest -> List.fold_left min_ x rest

let and_list = function
  | [] -> invalid_arg "Imp.and_list: empty"
  | x :: rest -> List.fold_left and_ x rest

let rec expr_vars = function
  | Var v -> [ v ]
  | Int_lit _ | Float_lit _ | Bool_lit _ -> []
  | Load (a, i) -> a :: expr_vars i
  | Binop (_, a, b) -> expr_vars a @ expr_vars b
  | Not e | Round_single e -> expr_vars e
  | Ternary (c, a, b) -> expr_vars c @ expr_vars a @ expr_vars b

let rec declared_stmt = function
  | Decl (_, v, _) | Alloc (_, v, _) -> [ v ]
  | For (v, _, _, body) | ParallelFor (v, _, _, body, _) -> v :: declared body
  | While (_, body) -> declared body
  | If (_, t, e) -> declared t @ declared e
  | Assign _ | Store _ | Store_add _ | Store_reduce _ | Realloc _ | Memset _ | Fill _
  | Sort _ | Comment _ ->
      []

and declared stmts = List.concat_map declared_stmt stmts

let rec expr_nodes = function
  | Var _ | Int_lit _ | Float_lit _ | Bool_lit _ -> 1
  | Load (_, i) -> 1 + expr_nodes i
  | Binop (_, a, b) -> 1 + expr_nodes a + expr_nodes b
  | Not e | Round_single e -> 1 + expr_nodes e
  | Ternary (c, a, b) -> 1 + expr_nodes c + expr_nodes a + expr_nodes b

let rec stmt_nodes = function
  | Decl (_, _, e) | Assign (_, e) | Alloc (_, _, e) | Realloc (_, e) | Memset (_, e) ->
      1 + expr_nodes e
  | Store (_, i, v) | Store_add (_, i, v) | Store_reduce (_, _, i, v) | Fill (_, i, v)
  | Sort (_, i, v) ->
      1 + expr_nodes i + expr_nodes v
  | For (_, lo, hi, body) | ParallelFor (_, lo, hi, body, _) ->
      1 + expr_nodes lo + expr_nodes hi + stmts_nodes body
  | While (c, body) -> 1 + expr_nodes c + stmts_nodes body
  | If (c, t, e) -> 1 + expr_nodes c + stmts_nodes t + stmts_nodes e
  | Comment _ -> 1

and stmts_nodes body = List.fold_left (fun acc s -> acc + stmt_nodes s) 0 body

let node_count kernel = stmts_nodes kernel.k_body

let check kernel =
  let exception Problem of string in
  let known = Hashtbl.create 32 in
  List.iter (fun p -> Hashtbl.replace known p.p_name ()) kernel.k_params;
  let use_expr e =
    List.iter
      (fun v ->
        if not (Hashtbl.mem known v) then
          raise (Problem (Printf.sprintf "variable %s used before declaration" v)))
      (expr_vars e)
  in
  let use_var v =
    if not (Hashtbl.mem known v) then
      raise (Problem (Printf.sprintf "variable %s used before declaration" v))
  in
  let declare v =
    (* Loop variables and block-scoped declarations may shadow/repeat on
       sibling paths; we only require definition before use. *)
    Hashtbl.replace known v ()
  in
  let rec go_stmt = function
    | Decl (_, v, e) ->
        use_expr e;
        declare v
    | Assign (v, e) ->
        use_expr e;
        use_var v
    | Store (a, i, v) | Store_add (a, i, v) | Store_reduce (_, a, i, v) | Fill (a, i, v) ->
        use_var a;
        use_expr i;
        use_expr v
    | Alloc (_, v, n) ->
        use_expr n;
        declare v
    | Realloc (v, n) ->
        use_var v;
        use_expr n
    | Memset (v, n) ->
        use_var v;
        use_expr n
    | For (v, lo, hi, body) ->
        use_expr lo;
        use_expr hi;
        declare v;
        List.iter go_stmt body
    | ParallelFor (v, lo, hi, body, info) ->
        use_expr lo;
        use_expr hi;
        (* The merge metadata names arrays and counters that must already
           exist at loop entry (workspaces and staging buffers are
           allocated before the parallel region). *)
        List.iter use_var info.par_private;
        Option.iter
          (fun st ->
            use_var st.pa_counter;
            List.iter use_var st.pa_arrays;
            Option.iter use_var st.pa_pos)
          info.par_stage;
        declare v;
        List.iter go_stmt body
    | While (c, body) ->
        use_expr c;
        List.iter go_stmt body
    | If (c, t, e) ->
        use_expr c;
        List.iter go_stmt t;
        List.iter go_stmt e
    | Sort (v, lo, hi) ->
        use_var v;
        use_expr lo;
        use_expr hi
    | Comment _ -> ()
  in
  match List.iter go_stmt kernel.k_body with
  | () -> Ok ()
  | exception Problem msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Typed validation                                                    *)
(* ------------------------------------------------------------------ *)

let dtype_str = function Int -> "int" | Float -> "float" | Bool -> "bool"

let validate kernel =
  let exception Problem of string in
  let problem fmt = Printf.ksprintf (fun s -> raise (Problem s)) fmt in
  (* name -> (dtype, is_array); populated in declaration order so the
     pass checks def-before-use and typing together. *)
  let env : (string, dtype * bool) Hashtbl.t = Hashtbl.create 32 in
  let declare name dtype arr =
    match Hashtbl.find_opt env name with
    | Some (t, a) when t <> dtype || a <> arr ->
        problem "variable %s redeclared as %s%s (was %s%s)" name (dtype_str dtype)
          (if arr then " array" else "") (dtype_str t) (if a then " array" else "")
    | Some _ | None -> Hashtbl.replace env name (dtype, arr)
  in
  List.iter (fun p -> declare p.p_name p.p_dtype p.p_array) kernel.k_params;
  let scalar name =
    match Hashtbl.find_opt env name with
    | Some (t, false) -> t
    | Some (_, true) -> problem "array %s used as a scalar" name
    | None -> problem "variable %s used before declaration" name
  in
  let array name =
    match Hashtbl.find_opt env name with
    | Some (t, true) -> t
    | Some (_, false) -> problem "scalar %s indexed as an array" name
    | None -> problem "array %s used before declaration" name
  in
  let rec infer = function
    | Var v -> scalar v
    | Int_lit _ -> Int
    | Float_lit _ -> Float
    | Bool_lit _ -> Bool
    | Load (a, i) ->
        let t = array a in
        expect Int i "array index";
        t
    | Binop ((Add | Sub | Mul | Div | Min | Max), a, b) -> (
        match (infer a, infer b) with
        | Int, Int -> Int
        | Float, Float -> Float
        | ta, tb ->
            if ta <> tb then problem "arithmetic on mixed types (%s vs %s)" (dtype_str ta) (dtype_str tb)
            else problem "arithmetic on bools")
    | Binop ((Eq | Ne | Lt | Le | Gt | Ge), a, b) ->
        let ta = infer a and tb = infer b in
        if ta <> tb then problem "comparison on mixed types (%s vs %s)" (dtype_str ta) (dtype_str tb);
        Bool
    | Binop ((And | Or), a, b) ->
        expect Bool a "logical operand";
        expect Bool b "logical operand";
        Bool
    | Not e ->
        expect Bool e "negated expression";
        Bool
    | Round_single e ->
        expect Float e "round_single operand";
        Float
    | Ternary (c, a, b) ->
        expect Bool c "ternary condition";
        let ta = infer a and tb = infer b in
        if ta <> tb then problem "ternary branches of mixed type (%s vs %s)" (dtype_str ta) (dtype_str tb);
        ta
  and expect t e what =
    let t' = infer e in
    if t' <> t then problem "%s has type %s, expected %s" what (dtype_str t') (dtype_str t)
  in
  let rec go_stmt = function
    | Decl (t, v, e) ->
        expect t e (Printf.sprintf "initializer of %s" v);
        declare v t false
    | Assign (v, e) ->
        let t = scalar v in
        expect t e (Printf.sprintf "assignment to %s" v)
    | Store (a, i, v) ->
        let t = array a in
        expect Int i (Printf.sprintf "index into %s" a);
        expect t v (Printf.sprintf "value stored into %s" a)
    | Store_add (a, i, v) ->
        let t = array a in
        if t = Bool then problem "+= on bool array %s" a;
        expect Int i (Printf.sprintf "index into %s" a);
        expect t v (Printf.sprintf "value accumulated into %s" a)
    | Store_reduce (_, a, i, v) ->
        if array a <> Float then problem "reduce-store on non-float array %s" a;
        expect Int i (Printf.sprintf "index into %s" a);
        expect Float v (Printf.sprintf "value reduced into %s" a)
    | Alloc (t, v, n) ->
        expect Int n (Printf.sprintf "allocation size of %s" v);
        declare v t true
    | Realloc (v, n) ->
        ignore (array v : dtype);
        expect Int n (Printf.sprintf "reallocation size of %s" v)
    | Memset (v, n) ->
        ignore (array v : dtype);
        expect Int n (Printf.sprintf "memset length of %s" v)
    | Fill (a, n, v) ->
        if array a <> Float then problem "fill on non-float array %s" a;
        expect Int n (Printf.sprintf "fill length of %s" a);
        expect Float v (Printf.sprintf "fill value of %s" a)
    | For (v, lo, hi, body) ->
        expect Int lo "loop lower bound";
        expect Int hi "loop upper bound";
        declare v Int false;
        List.iter go_stmt body
    | ParallelFor (v, lo, hi, body, info) ->
        expect Int lo "parallel loop lower bound";
        expect Int hi "parallel loop upper bound";
        List.iter (fun a -> ignore (array a : dtype)) info.par_private;
        Option.iter
          (fun st ->
            if scalar st.pa_counter <> Int then
              problem "append counter %s is not an int scalar" st.pa_counter;
            List.iter (fun a -> ignore (array a : dtype)) st.pa_arrays;
            Option.iter
              (fun p ->
                if array p <> Int then problem "pos array %s is not an int array" p)
              st.pa_pos)
          info.par_stage;
        declare v Int false;
        List.iter go_stmt body
    | While (c, body) ->
        expect Bool c "while condition";
        List.iter go_stmt body
    | If (c, t, e) ->
        expect Bool c "if condition";
        List.iter go_stmt t;
        List.iter go_stmt e
    | Sort (v, lo, hi) ->
        if array v <> Int then problem "sort on non-int array %s" v;
        expect Int lo "sort lower bound";
        expect Int hi "sort upper bound"
    | Comment _ -> ()
  in
  match List.iter go_stmt kernel.k_body with
  | () -> Ok ()
  | exception Problem msg -> Error msg

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Min -> "min"
  | Max -> "max"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let reduce_str = function Red_min -> "min" | Red_max -> "max" | Red_or -> "or"

let rec pp_expr fmt = function
  | Var v -> Format.pp_print_string fmt v
  | Int_lit n -> Format.pp_print_int fmt n
  | Float_lit v -> Format.fprintf fmt "%g" v
  | Bool_lit b -> Format.pp_print_bool fmt b
  | Load (a, i) -> Format.fprintf fmt "%s[%a]" a pp_expr i
  | Binop ((Min | Max) as op, a, b) ->
      Format.fprintf fmt "%s(%a, %a)" (binop_str op) pp_expr a pp_expr b
  | Binop (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Not e -> Format.fprintf fmt "!(%a)" pp_expr e
  | Round_single e -> Format.fprintf fmt "(double)(float)(%a)" pp_expr e
  | Ternary (c, a, b) ->
      Format.fprintf fmt "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

let rec pp_stmt fmt s = pp_stmt_indent fmt 0 s

and pp_stmt_indent fmt n s =
  let ind = String.make (2 * n) ' ' in
  match s with
  | Decl (_, v, e) -> Format.fprintf fmt "%s%s = %a;@." ind v pp_expr e
  | Assign (v, e) -> Format.fprintf fmt "%s%s = %a;@." ind v pp_expr e
  | Store (a, i, v) -> Format.fprintf fmt "%s%s[%a] = %a;@." ind a pp_expr i pp_expr v
  | Store_add (a, i, v) ->
      Format.fprintf fmt "%s%s[%a] += %a;@." ind a pp_expr i pp_expr v
  | Store_reduce (r, a, i, v) ->
      Format.fprintf fmt "%s%s[%a] = %s(%s[%a], %a);@." ind a pp_expr i (reduce_str r) a
        pp_expr i pp_expr v
  | Alloc (_, v, e) -> Format.fprintf fmt "%s%s = alloc(%a);@." ind v pp_expr e
  | Realloc (v, e) -> Format.fprintf fmt "%s%s = realloc(%a);@." ind v pp_expr e
  | Memset (v, e) -> Format.fprintf fmt "%smemset(%s, 0, %a);@." ind v pp_expr e
  | Fill (a, n, v) ->
      Format.fprintf fmt "%sfill(%s, %a, %a);@." ind a pp_expr n pp_expr v
  | For (v, lo, hi, body) ->
      Format.fprintf fmt "%sfor (%s = %a; %s < %a; %s++) {@." ind v pp_expr lo v
        pp_expr hi v;
      List.iter (pp_stmt_indent fmt (n + 1)) body;
      Format.fprintf fmt "%s}@." ind
  | ParallelFor (v, lo, hi, body, _) ->
      Format.fprintf fmt "%sparallel for (%s = %a; %s < %a; %s++) {@." ind v
        pp_expr lo v pp_expr hi v;
      List.iter (pp_stmt_indent fmt (n + 1)) body;
      Format.fprintf fmt "%s}@." ind
  | While (c, body) ->
      Format.fprintf fmt "%swhile (%a) {@." ind pp_expr c;
      List.iter (pp_stmt_indent fmt (n + 1)) body;
      Format.fprintf fmt "%s}@." ind
  | If (c, t, []) ->
      Format.fprintf fmt "%sif (%a) {@." ind pp_expr c;
      List.iter (pp_stmt_indent fmt (n + 1)) t;
      Format.fprintf fmt "%s}@." ind
  | If (c, t, e) ->
      Format.fprintf fmt "%sif (%a) {@." ind pp_expr c;
      List.iter (pp_stmt_indent fmt (n + 1)) t;
      Format.fprintf fmt "%s} else {@." ind;
      List.iter (pp_stmt_indent fmt (n + 1)) e;
      Format.fprintf fmt "%s}@." ind
  | Sort (v, lo, hi) -> Format.fprintf fmt "%ssort(%s, %a, %a);@." ind v pp_expr lo pp_expr hi
  | Comment c -> Format.fprintf fmt "%s// %s@." ind c
