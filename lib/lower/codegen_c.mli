(** C source emission for lowered kernels (the paper's target, Fig. 6
    "Target Code").

    Two renderings share the expression/statement printers:
    - {!emit}: the inspection form — one self-contained C function with
      the tensor buffers as parameters, used by the listing-fidelity
      tests and the golden snapshots. It compiles cleanly under
      [gcc -O3 -Wall -Werror -fopenmp].
    - {!emit_exec}: the executable form the native backend
      ({!Taco_exec}) compiles to a shared object and calls through a
      fixed flat ABI (see the contract below). *)

(** Render a kernel as a self-contained C function. *)
val emit : Imp.kernel -> string

(** Render only the body statements (no signature), e.g. for diffs. *)
val emit_body : Imp.kernel -> string

(** Name of the exported entry point of {!emit_exec} renderings
    (["taco_entry"]). *)
val entry_name : string

(** Render the translation unit the native backend compiles and loads.
    The exported entry point is

    {[ int taco_entry(const int64_t* iargs, const double* fargs,
                      void** aargs, void** esc, int64_t* esc_len,
                      int64_t mem_limit, int64_t deadline_ns) ]}

    with scalar parameters in [iargs]/[fargs] and array parameters in
    [aargs], each bank in kernel-parameter order. Arrays the kernel
    allocates (workspaces, assembled outputs) are handed back through
    [esc]/[esc_len] in {!exec_escapes} order; the caller owns those
    buffers on success. Returns 0 on success, 1 when an allocation
    fails or exceeds [mem_limit] (E_EXEC_MEM), 2 when [deadline_ns]
    expires (E_EXEC_CANCELLED); on failure all kernel allocations have
    been freed and [esc] is untouched. Semantics track the closure
    executor bit-for-bit (zeroed [max 1 n] allocations, grow-only
    reallocs with zeroed tails, element-count [> limit/8] budget
    checks, 256-iteration deadline polls in outermost loops).

    Raises [Invalid_argument] when the kernel is not expressible under
    this ABI (see {!exec_unsupported}). *)
val emit_exec : Imp.kernel -> string

(** Allocated int/float arrays of the kernel in first-allocation order —
    the buffers an {!emit_exec} rendering escapes to the caller, and the
    order in which they appear in [esc]/[esc_len]. *)
val exec_escapes : Imp.kernel -> (string * Imp.dtype) list

(** Array names the kernel writes through (store, memset, realloc,
    sort). Array parameters outside this set are emitted [const]. *)
val written_arrays : Imp.kernel -> string list

(** [Some reason] when {!emit_exec} cannot express the kernel under the
    flat ABI (bool parameters, realloc of a parameter array); [None]
    when native execution is possible. *)
val exec_unsupported : Imp.kernel -> string option

(** Whether the kernel body contains a [ParallelFor] (the native
    backend adds [-fopenmp] to the compile when it does). *)
val has_parallel : Imp.kernel -> bool
