(** Optimizer pipeline over the imperative IR.

    Lowered kernels carry the naive artifacts of mechanical lowering:
    loop-invariant position loads re-computed every iteration, dead
    temporaries left behind by merge-lattice specialization, [while]
    loops over ranges that are statically counted, and workspace
    [memset]s that duplicate the zeroing already done by allocation.
    This module cleans them up with a fixed sequence of rewrites, each
    individually toggleable so benchmarks can attribute speedup per
    pass.

    Soundness contract: every pass preserves the value semantics of the
    kernel exactly — including float bit patterns, which is why constant
    folding uses the same OCaml primitives as the executor and never
    applies identities (like [x +. 0.0]) that can change a sign bit.
    The only tolerated observable difference is that a rewrite may drop
    or move a pure expression whose evaluation would have faulted a
    bounds check in [~checked] mode; values produced by successful runs
    are bit-identical. {!Imp.validate} brackets the pipeline (run before
    the first pass and after every pass), mirroring how [Cin.validate]
    brackets scheduling transforms. *)

(** Which passes to run. Pass order is fixed (simplify, memset_fusion,
    while_to_for, branch_fusion, cse, licm, a simplify rerun that
    collapses the copy chains licm leaves behind, dce); a disabled pass
    is skipped. *)
type config = {
  simplify : bool;
      (** Constant folding, algebraic identities, copy/constant
          propagation, folding of statically-decided branches, and
          flipping [if (!c)] into an else-only branch. *)
  memset_fusion : bool;
      (** Drop a [Memset (v, n)] covered by a preceding [Alloc (_, v, n)]
          (allocation already zeroes) when nothing in between writes [v]
          or changes the meaning of [n]. *)
  while_to_for : bool;
      (** Rewrite [while (p < bound) { ...; p++ }] over an invariant
          bound into a counted [for] loop plus a final fix-up assignment
          of [p]. *)
  branch_fusion : bool;
      (** Sink a trailing guarded statement [if (g) s] into the arms of
          an immediately preceding case analysis when the truth of [g]
          is already decided in every arm (the merge-lattice
          case-plus-pointer-advance pattern), eliminating the re-test.
          Sinking is refused if any arm writes an operand of a
          condition involved or if [g] would be undecided somewhere. *)
  cse : bool;
      (** Share pure scalar expressions (no loads, no division)
          evaluated more than once with no intervening operand write
          through a fresh temporary. *)
  licm : bool;
      (** Hoist loop-invariant loads and index arithmetic out of loops
          into temporaries declared before the loop. *)
  dce : bool;
      (** Remove assignments and declarations of scalars that are never
          read (parameters and kernel-level declarations are kept: the
          executor exposes them to callers after a run). *)
}

(** All passes enabled: the default of {!Taco_exec.Compile.compile}. *)
val all : config

(** No passes enabled; {!optimize} is the identity. *)
val none : config

(** Per-pass metrics from one {!optimize_stats} run. Rewrite fires
    count the discrete rewrites a pass performed (folds, fused memsets,
    sunk guards, shared or hoisted temporaries, dropped statements);
    node counts are {!Imp.node_count} before/after, so
    [ps_nodes_before - ps_nodes_after] is the pass's IR shrinkage
    (negative for passes that introduce temporaries). *)
type pass_stat = {
  ps_pass : string;  (** Pass name as listed in {!config}. *)
  ps_time_ns : int64;  (** Wall time of the rewrite itself (validation excluded). *)
  ps_nodes_before : int;
  ps_nodes_after : int;
  ps_fires : int;
}

(** Run the enabled passes in order. [Imp.validate] runs as a
    precondition and again after each pass; a failure is reported as
    [Error msg] naming the offending pass and no partially-rewritten
    kernel escapes. With every pass disabled the kernel is returned
    unchanged (and unvalidated). *)
val optimize : ?config:config -> Imp.kernel -> (Imp.kernel, string) result

(** {!optimize}, additionally returning one {!pass_stat} per executed
    pass (in execution order). When tracing is enabled each pass is
    also recorded as an ["opt.<name>"] trace span carrying the same
    numbers. *)
val optimize_stats :
  ?config:config -> Imp.kernel -> (Imp.kernel * pass_stat list, string) result

(** {!optimize}, raising [Invalid_argument] on error. *)
val optimize_exn : ?config:config -> Imp.kernel -> Imp.kernel
