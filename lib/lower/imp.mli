(** Imperative low-level IR (paper Fig. 6, bottom box).

    The target of lowering: scalar declarations, array loads/stores,
    for/while loops, conditionals and the memory operations sparse
    assembly needs (alloc, geometric realloc, memset, sort). It
    pretty-prints to C ({!Codegen_c}) and compiles to closures for
    execution ({!Taco_exec.Compile}). *)

type dtype = Int | Float | Bool

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Min
  | Max
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr =
  | Var of string
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | Load of string * expr  (** array variable, index *)
  | Binop of binop * expr * expr
  | Not of expr
  | Ternary of expr * expr * expr  (** [cond ? a : b] *)
  | Round_single of expr
      (** Round a double to the nearest IEEE single (mixed-precision
          storage, paper §III). *)

(** Merge metadata for the append stage of a parallel loop: each domain
    appends into a private copy of the staging buffers starting at the
    shared counter's pre-loop value; after the barrier the segments are
    concatenated in chunk order. [pa_pos] names a CSR-style position
    array whose entries for a chunk's rows are rebased by the chunk's
    start offset. *)
type par_append = {
  pa_counter : string;  (** append counter scalar (e.g. [pA2]) *)
  pa_arrays : string list;  (** appended arrays sharing the counter (crd, vals) *)
  pa_pos : string option;  (** position array closed per iteration, if any *)
}

(** Execution metadata attached to a [ParallelFor]: which arrays each
    domain must own privately (dense workspaces and their tracking
    arrays), and the append stage to concatenate after the barrier.
    Everything else is shared: inputs are read-only and non-staged
    output writes are indexed by the loop variable, hence disjoint
    across chunks. *)
type par_info = { par_private : string list; par_stage : par_append option }

(** Non-plus additive reductions for semiring accumulation: emitted in
    C as [fmin]/[fmax]/a short-circuiting boolean-or over 0./1.
    encodings. The default (+, ×) semiring keeps using {!Store_add}. *)
type reduce = Red_min | Red_max | Red_or

type stmt =
  | Decl of dtype * string * expr
  | Assign of string * expr
  | Store of string * expr * expr  (** [arr[idx] = v] *)
  | Store_add of string * expr * expr  (** [arr[idx] += v] *)
  | Store_reduce of reduce * string * expr * expr
      (** [arr[idx] = reduce(arr[idx], v)] — float arrays only *)
  | Alloc of dtype * string * expr  (** array of [size] elements, zeroed *)
  | Realloc of string * expr  (** grow array to a new capacity, keeping contents *)
  | Memset of string * expr  (** zero the first [n] elements *)
  | Fill of string * expr * expr
      (** [Fill (arr, n, v)]: set the first [n] elements of a float
          array to the value [v] — the zeroing path for semirings whose
          additive identity is not all-zero bits (e.g. +inf), where
          {!Memset} would scribble the wrong value *)
  | For of string * expr * expr * stmt list  (** [for (v = lo; v < hi; v++)] *)
  | ParallelFor of string * expr * expr * stmt list * par_info
      (** [For] whose iterations are split into contiguous chunks across
          domains; results are bit-identical to the sequential loop for
          every domain count (see {!Taco_exec.Compile}). *)
  | While of expr * stmt list
  | If of expr * stmt list * stmt list
  | Sort of string * expr * expr  (** sort the int array slice [lo, hi) *)
  | Comment of string

type param = {
  p_name : string;
  p_dtype : dtype;
  p_array : bool;
  p_output : bool;  (** written by the kernel *)
}

type kernel = { k_name : string; k_params : param list; k_body : stmt list }

(** {2 Smart constructors with constant folding} *)

val add : expr -> expr -> expr

val sub : expr -> expr -> expr

val mul : expr -> expr -> expr

val min_ : expr -> expr -> expr

val eq : expr -> expr -> expr

val lt : expr -> expr -> expr

val and_ : expr -> expr -> expr

val or_ : expr -> expr -> expr

(** Fold a non-empty list with [min_]. *)
val min_list : expr list -> expr

(** Conjunction of a non-empty list. *)
val and_list : expr list -> expr

(** {2 Analysis} *)

(** Free variables of an expression (scalars and array names). *)
val expr_vars : expr -> string list

(** All variable names declared in a statement list (scalars, loop
    variables and arrays). *)
val declared : stmt list -> string list

(** Check the kernel: every used variable is a parameter or declared
    before use, declarations are unique per scope path, loop variables
    fresh. Returns the first problem found. *)
val check : kernel -> (unit, string) result

(** Total number of expression and statement nodes in the kernel body —
    the IR size metric reported per optimizer pass. *)
val node_count : kernel -> int

(** Full verifier pass over a lowered kernel: {!check}'s def-before-use
    discipline plus type consistency (arithmetic/comparison/logical
    operand types, declaration and store types) and array/scalar arity
    (scalars never indexed, arrays never used bare). Runs after lowering
    and before compilation so type errors name the offending variable at
    the IR level instead of surfacing from the executor. *)
val validate : kernel -> (unit, string) result

val pp_expr : Format.formatter -> expr -> unit

val pp_stmt : Format.formatter -> stmt -> unit
