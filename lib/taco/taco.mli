(** The user-facing API, mirroring the paper's Fig. 2 C++ snippet: declare
    tensor and index variables, write an index notation statement,
    schedule it with [reorder]/[precompute], then compile and run.

    Re-exported submodules give access to every layer (formats, tensors,
    IRs, lowering, execution) for advanced use. *)

module Format = Taco_tensor.Format
module Level = Taco_tensor.Level
module Dense = Taco_tensor.Dense
module Coo = Taco_tensor.Coo
module Tensor = Taco_tensor.Tensor
module Gen = Taco_tensor.Gen
module Suite = Taco_tensor.Suite
module Io = Taco_tensor.Io
module Index_var = Taco_ir.Var.Index_var
module Tensor_var = Taco_ir.Var.Tensor_var
module Index_notation = Taco_ir.Index_notation
module Cin = Taco_ir.Cin
module Cin_eval = Taco_ir.Cin_eval
module Semiring = Taco_ir.Semiring
module Concretize = Taco_ir.Concretize
module Reorder = Taco_ir.Reorder
module Workspace = Taco_ir.Workspace
module Heuristics = Taco_ir.Heuristics
module Schedule = Taco_ir.Schedule
module Autoschedule = Taco_ir.Autoschedule
module Stats = Taco_stats.Stats
module Cost = Taco_ir.Cost
module Plan_cache = Taco_ir.Plan_cache
module Imp = Taco_lower.Imp
module Merge_lattice = Taco_lower.Merge_lattice
module Lower = Taco_lower.Lower
module Opt = Taco_lower.Opt
module Codegen_c = Taco_lower.Codegen_c
module Compile = Taco_exec.Compile
module Native = Taco_exec.Native
module Kernel = Taco_exec.Kernel
module Parallel = Taco_exec.Parallel
module Budget = Taco_exec.Budget
module Diag = Taco_support.Diag
module Trace = Taco_support.Trace
module Obs = Taco_support.Obs
module Metrics = Taco_support.Metrics
module Events = Taco_support.Events

(** {2 Declarations} *)

(** [ivar "i"] declares an index variable. *)
val ivar : string -> Index_var.t

(** [tensor "A" Format.csr] declares a tensor variable (order from the
    format). *)
val tensor : string -> Format.t -> Tensor_var.t

(** [workspace "w" Format.dense_vector] declares a workspace tensor. *)
val workspace : string -> Format.t -> Tensor_var.t

(** {2 Pipeline} *)

(** A compiled statement: a prepared kernel plus its schedule. *)
type compiled

(** [compile ?name ?mode ?splits ?checked sched] lowers and compiles.
    Default mode: fused assemble-and-compute for compressed results
    (sorted), compute for dense results. [splits] strip-mines dense loops
    (see {!Lower.lower}). [checked] compiles in the bounds-checked
    execution mode: every array access is verified and violations are
    reported as stage-[Execute] diagnostics naming the kernel, variable
    and index. [opt] selects the {!Opt} passes applied to the lowered
    kernel (default: all); [profile] compiles in the counter-gathering
    execution mode (see {!Compile.run_stats}). [backend] selects the
    executor: [`Closure] (default) or [`Native], which compiles the
    emitted C to a shared object and downgrades to closures — counted,
    never an error — when no C compiler is available (see
    {!Compile.backend}). [semiring] (default (+, ×)) reinterprets the
    statement's operators over another semiring — min-plus, max-times or
    boolean or-and (see {!Lower.lower}). Failures are stage-tagged
    diagnostics ([Lower] for lowering rejections, [Compile] for kernel
    compilation). *)
val compile :
  ?name:string ->
  ?mode:Lower.mode ->
  ?splits:(Index_var.t * int) list ->
  ?semiring:Semiring.t ->
  ?checked:bool ->
  ?profile:bool ->
  ?opt:Opt.config ->
  ?backend:Compile.backend ->
  Schedule.t ->
  (compiled, Diag.t) result

(** {!Schedule.parallelize} with structured diagnostics: an illegal
    directive (the variable is not the outermost forall, or iterations
    reduce into an output location not indexed by it) is reported as a
    stage-[Concretize] diagnostic with code [E_PAR_ILLEGAL] naming the
    index. The lowering backstop in {!compile} uses the same code when
    the marked loop turns out not to be parallelizable structurally
    (e.g. it is a coiteration merge loop). *)
val parallelize : Index_var.t -> Schedule.t -> (Schedule.t, Diag.t) result

val kernel : compiled -> Kernel.t

(** The backend actually executing this statement's kernel ([`Closure]
    when a [`Native] request was downgraded). *)
val backend_of : compiled -> Compile.backend

(** The (scheduled) concrete index notation behind a compiled statement. *)
val schedule_of : compiled -> Schedule.t

(** The generated C source (paper-style, for inspection). *)
val c_source : compiled -> string

(** Concrete index notation of the compiled schedule, pretty-printed. *)
val cin_string : compiled -> string

(** [run compiled ~inputs] executes; result dimensions are inferred from
    the input tensors' dimensions. For compressed results the kernel must
    have been compiled in an [Assemble] mode (the default).

    [?domains] (default 1) is the chunk count for kernels scheduled with
    {!parallelize}; results are bit-identical for every value (see
    {!Compile.run}). Kernels without a parallel loop ignore it.

    [?deadline_ns] arms the executor's cooperative watchdog against the
    {!Taco_support.Trace.now_ns} clock: a run still inside a kernel loop
    when the deadline passes is cancelled with [E_EXEC_CANCELLED]
    (stage [Execute]) instead of running to completion. *)
val run :
  ?domains:int ->
  ?deadline_ns:int64 ->
  compiled ->
  inputs:(Tensor_var.t * Tensor.t) list ->
  (Tensor.t, Diag.t) result

(** [run_with_output compiled ~inputs ~output] for [Compute]-mode kernels
    with pre-assembled sparse outputs; the output's values are written in
    place. *)
val run_with_output :
  ?domains:int ->
  ?deadline_ns:int64 ->
  compiled ->
  inputs:(Tensor_var.t * Tensor.t) list ->
  output:Tensor.t ->
  (unit, Diag.t) result

(** One-shot convenience: parse nothing, schedule nothing — concretize,
    compile and run an index notation statement. *)
val einsum :
  Index_notation.t -> inputs:(Tensor_var.t * Tensor.t) list -> (Tensor.t, Diag.t) result

(** Like {!compile} but drives the statement to a lowerable form first
    with the {!Autoschedule} policy (reorders + workspace heuristics),
    returning the compiled kernel and the scheduling steps taken. This is
    the "policy system built on top of the scheduling API" the paper
    leaves as future work. *)
val auto_compile :
  ?name:string ->
  ?mode:Lower.mode ->
  ?semiring:Semiring.t ->
  ?checked:bool ->
  ?profile:bool ->
  ?opt:Opt.config ->
  ?backend:Compile.backend ->
  Schedule.t ->
  (compiled * Autoschedule.step list, Diag.t) result

(** {!auto_compile} with the full decision surface exposed: pass
    per-tensor statistics ([stats], names matching the statement's
    tensor variables — see {!Stats.of_tensor}) to drive the cost model
    with real sparsity instead of defaults, and receive the search's
    {!Autoschedule.explain} audit record. When [stats] is given the
    chosen plan is also cached under (expression structure, lowering
    mode, stats bucket), so an identical follow-up call skips the search
    — [e_cache_hit] reports this, and the [taco_plan_cache_*] metrics
    count it. Each search emits one ["plan.chosen"] event (plan id,
    estimated cost, search time) into the {!Events} log, joinable with
    serve requests by rid. *)
val auto_compile_explained :
  ?name:string ->
  ?mode:Lower.mode ->
  ?semiring:Semiring.t ->
  ?checked:bool ->
  ?profile:bool ->
  ?opt:Opt.config ->
  ?backend:Compile.backend ->
  ?stats:(string * Stats.t) list ->
  Schedule.t ->
  (compiled * Autoschedule.step list * Autoschedule.explain, Diag.t) result

(** {!einsum} with autoscheduling: handles statements (like sparse matrix
    multiplication) that plain einsum rejects. *)
val auto_einsum :
  Index_notation.t -> inputs:(Tensor_var.t * Tensor.t) list -> (Tensor.t, Diag.t) result

(** Infer the result's dimensions from the statement and input tensors. *)
val infer_result_dims :
  Cin.stmt -> inputs:(Tensor_var.t * Tensor.t) list -> (int array, Diag.t) result
