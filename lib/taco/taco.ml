module Format = Taco_tensor.Format
module Level = Taco_tensor.Level
module Dense = Taco_tensor.Dense
module Coo = Taco_tensor.Coo
module Tensor = Taco_tensor.Tensor
module Gen = Taco_tensor.Gen
module Suite = Taco_tensor.Suite
module Io = Taco_tensor.Io
module Index_var = Taco_ir.Var.Index_var
module Tensor_var = Taco_ir.Var.Tensor_var
module Index_notation = Taco_ir.Index_notation
module Cin = Taco_ir.Cin
module Cin_eval = Taco_ir.Cin_eval
module Semiring = Taco_ir.Semiring
module Concretize = Taco_ir.Concretize
module Reorder = Taco_ir.Reorder
module Workspace = Taco_ir.Workspace
module Heuristics = Taco_ir.Heuristics
module Schedule = Taco_ir.Schedule
module Autoschedule = Taco_ir.Autoschedule
module Stats = Taco_stats.Stats
module Cost = Taco_ir.Cost
module Plan_cache = Taco_ir.Plan_cache
module Imp = Taco_lower.Imp
module Merge_lattice = Taco_lower.Merge_lattice
module Lower = Taco_lower.Lower
module Opt = Taco_lower.Opt
module Codegen_c = Taco_lower.Codegen_c
module Compile = Taco_exec.Compile
module Native = Taco_exec.Native
module Kernel = Taco_exec.Kernel
module Parallel = Taco_exec.Parallel
module Budget = Taco_exec.Budget
module Diag = Taco_support.Diag
module Trace = Taco_support.Trace
module Obs = Taco_support.Obs
module Metrics = Taco_support.Metrics
module Events = Taco_support.Events

let ivar = Index_var.make

let tensor name fmt = Tensor_var.make name ~order:(Format.order fmt) ~format:fmt

let workspace name fmt = Tensor_var.workspace name ~order:(Format.order fmt) ~format:fmt

type compiled = { sched : Schedule.t; kern : Kernel.t }

let default_mode stmt =
  match
    List.find_opt
      (fun tv -> not (Tensor_var.is_workspace tv))
      (Cin.tensors_written stmt)
  with
  | Some result when not (Format.is_all_dense (Tensor_var.format result)) ->
      Lower.Assemble { emit_values = true; sorted = true }
  | Some _ | None -> Lower.Compute

let prepare_res ?checked ?profile ?opt ?backend info =
  match Kernel.prepare ?checked ?profile ?opt ?backend info with
  | kern -> Ok kern
  | exception Invalid_argument msg ->
      Diag.error ~stage:Diag.Compile ~code:"E_COMPILE_TYPE"
        ~context:[ ("kernel", info.Lower.kernel.Imp.k_name) ]
        "%s" msg

(* Parallelization failures carry their own diagnostic code so callers
   (and the service) can distinguish an illegal directive from a plain
   lowering rejection. *)
let par_illegal msg =
  let p = "cannot parallelize" in
  String.length msg >= String.length p && String.sub msg 0 (String.length p) = p

let parallelize v sched =
  match Schedule.parallelize v sched with
  | Ok s -> Ok s
  | Error msg ->
      Diag.error ~stage:Diag.Concretize ~code:"E_PAR_ILLEGAL"
        ~context:[ ("index", Index_var.name v) ]
        "%s" msg

let compile ?(name = "kernel") ?mode ?splits ?semiring ?checked ?profile ?opt ?backend sched
    =
  let stmt = Schedule.stmt sched in
  let mode = match mode with Some m -> m | None -> default_mode stmt in
  match
    Lower.lower ~name ?splits ?semiring ?parallel:(Schedule.parallel sched) ~mode stmt
  with
  | Error msg ->
      Diag.error ~stage:Diag.Lower
        ~code:(if par_illegal msg then "E_PAR_ILLEGAL" else "E_LOWER")
        "%s" msg
  | Ok info -> (
      match prepare_res ?checked ?profile ?opt ?backend info with
      | Error e -> Error e
      | Ok kern -> Ok { sched; kern })

let kernel c = c.kern

let backend_of c = Kernel.backend c.kern

let schedule_of c = c.sched

let c_source c = Kernel.c_source c.kern

let cin_string c = Cin.to_string (Schedule.stmt c.sched)

let infer_result_dims stmt ~inputs =
  let rec accesses = function
    | Cin.Assignment { lhs; rhs; _ } ->
        let rec e_acc = function
          | Cin.Literal _ -> []
          | Cin.Access a -> [ a ]
          | Cin.Neg e -> e_acc e
          | Cin.Add (a, b) | Cin.Sub (a, b) | Cin.Mul (a, b) | Cin.Div (a, b) ->
              e_acc a @ e_acc b
        in
        lhs :: e_acc rhs
    | Cin.Forall (_, s) -> accesses s
    | Cin.Where (c, p) -> accesses c @ accesses p
    | Cin.Sequence (a, b) -> accesses a @ accesses b
  in
  let ranges : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a : Cin.access) ->
      match List.find_opt (fun (tv, _) -> Tensor_var.equal tv a.tensor) inputs with
      | None -> ()
      | Some (_, t) ->
          let dims = Tensor.dims t in
          List.iteri
            (fun m v -> Hashtbl.replace ranges (Index_var.name v) dims.(m))
            a.indices)
    (accesses stmt);
  (* Propagate ranges through workspace modes: the consumer and producer
     may index the same workspace with different (renamed) variables,
     e.g. w(jc) and w(jp) after a precompute with renaming triplets. *)
  for _pass = 1 to 2 do
    let ws_mode_range : (string * int, int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (a : Cin.access) ->
        if Tensor_var.is_workspace a.tensor then
          List.iteri
            (fun m v ->
              match Hashtbl.find_opt ranges (Index_var.name v) with
              | Some r -> Hashtbl.replace ws_mode_range (Tensor_var.name a.tensor, m) r
              | None -> ())
            a.indices)
      (accesses stmt);
    List.iter
      (fun (a : Cin.access) ->
        if Tensor_var.is_workspace a.tensor then
          List.iteri
            (fun m v ->
              if not (Hashtbl.mem ranges (Index_var.name v)) then
                match Hashtbl.find_opt ws_mode_range (Tensor_var.name a.tensor, m) with
                | Some r -> Hashtbl.replace ranges (Index_var.name v) r
                | None -> ())
            a.indices)
      (accesses stmt)
  done;
  match
    List.find_opt
      (fun tv -> not (Tensor_var.is_workspace tv))
      (Cin.tensors_written stmt)
  with
  | None ->
      Diag.error ~stage:Diag.Execute ~code:"E_EXEC_DIMS"
        "the statement writes no result tensor"
  | Some result -> (
      let lhs =
        List.find_opt
          (fun (a : Cin.access) -> Tensor_var.equal a.tensor result)
          (accesses stmt)
      in
      match lhs with
      | None ->
          Diag.error ~stage:Diag.Execute ~code:"E_EXEC_DIMS"
            "internal: result access not found"
      | Some a -> (
          let dims =
            List.map
              (fun v -> Hashtbl.find_opt ranges (Index_var.name v))
              a.indices
          in
          if List.for_all Option.is_some dims then
            Ok (Array.of_list (List.map Option.get dims))
          else
            Diag.error ~stage:Diag.Execute ~code:"E_EXEC_DIMS"
              "cannot infer the result's dimensions from the inputs (a result \
               index variable indexes no input)"))

(* Execution errors surface three ways: [Invalid_argument] for binding
   arity/format/type mismatches, [Diag.Error] from the bounds-checked
   execution mode, and plain dimension-inference failures. *)
let exec_ctx c = [ ("kernel", (Kernel.info c.kern).Lower.kernel.Imp.k_name) ]

let run_exec c f =
  match f () with
  | v -> Ok v
  | exception Invalid_argument e ->
      Diag.error ~stage:Diag.Execute ~code:"E_EXEC_BINDING" ~context:(exec_ctx c) "%s" e
  | exception Diag.Error d -> Error d

let run ?domains ?deadline_ns c ~inputs =
  let stmt = Schedule.stmt c.sched in
  match infer_result_dims stmt ~inputs with
  | Error e -> Error e
  | Ok dims -> (
      let info = Kernel.info c.kern in
      match info.Lower.mode with
      | Lower.Assemble _ ->
          run_exec c (fun () ->
              Kernel.run_assemble ?domains ?deadline_ns c.kern ~inputs ~dims)
      | Lower.Compute ->
          if Format.is_all_dense (Tensor_var.format info.Lower.result) then
            run_exec c (fun () ->
                Kernel.run_dense ?domains ?deadline_ns c.kern ~inputs ~dims)
          else
            Diag.error ~stage:Diag.Execute ~code:"E_EXEC_MODE" ~context:(exec_ctx c)
              "compute-mode kernels with compressed results need a \
               pre-assembled output; use run_with_output")

let run_with_output ?domains ?deadline_ns c ~inputs ~output =
  run_exec c (fun () ->
      Kernel.run_compute ?domains ?deadline_ns c.kern ~inputs ~output)

let mode_tag = function
  | Lower.Compute -> "compute"
  | Lower.Assemble { emit_values; sorted } ->
      Printf.sprintf "assemble:%b:%b" emit_values sorted

(* Plan-cache key: expression structure x tensor formats x lowering
   mode x stats bucket. The structure string pins the exact schedule
   search input; the format list matters because [Cin.to_string] renders
   tensors by name only, and a cached plan embeds its tensor variables —
   formats included — so two statements that print alike but store their
   operands differently must not share a plan. The stats bucket
   (power-of-two quantized dims/nnz) lets tensors with similar shapes
   share one plan without letting a cached plan hide a 10x sparsity
   change. *)
let plan_key stmt mode stats =
  let formats =
    Cin.tensors stmt
    |> List.map (fun tv ->
           Tensor_var.name tv ^ ":" ^ Format.to_string (Tensor_var.format tv))
    |> List.sort compare
    |> String.concat ";"
  in
  let buckets =
    stats
    |> List.map (fun (n, s) -> n ^ "=" ^ Stats.bucket s)
    |> List.sort compare
    |> String.concat ";"
  in
  Cin.to_string stmt ^ "|" ^ formats ^ "|" ^ mode_tag mode ^ "|" ^ buckets

let plan_id stmt = String.sub (Digest.to_hex (Digest.string (Cin.to_string stmt))) 0 12

(* One "plan.chosen" event per search, joinable with serve.request
   lines by rid: plan id, estimated cost, search time, cache hit. *)
let emit_plan_event plan (explain : Autoschedule.explain) =
  if Events.enabled () then begin
    let base =
      [
        ("plan", Events.Str (plan_id plan.Autoschedule.p_stmt));
        ("est_cost", Events.Float plan.Autoschedule.p_cost);
        ("default_cost", Events.Float explain.Autoschedule.e_default_cost);
        ("search_ns", Events.I64 explain.Autoschedule.e_search_ns);
        ("cache_hit", Events.Bool explain.Autoschedule.e_cache_hit);
        ("steps", Events.Int (List.length plan.Autoschedule.p_steps));
      ]
    in
    let fields =
      match Trace.request_id () with
      | Some rid -> ("rid", Events.Int rid) :: base
      | None -> base
    in
    Events.emit "plan.chosen" fields
  end

let auto_compile_explained ?(name = "kernel") ?mode ?semiring ?checked ?profile ?opt
    ?backend ?stats sched =
  let stmt = Schedule.stmt sched in
  let mode = match mode with Some m -> m | None -> default_mode stmt in
  let lowerable s =
    Result.map (fun (_ : Lower.kernel_info) -> ()) (Lower.lower ~name ?semiring ~mode s)
  in
  (* The searched plan (loop order, workspaces) is semiring-independent,
     but legality is not, so cached plans are keyed per semiring. *)
  let key =
    Option.map
      (fun st ->
        let base = plan_key stmt mode st in
        match semiring with
        | None -> base
        | Some sr -> base ^ "|" ^ sr.Taco_ir.Semiring.name)
      stats
  in
  let stats = Option.value ~default:[] stats in
  match
    Diag.of_msg ~stage:Diag.Workspace ~code:"E_AUTOSCHEDULE"
      (Autoschedule.search ~stats ?key ~lowerable stmt)
  with
  | Error e -> Error e
  | Ok (plan, explain) -> (
      emit_plan_event plan explain;
      let sched' =
        let s = Schedule.of_stmt plan.Autoschedule.p_stmt in
        match plan.Autoschedule.p_par with
        | None -> s
        | Some v -> (
            (* Advisory; a refusal here just means sequential execution. *)
            match Schedule.parallelize v s with Ok s' -> s' | Error _ -> s)
      in
      match
        Diag.of_msg ~stage:Diag.Lower ~code:"E_LOWER"
          (Lower.lower ~name ?semiring ?parallel:(Schedule.parallel sched') ~mode
             plan.Autoschedule.p_stmt)
      with
      | Error e -> Error e
      | Ok info -> (
          match prepare_res ?checked ?profile ?opt ?backend info with
          | Error e -> Error e
          | Ok kern ->
              Ok ({ sched = sched'; kern }, plan.Autoschedule.p_steps, explain)))

let auto_compile ?name ?mode ?semiring ?checked ?profile ?opt ?backend sched =
  Result.map
    (fun (c, steps, _explain) -> (c, steps))
    (auto_compile_explained ?name ?mode ?semiring ?checked ?profile ?opt ?backend sched)

let concretize_res stmt =
  Diag.of_msg ~stage:Diag.Concretize ~code:"E_CONCRETIZE"
    (Schedule.of_index_notation stmt)

let auto_einsum stmt ~inputs =
  match concretize_res stmt with
  | Error e -> Error e
  | Ok sched -> (
      match auto_compile sched with
      | Error e -> Error e
      | Ok (c, _) -> run c ~inputs)

let einsum stmt ~inputs =
  match concretize_res stmt with
  | Error e -> Error e
  | Ok sched -> (
      match compile sched with
      | Error e -> Error e
      | Ok c -> run c ~inputs)
