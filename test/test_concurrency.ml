(* Domain-safety of the shared infrastructure: the compiled-kernel cache
   under multi-domain stress, tracing from concurrent domains, and
   bit-identical parallel execution across domain counts. *)

open Helpers
open Taco
module T = Taco_tensor.Tensor
module D = Taco_tensor.Dense
module F = Taco_tensor.Format

(* --- the compiled-kernel cache under concurrent compilation --------- *)

(* Two schedules with distinct kernel structures. *)
let sched_copy () =
  let b = csr_tv "B" in
  let a = dense_mat_tv "A" in
  let stmt = Index_notation.assign a [ vi; vj ] (Index_notation.access b [ vi; vj ]) in
  get (Schedule.of_index_notation stmt)

let sched_scale () =
  let b = csr_tv "B" in
  let a = dense_mat_tv "A" in
  let stmt =
    Index_notation.assign a [ vi; vj ]
      (Index_notation.Mul (Index_notation.access b [ vi; vj ], Index_notation.Literal 2.))
  in
  get (Schedule.of_index_notation stmt)

let test_cache_stress () =
  Compile.cache_clear ();
  let rounds = 25 in
  let spawn sched =
    Domain.spawn (fun () ->
        for _ = 1 to rounds do
          match compile ~name:"stress" sched with
          | Ok _ -> ()
          | Error d -> failwith (Taco_support.Diag.to_string d)
        done)
  in
  (* Four domains, two alternating over each structure: every compile
     races against same-structure and different-structure compiles. *)
  let ws =
    [ spawn (sched_copy ()); spawn (sched_scale ()); spawn (sched_copy ());
      spawn (sched_scale ()) ]
  in
  List.iter Domain.join ws;
  let cs = Compile.cache_stats () in
  Alcotest.(check int) "two closure builds for two structures" 2 cs.Compile.misses;
  Alcotest.(check int) "two cache entries" 2 cs.Compile.entries;
  Alcotest.(check int) "every other lookup hit" ((4 * rounds) - 2) cs.Compile.hits;
  Alcotest.(check int) "no evictions" 0 cs.Compile.evictions

let test_cache_stress_results () =
  (* Concurrently compiled kernels must also run correctly on their own
     domains. *)
  Compile.cache_clear ();
  let bt = random_tensor 77 [| 12; 9 |] 0.3 F.csr in
  let b = csr_tv "B" in
  let expected = T.to_dense bt in
  let worker () =
    Domain.spawn (fun () ->
        List.init 10 (fun _ ->
            let c = Result.get_ok (compile ~name:"stress" (sched_copy ())) in
            let r = Result.get_ok (run c ~inputs:[ (b, bt) ]) in
            T.to_dense r))
  in
  let results = List.concat_map Domain.join [ worker (); worker (); worker () ] in
  List.iter (fun d -> check_dense "concurrent runs agree" expected d) results

(* --- tracing from two domains --------------------------------------- *)

let test_trace_two_domains () =
  Trace.enable ();
  Trace.clear ();
  let work label =
    Domain.spawn (fun () ->
        for _ = 1 to 20 do
          Trace.with_span label (fun () ->
              Trace.with_span (label ^ ".inner") (fun () -> Trace.add "conc.ticks" 1))
        done)
  in
  let a = work "conc.a" and b = work "conc.b" in
  Domain.join a;
  Domain.join b;
  Alcotest.(check int) "no span left open" 0 (Trace.open_spans ());
  Alcotest.(check int) "counter sums across domains" 40 (Trace.counter_total "conc.ticks");
  (* The export must carry both domains' spans with their tids; the
     summary pairs B/E per domain without misnesting failures. *)
  let count_infix hay needle =
    let n = String.length needle and total = ref 0 in
    for i = 0 to String.length hay - n do
      if String.sub hay i n = needle then incr total
    done;
    !total
  in
  let json = Trace.to_chrome_json () in
  Alcotest.(check bool) "export names traceEvents" true
    (count_infix json "\"traceEvents\"" = 1);
  Alcotest.(check int) "20 begin events from domain a" 20 (count_infix json "\"name\":\"conc.a\"" / 2);
  Alcotest.(check int) "20 begin events from domain b" 20 (count_infix json "\"name\":\"conc.b\"" / 2);
  Alcotest.(check bool) "events carry tids" true (count_infix json "\"tid\":" > 0);
  let summary = Trace.summary () in
  Alcotest.(check bool) "summary covers both spans" true
    (count_infix summary "conc.a" > 0 && count_infix summary "conc.b" > 0);
  Trace.clear ();
  Trace.disable ()

(* --- parallel execution is bit-identical across domain counts ------- *)

(* A dense-result kernel linear in B: A(i,j) = sum_k B(i,k) * C(k,j). *)
let matmul_kernel () =
  let b = csr_tv "B" in
  let c = dense_mat_tv "C" in
  let a = dense_mat_tv "A" in
  let stmt =
    Index_notation.assign a [ vi; vj ]
      (Index_notation.sum vk
         (Index_notation.Mul
            (Index_notation.access b [ vi; vk ], Index_notation.access c [ vk; vj ])))
  in
  let sched = get (Schedule.of_index_notation stmt) in
  (b, c, Taco_exec.Kernel.prepare (get (Lower.lower ~mode:Lower.Compute (Schedule.stmt sched))))

let check_bit_identical bt ct =
  let b, c, kern = matmul_kernel () in
  let m = (T.dims bt).(0) and n = (T.dims ct).(1) in
  let inputs = [ (b, bt); (c, ct) ] in
  let dims = [| m; n |] in
  let reference = Taco_exec.Kernel.run_dense kern ~inputs ~dims in
  let ref_vals = T.vals reference in
  List.for_all
    (fun domains ->
      let r =
        Taco_exec.Parallel.run_dense ~clamp:false kern ~inputs ~dims ~split:b ~domains
      in
      (* Bit identity, not epsilon closeness: disjoint row partitions
         mean each output element is produced by exactly one domain, in
         the same operation order as the sequential run. *)
      T.vals r = ref_vals)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_parallel_bit_identical_random =
  qcheck_case ~count:25 "run_dense bit-identical across domain counts"
    QCheck.(pair (pair (1 -- 12) (1 -- 12)) (pair (1 -- 12) small_int))
    (fun ((rows, cols), (inner, seed)) ->
      let bt = random_tensor (seed + 1) [| rows; inner |] 0.4 F.csr in
      let ct = random_tensor (seed + 2) [| inner; cols |] 1.0 F.dense_matrix in
      check_bit_identical bt ct)

let test_parallel_more_domains_than_rows () =
  (* Fewer populated rows than domains: the spare partitions are empty
     and must be skipped, not break identity. *)
  let bt = random_tensor 501 [| 3; 10 |] 0.5 F.csr in
  let ct = random_tensor 502 [| 10; 6 |] 1.0 F.dense_matrix in
  Alcotest.(check bool) "identical with domains > rows" true (check_bit_identical bt ct)

let test_parallel_empty_operand () =
  (* An all-empty split operand must yield the all-zero result at every
     domain count. *)
  let bt = T.of_dense (D.create [| 6; 6 |]) F.csr in
  let ct = random_tensor 503 [| 6; 6 |] 1.0 F.dense_matrix in
  Alcotest.(check bool) "identical with empty operand" true (check_bit_identical bt ct)

(* --- the domain budget bounds total live domains -------------------- *)

module Budget = Taco_exec.Budget
module Service = Taco_service.Service

let test_budget_bounds_oversubscription () =
  (* A worker pool holds one budget permit per worker; a parallel kernel
     executing inside the pool can only acquire what is left, so the
     process-wide count of extra domains never exceeds the capacity even
     when a request asks for 8 chunks. *)
  let old_cap = Budget.capacity () in
  Fun.protect ~finally:(fun () -> Budget.set_capacity old_cap) @@ fun () ->
  Budget.set_capacity 3;
  Budget.reset_peak ();
  let svc = Service.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  Alcotest.(check int) "pool holds one permit per worker" 2 (Budget.live_extra ());
  let bt = random_tensor 601 [| 16; 8 |] 0.4 F.csr in
  let ct = random_tensor 602 [| 16; 8 |] 0.4 F.csr in
  let req =
    Service.request
      ~directives:[ Service.Parallelize "i" ]
      ~result_format:F.csr ~domains:8 ~expr:"A(i,j) = B(i,j) + C(i,j)"
      ~inputs:[ ("B", bt); ("C", ct) ]
      ()
  in
  (match Service.eval svc req with
  | Error d ->
      Alcotest.failf "parallel serve request failed: %s" (Taco_support.Diag.to_string d)
  | Ok r ->
      check_dense "parallel serve result"
        (T.to_dense (Taco_kernels.Spadd.merge_add bt ct))
        (T.to_dense r.Service.tensor));
  Alcotest.(check bool) "total extra domains never exceeded the budget" true
    (Budget.peak_extra () <= 3);
  Service.shutdown svc;
  Alcotest.(check int) "permits returned at shutdown" 0 (Budget.live_extra ())

let () =
  Alcotest.run "concurrency"
    [
      ( "compile-cache",
        [
          Alcotest.test_case "multi-domain stress, single-flight accounting" `Quick
            test_cache_stress;
          Alcotest.test_case "concurrent compile+run agree" `Quick
            test_cache_stress_results;
        ] );
      ("trace", [ Alcotest.test_case "two-domain tracing" `Quick test_trace_two_domains ]);
      ( "parallel",
        [
          test_parallel_bit_identical_random;
          Alcotest.test_case "domains exceed populated rows" `Quick
            test_parallel_more_domains_than_rows;
          Alcotest.test_case "all-empty split operand" `Quick test_parallel_empty_operand;
        ] );
      ( "budget",
        [
          Alcotest.test_case "worker pool + parallel kernel stay within budget" `Quick
            test_budget_bounds_oversubscription;
        ] );
    ]
