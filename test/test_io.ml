(* Matrix Market and FROSTT file I/O. *)

module F = Taco_tensor.Format
module T = Taco_tensor.Tensor
module Io = Taco_tensor.Io
module Coo = Taco_tensor.Coo

let temp_file = Filename.temp_file "taco_io" ".txt"

let write path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let test_mtx_roundtrip () =
  let t = Helpers.random_tensor 301 [| 7; 9 |] 0.3 F.csr in
  Helpers.getd (Io.write_matrix_market temp_file t);
  let coo = Helpers.getd (Io.read_matrix_market temp_file) in
  Helpers.check_dense "roundtrip" (T.to_dense t) (Coo.to_dense coo)

let test_mtx_parse () =
  write temp_file
    "%%MatrixMarket matrix coordinate real general\n\
     % a comment\n\
     3 4 2\n\
     1 2 1.5\n\
     3 4 -2.5\n";
  let coo = Helpers.getd (Io.read_matrix_market temp_file) in
  let d = Coo.to_dense coo in
  Alcotest.(check (float 0.)) "entry 1" 1.5 (Taco_tensor.Dense.get d [| 0; 1 |]);
  Alcotest.(check (float 0.)) "entry 2" (-2.5) (Taco_tensor.Dense.get d [| 2; 3 |]);
  Alcotest.(check (array int)) "dims" [| 3; 4 |] (Coo.dims coo)

let test_mtx_symmetric () =
  write temp_file
    "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 7.0\n";
  let coo = Helpers.getd (Io.read_matrix_market temp_file) in
  let d = Coo.to_dense coo in
  Alcotest.(check (float 0.)) "lower" 5. (Taco_tensor.Dense.get d [| 1; 0 |]);
  Alcotest.(check (float 0.)) "mirrored" 5. (Taco_tensor.Dense.get d [| 0; 1 |]);
  Alcotest.(check (float 0.)) "diagonal not doubled" 7. (Taco_tensor.Dense.get d [| 2; 2 |])

let test_mtx_pattern () =
  write temp_file "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n2 2\n";
  let coo = Helpers.getd (Io.read_matrix_market temp_file) in
  Alcotest.(check (float 0.)) "pattern reads as 1" 1.
    (Taco_tensor.Dense.get (Coo.to_dense coo) [| 1; 1 |])

let test_mtx_errors () =
  write temp_file "not a matrix\n";
  (match Io.read_matrix_market temp_file with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header accepted");
  write temp_file "%%MatrixMarket matrix array real general\n2 2\n1.0\n";
  (match Io.read_matrix_market temp_file with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "array format accepted");
  write temp_file "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 oops 1.0\n";
  (match Io.read_matrix_market temp_file with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad entry accepted");
  (match Io.read_matrix_market "/nonexistent/file.mtx" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted")

let test_frostt_roundtrip () =
  let prng = Taco_support.Prng.create 302 in
  let t = Taco_tensor.Gen.random prng ~dims:[| 4; 5; 6 |] ~nnz:12 (F.csf 3) in
  Helpers.getd (Io.write_frostt temp_file t);
  let coo = Helpers.getd (Io.read_frostt ~dims:[| 4; 5; 6 |] temp_file) in
  Helpers.check_dense "roundtrip" (T.to_dense t) (Coo.to_dense coo)

let test_frostt_infer_dims () =
  write temp_file "# comment\n1 1 1 2.0\n3 2 4 1.0\n";
  let coo = Helpers.getd (Io.read_frostt temp_file) in
  Alcotest.(check (array int)) "inferred dims" [| 3; 2; 4 |] (Coo.dims coo);
  Alcotest.(check (float 0.)) "value" 2. (Taco_tensor.Dense.get (Coo.to_dense coo) [| 0; 0; 0 |])

let test_frostt_errors () =
  write temp_file "1 2 not_a_number\n";
  (match Io.read_frostt temp_file with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad value accepted");
  write temp_file "1 1 1 2.0\n1 1 2.0\n";
  (match Io.read_frostt temp_file with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "inconsistent arity accepted")

let test_pipeline_through_files () =
  (* Write two matrices, read them back, multiply with the compiled
     pipeline. *)
  let bt = Helpers.random_tensor 303 [| 6; 8 |] 0.3 F.csr in
  let ct = Helpers.random_tensor 304 [| 8; 5 |] 0.3 F.csr in
  let fb = Filename.temp_file "taco_b" ".mtx" and fc = Filename.temp_file "taco_c" ".mtx" in
  Helpers.getd (Io.write_matrix_market fb bt);
  Helpers.getd (Io.write_matrix_market fc ct);
  let bt' = T.pack (Helpers.getd (Io.read_matrix_market fb)) F.csr in
  let ct' = T.pack (Helpers.getd (Io.read_matrix_market fc)) F.csr in
  let result = Taco_kernels.Spgemm.gustavson bt' ct' in
  Helpers.check_dense "files preserve the product"
    (T.to_dense (Taco_kernels.Spgemm.gustavson bt ct))
    (T.to_dense result);
  Sys.remove fb;
  Sys.remove fc

let () =
  Alcotest.run "io"
    [
      ( "matrix market",
        [
          Alcotest.test_case "roundtrip" `Quick test_mtx_roundtrip;
          Alcotest.test_case "parsing" `Quick test_mtx_parse;
          Alcotest.test_case "symmetric expansion" `Quick test_mtx_symmetric;
          Alcotest.test_case "pattern values" `Quick test_mtx_pattern;
          Alcotest.test_case "errors" `Quick test_mtx_errors;
        ] );
      ( "frostt",
        [
          Alcotest.test_case "roundtrip" `Quick test_frostt_roundtrip;
          Alcotest.test_case "dimension inference" `Quick test_frostt_infer_dims;
          Alcotest.test_case "errors" `Quick test_frostt_errors;
        ] );
      ("integration", [ Alcotest.test_case "pipeline through files" `Quick test_pipeline_through_files ]);
    ]
