(* Semiring law battery (qcheck) and differential tests: the compiled
   spmv/spadd/spgemm kernels under min-plus, max-times and boolean
   or-and must match a naive dense evaluator that folds the semiring's
   reference [add_f]/[mul_f] directly. *)

open Taco_ir
open Taco_ir.Var
module T = Taco_tensor.Tensor
module F = Taco_tensor.Format
module D = Taco_tensor.Dense
module Prng = Taco_support.Prng

let get = Helpers.get

let srs = Semiring.all

(* Value generator per semiring: finite carriers the ops stay closed
   over (or-and works on 0/1; min-plus includes its +inf zero). *)
let value_gen (sr : Semiring.t) =
  let open QCheck.Gen in
  match sr.Semiring.name with
  | "bool_or_and" -> map (fun b -> if b then 1. else 0.) bool
  | "min_plus" ->
      frequency [ (1, return infinity); (9, map (fun f -> float_of_int (f mod 100)) int) ]
  | "max_times" -> map abs_float (float_bound_inclusive 10.)
  | _ -> float_bound_inclusive 100.

let triple_arb sr =
  let g = value_gen sr in
  QCheck.make
    ~print:(fun (a, b, c) -> Printf.sprintf "(%g, %g, %g)" a b c)
    QCheck.Gen.(triple g g g)

let feq a b = (a = b) || (Float.is_nan a && Float.is_nan b) || abs_float (a -. b) <= 1e-9 *. (1. +. abs_float a +. abs_float b)

(* One qcheck law suite per semiring. *)
let law_tests (sr : Semiring.t) =
  let ( <+> ) a b = Semiring.add_f sr a b in
  let ( <*> ) a b = Semiring.mul_f sr a b in
  let arb = triple_arb sr in
  let case name prop = Helpers.qcheck_case ~count:200 (sr.Semiring.name ^ ": " ^ name) arb prop in
  [
    case "add associative" (fun (a, b, c) -> feq ((a <+> b) <+> c) (a <+> (b <+> c)));
    case "add commutative" (fun (a, b, _) -> feq (a <+> b) (b <+> a));
    case "add identity" (fun (a, _, _) -> feq (sr.Semiring.zero <+> a) a);
    case "mul associative" (fun (a, b, c) -> feq ((a <*> b) <*> c) (a <*> (b <*> c)));
    case "mul identity" (fun (a, _, _) ->
        feq (sr.Semiring.one <*> a) a && feq (a <*> sr.Semiring.one) a);
    case "zero annihilates mul" (fun (a, _, _) ->
        (not sr.Semiring.annihilates)
        || (feq (sr.Semiring.zero <*> a) sr.Semiring.zero
           && feq (a <*> sr.Semiring.zero) sr.Semiring.zero));
    case "mul distributes over add" (fun (a, b, c) ->
        feq (a <*> (b <+> c)) ((a <*> b) <+> (a <*> c)));
  ]

(* --- differential: compiled kernels vs a naive dense evaluator -------- *)

(* Random sparse matrix whose absent entries mean the semiring zero and
   whose stored values are non-zero carrier elements. *)
let random_matrix prng (sr : Semiring.t) n m density =
  let coo = Taco_tensor.Coo.create [| n; m |] in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      if Prng.bool prng density then
        let v =
          match sr.Semiring.name with
          | "bool_or_and" -> 1.
          | "min_plus" -> 1. +. float_of_int (Prng.int prng 9)
          | _ -> 0.5 +. Prng.float prng
        in
        Taco_tensor.Coo.push coo [| i; j |] v
    done
  done;
  T.pack coo F.csr

(* Read entry (i, j) under the semiring: absent storage is the zero. *)
let entry (sr : Semiring.t) t idx =
  let v = T.get t idx in
  if v = 0. then sr.Semiring.zero else v

let dense_spmv sr a x n m =
  Array.init n (fun i ->
      let acc = ref sr.Semiring.zero in
      for j = 0 to m - 1 do
        acc := Semiring.add_f sr !acc (Semiring.mul_f sr (entry sr a [| i; j |]) x.(j))
      done;
      !acc)

let dense_spadd sr a b n m =
  Array.init (n * m) (fun q ->
      let i = q / m and j = q mod m in
      Semiring.add_f sr (entry sr a [| i; j |]) (entry sr b [| i; j |]))

(* [b] is a fully-populated dense operand: its cells are literal
   carrier values (a dense 0. under min-plus means distance 0, not
   absence), so only the sparse [a] goes through [entry]. *)
let dense_spgemm sr a b n k m =
  Array.init (n * m) (fun q ->
      let i = q / m and j = q mod m in
      let acc = ref sr.Semiring.zero in
      for l = 0 to k - 1 do
        acc :=
          Semiring.add_f sr !acc
            (Semiring.mul_f sr (entry sr a [| i; l |]) b.((l * m) + j))
      done;
      !acc)

let check_cells ~msg want got =
  Array.iteri
    (fun q w ->
      if not (feq w got.(q)) then
        Alcotest.failf "%s: cell %d differs: oracle %g, kernel %g" msg q w got.(q))
    want

let vi = Index_var.make "i"

let vj = Index_var.make "j"

let vk = Index_var.make "k"

let compile_sr ?(backend = `Closure) ~name ~semiring stmt =
  let sched = get (Schedule.of_index_notation stmt) in
  Helpers.getd (Taco.compile ~name ~semiring ~backend sched)

let test_diff_spmv (sr : Semiring.t) () =
  let prng = Prng.create 515 in
  let av = Tensor_var.make "A" ~order:2 ~format:F.csr in
  let xv = Tensor_var.make "x" ~order:1 ~format:F.dense_vector in
  let yv = Tensor_var.make "y" ~order:1 ~format:F.dense_vector in
  let stmt =
    Index_notation.assign yv [ vi ]
      (Index_notation.sum vj
         (Index_notation.Mul (Index_notation.access av [ vi; vj ], Index_notation.access xv [ vj ])))
  in
  let c = compile_sr ~name:("spmv_" ^ sr.Semiring.name) ~semiring:sr stmt in
  for case = 1 to 6 do
    let n = 1 + Prng.int prng 12 and m = 1 + Prng.int prng 12 in
    let a = random_matrix prng sr n m 0.3 in
    let x =
      Array.init m (fun _ ->
          match sr.Semiring.name with
          | "bool_or_and" -> if Prng.bool prng 0.5 then 1. else 0.
          | "min_plus" -> if Prng.bool prng 0.3 then infinity else float_of_int (Prng.int prng 10)
          | _ -> Prng.float prng)
    in
    let xt = T.of_dense (D.of_buffer [| m |] x) F.dense_vector in
    let y = Helpers.getd (Taco.run c ~inputs:[ (av, a); (xv, xt) ]) in
    check_cells
      ~msg:(Printf.sprintf "%s spmv case %d" sr.Semiring.name case)
      (dense_spmv sr a x n m) (T.vals y)
  done

let test_diff_spadd (sr : Semiring.t) () =
  let prng = Prng.create 626 in
  let av = Tensor_var.make "B" ~order:2 ~format:F.csr in
  let bv = Tensor_var.make "C" ~order:2 ~format:F.csr in
  let rv = Tensor_var.make "A" ~order:2 ~format:F.dense_matrix in
  let stmt =
    Index_notation.assign rv [ vi; vj ]
      (Index_notation.Add
         (Index_notation.access av [ vi; vj ], Index_notation.access bv [ vi; vj ]))
  in
  let c = compile_sr ~name:("spadd_" ^ sr.Semiring.name) ~semiring:sr stmt in
  for case = 1 to 6 do
    let n = 1 + Prng.int prng 10 and m = 1 + Prng.int prng 10 in
    let a = random_matrix prng sr n m 0.3 and b = random_matrix prng sr n m 0.3 in
    let r = Helpers.getd (Taco.run c ~inputs:[ (av, a); (bv, b) ]) in
    check_cells
      ~msg:(Printf.sprintf "%s spadd case %d" sr.Semiring.name case)
      (dense_spadd sr a b n m) (T.vals r)
  done

let test_diff_spgemm (sr : Semiring.t) () =
  let prng = Prng.create 737 in
  let av = Tensor_var.make "B" ~order:2 ~format:F.csr in
  let bv = Tensor_var.make "C" ~order:2 ~format:F.dense_matrix in
  let rv = Tensor_var.make "A" ~order:2 ~format:F.dense_matrix in
  let stmt =
    Index_notation.assign rv [ vi; vj ]
      (Index_notation.sum vk
         (Index_notation.Mul (Index_notation.access av [ vi; vk ], Index_notation.access bv [ vk; vj ])))
  in
  let c = compile_sr ~name:("spgemm_" ^ sr.Semiring.name) ~semiring:sr stmt in
  for case = 1 to 5 do
    let n = 1 + Prng.int prng 8 and k = 1 + Prng.int prng 8 and m = 1 + Prng.int prng 8 in
    let a = random_matrix prng sr n k 0.3 in
    let b_arr =
      Array.init (k * m) (fun _ ->
          match sr.Semiring.name with
          | "bool_or_and" -> if Prng.bool prng 0.5 then 1. else 0.
          | "min_plus" -> float_of_int (Prng.int prng 10)
          | _ -> Prng.float prng)
    in
    let b = T.of_dense (D.of_buffer [| k; m |] b_arr) F.dense_matrix in
    let r = Helpers.getd (Taco.run c ~inputs:[ (av, a); (bv, b) ]) in
    check_cells
      ~msg:(Printf.sprintf "%s spgemm case %d" sr.Semiring.name case)
      (dense_spgemm sr a b_arr n k m)
      (T.vals r)
  done

(* The default semiring must keep matching the float evaluator, too. *)
let test_of_string () =
  List.iter
    (fun (alias, want) ->
      let got =
        match Semiring.of_string alias with
        | Some sr -> sr
        | None -> Alcotest.fail ("of_string rejected " ^ alias)
      in
      Alcotest.(check string) alias want got.Semiring.name)
    [
      ("default", "plus_times");
      ("plus_times", "plus_times");
      ("minplus", "min_plus");
      ("tropical", "min_plus");
      ("min_plus", "min_plus");
      ("max_times", "max_times");
      ("maxtimes", "max_times");
      ("bool_or_and", "bool_or_and");
      ("boolor", "bool_or_and");
      ("boolean", "bool_or_and");
    ];
  Alcotest.(check bool) "unknown name rejected" true (Semiring.of_string "nosuch" = None)

let per_sr name f = List.map (fun sr -> Alcotest.test_case (name ^ " " ^ sr.Semiring.name) `Quick (f sr)) srs

let () =
  Alcotest.run "semiring"
    [
      ("laws", List.concat_map law_tests srs);
      ("naming", [ Alcotest.test_case "of_string aliases" `Quick test_of_string ]);
      ("differential-spmv", per_sr "vs dense" test_diff_spmv);
      ("differential-spadd", per_sr "vs dense" test_diff_spadd);
      ("differential-spgemm", per_sr "vs dense" test_diff_spgemm);
    ]
