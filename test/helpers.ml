(* Shared helpers for the test suites. *)

open Taco_ir
open Taco_ir.Var
module F = Taco_tensor.Format
module T = Taco_tensor.Tensor
module D = Taco_tensor.Dense
module Gen = Taco_tensor.Gen
module Prng = Taco_support.Prng
module Lower = Taco_lower.Lower
module Kernel = Taco_exec.Kernel

let get = function Ok x -> x | Error e -> Alcotest.fail e

(* Like [get] for the structured-diagnostic results of the user-facing
   stage boundaries. *)
let getd = function
  | Ok x -> x
  | Error d -> Alcotest.fail (Taco_support.Diag.to_string d)

let get_err what = function
  | Error e -> e
  | Ok _ -> Alcotest.fail (what ^ ": expected an error")

(* Substring test for assertions on emitted sources and messages. *)
let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  go 0

let dense_testable = Alcotest.testable D.pp (D.equal ~eps:1e-9)

let check_dense = Alcotest.check dense_testable

(* Deterministic random tensors for tests. *)
let random_tensor seed dims density fmt =
  let prng = Prng.create seed in
  Gen.random_density prng ~dims ~density fmt

(* Evaluate a CIN statement with the reference interpreter. *)
let eval_cin stmt inputs =
  let dense_inputs = List.map (fun (tv, t) -> (tv, T.to_dense t)) inputs in
  get (Cin_eval.eval1 stmt ~inputs:dense_inputs)

(* Lower a CIN statement, execute it, and compare with the interpreter.
   For Compute-mode kernels with a compressed result the output structure
   is pre-assembled from the oracle. *)
let run_lowered ?(name = "kernel") ~mode stmt inputs out_dims =
  let info = get (Lower.lower ~name ~mode stmt) in
  let kern = Kernel.prepare info in
  match mode with
  | Lower.Assemble _ -> Kernel.run_assemble kern ~inputs ~dims:out_dims
  | Lower.Compute ->
      let rfmt = Tensor_var.format info.Lower.result in
      if F.is_all_dense rfmt then Kernel.run_dense kern ~inputs ~dims:out_dims
      else begin
        let oracle = eval_cin stmt inputs in
        let out = T.of_dense oracle rfmt in
        Array.fill (T.vals out) 0 (Array.length (T.vals out)) 0.;
        Kernel.run_compute kern ~inputs ~output:out;
        out
      end

let check_lowered ?name ~mode stmt inputs out_dims =
  let oracle = eval_cin stmt inputs in
  let result = run_lowered ?name ~mode stmt inputs out_dims in
  check_dense "lowered kernel matches the interpreter" oracle (T.to_dense result)

(* Common index variables. *)
let vi = Index_var.make "i"

let vj = Index_var.make "j"

let vk = Index_var.make "k"

let vl = Index_var.make "l"

let csr_tv name = Tensor_var.make name ~order:2 ~format:F.csr

let dense_mat_tv name = Tensor_var.make name ~order:2 ~format:F.dense_matrix

let dense_vec_tv name = Tensor_var.make name ~order:1 ~format:F.dense_vector

let ws_vec name = Tensor_var.workspace name ~order:1 ~format:F.dense_vector

let qcheck_case ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
