(* Determinism battery for the parallelize scheduling directive: every
   kernel scheduled with parallelize must produce bit-identical results
   for every requested domain count — the executor's contract is that
   the chunk count fixes the merge, so 1, 2, 3, 4 and 8 domains (and
   more domains than rows) all reproduce the sequential run exactly.

   The battery also covers the negative space: illegal parallelize
   directives must fail with structured E_PAR_ILLEGAL diagnostics, not
   silently race. *)

open Helpers
open Taco
module T = Taco_tensor.Tensor
module D = Taco_tensor.Dense
module F = Taco_tensor.Format
module Budget = Taco_exec.Budget

let domain_counts = [ 2; 3; 4; 8 ]

(* Bit identity, not epsilon closeness: compare value arrays by their
   IEEE bit patterns and index structures exactly. *)
let float_bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x ->
          if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float b.(i))) then
            ok := false)
        a;
      !ok)

let tensors_bit_identical t1 t2 =
  T.dims t1 = T.dims t2
  && float_bits_equal (T.vals t1) (T.vals t2)
  && List.for_all
       (fun l ->
         match (T.level_data t1 l, T.level_data t2 l) with
         | T.Dense_data { size = s1 }, T.Dense_data { size = s2 } -> s1 = s2
         | T.Compressed_data c1, T.Compressed_data c2 ->
             c1.pos = c2.pos && c1.crd = c2.crd
         | T.Dense_data _, T.Compressed_data _ | T.Compressed_data _, T.Dense_data _ ->
             false)
       (List.init (T.order t1) Fun.id)

(* --- the three paper kernels, scheduled with parallelize ------------- *)

let spgemm_par () =
  let a = tensor "A" Format.csr in
  let b = tensor "B" Format.csr in
  let c = tensor "C" Format.csr in
  let open Index_notation in
  let stmt = assign a [ vi; vj ] (sum vk (Mul (access b [ vi; vk ], access c [ vk; vj ]))) in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = get (Schedule.reorder vk vj sched) in
  let w = workspace "w" Format.dense_vector in
  let e = Cin.Mul (Cin.Access (Cin.access b [ vi; vk ]), Cin.Access (Cin.access c [ vk; vj ])) in
  let sched = get (Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched) in
  let sched = getd (parallelize vi sched) in
  (b, c, getd (compile ~name:"spgemm_par" sched))

let spadd_par () =
  let a = tensor "A" Format.csr in
  let b = tensor "B" Format.csr in
  let c = tensor "C" Format.csr in
  let open Index_notation in
  let stmt = assign a [ vi; vj ] (Add (access b [ vi; vj ], access c [ vi; vj ])) in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = getd (parallelize vi sched) in
  (b, c, getd (compile ~name:"spadd_par" sched))

let mttkrp_par () =
  let a = tensor "A" Format.dense_matrix in
  let b = tensor "B" (Format.csf 3) in
  let c = tensor "C" Format.dense_matrix in
  let d = tensor "D" Format.dense_matrix in
  let open Index_notation in
  let stmt =
    assign a [ vi; vj ]
      (sum vk
         (sum vl (Mul (Mul (access b [ vi; vk; vl ], access c [ vl; vj ]), access d [ vk; vj ]))))
  in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = get (Schedule.reorder vj vk sched) in
  let sched = get (Schedule.reorder vj vl sched) in
  let w = workspace "w" Format.dense_vector in
  let e = Cin.Mul (Cin.Access (Cin.access b [ vi; vk; vl ]), Cin.Access (Cin.access c [ vl; vj ])) in
  let sched = get (Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched) in
  let sched = getd (parallelize vi sched) in
  (b, c, d, getd (compile ~name:"mttkrp_par" sched))

(* Run a compiled kernel at every domain count and compare against the
   sequential (domains = 1) run bit for bit. *)
let check_deterministic what compiled inputs =
  let reference = getd (run ~domains:1 compiled ~inputs) in
  List.iter
    (fun k ->
      let r = getd (run ~domains:k compiled ~inputs) in
      if not (tensors_bit_identical reference r) then
        Alcotest.failf "%s: %d domains diverge from sequential" what k)
    domain_counts;
  reference

(* --- qcheck properties ----------------------------------------------- *)

let test_spgemm_deterministic =
  qcheck_case ~count:40 "SpGEMM bit-identical across domain counts"
    QCheck.(pair (pair (1 -- 14) (pair (1 -- 12) (1 -- 12))) small_int)
    (fun ((rows, (inner, cols)), seed) ->
      let bt = random_tensor (seed + 11) [| rows; inner |] 0.35 F.csr in
      let ct = random_tensor (seed + 12) [| inner; cols |] 0.35 F.csr in
      let b, c, compiled = spgemm_par () in
      let r = check_deterministic "spgemm" compiled [ (b, bt); (c, ct) ] in
      (* Against the sequential oracle too, so the parallel battery can
         never drift from plain correctness. *)
      D.equal ~eps:1e-9
        (T.to_dense (Taco_kernels.Spgemm.gustavson bt ct))
        (T.to_dense r))

let test_spadd_deterministic =
  qcheck_case ~count:40 "SpAdd bit-identical across domain counts"
    QCheck.(pair (pair (1 -- 14) (1 -- 12)) small_int)
    (fun ((rows, cols), seed) ->
      let bt = random_tensor (seed + 21) [| rows; cols |] 0.3 F.csr in
      let ct = random_tensor (seed + 22) [| rows; cols |] 0.3 F.csr in
      let b, c, compiled = spadd_par () in
      let r = check_deterministic "spadd" compiled [ (b, bt); (c, ct) ] in
      D.equal ~eps:1e-9
        (T.to_dense (Taco_kernels.Spadd.merge_add bt ct))
        (T.to_dense r))

let test_mttkrp_deterministic =
  qcheck_case ~count:25 "MTTKRP bit-identical across domain counts"
    QCheck.(pair (pair (1 -- 8) (pair (1 -- 6) (1 -- 6))) (pair (1 -- 8) small_int))
    (fun ((di, (dk, dl)), (dj, seed)) ->
      let bt = random_tensor (seed + 31) [| di; dk; dl |] 0.3 (F.csf 3) in
      let ct = random_tensor (seed + 32) [| dl; dj |] 1.0 F.dense_matrix in
      let dt = random_tensor (seed + 33) [| dk; dj |] 1.0 F.dense_matrix in
      let b, c, d, compiled = mttkrp_par () in
      let r = check_deterministic "mttkrp" compiled [ (b, bt); (c, ct); (d, dt) ] in
      D.equal ~eps:1e-9
        (Taco_kernels.Mttkrp.reference bt (T.to_dense ct) (T.to_dense dt))
        (T.to_dense r))

(* --- degenerate shapes ----------------------------------------------- *)

let test_degenerate_empty_rows () =
  (* Every row empty: all chunks append nothing. *)
  let bt = T.of_dense (D.create [| 7; 5 |]) F.csr in
  let ct = T.of_dense (D.create [| 7; 5 |]) F.csr in
  let b, c, compiled = spadd_par () in
  ignore (check_deterministic "spadd empty" compiled [ (b, bt); (c, ct) ] : T.t)

let test_degenerate_zero_rows () =
  (* The tensor layer rejects zero-sized dimensions, so the empty
     iteration space is exercised at the executor level: a ParallelFor
     with an appending stage over [0, n) where n = 0 must run no chunks
     and leave the counter untouched, at every domain count. *)
  let module Imp = Taco_lower.Imp in
  let module Compile = Taco_exec.Compile in
  let kernel n_name =
    {
      Imp.k_name = "par_empty";
      k_params =
        [
          { Imp.p_name = n_name; p_dtype = Imp.Int; p_array = false; p_output = false };
        ];
      k_body =
        [
          Imp.Decl (Imp.Int, "c", Imp.Int_lit 0);
          Imp.Alloc (Imp.Int, "buf", Imp.Int_lit 8);
          Imp.ParallelFor
            ( "i",
              Imp.Int_lit 0,
              Imp.Var n_name,
              [
                Imp.Store ("buf", Imp.Var "c", Imp.Var "i");
                Imp.Assign ("c", Imp.add (Imp.Var "c") (Imp.Int_lit 1));
              ],
              {
                Imp.par_private = [];
                par_stage =
                  Some { Imp.pa_counter = "c"; pa_arrays = [ "buf" ]; pa_pos = None };
              } );
        ];
    }
  in
  let compiled = Compile.compile ~opt:Taco_lower.Opt.none (kernel "n") in
  let run_n n domains =
    let read = Compile.run ~domains compiled ~args:[ ("n", Compile.Aint n) ] in
    let c = match read "c" with Compile.Aint v -> v | _ -> Alcotest.fail "bad c" in
    let buf =
      match read "buf" with
      | Compile.Aint_array a -> Array.sub a 0 c
      | _ -> Alcotest.fail "bad buf"
    in
    (c, buf)
  in
  List.iter
    (fun domains ->
      Alcotest.(check bool) "empty range appends nothing" true (run_n 0 domains = (0, [||]));
      Alcotest.(check bool) "n=3 matches sequential" true
        (run_n 3 domains = run_n 3 1);
      Alcotest.(check bool) "n=7 matches sequential" true
        (run_n 7 domains = run_n 7 1))
    (1 :: domain_counts)

let test_degenerate_more_domains_than_rows () =
  (* domains far beyond the row count: chunking clamps to the iteration
     count and the spare domains see no work. *)
  let bt = random_tensor 601 [| 2; 9 |] 0.5 F.csr in
  let ct = random_tensor 602 [| 9; 7 |] 0.5 F.csr in
  let b, c, compiled = spgemm_par () in
  let reference = getd (run ~domains:1 compiled ~inputs:[ (b, bt); (c, ct) ]) in
  List.iter
    (fun k ->
      let r = getd (run ~domains:k compiled ~inputs:[ (b, bt); (c, ct) ]) in
      Alcotest.(check bool)
        (Printf.sprintf "identical at %d domains" k)
        true
        (tensors_bit_identical reference r))
    [ 3; 17; 64 ]

let test_single_row () =
  let bt = random_tensor 603 [| 1; 9 |] 0.8 F.csr in
  let ct = random_tensor 604 [| 9; 4 |] 0.5 F.csr in
  let b, c, compiled = spgemm_par () in
  ignore (check_deterministic "spgemm 1 row" compiled [ (b, bt); (c, ct) ] : T.t)

(* --- real multi-domain execution ------------------------------------- *)

let test_deterministic_with_forced_domains () =
  (* The machine running the suite may recommend a single domain, which
     makes the budget grant no extras and the chunk path run on the
     calling domain. Forcing capacity proves the merge also holds when
     chunks really do run on separate domains. *)
  let saved = Budget.capacity () in
  Budget.set_capacity 3;
  Fun.protect
    ~finally:(fun () -> Budget.set_capacity saved)
    (fun () ->
      let bt = random_tensor 611 [| 24; 16 |] 0.4 F.csr in
      let ct = random_tensor 612 [| 16; 12 |] 0.4 F.csr in
      let b, c, compiled = spgemm_par () in
      ignore (check_deterministic "spgemm forced" compiled [ (b, bt); (c, ct) ] : T.t);
      let bt2 = random_tensor 613 [| 24; 12 |] 0.4 F.csr in
      let ct2 = random_tensor 614 [| 24; 12 |] 0.4 F.csr in
      let b2, c2, compiled2 = spadd_par () in
      ignore (check_deterministic "spadd forced" compiled2 [ (b2, bt2); (c2, ct2) ] : T.t))

(* --- profiled kernels take the sequential path ----------------------- *)

let test_profiled_parallel_agrees () =
  let bt = random_tensor 621 [| 10; 8 |] 0.4 F.csr in
  let ct = random_tensor 622 [| 8; 6 |] 0.4 F.csr in
  let a = tensor "A" Format.csr in
  ignore (a : Tensor_var.t);
  let b, c, compiled = spgemm_par () in
  let plain = getd (run ~domains:4 compiled ~inputs:[ (b, bt); (c, ct) ]) in
  (* Recompile the same schedule with profiling; parallel regions then
     execute sequentially but must produce the same tensor. *)
  let sched = schedule_of compiled in
  let prof = getd (compile ~name:"spgemm_par_prof" ~profile:true sched) in
  let profiled = getd (run ~domains:4 prof ~inputs:[ (b, bt); (c, ct) ]) in
  Alcotest.(check bool) "profiled matches unprofiled" true
    (tensors_bit_identical plain profiled);
  match Kernel.profile_stats (kernel prof) with
  | None -> Alcotest.fail "profiled kernel reports no stats"
  | Some st -> Alcotest.(check bool) "profiled run counted iterations" true (st.Compile.iterations > 0)

(* --- negative space: E_PAR_ILLEGAL ----------------------------------- *)

let check_par_illegal what result =
  match result with
  | Ok _ -> Alcotest.failf "%s: expected E_PAR_ILLEGAL" what
  | Error d ->
      Alcotest.(check string) (what ^ ": code") "E_PAR_ILLEGAL" d.Diag.code

let test_illegal_inner_index () =
  (* j is an inner loop (inner-of-compressed for the CSR operand):
     only the outermost forall can be parallelized. *)
  let a = tensor "A" Format.dense_matrix in
  let b = tensor "B" Format.csr in
  let open Index_notation in
  let stmt = assign a [ vi; vj ] (access b [ vi; vj ]) in
  let sched = get (Schedule.of_index_notation stmt) in
  check_par_illegal "inner index" (parallelize vj sched)

let test_illegal_reduction_without_workspace () =
  (* y(j) = Σ_i B(i,j): every i iteration writes the same y row slots —
     a reduction into shared output. Legal only after precompute. *)
  let y = tensor "y" Format.dense_vector in
  let b = tensor "B" Format.dense_matrix in
  let open Index_notation in
  let stmt = assign y [ vj ] (sum vi (access b [ vi; vj ])) in
  let sched = get (Schedule.of_index_notation stmt) in
  (* i is outermost after concretization of Σ_i? If not, reorder it out. *)
  let sched =
    match Schedule.reorder vi vj sched with Ok s -> s | Error _ -> sched
  in
  check_par_illegal "reduction" (parallelize vi sched)

let test_illegal_coiteration_backstop () =
  (* Sparse vector addition coiterates the operands with a while loop at
     the top of the kernel; the schedule-level check accepts i (it is
     outermost and indexes the result) but lowering cannot chunk a
     two-way merge, and reports it under the same code. *)
  let x = tensor "x" Format.sparse_vector in
  let u = tensor "u" Format.sparse_vector in
  let v = tensor "v" Format.sparse_vector in
  let open Index_notation in
  let stmt = assign x [ vi ] (Add (access u [ vi ], access v [ vi ])) in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = getd (parallelize vi sched) in
  check_par_illegal "coiteration backstop" (compile ~name:"spvadd_par" sched)

let test_illegal_diag_structure () =
  (* The diagnostic is structured: stage, code, and the offending index
     in context. *)
  let a = tensor "A" Format.dense_matrix in
  let b = tensor "B" Format.csr in
  let open Index_notation in
  let stmt = assign a [ vi; vj ] (access b [ vi; vj ]) in
  let sched = get (Schedule.of_index_notation stmt) in
  match parallelize vj sched with
  | Ok _ -> Alcotest.fail "expected E_PAR_ILLEGAL"
  | Error d ->
      Alcotest.(check string) "code" "E_PAR_ILLEGAL" d.Diag.code;
      Alcotest.(check bool) "context names the index" true
        (List.mem ("index", "j") d.Diag.context)

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          test_spgemm_deterministic;
          test_spadd_deterministic;
          test_mttkrp_deterministic;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "all rows empty" `Quick test_degenerate_empty_rows;
          Alcotest.test_case "zero rows" `Quick test_degenerate_zero_rows;
          Alcotest.test_case "domains exceed rows" `Quick
            test_degenerate_more_domains_than_rows;
          Alcotest.test_case "single row" `Quick test_single_row;
        ] );
      ( "multi-domain",
        [
          Alcotest.test_case "forced real domains" `Quick
            test_deterministic_with_forced_domains;
          Alcotest.test_case "profiled kernels agree" `Quick test_profiled_parallel_agrees;
        ] );
      ( "illegal",
        [
          Alcotest.test_case "inner index" `Quick test_illegal_inner_index;
          Alcotest.test_case "reduction without workspace" `Quick
            test_illegal_reduction_without_workspace;
          Alcotest.test_case "coiteration backstop" `Quick test_illegal_coiteration_backstop;
          Alcotest.test_case "diagnostic structure" `Quick test_illegal_diag_structure;
        ] );
    ]
