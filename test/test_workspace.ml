open Taco_ir
open Taco_ir.Var
module F = Taco_tensor.Format
module T = Taco_tensor.Tensor
module I = Index_notation

let vi = Helpers.vi and vj = Helpers.vj and vk = Helpers.vk and vl = Helpers.vl

let a = Helpers.csr_tv "A"
let b = Helpers.csr_tv "B"
let c = Helpers.csr_tv "C"
let d = Helpers.csr_tv "D"
let b3 = Tensor_var.make "B" ~order:3 ~format:(F.csf 3)
let w = Helpers.ws_vec "w"
let v_ws = Tensor_var.workspace "v" ~order:1 ~format:F.dense_vector
let acc = Cin.access

let mul x y = Cin.Mul (x, y)
let av tv vars = Cin.Access (acc tv vars)

(* ------------------------------------------------------------------ *)
(* Case study 1: sparse matrix multiplication (paper §II-III)          *)
(* ------------------------------------------------------------------ *)

let matmul_ikj =
  Cin.foralls [ vi; vk; vj ]
    (Cin.accumulate (acc a [ vi; vj ]) (mul (av b [ vi; vk ]) (av c [ vk; vj ])))

let test_matmul_structure () =
  let result =
    Helpers.get
      (Workspace.precompute matmul_ikj
         ~expr:(mul (av b [ vi; vk ]) (av c [ vk; vj ]))
         ~over:[ vj ] ~workspace:w)
  in
  Alcotest.(check string) "paper §IV form"
    "∀i ((∀j A(i,j) = w(j)) where (∀k,j w(j) += B(i,k) * C(k,j)))"
    (Cin.to_string result)

let test_matmul_semantics () =
  let result =
    Helpers.get
      (Workspace.precompute matmul_ikj
         ~expr:(mul (av b [ vi; vk ]) (av c [ vk; vj ]))
         ~over:[ vj ] ~workspace:w)
  in
  let ins =
    [
      (b, Helpers.random_tensor 61 [| 5; 6 |] 0.4 F.csr);
      (c, Helpers.random_tensor 62 [| 6; 4 |] 0.4 F.csr);
    ]
  in
  Helpers.check_dense "workspace preserves matmul"
    (Helpers.eval_cin matmul_ikj ins) (Helpers.eval_cin result ins)

(* ------------------------------------------------------------------ *)
(* Case study 2: MTTKRP (paper §VII)                                   *)
(* ------------------------------------------------------------------ *)

let mttkrp =
  Cin.foralls [ vi; vk; vl; vj ]
    (Cin.accumulate (acc a [ vi; vj ])
       (mul (mul (av b3 [ vi; vk; vl ]) (av c [ vl; vj ])) (av d [ vk; vj ])))

let test_mttkrp_first_transform () =
  let result =
    Helpers.get
      (Workspace.precompute mttkrp
         ~expr:(mul (av b3 [ vi; vk; vl ]) (av c [ vl; vj ]))
         ~over:[ vj ] ~workspace:w)
  in
  Alcotest.(check string) "hoists l out of the consumer"
    "∀i,k ((∀j A(i,j) += w(j) * D(k,j)) where (∀l,j w(j) += B(i,k,l) * C(l,j)))"
    (Cin.to_string result)

let test_mttkrp_second_transform () =
  let first =
    Helpers.get
      (Workspace.precompute mttkrp
         ~expr:(mul (av b3 [ vi; vk; vl ]) (av c [ vl; vj ]))
         ~over:[ vj ] ~workspace:w)
  in
  let second =
    Helpers.get
      (Workspace.precompute first
         ~expr:(mul (av w [ vj ]) (av d [ vk; vj ]))
         ~over:[ vj ] ~workspace:v_ws)
  in
  Alcotest.(check string) "paper §VII final form"
    "∀i ((∀j A(i,j) = v(j)) where (∀k ((∀j v(j) += w(j) * D(k,j)) where (∀l,j w(j) += B(i,k,l) * C(l,j)))))"
    (Cin.to_string second)

let test_mttkrp_semantics () =
  let first =
    Helpers.get
      (Workspace.precompute mttkrp
         ~expr:(mul (av b3 [ vi; vk; vl ]) (av c [ vl; vj ]))
         ~over:[ vj ] ~workspace:w)
  in
  let second =
    Helpers.get
      (Workspace.precompute first
         ~expr:(mul (av w [ vj ]) (av d [ vk; vj ]))
         ~over:[ vj ] ~workspace:v_ws)
  in
  let ins =
    [
      (b3, Helpers.random_tensor 63 [| 4; 5; 6 |] 0.15 (F.csf 3));
      (c, Helpers.random_tensor 64 [| 6; 3 |] 0.5 F.csr);
      (d, Helpers.random_tensor 65 [| 5; 3 |] 0.5 F.csr);
    ]
  in
  let oracle = Helpers.eval_cin mttkrp ins in
  Helpers.check_dense "first transform" oracle (Helpers.eval_cin first ins);
  Helpers.check_dense "second transform" oracle (Helpers.eval_cin second ins)

(* ------------------------------------------------------------------ *)
(* Case study 3: sparse addition with result reuse (paper §V-B)        *)
(* ------------------------------------------------------------------ *)

let add_stmt =
  Cin.foralls [ vi; vj ]
    (Cin.assign (acc a [ vi; vj ]) (Cin.Add (av b [ vi; vj ], av c [ vi; vj ])))

let test_add_whole_rhs () =
  let result =
    Helpers.get
      (Workspace.precompute add_stmt
         ~expr:(Cin.Add (av b [ vi; vj ], av c [ vi; vj ]))
         ~over:[ vj ] ~workspace:w)
  in
  Alcotest.(check string) "first transform"
    "∀i ((∀j A(i,j) = w(j)) where (∀j w(j) = B(i,j) + C(i,j)))"
    (Cin.to_string result)

let test_add_result_reuse () =
  let first =
    Helpers.get
      (Workspace.precompute add_stmt
         ~expr:(Cin.Add (av b [ vi; vj ], av c [ vi; vj ]))
         ~over:[ vj ] ~workspace:w)
  in
  let reused =
    Helpers.get
      (Workspace.precompute first ~expr:(av b [ vi; vj ]) ~over:[ vj ] ~workspace:w)
  in
  Alcotest.(check string) "sequence statement"
    "∀i ((∀j A(i,j) = w(j)) where (∀j w(j) = B(i,j) ; ∀j w(j) += C(i,j)))"
    (Cin.to_string reused);
  let ins =
    [
      (b, Helpers.random_tensor 66 [| 5; 5 |] 0.3 F.csr);
      (c, Helpers.random_tensor 67 [| 5; 5 |] 0.3 F.csr);
    ]
  in
  Helpers.check_dense "reuse preserves semantics"
    (Helpers.eval_cin add_stmt ins) (Helpers.eval_cin reused ins)

let test_add_addend_without_reuse () =
  (* Fresh workspace on an addend nests a where (§V-B's "without result
     reuse" form). *)
  let first =
    Helpers.get
      (Workspace.precompute add_stmt
         ~expr:(Cin.Add (av b [ vi; vj ], av c [ vi; vj ]))
         ~over:[ vj ] ~workspace:w)
  in
  let nested =
    Helpers.get
      (Workspace.precompute first ~expr:(av b [ vi; vj ]) ~over:[ vj ] ~workspace:v_ws)
  in
  Alcotest.(check string) "nested wheres"
    "∀i ((∀j A(i,j) = w(j)) where ((∀j w(j) = v(j) + C(i,j)) where (∀j v(j) = B(i,j))))"
    (Cin.to_string nested);
  let ins =
    [
      (b, Helpers.random_tensor 68 [| 5; 5 |] 0.3 F.csr);
      (c, Helpers.random_tensor 69 [| 5; 5 |] 0.3 F.csr);
    ]
  in
  Helpers.check_dense "nested form preserves semantics"
    (Helpers.eval_cin add_stmt ins) (Helpers.eval_cin nested ins)

let test_vector_add_reuse () =
  (* ∀i a(i) = b(i) + c(i)  ⇒  ∀i a(i) = b(i) ; ∀i a(i) += c(i). *)
  let av_t = Helpers.dense_vec_tv "a" in
  let bv = Helpers.dense_vec_tv "bvec" in
  let cv = Helpers.dense_vec_tv "cvec" in
  let s = Cin.forall vi (Cin.assign (acc av_t [ vi ]) (Cin.Add (av bv [ vi ], av cv [ vi ]))) in
  let reused =
    Helpers.get (Workspace.precompute s ~expr:(av bv [ vi ]) ~over:[ vi ] ~workspace:av_t)
  in
  Alcotest.(check string) "paper §V-B vector example"
    "∀i a(i) = bvec(i) ; ∀i a(i) += cvec(i)" (Cin.to_string reused)

(* ------------------------------------------------------------------ *)
(* Preconditions and errors                                            *)
(* ------------------------------------------------------------------ *)

let test_rejects_wrong_order_workspace () =
  let w2 = Tensor_var.workspace "w2" ~order:2 ~format:F.dense_matrix in
  ignore
    (Helpers.get_err "order mismatch"
       (Workspace.precompute matmul_ikj
          ~expr:(mul (av b [ vi; vk ]) (av c [ vk; vj ]))
          ~over:[ vj ] ~workspace:w2))

let test_rejects_missing_expr () =
  ignore
    (Helpers.get_err "expr not found"
       (Workspace.precompute matmul_ikj ~expr:(av d [ vi; vj ]) ~over:[ vj ] ~workspace:w))

let test_rejects_sequence_input () =
  let seq =
    Cin.forall vi
      (Cin.sequence
         (Cin.assign (acc w [ vi ]) (av b [ vi; vi ]))
         (Cin.accumulate (acc w [ vi ]) (av c [ vi; vi ])))
  in
  ignore
    (Helpers.get_err "contains sequence"
       (Workspace.precompute seq ~expr:(av b [ vi; vi ]) ~over:[ vi ] ~workspace:v_ws))

let test_rejects_non_factor () =
  (* B+C is not a factor of B*C+D... give rhs = B*C + D and ask for C+D. *)
  let s =
    Cin.foralls [ vi; vj ]
      (Cin.assign (acc a [ vi; vj ])
         (Cin.Add (mul (av b [ vi; vj ]) (av c [ vi; vj ]), av d [ vi; vj ])))
  in
  ignore
    (Helpers.get_err "not a factor or addend"
       (Workspace.precompute s
          ~expr:(Cin.Add (av c [ vi; vj ], av d [ vi; vj ]))
          ~over:[ vj ] ~workspace:w))

let test_rejects_used_workspace_name () =
  ignore
    (Helpers.get_err "workspace name in use"
       (Workspace.precompute matmul_ikj
          ~expr:(mul (av b [ vi; vk ]) (av c [ vk; vj ]))
          ~over:[ vj ]
          ~workspace:(Tensor_var.workspace "B" ~order:1 ~format:F.dense_vector)))

let test_rejects_addend_reduction () =
  (* ∀ij a(i) += B(i,j) + C(i,i): precomputing the addend B over i only
     would move the j reduction into an addend producer. *)
  let avec = Helpers.dense_vec_tv "a" in
  let s =
    Cin.foralls [ vi; vj ]
      (Cin.accumulate (acc avec [ vi ]) (Cin.Add (av b [ vi; vj ], av c [ vi; vi ])))
  in
  ignore
    (Helpers.get_err "+ does not distribute over +"
       (Workspace.precompute s ~expr:(av b [ vi; vj ]) ~over:[ vi ] ~workspace:v_ws))

(* ------------------------------------------------------------------ *)
(* Scheduling API                                                      *)
(* ------------------------------------------------------------------ *)

let test_schedule_precompute_renames () =
  let stmt = I.assign a [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ]))) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let sched = Helpers.get (Schedule.reorder vk vj sched) in
  let jc = Index_var.make "jc" and jp = Index_var.make "jp" in
  let e = mul (av b [ vi; vk ]) (av c [ vk; vj ]) in
  let sched = Helpers.get (Schedule.precompute ~expr:e ~vars:[ (vj, jc, jp) ] ~workspace:w sched) in
  Alcotest.(check string) "fig 2 renaming"
    "∀i ((∀jc A(i,jc) = w(jc)) where (∀k,jp w(jp) += B(i,k) * C(k,jp)))"
    (Cin.to_string (Schedule.stmt sched))

let test_schedule_full_fig2_pipeline () =
  let tensors = [ ("A", a); ("B", b); ("C", c) ] in
  let stmt =
    Helpers.getd
      (Taco_frontend.Parser.parse_statement ~tensors "A(i,j) = sum(k, B(i,k) * C(k,j))")
  in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let sched = Helpers.get (Schedule.reorder vk vj sched) in
  let e = Helpers.get (Schedule.expr_of_index_notation (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ]))) in
  let sched = Helpers.get (Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched) in
  let ins =
    [
      (b, Helpers.random_tensor 71 [| 6; 7 |] 0.3 F.csr);
      (c, Helpers.random_tensor 72 [| 7; 5 |] 0.3 F.csr);
    ]
  in
  let plain = Helpers.get (Concretize.run stmt) in
  Helpers.check_dense "pipeline preserves semantics"
    (Helpers.eval_cin plain ins)
    (Helpers.eval_cin (Schedule.stmt sched) ins)

(* ------------------------------------------------------------------ *)
(* Heuristics (§V-C)                                                   *)
(* ------------------------------------------------------------------ *)

let test_heuristic_avoid_insert () =
  let suggestions = Heuristics.suggest matmul_ikj in
  Alcotest.(check bool) "suggests a workspace for the sparse result" true
    (List.exists (fun s -> s.Heuristics.reason = Heuristics.Avoid_insert) suggestions)

let test_heuristic_hoist () =
  let suggestions = Heuristics.suggest mttkrp in
  Alcotest.(check bool) "suggests hoisting B*C" true
    (List.exists (fun s -> s.Heuristics.reason = Heuristics.Hoist_invariant) suggestions)

let test_heuristic_merge () =
  (* Four sparse operands merged at j into a sparse result. *)
  let e_ws = Helpers.csr_tv "E" in
  let s =
    Cin.foralls [ vi; vj ]
      (Cin.assign (acc a [ vi; vj ])
         (Cin.Add
            (Cin.Add (av b [ vi; vj ], av c [ vi; vj ]),
             Cin.Add (av d [ vi; vj ], av e_ws [ vi; vj ]))))
  in
  let suggestions = Heuristics.suggest s in
  Alcotest.(check bool) "suggests simplifying the merge" true
    (List.exists (fun sg -> sg.Heuristics.reason = Heuristics.Simplify_merge) suggestions)

let test_heuristic_none_for_dense () =
  let ad = Helpers.dense_mat_tv "Ad" in
  let s =
    Cin.foralls [ vi; vj ]
      (Cin.assign (acc ad [ vi; vj ]) (av b [ vi; vj ]))
  in
  Alcotest.(check int) "no suggestions" 0 (List.length (Heuristics.suggest s))

let test_heuristics_apply_all_preserves () =
  let transformed, applied = Heuristics.apply_all matmul_ikj in
  Alcotest.(check bool) "applied at least one" true (List.length applied >= 1);
  let ins =
    [
      (b, Helpers.random_tensor 73 [| 5; 6 |] 0.4 F.csr);
      (c, Helpers.random_tensor 74 [| 6; 4 |] 0.4 F.csr);
    ]
  in
  Helpers.check_dense "apply_all preserves semantics"
    (Helpers.eval_cin matmul_ikj ins) (Helpers.eval_cin transformed ins)

(* Property: precompute of a random factor over j preserves semantics. *)
let prop_precompute_preserves =
  Helpers.qcheck_case ~count:25 "precompute preserves semantics (random inputs)"
    QCheck.(pair (0 -- 10000) (0 -- 2))
    (fun (seed, which) ->
      let expr =
        match which with
        | 0 -> mul (av b [ vi; vk ]) (av c [ vk; vj ])
        | 1 -> av c [ vk; vj ]
        | _ -> av b [ vi; vk ]
      in
      let over = match which with 2 -> [ vk ] | _ -> [ vj ] in
      let ws =
        Tensor_var.workspace "wq" ~order:(List.length over) ~format:F.dense_vector
      in
      match Workspace.precompute matmul_ikj ~expr ~over ~workspace:ws with
      | Error _ -> true (* precondition failures are fine; semantics checked on success *)
      | Ok result ->
          let ins =
            [
              (b, Helpers.random_tensor seed [| 4; 5 |] 0.5 F.csr);
              (c, Helpers.random_tensor (seed + 1) [| 5; 3 |] 0.5 F.csr);
            ]
          in
          Taco_tensor.Dense.equal ~eps:1e-9
            (Helpers.eval_cin matmul_ikj ins) (Helpers.eval_cin result ins))

(* Random precompute targets on the MTTKRP nest: every accepted
   transformation preserves the reference semantics. *)
let prop_mttkrp_precompute =
  Helpers.qcheck_case ~count:30 "random precompute on MTTKRP preserves semantics"
    QCheck.(pair (0 -- 10000) (pair (0 -- 4) bool))
    (fun (seed, (which, over_two)) ->
      let expr =
        match which with
        | 0 -> mul (av b3 [ vi; vk; vl ]) (av c [ vl; vj ])
        | 1 -> av c [ vl; vj ]
        | 2 -> av d [ vk; vj ]
        | 3 -> mul (mul (av b3 [ vi; vk; vl ]) (av c [ vl; vj ])) (av d [ vk; vj ])
        | _ -> av b3 [ vi; vk; vl ]
      in
      let over = if over_two then [ vk; vj ] else [ vj ] in
      let ws =
        Tensor_var.workspace "wq" ~order:(List.length over)
          ~format:(F.dense (List.length over))
      in
      match Workspace.precompute mttkrp ~expr ~over ~workspace:ws with
      | Error _ -> true
      | Ok result ->
          let ins =
            [
              (b3, Helpers.random_tensor seed [| 4; 5; 6 |] 0.15 (F.csf 3));
              (c, Helpers.random_tensor (seed + 1) [| 6; 3 |] 0.5 F.csr);
              (d, Helpers.random_tensor (seed + 2) [| 5; 3 |] 0.5 F.csr);
            ]
          in
          Taco_tensor.Dense.equal ~eps:1e-9 (Helpers.eval_cin mttkrp ins)
            (Helpers.eval_cin result ins))

let () =
  Alcotest.run "workspace"
    [
      ( "matmul",
        [
          Alcotest.test_case "paper structure" `Quick test_matmul_structure;
          Alcotest.test_case "semantics preserved" `Quick test_matmul_semantics;
        ] );
      ( "mttkrp",
        [
          Alcotest.test_case "first transform (hoist)" `Quick test_mttkrp_first_transform;
          Alcotest.test_case "second transform (sparse result)" `Quick test_mttkrp_second_transform;
          Alcotest.test_case "semantics preserved" `Quick test_mttkrp_semantics;
        ] );
      ( "addition",
        [
          Alcotest.test_case "whole-rhs precompute" `Quick test_add_whole_rhs;
          Alcotest.test_case "result reuse sequence" `Quick test_add_result_reuse;
          Alcotest.test_case "addend without reuse" `Quick test_add_addend_without_reuse;
          Alcotest.test_case "vector add reuse (§V-B)" `Quick test_vector_add_reuse;
        ] );
      ( "preconditions",
        [
          Alcotest.test_case "workspace order" `Quick test_rejects_wrong_order_workspace;
          Alcotest.test_case "expression not found" `Quick test_rejects_missing_expr;
          Alcotest.test_case "sequence input" `Quick test_rejects_sequence_input;
          Alcotest.test_case "non-factor expression" `Quick test_rejects_non_factor;
          Alcotest.test_case "workspace name in use" `Quick test_rejects_used_workspace_name;
          Alcotest.test_case "addend reduction" `Quick test_rejects_addend_reduction;
        ] );
      ( "scheduling api",
        [
          Alcotest.test_case "renaming triplets" `Quick test_schedule_precompute_renames;
          Alcotest.test_case "fig 2 pipeline with parser" `Quick test_schedule_full_fig2_pipeline;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "avoid expensive inserts" `Quick test_heuristic_avoid_insert;
          Alcotest.test_case "hoist loop invariant code" `Quick test_heuristic_hoist;
          Alcotest.test_case "simplify merges" `Quick test_heuristic_merge;
          Alcotest.test_case "quiet on dense copies" `Quick test_heuristic_none_for_dense;
          Alcotest.test_case "apply_all preserves semantics" `Quick test_heuristics_apply_all_preserves;
        ] );
      ("properties", [ prop_precompute_preserves; prop_mttkrp_precompute ]);
    ]
