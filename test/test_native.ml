(* The native C execution backend: kernels compiled by the system C
   compiler into shared objects must be bit-identical to the closure
   executor on the paper's three workspace kernels (sequential and
   parallelized), join the single-flight compilation cache, and
   downgrade to closures — counted, never a client error — when the
   compiler is broken.

   Everything that needs a real compiler is gated on
   [Native.available ()] and reports itself skipped on machines
   without one; the downgrade tests run everywhere (a bogus TACO_CC is
   exactly the point). *)

open Helpers
open Taco
module T = Taco_tensor.Tensor
module F = Taco_tensor.Format

let have_cc = Native.available ()

(* A gated test: a no-op (with a note) when there is no C compiler. *)
let cc_case name f =
  Alcotest.test_case name `Quick (fun () ->
      if have_cc then f ()
      else
        Printf.printf "  [skipped: C compiler %S unavailable]\n" (Native.compiler ()))

let float_bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x ->
          if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float b.(i))) then
            ok := false)
        a;
      !ok)

let tensors_bit_identical t1 t2 =
  T.dims t1 = T.dims t2
  && float_bits_equal (T.vals t1) (T.vals t2)
  && List.for_all
       (fun l ->
         match (T.level_data t1 l, T.level_data t2 l) with
         | T.Dense_data { size = s1 }, T.Dense_data { size = s2 } -> s1 = s2
         | T.Compressed_data c1, T.Compressed_data c2 ->
             c1.pos = c2.pos && c1.crd = c2.crd
         | T.Dense_data _, T.Compressed_data _ | T.Compressed_data _, T.Dense_data _ ->
             false)
       (List.init (T.order t1) Fun.id)

(* --- the three paper kernels, sequential and parallelized ------------ *)

let spgemm_sched ~parallel =
  let a = tensor "A" Format.csr in
  let b = tensor "B" Format.csr in
  let c = tensor "C" Format.csr in
  let open Index_notation in
  let stmt = assign a [ vi; vj ] (sum vk (Mul (access b [ vi; vk ], access c [ vk; vj ]))) in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = get (Schedule.reorder vk vj sched) in
  let w = workspace "w" Format.dense_vector in
  let e = Cin.Mul (Cin.Access (Cin.access b [ vi; vk ]), Cin.Access (Cin.access c [ vk; vj ])) in
  let sched = get (Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched) in
  let sched = if parallel then getd (parallelize vi sched) else sched in
  (b, c, sched)

let spadd_sched ~parallel =
  let a = tensor "A" Format.csr in
  let b = tensor "B" Format.csr in
  let c = tensor "C" Format.csr in
  let open Index_notation in
  let stmt = assign a [ vi; vj ] (Add (access b [ vi; vj ], access c [ vi; vj ])) in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = if parallel then getd (parallelize vi sched) else sched in
  (b, c, sched)

let mttkrp_sched ~parallel =
  let a = tensor "A" Format.dense_matrix in
  let b = tensor "B" (Format.csf 3) in
  let c = tensor "C" Format.dense_matrix in
  let d = tensor "D" Format.dense_matrix in
  let open Index_notation in
  let stmt =
    assign a [ vi; vj ]
      (sum vk
         (sum vl (Mul (Mul (access b [ vi; vk; vl ], access c [ vl; vj ]), access d [ vk; vj ]))))
  in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = get (Schedule.reorder vj vk sched) in
  let sched = get (Schedule.reorder vj vl sched) in
  let w = workspace "w" Format.dense_vector in
  let e = Cin.Mul (Cin.Access (Cin.access b [ vi; vk; vl ]), Cin.Access (Cin.access c [ vl; vj ])) in
  let sched = get (Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched) in
  let sched = if parallel then getd (parallelize vi sched) else sched in
  (a, b, c, d, sched)

let spgemm_inputs b c seed =
  [
    (b, random_tensor (seed + 11) [| 24; 18 |] 0.3 F.csr);
    (c, random_tensor (seed + 12) [| 18; 21 |] 0.3 F.csr);
  ]

(* Compile the same schedule under both backends and hold the native
   result to bit-identity with the closure one across several seeds. *)
let check_both ~name sched inputs_of =
  let closure = getd (compile ~name ~backend:`Closure sched) in
  let native = getd (compile ~name ~backend:`Native sched) in
  Alcotest.(check bool) "native backend actually used" true (backend_of native = `Native);
  List.iter
    (fun seed ->
      let inputs = inputs_of seed in
      let rc = getd (run closure ~inputs) in
      let rn = getd (run native ~inputs) in
      if not (tensors_bit_identical rc rn) then
        Alcotest.failf "%s (seed %d): native result diverges from closures" name seed)
    [ 1; 2; 3 ]

let test_spgemm_identity ~parallel () =
  let b, c, sched = spgemm_sched ~parallel in
  check_both
    ~name:(if parallel then "spgemm_nat_par" else "spgemm_nat")
    sched (spgemm_inputs b c)

let test_spadd_identity ~parallel () =
  let b, c, sched = spadd_sched ~parallel in
  check_both
    ~name:(if parallel then "spadd_nat_par" else "spadd_nat")
    sched
    (fun seed ->
      [
        (b, random_tensor (seed + 21) [| 30; 25 |] 0.25 F.csr);
        (c, random_tensor (seed + 22) [| 30; 25 |] 0.25 F.csr);
      ])

let test_mttkrp_identity ~parallel () =
  let _, b, c, d, sched = mttkrp_sched ~parallel in
  check_both
    ~name:(if parallel then "mttkrp_nat_par" else "mttkrp_nat")
    sched
    (fun seed ->
      [
        (b, random_tensor (seed + 31) [| 9; 7; 6 |] 0.3 (F.csf 3));
        (c, random_tensor (seed + 32) [| 6; 8 |] 1.0 F.dense_matrix);
        (d, random_tensor (seed + 33) [| 7; 8 |] 1.0 F.dense_matrix);
      ])

(* Chunked closure runs and the native OpenMP run must still agree: the
   chunk count fixes the closure merge, and the native backend renders
   parallel loops with the same ordered-append semantics. *)
let test_parallel_domains_identity () =
  let b, c, sched = spgemm_sched ~parallel:true in
  let closure = getd (compile ~name:"spgemm_nat_par" ~backend:`Closure sched) in
  let native = getd (compile ~name:"spgemm_nat_par" ~backend:`Native sched) in
  let inputs = spgemm_inputs b c 7 in
  let rn = getd (run native ~inputs) in
  List.iter
    (fun domains ->
      let rc = getd (run ~domains closure ~inputs) in
      if not (tensors_bit_identical rc rn) then
        Alcotest.failf "native diverges from the %d-domain closure run" domains)
    [ 1; 2; 3 ]

(* --- generated exec C compiles under -Wall -Werror ------------------- *)

let test_exec_c_warning_clean () =
  let kernels =
    let _, _, s1 = spgemm_sched ~parallel:false in
    let _, _, s2 = spgemm_sched ~parallel:true in
    let _, _, s3 = spadd_sched ~parallel:false in
    let _, _, _, _, s4 = mttkrp_sched ~parallel:true in
    List.map
      (fun (name, sched) -> (name, Kernel.imp (kernel (getd (compile ~name sched)))))
      [
        ("spgemm_wal", s1); ("spgemm_wal_par", s2); ("spadd_wal", s3); ("mttkrp_wal_par", s4);
      ]
  in
  List.iter
    (fun (name, k) ->
      let src = Codegen_c.emit_exec k in
      let cfile = Filename.temp_file ("taco_wal_" ^ name) ".c" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove cfile with Sys_error _ -> ())
        (fun () ->
          Out_channel.with_open_bin cfile (fun oc -> Out_channel.output_string oc src);
          let cmd =
            Printf.sprintf "%s -O3 -Wall -Werror -fopenmp -x c -c -o /dev/null %s"
              (Filename.quote (Native.compiler ()))
              (Filename.quote cfile)
          in
          if Sys.command cmd <> 0 then
            Alcotest.failf "%s: emit_exec output does not compile under -Wall -Werror" name))
    kernels

(* --- cache: native builds are single-flighted across domains --------- *)

let test_single_flight () =
  Compile.cache_clear ();
  let _, _, sched = spgemm_sched ~parallel:false in
  let before = (Compile.cache_stats ()).Compile.misses in
  let compiled =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> getd (compile ~name:"spgemm_sf" ~backend:`Native sched)))
    |> List.map Domain.join
  in
  let after = (Compile.cache_stats ()).Compile.misses in
  Alcotest.(check int) "exactly one native build for four racing domains" 1
    (after - before);
  List.iter
    (fun c ->
      Alcotest.(check bool) "every domain got the native kernel" true
        (backend_of c = `Native))
    compiled

(* --- downgrade paths (run everywhere, no compiler needed) ------------ *)

let with_bogus_cc f =
  Unix.putenv "TACO_CC" "/definitely/not/a/compiler";
  (* An empty TACO_CC falls back to the default compiler. *)
  Fun.protect ~finally:(fun () -> Unix.putenv "TACO_CC" "") f

let test_bogus_compiler_falls_back () =
  with_bogus_cc @@ fun () ->
  let before = (Compile.backend_stats ()).Compile.downgrades in
  let b, c, sched = spadd_sched ~parallel:false in
  let native = getd (compile ~name:"spadd_fallback" ~backend:`Native sched) in
  Alcotest.(check bool) "served by closures" true (backend_of native = `Closure);
  let after = (Compile.backend_stats ()).Compile.downgrades in
  Alcotest.(check bool) "downgrade was counted" true (after > before);
  (* And it still computes: the fallback is a working executor, not a
     stub. *)
  let inputs =
    [
      (b, random_tensor 41 [| 12; 12 |] 0.3 F.csr);
      (c, random_tensor 42 [| 12; 12 |] 0.3 F.csr);
    ]
  in
  let closure = getd (compile ~name:"spadd_fallback" ~backend:`Closure sched) in
  let rc = getd (run closure ~inputs) in
  let rn = getd (run native ~inputs) in
  Alcotest.(check bool) "fallback result identical" true (tensors_bit_identical rc rn)

let test_compiler_id_in_cache_key () =
  (* The same structure under two TACO_CC values must not share a cache
     entry: a bogus-compiler downgrade must not be served back once a
     working compiler is configured. *)
  let _, _, sched = spadd_sched ~parallel:false in
  let k1 = with_bogus_cc (fun () -> getd (compile ~name:"spadd_key" ~backend:`Native sched)) in
  Alcotest.(check bool) "bogus entry downgraded" true (backend_of k1 = `Closure);
  if have_cc then
    let k2 = getd (compile ~name:"spadd_key" ~backend:`Native sched) in
    Alcotest.(check bool) "real compiler not served the stale downgrade" true
      (backend_of k2 = `Native)

let () =
  Alcotest.run "native"
    [
      ( "bit-identity",
        [
          cc_case "SpGEMM closure vs native" (test_spgemm_identity ~parallel:false);
          cc_case "SpAdd closure vs native" (test_spadd_identity ~parallel:false);
          cc_case "MTTKRP closure vs native" (test_mttkrp_identity ~parallel:false);
          cc_case "SpGEMM parallel (OpenMP) vs closure" (test_spgemm_identity ~parallel:true);
          cc_case "SpAdd parallel (OpenMP) vs closure" (test_spadd_identity ~parallel:true);
          cc_case "MTTKRP parallel (OpenMP) vs closure" (test_mttkrp_identity ~parallel:true);
          cc_case "native vs chunked closure runs" test_parallel_domains_identity;
        ] );
      ("codegen", [ cc_case "exec C is -Wall -Werror clean" test_exec_c_warning_clean ]);
      ("cache", [ cc_case "native builds single-flight across domains" test_single_flight ]);
      ( "fallback",
        [
          Alcotest.test_case "bogus TACO_CC downgrades to closures" `Quick
            test_bogus_compiler_falls_back;
          Alcotest.test_case "compiler id is part of the cache key" `Quick
            test_compiler_id_in_cache_key;
        ] );
    ]
