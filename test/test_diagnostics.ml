(* Fixture tests for the structured diagnostics: malformed inputs at
   every user-facing edge must be rejected with the exact stage and
   error code (and useful context), never with a crash. *)

module F = Taco_tensor.Format
module T = Taco_tensor.Tensor
module Io = Taco_tensor.Io
module I = Taco_ir.Index_notation
module Cin = Taco_ir.Cin
module Schedule = Taco_ir.Schedule
module Lower = Taco_lower.Lower
module Compile = Taco_exec.Compile
module Kernel = Taco_exec.Kernel
module P = Taco_frontend.Parser
module Diag = Taco_support.Diag
open Taco_ir.Var

let temp_file = Filename.temp_file "taco_diag" ".txt"

let write path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Check that a result is an [Error] diagnostic with the given stage and
   code; returns it for further context checks. *)
let expect_diag what ~stage ~code = function
  | Ok _ -> Alcotest.fail (what ^ ": expected a diagnostic, got Ok")
  | Error (d : Diag.t) ->
      Alcotest.(check string)
        (what ^ ": stage") (Diag.stage_name stage) (Diag.stage_name d.Diag.stage);
      Alcotest.(check string) (what ^ ": code") code d.Diag.code;
      d

let context_value what key (d : Diag.t) =
  match List.assoc_opt key d.Diag.context with
  | Some v -> v
  | None ->
      Alcotest.fail
        (Printf.sprintf "%s: diagnostic carries no %S context (%s)" what key
           (Diag.to_string d))

(* ------------------------------------------------------------------ *)
(* Io fixtures                                                         *)
(* ------------------------------------------------------------------ *)

let test_mtx_garbage_header () =
  write temp_file "this is not\na matrix at all\n";
  let d =
    expect_diag "garbage header" ~stage:Diag.Io ~code:"E_IO_HEADER"
      (Io.read_matrix_market temp_file)
  in
  Alcotest.(check string) "line of the bad header" "1" (context_value "header" "line" d)

let test_mtx_truncated () =
  (* Size line promises two entries, the file ends after one. *)
  write temp_file "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n";
  ignore
    (expect_diag "truncated file" ~stage:Diag.Io ~code:"E_IO_EOF"
       (Io.read_matrix_market temp_file))

let test_mtx_bad_entry_line_number () =
  write temp_file
    "%%MatrixMarket matrix coordinate real general\n\
     % comment\n\
     3 3 2\n\
     1 1 1.0\n\
     2 oops 2.0\n";
  let d =
    expect_diag "bad entry" ~stage:Diag.Io ~code:"E_IO_FIELD"
      (Io.read_matrix_market temp_file)
  in
  Alcotest.(check string) "offending line number" "5" (context_value "entry" "line" d)

let test_mtx_bad_size_line () =
  write temp_file "%%MatrixMarket matrix coordinate real general\n3 3\n";
  ignore
    (expect_diag "bad size line" ~stage:Diag.Io ~code:"E_IO_SIZE_LINE"
       (Io.read_matrix_market temp_file))

let test_mtx_missing_file () =
  ignore
    (expect_diag "missing file" ~stage:Diag.Io ~code:"E_IO_SYS"
       (Io.read_matrix_market "/nonexistent/taco.mtx"))

let test_mtx_tolerant_reader () =
  (* CRLF endings, blank lines and comments between entries must all be
     accepted; only real data lines count toward nnz. *)
  write temp_file
    "%%MatrixMarket matrix coordinate real general\r\n\
     % a comment\r\n\
     \r\n\
     3 4 2\r\n\
     \r\n\
     1 2 1.5\r\n\
     % interleaved comment\r\n\
     # hash comment too\r\n\
     3 4 -2.5\r\n";
  match Io.read_matrix_market temp_file with
  | Error d -> Alcotest.fail ("tolerant reader rejected: " ^ Diag.to_string d)
  | Ok coo ->
      let d = Taco_tensor.Coo.to_dense coo in
      Alcotest.(check (float 0.)) "entry 1" 1.5 (Taco_tensor.Dense.get d [| 0; 1 |]);
      Alcotest.(check (float 0.)) "entry 2" (-2.5) (Taco_tensor.Dense.get d [| 2; 3 |])

let test_mtx_write_bad_order () =
  let t = T.zero [| 2; 2; 2 |] (F.dense 3) in
  ignore
    (expect_diag "order-3 write" ~stage:Diag.Io ~code:"E_IO_ORDER"
       (Io.write_matrix_market temp_file t))

let test_tns_garbage () =
  write temp_file "1 2 not_a_number\n";
  let d =
    expect_diag "garbage value" ~stage:Diag.Io ~code:"E_IO_FIELD"
      (Io.read_frostt temp_file)
  in
  Alcotest.(check string) "line" "1" (context_value "tns" "line" d)

let test_tns_inconsistent_arity () =
  write temp_file "1 1 1 2.0\n\n# comment\n1 1 2.0\n";
  let d =
    expect_diag "inconsistent arity" ~stage:Diag.Io ~code:"E_IO_ENTRY"
      (Io.read_frostt temp_file)
  in
  Alcotest.(check string) "line of the short entry" "4" (context_value "tns" "line" d)

(* ------------------------------------------------------------------ *)
(* Parser fixtures                                                     *)
(* ------------------------------------------------------------------ *)

let env =
  [
    ("A", Tensor_var.make "A" ~order:2 ~format:F.csr);
    ("x", Tensor_var.make "x" ~order:1 ~format:F.dense_vector);
  ]

let test_parse_unknown_tensor () =
  let d =
    expect_diag "unknown tensor" ~stage:Diag.Parse ~code:"E_PARSE_UNKNOWN_TENSOR"
      (P.parse_statement ~tensors:env "Z(i) = x(i)")
  in
  Alcotest.(check string) "position" "0" (context_value "unknown" "position" d)

let test_parse_arity () =
  ignore
    (expect_diag "arity" ~stage:Diag.Parse ~code:"E_PARSE_ARITY"
       (P.parse_statement ~tensors:env "A(i) = x(i)"))

let test_parse_bad_char () =
  let d =
    expect_diag "bad char" ~stage:Diag.Parse ~code:"E_PARSE_CHAR"
      (P.parse_statement ~tensors:env "x(i) = x(i) ^ 2")
  in
  Alcotest.(check string) "position of ^" "12" (context_value "char" "position" d)

let test_parse_trailing () =
  ignore
    (expect_diag "trailing" ~stage:Diag.Parse ~code:"E_PARSE_TRAILING"
       (P.parse_statement ~tensors:env "x(i) = x(i) x"))

let test_parse_bad_number () =
  ignore
    (expect_diag "bad number" ~stage:Diag.Parse ~code:"E_PARSE_NUMBER"
       (P.parse_statement ~tensors:env "x(i) = 1.5ee3"))

let test_parse_syntax () =
  ignore
    (expect_diag "empty rhs" ~stage:Diag.Parse ~code:"E_PARSE_SYNTAX"
       (P.parse_statement ~tensors:env "x(i) = "));
  ignore
    (expect_diag "missing op" ~stage:Diag.Parse ~code:"E_PARSE_SYNTAX"
       (P.parse_statement ~tensors:env "x(i) x(i)"))

let test_parse_validate () =
  (* Well-formed syntax, ill-formed statement: the result tensor may not
     appear on its own right-hand side. *)
  ignore
    (expect_diag "validate" ~stage:Diag.Parse ~code:"E_PARSE_VALIDATE"
       (P.parse_statement ~tensors:env "A(i,j) = A(i,j)"))

(* ------------------------------------------------------------------ *)
(* Compile / execute fixtures                                          *)
(* ------------------------------------------------------------------ *)

let vi = Index_var.make "i"

let vj = Index_var.make "j"

let vk = Index_var.make "k"

let test_run_missing_binding () =
  (* Two inputs, one bound: dimensions still infer (from b) but the
     binding for c is missing. *)
  let x = Tensor_var.make "x" ~order:1 ~format:F.dense_vector in
  let b = Tensor_var.make "b" ~order:1 ~format:F.dense_vector in
  let c = Tensor_var.make "c" ~order:1 ~format:F.dense_vector in
  let stmt = I.assign x [ vi ] (I.Add (I.access b [ vi ], I.access c [ vi ])) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let compiled = Helpers.getd (Taco.compile sched) in
  let bt = Helpers.random_tensor 6 [| 4 |] 1.0 F.dense_vector in
  let d =
    expect_diag "missing binding" ~stage:Diag.Execute ~code:"E_EXEC_BINDING"
      (Taco.run compiled ~inputs:[ (b, bt) ])
  in
  Alcotest.(check string) "kernel context" "kernel" (context_value "binding" "kernel" d)

let test_run_no_inputs_dims () =
  (* With no bindings at all, dimension inference is the first failure. *)
  let b = Tensor_var.make "B" ~order:2 ~format:F.dense_matrix in
  let a = Tensor_var.make "A" ~order:2 ~format:F.dense_matrix in
  let stmt = I.assign a [ vi; vj ] (I.access b [ vi; vj ]) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let compiled = Helpers.getd (Taco.compile sched) in
  ignore
    (expect_diag "no inputs" ~stage:Diag.Execute ~code:"E_EXEC_DIMS"
       (Taco.run compiled ~inputs:[]))

let test_run_wrong_format_binding () =
  (* Bind a CSR tensor where the kernel expects a dense matrix. *)
  let b = Tensor_var.make "B" ~order:2 ~format:F.dense_matrix in
  let a = Tensor_var.make "A" ~order:2 ~format:F.dense_matrix in
  let stmt = I.assign a [ vi; vj ] (I.access b [ vi; vj ]) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let c = Helpers.getd (Taco.compile sched) in
  let bt = Helpers.random_tensor 7 [| 3; 3 |] 0.5 F.csr in
  ignore
    (expect_diag "wrong format" ~stage:Diag.Execute ~code:"E_EXEC_BINDING"
       (Taco.run c ~inputs:[ (b, bt) ]))

let test_scatter_without_workspace_is_lower_error () =
  (* The paper's motivating failure: sparse matmul into a sparse result
     scatters; without a workspace the lowerer must reject it (and the
     facade tags the rejection with the Lower stage). *)
  let a = Tensor_var.make "A" ~order:2 ~format:F.csr in
  let b = Tensor_var.make "B" ~order:2 ~format:F.csr in
  let c = Tensor_var.make "C" ~order:2 ~format:F.csr in
  let stmt =
    I.assign a [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ])))
  in
  let bt = Helpers.random_tensor 8 [| 4; 4 |] 0.4 F.csr in
  let ct = Helpers.random_tensor 9 [| 4; 4 |] 0.4 F.csr in
  ignore
    (expect_diag "scatter" ~stage:Diag.Lower ~code:"E_LOWER"
       (Taco.einsum stmt ~inputs:[ (b, bt); (c, ct) ]))

let test_workspace_precondition () =
  (* precompute of an expression the statement does not contain: the
     workspace transformation's precondition fails and the scheduling
     layer reports it (string channel, tagged at the facade edge). *)
  let a = Tensor_var.make "A" ~order:2 ~format:F.dense_matrix in
  let b = Tensor_var.make "B" ~order:2 ~format:F.dense_matrix in
  let stmt = I.assign a [ vi; vj ] (I.access b [ vi; vj ]) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let w = Tensor_var.workspace "w" ~order:1 ~format:F.dense_vector in
  let ghost = Tensor_var.make "G" ~order:2 ~format:F.dense_matrix in
  let expr = Cin.Access (Cin.access ghost [ vi; vj ]) in
  match Schedule.precompute_simple ~expr ~over:[ vj ] ~workspace:w sched with
  | Ok _ -> Alcotest.fail "precompute of an absent expression accepted"
  | Error e ->
      let d = Diag.make ~stage:Diag.Workspace ~code:"E_WORKSPACE" e in
      Alcotest.(check string) "stage" "workspace" (Diag.stage_name d.Diag.stage);
      Alcotest.(check bool) "mentions the failure" true (String.length e > 0)

let test_checked_bounds () =
  (* Compile a dense copy kernel in checked mode, then lie about the
     dimension so the loop runs past the arrays: the checked executor
     must raise a bounds diagnostic naming kernel, variable and index. *)
  let x = Tensor_var.make "x" ~order:1 ~format:F.dense_vector in
  let b = Tensor_var.make "b" ~order:1 ~format:F.dense_vector in
  let stmt = I.assign x [ vi ] (I.access b [ vi ]) in
  let cin = Helpers.get (Taco_ir.Concretize.run stmt) in
  let info = Helpers.get (Lower.lower ~name:"copy" ~mode:Lower.Compute cin) in
  let k = Compile.compile ~checked:true info.Lower.kernel in
  Alcotest.(check bool) "compiled checked" true (Compile.is_checked k);
  let args =
    [
      (Lower.dimension_var x 0, Compile.Aint 5);
      (Lower.dimension_var b 0, Compile.Aint 5);
      (Lower.vals_var x, Compile.Afloat_array (Array.make 5 0.));
      (Lower.vals_var b, Compile.Afloat_array [| 1.; 2.; 3. |]) (* too short *);
    ]
  in
  match Compile.run k ~args with
  | (_ : string -> Compile.arg) -> Alcotest.fail "out-of-bounds read not caught"
  | exception Diag.Error d ->
      Alcotest.(check string) "stage" "execute" (Diag.stage_name d.Diag.stage);
      Alcotest.(check string) "code" "E_EXEC_BOUNDS" d.Diag.code;
      Alcotest.(check string) "kernel" "copy" (context_value "bounds" "kernel" d);
      Alcotest.(check string) "length" "3" (context_value "bounds" "length" d);
      Alcotest.(check string) "index" "3" (context_value "bounds" "index" d)

let test_unchecked_by_default () =
  let x = Tensor_var.make "x" ~order:1 ~format:F.dense_vector in
  let b = Tensor_var.make "b" ~order:1 ~format:F.dense_vector in
  let stmt = I.assign x [ vi ] (I.access b [ vi ]) in
  let cin = Helpers.get (Taco_ir.Concretize.run stmt) in
  let info = Helpers.get (Lower.lower ~name:"copy" ~mode:Lower.Compute cin) in
  Alcotest.(check bool) "default is unchecked" false
    (Compile.is_checked (Compile.compile info.Lower.kernel))

let test_compile_res_ill_typed () =
  (* A hand-built kernel with a type error: compile_res reports it as a
     Compile-stage diagnostic instead of raising. *)
  let module Imp = Taco_lower.Imp in
  let bad =
    {
      Imp.k_name = "bad";
      k_params =
        [ { Imp.p_name = "n"; p_dtype = Imp.Int; p_array = false; p_output = false } ];
      k_body =
        [ Imp.Decl (Imp.Float, "f", Imp.Var "n") (* int initializer for a float *) ];
    }
  in
  (match Imp.validate bad with
  | Ok () -> Alcotest.fail "verifier accepted an ill-typed kernel"
  | Error _ -> ());
  ignore
    (expect_diag "ill-typed kernel" ~stage:Diag.Compile ~code:"E_COMPILE_TYPE"
       (Compile.compile_res bad))

let test_diag_to_string () =
  let d =
    Diag.make ~stage:Diag.Io ~code:"E_IO_ENTRY"
      ~context:[ ("file", "m.mtx"); ("line", "7") ]
      "malformed entry"
  in
  Alcotest.(check string) "rendering" "io error[E_IO_ENTRY]: malformed entry (file=m.mtx, line=7)"
    (Diag.to_string d)

let () =
  Alcotest.run "diagnostics"
    [
      ( "io fixtures",
        [
          Alcotest.test_case "garbage header" `Quick test_mtx_garbage_header;
          Alcotest.test_case "truncated mtx" `Quick test_mtx_truncated;
          Alcotest.test_case "bad entry line number" `Quick test_mtx_bad_entry_line_number;
          Alcotest.test_case "bad size line" `Quick test_mtx_bad_size_line;
          Alcotest.test_case "missing file" `Quick test_mtx_missing_file;
          Alcotest.test_case "crlf/blank/comment tolerance" `Quick test_mtx_tolerant_reader;
          Alcotest.test_case "write rejects order-3" `Quick test_mtx_write_bad_order;
          Alcotest.test_case "garbage tns" `Quick test_tns_garbage;
          Alcotest.test_case "inconsistent tns arity" `Quick test_tns_inconsistent_arity;
        ] );
      ( "parser fixtures",
        [
          Alcotest.test_case "unknown tensor" `Quick test_parse_unknown_tensor;
          Alcotest.test_case "arity" `Quick test_parse_arity;
          Alcotest.test_case "bad character + position" `Quick test_parse_bad_char;
          Alcotest.test_case "trailing input" `Quick test_parse_trailing;
          Alcotest.test_case "bad number" `Quick test_parse_bad_number;
          Alcotest.test_case "syntax errors" `Quick test_parse_syntax;
          Alcotest.test_case "validation errors" `Quick test_parse_validate;
        ] );
      ( "compile/execute fixtures",
        [
          Alcotest.test_case "missing binding" `Quick test_run_missing_binding;
          Alcotest.test_case "no inputs at all" `Quick test_run_no_inputs_dims;
          Alcotest.test_case "wrong format binding" `Quick test_run_wrong_format_binding;
          Alcotest.test_case "scatter is a lower error" `Quick
            test_scatter_without_workspace_is_lower_error;
          Alcotest.test_case "workspace precondition" `Quick test_workspace_precondition;
          Alcotest.test_case "checked bounds" `Quick test_checked_bounds;
          Alcotest.test_case "unchecked by default" `Quick test_unchecked_by_default;
          Alcotest.test_case "ill-typed kernel" `Quick test_compile_res_ill_typed;
          Alcotest.test_case "diagnostic rendering" `Quick test_diag_to_string;
        ] );
    ]
