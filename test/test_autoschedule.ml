(* The cost-based autoscheduler: deterministic workspace naming, search
   determinism, the plan cache, cardinality estimates against ground
   truth, and the cost-vs-default invariant. *)

open Taco_ir
module F = Taco_tensor.Format
module T = Taco_tensor.Tensor
module D = Taco_tensor.Dense
module I = Index_notation
module Lower = Taco_lower.Lower
module Stats = Taco_stats.Stats

let vi = Helpers.vi and vj = Helpers.vj and vk = Helpers.vk

let a = Helpers.csr_tv "A"
let b = Helpers.csr_tv "B"
let c = Helpers.csr_tv "C"
let fused = Lower.Assemble { emit_values = true; sorted = true }

let lowerable ?(mode = fused) s = Result.map ignore (Lower.lower ~mode s)

(* Unscheduled SpGEMM — the canonical statement no policy can lower
   without scheduling steps. *)
let spgemm_stmt () =
  let stmt =
    I.assign a [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ])))
  in
  Schedule.stmt (Helpers.get (Schedule.of_index_notation stmt))

let spgemm_stats seed =
  let bt = Helpers.random_tensor seed [| 100; 100 |] 0.05 F.csr in
  let ct = Helpers.random_tensor (seed + 1) [| 100; 100 |] 0.05 F.csr in
  ([ ("B", Stats.of_tensor bt); ("C", Stats.of_tensor ct) ], bt, ct)

let dense_nnz d =
  let nnz = ref 0 in
  D.iteri (fun _ v -> if v <> 0. then incr nnz) d;
  float_of_int !nnz

(* --- deterministic workspace names ---------------------------------- *)

let is_hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false

(* Every "ws_"-prefixed identifier in the statement's rendering. *)
let workspace_names stmt =
  let str = Cin.to_string stmt in
  let n = String.length str in
  let names = ref [] in
  let ident_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
    | _ -> false
  in
  let i = ref 0 in
  while !i + 3 <= n do
    if
      String.sub str !i 3 = "ws_"
      && (!i = 0 || not (ident_char str.[!i - 1]))
    then begin
      let j = ref (!i + 3) in
      while !j < n && ident_char str.[!j] do
        incr j
      done;
      names := String.sub str !i (!j - !i) :: !names;
      i := !j
    end
    else incr i
  done;
  List.sort_uniq compare !names

let test_ws_names_deterministic () =
  let run () = Helpers.get (Autoschedule.run ~lowerable (spgemm_stmt ())) in
  let s1, _ = run () in
  let s2, _ = run () in
  Alcotest.(check string) "two runs produce the identical statement" (Cin.to_string s1)
    (Cin.to_string s2);
  let names = workspace_names s1 in
  Alcotest.(check bool) "at least one digest-named workspace" true (names <> []);
  List.iter
    (fun name ->
      let suffix = String.sub name 3 (String.length name - 3) in
      Alcotest.(check bool)
        (Printf.sprintf "%s is ws_<8 hex digits>" name)
        true
        (String.length suffix = 8 && String.for_all is_hex suffix))
    names

(* --- search determinism and the cost invariant ----------------------- *)

let test_search_deterministic () =
  let stats, _, _ = spgemm_stats 11 in
  let search () = Helpers.get (Autoschedule.search ~stats ~lowerable (spgemm_stmt ())) in
  let p1, _ = search () in
  let p2, _ = search () in
  Alcotest.(check string) "same chosen statement"
    (Cin.to_string p1.Autoschedule.p_stmt)
    (Cin.to_string p2.Autoschedule.p_stmt);
  Alcotest.(check (float 0.)) "same estimated cost" p1.Autoschedule.p_cost
    p2.Autoschedule.p_cost

let test_chosen_never_costlier () =
  let stats, _, _ = spgemm_stats 23 in
  let _, ex = Helpers.get (Autoschedule.search ~stats ~lowerable (spgemm_stmt ())) in
  Alcotest.(check bool) "chosen cost <= default cost" true
    (ex.Autoschedule.e_chosen_cost <= ex.Autoschedule.e_default_cost);
  (* And without stats the model still holds the invariant. *)
  let _, ex0 = Helpers.get (Autoschedule.search ~lowerable (spgemm_stmt ())) in
  Alcotest.(check bool) "holds with default stats too" true
    (ex0.Autoschedule.e_chosen_cost <= ex0.Autoschedule.e_default_cost)

(* --- plan cache ------------------------------------------------------ *)

let test_cache_hit () =
  Autoschedule.cache_clear ();
  let stats, _, _ = spgemm_stats 37 in
  let key = "test-cache|" ^ Cin.to_string (spgemm_stmt ()) in
  let p1, ex1 = Helpers.get (Autoschedule.search ~stats ~key ~lowerable (spgemm_stmt ())) in
  let p2, ex2 = Helpers.get (Autoschedule.search ~stats ~key ~lowerable (spgemm_stmt ())) in
  Alcotest.(check bool) "first search misses" false ex1.Autoschedule.e_cache_hit;
  Alcotest.(check bool) "second search hits" true ex2.Autoschedule.e_cache_hit;
  Alcotest.(check string) "cached plan is the same plan"
    (Cin.to_string p1.Autoschedule.p_stmt)
    (Cin.to_string p2.Autoschedule.p_stmt);
  let cs = Autoschedule.cache_stats () in
  Alcotest.(check int) "one hit counted" 1 cs.Plan_cache.hits;
  Alcotest.(check bool) "cache holds the plan" true (cs.Plan_cache.size >= 1);
  Autoschedule.cache_clear ();
  let cs = Autoschedule.cache_stats () in
  Alcotest.(check int) "clear resets size" 0 cs.Plan_cache.size

(* --- cardinality estimates ------------------------------------------- *)

(* The SpGEMM output-nnz estimate must land within 4x of ground truth on
   a uniform-random instance (the Bernoulli union model is exact in
   expectation for uniform inputs; 4x leaves room for variance). *)
let test_estimate_nnz_spgemm () =
  let stats, bt, ct = spgemm_stats 41 in
  let stmt = spgemm_stmt () in
  let est =
    match Cost.estimate_nnz (Cost.env stats) stmt with
    | Some e -> e
    | None -> Alcotest.fail "estimate_nnz returned None for SpGEMM"
  in
  let actual = dense_nnz (Helpers.eval_cin stmt [ (b, bt); (c, ct) ]) in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f within 4x of actual %.0f" est actual)
    true
    (est >= actual /. 4. && est <= actual *. 4.)

(* Element-wise add: the union estimate, same bound. *)
let test_estimate_nnz_add () =
  let bt = Helpers.random_tensor 53 [| 80; 80 |] 0.1 F.csr in
  let ct = Helpers.random_tensor 54 [| 80; 80 |] 0.1 F.csr in
  let stats = [ ("B", Stats.of_tensor bt); ("C", Stats.of_tensor ct) ] in
  let stmt =
    Schedule.stmt
      (Helpers.get
         (Schedule.of_index_notation
            (I.assign a [ vi; vj ] (I.Add (I.access b [ vi; vj ], I.access c [ vi; vj ])))))
  in
  let est =
    match Cost.estimate_nnz (Cost.env stats) stmt with
    | Some e -> e
    | None -> Alcotest.fail "estimate_nnz returned None for SpAdd"
  in
  let actual = dense_nnz (Helpers.eval_cin stmt [ (b, bt); (c, ct) ]) in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f within 4x of actual %.0f" est actual)
    true
    (est >= actual /. 4. && est <= actual *. 4.)

(* --- stats collection ------------------------------------------------ *)

let test_stats_of_tensor () =
  let bt = Helpers.random_tensor 61 [| 50; 40 |] 0.2 F.csr in
  let st = Stats.of_tensor bt in
  Alcotest.(check (array int)) "dims recorded" [| 50; 40 |] st.Stats.dims;
  Alcotest.(check int) "nnz recorded" (T.nnz bt) st.Stats.nnz;
  Alcotest.(check bool) "avg fill is stored/rows" true
    (Float.abs (st.Stats.fill.(1) -. (float_of_int (T.nnz bt) /. 50.)) < 1e-9);
  (* bucket is stable across identically-shaped tensors *)
  let bt' = Helpers.random_tensor 62 [| 50; 40 |] 0.2 F.csr in
  Alcotest.(check string) "bucket is shape/log-nnz quantized" (Stats.bucket st)
    (Stats.bucket (Stats.of_tensor bt'))

(* --- parallel advisory ----------------------------------------------- *)

let test_parallel_advisory () =
  (* SpMV with fabricated billion-scale statistics: the chosen plan's
     cost crosses the threshold, i is outermost and indexes the output,
     so the search must attach the advisory. *)
  let y = Helpers.dense_vec_tv "y" in
  let bv = Helpers.csr_tv "B" in
  let x = Helpers.dense_vec_tv "x" in
  let stmt =
    Schedule.stmt
      (Helpers.get
         (Schedule.of_index_notation
            (I.assign y [ vi ] (I.sum vj (I.Mul (I.access bv [ vi; vj ], I.access x [ vj ]))))))
  in
  let huge =
    {
      Stats.dims = [| 200_000; 200_000 |];
      nnz = 2_000_000_000;
      n_positions = [| 200_000; 2_000_000_000 |];
      fill = [| 200_000.; 10_000. |];
      row_hist = [||];
      hist_level = None;
    }
  in
  let plan, _ =
    Helpers.get
      (Autoschedule.search
         ~stats:[ ("B", huge) ]
         ~lowerable:(lowerable ~mode:Lower.Compute) stmt)
  in
  match plan.Autoschedule.p_par with
  | Some v -> Alcotest.(check string) "outermost loop advised" "i" (Var.Index_var.name v)
  | None -> Alcotest.fail "no parallel advisory despite billion-scale stats"

let () =
  Alcotest.run "autoschedule"
    [
      ( "naming",
        [ Alcotest.test_case "workspace names deterministic" `Quick test_ws_names_deterministic ] );
      ( "search",
        [
          Alcotest.test_case "search deterministic" `Quick test_search_deterministic;
          Alcotest.test_case "chosen never costlier" `Quick test_chosen_never_costlier;
          Alcotest.test_case "parallel advisory" `Quick test_parallel_advisory;
        ] );
      ("cache", [ Alcotest.test_case "hit on repeat key" `Quick test_cache_hit ]);
      ( "estimates",
        [
          Alcotest.test_case "spgemm nnz within 4x" `Quick test_estimate_nnz_spgemm;
          Alcotest.test_case "spadd nnz within 4x" `Quick test_estimate_nnz_add;
          Alcotest.test_case "stats collection" `Quick test_stats_of_tensor;
        ] );
    ]
