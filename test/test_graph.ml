(* Oracle tests for the graph workloads (lib/graph): BFS and
   Bellman-Ford against textbook OCaml implementations on random
   digraphs (including disconnected ones), PageRank against a dense
   power-iteration oracle, triangle counts against brute force. Each
   workload runs under both the closure and the native executor. *)

module G = Taco_graph.Graph
module T = Taco_tensor.Tensor
module Coo = Taco_tensor.Coo
module F = Taco_tensor.Format
module Prng = Taco_support.Prng

let get = Helpers.get

let backends = [ ("closure", `Closure); ("native", `Native) ]

(* --- graph builders --------------------------------------------------- *)

(* Pack a weighted edge list as a CSR adjacency matrix. *)
let adjacency n edges =
  let coo = Coo.create [| n; n |] in
  List.iter (fun (i, j, w) -> Coo.push coo [| i; j |] w) edges;
  T.pack coo F.csr

(* A random simple digraph: each ordered pair (i, j), i <> j, carries an
   edge with probability [p]; weights drawn from (0.5, 5.5). *)
let random_digraph prng n p =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Prng.bool prng p then
        edges := (i, j, 0.5 +. (5. *. Prng.float prng)) :: !edges
    done
  done;
  !edges

(* A random undirected simple graph as a symmetric 0/1 edge list. *)
let random_undirected prng n p =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prng.bool prng p then edges := (i, j, 1.) :: (j, i, 1.) :: !edges
    done
  done;
  !edges

(* --- textbook oracles ------------------------------------------------- *)

let bfs_oracle n edges src =
  let adj = Array.make n [] in
  List.iter (fun (i, j, _) -> adj.(i) <- j :: adj.(i)) edges;
  let levels = Array.make n (-1) in
  levels.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    List.iter
      (fun v ->
        if levels.(v) < 0 then begin
          levels.(v) <- levels.(u) + 1;
          Queue.add v q
        end)
      adj.(u)
  done;
  levels

let bellman_ford_oracle n edges src =
  let dist = Array.make n infinity in
  dist.(src) <- 0.;
  for _round = 1 to n - 1 do
    List.iter
      (fun (i, j, w) -> if dist.(i) +. w < dist.(j) then dist.(j) <- dist.(i) +. w)
      edges
  done;
  dist

let pagerank_oracle n edges ~damping ~tol ~max_iters =
  let a = Array.make_matrix n n 0. in
  List.iter (fun (i, j, _) -> a.(i).(j) <- 1.) edges;
  let outdeg = Array.map (fun row -> Array.fold_left ( +. ) 0. row) a in
  let uniform = 1. /. float_of_int n in
  let r = ref (Array.make n uniform) in
  (try
     for _it = 1 to max_iters do
       let pr =
         Array.init n (fun i ->
             let acc = ref 0. in
             for j = 0 to n - 1 do
               if a.(j).(i) <> 0. then acc := !acc +. (!r.(j) /. outdeg.(j))
             done;
             !acc)
       in
       let dangling =
         let m = ref 0. in
         Array.iteri (fun i ri -> if outdeg.(i) = 0. then m := !m +. ri) !r;
         !m
       in
       let base = ((1. -. damping) +. (damping *. dangling)) *. uniform in
       let r' = Array.map (fun x -> base +. (damping *. x)) pr in
       let delta = ref 0. in
       Array.iteri (fun i x -> delta := !delta +. abs_float (x -. !r.(i))) r';
       r := r';
       if !delta < tol then raise Exit
     done
   with Exit -> ());
  !r

let triangles_oracle n edges =
  let a = Array.make_matrix n n false in
  List.iter (fun (i, j, _) -> a.(i).(j) <- true) edges;
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      for k = j + 1 to n - 1 do
        if a.(i).(j) && a.(j).(k) && a.(i).(k) then incr count
      done
    done
  done;
  !count

(* --- checks ----------------------------------------------------------- *)

let levels_t = Alcotest.(array int)

let check_bfs ~msg backend n edges src =
  let got, _iters = get (G.bfs ~backend (adjacency n edges) ~src) in
  Alcotest.check levels_t msg (bfs_oracle n edges src) got

let check_bf ~msg backend n edges src =
  let got, _iters = get (G.bellman_ford ~backend (adjacency n edges) ~src) in
  let want = bellman_ford_oracle n edges src in
  Array.iteri
    (fun i w ->
      if w = infinity then
        Alcotest.(check bool) (Printf.sprintf "%s [%d] unreachable" msg i) true
          (got.(i) = infinity)
      else
        Alcotest.(check (float 1e-9)) (Printf.sprintf "%s [%d]" msg i) w got.(i))
    want

(* --- test cases ------------------------------------------------------- *)

let test_bfs_known (name, backend) () =
  (* A path 0→1→2→3, a fork 0→2, and an unreachable pocket {4, 5}. *)
  let edges = [ (0, 1, 1.); (1, 2, 1.); (2, 3, 1.); (0, 2, 1.); (4, 5, 1.) ] in
  check_bfs ~msg:(name ^ " path+pocket") backend 6 edges 0;
  check_bfs ~msg:(name ^ " from the pocket") backend 6 edges 4

let test_bfs_random (name, backend) () =
  let prng = Prng.create 1101 in
  for case = 1 to 8 do
    let n = 2 + Prng.int prng 28 in
    let p = 0.02 +. (0.15 *. Prng.float prng) in
    let edges = random_digraph prng n p in
    let src = Prng.int prng n in
    check_bfs ~msg:(Printf.sprintf "%s random case %d (n=%d)" name case n) backend n
      edges src
  done

let test_bf_known (name, backend) () =
  (* Two routes 0→2: direct (5) and via 1 (1 + 1); node 3 unreachable. *)
  let edges = [ (0, 2, 5.); (0, 1, 1.); (1, 2, 1.); (3, 0, 2.) ] in
  check_bf ~msg:(name ^ " two routes") backend 4 edges 0

let test_bf_random (name, backend) () =
  let prng = Prng.create 2202 in
  for case = 1 to 8 do
    let n = 2 + Prng.int prng 28 in
    let p = 0.02 +. (0.15 *. Prng.float prng) in
    let edges = random_digraph prng n p in
    let src = Prng.int prng n in
    check_bf ~msg:(Printf.sprintf "%s random case %d (n=%d)" name case n) backend n
      edges src
  done

let test_bf_rejects_negative (name, backend) () =
  let a = adjacency 2 [ (0, 1, -1.) ] in
  let msg = Helpers.get_err "bellman_ford" (G.bellman_ford ~backend a ~src:0) in
  Alcotest.(check bool)
    (name ^ " names negative weights")
    true
    (Helpers.contains msg "negative")

let test_pagerank (name, backend) () =
  let prng = Prng.create 3303 in
  for case = 1 to 5 do
    let n = 2 + Prng.int prng 23 in
    let p = 0.05 +. (0.2 *. Prng.float prng) in
    (* 0/1 adjacency; includes dangling nodes whenever a row is empty. *)
    let edges = List.map (fun (i, j, _) -> (i, j, 1.)) (random_digraph prng n p) in
    let damping = 0.85 and tol = 1e-13 and max_iters = 2_000 in
    let got, _iters =
      get (G.pagerank ~backend ~damping ~tol ~max_iters (adjacency n edges))
    in
    let want = pagerank_oracle n edges ~damping ~tol ~max_iters in
    Array.iteri
      (fun i w ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "%s case %d rank[%d]" name case i)
          w got.(i))
      want;
    let total = Array.fold_left ( +. ) 0. got in
    Alcotest.(check (float 1e-9)) (Printf.sprintf "%s case %d sums to 1" name case) 1. total
  done

let test_triangles (name, backend) () =
  let prng = Prng.create 4404 in
  for case = 1 to 5 do
    let n = 4 + Prng.int prng 46 in
    let p = 0.05 +. (0.2 *. Prng.float prng) in
    let edges = random_undirected prng n p in
    let got = get (G.triangle_count ~backend (adjacency n edges)) in
    let want = float_of_int (triangles_oracle n edges) in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "%s case %d (n=%d)" name case n)
      want got
  done

(* Satellite regression: a min-plus kernel must not zero its dense
   result with memset — the semiring zero is +inf, not bit-zero. If the
   lowered kernel (or the optimizer's memset-fusion pass) ever reverts
   to memset, every reachable node's distance would collapse to
   min(0, ...) = 0 and Bellman-Ford would return all-zeros. *)
let test_minplus_zeroing_regression () =
  let src =
    let open Taco in
    let a = tensor "A" Format.csr in
    let x = tensor "x" Format.dense_vector in
    let y = tensor "y" Format.dense_vector in
    let i = ivar "i" and j = ivar "j" in
    let stmt =
      Index_notation.assign y [ i ]
        (Index_notation.sum j
           (Index_notation.Mul
              (Index_notation.access a [ i; j ], Index_notation.access x [ j ])))
    in
    let sched = get (Schedule.of_index_notation stmt) in
    let c = Helpers.getd (compile ~name:"spmv_minplus" ~semiring:Semiring.min_plus sched) in
    c_source c
  in
  Alcotest.(check bool) "no memset of the result" false (Helpers.contains src "memset(y_vals");
  Alcotest.(check bool) "fill loop present" true (Helpers.contains src "y_vals[taco_fi] = INFINITY");
  (* End-to-end: distances on a diamond where memset-zeroing would
     return 0 for every node. *)
  let edges = [ (0, 1, 2.); (0, 2, 7.); (1, 2, 3.); (2, 3, 1.) ] in
  List.iter
    (fun (name, backend) ->
      check_bf ~msg:("regression " ^ name) backend 4 edges 0)
    backends

let per_backend name f = List.map (fun b -> Alcotest.test_case (name ^ " " ^ fst b) `Quick (f b)) backends

let () =
  Alcotest.run "graph"
    [
      ("bfs", per_backend "known" test_bfs_known @ per_backend "random" test_bfs_random);
      ( "bellman-ford",
        per_backend "known" test_bf_known
        @ per_backend "random" test_bf_random
        @ per_backend "negative" test_bf_rejects_negative );
      ("pagerank", per_backend "oracle" test_pagerank);
      ("triangles", per_backend "brute-force" test_triangles);
      ( "zeroing",
        [ Alcotest.test_case "min-plus fill regression" `Quick test_minplus_zeroing_regression ]
      );
    ]
