(* Tests for the metrics registry: log-linear histogram quantile
   accuracy against the documented 1/16 relative-error bound, counter
   and histogram merging across concurrently recording domains, the
   Prometheus and JSON encoders on a deterministic recording (golden
   strings), the disabled-is-free discipline mirroring test_trace, the
   Trace span-close hook feeding stage histograms, and the Events JSONL
   sink round-trip through [set_path]. *)

module Metrics = Taco_support.Metrics
module Events = Taco_support.Events
module Trace = Taco_support.Trace

(* [Fun.protect] so a failing assertion cannot leave the registry
   enabled (or populated) for the rest of the suite. *)
let with_metrics f =
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.disable ();
      Metrics.reset ())
    f

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Quantile accuracy                                                   *)
(* ------------------------------------------------------------------ *)

(* The histogram guarantees every recorded value lands in a bucket whose
   width is at most 1/16 of its lower edge, and [quantile] interpolates
   within the resolved bucket — so the estimate must sit within one
   bucket width (~6.25% relative) of the true order statistic. We allow
   7% to absorb the interpolation offset at bucket edges. *)
let check_quantiles values =
  let n = Array.length values in
  let sorted = Array.copy values in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let truth = float_of_int sorted.(rank - 1) in
      match Metrics.quantile_ns "acc_seconds" q with
      | None -> Alcotest.failf "no histogram recorded for q=%g" q
      | Some est ->
          let rel = Float.abs (est -. truth) /. Float.max truth 1. in
          if rel > 0.07 then
            Alcotest.failf "q=%g: estimate %.0f vs true %.0f (rel err %.4f > 0.07)" q est
              truth rel)
    [ 0.5; 0.9; 0.99; 0.999 ]

let test_quantile_accuracy_uniform () =
  with_metrics (fun () ->
      (* Deterministic spread over ~4 decades: 1 us .. 10 ms. *)
      let prng = Taco_support.Prng.create 90210 in
      let values =
        Array.init 5000 (fun _ -> 1_000 + Taco_support.Prng.int prng 10_000_000)
      in
      Array.iter (fun v -> Metrics.observe_ns "acc_seconds" (Int64.of_int v)) values;
      check_quantiles values)

let test_quantile_accuracy_bimodal () =
  with_metrics (fun () ->
      (* A latency-like shape: a tight fast mode and a slow tail, the
         case where linear buckets would blow the error bound. *)
      let prng = Taco_support.Prng.create 777 in
      let values =
        Array.init 4000 (fun i ->
            if i mod 10 = 0 then 50_000_000 + Taco_support.Prng.int prng 50_000_000
            else 80_000 + Taco_support.Prng.int prng 20_000)
      in
      Array.iter (fun v -> Metrics.observe_ns "acc_seconds" (Int64.of_int v)) values;
      check_quantiles values)

let test_quantile_small_counts () =
  with_metrics (fun () ->
      Metrics.observe_ns "acc_seconds" 10L;
      (* One observation: every quantile resolves to its bucket. Value 10
         lands in the unit-width bucket [10,11), so estimates stay within
         one bucket width of the value. *)
      List.iter
        (fun q ->
          match Metrics.quantile_ns "acc_seconds" q with
          | None -> Alcotest.fail "single observation lost"
          | Some est ->
              Alcotest.(check bool)
                (Printf.sprintf "q=%g within unit bucket" q)
                true
                (est >= 10. && est <= 11.))
        [ 0.5; 0.99 ])

let test_quantile_empty_and_clamped () =
  with_metrics (fun () ->
      Alcotest.(check (option (float 0.)))
        "no series -> None" None
        (Metrics.quantile_ns "never_recorded" 0.5);
      Metrics.observe_ns "clamp_seconds" (-5L);
      (match Metrics.quantile_ns "clamp_seconds" 0.5 with
      | None -> Alcotest.fail "negative observation dropped instead of clamped"
      | Some est ->
          Alcotest.(check bool) "negative clamps to bucket 0" true (est >= 0. && est <= 1.)))

(* ------------------------------------------------------------------ *)
(* Cross-domain merge                                                  *)
(* ------------------------------------------------------------------ *)

(* Property: with D domains each incrementing a shared counter series
   and observing into a shared histogram series concurrently, the merged
   snapshot totals are exact — per-domain shards lose nothing. *)
let merge_prop counts =
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.disable ();
      Metrics.reset ())
    (fun () ->
      let domains =
        List.map
          (fun n ->
            Domain.spawn (fun () ->
                for i = 1 to n do
                  Metrics.inc ~labels:[ ("kind", "merge") ] "merge_total";
                  Metrics.observe_ns "merge_seconds" (Int64.of_int (i * 100))
                done))
          counts
      in
      List.iter Domain.join domains;
      let expected = List.fold_left ( + ) 0 counts in
      let snap = Metrics.snapshot () in
      let counter =
        match
          List.assoc_opt ("merge_total", [ ("kind", "merge") ]) snap.Metrics.counters
        with
        | Some v -> v
        | None -> 0
      in
      let hist_count =
        match List.assoc_opt ("merge_seconds", []) snap.Metrics.histograms with
        | Some h -> h.Metrics.h_count
        | None -> 0
      in
      counter = expected && hist_count = expected)

let test_cross_domain_merge_qcheck =
  QCheck.Test.make ~count:25 ~name:"cross-domain shard merge is exact"
    QCheck.(list_of_size (Gen.int_range 1 4) (int_range 0 500))
    merge_prop

let test_family_merge_across_labels () =
  with_metrics (fun () ->
      Metrics.observe_ns ~labels:[ ("backend", "native") ] "fam_seconds" 100L;
      Metrics.observe_ns ~labels:[ ("backend", "closure") ] "fam_seconds" 200L;
      Metrics.observe_ns ~labels:[ ("backend", "closure") ] "fam_seconds" 300L;
      (* Family query merges every label series; labelled query isolates
         one. The p999 of the merged family must reflect all three. *)
      (match Metrics.quantile_ns "fam_seconds" 0.999 with
      | None -> Alcotest.fail "family merge lost series"
      | Some est -> Alcotest.(check bool) "family p999 near max" true (est >= 300.));
      match Metrics.quantile_ns ~labels:[ ("backend", "native") ] "fam_seconds" 0.999 with
      | None -> Alcotest.fail "labelled series lost"
      | Some est ->
          Alcotest.(check bool) "native series isolated" true (est >= 100. && est < 150.))

(* ------------------------------------------------------------------ *)
(* Encoder goldens                                                     *)
(* ------------------------------------------------------------------ *)

(* A fixed tiny recording with exactly predictable output: one counter
   series, one gauge, one single-observation histogram whose value (10
   ns) sits in a unit-width bucket so every quantile interpolates to
   11 ns = 1.1e-08 s. *)
let golden_recording () =
  Metrics.inc ~labels:[ ("code", "ok") ] "req_total" ~by:3;
  Metrics.set_gauge "queue_depth" 2.;
  Metrics.observe_ns "lat_seconds" 10L

let prometheus_golden =
  String.concat "\n"
    [
      "# TYPE req_total counter";
      "req_total{code=\"ok\"} 3";
      "# TYPE queue_depth gauge";
      "queue_depth 2";
      "# TYPE lat_seconds summary";
      "lat_seconds{quantile=\"0.5\"} 1.1e-08";
      "lat_seconds{quantile=\"0.9\"} 1.1e-08";
      "lat_seconds{quantile=\"0.99\"} 1.1e-08";
      "lat_seconds{quantile=\"0.999\"} 1.1e-08";
      "lat_seconds_sum 1e-08";
      "lat_seconds_count 1";
      "";
    ]

let json_golden =
  "{\"counters\":[{\"name\":\"req_total\",\"labels\":{\"code\":\"ok\"},\"value\":3}],"
  ^ "\"gauges\":[{\"name\":\"queue_depth\",\"labels\":{},\"value\":2}],"
  ^ "\"histograms\":[{\"name\":\"lat_seconds\",\"labels\":{},\"count\":1,\"sum_s\":1e-08,"
  ^ "\"p50_s\":1.1e-08,\"p90_s\":1.1e-08,\"p99_s\":1.1e-08,\"p999_s\":1.1e-08}]}\n"

let test_prometheus_golden () =
  with_metrics (fun () ->
      golden_recording ();
      Alcotest.(check string) "prometheus exposition" prometheus_golden
        (Metrics.to_prometheus ()))

let test_json_golden () =
  with_metrics (fun () ->
      golden_recording ();
      Alcotest.(check string) "json snapshot" json_golden (Metrics.to_json ()))

let test_encoder_sanitization () =
  with_metrics (fun () ->
      Metrics.inc ~labels:[ ("bad label", "has \"quote\"\nand newline") ] "9bad name!";
      let text = Metrics.to_prometheus () in
      Alcotest.(check bool) "leading digit sanitized" true
        (contains text "# TYPE _bad_name_ counter");
      Alcotest.(check bool) "label key sanitized" true (contains text "bad_label=");
      Alcotest.(check bool) "label value escaped" true
        (contains text "has \\\"quote\\\"\\nand newline"))

let test_label_order_is_canonical () =
  with_metrics (fun () ->
      (* The same logical series addressed with either label order must
         collapse to one sample. *)
      Metrics.inc ~labels:[ ("b", "2"); ("a", "1") ] "canon_total";
      Metrics.inc ~labels:[ ("a", "1"); ("b", "2") ] "canon_total";
      let snap = Metrics.snapshot () in
      let series =
        List.filter (fun ((n, _), _) -> n = "canon_total") snap.Metrics.counters
      in
      Alcotest.(check int) "one series" 1 (List.length series);
      Alcotest.(check int) "both increments landed" 2 (snd (List.hd series)))

(* ------------------------------------------------------------------ *)
(* Disabled is free / Trace hook                                       *)
(* ------------------------------------------------------------------ *)

let test_disabled_records_nothing () =
  Metrics.disable ();
  Metrics.reset ();
  Metrics.inc "should_not_count";
  Metrics.set_gauge "should_not_set" 1.;
  Metrics.observe_ns "should_not_observe" 5L;
  let r = Metrics.time "should_not_time" (fun () -> 42) in
  Alcotest.(check int) "time passes the result through" 42 r;
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "no counters" 0 (List.length snap.Metrics.counters);
  Alcotest.(check int) "no gauges" 0 (List.length snap.Metrics.gauges);
  Alcotest.(check int) "no histograms" 0 (List.length snap.Metrics.histograms);
  Alcotest.(check string) "empty exposition" "" (Metrics.to_prometheus ())

let test_trace_hook_feeds_stage_histogram () =
  with_metrics (fun () ->
      (* Metrics on, Trace buffer off: span closes must still feed the
         per-stage histogram through the hook, without recording trace
         events. *)
      Trace.disable ();
      Trace.clear ();
      Trace.with_span "unit_test_stage" (fun () -> ignore (Sys.opaque_identity 1));
      Alcotest.(check int) "trace buffer untouched" 0 (Trace.event_count ());
      match
        Metrics.quantile_ns
          ~labels:[ ("stage", "unit_test_stage") ]
          "taco_stage_duration_seconds" 0.5
      with
      | None -> Alcotest.fail "span close did not reach the stage histogram"
      | Some est -> Alcotest.(check bool) "nonneg duration" true (est >= 0.))

let test_disable_uninstalls_hook () =
  with_metrics (fun () -> ());
  (* with_metrics disabled on exit; a span now must not observe. *)
  Trace.with_span "after_disable_stage" (fun () -> ());
  Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.disable ();
      Metrics.reset ())
    (fun () ->
      Alcotest.(check (option (float 0.)))
        "no observation leaked through a stale hook" None
        (Metrics.quantile_ns
           ~labels:[ ("stage", "after_disable_stage") ]
           "taco_stage_duration_seconds" 0.5))

(* ------------------------------------------------------------------ *)
(* Events JSONL round-trip                                             *)
(* ------------------------------------------------------------------ *)

let read_lines file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_events_roundtrip () =
  let file = Filename.temp_file "taco_events" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Events.set_path None;
      Sys.remove file)
    (fun () ->
      Events.set_path (Some file);
      Alcotest.(check bool) "sink enabled" true (Events.enabled ());
      Events.emit "test.first"
        [
          ("rid", Events.Int 7);
          ("expr", Events.Str "y(i) = B(i,j) * \"x\"(j)\n");
          ("shed", Events.Bool false);
          ("wait_ns", Events.I64 123456789L);
          ("ratio", Events.Float 0.5);
        ];
      Events.emit "test.second" [];
      Events.close ();
      let lines = read_lines file in
      Alcotest.(check int) "one line per emit" 2 (List.length lines);
      let first = List.nth lines 0 and second = List.nth lines 1 in
      Alcotest.(check bool) "event field leads" true
        (String.length first > 22 && String.sub first 0 22 = "{\"event\":\"test.first\",");
      Alcotest.(check bool) "ts_ns stamped" true (contains first "\"ts_ns\":");
      Alcotest.(check bool) "int field" true (contains first "\"rid\":7");
      Alcotest.(check bool) "escaped string field" true
        (contains first "\"expr\":\"y(i) = B(i,j) * \\\"x\\\"(j)\\n\"");
      Alcotest.(check bool) "bool field" true (contains first "\"shed\":false");
      Alcotest.(check bool) "i64 field" true (contains first "\"wait_ns\":123456789");
      Alcotest.(check bool) "float field" true (contains first "\"ratio\":0.5");
      Alcotest.(check bool) "lines are closed objects" true
        (String.length second > 0 && second.[String.length second - 1] = '}');
      Alcotest.(check bool) "second event named" true
        (contains second "\"event\":\"test.second\""))

let test_events_disabled_is_noop () =
  Events.set_path None;
  Alcotest.(check bool) "disabled" false (Events.enabled ());
  (* Must not raise or create files. *)
  Events.emit "test.noop" [ ("k", Events.Int 1) ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "metrics"
    [
      ( "quantiles",
        [
          Alcotest.test_case "uniform spread within 7%" `Quick
            test_quantile_accuracy_uniform;
          Alcotest.test_case "bimodal latency shape within 7%" `Quick
            test_quantile_accuracy_bimodal;
          Alcotest.test_case "single observation" `Quick test_quantile_small_counts;
          Alcotest.test_case "empty and clamped" `Quick test_quantile_empty_and_clamped;
        ] );
      ( "merge",
        [
          QCheck_alcotest.to_alcotest test_cross_domain_merge_qcheck;
          Alcotest.test_case "family merge across labels" `Quick
            test_family_merge_across_labels;
        ] );
      ( "encoders",
        [
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "json golden" `Quick test_json_golden;
          Alcotest.test_case "sanitization and escaping" `Quick test_encoder_sanitization;
          Alcotest.test_case "label order canonical" `Quick test_label_order_is_canonical;
        ] );
      ( "discipline",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "trace hook feeds stage histogram" `Quick
            test_trace_hook_feeds_stage_histogram;
          Alcotest.test_case "disable uninstalls the hook" `Quick
            test_disable_uninstalls_hook;
        ] );
      ( "events",
        [
          Alcotest.test_case "jsonl round-trip" `Quick test_events_roundtrip;
          Alcotest.test_case "disabled emit is a no-op" `Quick
            test_events_disabled_is_noop;
        ] );
    ]
