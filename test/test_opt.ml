(* Unit tests for the Imp optimizer pipeline (Taco_lower.Opt): one group
   per pass checking the rewrite fires (and refuses to fire) on small
   hand-built kernels, plus semantic equivalence through the executor,
   the compiled-kernel cache, and the Parallel clamping/empty-partition
   edge cases. The fuzz differential in test_fuzz.ml covers the passes
   in combination on generated kernels. *)

open Taco_ir
module F = Taco_tensor.Format
module T = Taco_tensor.Tensor
module D = Taco_tensor.Dense
module Imp = Taco_lower.Imp
module Opt = Taco_lower.Opt
module Lower = Taco_lower.Lower
module Compile = Taco_exec.Compile
module Kernel = Taco_exec.Kernel

let vi = Helpers.vi and vj = Helpers.vj

let v n = Imp.Var n

let i n = Imp.Int_lit n

let kernel ?(params = []) ?(name = "t") body = { Imp.k_name = name; k_params = params; k_body = body }

let only_simplify = { Opt.none with simplify = true }

let only_memset = { Opt.none with memset_fusion = true }

let only_w2f = { Opt.none with while_to_for = true }

let only_bf = { Opt.none with branch_fusion = true }

let only_cse = { Opt.none with cse = true }

let only_licm = { Opt.none with licm = true }

let only_dce = { Opt.none with dce = true }

let opt ?config k = Opt.optimize_exn ?config k

let read_int reader name =
  match reader name with
  | Compile.Aint x -> x
  | _ -> Alcotest.fail "expected int"

let read_iarr reader name =
  match reader name with
  | Compile.Aint_array x -> x
  | _ -> Alcotest.fail "expected int array"

(* Run a kernel unoptimized and with [config], checking that the named
   scalars and arrays agree. *)
let check_equiv ?config k scalars arrays =
  let r0 = Compile.run (Compile.compile ~opt:Opt.none ~cache:false k) ~args:[] in
  let r1 = Compile.run (Compile.compile ?opt:config ~cache:false k) ~args:[] in
  List.iter
    (fun n -> Alcotest.(check int) n (read_int r0 n) (read_int r1 n))
    scalars;
  List.iter
    (fun n -> Alcotest.(check (array int)) n (read_iarr r0 n) (read_iarr r1 n))
    arrays

(* ------------------------------------------------------------------ *)
(* simplify                                                            *)
(* ------------------------------------------------------------------ *)

let test_simplify_folds () =
  let k =
    kernel
      [
        Imp.Decl (Imp.Int, "x", Imp.Binop (Imp.Add, i 2, Imp.Binop (Imp.Mul, i 3, i 4)));
        Imp.Decl (Imp.Int, "y", v "x");
        Imp.Decl (Imp.Int, "z", Imp.Binop (Imp.Add, v "y", i 0));
      ]
  in
  (match (opt ~config:only_simplify k).Imp.k_body with
  | [ Imp.Decl (_, "x", Imp.Int_lit 14); Imp.Decl (_, "y", Imp.Int_lit 14); Imp.Decl (_, "z", Imp.Int_lit 14) ] -> ()
  | _ -> Alcotest.fail "expected constants to fold and propagate");
  check_equiv ~config:only_simplify k [ "x"; "y"; "z" ] []

let test_simplify_kills_propagation () =
  (* y = x must stop propagating once x is reassigned. *)
  let k =
    kernel
      [
        Imp.Decl (Imp.Int, "x", i 1);
        Imp.Decl (Imp.Int, "y", v "x");
        Imp.Assign ("x", i 5);
        Imp.Decl (Imp.Int, "z", v "y");
      ]
  in
  let r = Compile.run (Compile.compile ~opt:only_simplify ~cache:false k) ~args:[] in
  Alcotest.(check int) "y keeps old x" 1 (read_int r "y");
  Alcotest.(check int) "z reads y" 1 (read_int r "z");
  Alcotest.(check int) "x reassigned" 5 (read_int r "x")

let test_simplify_preserves_float_zero_add () =
  (* x +. 0.0 must not fold: it would turn -0.0 into +0.0. *)
  let k =
    kernel
      ~params:[ { Imp.p_name = "p"; p_dtype = Imp.Float; p_array = false; p_output = false } ]
      [ Imp.Decl (Imp.Float, "x", Imp.Binop (Imp.Add, v "p", Imp.Float_lit 0.0)) ]
  in
  match (opt ~config:only_simplify k).Imp.k_body with
  | [ Imp.Decl (_, "x", Imp.Binop (Imp.Add, Imp.Var "p", Imp.Float_lit 0.0)) ] -> ()
  | _ -> Alcotest.fail "float + 0.0 must be left alone"

let test_simplify_static_branch () =
  let k =
    kernel
      [
        Imp.Decl (Imp.Int, "x", i 0);
        Imp.If (Imp.Binop (Imp.Lt, i 1, i 2), [ Imp.Assign ("x", i 7) ], [ Imp.Assign ("x", i 9) ]);
      ]
  in
  (match (opt ~config:only_simplify k).Imp.k_body with
  | [ Imp.Decl (_, "x", _); Imp.Assign ("x", Imp.Int_lit 7) ] -> ()
  | _ -> Alcotest.fail "statically-true branch should inline");
  check_equiv ~config:only_simplify k [ "x" ] []

(* ------------------------------------------------------------------ *)
(* memset_fusion                                                       *)
(* ------------------------------------------------------------------ *)

let has_memset name body =
  let found = ref false in
  let rec go = function
    | Imp.Memset (v, _) when v = name -> found := true
    | Imp.For (_, _, _, b) | Imp.While (_, b) -> List.iter go b
    | Imp.If (_, t, e) -> List.iter go t; List.iter go e
    | _ -> ()
  in
  List.iter go body;
  !found

let test_memset_fused () =
  let k =
    kernel
      [
        Imp.Alloc (Imp.Float, "w", v "n");
        Imp.Decl (Imp.Int, "x", i 0);
        Imp.Memset ("w", v "n");
      ]
      ~params:[ { Imp.p_name = "n"; p_dtype = Imp.Int; p_array = false; p_output = false } ]
  in
  Alcotest.(check bool) "memset dropped" false
    (has_memset "w" (opt ~config:only_memset k).Imp.k_body)

let test_memset_not_fused_after_write () =
  let k =
    kernel
      [
        Imp.Alloc (Imp.Float, "w", i 8);
        Imp.Store ("w", i 0, Imp.Float_lit 1.0);
        Imp.Memset ("w", i 8);
      ]
  in
  Alcotest.(check bool) "memset kept after store" true
    (has_memset "w" (opt ~config:only_memset k).Imp.k_body)

let test_memset_not_fused_on_smaller_alloc () =
  let k =
    kernel
      [ Imp.Alloc (Imp.Float, "w", i 8); Imp.Memset ("w", v "m") ]
      ~params:[ { Imp.p_name = "m"; p_dtype = Imp.Int; p_array = false; p_output = false } ]
  in
  Alcotest.(check bool) "memset kept when sizes differ" true
    (has_memset "w" (opt ~config:only_memset k).Imp.k_body)

(* ------------------------------------------------------------------ *)
(* while_to_for                                                        *)
(* ------------------------------------------------------------------ *)

let counted_while ~start ~bound body_pre =
  [
    Imp.Decl (Imp.Int, "p", i start);
    Imp.While
      ( Imp.Binop (Imp.Lt, v "p", bound),
        body_pre @ [ Imp.Assign ("p", Imp.Binop (Imp.Add, v "p", i 1)) ] );
  ]

let test_while_to_for_converts () =
  let k =
    kernel
      ([ Imp.Decl (Imp.Int, "sum", i 0) ]
      @ counted_while ~start:2 ~bound:(i 7)
          [ Imp.Assign ("sum", Imp.Binop (Imp.Add, v "sum", v "p")) ])
  in
  let k' = opt ~config:only_w2f k in
  (match k'.Imp.k_body with
  | [ _; _; Imp.For (q, Imp.Var "p", Imp.Int_lit 7, _); Imp.Assign ("p", _) ] when q <> "p" -> ()
  | _ -> Alcotest.fail "counted while should become a for (fresh variable) plus fix-up");
  check_equiv ~config:only_w2f k [ "sum"; "p" ] []

let test_while_to_for_zero_trip () =
  (* start >= bound: the while leaves p untouched; so must the for. *)
  let k = kernel (counted_while ~start:9 ~bound:(i 4) []) in
  check_equiv ~config:only_w2f k [ "p" ] [];
  let r = Compile.run (Compile.compile ~opt:only_w2f ~cache:false k) ~args:[] in
  Alcotest.(check int) "p untouched on zero trips" 9 (read_int r "p")

let test_while_to_for_refuses_mutable_bound () =
  let k =
    kernel
      [
        Imp.Decl (Imp.Int, "b", i 5);
        Imp.Decl (Imp.Int, "p", i 0);
        Imp.While
          ( Imp.Binop (Imp.Lt, v "p", v "b"),
            [
              Imp.Assign ("b", Imp.Binop (Imp.Sub, v "b", i 1));
              Imp.Assign ("p", Imp.Binop (Imp.Add, v "p", i 1));
            ] );
      ]
  in
  let k' = opt ~config:only_w2f k in
  (match k'.Imp.k_body with
  | [ _; _; Imp.While _ ] -> ()
  | _ -> Alcotest.fail "while with mutated bound must not convert");
  check_equiv ~config:only_w2f k [ "p"; "b" ] []

(* ------------------------------------------------------------------ *)
(* branch_fusion                                                       *)
(* ------------------------------------------------------------------ *)

let top_ifs body = List.filter (function Imp.If _ -> true | _ -> false) body

(* The merge-lattice shape: a case analysis over conditions [a]/[b]
   followed by two guarded increments re-testing the same conditions. *)
let lattice_kernel xv yv =
  let a = Imp.Binop (Imp.Lt, v "x", i 5) and b = Imp.Binop (Imp.Lt, v "y", i 5) in
  kernel
    [
      Imp.Decl (Imp.Int, "x", i xv);
      Imp.Decl (Imp.Int, "y", i yv);
      Imp.Decl (Imp.Int, "p", i 0);
      Imp.Decl (Imp.Int, "q", i 0);
      Imp.Decl (Imp.Int, "r", i 0);
      Imp.If
        ( Imp.Binop (Imp.And, a, b),
          [ Imp.Assign ("r", i 1) ],
          [ Imp.If (a, [ Imp.Assign ("r", i 2) ], [ Imp.If (b, [ Imp.Assign ("r", i 3) ], []) ]) ]
        );
      Imp.If (a, [ Imp.Assign ("p", Imp.Binop (Imp.Add, v "p", i 1)) ], []);
      Imp.If (b, [ Imp.Assign ("q", Imp.Binop (Imp.Add, v "q", i 1)) ], []);
    ]

let test_branch_fusion_sinks_lattice_guards () =
  (* Structure: both trailing guards disappear into the case analysis. *)
  let k = lattice_kernel 3 9 in
  let k' = opt ~config:only_bf k in
  Alcotest.(check int) "one If remains" 1 (List.length (top_ifs k'.Imp.k_body));
  (match top_ifs k'.Imp.k_body with
  | [ Imp.If (_, then_arm, _) ] ->
      Alcotest.(check int) "both-true arm gained both increments" 3 (List.length then_arm)
  | _ -> Alcotest.fail "expected the fused case analysis");
  (* Semantics: every truth combination of the two conditions. *)
  List.iter
    (fun (xv, yv) -> check_equiv ~config:only_bf (lattice_kernel xv yv) [ "p"; "q"; "r" ] [])
    [ (3, 3); (3, 9); (9, 3); (9, 9) ]

let test_branch_fusion_refuses_operand_write () =
  (* The both-true arm writes [x], an operand of the conditions: the
     guard's later re-test could disagree with the head-time truth, so
     nothing may sink. *)
  let a = Imp.Binop (Imp.Lt, v "x", i 5) and b = Imp.Binop (Imp.Lt, v "y", i 5) in
  let k =
    kernel
      [
        Imp.Decl (Imp.Int, "x", i 3);
        Imp.Decl (Imp.Int, "y", i 3);
        Imp.Decl (Imp.Int, "p", i 0);
        Imp.If
          ( Imp.Binop (Imp.And, a, b),
            [ Imp.Assign ("x", i 9) ],
            [ Imp.If (a, [], [ Imp.If (b, [], []) ]) ] );
        Imp.If (a, [ Imp.Assign ("p", i 1) ], []);
      ]
  in
  let k' = opt ~config:only_bf k in
  Alcotest.(check bool) "kernel unchanged" true (k'.Imp.k_body = k.Imp.k_body);
  check_equiv ~config:only_bf k [ "p"; "x" ] []

let test_branch_fusion_refuses_undecided_guard () =
  (* The guard condition is unrelated to the case analysis, so its truth
     is unknown in every arm; sinking would duplicate the test. *)
  let a = Imp.Binop (Imp.Lt, v "x", i 5) and b = Imp.Binop (Imp.Lt, v "y", i 5) in
  let k =
    kernel
      [
        Imp.Decl (Imp.Int, "x", i 3);
        Imp.Decl (Imp.Int, "y", i 3);
        Imp.Decl (Imp.Int, "z", i 3);
        Imp.Decl (Imp.Int, "p", i 0);
        Imp.If
          ( Imp.Binop (Imp.And, a, b),
            [],
            [ Imp.If (a, [], [ Imp.If (b, [], []) ]) ] );
        Imp.If (Imp.Binop (Imp.Lt, v "z", i 5), [ Imp.Assign ("p", i 1) ], []);
      ]
  in
  let k' = opt ~config:only_bf k in
  Alcotest.(check bool) "kernel unchanged" true (k'.Imp.k_body = k.Imp.k_body);
  check_equiv ~config:only_bf k [ "p" ] []

(* ------------------------------------------------------------------ *)
(* cse                                                                 *)
(* ------------------------------------------------------------------ *)

let cse_temps body =
  List.filter
    (function Imp.Decl (_, n, _) -> String.length n > 2 && String.sub n 0 2 = "_t" | _ -> false)
    body

let test_cse_shares_repeated_arith () =
  let ab = Imp.Binop (Imp.Mul, v "a", v "b") in
  let k =
    kernel
      [
        Imp.Decl (Imp.Int, "a", i 3);
        Imp.Decl (Imp.Int, "b", i 4);
        Imp.Decl (Imp.Int, "x", Imp.Binop (Imp.Add, ab, i 1));
        Imp.Decl (Imp.Int, "y", Imp.Binop (Imp.Add, ab, i 2));
      ]
  in
  let k' = opt ~config:only_cse k in
  Alcotest.(check int) "a * b shared once" 1 (List.length (cse_temps k'.Imp.k_body));
  check_equiv ~config:only_cse k [ "x"; "y" ] []

let test_cse_killed_by_reassignment () =
  let ab = Imp.Binop (Imp.Mul, v "a", v "b") in
  let k =
    kernel
      [
        Imp.Decl (Imp.Int, "a", i 3);
        Imp.Decl (Imp.Int, "b", i 4);
        Imp.Decl (Imp.Int, "x", ab);
        Imp.Assign ("a", i 5);
        Imp.Decl (Imp.Int, "y", ab);
      ]
  in
  let k' = opt ~config:only_cse k in
  Alcotest.(check int) "no temp across the write to a" 0 (List.length (cse_temps k'.Imp.k_body));
  check_equiv ~config:only_cse k [ "x"; "y" ] []

let test_cse_skips_executor_fused_shapes () =
  (* A comparison of two variables compiles to a single closure, so
     sharing it would only add a statement. *)
  let eq = Imp.Binop (Imp.Eq, v "a", v "b") in
  let k =
    kernel
      [
        Imp.Decl (Imp.Int, "a", i 3);
        Imp.Decl (Imp.Int, "b", i 4);
        Imp.Decl (Imp.Bool, "u", eq);
        Imp.Decl (Imp.Bool, "w", eq);
      ]
  in
  Alcotest.(check int) "no temp for a fused comparison" 0
    (List.length (cse_temps (opt ~config:only_cse k).Imp.k_body))

(* ------------------------------------------------------------------ *)
(* licm                                                                *)
(* ------------------------------------------------------------------ *)

let count_hoisted body =
  List.length
    (List.filter (function Imp.Decl (_, n, _) -> String.length n > 2 && String.sub n 0 2 = "_h" | _ -> false) body)

let test_licm_hoists_invariant_load () =
  let k =
    kernel
      [
        Imp.Alloc (Imp.Int, "a", i 4);
        Imp.Store ("a", i 2, i 41);
        Imp.Alloc (Imp.Int, "out", i 8);
        Imp.For ("x", i 0, i 8, [ Imp.Store ("out", v "x", Imp.Binop (Imp.Add, Imp.Load ("a", i 2), v "x")) ]);
      ]
  in
  let k' = opt ~config:only_licm k in
  Alcotest.(check bool) "a load was hoisted" true (count_hoisted k'.Imp.k_body > 0);
  (match List.filter (function Imp.For _ -> true | _ -> false) k'.Imp.k_body with
  | [ Imp.For (_, _, _, body) ] ->
      Alcotest.(check bool) "loop body no longer loads" false
        (List.exists
           (function Imp.Store (_, _, Imp.Binop (_, Imp.Load _, _)) -> true | _ -> false)
           body)
  | _ -> Alcotest.fail "expected one for loop");
  check_equiv ~config:only_licm k [] [ "out" ]

let test_licm_keeps_variant_load () =
  let k =
    kernel
      [
        Imp.Alloc (Imp.Int, "a", i 8);
        Imp.Alloc (Imp.Int, "out", i 8);
        Imp.For ("x", i 0, i 8, [ Imp.Store ("out", v "x", Imp.Load ("a", v "x")) ]);
      ]
  in
  Alcotest.(check int) "nothing hoisted" 0 (count_hoisted (opt ~config:only_licm k).Imp.k_body)

let test_licm_zero_trip_guard () =
  (* The hoisted load's index is out of bounds when the loop runs zero
     times; the guard must keep checked mode from faulting. *)
  let k =
    kernel
      [
        Imp.Decl (Imp.Int, "n", i 0);
        Imp.Alloc (Imp.Int, "a", i 1);
        Imp.Alloc (Imp.Int, "out", i 1);
        Imp.For ("x", i 0, v "n", [ Imp.Store ("out", v "x", Imp.Load ("a", i 5)) ]);
      ]
  in
  let c = Compile.compile ~checked:true ~opt:only_licm ~cache:false k in
  let r = Compile.run c ~args:[] in
  Alcotest.(check (array int)) "out untouched" [| 0 |] (read_iarr r "out")

(* ------------------------------------------------------------------ *)
(* dce                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dce_removes_dead_loop_temp () =
  let k =
    kernel
      [
        Imp.Alloc (Imp.Int, "a", i 8);
        Imp.Alloc (Imp.Int, "out", i 8);
        Imp.For
          ( "x",
            i 0,
            i 8,
            [
              Imp.Decl (Imp.Int, "dead", Imp.Load ("a", v "x"));
              Imp.Store ("out", v "x", v "x");
            ] );
      ]
  in
  let k' = opt ~config:only_dce k in
  (match List.filter (function Imp.For _ -> true | _ -> false) k'.Imp.k_body with
  | [ Imp.For (_, _, _, [ Imp.Store _ ]) ] -> ()
  | _ -> Alcotest.fail "dead loop temp should be removed");
  check_equiv ~config:only_dce k [] [ "out" ]

let test_dce_keeps_kernel_level_scalars () =
  (* Top-level declarations are observable through the run reader. *)
  let k = kernel [ Imp.Decl (Imp.Int, "x", i 3); Imp.Decl (Imp.Int, "unread", i 9) ] in
  let r = Compile.run (Compile.compile ~opt:only_dce ~cache:false k) ~args:[] in
  Alcotest.(check int) "unread survives" 9 (read_int r "unread");
  Alcotest.(check int) "x survives" 3 (read_int r "x")

let test_dce_drops_empty_loop () =
  let k =
    kernel
      [
        Imp.Alloc (Imp.Int, "a", i 8);
        Imp.For ("x", i 0, i 8, [ Imp.Decl (Imp.Int, "dead", Imp.Load ("a", v "x")) ]);
      ]
  in
  Alcotest.(check bool) "loop emptied and dropped" false
    (List.exists (function Imp.For _ -> true | _ -> false) (opt ~config:only_dce k).Imp.k_body)

(* ------------------------------------------------------------------ *)
(* pipeline + validate                                                 *)
(* ------------------------------------------------------------------ *)

let spgemm_info () =
  let a = Helpers.csr_tv "A" and b = Helpers.csr_tv "B" and c = Helpers.csr_tv "C" in
  let stmt =
    Index_notation.assign a [ vi; vj ]
      (Index_notation.sum Helpers.vk
         (Index_notation.Mul
            (Index_notation.access b [ vi; Helpers.vk ], Index_notation.access c [ Helpers.vk; vj ])))
  in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let sched = Helpers.get (Schedule.reorder Helpers.vk vj sched) in
  let w = Helpers.ws_vec "w" in
  let e =
    Cin.Mul
      ( Cin.Access (Cin.access b [ vi; Helpers.vk ]),
        Cin.Access (Cin.access c [ Helpers.vk; vj ]) )
  in
  let sched = Helpers.get (Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched) in
  Helpers.get
    (Lower.lower ~name:"spgemm_ws"
       ~mode:(Lower.Assemble { emit_values = true; sorted = true })
       (Schedule.stmt sched))

let test_optimized_kernel_validates () =
  let info = spgemm_info () in
  let k = Opt.optimize_exn info.Lower.kernel in
  match Imp.validate k with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("optimized spgemm fails validate: " ^ e)

let test_kernel_exposes_optimized_imp () =
  let info = spgemm_info () in
  let kern = Kernel.prepare info in
  let unopt = Kernel.prepare ~opt:Opt.none info in
  Alcotest.(check bool) "optimizer changed the spgemm kernel" true
    (Kernel.imp kern <> Kernel.imp unopt);
  Alcotest.(check bool) "unopt imp is the lowered kernel" true
    (Kernel.imp unopt = info.Lower.kernel);
  Alcotest.(check bool) "c_source renders the optimized kernel" true
    (String.length (Kernel.c_source kern) > 0)

(* ------------------------------------------------------------------ *)
(* compiled-kernel cache                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_hits () =
  Compile.cache_clear ();
  let k = kernel ~name:"cache_probe" [ Imp.Decl (Imp.Int, "x", i 1) ] in
  let _ = Compile.compile k in
  let s1 = Compile.cache_stats () in
  Alcotest.(check int) "first compile misses" 1 s1.Compile.misses;
  Alcotest.(check int) "one entry" 1 s1.Compile.entries;
  let _ = Compile.compile k in
  let s2 = Compile.cache_stats () in
  Alcotest.(check int) "second compile hits" 1 s2.Compile.hits;
  Alcotest.(check int) "still one entry" 1 s2.Compile.entries

let test_cache_keyed_on_checked_and_kernel () =
  Compile.cache_clear ();
  let k = kernel ~name:"cache_probe2" [ Imp.Decl (Imp.Int, "x", i 1) ] in
  let _ = Compile.compile k in
  let _ = Compile.compile ~checked:true k in
  let k2 = kernel ~name:"cache_probe2" [ Imp.Decl (Imp.Int, "x", i 2) ] in
  let _ = Compile.compile k2 in
  let s = Compile.cache_stats () in
  Alcotest.(check int) "three distinct keys" 3 s.Compile.misses;
  Alcotest.(check int) "no hits" 0 s.Compile.hits

let test_cache_bypass () =
  Compile.cache_clear ();
  let k = kernel ~name:"cache_probe3" [ Imp.Decl (Imp.Int, "x", i 1) ] in
  let _ = Compile.compile ~cache:false k in
  let _ = Compile.compile ~cache:false k in
  let s = Compile.cache_stats () in
  Alcotest.(check int) "bypass records nothing" 0 (s.Compile.hits + s.Compile.misses + s.Compile.entries)

(* ------------------------------------------------------------------ *)
(* Parallel clamping / empty partitions                                *)
(* ------------------------------------------------------------------ *)

let copy_kernel () =
  let b = Helpers.csr_tv "B" in
  let a = Helpers.dense_mat_tv "A" in
  let stmt = Index_notation.assign a [ vi; vj ] (Index_notation.access b [ vi; vj ]) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  (b, Kernel.prepare (Helpers.get (Lower.lower ~mode:Lower.Compute (Schedule.stmt sched))))

let test_parallel_overclamped_domains () =
  (* More domains than rows (and than cores): must clamp and skip the
     padding partitions rather than spawn domains for empty work. *)
  let b, kern = copy_kernel () in
  let bt = Helpers.random_tensor 931 [| 3; 5 |] 0.5 F.csr in
  let seq = Kernel.run_dense kern ~inputs:[ (b, bt) ] ~dims:[| 3; 5 |] in
  let par =
    Taco_exec.Parallel.run_dense kern ~inputs:[ (b, bt) ] ~dims:[| 3; 5 |] ~split:b ~domains:64
  in
  Helpers.check_dense "clamped parallel equals sequential" (T.to_dense seq) (T.to_dense par)

let test_parallel_empty_split_tensor () =
  (* All partitions empty: falls back to a single sequential run. *)
  let b, kern = copy_kernel () in
  let bt = T.of_dense (D.create [| 4; 4 |]) F.csr in
  let par =
    Taco_exec.Parallel.run_dense kern ~inputs:[ (b, bt) ] ~dims:[| 4; 4 |] ~split:b ~domains:3
  in
  Helpers.check_dense "empty input gives zero result" (D.create [| 4; 4 |]) (T.to_dense par)

let () =
  Alcotest.run "opt"
    [
      ( "simplify",
        [
          Alcotest.test_case "constant folding and propagation" `Quick test_simplify_folds;
          Alcotest.test_case "propagation killed on reassignment" `Quick test_simplify_kills_propagation;
          Alcotest.test_case "float + 0.0 preserved" `Quick test_simplify_preserves_float_zero_add;
          Alcotest.test_case "static branch inlined" `Quick test_simplify_static_branch;
        ] );
      ( "memset_fusion",
        [
          Alcotest.test_case "alloc-covered memset dropped" `Quick test_memset_fused;
          Alcotest.test_case "kept after intervening store" `Quick test_memset_not_fused_after_write;
          Alcotest.test_case "kept when sizes differ" `Quick test_memset_not_fused_on_smaller_alloc;
        ] );
      ( "while_to_for",
        [
          Alcotest.test_case "counted while converts" `Quick test_while_to_for_converts;
          Alcotest.test_case "zero-trip final value" `Quick test_while_to_for_zero_trip;
          Alcotest.test_case "mutated bound refused" `Quick test_while_to_for_refuses_mutable_bound;
        ] );
      ( "branch_fusion",
        [
          Alcotest.test_case "lattice guards sink" `Quick test_branch_fusion_sinks_lattice_guards;
          Alcotest.test_case "operand write refused" `Quick test_branch_fusion_refuses_operand_write;
          Alcotest.test_case "undecided guard refused" `Quick test_branch_fusion_refuses_undecided_guard;
        ] );
      ( "cse",
        [
          Alcotest.test_case "repeated arithmetic shared" `Quick test_cse_shares_repeated_arith;
          Alcotest.test_case "killed by reassignment" `Quick test_cse_killed_by_reassignment;
          Alcotest.test_case "executor-fused shapes skipped" `Quick test_cse_skips_executor_fused_shapes;
        ] );
      ( "licm",
        [
          Alcotest.test_case "invariant load hoisted" `Quick test_licm_hoists_invariant_load;
          Alcotest.test_case "variant load kept" `Quick test_licm_keeps_variant_load;
          Alcotest.test_case "zero-trip guard under checked mode" `Quick test_licm_zero_trip_guard;
        ] );
      ( "dce",
        [
          Alcotest.test_case "dead loop temp removed" `Quick test_dce_removes_dead_loop_temp;
          Alcotest.test_case "kernel-level scalars kept" `Quick test_dce_keeps_kernel_level_scalars;
          Alcotest.test_case "emptied loop dropped" `Quick test_dce_drops_empty_loop;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "optimized spgemm validates" `Quick test_optimized_kernel_validates;
          Alcotest.test_case "Kernel.imp shows optimized IR" `Quick test_kernel_exposes_optimized_imp;
        ] );
      ( "cache",
        [
          Alcotest.test_case "second compile hits" `Quick test_cache_hits;
          Alcotest.test_case "keyed on checked flag and structure" `Quick test_cache_keyed_on_checked_and_kernel;
          Alcotest.test_case "cache:false bypasses" `Quick test_cache_bypass;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "domains clamped, padding skipped" `Quick test_parallel_overclamped_domains;
          Alcotest.test_case "empty split tensor" `Quick test_parallel_empty_split_tensor;
        ] );
    ]
