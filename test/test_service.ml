(* The concurrent evaluation service: correctness against a dense
   oracle, compile coalescing, backpressure, deadlines, shutdown
   draining and input validation. *)

open Helpers
module F = Taco_tensor.Format
module T = Taco_tensor.Tensor
module D = Taco_tensor.Dense
module Diag = Taco_support.Diag
module Compile = Taco_exec.Compile
module Service = Taco_service.Service

let spgemm_request ?(directives = true) b c =
  Service.request
    ~directives:
      (if directives then
         [
           Service.Reorder ("k", "j");
           Service.Precompute { expr = "B(i,k) * C(k,j)"; over = [ "j" ]; workspace = "w" };
         ]
       else [])
    ~result_format:F.csr
    ~expr:"A(i,j) = B(i,k) * C(k,j)"
    ~inputs:[ ("B", b); ("C", c) ]
    ()

let dense_matmul b c =
  let bd = T.to_dense b and cd = T.to_dense c in
  let m = (T.dims b).(0) and k = (T.dims b).(1) and n = (T.dims c).(1) in
  D.init [| m; n |] (fun idx ->
      let acc = ref 0. in
      for x = 0 to k - 1 do
        acc := !acc +. (D.get bd [| idx.(0); x |] *. D.get cd [| x; idx.(1) |])
      done;
      !acc)

let await_ok ticket =
  match Service.await ticket with
  | Ok r -> r
  | Error d -> Alcotest.fail (Diag.to_string d)

let with_service ?(domains = 2) ?(queue_depth = 64) f =
  let svc = Service.create ~domains ~queue_depth () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) (fun () -> f svc)

(* --- evaluation matches a dense oracle ----------------------------- *)

let test_eval_oracle () =
  let b = random_tensor 1 [| 40; 40 |] 0.1 F.csr in
  let c = random_tensor 2 [| 40; 40 |] 0.1 F.csr in
  with_service (fun svc ->
      match Service.eval svc (spgemm_request b c) with
      | Error d -> Alcotest.fail (Diag.to_string d)
      | Ok r ->
          check_dense "service SpGEMM matches dense matmul" (dense_matmul b c)
            (T.to_dense r.Service.tensor))

let test_eval_auto () =
  (* The autoscheduler must find the workspace schedule by itself. *)
  let b = random_tensor 3 [| 30; 30 |] 0.1 F.csr in
  let c = random_tensor 4 [| 30; 30 |] 0.1 F.csr in
  with_service (fun svc ->
      let req =
        Service.request ~directives:[ Service.Auto ] ~result_format:F.csr
          ~expr:"A(i,j) = B(i,k) * C(k,j)"
          ~inputs:[ ("B", b); ("C", c) ]
          ()
      in
      match Service.eval svc req with
      | Error d -> Alcotest.fail (Diag.to_string d)
      | Ok r ->
          check_dense "autoscheduled SpGEMM matches dense matmul" (dense_matmul b c)
            (T.to_dense r.Service.tensor))

(* --- concurrent identical requests compile exactly once ------------ *)

let test_coalescing () =
  let b = random_tensor 5 [| 60; 60 |] 0.05 F.csr in
  let c = random_tensor 6 [| 60; 60 |] 0.05 F.csr in
  Compile.cache_clear ();
  with_service ~domains:4 (fun svc ->
      let tickets =
        List.init 8 (fun _ ->
            match Service.submit svc (spgemm_request b c) with
            | Ok t -> t
            | Error d -> Alcotest.fail (Diag.to_string d))
      in
      let responses = List.map await_ok tickets in
      let first = List.hd responses in
      List.iter
        (fun r ->
          Alcotest.(check int) "all responses agree on nnz"
            (T.nnz first.Service.tensor) (T.nnz r.Service.tensor))
        responses);
  let cs = Compile.cache_stats () in
  Alcotest.(check int) "one closure build for 8 identical requests" 1 cs.Compile.misses;
  Alcotest.(check int) "the other 7 were cache hits" 7 cs.Compile.hits

(* --- backpressure --------------------------------------------------- *)

let test_backpressure () =
  let b = random_tensor 7 [| 80; 80 |] 0.05 F.csr in
  let c = random_tensor 8 [| 80; 80 |] 0.05 F.csr in
  with_service ~domains:1 ~queue_depth:1 (fun svc ->
      (* A burst of cheap-to-submit, expensive-to-run requests into a
         depth-1 queue behind one worker: admission control must trip. *)
      let accepted = ref [] and rejected = ref 0 in
      for _ = 1 to 16 do
        match Service.submit svc (spgemm_request b c) with
        | Ok t -> accepted := t :: !accepted
        | Error d ->
            Alcotest.(check string)
              "rejections carry E_SERVE_QUEUE_FULL" "E_SERVE_QUEUE_FULL" d.Diag.code;
            Alcotest.(check string) "rejections are stage serve" "serve"
              (Diag.stage_name d.Diag.stage);
            incr rejected
      done;
      List.iter (fun t -> ignore (await_ok t)) !accepted;
      Alcotest.(check bool) "at least one submission was rejected" true (!rejected > 0);
      let s = Service.stats svc in
      Alcotest.(check int) "rejected stat matches" !rejected s.Service.rejected;
      Alcotest.(check int) "accepted all completed" (List.length !accepted)
        s.Service.completed)

(* --- deadlines ------------------------------------------------------ *)

let test_deadline () =
  let b = random_tensor 9 [| 60; 60 |] 0.05 F.csr in
  let c = random_tensor 10 [| 60; 60 |] 0.05 F.csr in
  with_service ~domains:1 (fun svc ->
      (* Park a normal request so the probe sits in the queue past its
         already-expired deadline. *)
      let blocker = Service.submit svc (spgemm_request b c) in
      (match Service.eval svc ~deadline_ms:0 (spgemm_request b c) with
      | Ok _ -> Alcotest.fail "deadline 0 must not succeed"
      | Error d ->
          Alcotest.(check string) "deadline code" "E_SERVE_DEADLINE" d.Diag.code);
      (match blocker with
      | Ok t -> ignore (await_ok t)
      | Error d -> Alcotest.fail (Diag.to_string d));
      let s = Service.stats svc in
      Alcotest.(check int) "timed_out counted" 1 s.Service.timed_out)

(* --- shutdown drains ------------------------------------------------ *)

let test_shutdown_drains () =
  let b = random_tensor 11 [| 50; 50 |] 0.05 F.csr in
  let c = random_tensor 12 [| 50; 50 |] 0.05 F.csr in
  let svc = Service.create ~domains:2 ~queue_depth:64 () in
  let tickets =
    List.init 6 (fun _ ->
        match Service.submit svc (spgemm_request b c) with
        | Ok t -> t
        | Error d -> Alcotest.fail (Diag.to_string d))
  in
  Service.shutdown svc;
  (* Every ticket is resolved by the time shutdown returns... *)
  List.iter
    (fun t ->
      match Service.poll t with
      | Some (Ok _) -> ()
      | Some (Error d) -> Alcotest.fail (Diag.to_string d)
      | None -> Alcotest.fail "ticket unresolved after shutdown")
    tickets;
  let s = Service.stats svc in
  Alcotest.(check int) "all six completed" 6 s.Service.completed;
  (* ... and later submissions are refused. *)
  (match Service.submit svc (spgemm_request b c) with
  | Ok _ -> Alcotest.fail "submit after shutdown must be rejected"
  | Error d ->
      Alcotest.(check string) "shutdown code" "E_SERVE_SHUTDOWN" d.Diag.code);
  (* Idempotent. *)
  Service.shutdown svc

(* --- input validation ----------------------------------------------- *)

let test_malformed_expr () =
  with_service (fun svc ->
      let req =
        Service.request ~expr:"A(i,j) = B(i,k * C(k,j)" ~inputs:[] ()
      in
      match Service.eval svc req with
      | Ok _ -> Alcotest.fail "malformed expression must fail"
      | Error d ->
          Alcotest.(check string) "parse stage" "parse" (Diag.stage_name d.Diag.stage))

let test_missing_operand () =
  let b = random_tensor 13 [| 20; 20 |] 0.1 F.csr in
  with_service (fun svc ->
      let req =
        Service.request ~expr:"A(i,j) = B(i,j) + C(i,j)" ~inputs:[ ("B", b) ] ()
      in
      match Service.eval svc req with
      | Ok _ -> Alcotest.fail "missing operand must fail"
      | Error d ->
          Alcotest.(check string) "input code" "E_SERVE_INPUT" d.Diag.code;
          Alcotest.(check (option string))
            "names the missing tensor" (Some "C")
            (List.assoc_opt "tensor" d.Diag.context))

let test_order_mismatch () =
  let b = random_tensor 14 [| 20 |] 0.2 (F.dense 1) in
  with_service (fun svc ->
      let req =
        Service.request ~expr:"A(i,j) = B(i,j) * 2" ~inputs:[ ("B", b) ] ()
      in
      match Service.eval svc req with
      | Ok _ -> Alcotest.fail "order mismatch must fail"
      | Error d -> Alcotest.(check string) "input code" "E_SERVE_INPUT" d.Diag.code)

let () =
  Alcotest.run "service"
    [
      ( "eval",
        [
          Alcotest.test_case "spgemm matches dense oracle" `Quick test_eval_oracle;
          Alcotest.test_case "autoscheduled spgemm" `Quick test_eval_auto;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "identical requests compile once" `Quick test_coalescing;
          Alcotest.test_case "queue-full backpressure" `Quick test_backpressure;
          Alcotest.test_case "expired deadline" `Quick test_deadline;
          Alcotest.test_case "shutdown drains and refuses" `Quick test_shutdown_drains;
        ] );
      ( "validation",
        [
          Alcotest.test_case "malformed expression" `Quick test_malformed_expr;
          Alcotest.test_case "missing operand" `Quick test_missing_operand;
          Alcotest.test_case "order mismatch" `Quick test_order_mismatch;
        ] );
    ]
