open Taco_ir
open Taco_ir.Var
module F = Taco_tensor.Format
module T = Taco_tensor.Tensor
module D = Taco_tensor.Dense
module I = Index_notation
module Lower = Taco_lower.Lower
module Kernel = Taco_exec.Kernel
module Spgemm = Taco_kernels.Spgemm
module Spadd = Taco_kernels.Spadd
module Mttkrp = Taco_kernels.Mttkrp

let vi = Helpers.vi and vj = Helpers.vj and vk = Helpers.vk and vl = Helpers.vl

let a = Helpers.csr_tv "A"
let b = Helpers.csr_tv "B"
let c = Helpers.csr_tv "C"
let fused = Lower.Assemble { emit_values = true; sorted = true }

(* ------------------------------------------------------------------ *)
(* Generated kernels against the interpreter (compute & fused modes)   *)
(* ------------------------------------------------------------------ *)

let spgemm_sched () =
  let stmt = I.assign a [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ]))) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let sched = Helpers.get (Schedule.reorder vk vj sched) in
  let w = Helpers.ws_vec "w" in
  let e = Cin.Mul (Cin.Access (Cin.access b [ vi; vk ]), Cin.Access (Cin.access c [ vk; vj ])) in
  Helpers.get (Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched)

let test_spgemm_fused () =
  let sched = spgemm_sched () in
  let ins =
    [
      (b, Helpers.random_tensor 81 [| 9; 10 |] 0.25 F.csr);
      (c, Helpers.random_tensor 82 [| 10; 8 |] 0.25 F.csr);
    ]
  in
  Helpers.check_lowered ~mode:fused (Schedule.stmt sched) ins [| 9; 8 |]

let test_spgemm_unsorted () =
  let sched = spgemm_sched () in
  let ins =
    [
      (b, Helpers.random_tensor 83 [| 9; 10 |] 0.25 F.csr);
      (c, Helpers.random_tensor 84 [| 10; 8 |] 0.25 F.csr);
    ]
  in
  let info =
    Helpers.get
      (Lower.lower ~mode:(Lower.Assemble { emit_values = true; sorted = false })
         (Schedule.stmt sched))
  in
  let kern = Kernel.prepare info in
  let result = Kernel.run_assemble kern ~inputs:ins ~dims:[| 9; 8 |] in
  (* Unsorted assembly fails structural validation (crd not sorted), but
     values must be logically correct; compare via a dense reconstruction
     of the raw arrays. *)
  let oracle = Helpers.eval_cin (Schedule.stmt sched) ins in
  Helpers.check_dense "unsorted result correct" oracle (T.to_dense result)

let test_spgemm_symbolic_numeric_split () =
  let sched = spgemm_sched () in
  let ins =
    [
      (b, Helpers.random_tensor 85 [| 7; 7 |] 0.3 F.csr);
      (c, Helpers.random_tensor 86 [| 7; 7 |] 0.3 F.csr);
    ]
  in
  (* Assembly pass: structure only. *)
  let asm =
    Kernel.prepare
      (Helpers.get
         (Lower.lower ~mode:(Lower.Assemble { emit_values = false; sorted = true })
            (Schedule.stmt sched)))
  in
  let structure = Kernel.run_assemble asm ~inputs:ins ~dims:[| 7; 7 |] in
  Alcotest.(check int) "assembled structure has no values" 0 (T.nnz structure);
  (* Compute pass into the pre-assembled structure. *)
  let cmp = Kernel.prepare (Helpers.get (Lower.lower ~mode:Lower.Compute (Schedule.stmt sched))) in
  Kernel.run_compute cmp ~inputs:ins ~output:structure;
  let oracle = Helpers.eval_cin (Schedule.stmt sched) ins in
  Helpers.check_dense "symbolic+numeric equals oracle" oracle (T.to_dense structure)

let test_csc_matmul_via_reorder () =
  (* CSC output needs column-major loops: A^T in CSR terms. Use CSC
     operands with loop order j,i: A(i,j) = Bc(i,j) requires reorder. *)
  let bcsc = Tensor_var.make "B" ~order:2 ~format:F.csc in
  let acsc = Tensor_var.make "A" ~order:2 ~format:F.csc in
  let stmt = I.assign acsc [ vi; vj ] (I.access bcsc [ vi; vj ]) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let sched = Helpers.get (Schedule.reorder vi vj sched) in
  let bt = T.repack (Helpers.random_tensor 87 [| 6; 5 |] 0.3 F.csr) F.csc in
  Helpers.check_lowered ~mode:fused (Schedule.stmt sched) [ (bcsc, bt) ] [| 6; 5 |]

let test_spmv () =
  let x = Helpers.dense_vec_tv "x" in
  let y = Helpers.dense_vec_tv "y" in
  let stmt = I.assign y [ vi ] (I.sum vj (I.Mul (I.access b [ vi; vj ], I.access x [ vj ]))) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let ins =
    [
      (b, Helpers.random_tensor 88 [| 8; 6 |] 0.3 F.csr);
      (x, Helpers.random_tensor 89 [| 6 |] 1.0 F.dense_vector);
    ]
  in
  Helpers.check_lowered ~mode:Lower.Compute (Schedule.stmt sched) ins [| 8 |]

let test_sparse_vector_output () =
  (* y(i) = u(i) * s(i), sparse inputs, sparse output, fused assembly. *)
  let u = Tensor_var.make "u" ~order:1 ~format:F.sparse_vector in
  let s = Tensor_var.make "s" ~order:1 ~format:F.sparse_vector in
  let y = Tensor_var.make "y" ~order:1 ~format:F.sparse_vector in
  let stmt = I.assign y [ vi ] (I.Mul (I.access u [ vi ], I.access s [ vi ])) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let ins =
    [
      (u, Helpers.random_tensor 90 [| 20 |] 0.4 F.sparse_vector);
      (s, Helpers.random_tensor 91 [| 20 |] 0.4 F.sparse_vector);
    ]
  in
  Helpers.check_lowered ~mode:fused (Schedule.stmt sched) ins [| 20 |]

let test_three_way_union () =
  (* A = B + C + D exercises a 7-point merge lattice. *)
  let d = Helpers.csr_tv "D" in
  let stmt =
    I.assign a [ vi; vj ]
      (I.Add (I.Add (I.access b [ vi; vj ], I.access c [ vi; vj ]), I.access d [ vi; vj ]))
  in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let ins =
    [
      (b, Helpers.random_tensor 92 [| 7; 9 |] 0.15 F.csr);
      (c, Helpers.random_tensor 93 [| 7; 9 |] 0.15 F.csr);
      (d, Helpers.random_tensor 94 [| 7; 9 |] 0.15 F.csr);
    ]
  in
  Helpers.check_lowered ~mode:fused (Schedule.stmt sched) ins [| 7; 9 |]

let test_mixed_add_mul () =
  (* Ad = B*C + D: sum-of-products lattice. Dense result. *)
  let ad = Helpers.dense_mat_tv "Ad" in
  let d = Helpers.csr_tv "D" in
  let stmt =
    I.assign ad [ vi; vj ]
      (I.Add (I.Mul (I.access b [ vi; vj ], I.access c [ vi; vj ]), I.access d [ vi; vj ]))
  in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let ins =
    [
      (b, Helpers.random_tensor 95 [| 6; 6 |] 0.3 F.csr);
      (c, Helpers.random_tensor 96 [| 6; 6 |] 0.3 F.csr);
      (d, Helpers.random_tensor 97 [| 6; 6 |] 0.3 F.csr);
    ]
  in
  Helpers.check_lowered ~mode:Lower.Compute (Schedule.stmt sched) ins [| 6; 6 |]

let test_sparse_plus_dense () =
  (* Dense operand in a union: dense-driven loop with tracked operands. *)
  let ad = Helpers.dense_mat_tv "Ad" in
  let dd = Helpers.dense_mat_tv "Dd" in
  let stmt = I.assign ad [ vi; vj ] (I.Add (I.access b [ vi; vj ], I.access dd [ vi; vj ])) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let ins =
    [
      (b, Helpers.random_tensor 98 [| 6; 7 |] 0.3 F.csr);
      (dd, Helpers.random_tensor 99 [| 6; 7 |] 1.0 F.dense_matrix);
    ]
  in
  Helpers.check_lowered ~mode:Lower.Compute (Schedule.stmt sched) ins [| 6; 7 |]

let test_residual_scalar_alpha () =
  (* y(i) = 2.5 * B(i,j) * x(j) with literal scaling. *)
  let x = Helpers.dense_vec_tv "x" in
  let y = Helpers.dense_vec_tv "y" in
  let stmt =
    I.assign y [ vi ]
      (I.sum vj (I.Mul (I.Mul (I.Literal 2.5, I.access b [ vi; vj ]), I.access x [ vj ])))
  in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let ins =
    [
      (b, Helpers.random_tensor 100 [| 5; 5 |] 0.4 F.csr);
      (x, Helpers.random_tensor 101 [| 5 |] 1.0 F.dense_vector);
    ]
  in
  Helpers.check_lowered ~mode:Lower.Compute (Schedule.stmt sched) ins [| 5 |]

let test_scalar_temps_lowering () =
  (* The §VI literal rule: reduction into a scalar temporary, lowered. *)
  let ad = Helpers.dense_mat_tv "Ad" in
  let stmt = I.assign ad [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ]))) in
  let cin = Helpers.get (Concretize.run ~scalar_temps:true stmt) in
  (* This yields ∀ij (Ad = t) where (∀k t += B(i,k)*C(k,j)); the inner
     forall over k accesses C at level 0 (dense) and B at level 1
     (compressed) — requires k-loop iterating B's row: loop order i,j,k
     conflicts with C's storage (k before j needed)... use dense C. *)
  let cd = Helpers.dense_mat_tv "Cd" in
  let stmt2 = I.assign ad [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access cd [ vk; vj ]))) in
  let cin2 = Helpers.get (Concretize.run ~scalar_temps:true stmt2) in
  ignore cin;
  let ins =
    [
      (b, Helpers.random_tensor 102 [| 5; 6 |] 0.4 F.csr);
      (cd, Helpers.random_tensor 103 [| 6; 4 |] 1.0 F.dense_matrix);
    ]
  in
  Helpers.check_lowered ~mode:Lower.Compute cin2 ins [| 5; 4 |]

(* ------------------------------------------------------------------ *)
(* Hand-written baseline kernels vs oracles                            *)
(* ------------------------------------------------------------------ *)

let test_gustavson_oracle () =
  let bt = Helpers.random_tensor 111 [| 12; 10 |] 0.2 F.csr in
  let ct = Helpers.random_tensor 112 [| 10; 11 |] 0.2 F.csr in
  let result = Spgemm.gustavson bt ct in
  let sched = spgemm_sched () in
  let oracle = Helpers.eval_cin (Schedule.stmt sched) [ (b, bt); (c, ct) ] in
  Helpers.check_dense "pure-OCaml gustavson" oracle (T.to_dense result)

let test_eigen_like_spgemm () =
  let bt = Helpers.random_tensor 113 [| 12; 10 |] 0.2 F.csr in
  let ct = Helpers.random_tensor 114 [| 10; 11 |] 0.2 F.csr in
  let kern = Kernel.prepare Spgemm.eigen_like in
  let result =
    Kernel.run_assemble kern
      ~inputs:[ (Spgemm.b_var, bt); (Spgemm.c_var, ct) ]
      ~dims:[| 12; 11 |]
  in
  Helpers.get (T.validate result) |> ignore;
  Helpers.check_dense "eigen-like" (T.to_dense (Spgemm.gustavson bt ct)) (T.to_dense result)

let test_mkl_like_spgemm () =
  let bt = Helpers.random_tensor 115 [| 12; 10 |] 0.2 F.csr in
  let ct = Helpers.random_tensor 116 [| 10; 11 |] 0.2 F.csr in
  let kern = Kernel.prepare Spgemm.mkl_like in
  let result =
    Kernel.run_assemble kern
      ~inputs:[ (Spgemm.b_var, bt); (Spgemm.c_var, ct) ]
      ~dims:[| 12; 11 |]
  in
  Helpers.check_dense "mkl-like (unsorted)" (T.to_dense (Spgemm.gustavson bt ct))
    (T.to_dense result)

let test_spadd_baselines () =
  let bt = Helpers.random_tensor 117 [| 15; 12 |] 0.15 F.csr in
  let ct = Helpers.random_tensor 118 [| 15; 12 |] 0.15 F.csr in
  let oracle = T.to_dense (Spadd.merge_add bt ct) in
  let expected = D.map2 ( +. ) (T.to_dense bt) (T.to_dense ct) in
  Helpers.check_dense "merge_add oracle" expected oracle;
  List.iter
    (fun (name, info) ->
      let kern = Kernel.prepare info in
      let result =
        Kernel.run_assemble kern
          ~inputs:[ (Spadd.b_var, bt); (Spadd.c_var, ct) ]
          ~dims:[| 15; 12 |]
      in
      Helpers.check_dense name expected (T.to_dense result))
    [ ("eigen-like add", Spadd.eigen_like); ("mkl-like add", Spadd.mkl_like) ]

let test_splatt_like_mttkrp () =
  let bt = Helpers.random_tensor 119 [| 6; 7; 8 |] 0.1 (F.csf 3) in
  let cd = Helpers.random_tensor 120 [| 8; 4 |] 1.0 F.dense_matrix in
  let dd = Helpers.random_tensor 121 [| 7; 4 |] 1.0 F.dense_matrix in
  let oracle = Mttkrp.reference bt (T.to_dense cd) (T.to_dense dd) in
  let kern = Kernel.prepare Mttkrp.splatt_like in
  let result =
    Kernel.run_dense kern
      ~inputs:[ (Mttkrp.b_var, bt); (Mttkrp.c_var, cd); (Mttkrp.d_var, dd) ]
      ~dims:[| 6; 4 |]
  in
  Helpers.check_dense "splatt-like" oracle (T.to_dense result)

(* ------------------------------------------------------------------ *)
(* Taco user API                                                       *)
(* ------------------------------------------------------------------ *)

let test_taco_einsum () =
  let bt = Helpers.random_tensor 131 [| 6; 7 |] 0.3 F.csr in
  let ct = Helpers.random_tensor 132 [| 7; 5 |] 0.3 F.csr in
  let stmt = I.assign a [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ]))) in
  (* Direct einsum fails (scatter); with schedule it works. *)
  (match Taco.einsum stmt ~inputs:[ (b, bt); (c, ct) ] with
  | Error e -> Alcotest.(check bool) "suggests precompute" true
      (String.length (Taco.Diag.to_string e) > 0)
  | Ok _ -> Alcotest.fail "expected scatter error");
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let sched = Helpers.get (Schedule.reorder vk vj sched) in
  let w = Helpers.ws_vec "w" in
  let e = Cin.Mul (Cin.Access (Cin.access b [ vi; vk ]), Cin.Access (Cin.access c [ vk; vj ])) in
  let sched = Helpers.get (Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched) in
  let compiled = Helpers.getd (Taco.compile sched) in
  let result = Helpers.getd (Taco.run compiled ~inputs:[ (b, bt); (c, ct) ]) in
  Helpers.check_dense "taco api spgemm"
    (T.to_dense (Spgemm.gustavson bt ct)) (T.to_dense result);
  Alcotest.(check bool) "c source available" true
    (String.length (Taco.c_source compiled) > 100)

let test_taco_dense_einsum () =
  let ad = Helpers.dense_mat_tv "Ad" in
  let bt = Helpers.random_tensor 133 [| 6; 7 |] 0.3 F.csr in
  let ct = Helpers.random_tensor 134 [| 7; 5 |] 0.3 F.csr in
  let stmt = I.assign ad [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ]))) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let sched = Helpers.get (Schedule.reorder vk vj sched) in
  let compiled = Helpers.getd (Taco.compile sched) in
  let result = Helpers.getd (Taco.run compiled ~inputs:[ (b, bt); (c, ct) ]) in
  Helpers.check_dense "dense out" (T.to_dense (Spgemm.gustavson bt ct)) (T.to_dense result)

let test_run_with_renamed_vars () =
  (* Regression: after precompute with renaming triplets (Fig. 2's
     jc/jp), the consumer variable indexes only the result and the
     workspace; dimension inference must propagate through the workspace
     mode. *)
  let stmt = I.assign a [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ]))) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let sched = Helpers.get (Schedule.reorder vk vj sched) in
  let w = Helpers.ws_vec "w" in
  let e = Cin.Mul (Cin.Access (Cin.access b [ vi; vk ]), Cin.Access (Cin.access c [ vk; vj ])) in
  let jc = Index_var.make "jc" and jp = Index_var.make "jp" in
  let sched = Helpers.get (Schedule.precompute ~expr:e ~vars:[ (vj, jc, jp) ] ~workspace:w sched) in
  let compiled = Helpers.getd (Taco.compile sched) in
  let bt = Helpers.random_tensor 175 [| 6; 7 |] 0.3 F.csr in
  let ct = Helpers.random_tensor 176 [| 7; 5 |] 0.3 F.csr in
  let result = Helpers.getd (Taco.run compiled ~inputs:[ (b, bt); (c, ct) ]) in
  Helpers.check_dense "renamed pipeline"
    (T.to_dense (Spgemm.gustavson bt ct)) (T.to_dense result)

let test_infer_result_dims () =
  let stmt = I.assign a [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ]))) in
  let cin = Helpers.get (Concretize.run stmt) in
  let bt = T.zero [| 4; 5 |] F.csr and ct = T.zero [| 5; 9 |] F.csr in
  let dims = Helpers.getd (Taco.infer_result_dims cin ~inputs:[ (b, bt); (c, ct) ]) in
  Alcotest.(check (array int)) "inferred" [| 4; 9 |] dims

(* ------------------------------------------------------------------ *)
(* Autoscheduling (the paper's future-work policy system)              *)
(* ------------------------------------------------------------------ *)

let test_autoschedule_spgemm () =
  (* From the raw statement, the policy must find reorder(k,j) +
     precompute — the paper's Fig. 2 schedule. *)
  let stmt = I.assign a [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ]))) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let compiled, steps = Helpers.getd (Taco.auto_compile sched) in
  Alcotest.(check bool) "took at least two steps" true (List.length steps >= 2);
  let bt = Helpers.random_tensor 141 [| 7; 8 |] 0.3 F.csr in
  let ct = Helpers.random_tensor 142 [| 8; 6 |] 0.3 F.csr in
  let result = Helpers.getd (Taco.run compiled ~inputs:[ (b, bt); (c, ct) ]) in
  Helpers.check_dense "auto spgemm" (T.to_dense (Spgemm.gustavson bt ct)) (T.to_dense result)

let test_autoschedule_noop_when_lowerable () =
  let ad = Helpers.dense_mat_tv "Ad" in
  let stmt = I.assign ad [ vi; vj ] (I.access b [ vi; vj ]) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let _, steps = Helpers.getd (Taco.auto_compile sched) in
  Alcotest.(check int) "already lowerable, no steps" 0 (List.length steps)

let test_autoschedule_csc_copy () =
  (* CSC result needs a reorder; the policy must find it. *)
  let bcsc = Tensor_var.make "B" ~order:2 ~format:F.csc in
  let acsc = Tensor_var.make "A" ~order:2 ~format:F.csc in
  let stmt = I.assign acsc [ vi; vj ] (I.access bcsc [ vi; vj ]) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let compiled, steps = Helpers.getd (Taco.auto_compile sched) in
  Alcotest.(check bool) "reordered" true
    (List.exists (function Taco.Autoschedule.Reordered _ -> true | _ -> false) steps);
  let bt = T.repack (Helpers.random_tensor 143 [| 6; 5 |] 0.3 F.csr) F.csc in
  let result = Helpers.getd (Taco.run compiled ~inputs:[ (bcsc, bt) ]) in
  Helpers.check_dense "csc copy" (T.to_dense bt) (T.to_dense result)

let test_autoschedule_reports_failure () =
  (* An unlowerable statement (sequence feeding a CSF-assembled result)
     must fail with the first lowering error attached, not loop. *)
  let a3 = Tensor_var.make "A3" ~order:3 ~format:(F.csf 3) in
  let b3 = Tensor_var.make "B" ~order:3 ~format:(F.csf 3) in
  let acc = Cin.access in
  let stmt =
    Cin.foralls [ vi; vj; vk ]
      (Cin.accumulate (acc a3 [ vi; vj; vk ]) (Cin.Access (acc b3 [ vk; vj; vi ])))
  in
  let lowerable s =
    Result.map (fun (_ : Lower.kernel_info) -> ())
      (Lower.lower ~mode:(Lower.Assemble { emit_values = true; sorted = true }) s)
  in
  match Taco.Autoschedule.run ~lowerable stmt with
  | Error e ->
      Alcotest.(check bool) "mentions lowering error" true (String.length e > 20)
  | Ok _ -> Alcotest.fail "expected autoschedule failure"

let test_auto_einsum_mttkrp_sparse () =
  (* Sparse-output MTTKRP needs two precomputes; auto_einsum must find a
     working schedule end to end. *)
  let am = Helpers.csr_tv "A" in
  let b3 = Tensor_var.make "B" ~order:3 ~format:(F.csf 3) in
  let cs = Helpers.csr_tv "C" in
  let ds = Helpers.csr_tv "D" in
  let stmt =
    I.assign am [ vi; vj ]
      (I.sum vk (I.sum vl (I.Mul (I.Mul (I.access b3 [ vi; vk; vl ], I.access cs [ vl; vj ]), I.access ds [ vk; vj ]))))
  in
  let bt = Helpers.random_tensor 144 [| 4; 5; 6 |] 0.15 (F.csf 3) in
  let ct = Helpers.random_tensor 145 [| 6; 3 |] 0.4 F.csr in
  let dt = Helpers.random_tensor 146 [| 5; 3 |] 0.4 F.csr in
  let inputs = [ (b3, bt); (cs, ct); (ds, dt) ] in
  let result = Helpers.getd (Taco.auto_einsum stmt ~inputs) in
  let plain = Helpers.get (Concretize.run stmt) in
  Helpers.check_dense "auto mttkrp sparse" (Helpers.eval_cin plain inputs) (T.to_dense result)

(* ------------------------------------------------------------------ *)
(* Less common shapes                                                  *)
(* ------------------------------------------------------------------ *)

let test_dot_product_scalar_output () =
  (* alpha = sum(i, b(i) * c(i)) with an order-0 result. *)
  let alpha = Tensor_var.make "alpha" ~order:0 ~format:(F.of_levels []) in
  let bv = Tensor_var.make "bv" ~order:1 ~format:F.sparse_vector in
  let cv = Tensor_var.make "cv" ~order:1 ~format:F.sparse_vector in
  let stmt = I.assign alpha [] (I.sum vi (I.Mul (I.access bv [ vi ], I.access cv [ vi ]))) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let bt = Helpers.random_tensor 147 [| 30 |] 0.4 F.sparse_vector in
  let ct = Helpers.random_tensor 148 [| 30 |] 0.4 F.sparse_vector in
  let inputs = [ (bv, bt); (cv, ct) ] in
  let info = Helpers.get (Lower.lower ~mode:Lower.Compute (Schedule.stmt sched)) in
  let kern = Kernel.prepare info in
  let out = Kernel.run_dense kern ~inputs ~dims:[||] in
  let expected = Helpers.eval_cin (Schedule.stmt sched) inputs in
  Helpers.check_dense "dot product" expected (T.to_dense out)

let test_order2_workspace () =
  (* Precompute C wholesale into an order-2 workspace: the where hoists
     out of the i loop entirely (loop-invariant caching). *)
  let ad = Helpers.dense_mat_tv "Ad" in
  let cd = Helpers.dense_mat_tv "Cd" in
  let stmt = I.assign ad [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access cd [ vk; vj ]))) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let sched = Helpers.get (Schedule.reorder vk vj sched) in
  let w2 = Tensor_var.workspace "w2" ~order:2 ~format:F.dense_matrix in
  let e = Cin.Access (Cin.access cd [ vk; vj ]) in
  let sched = Helpers.get (Schedule.precompute_simple ~expr:e ~over:[ vk; vj ] ~workspace:w2 sched) in
  (* The producer must sit outside the i loop. *)
  (match Schedule.stmt sched with
  | Cin.Where (_, _) -> ()
  | s -> Alcotest.failf "expected a top-level where, got %s" (Cin.to_string s));
  let bt = Helpers.random_tensor 149 [| 5; 6 |] 0.4 F.csr in
  let ct = Helpers.random_tensor 150 [| 6; 4 |] 1.0 F.dense_matrix in
  let inputs = [ (b, bt); (cd, ct) ] in
  Helpers.check_lowered ~mode:Lower.Compute (Schedule.stmt sched) inputs [| 5; 4 |]

let test_nested_sum_in_expression () =
  (* a(i) = b(i) + sum(k, Cd(i,k)): the reduction is nested inside a
     larger expression, so concretization introduces a scalar-temporary
     where statement (§VI), which then lowers and runs. *)
  let av = Helpers.dense_vec_tv "a" in
  let bv = Helpers.dense_vec_tv "bvec" in
  let cd = Helpers.dense_mat_tv "Cd" in
  let stmt =
    I.assign av [ vi ] (I.Add (I.access bv [ vi ], I.sum vk (I.access cd [ vi; vk ])))
  in
  let cin = Helpers.get (Concretize.run stmt) in
  (* The statement must contain a where with a scalar workspace. *)
  let rec has_scalar_where = function
    | Cin.Where (_, p) ->
        List.exists
          (fun tv -> Tensor_var.is_workspace tv && Tensor_var.order tv = 0)
          (Cin.tensors_written p)
    | Cin.Forall (_, s) -> has_scalar_where s
    | Cin.Assignment _ -> false
    | Cin.Sequence (x, y) -> has_scalar_where x || has_scalar_where y
  in
  Alcotest.(check bool) "scalar temporary introduced" true (has_scalar_where cin);
  let ins =
    [
      (bv, Helpers.random_tensor 173 [| 8 |] 1.0 F.dense_vector);
      (cd, Helpers.random_tensor 174 [| 8; 5 |] 1.0 F.dense_matrix);
    ]
  in
  Helpers.check_lowered ~mode:Lower.Compute cin ins [| 8 |]

let test_subtraction_union () =
  (* Subtraction unions like addition (lattice over Sub). *)
  let ad = Helpers.dense_mat_tv "Ad" in
  let stmt = I.assign ad [ vi; vj ] (I.Sub (I.access b [ vi; vj ], I.access c [ vi; vj ])) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let ins =
    [
      (b, Helpers.random_tensor 164 [| 7; 8 |] 0.25 F.csr);
      (c, Helpers.random_tensor 165 [| 7; 8 |] 0.25 F.csr);
    ]
  in
  Helpers.check_lowered ~mode:Lower.Compute (Schedule.stmt sched) ins [| 7; 8 |]

let test_negation_and_division () =
  (* Ad = -B / Cd with a dense divisor: intersection driven by B. *)
  let ad = Helpers.dense_mat_tv "Ad" in
  let cd = Helpers.dense_mat_tv "Cd" in
  let stmt =
    I.assign ad [ vi; vj ] (I.Div (I.Neg (I.access b [ vi; vj ]), I.access cd [ vi; vj ]))
  in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let prng = Taco_support.Prng.create 166 in
  (* Divisor bounded away from zero. *)
  let cdt =
    T.of_dense
      (D.init [| 6; 6 |] (fun _ -> 0.5 +. Taco_support.Prng.float prng))
      F.dense_matrix
  in
  let ins = [ (b, Helpers.random_tensor 167 [| 6; 6 |] 0.3 F.csr); (cd, cdt) ] in
  Helpers.check_lowered ~mode:Lower.Compute (Schedule.stmt sched) ins [| 6; 6 |]

let test_csc_output_spgemm () =
  (* §II: CSC is CSR's column-major sibling. A_csc = B_csc · C_csc via
     the linear-combination-of-COLUMNS schedule: loop order j,k,i with a
     column workspace. *)
  let acsc = Tensor_var.make "A" ~order:2 ~format:F.csc in
  let bcsc = Tensor_var.make "B" ~order:2 ~format:F.csc in
  let ccsc = Tensor_var.make "C" ~order:2 ~format:F.csc in
  let stmt =
    I.assign acsc [ vi; vj ] (I.sum vk (I.Mul (I.access bcsc [ vi; vk ], I.access ccsc [ vk; vj ])))
  in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  (* ijk -> jki *)
  let sched = Helpers.get (Schedule.reorder vi vj sched) in
  let sched = Helpers.get (Schedule.reorder vi vk sched) in
  let w = Helpers.ws_vec "w" in
  let e = Cin.Mul (Cin.Access (Cin.access bcsc [ vi; vk ]), Cin.Access (Cin.access ccsc [ vk; vj ])) in
  let sched = Helpers.get (Schedule.precompute_simple ~expr:e ~over:[ vi ] ~workspace:w sched) in
  let bt = T.repack (Helpers.random_tensor 168 [| 7; 8 |] 0.25 F.csr) F.csc in
  let ct = T.repack (Helpers.random_tensor 169 [| 8; 6 |] 0.25 F.csr) F.csc in
  Helpers.check_lowered ~mode:fused (Schedule.stmt sched) [ (bcsc, bt); (ccsc, ct) ] [| 7; 6 |]

let test_inner_product_matmul_csr_csc () =
  (* §II: inner-products matmul needs the second operand column-major.
     With C in CSC the natural ijk order lowers to a two-way merge of
     B's row against C's column (the Fig. 4a pattern). *)
  let ad = Helpers.dense_mat_tv "Ad" in
  let ccsc = Tensor_var.make "C" ~order:2 ~format:F.csc in
  let stmt =
    I.assign ad [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access ccsc [ vk; vj ])))
  in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let bt = Helpers.random_tensor 170 [| 6; 9 |] 0.3 F.csr in
  let ct = T.repack (Helpers.random_tensor 171 [| 9; 5 |] 0.3 F.csr) F.csc in
  (* Structural check: the generated code coiterates (while + min). *)
  let info = Helpers.get (Lower.lower ~mode:Lower.Compute (Schedule.stmt sched)) in
  let src = Taco_lower.Codegen_c.emit info.Lower.kernel in
  let has pat =
    let lh = String.length src and ln = String.length pat in
    let rec go i = i + ln <= lh && (String.sub src i ln = pat || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "merge loop present" true (has "TACO_MIN(kB, kC)");
  Helpers.check_lowered ~mode:Lower.Compute (Schedule.stmt sched)
    [ (b, bt); (ccsc, ct) ] [| 6; 5 |]

let test_order3_addition () =
  (* Union merges at two compressed levels simultaneously. *)
  let b3 = Tensor_var.make "B" ~order:3 ~format:(F.csf 3) in
  let c3 = Tensor_var.make "C" ~order:3 ~format:(F.csf 3) in
  let a3 = Tensor_var.make "Ad" ~order:3 ~format:(F.dense 3) in
  let stmt = I.assign a3 [ vi; vj; vk ] (I.Add (I.access b3 [ vi; vj; vk ], I.access c3 [ vi; vj; vk ])) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let bt = Helpers.random_tensor 156 [| 5; 6; 7 |] 0.08 (F.csf 3) in
  let ct = Helpers.random_tensor 157 [| 5; 6; 7 |] 0.08 (F.csf 3) in
  Helpers.check_lowered ~mode:Lower.Compute (Schedule.stmt sched) [ (b3, bt); (c3, ct) ] [| 5; 6; 7 |]

let test_sparse_outer_product () =
  (* A(i,j) = u(i) * s(j) with sparse vectors, fused sparse assembly. *)
  let u = Tensor_var.make "u" ~order:1 ~format:F.sparse_vector in
  let s = Tensor_var.make "s" ~order:1 ~format:F.sparse_vector in
  let stmt = I.assign a [ vi; vj ] (I.Mul (I.access u [ vi ], I.access s [ vj ])) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let ut = Helpers.random_tensor 158 [| 12 |] 0.4 F.sparse_vector in
  let st = Helpers.random_tensor 159 [| 9 |] 0.4 F.sparse_vector in
  Helpers.check_lowered ~mode:fused (Schedule.stmt sched) [ (u, ut); (s, st) ] [| 12; 9 |]

let test_order4_mttkrp () =
  (* §VII: the 4-order MTTKRP A(i,j) = Σ_{k,l,m} B(i,k,l,m) C(m,j) D(l,j) E(k,j),
     with the workspace transformation hoisting B·C out of the l and k loops. *)
  let vm = Index_var.make "m" in
  let b4 = Tensor_var.make "B" ~order:4 ~format:(F.csf 4) in
  let cm = Helpers.dense_mat_tv "C" in
  let dm = Helpers.dense_mat_tv "D" in
  let em = Helpers.dense_mat_tv "E" in
  let am = Helpers.dense_mat_tv "A" in
  let stmt =
    I.assign am [ vi; vj ]
      (I.sum vk
         (I.sum vl
            (I.sum vm
               (I.Mul
                  ( I.Mul
                      (I.Mul (I.access b4 [ vi; vk; vl; vm ], I.access cm [ vm; vj ]),
                       I.access dm [ vl; vj ]),
                    I.access em [ vk; vj ] )))))
  in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  (* Loop order i,k,l,m,j. *)
  let sched = Helpers.get (Schedule.reorder vj vk sched) in
  let sched = Helpers.get (Schedule.reorder vj vl sched) in
  let sched = Helpers.get (Schedule.reorder vj vm sched) in
  let w = Helpers.ws_vec "w" in
  let bc = Cin.Mul (Cin.Access (Cin.access b4 [ vi; vk; vl; vm ]), Cin.Access (Cin.access cm [ vm; vj ])) in
  let sched_w = Helpers.get (Schedule.precompute_simple ~expr:bc ~over:[ vj ] ~workspace:w sched) in
  (* The m loop must move into the producer (hoisting D and E out). *)
  Alcotest.(check string) "4-order hoist"
    "∀i,k,l ((∀j A(i,j) += w(j) * D(l,j) * E(k,j)) where (∀m,j w(j) += B(i,k,l,m) * C(m,j)))"
    (Cin.to_string (Schedule.stmt sched_w));
  let bt = Helpers.random_tensor 160 [| 4; 5; 4; 6 |] 0.05 (F.csf 4) in
  let ct = Helpers.random_tensor 161 [| 6; 3 |] 1.0 F.dense_matrix in
  let dt = Helpers.random_tensor 162 [| 4; 3 |] 1.0 F.dense_matrix in
  let et = Helpers.random_tensor 163 [| 5; 3 |] 1.0 F.dense_matrix in
  let inputs = [ (b4, bt); (cm, ct); (dm, dt); (em, et) ] in
  let oracle = Helpers.eval_cin (Schedule.stmt sched) inputs in
  Helpers.check_dense "4-order mttkrp with workspace" oracle
    (Helpers.eval_cin (Schedule.stmt sched_w) inputs);
  Helpers.check_lowered ~mode:Lower.Compute (Schedule.stmt sched_w) inputs [| 4; 3 |]

let test_split_rows () =
  let bt = Helpers.random_tensor 152 [| 20; 15 |] 0.25 F.csr in
  let parts = T.split_rows bt ~parts:4 in
  Alcotest.(check int) "four parts" 4 (List.length parts);
  List.iter (fun p -> Helpers.get (T.validate p) |> ignore) parts;
  let total = List.fold_left (fun acc p -> acc + T.nnz p) 0 parts in
  Alcotest.(check int) "nonzeros partitioned" (T.nnz bt) total;
  (* Parts sum back to the original. *)
  let sum =
    List.fold_left
      (fun acc p -> D.map2 ( +. ) acc (T.to_dense p))
      (D.create [| 20; 15 |]) parts
  in
  Helpers.check_dense "parts sum to whole" (T.to_dense bt) sum

let test_parallel_mttkrp () =
  (* Row-partitioned parallel MTTKRP equals the sequential run. *)
  let b3 = Tensor_var.make "B" ~order:3 ~format:(F.csf 3) in
  let cm = Helpers.dense_mat_tv "C" in
  let dm = Helpers.dense_mat_tv "D" in
  let am = Helpers.dense_mat_tv "A" in
  let stmt =
    I.assign am [ vi; vj ]
      (I.sum vk (I.sum vl (I.Mul (I.Mul (I.access b3 [ vi; vk; vl ], I.access cm [ vl; vj ]), I.access dm [ vk; vj ]))))
  in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let sched = Helpers.get (Schedule.reorder vj vk sched) in
  let sched = Helpers.get (Schedule.reorder vj vl sched) in
  let kern = Kernel.prepare (Helpers.get (Lower.lower ~mode:Lower.Compute (Schedule.stmt sched))) in
  let bt = Helpers.random_tensor 153 [| 12; 8; 9 |] 0.1 (F.csf 3) in
  let ct = Helpers.random_tensor 154 [| 9; 4 |] 1.0 F.dense_matrix in
  let dt = Helpers.random_tensor 155 [| 8; 4 |] 1.0 F.dense_matrix in
  let inputs = [ (b3, bt); (cm, ct); (dm, dt) ] in
  let seq = Kernel.run_dense kern ~inputs ~dims:[| 12; 4 |] in
  let par =
    Taco_exec.Parallel.run_dense kern ~inputs ~dims:[| 12; 4 |] ~split:b3 ~domains:3
  in
  Helpers.check_dense "parallel equals sequential" (T.to_dense seq) (T.to_dense par)

let test_dcsr_input () =
  let bd = Tensor_var.make "B" ~order:2 ~format:F.dcsr in
  let ad = Helpers.dense_mat_tv "Ad" in
  let stmt = I.assign ad [ vi; vj ] (I.access bd [ vi; vj ]) in
  let sched = Helpers.get (Schedule.of_index_notation stmt) in
  let bt = Helpers.random_tensor 151 [| 7; 8 |] 0.2 F.dcsr in
  Helpers.check_lowered ~mode:Lower.Compute (Schedule.stmt sched) [ (bd, bt) ] [| 7; 8 |]

(* ------------------------------------------------------------------ *)
(* Property: full pipeline on random matmuls and additions             *)
(* ------------------------------------------------------------------ *)

let prop_pipeline_spgemm =
  Helpers.qcheck_case ~count:20 "fused spgemm pipeline equals interpreter"
    QCheck.(0 -- 10000)
    (fun seed ->
      let sched = spgemm_sched () in
      let ins =
        [
          (b, Helpers.random_tensor seed [| 8; 9 |] 0.2 F.csr);
          (c, Helpers.random_tensor (seed + 1) [| 9; 7 |] 0.2 F.csr);
        ]
      in
      let oracle = Helpers.eval_cin (Schedule.stmt sched) ins in
      let result = Helpers.run_lowered ~mode:fused (Schedule.stmt sched) ins [| 8; 7 |] in
      D.equal ~eps:1e-9 oracle (T.to_dense result))

let prop_pipeline_add =
  Helpers.qcheck_case ~count:20 "fused addition pipeline equals interpreter"
    QCheck.(0 -- 10000)
    (fun seed ->
      let stmt = I.assign a [ vi; vj ] (I.Add (I.access b [ vi; vj ], I.access c [ vi; vj ])) in
      let sched = Helpers.get (Schedule.of_index_notation stmt) in
      let ins =
        [
          (b, Helpers.random_tensor seed [| 8; 9 |] 0.2 F.csr);
          (c, Helpers.random_tensor (seed + 1) [| 8; 9 |] 0.2 F.csr);
        ]
      in
      let oracle = Helpers.eval_cin (Schedule.stmt sched) ins in
      let result = Helpers.run_lowered ~mode:fused (Schedule.stmt sched) ins [| 8; 9 |] in
      D.equal ~eps:1e-9 oracle (T.to_dense result))

(* Differential fuzzing: random expression shapes and operand formats
   through concretize → (auto)schedule → lower → execute, checked against
   the reference interpreter. Lowering may reject a configuration (with
   an error), but it must never produce a wrong answer or crash. *)
let fuzz_formats = [| F.csr; F.dcsr; F.dense_matrix |]

let prop_differential_fuzz =
  Helpers.qcheck_case ~count:60 "random expression/format pipeline fuzz"
    QCheck.(pair (0 -- 100000) (pair (0 -- 3) (pair (0 -- 2) (pair (0 -- 2) (0 -- 1)))))
    (fun (seed, (shape, (fmt_b, (fmt_c, fmt_a)))) ->
      let fb = fuzz_formats.(fmt_b) and fc = fuzz_formats.(fmt_c) in
      let fa = if fmt_a = 0 then F.dense_matrix else F.csr in
      let aT = Tensor_var.make "A" ~order:2 ~format:fa in
      let bT = Tensor_var.make "B" ~order:2 ~format:fb in
      let cT = Tensor_var.make "C" ~order:2 ~format:fc in
      let dT = Tensor_var.make "D" ~order:2 ~format:F.csr in
      let open I in
      let rhs, extra =
        match shape with
        | 0 -> (Add (access bT [ vi; vj ], access cT [ vi; vj ]), [])
        | 1 -> (Mul (access bT [ vi; vj ], access cT [ vi; vj ]), [])
        | 2 ->
            ( Add
                (Mul (access bT [ vi; vj ], access cT [ vi; vj ]), access dT [ vi; vj ]),
              [ `D ] )
        | _ -> (sum vk (Mul (access bT [ vi; vk ], access cT [ vk; vj ])), [])
      in
      let stmt = assign aT [ vi; vj ] rhs in
      let dims_b = if shape = 3 then [| 6; 7 |] else [| 6; 8 |] in
      let dims_c = if shape = 3 then [| 7; 8 |] else [| 6; 8 |] in
      let inputs =
        [
          (bT, Helpers.random_tensor seed dims_b 0.3 fb);
          (cT, Helpers.random_tensor (seed + 1) dims_c 0.3 fc);
        ]
        @
        match extra with
        | [ `D ] -> [ (dT, Helpers.random_tensor (seed + 2) [| 6; 8 |] 0.3 F.csr) ]
        | _ -> []
      in
      match Schedule.of_index_notation stmt with
      | Error _ -> false
      | Ok sched -> (
          match Taco.auto_compile sched with
          | Error _ -> true (* graceful rejection is allowed *)
          | Ok (compiled, _) -> (
              match Taco.run compiled ~inputs with
              | Error _ -> true
              | Ok result ->
                  let oracle =
                    Helpers.eval_cin (Helpers.get (Concretize.run stmt)) inputs
                  in
                  D.equal ~eps:1e-9 oracle (T.to_dense result))))

let () =
  ignore vl;
  Alcotest.run "pipeline"
    [
      ( "generated kernels",
        [
          Alcotest.test_case "spgemm fused sorted" `Quick test_spgemm_fused;
          Alcotest.test_case "spgemm fused unsorted" `Quick test_spgemm_unsorted;
          Alcotest.test_case "symbolic/numeric split" `Quick test_spgemm_symbolic_numeric_split;
          Alcotest.test_case "csc via reorder" `Quick test_csc_matmul_via_reorder;
          Alcotest.test_case "spmv" `Quick test_spmv;
          Alcotest.test_case "sparse vector output" `Quick test_sparse_vector_output;
          Alcotest.test_case "three-way union" `Quick test_three_way_union;
          Alcotest.test_case "sum of products" `Quick test_mixed_add_mul;
          Alcotest.test_case "sparse plus dense" `Quick test_sparse_plus_dense;
          Alcotest.test_case "literal scaling" `Quick test_residual_scalar_alpha;
          Alcotest.test_case "scalar temporaries" `Quick test_scalar_temps_lowering;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "gustavson oracle" `Quick test_gustavson_oracle;
          Alcotest.test_case "eigen-like spgemm" `Quick test_eigen_like_spgemm;
          Alcotest.test_case "mkl-like spgemm" `Quick test_mkl_like_spgemm;
          Alcotest.test_case "spadd baselines" `Quick test_spadd_baselines;
          Alcotest.test_case "splatt-like mttkrp" `Quick test_splatt_like_mttkrp;
        ] );
      ( "autoschedule",
        [
          Alcotest.test_case "finds the fig 2 schedule" `Quick test_autoschedule_spgemm;
          Alcotest.test_case "no-op when lowerable" `Quick test_autoschedule_noop_when_lowerable;
          Alcotest.test_case "csc copy reorder" `Quick test_autoschedule_csc_copy;
          Alcotest.test_case "auto_einsum sparse mttkrp" `Quick test_auto_einsum_mttkrp_sparse;
          Alcotest.test_case "reports unlowerable statements" `Quick test_autoschedule_reports_failure;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "scalar dot product" `Quick test_dot_product_scalar_output;
          Alcotest.test_case "order-2 workspace hoist" `Quick test_order2_workspace;
          Alcotest.test_case "dcsr input" `Quick test_dcsr_input;
          Alcotest.test_case "nested sum scalar temporary" `Quick test_nested_sum_in_expression;
          Alcotest.test_case "subtraction union" `Quick test_subtraction_union;
          Alcotest.test_case "negation and division" `Quick test_negation_and_division;
          Alcotest.test_case "csc-output spgemm (column workspace)" `Quick test_csc_output_spgemm;
          Alcotest.test_case "inner-product matmul CSR x CSC" `Quick test_inner_product_matmul_csr_csc;
          Alcotest.test_case "order-3 addition" `Quick test_order3_addition;
          Alcotest.test_case "sparse outer product" `Quick test_sparse_outer_product;
          Alcotest.test_case "4-order mttkrp" `Quick test_order4_mttkrp;
          Alcotest.test_case "split_rows partitioning" `Quick test_split_rows;
          Alcotest.test_case "parallel mttkrp over domains" `Quick test_parallel_mttkrp;
        ] );
      ( "taco api",
        [
          Alcotest.test_case "sparse pipeline with schedule" `Quick test_taco_einsum;
          Alcotest.test_case "dense pipeline" `Quick test_taco_dense_einsum;
          Alcotest.test_case "result dim inference" `Quick test_infer_result_dims;
          Alcotest.test_case "renamed variables (jc/jp) run" `Quick test_run_with_renamed_vars;
        ] );
      ("properties", [ prop_pipeline_spgemm; prop_pipeline_add; prop_differential_fuzz ]);
    ]
