(* Tests for the observability layer: the Trace span/counter buffer
   (including the disabled-is-free discipline), Exec.Compile cache
   accounting (hits/misses/entries/evictions across optimizer configs,
   capacity-bounded eviction, cache_clear), and the profiled execution
   mode's work counters. *)

module Imp = Taco_lower.Imp
module Opt = Taco_lower.Opt
module Compile = Taco_exec.Compile
module Trace = Taco_support.Trace

let v n = Imp.Var n

let i n = Imp.Int_lit n

let kernel ?(params = []) ?(name = "t") body =
  { Imp.k_name = name; k_params = params; k_body = body }

(* A kernel the optimizer changes, so [~opt:Opt.none] and [~opt:Opt.all]
   compile to structurally different kernels and occupy distinct cache
   entries. *)
let foldable name =
  kernel ~name
    [
      Imp.Decl (Imp.Int, "x", Imp.Binop (Imp.Add, i 1, i 2));
      Imp.Decl (Imp.Int, "y", Imp.Binop (Imp.Mul, v "x", i 3));
    ]

(* ------------------------------------------------------------------ *)
(* Cache accounting                                                    *)
(* ------------------------------------------------------------------ *)

let test_cache_accounting_across_configs () =
  Compile.cache_clear ();
  let k = foldable "trace_cache_cfg" in
  let _ = Compile.compile ~opt:Opt.none k in
  let _ = Compile.compile ~opt:Opt.all k in
  let s = Compile.cache_stats () in
  Alcotest.(check int) "distinct opt configs miss separately" 2 s.Compile.misses;
  Alcotest.(check int) "two entries" 2 s.Compile.entries;
  Alcotest.(check int) "no hits yet" 0 s.Compile.hits;
  let _ = Compile.compile ~opt:Opt.none k in
  let _ = Compile.compile ~opt:Opt.all k in
  let s = Compile.cache_stats () in
  Alcotest.(check int) "both configs hit on recompile" 2 s.Compile.hits;
  Alcotest.(check int) "still two entries" 2 s.Compile.entries;
  Alcotest.(check int) "no evictions at default capacity" 0 s.Compile.evictions

let test_cache_clear_resets_accounting () =
  Compile.cache_clear ();
  let k = foldable "trace_cache_clear" in
  let _ = Compile.compile k in
  let _ = Compile.compile k in
  Compile.cache_clear ();
  let s = Compile.cache_stats () in
  Alcotest.(check int) "cleared hits" 0 s.Compile.hits;
  Alcotest.(check int) "cleared misses" 0 s.Compile.misses;
  Alcotest.(check int) "cleared entries" 0 s.Compile.entries;
  Alcotest.(check int) "cleared evictions" 0 s.Compile.evictions;
  let _ = Compile.compile k in
  let s = Compile.cache_stats () in
  Alcotest.(check int) "recompile after clear misses again" 1 s.Compile.misses

let test_cache_eviction_fifo () =
  Fun.protect
    ~finally:(fun () ->
      Compile.set_cache_capacity 512;
      Compile.cache_clear ())
    (fun () ->
      Compile.cache_clear ();
      Compile.set_cache_capacity 2;
      let k1 = foldable "trace_evict_1" in
      let k2 = foldable "trace_evict_2" in
      let k3 = foldable "trace_evict_3" in
      let _ = Compile.compile k1 in
      let _ = Compile.compile k2 in
      let _ = Compile.compile k3 in
      let s = Compile.cache_stats () in
      Alcotest.(check int) "capacity bounds entries" 2 s.Compile.entries;
      Alcotest.(check int) "oldest entry evicted" 1 s.Compile.evictions;
      (* k1 was inserted first, so it was the FIFO victim: recompiling it
         misses, while k3 (newest) still hits. *)
      let _ = Compile.compile k3 in
      let s = Compile.cache_stats () in
      Alcotest.(check int) "newest entry survives" 1 s.Compile.hits;
      let _ = Compile.compile k1 in
      let s = Compile.cache_stats () in
      Alcotest.(check int) "evicted entry misses" 4 s.Compile.misses)

(* ------------------------------------------------------------------ *)
(* Trace buffer                                                        *)
(* ------------------------------------------------------------------ *)

(* [Fun.protect] so a failing assertion cannot leave tracing enabled for
   the rest of the suite. *)
let with_tracing f =
  Trace.clear ();
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.clear ())
    f

let test_disabled_tracing_records_nothing () =
  Trace.disable ();
  Trace.clear ();
  (* Drive the instrumented pipeline end to end: optimizer, compile,
     run. None of it may touch the trace buffer while disabled. *)
  let k = foldable "trace_disabled" in
  let c = Compile.compile ~cache:false ~profile:true k in
  ignore (Compile.run c ~args:[] : string -> Compile.arg);
  Trace.with_span "should_not_record" (fun () -> ());
  Trace.add "should_not_count" 7;
  Alcotest.(check int) "no events recorded while disabled" 0 (Trace.event_count ());
  Alcotest.(check int) "no open spans" 0 (Trace.open_spans ());
  Alcotest.(check int) "counters untouched" 0 (Trace.counter_total "should_not_count")

let test_span_balance_and_nesting () =
  with_tracing (fun () ->
      Trace.with_span "outer" (fun () ->
          Trace.with_span "inner" (fun () -> ());
          Alcotest.(check int) "outer still open inside" 1 (Trace.open_spans ()));
      Alcotest.(check int) "all spans closed" 0 (Trace.open_spans ());
      Alcotest.(check int) "two B/E pairs" 4 (Trace.event_count ());
      let json = Trace.to_chrome_json () in
      let has needle =
        let rec go i =
          i + String.length needle <= String.length json
          && (String.sub json i (String.length needle) = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "json has traceEvents" true (has "\"traceEvents\"");
      Alcotest.(check bool) "json has begin events" true (has "\"ph\":\"B\"");
      Alcotest.(check bool) "json has end events" true (has "\"ph\":\"E\""))

let test_span_closed_on_exception () =
  with_tracing (fun () ->
      (try Trace.with_span "raises" (fun () -> failwith "boom")
       with Failure _ -> ());
      Alcotest.(check int) "span closed despite exception" 0 (Trace.open_spans ());
      Alcotest.(check int) "B and E both recorded" 2 (Trace.event_count ()))

let test_counters_accumulate () =
  with_tracing (fun () ->
      Trace.add "widgets" 2;
      Trace.add "widgets" 3;
      Alcotest.(check int) "counter totals accumulate" 5 (Trace.counter_total "widgets"))

let test_compile_emits_cache_counters () =
  with_tracing (fun () ->
      Compile.cache_clear ();
      let k = foldable "trace_compile_counters" in
      let _ = Compile.compile k in
      let _ = Compile.compile k in
      Alcotest.(check int) "one miss counted" 1 (Trace.counter_total "compile.cache.miss");
      Alcotest.(check int) "one hit counted" 1 (Trace.counter_total "compile.cache.hit"))

(* ------------------------------------------------------------------ *)
(* Profiled execution                                                  *)
(* ------------------------------------------------------------------ *)

let profiled_kernel () =
  kernel ~name:"trace_profiled"
    [
      Imp.Alloc (Imp.Float, "w", i 8);
      Imp.For
        ( "j",
          i 0,
          i 8,
          [ Imp.Store ("w", v "j", Imp.Float_lit 1.) ] );
    ]

let test_profile_counters () =
  let c = Compile.compile ~cache:false ~profile:true (profiled_kernel ()) in
  ignore (Compile.run c ~args:[] : string -> Compile.arg);
  match Compile.profile_stats c with
  | None -> Alcotest.fail "profiled kernel reports no stats"
  | Some s ->
      Alcotest.(check int) "loop iterations" 8 s.Compile.iterations;
      Alcotest.(check int) "one allocation" 1 s.Compile.allocs;
      Alcotest.(check int) "allocated elements" 8 s.Compile.alloc_elems;
      Alcotest.(check int) "zeroed bytes (8 B/elem)" 64 s.Compile.zero_bytes;
      Alcotest.(check int) "stores counted" 8 s.Compile.scalar_ops;
      ignore (Compile.run c ~args:[] : string -> Compile.arg);
      (match Compile.profile_stats c with
      | None -> Alcotest.fail "stats vanished"
      | Some s2 ->
          Alcotest.(check int) "counters accumulate across runs" 16 s2.Compile.iterations);
      Compile.profile_reset c;
      (match Compile.profile_stats c with
      | None -> Alcotest.fail "stats vanished after reset"
      | Some s3 -> Alcotest.(check int) "reset zeroes counters" 0 s3.Compile.iterations)

let test_unprofiled_reports_none () =
  let c = Compile.compile ~cache:false (profiled_kernel ()) in
  ignore (Compile.run c ~args:[] : string -> Compile.arg);
  Alcotest.(check bool) "unprofiled kernel has no stats" true
    (Compile.profile_stats c = None)

let () =
  Alcotest.run "trace"
    [
      ( "cache",
        [
          Alcotest.test_case "accounting across opt configs" `Quick
            test_cache_accounting_across_configs;
          Alcotest.test_case "cache_clear resets accounting" `Quick
            test_cache_clear_resets_accounting;
          Alcotest.test_case "FIFO eviction at capacity" `Quick test_cache_eviction_fifo;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled tracing records nothing" `Quick
            test_disabled_tracing_records_nothing;
          Alcotest.test_case "span balance and nesting" `Quick
            test_span_balance_and_nesting;
          Alcotest.test_case "span closed on exception" `Quick
            test_span_closed_on_exception;
          Alcotest.test_case "counters accumulate" `Quick test_counters_accumulate;
          Alcotest.test_case "compile emits cache counters" `Quick
            test_compile_emits_cache_counters;
        ] );
      ( "profile",
        [
          Alcotest.test_case "profiled run counters" `Quick test_profile_counters;
          Alcotest.test_case "unprofiled reports none" `Quick test_unprofiled_reports_none;
        ] );
    ]
