(* Chaos suite: deterministic fault-injection campaigns against the
   executor and the serving layer. Every fault point gets driven at
   least once — worker crash mid-job, poison-pill quarantine, injected
   compile failure, delays past deadlines, the cooperative watchdog,
   memory-budget rejection, load shedding under overload, and
   corrupt-and-detect on result values. All campaigns use fixed seeds so
   the fault schedule (and thus the asserted outcome) is reproducible. *)

open Helpers
open Taco_ir
module F = Taco_tensor.Format
module T = Taco_tensor.Tensor
module I = Index_notation
module Diag = Taco_support.Diag
module Fault = Taco_support.Faultinject
module Trace = Taco_support.Trace
module Budget = Taco_exec.Budget
module Compile = Taco_exec.Compile
module Service = Taco_service.Service

let with_fault ~seed rules f =
  Fault.configure ~seed rules;
  Fun.protect ~finally:Fault.disarm f

let with_service ?(domains = 1) ?(queue_depth = 64) ?shed_queue f =
  let svc = Service.create ~domains ~queue_depth ?shed_queue () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) (fun () -> f svc)

let spgemm_request b c =
  Service.request
    ~directives:
      [
        Service.Reorder ("k", "j");
        Service.Precompute { expr = "B(i,k) * C(k,j)"; over = [ "j" ]; workspace = "w" };
      ]
    ~result_format:F.csr
    ~expr:"A(i,j) = B(i,k) * C(k,j)"
    ~inputs:[ ("B", b); ("C", c) ]
    ()

let await_ok ticket =
  match Service.await ticket with
  | Ok r -> r
  | Error d -> Alcotest.fail (Diag.to_string d)

let eval_ok svc req =
  match Service.eval svc req with
  | Ok r -> r
  | Error d -> Alcotest.fail (Diag.to_string d)

let check_code what code = function
  | Ok _ -> Alcotest.fail (what ^ ": expected an error")
  | Error d -> Alcotest.(check string) what code d.Diag.code

(* A directly-compiled SpGEMM (the paper's Fig. 2 schedule) for the
   executor-level campaigns that bypass the service. *)

let vb = csr_tv "B"
let vc = csr_tv "C"

let spgemm_compiled () =
  let va = csr_tv "A" in
  let stmt =
    I.assign va [ vi; vj ] (I.sum vk (I.Mul (I.access vb [ vi; vk ], I.access vc [ vk; vj ])))
  in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = get (Schedule.reorder vk vj sched) in
  let w = ws_vec "w" in
  let e = Cin.Mul (Cin.Access (Cin.access vb [ vi; vk ]), Cin.Access (Cin.access vc [ vk; vj ])) in
  let sched = get (Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched) in
  getd (Taco.compile ~name:"chaos_spgemm" sched)

let spgemm_inputs seed =
  [
    (vb, random_tensor seed [| 24; 24 |] 0.2 F.csr);
    (vc, random_tensor (seed + 1) [| 24; 24 |] 0.2 F.csr);
  ]

(* --- a crashed worker is replaced and its job retried --------------- *)

let test_worker_crash_replaced () =
  let b = random_tensor 301 [| 20; 20 |] 0.2 F.csr in
  let c = random_tensor 302 [| 20; 20 |] 0.2 F.csr in
  with_fault ~seed:11 [ Fault.rule ~max_fires:1 "serve.worker" Fault.Crash ] (fun () ->
      with_service ~domains:1 (fun svc ->
          (* First request kills the worker once; the supervisor replaces
             the domain and retries the job, so the caller still gets a
             result. *)
          let r = eval_ok svc (spgemm_request b c) in
          Alcotest.(check bool) "retried request produced a result" true (T.nnz r.Service.tensor >= 0);
          let s = Service.stats svc in
          Alcotest.(check int) "one worker crashed" 1 s.Service.crashed;
          Alcotest.(check int) "one replacement spawned" 1 s.Service.replaced;
          Alcotest.(check int) "no quarantine on a single strike" 0 s.Service.quarantined;
          Alcotest.(check int) "pool is back to full strength" 1 s.Service.live_workers;
          Alcotest.(check int) "peak tracks the original pool" 1 s.Service.peak_workers;
          (* The replacement keeps serving. *)
          let r2 = eval_ok svc (spgemm_request b c) in
          Alcotest.(check int) "replacement serves identical results"
            (T.nnz r.Service.tensor) (T.nnz r2.Service.tensor);
          Alcotest.(check int) "exactly one fault fired" 1 (Fault.fires "serve.worker")))

(* --- a request that kills two workers is quarantined ---------------- *)

let test_poison_quarantined () =
  let b = random_tensor 303 [| 20; 20 |] 0.2 F.csr in
  let c = random_tensor 304 [| 20; 20 |] 0.2 F.csr in
  with_fault ~seed:12 [ Fault.rule ~max_fires:2 "serve.worker" Fault.Crash ] (fun () ->
      with_service ~domains:1 (fun svc ->
          (* The fault kills the worker on both the first attempt and the
             retry: two strikes makes the request a poison pill. *)
          check_code "second strike resolves as poison" "E_SERVE_POISON"
            (Service.eval svc (spgemm_request b c));
          let s = Service.stats svc in
          Alcotest.(check int) "two workers crashed" 2 s.Service.crashed;
          Alcotest.(check int) "structure quarantined" 1 s.Service.quarantined;
          Alcotest.(check int) "pool is back to full strength" 1 s.Service.live_workers;
          (* Resubmitting the same structure is now rejected at admission
             without touching a worker. *)
          check_code "quarantined structure rejected at submit" "E_SERVE_POISON"
            (Service.submit svc (spgemm_request b c));
          (* A different request structure still serves fine. *)
          let req =
            (* Same expression, different directives: a different poison
               key, and a schedule the autoscheduler is known to find. *)
            Service.request ~directives:[ Service.Auto ] ~result_format:F.csr
              ~expr:"A(i,j) = B(i,k) * C(k,j)"
              ~inputs:[ ("B", b); ("C", c) ]
              ()
          in
          let r = eval_ok svc req in
          Alcotest.(check bool) "pool keeps serving other structures" true
            (T.nnz r.Service.tensor >= 0)))

(* --- an injected compile failure is contained to its request -------- *)

let test_compile_fault_contained () =
  let b = random_tensor 305 [| 20; 20 |] 0.2 F.csr in
  let c = random_tensor 306 [| 20; 20 |] 0.2 F.csr in
  with_service ~domains:1 (fun svc ->
      with_fault ~seed:13 [ Fault.rule ~max_fires:1 "compile.build" Fault.Crash ] (fun () ->
          check_code "injected compile failure surfaces as its diagnostic" "E_FAULT_INJECTED"
            (Service.eval svc (spgemm_request b c)));
      let s = Service.stats svc in
      Alcotest.(check int) "failure counted, worker survived" 1 s.Service.failed;
      Alcotest.(check int) "no worker crash: request failures are contained" 0 s.Service.crashed;
      (* Disarmed, the same request compiles and runs. *)
      let r = eval_ok svc (spgemm_request b c) in
      Alcotest.(check bool) "service recovered" true (T.nnz r.Service.tensor >= 0))

(* --- an injected stall trips the request deadline ------------------- *)

let test_delay_past_deadline () =
  let b = random_tensor 307 [| 20; 20 |] 0.2 F.csr in
  let c = random_tensor 308 [| 20; 20 |] 0.2 F.csr in
  with_fault ~seed:14 [ Fault.rule "serve.pipeline" (Fault.Delay 100) ] (fun () ->
      with_service ~domains:1 (fun svc ->
          check_code "stalled request expires" "E_SERVE_DEADLINE"
            (Service.eval svc ~deadline_ms:30 (spgemm_request b c));
          let s = Service.stats svc in
          Alcotest.(check int) "expiry counted as timed out" 1 s.Service.timed_out))

(* --- the cooperative watchdog cancels running kernels --------------- *)

let test_watchdog_cancels () =
  (* Directly at the executor: a deadline already in the past must
     cancel the kernel from inside its loops. *)
  let compiled = spgemm_compiled () in
  let inputs = spgemm_inputs 309 in
  let expired = Int64.sub (Trace.now_ns ()) 1L in
  (match Taco.run ~deadline_ns:expired compiled ~inputs with
  | Ok _ -> Alcotest.fail "expired deadline: expected cancellation"
  | Error d -> Alcotest.(check string) "watchdog code" "E_EXEC_CANCELLED" d.Diag.code);
  (* The same kernel without a deadline still runs. *)
  (match Taco.run compiled ~inputs with
  | Ok _ -> ()
  | Error d -> Alcotest.fail (Diag.to_string d));
  (* Through the service: a stall between compile and execute leaves the
     watchdog to cancel mid-kernel, surfaced as the request deadline. *)
  let b = random_tensor 311 [| 20; 20 |] 0.2 F.csr in
  let c = random_tensor 312 [| 20; 20 |] 0.2 F.csr in
  with_fault ~seed:15 [ Fault.rule "serve.exec" (Fault.Delay 80) ] (fun () ->
      with_service ~domains:1 (fun svc ->
          check_code "cancelled execution surfaces as the deadline" "E_SERVE_DEADLINE"
            (Service.eval svc ~deadline_ms:40 (spgemm_request b c))))

(* --- the memory budget rejects over-sized allocations up front ------ *)

let test_mem_budget () =
  Fun.protect
    ~finally:(fun () -> Budget.set_mem_limit 0)
    (fun () ->
      let compiled = spgemm_compiled () in
      let inputs = spgemm_inputs 313 in
      (* 128 bytes = 16 elements: the 24-wide dense workspace (and the
         output structure) cannot be admitted. *)
      Budget.set_mem_limit 128;
      (match Taco.run compiled ~inputs with
      | Ok _ -> Alcotest.fail "over-budget run: expected rejection"
      | Error d ->
          Alcotest.(check string) "memory guard code" "E_EXEC_MEM" d.Diag.code;
          Alcotest.(check bool) "context names the limit" true
            (List.mem_assoc "limit_bytes" d.Diag.context));
      (* The guard fires through the service too, as a contained
         request failure. *)
      let b = random_tensor 314 [| 20; 20 |] 0.2 F.csr in
      let c = random_tensor 315 [| 20; 20 |] 0.2 F.csr in
      with_service ~domains:1 (fun svc ->
          check_code "service surfaces the memory guard" "E_EXEC_MEM"
            (Service.eval svc (spgemm_request b c));
          Alcotest.(check int) "worker survived the rejection" 1
            (Service.stats svc).Service.live_workers);
      (* Lifting the budget restores service. *)
      Budget.set_mem_limit 0;
      match Taco.run compiled ~inputs with
      | Ok _ -> ()
      | Error d -> Alcotest.fail (Diag.to_string d))

(* --- overload sheds to unoptimized kernels, then rejects ------------ *)

let test_shed_under_overload () =
  let b = random_tensor 316 [| 24; 24 |] 0.2 F.csr in
  let c = random_tensor 317 [| 24; 24 |] 0.2 F.csr in
  Trace.enable ();
  let shed_before = Trace.counter_total "serve.shed" in
  Fun.protect ~finally:Trace.disable (fun () ->
      (* A clean run for the differential check: shed (unoptimized)
         results must be bit-identical. *)
      let clean =
        with_service ~domains:1 (fun svc -> (eval_ok svc (spgemm_request b c)).Service.tensor)
      in
      with_fault ~seed:16 [ Fault.rule "serve.pipeline" (Fault.Delay 20) ] (fun () ->
          with_service ~domains:1 ~queue_depth:8 ~shed_queue:2 (fun svc ->
              (* Each job stalls 20ms, so submissions pile up: past queue
                 length 2 they are shed, past 8 rejected. *)
              let rec burst n tickets full =
                if n = 0 then (List.rev tickets, full)
                else
                  match Service.submit svc (spgemm_request b c) with
                  | Ok t -> burst (n - 1) (t :: tickets) full
                  | Error d -> burst (n - 1) tickets (Some d)
              in
              let tickets, full = burst 16 [] None in
              let responses = List.map await_ok tickets in
              List.iter
                (fun r ->
                  Alcotest.(check bool) "shed results bit-identical to optimized" true
                    (T.to_dense r.Service.tensor = T.to_dense clean))
                responses;
              let s = Service.stats svc in
              Alcotest.(check bool) "requests were shed" true (s.Service.shed > 0);
              Alcotest.(check bool) "shed surfaces in the trace counters" true
                (Trace.counter_total "serve.shed" > shed_before);
              match full with
              | None -> Alcotest.fail "expected at least one E_SERVE_QUEUE_FULL rejection"
              | Some d ->
                  Alcotest.(check string) "overfull queue rejects" "E_SERVE_QUEUE_FULL" d.Diag.code;
                  Alcotest.(check bool) "rejection carries a retry hint" true
                    (List.mem_assoc "retry_after_ms" d.Diag.context))))

(* --- corrupt-and-detect: injected bit flips are observable ---------- *)

let test_corrupt_detected () =
  let compiled = spgemm_compiled () in
  let inputs = spgemm_inputs 318 in
  let clean =
    match Taco.run compiled ~inputs with
    | Ok t -> T.vals t
    | Error d -> Alcotest.fail (Diag.to_string d)
  in
  Alcotest.(check bool) "kernel produced values to corrupt" true (Array.length clean > 0);
  with_fault ~seed:17 [ Fault.rule "exec.result" Fault.Corrupt ] (fun () ->
      let dirty =
        match Taco.run compiled ~inputs with
        | Ok t -> T.vals t
        | Error d -> Alcotest.fail (Diag.to_string d)
      in
      Alcotest.(check bool) "corruption fired" true (Fault.fires "exec.result" > 0);
      Alcotest.(check int) "corruption preserves shape" (Array.length clean) (Array.length dirty);
      let differs = ref 0 in
      Array.iteri
        (fun i v -> if Int64.bits_of_float v <> Int64.bits_of_float dirty.(i) then incr differs)
        clean;
      Alcotest.(check int) "exactly one value bit-flipped" 1 !differs)

let () =
  Alcotest.run "chaos"
    [
      ( "supervision",
        [
          Alcotest.test_case "crashed worker replaced, job retried" `Quick test_worker_crash_replaced;
          Alcotest.test_case "two-strike poison pill quarantined" `Quick test_poison_quarantined;
          Alcotest.test_case "compile fault contained to its request" `Quick test_compile_fault_contained;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "injected stall trips the deadline" `Quick test_delay_past_deadline;
          Alcotest.test_case "watchdog cancels running kernels" `Quick test_watchdog_cancels;
        ] );
      ( "resources",
        [
          Alcotest.test_case "memory budget rejects before allocating" `Quick test_mem_budget;
          Alcotest.test_case "overload sheds, then rejects with a hint" `Quick test_shed_under_overload;
        ] );
      ( "integrity",
        [ Alcotest.test_case "injected corruption is detectable" `Quick test_corrupt_detected ] );
    ]
