(* Golden-snapshot generator: prints the C rendering of one of the three
   paper kernels (SpGEMM, SpAdd, MTTKRP), before or after the optimizer
   pipeline, or parallelized over the outer index and optimized ([par]) —
   the snapshot pins the `#pragma omp parallel for` annotation, the
   ordered-append comment and the optimizer's refusal to move code across
   the parallel boundary. test/dune diffs the output against committed
   snapshots so IR changes — and what each optimizer pass does to the
   paper kernels — stay reviewable as text diffs. Regenerate with
   `dune promote`. *)

open Taco

let get = function Ok x -> x | Error e -> failwith e

let vi = ivar "i"

let vj = ivar "j"

let vk = ivar "k"

let vl = ivar "l"

(* SpGEMM: A = B·C, all CSR, workspace transformation (paper Fig. 4). *)
let spgemm_info ?parallel () =
  let a = tensor "A" Format.csr in
  let b = tensor "B" Format.csr in
  let c = tensor "C" Format.csr in
  let open Index_notation in
  let stmt = assign a [ vi; vj ] (sum vk (Mul (access b [ vi; vk ], access c [ vk; vj ]))) in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = get (Schedule.reorder vk vj sched) in
  let w = workspace "w" Format.dense_vector in
  let e = Cin.Mul (Cin.Access (Cin.access b [ vi; vk ]), Cin.Access (Cin.access c [ vk; vj ])) in
  let sched = get (Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched) in
  get
    (Lower.lower ~name:"spgemm_ws" ?parallel
       ~mode:(Lower.Assemble { emit_values = true; sorted = true })
       (Schedule.stmt sched))

(* SpAdd: A = B + C, all CSR, two-way merge (paper Fig. 5a). *)
let spadd_info ?parallel () =
  let a = tensor "A" Format.csr in
  let b = tensor "B" Format.csr in
  let c = tensor "C" Format.csr in
  let open Index_notation in
  let stmt = assign a [ vi; vj ] (Add (access b [ vi; vj ], access c [ vi; vj ])) in
  get
    (Lower.lower ~name:"spadd_merge" ?parallel
       ~mode:(Lower.Assemble { emit_values = true; sorted = true })
       (Schedule.stmt (get (Schedule.of_index_notation stmt))))

(* MTTKRP: A(i,j) = Σk Σl B(i,k,l)·C(l,j)·D(k,j), CSF operand, dense
   workspace over j (paper §VIII-C). *)
let mttkrp_info ?parallel () =
  let a = tensor "A" Format.dense_matrix in
  let b = tensor "B" (Format.csf 3) in
  let c = tensor "C" Format.dense_matrix in
  let d = tensor "D" Format.dense_matrix in
  let open Index_notation in
  let stmt =
    assign a [ vi; vj ]
      (sum vk
         (sum vl (Mul (Mul (access b [ vi; vk; vl ], access c [ vl; vj ]), access d [ vk; vj ]))))
  in
  let sched = get (Schedule.of_index_notation stmt) in
  let sched = get (Schedule.reorder vj vk sched) in
  let sched = get (Schedule.reorder vj vl sched) in
  let w = workspace "w" Format.dense_vector in
  let e = Cin.Mul (Cin.Access (Cin.access b [ vi; vk; vl ]), Cin.Access (Cin.access c [ vl; vj ])) in
  let sched = get (Schedule.precompute_simple ~expr:e ~over:[ vj ] ~workspace:w sched) in
  get (Lower.lower ~name:"mttkrp_ws" ?parallel ~mode:Lower.Compute (Schedule.stmt sched))

(* Semiring SpMV: y(i) = ⊕j A(i,j) ⊗ x(j) under min-plus or boolean
   or-and. The snapshot pins the semiring combine/reduce rendering
   (fmin over +, short-circuiting or over 0./1.) and the zeroing path:
   min-plus must fill the result with INFINITY instead of memset. *)
let spmv_sr_info ?parallel sr =
  let a = tensor "A" Format.csr in
  let x = tensor "x" Format.dense_vector in
  let y = tensor "y" Format.dense_vector in
  let open Index_notation in
  let stmt = assign y [ vi ] (sum vj (Mul (access a [ vi; vj ], access x [ vj ]))) in
  get
    (Lower.lower
       ~name:("spmv_" ^ Semiring.to_string sr)
       ~semiring:sr ?parallel ~mode:Lower.Compute
       (Schedule.stmt (get (Schedule.of_index_notation stmt))))

(* The optimized sequential kernel followed by the parallel one, in one
   snapshot per semiring. *)
let spmv_sr_pair sr =
  let optimize info =
    match Opt.optimize info.Lower.kernel with Ok k -> k | Error e -> failwith e
  in
  Codegen_c.emit (optimize (spmv_sr_info sr))
  ^ "\n"
  ^ Codegen_c.emit (optimize (spmv_sr_info ~parallel:vi sr))

let () =
  let usage () =
    prerr_endline
      "usage: golden_gen (spgemm|spadd|mttkrp) (unopt|opt|par)\n\
      \   or: golden_gen (spmv_minplus|spmv_boolor) pair";
    exit 2
  in
  if Array.length Sys.argv <> 3 then usage ();
  (match (Sys.argv.(1), Sys.argv.(2)) with
  | "spmv_minplus", "pair" ->
      print_string (spmv_sr_pair Semiring.min_plus);
      exit 0
  | "spmv_boolor", "pair" ->
      print_string (spmv_sr_pair Semiring.bool_or_and);
      exit 0
  | ("spmv_minplus" | "spmv_boolor"), _ -> usage ()
  | _ -> ());
  let parallel = if Sys.argv.(2) = "par" then Some vi else None in
  let info =
    match Sys.argv.(1) with
    | "spgemm" -> spgemm_info ?parallel ()
    | "spadd" -> spadd_info ?parallel ()
    | "mttkrp" -> mttkrp_info ?parallel ()
    | _ -> usage ()
  in
  let kern = info.Lower.kernel in
  let kern =
    match Sys.argv.(2) with
    | "unopt" -> kern
    | "opt" | "par" -> (
        match Opt.optimize kern with Ok k -> k | Error e -> failwith e)
    | _ -> usage ()
  in
  print_string (Codegen_c.emit kern)
