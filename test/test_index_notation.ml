open Taco_ir
open Taco_ir.Var
module F = Taco_tensor.Format
module I = Index_notation
module P = Taco_frontend.Parser

let vi = Helpers.vi and vj = Helpers.vj and vk = Helpers.vk

let a = Helpers.csr_tv "A"
let b = Helpers.csr_tv "B"
let c = Helpers.csr_tv "C"
let x = Helpers.dense_vec_tv "x"

let ivar_list = Alcotest.(list (testable Index_var.pp Index_var.equal))

let test_free_vars () =
  let e = I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ]) in
  Alcotest.check ivar_list "free vars in order" [ vi; vk; vj ] (I.free_vars e);
  let summed = I.sum vk e in
  Alcotest.check ivar_list "sum binds k" [ vi; vj ] (I.free_vars summed);
  Alcotest.check ivar_list "all vars include binder" [ vk; vi; vj ] (I.all_vars summed)

let test_reduction_vars () =
  let stmt = I.assign a [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ]))) in
  Alcotest.check ivar_list "explicit reduction" [ vk ] (I.reduction_vars stmt);
  let implicit = I.assign a [ vi; vj ] (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ])) in
  Alcotest.check ivar_list "implicit reduction" [ vk ] (I.reduction_vars implicit)

let test_validate_ok () =
  let stmt = I.assign a [ vi; vj ] (I.Add (I.access b [ vi; vj ], I.access c [ vi; vj ])) in
  Helpers.get (I.validate stmt)

let test_validate_arity () =
  let stmt = I.assign a [ vi; vj ] (I.access b [ vi ]) in
  ignore (Helpers.get_err "arity" (I.validate stmt))

let test_validate_lhs_on_rhs () =
  let stmt = I.assign a [ vi; vj ] (I.access a [ vi; vj ]) in
  ignore (Helpers.get_err "result on rhs" (I.validate stmt))

let test_validate_repeated_lhs () =
  let stmt = I.assign a [ vi; vi ] (I.access b [ vi; vi ]) in
  ignore (Helpers.get_err "repeated lhs var" (I.validate stmt))

let test_validate_shadowing () =
  let stmt = I.assign x [ vi ] (I.sum vi (I.access b [ vi; vi ])) in
  ignore (Helpers.get_err "binder shadows lhs" (I.validate stmt))

let test_pretty () =
  let stmt = I.assign a [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ]))) in
  Alcotest.(check string) "printing" "A(i,j) = sum(k, B(i,k) * C(k,j))" (I.to_string stmt)

let test_pretty_precedence () =
  let e = I.Mul (I.Add (I.access x [ vi ], I.access x [ vi ]), I.access x [ vi ]) in
  let stmt = I.assign x [ vi ] (I.Div (e, I.Literal 2.)) in
  Alcotest.(check string) "parens preserved"
    "x(i) = (x(i) + x(i)) * x(i) / 2" (I.to_string stmt)
    |> ignore

(* parser *)

let env = [ ("A", a); ("B", b); ("C", c); ("x", x) ]

let test_parse_matmul () =
  let stmt = Helpers.getd (P.parse_statement ~tensors:env "A(i,j) = B(i,k) * C(k,j)") in
  Alcotest.(check string) "roundtrip" "A(i,j) = B(i,k) * C(k,j)" (I.to_string stmt)

let test_parse_sum () =
  let stmt = Helpers.getd (P.parse_statement ~tensors:env "A(i,j) = sum(k, B(i,k) * C(k,j))") in
  Alcotest.(check string) "sum" "A(i,j) = sum(k, B(i,k) * C(k,j))" (I.to_string stmt)

let test_parse_accumulate () =
  let stmt = Helpers.getd (P.parse_statement ~tensors:env "x(i) += B(i,j) * 2.5") in
  Alcotest.(check bool) "accumulate op" true (stmt.I.op = I.Accumulate)

let test_parse_precedence () =
  let stmt = Helpers.getd (P.parse_statement ~tensors:env "x(i) = B(i,j) + C(i,j) * 2") in
  (match stmt.I.rhs with
   | I.Add (_, I.Mul (_, I.Literal 2.)) -> ()
   | _ -> Alcotest.fail "precedence wrong")

let test_parse_neg_paren () =
  let stmt = Helpers.getd (P.parse_statement ~tensors:env "x(i) = -(B(i,j) - C(i,j))") in
  (match stmt.I.rhs with I.Neg (I.Sub _) -> () | _ -> Alcotest.fail "neg/paren wrong")

let test_parse_scientific () =
  let stmt = Helpers.getd (P.parse_statement ~tensors:env "x(i) = B(i,j) * 1.5e-3") in
  (match stmt.I.rhs with
   | I.Mul (_, I.Literal v) -> Alcotest.(check (float 1e-12)) "literal" 1.5e-3 v
   | _ -> Alcotest.fail "literal missing")

let test_parse_errors () =
  ignore (Helpers.get_err "unknown tensor" (P.parse_statement ~tensors:env "Z(i) = x(i)"));
  ignore (Helpers.get_err "bad arity" (P.parse_statement ~tensors:env "A(i) = x(i)"));
  ignore (Helpers.get_err "trailing" (P.parse_statement ~tensors:env "x(i) = x(i) x"));
  ignore (Helpers.get_err "missing op" (P.parse_statement ~tensors:env "x(i) x(i)"));
  ignore (Helpers.get_err "empty expr" (P.parse_statement ~tensors:env "x(i) = "));
  ignore (Helpers.get_err "bad char" (P.parse_statement ~tensors:env "x(i) = x(i) ^ 2"))

let test_parse_expr_only () =
  let e = Helpers.getd (P.parse_expr ~tensors:env "B(i,k) * C(k,j)") in
  (match e with I.Mul (I.Access _, I.Access _) -> () | _ -> Alcotest.fail "shape")

let test_tensor_var_basics () =
  Alcotest.(check bool) "workspace flag" true
    (Tensor_var.is_workspace (Tensor_var.workspace "w" ~order:1 ~format:F.dense_vector));
  Alcotest.(check bool) "equality by name" true
    (Tensor_var.equal a (Tensor_var.make "A" ~order:2 ~format:F.csr));
  Alcotest.check_raises "format order mismatch"
    (Invalid_argument "Tensor_var: format order mismatch") (fun () ->
      ignore (Tensor_var.make "T" ~order:3 ~format:F.csr))

let test_fresh_vars_unique () =
  let v1 = Index_var.fresh "t" and v2 = Index_var.fresh "t" in
  Alcotest.(check bool) "fresh vars distinct" false (Index_var.equal v1 v2)

let () =
  Alcotest.run "index_notation"
    [
      ( "analysis",
        [
          Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "reduction vars" `Quick test_reduction_vars;
        ] );
      ( "validate",
        [
          Alcotest.test_case "well-formed" `Quick test_validate_ok;
          Alcotest.test_case "arity mismatch" `Quick test_validate_arity;
          Alcotest.test_case "result on rhs" `Quick test_validate_lhs_on_rhs;
          Alcotest.test_case "repeated lhs index" `Quick test_validate_repeated_lhs;
          Alcotest.test_case "binder shadowing" `Quick test_validate_shadowing;
        ] );
      ( "printing",
        [
          Alcotest.test_case "matmul" `Quick test_pretty;
          Alcotest.test_case "precedence parens" `Quick test_pretty_precedence;
        ] );
      ( "parser",
        [
          Alcotest.test_case "matmul" `Quick test_parse_matmul;
          Alcotest.test_case "explicit sum" `Quick test_parse_sum;
          Alcotest.test_case "accumulate" `Quick test_parse_accumulate;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "negation and parens" `Quick test_parse_neg_paren;
          Alcotest.test_case "scientific literals" `Quick test_parse_scientific;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "expression entry point" `Quick test_parse_expr_only;
        ] );
      ( "vars",
        [
          Alcotest.test_case "tensor var basics" `Quick test_tensor_var_basics;
          Alcotest.test_case "fresh index vars" `Quick test_fresh_vars_unique;
        ] );
    ]
