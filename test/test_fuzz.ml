(* Differential fuzzing of the whole compile pipeline.

   Each instance draws a statement template, random formats, random
   dimensions and a random schedule, then drives it end to end:

     index notation -> concretize -> (reorder / precompute) -> lower
                    -> compile (bounds-checked) -> run

   The result is cross-checked against the dense reference interpreter
   ([Cin_eval.eval1]) on the *unscheduled* statement, so every schedule
   and every lowering must preserve semantics. Along the way every
   intermediate must pass its verifier: [Cin.validate] after concretize
   and after each accepted transform, [Imp.validate] on the generated
   kernel, [Tensor.validate] on all inputs and on the result.

   Each instance that compiles is additionally run twice — once with
   the full optimizer pipeline (the default) and once with every pass
   disabled — and the two dense results must agree bit for bit, which
   pins down the optimizer's exact-semantics contract on far more
   kernels than the hand-written tests cover.

   Stages are allowed to *reject* an instance (a scatter without a
   workspace, an unsupported assembled format, a reorder whose
   precondition fails): rejection with a well-formed diagnostic is
   success. Crashes, verifier failures, bounds violations and oracle
   mismatches are failures.

   The instance count defaults to 200 under [dune runtest] and can be
   raised with the TACO_FUZZ_COUNT environment variable (the [@fuzz]
   alias runs a larger, fixed-seed campaign). *)

module F = Taco_tensor.Format
module T = Taco_tensor.Tensor
module D = Taco_tensor.Dense
module I = Taco_ir.Index_notation
module Cin = Taco_ir.Cin
module Cin_eval = Taco_ir.Cin_eval
module Concretize = Taco_ir.Concretize
module Schedule = Taco_ir.Schedule
module Imp = Taco_lower.Imp
module Lower = Taco_lower.Lower
module Diag = Taco_support.Diag
module Fault = Taco_support.Faultinject
open Taco_ir.Var

let vi = Index_var.make "i"

let vj = Index_var.make "j"

let vk = Index_var.make "k"

let vl = Index_var.make "l"

(* ------------------------------------------------------------------ *)
(* Scenario space                                                      *)
(* ------------------------------------------------------------------ *)

type scenario = {
  template : int;
  fmts : int array;  (* format selector per tensor (result first) *)
  dims : int array;  (* ranges of i, j, k, l *)
  density : float;
  seed : int;  (* input tensor data *)
  sched : int;  (* 0 = plain, 1 = auto, 2 = manual/random reorder *)
}

let vec_formats = [| F.dense_vector; F.sparse_vector |]

let mat_formats = [| F.dense_matrix; F.csr; F.csc; F.dcsr |]

(* Results stick to formats with at most one compressed level so the
   assembled read-back path stays in scope; inputs range wider. *)
let vec_result_formats = [| F.dense_vector; F.sparse_vector |]

let mat_result_formats = [| F.dense_matrix; F.csr |]

let pick arr sel = arr.(sel mod Array.length arr)

(* A template instantiates tensor variables from the scenario's format
   selectors and returns the statement plus the input tensor variables
   (in declaration order) with the index variables of their modes. *)
type instance = {
  stmt : I.t;
  inputs : (Tensor_var.t * Index_var.t list) list;
}

let templates =
  [|
    (* x(i) = b(i) + c(i) *)
    (fun sc ->
      let x = Tensor_var.make "x" ~order:1 ~format:(pick vec_result_formats sc.fmts.(0)) in
      let b = Tensor_var.make "b" ~order:1 ~format:(pick vec_formats sc.fmts.(1)) in
      let c = Tensor_var.make "c" ~order:1 ~format:(pick vec_formats sc.fmts.(2)) in
      {
        stmt = I.assign x [ vi ] (I.Add (I.access b [ vi ], I.access c [ vi ]));
        inputs = [ (b, [ vi ]); (c, [ vi ]) ];
      });
    (* x(i) = b(i) * c(i) - b(i) *)
    (fun sc ->
      let x = Tensor_var.make "x" ~order:1 ~format:(pick vec_result_formats sc.fmts.(0)) in
      let b = Tensor_var.make "b" ~order:1 ~format:(pick vec_formats sc.fmts.(1)) in
      let c = Tensor_var.make "c" ~order:1 ~format:(pick vec_formats sc.fmts.(2)) in
      {
        stmt =
          I.assign x [ vi ]
            (I.Sub (I.Mul (I.access b [ vi ], I.access c [ vi ]), I.access b [ vi ]));
        inputs = [ (b, [ vi ]); (c, [ vi ]) ];
      });
    (* y(i) = sum(j, B(i,j) * x(j)) *)
    (fun sc ->
      let y = Tensor_var.make "y" ~order:1 ~format:(pick vec_result_formats sc.fmts.(0)) in
      let bm = Tensor_var.make "B" ~order:2 ~format:(pick mat_formats sc.fmts.(1)) in
      let x = Tensor_var.make "x" ~order:1 ~format:(pick vec_formats sc.fmts.(2)) in
      {
        stmt =
          I.assign y [ vi ] (I.sum vj (I.Mul (I.access bm [ vi; vj ], I.access x [ vj ])));
        inputs = [ (bm, [ vi; vj ]); (x, [ vj ]) ];
      });
    (* A(i,j) = B(i,j) + C(i,j) *)
    (fun sc ->
      let a = Tensor_var.make "A" ~order:2 ~format:(pick mat_result_formats sc.fmts.(0)) in
      let bm = Tensor_var.make "B" ~order:2 ~format:(pick mat_formats sc.fmts.(1)) in
      let cm = Tensor_var.make "C" ~order:2 ~format:(pick mat_formats sc.fmts.(2)) in
      {
        stmt = I.assign a [ vi; vj ] (I.Add (I.access bm [ vi; vj ], I.access cm [ vi; vj ]));
        inputs = [ (bm, [ vi; vj ]); (cm, [ vi; vj ]) ];
      });
    (* A(i,j) = sum(k, B(i,k) * C(k,j)) *)
    (fun sc ->
      let a = Tensor_var.make "A" ~order:2 ~format:(pick mat_result_formats sc.fmts.(0)) in
      let bm = Tensor_var.make "B" ~order:2 ~format:(pick mat_formats sc.fmts.(1)) in
      let cm = Tensor_var.make "C" ~order:2 ~format:(pick mat_formats sc.fmts.(2)) in
      {
        stmt =
          I.assign a [ vi; vj ]
            (I.sum vk (I.Mul (I.access bm [ vi; vk ], I.access cm [ vk; vj ])));
        inputs = [ (bm, [ vi; vk ]); (cm, [ vk; vj ]) ];
      });
    (* sampled dense-dense: A(i,j) = B(i,j) * sum(k, C(i,k) * D(k,j)) *)
    (fun sc ->
      let a = Tensor_var.make "A" ~order:2 ~format:(pick mat_result_formats sc.fmts.(0)) in
      let bm = Tensor_var.make "B" ~order:2 ~format:(pick mat_formats sc.fmts.(1)) in
      let cm = Tensor_var.make "C" ~order:2 ~format:F.dense_matrix in
      let dm = Tensor_var.make "D" ~order:2 ~format:F.dense_matrix in
      {
        stmt =
          I.assign a [ vi; vj ]
            (I.Mul
               ( I.access bm [ vi; vj ],
                 I.sum vk (I.Mul (I.access cm [ vi; vk ], I.access dm [ vk; vj ])) ));
        inputs = [ (bm, [ vi; vj ]); (cm, [ vi; vk ]); (dm, [ vk; vj ]) ];
      });
    (* MTTKRP: A(i,j) = sum(k, sum(l, X(i,k,l) * C(l,j) * D(k,j))) *)
    (fun sc ->
      let a = Tensor_var.make "A" ~order:2 ~format:F.dense_matrix in
      let x3 =
        Tensor_var.make "X" ~order:3 ~format:(pick [| F.csf 3; F.dense 3 |] sc.fmts.(1))
      in
      let cm = Tensor_var.make "C" ~order:2 ~format:F.dense_matrix in
      let dm = Tensor_var.make "D" ~order:2 ~format:F.dense_matrix in
      {
        stmt =
          I.assign a [ vi; vj ]
            (I.sum vk
               (I.sum vl
                  (I.Mul
                     ( I.Mul (I.access x3 [ vi; vk; vl ], I.access cm [ vl; vj ]),
                       I.access dm [ vk; vj ] ))));
        inputs = [ (x3, [ vi; vk; vl ]); (cm, [ vl; vj ]); (dm, [ vk; vj ]) ];
      });
  |]

let var_range sc v =
  if Index_var.equal v vi then sc.dims.(0)
  else if Index_var.equal v vj then sc.dims.(1)
  else if Index_var.equal v vk then sc.dims.(2)
  else sc.dims.(3)

(* ------------------------------------------------------------------ *)
(* One pipeline instance                                               *)
(* ------------------------------------------------------------------ *)

exception Fuzz_failure of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fuzz_failure s)) fmt

let assert_cin_valid what stmt =
  match Cin.validate stmt with
  | Ok () -> ()
  | Error e -> failf "%s fails the CIN verifier: %s (statement: %s)" what e (Cin.to_string stmt)

let assert_tensor_valid what t =
  match T.validate t with
  | Ok () -> ()
  | Error e -> failf "%s fails the tensor verifier: %s" what e

(* Stages may reject an instance, but only through the result channel
   and only at stages where rejection makes sense. *)
let acceptable_reject (d : Diag.t) =
  match d.Diag.stage with
  | Diag.Concretize | Diag.Reorder | Diag.Workspace | Diag.Lower -> true
  | Diag.Execute ->
      (* Compute-mode kernels with compressed results need a pre-assembled
         output: a legitimate capability limit, not a bug. *)
      d.Diag.code = "E_EXEC_MODE"
  | Diag.Parse | Diag.Compile | Diag.Tensor | Diag.Io | Diag.Serve -> false

type outcome = Ran | Rejected

(* Instances whose parallel differential leg actually executed. *)
let par_ran = ref 0

(* Instances whose native-backend differential leg really ran a
   compiled shared object (0 on machines without a C compiler — the
   leg skips cleanly there). *)
let native_ran = ref 0

(* Fault-injected leg bookkeeping: instances where an injected fault
   fired (and was reported as [E_FAULT_INJECTED]) vs instances that
   survived the armed campaign and had to reproduce the exact bits. *)
let fault_injected = ref 0

let fault_survived = ref 0

(* Instances whose cost-search leg ran end to end. *)
let cost_ran = ref 0

let run_one sc =
  let inst = templates.(sc.template mod Array.length templates) sc in
  (* Random inputs, each checked against the packing invariants. *)
  let inputs =
    List.mapi
      (fun n (tv, vars) ->
        let dims = Array.of_list (List.map (var_range sc) vars) in
        let t = Helpers.random_tensor (sc.seed + n) dims sc.density (Tensor_var.format tv) in
        assert_tensor_valid (Tensor_var.name tv) t;
        (tv, t))
      inst.inputs
  in
  (* The oracle evaluates the unscheduled statement. *)
  let plain =
    match Concretize.run inst.stmt with
    | Ok s -> s
    | Error e -> failf "concretize rejected a well-formed template: %s" e
  in
  assert_cin_valid "concretized statement" plain;
  let oracle =
    match Cin_eval.eval1 plain ~inputs:(List.map (fun (tv, t) -> (tv, T.to_dense t)) inputs) with
    | Ok d -> d
    | Error e -> failf "reference interpreter failed: %s" e
  in
  (* Random schedule. *)
  let sched = Schedule.of_stmt plain in
  let sched =
    match sc.sched mod 3 with
    | 1 -> sched (* leave scheduling to auto_compile *)
    | 2 -> (
        (* A random reorder attempt; precondition rejections leave the
           schedule unchanged (and exercise the precondition checks). *)
        let vars = Cin.stmt_vars plain in
        match vars with
        | [] | [ _ ] -> sched
        | _ ->
            let n = List.length vars in
            let a = List.nth vars (sc.seed mod n) in
            let b = List.nth vars ((sc.seed / 7) mod n) in
            if Index_var.equal a b then sched
            else (
              match Schedule.reorder a b sched with
              | Ok sched' ->
                  assert_cin_valid "reordered statement" (Schedule.stmt sched');
                  sched'
              | Error _ -> sched))
    | _ -> sched
  in
  (* Compile bounds-checked; fall back to the autoscheduler when plain
     lowering rejects the schedule (e.g. scatter into a sparse result).
     Compiled twice — optimized (the default) and with every optimizer
     pass disabled — for the differential leg below. *)
  let compile_with opt =
    match Taco.compile ~checked:true ~opt sched with
    | Ok c -> Ok c
    | Error _ -> Result.map fst (Taco.auto_compile ~checked:true ~opt sched)
  in
  match (compile_with Taco.Opt.all, compile_with Taco.Opt.none) with
  | Error d, _ ->
      if acceptable_reject d then Rejected
      else failf "unacceptable compile rejection: %s" (Diag.to_string d)
  | Ok _, Error d ->
      failf "disabling the optimizer changed the compile outcome: %s" (Diag.to_string d)
  | Ok c, Ok c_unopt -> (
      (* Both the lowered and the optimized kernel must pass the
         imperative-IR verifier. *)
      let kern = (Taco_exec.Kernel.info (Taco.kernel c)).Lower.kernel in
      (match Imp.validate kern with
      | Ok () -> ()
      | Error e -> failf "generated kernel fails the IR verifier: %s" e);
      (match Imp.validate (Taco_exec.Kernel.imp (Taco.kernel c)) with
      | Ok () -> ()
      | Error e -> failf "optimized kernel fails the IR verifier: %s" e);
      assert_cin_valid "scheduled statement" (Schedule.stmt (Taco.schedule_of c));
      match (Taco.run c ~inputs, Taco.run c_unopt ~inputs) with
      | Error d, _ ->
          if acceptable_reject d then Rejected
          else failf "unacceptable execution failure: %s" (Diag.to_string d)
      | Ok _, Error d ->
          failf "optimized kernel ran but the unoptimized one failed: %s" (Diag.to_string d)
      | Ok result, Ok result_unopt ->
          assert_tensor_valid "result" result;
          if not (D.equal ~eps:1e-9 oracle (T.to_dense result)) then
            failf "MISMATCH vs the reference interpreter on %s" (Cin.to_string plain);
          (* Differential leg: the optimizer must not change a single
             bit of the dense result (the soundness contract of
             Taco_lower.Opt — same primitives, same order, no float
             identities). *)
          let b_opt = D.buffer (T.to_dense result) in
          let b_unopt = D.buffer (T.to_dense result_unopt) in
          if Array.length b_opt <> Array.length b_unopt then
            failf "optimized and unoptimized results differ in shape on %s"
              (Cin.to_string plain);
          Array.iteri
            (fun idx x ->
              if Int64.bits_of_float x <> Int64.bits_of_float b_unopt.(idx) then
                failf
                  "optimizer changed result bits at %d (%h vs %h) on %s"
                  idx x b_unopt.(idx) (Cin.to_string plain))
            b_opt;
          (* Native differential leg: the same schedule built by the C
             backend must reproduce the closure bits exactly. A
             downgrade (no compiler, or a structurally unsupported
             kernel) falls back to closures and the comparison is
             trivially satisfied; only genuine native runs count
             towards coverage. Compiled without [~checked] — checked
             kernels deliberately pin to the closure executor. *)
          (if Taco_exec.Native.available () then
             let ncompile () =
               match Taco.compile ~backend:`Native sched with
               | Ok nc -> Ok nc
               | Error _ -> Result.map fst (Taco.auto_compile ~backend:`Native sched)
             in
             match ncompile () with
             | Error d ->
                 if not (acceptable_reject d) then
                   failf "native-backend compile rejection: %s" (Diag.to_string d)
             | Ok nc -> (
                 if Taco.backend_of nc = `Native then incr native_ran;
                 match Taco.run nc ~inputs with
                 | Error d ->
                     if not (acceptable_reject d) then
                       failf "native run failed: %s" (Diag.to_string d)
                 | Ok nr ->
                     let nb = D.buffer (T.to_dense nr) in
                     if Array.length nb <> Array.length b_opt then
                       failf "native result differs in shape on %s" (Cin.to_string plain)
                     else
                       Array.iteri
                         (fun idx x ->
                           if Int64.bits_of_float x <> Int64.bits_of_float b_opt.(idx)
                           then
                             failf
                               "native backend changed result bits at %d (%h vs %h) on %s"
                               idx x b_opt.(idx) (Cin.to_string plain))
                         nb));
          (* Parallel differential leg: when the outermost loop accepts
             the parallelize directive, the chunked executor must
             reproduce the sequential result bit for bit — optimized and
             unoptimized alike. Refusal (a reduction over the outer
             variable, a coiteration merge loop) is legitimate; an
             optimizer-dependent refusal or a divergent result is not. *)
          (match Schedule.stmt (Taco.schedule_of c) with
          | Cin.Forall (v, _) -> (
              match Taco.parallelize v (Taco.schedule_of c) with
              | Error _ -> ()
              | Ok ps -> (
                  let pcompile opt =
                    match Taco.compile ~checked:true ~opt ps with
                    | Ok pc -> Some pc
                    | Error d when d.Diag.code = "E_PAR_ILLEGAL" -> None
                    | Error d ->
                        failf "parallelized schedule stopped compiling: %s"
                          (Diag.to_string d)
                  in
                  let check_par what pc =
                    match Taco.run ~domains:4 pc ~inputs with
                    | Error d ->
                        failf "parallel %s run failed: %s" what (Diag.to_string d)
                    | Ok pr ->
                        let pb = D.buffer (T.to_dense pr) in
                        if Array.length pb <> Array.length b_opt then
                          failf "parallel %s result differs in shape on %s" what
                            (Cin.to_string plain)
                        else
                          Array.iteri
                            (fun idx x ->
                              if Int64.bits_of_float x <> Int64.bits_of_float b_opt.(idx)
                              then
                                failf
                                  "parallel %s changed result bits at %d (%h vs %h) on %s"
                                  what idx x b_opt.(idx) (Cin.to_string plain))
                            pb
                  in
                  match (pcompile Taco.Opt.all, pcompile Taco.Opt.none) with
                  | Some pc, Some pc_unopt ->
                      incr par_ran;
                      check_par "optimized" pc;
                      check_par "unoptimized" pc_unopt
                  | None, None -> ()
                  | Some _, None | None, Some _ ->
                      failf "the optimizer changed parallelizability on %s"
                        (Cin.to_string plain)))
          | _ -> ());
          (* Fault-injected leg: rerun compile + execute under a seeded
             crash campaign on the compile and allocation fault points.
             A run that fails must fail with the injected diagnostic —
             faults never corrupt silently — and a run the faults happen
             to miss must still reproduce the optimized bits exactly.
             (The injected [Diag.Error] can escape [Taco.compile] as an
             exception, hence the [Diag.to_result] wrapper.) *)
          Fault.configure
            ~seed:((2 * sc.seed) + 1)
            [
              Fault.rule ~prob:0.4 "compile.build" Fault.Crash;
              Fault.rule ~prob:0.3 "exec.alloc" Fault.Crash;
            ];
          Fun.protect ~finally:Fault.disarm (fun () ->
              let outcome =
                Diag.to_result (fun () ->
                    match compile_with Taco.Opt.all with
                    | Error d -> Error d
                    | Ok cf -> Taco.run cf ~inputs)
              in
              match Result.join outcome with
              | Error d when d.Diag.code = "E_FAULT_INJECTED" ->
                  incr fault_injected;
                  if not (List.mem_assoc "fault_point" d.Diag.context) then
                    failf "injected fault lost its fault_point context: %s"
                      (Diag.to_string d)
              | Error d ->
                  failf "non-injected failure under fault campaign: %s" (Diag.to_string d)
              | Ok fr ->
                  incr fault_survived;
                  let fb = D.buffer (T.to_dense fr) in
                  if Array.length fb <> Array.length b_opt then
                    failf "fault-leg result differs in shape on %s" (Cin.to_string plain)
                  else
                    Array.iteri
                      (fun idx x ->
                        if Int64.bits_of_float x <> Int64.bits_of_float b_opt.(idx) then
                          failf
                            "fault campaign changed result bits at %d (%h vs %h) on %s"
                            idx x b_opt.(idx) (Cin.to_string plain))
                      fb);
          (* Cost-search leg (auto-scheduled instances only): the
             statistics-driven policy must agree with the oracle, pick
             the same plan on a repeat call (the second goes through the
             plan cache), and — when its plan coincides with the
             schedule the main leg compiled — reproduce those bits
             exactly. Plans that legitimately differ (the cost model
             preferred another loop order) are only held to the eps
             oracle, since reassociating a float reduction may round
             differently. *)
          (if sc.sched mod 3 = 1 then
             let stats =
               List.map
                 (fun (tv, t) -> (Tensor_var.name tv, Taco.Stats.of_tensor t))
                 inputs
             in
             let explained () = Taco.auto_compile_explained ~checked:true ~stats sched in
             match (explained (), explained ()) with
             | Error d, _ ->
                 if not (acceptable_reject d) then
                   failf "cost-search compile rejection: %s" (Diag.to_string d)
             | Ok _, Error d ->
                 failf "cost search succeeded then failed on a repeat: %s" (Diag.to_string d)
             | Ok (cc, steps1, _), Ok (_, steps2, _) -> (
                 let render = List.map Taco.Autoschedule.step_to_string in
                 if render steps1 <> render steps2 then
                   failf "cost search picked different plans on a repeat of %s"
                     (Cin.to_string plain);
                 match Taco.run cc ~inputs with
                 | Error d ->
                     if not (acceptable_reject d) then
                       failf "cost-plan run failed: %s" (Diag.to_string d)
                 | Ok cr ->
                     incr cost_ran;
                     if not (D.equal ~eps:1e-9 oracle (T.to_dense cr)) then
                       failf "cost-plan MISMATCH vs the reference interpreter on %s"
                         (Cin.to_string plain);
                     if
                       Cin.to_string (Schedule.stmt (Taco.schedule_of cc))
                       = Cin.to_string (Schedule.stmt (Taco.schedule_of c))
                     then begin
                       let cb = D.buffer (T.to_dense cr) in
                       if Array.length cb <> Array.length b_opt then
                         failf "cost-plan result differs in shape on %s"
                           (Cin.to_string plain)
                       else
                         Array.iteri
                           (fun idx x ->
                             if Int64.bits_of_float x <> Int64.bits_of_float b_opt.(idx)
                             then
                               failf
                                 "cost plan equals the default schedule but changed \
                                  result bits at %d (%h vs %h) on %s"
                                 idx x b_opt.(idx) (Cin.to_string plain))
                           cb
                     end));
          Ran)

(* ------------------------------------------------------------------ *)
(* Semiring leg: closure vs native bit-identity                        *)
(* ------------------------------------------------------------------ *)

(* For every semiring, the native backend must reproduce the closure
   executor's bits exactly on spmv / spadd / spgemm-shaped kernels.
   Kernels are compiled once per (template, semiring, backend) and
   cached — only the inputs vary per instance — so the leg stays cheap
   even under the large fixed-seed campaign. *)

module Semiring = Taco_ir.Semiring
module Coo = Taco_tensor.Coo
module Prng = Taco_support.Prng

let sr_ran = ref 0

let sr_native_ran = ref 0

(* Carrier values the semiring's ops stay closed over; stored entries
   are never the carrier 0 (a stored zero is indistinguishable from a
   structural one). *)
let sr_value prng (sr : Semiring.t) =
  match sr.Semiring.name with
  | "bool_or_and" -> 1.
  | "min_plus" -> 1. +. float_of_int (Prng.int prng 9)
  | _ -> 0.5 +. Prng.float prng

let sr_matrix prng sr n m =
  let coo = Coo.create [| n; m |] in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      if Prng.bool prng 0.4 then Coo.push coo [| i; j |] (sr_value prng sr)
    done
  done;
  T.pack coo F.csr

(* Dense cells are literal carrier values and may include the semiring
   zero (+inf under min-plus — exercising the non-finite literal path
   through the C backend). *)
let sr_dense prng sr dims =
  let len = Array.fold_left ( * ) 1 dims in
  let buf =
    Array.init len (fun _ ->
        if Prng.bool prng 0.25 then sr.Semiring.zero else sr_value prng sr)
  in
  T.of_dense (D.of_buffer dims buf)
    (if Array.length dims = 1 then F.dense_vector else F.dense_matrix)

let sr_y = Tensor_var.make "y" ~order:1 ~format:F.dense_vector

let sr_a = Tensor_var.make "A" ~order:2 ~format:F.csr

let sr_x = Tensor_var.make "x" ~order:1 ~format:F.dense_vector

let sr_b = Tensor_var.make "B" ~order:2 ~format:F.csr

let sr_c = Tensor_var.make "C" ~order:2 ~format:F.csr

let sr_r = Tensor_var.make "R" ~order:2 ~format:F.dense_matrix

let sr_d = Tensor_var.make "D" ~order:2 ~format:F.dense_matrix

let sr_stmt = function
  | 0 -> I.assign sr_y [ vi ] (I.sum vj (I.Mul (I.access sr_a [ vi; vj ], I.access sr_x [ vj ])))
  | 1 -> I.assign sr_r [ vi; vj ] (I.Add (I.access sr_b [ vi; vj ], I.access sr_c [ vi; vj ]))
  | _ ->
      I.assign sr_r [ vi; vj ]
        (I.sum vk (I.Mul (I.access sr_b [ vi; vk ], I.access sr_d [ vk; vj ])))

let sr_cache : (string, Taco.compiled) Hashtbl.t = Hashtbl.create 32

let sr_compiled template sr backend =
  let key =
    Printf.sprintf "%d|%s|%s" template sr.Semiring.name
      (match backend with `Closure -> "closure" | `Native -> "native")
  in
  match Hashtbl.find_opt sr_cache key with
  | Some c -> c
  | None -> (
      let sched =
        match Schedule.of_index_notation (sr_stmt template) with
        | Ok s -> s
        | Error e -> failf "semiring leg: concretize failed on %s: %s" key e
      in
      match Taco.compile ~name:"fuzz_sr" ~semiring:sr ~backend sched with
      | Ok c ->
          Hashtbl.add sr_cache key c;
          c
      | Error d -> failf "semiring leg: compile failed on %s: %s" key (Diag.to_string d))

let run_sr (template, sel, n, m, k, seed) =
  let template = template mod 3 in
  let sr = List.nth Semiring.all (sel mod List.length Semiring.all) in
  let prng = Prng.create seed in
  let inputs =
    match template with
    | 0 -> [ (sr_a, sr_matrix prng sr n m); (sr_x, sr_dense prng sr [| m |]) ]
    | 1 -> [ (sr_b, sr_matrix prng sr n m); (sr_c, sr_matrix prng sr n m) ]
    | _ -> [ (sr_b, sr_matrix prng sr n k); (sr_d, sr_dense prng sr [| k; m |]) ]
  in
  let run backend =
    let c = sr_compiled template sr backend in
    match Taco.run c ~inputs with
    | Ok r -> (Taco.backend_of c, T.vals r)
    | Error d ->
        failf "semiring leg: %s run failed under %s: %s" sr.Semiring.name
          (match backend with `Closure -> "closure" | `Native -> "native")
          (Diag.to_string d)
  in
  let _, cb = run `Closure in
  incr sr_ran;
  if Taco_exec.Native.available () then begin
    let nbk, nb = run `Native in
    if nbk = `Native then incr sr_native_ran;
    if Array.length nb <> Array.length cb then
      failf "semiring leg: %s native result differs in shape" sr.Semiring.name
    else
      Array.iteri
        (fun idx x ->
          if Int64.bits_of_float x <> Int64.bits_of_float cb.(idx) then
            failf "semiring leg: %s native changed result bits at %d (%h vs %h)"
              sr.Semiring.name idx x cb.(idx))
        nb
  end

(* ------------------------------------------------------------------ *)
(* QCheck wiring                                                       *)
(* ------------------------------------------------------------------ *)

let scenario_gen =
  QCheck.Gen.(
    let* template = int_bound (Array.length templates - 1) in
    let* f0 = int_bound 7 and* f1 = int_bound 7 and* f2 = int_bound 7 in
    let* d0 = int_range 1 5
    and* d1 = int_range 1 5
    and* d2 = int_range 1 5
    and* d3 = int_range 1 4 in
    let* density = oneofl [ 0.0; 0.1; 0.3; 0.6; 1.0 ] in
    let* seed = int_bound 100_000 in
    let* sched = int_bound 2 in
    return
      {
        template;
        fmts = [| f0; f1; f2 |];
        dims = [| d0; d1; d2; d3 |];
        density;
        seed;
        sched;
      })

let scenario_print sc =
  Printf.sprintf "{template=%d; fmts=[|%d;%d;%d|]; dims=[|%d;%d;%d;%d|]; density=%.1f; seed=%d; sched=%d}"
    sc.template sc.fmts.(0) sc.fmts.(1) sc.fmts.(2) sc.dims.(0) sc.dims.(1) sc.dims.(2)
    sc.dims.(3) sc.density sc.seed sc.sched

let scenario_arb = QCheck.make ~print:scenario_print scenario_gen

let count =
  match Sys.getenv_opt "TACO_FUZZ_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 200)
  | None -> 200

let ran = ref 0

let rejected = ref 0


(* On failure, replay the failing scenario with tracing enabled and dump
   the Chrome trace next to the repro in the failure report, so the
   failing instance's pipeline (which transforms ran, which passes
   fired, what the executor did) can be inspected stage by stage. *)
let dump_failure_trace sc =
  let module Trace = Taco_support.Trace in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "taco_fuzz_t%d_s%d.trace.json" sc.template sc.seed)
  in
  Trace.clear ();
  Trace.enable ();
  (try ignore (run_one sc : outcome) with _ -> ());
  Trace.disable ();
  Trace.write_chrome path;
  Trace.clear ();
  path

let prop sc =
  match run_one sc with
  | Ran ->
      incr ran;
      true
  | Rejected ->
      incr rejected;
      true
  | exception Fuzz_failure msg ->
      let msg =
        match dump_failure_trace sc with
        | path -> Printf.sprintf "%s\n(pipeline trace of the failing instance: %s)" msg path
        | exception _ -> msg
      in
      QCheck.Test.fail_report msg

let test_pipeline_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name:"differential pipeline fuzz" scenario_arb prop)

let sr_scenario_gen =
  QCheck.Gen.(
    let* template = int_bound 2 and* sel = int_bound 3 in
    let* n = int_range 1 8 and* m = int_range 1 8 and* k = int_range 1 6 in
    let* seed = int_bound 100_000 in
    return (template, sel, n, m, k, seed))

let sr_scenario_print (template, sel, n, m, k, seed) =
  Printf.sprintf "{template=%d; semiring=%d; n=%d; m=%d; k=%d; seed=%d}" template sel n m k
    seed

let sr_prop sc =
  match run_sr sc with
  | () -> true
  | exception Fuzz_failure msg -> QCheck.Test.fail_report msg

let test_semiring_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name:"semiring closure vs native bit-identity"
       (QCheck.make ~print:sr_scenario_print sr_scenario_gen)
       sr_prop)

(* The campaign is only meaningful if it actually ran and a healthy
   share of instances made it all the way through the pipeline rather
   than being rejected. *)
let test_coverage () =
  Printf.printf
    "fuzz campaign: %d instances ran end to end (%d with a parallel leg, %d native, \
     %d cost-search), %d rejected; fault leg: %d injected, %d survived bit-identical; \
     semiring leg: %d ran, %d native\n%!"
    !ran !par_ran !native_ran !cost_ran !rejected !fault_injected !fault_survived !sr_ran
    !sr_native_ran;
  Alcotest.(check bool)
    (Printf.sprintf "semiring leg ran natively when a C compiler exists (%d)" !sr_native_ran)
    true
    (!sr_ran = 0 || (not (Taco_exec.Native.available ())) || !sr_native_ran > 0);
  Alcotest.(check bool)
    (Printf.sprintf "fault leg covered both outcomes (%d injected, %d survived)"
       !fault_injected !fault_survived)
    true
    (!ran = 0 || (!fault_injected > 0 && !fault_survived > 0));
  Alcotest.(check bool)
    (Printf.sprintf "campaign ran %d instances" count)
    true
    (!ran + !rejected >= count);
  Alcotest.(check bool)
    (Printf.sprintf "at least half the instances ran end to end (%d ran, %d rejected)" !ran
       !rejected)
    true
    (!ran * 2 >= !ran + !rejected)

let () =
  Alcotest.run "fuzz"
    [
      ( "pipeline",
        [
          test_pipeline_fuzz;
          test_semiring_fuzz;
          Alcotest.test_case "coverage" `Quick test_coverage;
        ] );
    ]
