(* Quickstart: the paper's Fig. 2 pipeline end to end.

   Builds a sparse matrix multiplication in index notation (parsed from a
   string), reorders to the linear-combination-of-rows form, precomputes
   the product into a dense row workspace, prints the concrete index
   notation and the generated C, then runs the kernel on small matrices.

   Run with: dune exec examples/quickstart.exe *)

open Taco

let get = function Ok x -> x | Error e -> failwith e

let getd = function
  | Ok x -> x
  | Error d -> failwith (Taco_support.Diag.to_string d)

let () =
  (* Create three square CSR matrices (Fig. 2 lines 2-4). *)
  let a = tensor "A" Format.csr in
  let b = tensor "B" Format.csr in
  let c = tensor "C" Format.csr in

  (* A sparse matrix multiplication in index notation (lines 7-9). *)
  let matmul =
    getd
      (Taco_frontend.Parser.parse_statement
         ~tensors:[ ("A", a); ("B", b); ("C", c) ]
         "A(i,j) = sum(k, B(i,k) * C(k,j))")
  in
  Printf.printf "index notation:  %s\n" (Index_notation.to_string matmul);

  let sched = get (Schedule.of_index_notation matmul) in
  Printf.printf "concretized:     %s\n" (Cin.to_string (Schedule.stmt sched));

  (* Reorder to linear combinations of rows (line 12). *)
  let k = ivar "k" and j = ivar "j" in
  let sched = get (Schedule.reorder k j sched) in
  Printf.printf "reordered:       %s\n" (Cin.to_string (Schedule.stmt sched));

  (* Precompute the product into a dense row workspace (lines 15-18). *)
  let row = workspace "w" Format.dense_vector in
  let mul =
    getd
      (Taco_frontend.Parser.parse_expr
         ~tensors:[ ("B", b); ("C", c) ]
         "B(i,k) * C(k,j)")
  in
  let mul = get (Schedule.expr_of_index_notation mul) in
  let jc = ivar "jc" and jp = ivar "jp" in
  let sched = get (Schedule.precompute ~expr:mul ~vars:[ (j, jc, jp) ] ~workspace:row sched) in
  Printf.printf "precomputed:     %s\n\n" (Cin.to_string (Schedule.stmt sched));

  (* Compile (fused assembly + compute, like Fig. 1d + Fig. 8). *)
  let compiled = getd (compile ~name:"spgemm" sched) in
  print_endline "generated C:";
  print_string (c_source compiled);

  (* Run on small random matrices. *)
  let prng = Taco_support.Prng.create 42 in
  let bt = Gen.random prng ~dims:[| 4; 5 |] ~nnz:8 Format.csr in
  let ct = Gen.random prng ~dims:[| 5; 4 |] ~nnz:8 Format.csr in
  let result = getd (run compiled ~inputs:[ (b, bt); (c, ct) ]) in
  Printf.printf "\nB: %s\nC: %s\nA = B*C: %s\n"
    (Stdlib.Format.asprintf "%a" Tensor.pp bt)
    (Stdlib.Format.asprintf "%a" Tensor.pp ct)
    (Stdlib.Format.asprintf "%a" Tensor.pp result);
  print_endline "\nresult values by coordinate:";
  Tensor.iteri_stored
    (fun coord v ->
      if v <> 0. then Printf.printf "  A(%d,%d) = %.4f\n" coord.(0) coord.(1) v)
    result
