(* A tour of the high-level layers built on the compiler:

   - Taco_ops: pre-packaged operations (matmul, add, spmv, sddmm, mttkrp,
     inner) that schedule themselves via the autoscheduler;
   - Io: Matrix Market files in and out;
   - auto_compile: the policy system finding the paper's schedules.

   Run with: dune exec examples/ops_tour.exe *)

open Taco
module Ops = Taco_ops.Ops

let get = function Ok x -> x | Error e -> failwith e

let getd = function
  | Ok x -> x
  | Error d -> failwith (Taco_support.Diag.to_string d)

let () =
  let prng = Taco_support.Prng.create 7 in

  (* A small sparse linear-algebra computation without writing a single
     schedule: y = (B·C + B)ᵀ x. *)
  let b = Gen.random_density prng ~dims:[| 300; 300 |] ~density:0.01 Format.csr in
  let c = Gen.random_density prng ~dims:[| 300; 300 |] ~density:0.01 Format.csr in
  let x = Tensor.of_dense (Gen.random_dense prng [| 300 |]) Format.dense_vector in
  let bc = get (Ops.matmul b c) in
  let s = get (Ops.add bc b) in
  let y = get (Ops.spmv (Ops.transpose s) x) in
  Printf.printf "B:      %s\n" (Stdlib.Format.asprintf "%a" Tensor.pp b);
  Printf.printf "B*C:    %s\n" (Stdlib.Format.asprintf "%a" Tensor.pp bc);
  Printf.printf "B*C+B:  %s\n" (Stdlib.Format.asprintf "%a" Tensor.pp s);
  Printf.printf "y:      %s\n\n" (Stdlib.Format.asprintf "%a" Tensor.pp y);

  (* SDDMM: sample a dense product at B's sparsity (used in graph
     attention and factorization residuals). *)
  let u = Tensor.of_dense (Gen.random_dense prng [| 300; 16 |]) Format.dense_matrix in
  let v = Tensor.of_dense (Gen.random_dense prng [| 16; 300 |]) Format.dense_matrix in
  let sampled = get (Ops.sddmm b u v) in
  Printf.printf "sddmm(B, U, V): %s (pattern of B)\n\n"
    (Stdlib.Format.asprintf "%a" Tensor.pp sampled);

  (* Round-trip through a Matrix Market file. *)
  let path = Filename.temp_file "ops_tour" ".mtx" in
  getd (Io.write_matrix_market path s);
  let reread = Tensor.pack (getd (Io.read_matrix_market path)) Format.csr in
  assert (Tensor.equal s reread);
  Printf.printf "matrix market round-trip through %s: ok\n\n" path;
  Sys.remove path;

  (* The autoscheduler explaining itself. *)
  let a = tensor "A" Format.csr in
  let bv = tensor "B" Format.csr in
  let cv = tensor "C" Format.csr in
  let i = ivar "i" and j = ivar "j" and k = ivar "k" in
  let stmt =
    Index_notation.assign a [ i; j ]
      (Index_notation.sum k
         (Index_notation.Mul (Index_notation.access bv [ i; k ], Index_notation.access cv [ k; j ])))
  in
  let sched = get (Schedule.of_index_notation stmt) in
  let compiled, steps = getd (auto_compile sched) in
  print_endline "autoscheduler on the raw SpGEMM statement:";
  List.iter (fun s -> Printf.printf "  %s\n" (Autoschedule.step_to_string s)) steps;
  Printf.printf "  final: %s\n" (cin_string compiled);

  (* The scalar inner product ties it together: ||y||² via the compiler. *)
  let norm2 = get (Ops.inner y y) in
  Printf.printf "\n||y||^2 = %.6f (computed by a generated kernel with an order-0 result)\n"
    norm2
