(* Validate a Chrome trace-event JSON file emitted by Taco's Trace
   module (the @trace-smoke gate).

   Usage: trace_check FILE [REQUIRED_SPAN ...]

   Checks, failing with a nonzero exit and a message on the first
   violation:

   - the file is well-formed JSON: an object whose "traceEvents" key
     holds an array of event objects;
   - every event has a string "ph" and a numeric "ts"; B/E/X/C/i events
     have a string "name";
   - timestamps are non-decreasing in array order (the exporter sorts);
   - B and E events balance like a stack per "tid" (spans nest within a
     domain; events from different domains interleave freely), with each
     E naming the span opened by the matching B on the same tid;
   - X (complete) events carry a numeric "dur" >= 0;
   - each REQUIRED_SPAN appears (as a B/E pair or an X event) with a
     strictly positive total duration. With no explicit names the
     default list covers the full pipeline: parse, concretize,
     schedule.reorder, schedule.precompute, lower, every default
     optimizer pass, codegen_c, compile, compile.build and exec.run.

   Stdlib only (no yojson in the image), so JSON parsing is a small
   recursive-descent parser over the subset trace files use. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* ---- parsing ---- *)

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        true
    | _ -> false
  do
    ()
  done

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail "expected %c at byte %d, found %c" c st.pos c'
  | None -> fail "expected %c at byte %d, found end of input" c st.pos

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string at byte %d" st.pos
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail "dangling escape at byte %d" st.pos
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then fail "truncated \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail "bad \\u escape %S" hex
            in
            (* Keep it simple: escapes in trace files are control chars. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_string b (Printf.sprintf "\\u%s" hex);
            st.pos <- st.pos + 4;
            go ()
        | Some c ->
            advance st;
            Buffer.add_char b
              (match c with
              | 'n' -> '\n'
              | 't' -> '\t'
              | 'r' -> '\r'
              | 'b' -> '\b'
              | 'f' -> '\012'
              | '"' | '\\' | '/' -> c
              | c -> fail "unknown escape \\%c" c);
            go ())
    | Some c ->
        advance st;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail "bad number %S at byte %d" s start

let parse_literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail "bad literal at byte %d" st.pos

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } at byte %d" st.pos
        in
        Obj (members [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail "expected , or ] at byte %d" st.pos
        in
        Arr (elements [])
      end
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse_document src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail "trailing bytes after JSON document at byte %d" st.pos;
  v

(* ---- schema checks ---- *)

let field obj k = match obj with Obj kvs -> List.assoc_opt k kvs | _ -> None

let str_field what obj k =
  match field obj k with
  | Some (Str s) -> s
  | Some _ -> fail "%s: %S is not a string" what k
  | None -> fail "%s: missing %S" what k

let num_field what obj k =
  match field obj k with
  | Some (Num f) -> f
  | Some _ -> fail "%s: %S is not a number" what k
  | None -> fail "%s: missing %S" what k

let default_required =
  [
    "parse";
    "concretize";
    "schedule.reorder";
    "schedule.precompute";
    "lower";
    "opt.simplify";
    "opt.memset_fusion";
    "opt.while_to_for";
    "opt.branch_fusion";
    "opt.cse";
    "opt.licm";
    "opt.simplify/cleanup";
    "opt.dce";
    "codegen_c";
    "compile";
    "compile.build";
    "exec.run";
  ]

let check_events events =
  (* Total observed duration per span name; built from both X events and
     balanced B/E pairs. *)
  let durations : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let record name dur =
    Hashtbl.replace durations name
      (dur +. try Hashtbl.find durations name with Not_found -> 0.)
  in
  (* One open-span stack per tid: spans nest within a domain, but events
     from different domains interleave in global timestamp order. *)
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 4 in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.replace stacks tid s;
        s
  in
  let last_ts = ref neg_infinity in
  List.iteri
    (fun i e ->
      let what = Printf.sprintf "event %d" i in
      let ph = str_field what e "ph" in
      let ts = num_field what e "ts" in
      let tid =
        match field e "tid" with
        | Some (Num f) -> int_of_float f
        | Some _ -> fail "%s: \"tid\" is not a number" what
        | None -> 0
      in
      if ts < !last_ts then
        fail "%s: timestamp %.3f goes backwards (previous %.3f)" what ts !last_ts;
      last_ts := ts;
      match ph with
      | "B" ->
          let name = str_field what e "name" in
          let stack = stack_of tid in
          stack := (name, ts) :: !stack
      | "E" -> (
          let name = str_field what e "name" in
          let stack = stack_of tid in
          match !stack with
          | (open_name, t0) :: tl ->
              if open_name <> name then
                fail "%s: E %S closes span %S on tid %d (misnested B/E)" what name
                  open_name tid;
              stack := tl;
              record name (ts -. t0)
          | [] -> fail "%s: E %S with no open span on tid %d" what name tid)
      | "X" ->
          let name = str_field what e "name" in
          let dur = num_field what e "dur" in
          if dur < 0. then fail "%s: X %S has negative dur %.3f" what name dur;
          record name dur
      | "C" | "i" -> ignore (str_field what e "name")
      | ph -> fail "%s: unknown phase %S" what ph)
    events;
  Hashtbl.iter
    (fun tid stack ->
      match !stack with
      | [] -> ()
      | (name, _) :: _ ->
          fail "unbalanced trace: span %S on tid %d is never closed" name tid)
    stacks;
  durations

let () =
  let file, required =
    match Array.to_list Sys.argv with
    | _ :: file :: rest -> (file, if rest = [] then default_required else rest)
    | _ ->
        prerr_endline "usage: trace_check FILE [REQUIRED_SPAN ...]";
        exit 2
  in
  let src =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match
    let doc = parse_document src in
    let events =
      match field doc "traceEvents" with
      | Some (Arr evs) -> evs
      | Some _ -> fail "\"traceEvents\" is not an array"
      | None -> fail "missing \"traceEvents\""
    in
    if events = [] then fail "empty trace";
    let durations = check_events events in
    List.iter
      (fun name ->
        match Hashtbl.find_opt durations name with
        | None -> fail "required span %S is missing from the trace" name
        | Some d when d <= 0. -> fail "required span %S has zero duration" name
        | Some _ -> ())
      required;
    (List.length events, Hashtbl.length durations)
  with
  | n_events, n_spans ->
      Printf.printf "trace_check: %s OK (%d events, %d span names, %d required spans present)\n"
        file n_events n_spans (List.length required)
  | exception Bad msg ->
      Printf.eprintf "trace_check: %s: %s\n" file msg;
      exit 1
