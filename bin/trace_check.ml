(* Validate a Chrome trace-event JSON file emitted by Taco's Trace
   module (the @trace-smoke gate).

   Usage: trace_check FILE [REQUIRED_SPAN ...]

   Checks, failing with a nonzero exit and a message on the first
   violation:

   - the file is well-formed JSON: an object whose "traceEvents" key
     holds an array of event objects;
   - every event has a string "ph" and a numeric "ts"; B/E/X/C/i events
     have a string "name";
   - timestamps are non-decreasing in array order (the exporter sorts);
   - B and E events balance like a stack per "tid" (spans nest within a
     domain; events from different domains interleave freely), with each
     E naming the span opened by the matching B on the same tid — i.e.
     every span is closed;
   - X (complete) events carry a numeric "dur" >= 0;
   - a "rid" argument (the service's request id, stamped by
     Trace.set_request_id) is a positive decimal integer, and the
     events of any one request id have non-decreasing timestamps;
   - each REQUIRED_SPAN appears (as a B/E pair or an X event) with a
     strictly positive total duration. With no explicit names the
     default list covers the full pipeline: parse, concretize,
     schedule.reorder, schedule.precompute, lower, every default
     optimizer pass, codegen_c, compile, compile.build and exec.run.

   JSON parsing is the shared stdlib-only Mini_json (no yojson in the
   image). *)

open Mini_json

let default_required =
  [
    "parse";
    "concretize";
    "schedule.reorder";
    "schedule.precompute";
    "lower";
    "opt.simplify";
    "opt.memset_fusion";
    "opt.while_to_for";
    "opt.branch_fusion";
    "opt.cse";
    "opt.licm";
    "opt.simplify/cleanup";
    "opt.dce";
    "codegen_c";
    "compile";
    "compile.build";
    "exec.run";
  ]

let check_events events =
  (* Total observed duration per span name; built from both X events and
     balanced B/E pairs. *)
  let durations : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let record name dur =
    Hashtbl.replace durations name
      (dur +. try Hashtbl.find durations name with Not_found -> 0.)
  in
  (* One open-span stack per tid: spans nest within a domain, but events
     from different domains interleave in global timestamp order. *)
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 4 in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.replace stacks tid s;
        s
  in
  (* Per-request-id timestamp high-water marks: a request's events must
     not go backwards even if the global sort ever changes. *)
  let rid_ts : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let rid_events = ref 0 in
  let check_rid what e ts =
    match field e "args" with
    | None -> ()
    | Some args -> (
        match field args "rid" with
        | None -> ()
        | Some (Str s) -> (
            match int_of_string_opt s with
            | Some rid when rid > 0 ->
                incr rid_events;
                (match Hashtbl.find_opt rid_ts rid with
                | Some prev when ts < prev ->
                    fail "%s: rid %d timestamp %.3f goes backwards (previous %.3f)"
                      what rid ts prev
                | _ -> ());
                Hashtbl.replace rid_ts rid ts
            | _ -> fail "%s: \"rid\" %S is not a positive integer" what s)
        | Some _ -> fail "%s: \"rid\" is not a string" what)
  in
  let last_ts = ref neg_infinity in
  List.iteri
    (fun i e ->
      let what = Printf.sprintf "event %d" i in
      let ph = str_field what e "ph" in
      let ts = num_field what e "ts" in
      let tid =
        match field e "tid" with
        | Some (Num f) -> int_of_float f
        | Some _ -> fail "%s: \"tid\" is not a number" what
        | None -> 0
      in
      if ts < !last_ts then
        fail "%s: timestamp %.3f goes backwards (previous %.3f)" what ts !last_ts;
      last_ts := ts;
      check_rid what e ts;
      match ph with
      | "B" ->
          let name = str_field what e "name" in
          let stack = stack_of tid in
          stack := (name, ts) :: !stack
      | "E" -> (
          let name = str_field what e "name" in
          let stack = stack_of tid in
          match !stack with
          | (open_name, t0) :: tl ->
              if open_name <> name then
                fail "%s: E %S closes span %S on tid %d (misnested B/E)" what name
                  open_name tid;
              stack := tl;
              record name (ts -. t0)
          | [] -> fail "%s: E %S with no open span on tid %d" what name tid)
      | "X" ->
          let name = str_field what e "name" in
          let dur = num_field what e "dur" in
          if dur < 0. then fail "%s: X %S has negative dur %.3f" what name dur;
          record name dur
      | "C" | "i" -> ignore (str_field what e "name")
      | ph -> fail "%s: unknown phase %S" what ph)
    events;
  Hashtbl.iter
    (fun tid stack ->
      match !stack with
      | [] -> ()
      | (name, _) :: _ ->
          fail "unbalanced trace: span %S on tid %d is never closed" name tid)
    stacks;
  (durations, Hashtbl.length rid_ts, !rid_events)

let () =
  let file, required =
    match Array.to_list Sys.argv with
    | _ :: file :: rest -> (file, if rest = [] then default_required else rest)
    | _ ->
        prerr_endline "usage: trace_check FILE [REQUIRED_SPAN ...]";
        exit 2
  in
  match
    let doc = of_file file in
    let events =
      match field doc "traceEvents" with
      | Some (Arr evs) -> evs
      | Some _ -> fail "\"traceEvents\" is not an array"
      | None -> fail "missing \"traceEvents\""
    in
    if events = [] then fail "empty trace";
    let durations, n_rids, n_rid_events = check_events events in
    List.iter
      (fun name ->
        match Hashtbl.find_opt durations name with
        | None -> fail "required span %S is missing from the trace" name
        | Some d when d <= 0. -> fail "required span %S has zero duration" name
        | Some _ -> ())
      required;
    (List.length events, Hashtbl.length durations, n_rids, n_rid_events)
  with
  | n_events, n_spans, n_rids, n_rid_events ->
      Printf.printf
        "trace_check: %s OK (%d events, %d span names, %d required spans present, \
         %d request ids over %d events)\n"
        file n_events n_spans (List.length required) n_rids n_rid_events
  | exception Bad msg ->
      Printf.eprintf "trace_check: %s: %s\n" file msg;
      exit 1
