(* Bench-drift detector (the @bench-drift gate).

   Usage: benchdiff [--tolerance PCT] BASELINE.json NEW.json

   Both files are bench reports (BENCH_*.json or the loadgen report):
   arbitrary JSON whose numeric leaves include measurements. benchdiff
   pairs up the measurement leaves of the two files by structural path,
   groups them by kernel/workload, and compares each group's geometric
   mean ratio new/baseline against the tolerance (default 10%).

   What counts as a measurement: a numeric leaf whose path contains a
   duration-ish segment (ending in _s/_ms/_ns/_us, or containing "time",
   "latency" or "elapsed") — lower is better; or a throughput-ish
   segment ("throughput", "rps", "speedup", "ops_per") — higher is
   better, so its ratio is inverted before aggregation. Counts, sizes
   and configuration numbers are ignored.

   Grouping: the nearest enclosing array element that carries a string
   "name", "kernel" or "workload" field names the group; leaves outside
   any named element fall into the file-level group "".

   Exit status: 0 when every group's geomean ratio is within tolerance,
   1 when any group regressed (each is reported), 2 on usage or parse
   errors. Improvements beyond tolerance are reported but do not fail —
   the gate guards against drift backwards, not forwards. *)

open Mini_json

let lower s = String.lowercase_ascii s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

let ends_with s suffix =
  let ls = String.length suffix and ln = String.length s in
  ln >= ls && String.sub s (ln - ls) ls = suffix

let duration_seg s =
  let s = lower s in
  ends_with s "_s" || ends_with s "_ms" || ends_with s "_ns" || ends_with s "_us"
  || contains s "time" || contains s "latency" || contains s "elapsed"

let throughput_seg s =
  let s = lower s in
  contains s "throughput" || contains s "rps" || contains s "speedup"
  || contains s "ops_per"

(* (group, path) -> (value, higher_better) *)
let flatten doc =
  let leaves : ((string * string) * (float * bool)) list ref = ref [] in
  let rec walk group path = function
    | Num v ->
        let higher = List.exists throughput_seg path in
        let is_dur = List.exists duration_seg path in
        if (is_dur || higher) && v > 0. then
          leaves :=
            ((group, String.concat "/" (List.rev path)), (v, higher)) :: !leaves
    | Obj kvs -> List.iter (fun (k, v) -> walk group (k :: path) v) kvs
    | Arr elems ->
        List.iteri
          (fun i e ->
            let seg, group' =
              let named k =
                match field e k with Some (Str s) -> Some s | _ -> None
              in
              match (named "name", named "kernel", named "workload") with
              | Some s, _, _ | None, Some s, _ | None, None, Some s -> (s, s)
              | None, None, None -> (string_of_int i, group)
            in
            walk group' (seg :: path) e)
          elems
    | Null | Bool _ | Str _ -> ()
  in
  walk "" [] doc;
  !leaves

let geomean = function
  | [] -> 1.
  | rs -> exp (List.fold_left (fun acc r -> acc +. log r) 0. rs /. float_of_int (List.length rs))

let () =
  let tolerance = ref 10. in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t >= 0. -> tolerance := t
        | _ ->
            prerr_endline "benchdiff: --tolerance expects a non-negative percentage";
            exit 2);
        parse_args rest
    | f :: rest ->
        files := f :: !files;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let base_file, new_file =
    match List.rev !files with
    | [ a; b ] -> (a, b)
    | _ ->
        prerr_endline "usage: benchdiff [--tolerance PCT] BASELINE.json NEW.json";
        exit 2
  in
  let load f =
    match of_file f with
    | doc -> flatten doc
    | exception Bad msg ->
        Printf.eprintf "benchdiff: %s: %s\n" f msg;
        exit 2
    | exception Sys_error msg ->
        Printf.eprintf "benchdiff: %s\n" msg;
        exit 2
  in
  let base = load base_file in
  let fresh = load new_file in
  (* Pair leaves by (group, path); ratio so that > 1 always means worse. *)
  let groups : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  let paired = ref 0 in
  List.iter
    (fun ((group, path), (v_new, higher)) ->
      match List.assoc_opt (group, path) base with
      | None -> ()
      | Some (v_old, _) ->
          incr paired;
          let ratio = if higher then v_old /. v_new else v_new /. v_old in
          let cell =
            match Hashtbl.find_opt groups group with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.replace groups group c;
                c
          in
          cell := ratio :: !cell)
    fresh;
  if !paired = 0 then begin
    Printf.eprintf
      "benchdiff: no measurement leaves in common between %s and %s\n" base_file
      new_file;
    exit 2
  end;
  let threshold = 1. +. (!tolerance /. 100.) in
  let rows =
    Hashtbl.fold (fun g c acc -> (g, geomean !c, List.length !c) :: acc) groups []
    |> List.sort compare
  in
  let regressed = ref [] in
  List.iter
    (fun (g, gm, n) ->
      let name = if g = "" then "(top level)" else g in
      let verdict =
        if gm > threshold then begin
          regressed := name :: !regressed;
          "REGRESSED"
        end
        else if gm < 1. /. threshold then "improved"
        else "ok"
      in
      Printf.printf "benchdiff: %-24s geomean %.4fx over %d measurements  %s\n" name
        gm n verdict)
    rows;
  if !regressed <> [] then begin
    Printf.eprintf "benchdiff: %d group(s) regressed beyond %.1f%%: %s\n"
      (List.length !regressed) !tolerance
      (String.concat ", " (List.rev !regressed));
    exit 1
  end
