(* A command-line tensor algebra compiler in the spirit of the taco tool
   [Kjolstad et al., ASE 2017], extended with the workspace scheduling of
   the CGO 2019 paper.

   Examples:

     # show concrete index notation and generated C for CSR matmul with
     # an automatically found schedule
     tacocli "A(i,j) = B(i,k) * C(k,j)" -f A:ds -f B:ds -f C:ds --auto --print-c

     # schedule manually, like the paper's Fig. 2
     tacocli "A(i,j) = B(i,k) * C(k,j)" -f A:ds -f B:ds -f C:ds \
        --reorder k,j --precompute "B(i,k) * C(k,j)|j|w" --print-cin

     # generate random inputs, run, and time the kernel
     tacocli "y(i) = B(i,j) * x(j)" -f B:ds -d B:5000,5000 --density 0.001 --time

     # serve evaluation requests over a line protocol (see `serve --help`)
     tacocli serve --domains 4 --queue-depth 32
*)

open Taco
module P = Taco_frontend.Parser
module Service = Taco_service.Service
module Diag = Taco_support.Diag

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("tacocli: " ^ s); exit 1) fmt

let get = function Ok v -> v | Error e -> die "%s" e

let getd = function
  | Ok v -> v
  | Error d -> die "%s" (Diag.to_string d)

(* Every failure leaves through [die]: one line on stderr, exit status 1,
   never a backtrace. *)
let protect f =
  try f () with
  | Diag.Error d -> die "%s" (Diag.to_string d)
  | Failure s -> die "%s" s
  | Invalid_argument s -> die "%s" s

let parse_format name order spec =
  let spec = if spec = "" then String.make (max order 1) 'd' else spec in
  if String.length spec <> order then
    die "format %s for %s has %d levels but the tensor has order %d" spec name
      (String.length spec) order;
  let levels =
    List.init order (fun l ->
        match spec.[l] with
        | 'd' -> Level.Dense
        | 's' -> Level.Compressed
        | c -> die "unknown level format %c in %s (use d or s)" c spec)
  in
  Format.of_levels levels

(* ------------------------------------------------------------------ *)
(* Main                                                                 *)
(* ------------------------------------------------------------------ *)

(* "--backend c" (or "native") requests the native C backend; it
   downgrades to closures — with a note on stderr — when no C compiler
   is around, matching the executor's never-fail contract. *)
let parse_backend = function
  | "closure" -> `Closure
  | "c" | "native" -> `Native
  | s -> die "unknown backend %S (use closure, or c for the native C backend)" s

let run_cli expr_str formats dims density seed reorders precomputes split_specs auto
    backend_str semiring_str print_cin print_c do_run do_time trace_file do_stats
    do_metrics do_explain =
  protect @@ fun () ->
  Obs.setup ();
  let backend = parse_backend backend_str in
  let semiring =
    match Semiring.of_string semiring_str with
    | Some sr -> sr
    | None ->
        die "unknown semiring %S (known: %s)" semiring_str
          (String.concat ", " Semiring.names)
  in
  let observing = trace_file <> None || do_stats in
  if observing then Trace.enable ();
  if do_metrics then Metrics.enable ();
  let parse_pair what s =
    match String.index_opt s ':' with
    | Some k -> (String.sub s 0 k, String.sub s (k + 1) (String.length s - k - 1))
    | None -> die "malformed %s %S (expected NAME:SPEC)" what s
  in
  let formats = List.map (parse_pair "-f") formats in
  let dims_spec = List.map (parse_pair "-d") dims in
  (* Build tensor variables. *)
  let names = P.scan_tensors expr_str in
  if names = [] then die "no tensors found in %S" expr_str;
  let tensors =
    List.map
      (fun (name, order) ->
        let fmt_spec = Option.value ~default:"" (List.assoc_opt name formats) in
        (name, Tensor_var.make name ~order ~format:(parse_format name order fmt_spec)))
      names
  in
  let stmt = getd (P.parse_statement ~tensors expr_str) in
  Printf.printf "statement:   %s\n" (Index_notation.to_string stmt);
  let sched = ref (get (Schedule.of_index_notation stmt)) in
  (* Manual schedule commands. *)
  List.iter
    (fun spec ->
      match String.split_on_char ',' spec with
      | [ a; b ] ->
          sched := get (Schedule.reorder (ivar (String.trim a)) (ivar (String.trim b)) !sched)
      | _ -> die "malformed --reorder %S (expected a,b)" spec)
    reorders;
  List.iteri
    (fun q spec ->
      match String.split_on_char '|' spec with
      | [ e; vars; ws ] ->
          let e = getd (P.parse_expr ~tensors e) in
          let e = get (Schedule.expr_of_index_notation e) in
          let over = List.map (fun v -> ivar (String.trim v)) (String.split_on_char ',' vars) in
          let w =
            Tensor_var.workspace
              (if ws = "" then Printf.sprintf "w%d" q else String.trim ws)
              ~order:(List.length over)
              ~format:(Format.dense (List.length over))
          in
          sched := get (Schedule.precompute_simple ~expr:e ~over ~workspace:w !sched)
      | _ -> die "malformed --precompute %S (expected EXPR|VARS|NAME)" spec)
    precomputes;
  let splits =
    List.map
      (fun spec ->
        match String.split_on_char ':' spec with
        | [ v; f ] -> (ivar (String.trim v), int_of_string (String.trim f))
        | _ -> die "malformed --split %S (expected VAR:FACTOR)" spec)
      split_specs
  in
  (* Compile, automatically scheduling if requested (or if needed and
     nothing manual was given). *)
  (* Profiling counters only exist in the closure executor; requesting
     them would pin a --backend c run to closures, so they win only when
     the closure backend was asked for anyway. *)
  let profile = observing && backend = `Closure in
  let compiled, steps, explain =
    if auto || do_explain then
      let c, steps, ex = getd (auto_compile_explained ~semiring ~profile ~backend !sched) in
      (c, steps, Some ex)
    else
      match compile ~splits ~semiring ~profile ~backend !sched with
      | Ok c -> (c, [], None)
      | Error e ->
          die "%s\n(hint: pass --auto to search for a schedule automatically)"
            (Diag.to_string e)
  in
  if backend = `Native && backend_of compiled = `Closure then
    prerr_endline
      "tacocli: native backend unavailable, running through the closure executor";
  List.iter (fun s -> Printf.printf "auto:        %s\n" (Autoschedule.step_to_string s)) steps;
  (match explain with
  | Some ex when do_explain ->
      Printf.printf
        "explain:     considered=%d lowerable=%d default_cost=%.4g chosen_cost=%.4g \
         search_us=%Ld cache=%s\n"
        ex.Autoschedule.e_considered ex.Autoschedule.e_lowerable
        ex.Autoschedule.e_default_cost ex.Autoschedule.e_chosen_cost
        (Int64.div ex.Autoschedule.e_search_ns 1000L)
        (if ex.Autoschedule.e_cache_hit then "hit" else "miss");
      List.iter
        (fun (s, c) -> Printf.printf "candidate:   cost=%.4g  %s\n" c s)
        ex.Autoschedule.e_top
  | Some _ | None -> ());
  Printf.printf "concrete:    %s\n" (cin_string compiled);
  if print_cin then ();
  if print_c then begin
    print_endline "";
    print_string (c_source compiled)
  end;
  if do_run || do_time then begin
    (* Random inputs: dimensions from -d (default 1000 per mode). *)
    let prng = Taco_support.Prng.create seed in
    let result_name =
      Tensor_var.name (Kernel.info (kernel compiled)).Lower.result
    in
    let dim_env : (string, int array) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (name, spec) ->
        let ds = String.split_on_char ',' spec |> List.map int_of_string |> Array.of_list in
        Hashtbl.replace dim_env name ds)
      dims_spec;
    (* Unify index variable ranges across accesses. *)
    let ranges : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let rec walk = function
      | Index_notation.Access (tv, idxs) ->
          let name = Tensor_var.name tv in
          List.iteri
            (fun m v ->
              let key = Index_var.name v in
              let from_spec =
                match Hashtbl.find_opt dim_env name with
                | Some ds when Array.length ds > m -> Some ds.(m)
                | Some _ | None -> None
              in
              match (from_spec, Hashtbl.find_opt ranges key) with
              | Some d, _ -> Hashtbl.replace ranges key d
              | None, Some _ -> ()
              | None, None -> Hashtbl.replace ranges key 1000)
            idxs
      | Index_notation.Literal _ -> ()
      | Index_notation.Neg e | Index_notation.Sum (_, e) -> walk e
      | Index_notation.Add (a, b)
      | Index_notation.Sub (a, b)
      | Index_notation.Mul (a, b)
      | Index_notation.Div (a, b) ->
          walk a;
          walk b
    in
    walk stmt.Index_notation.rhs;
    List.iteri
      (fun m v -> Hashtbl.replace ranges (Index_var.name v)
          (match Hashtbl.find_opt dim_env result_name with
          | Some ds when Array.length ds > m -> ds.(m)
          | Some _ | None ->
              Option.value ~default:1000 (Hashtbl.find_opt ranges (Index_var.name v))))
      stmt.Index_notation.lhs_indices;
    let inputs =
      List.filter_map
        (fun (name, tv) ->
          if name = result_name then None
          else begin
            (* Reconstruct dims from the access. *)
            let rec find_access = function
              | Index_notation.Access (t, idxs) when Tensor_var.equal t tv -> Some idxs
              | Index_notation.Access _ | Index_notation.Literal _ -> None
              | Index_notation.Neg e | Index_notation.Sum (_, e) -> find_access e
              | Index_notation.Add (a, b)
              | Index_notation.Sub (a, b)
              | Index_notation.Mul (a, b)
              | Index_notation.Div (a, b) -> (
                  match find_access a with Some r -> Some r | None -> find_access b)
            in
            match find_access stmt.Index_notation.rhs with
            | None -> None
            | Some idxs ->
                let ds =
                  Array.of_list
                    (List.map (fun v -> Hashtbl.find ranges (Index_var.name v)) idxs)
                in
                let t =
                  if Format.is_all_dense (Tensor_var.format tv) then
                    Tensor.of_dense (Gen.random_dense prng ds) (Tensor_var.format tv)
                  else Gen.random_density prng ~dims:ds ~density (Tensor_var.format tv)
                in
                Printf.printf "input %s: %s\n" name (Stdlib.Format.asprintf "%a" Tensor.pp t);
                Some (tv, t)
          end)
        tensors
    in
    let (result, elapsed) = Taco_support.Util.time (fun () -> getd (run compiled ~inputs)) in
    Printf.printf "result %s: %s\n" result_name (Stdlib.Format.asprintf "%a" Tensor.pp result);
    if do_time then Printf.printf "time: %.6f s\n" elapsed
  end;
  if do_stats then begin
    prerr_string (Trace.summary ());
    match Kernel.profile_stats (kernel compiled) with
    | None -> ()
    | Some s ->
        Printf.eprintf
          "kernel counters: iterations=%d scalar_ops=%d allocs=%d alloc_elems=%d \
           zero_bytes=%d reallocs=%d sorts=%d\n"
          s.Compile.iterations s.Compile.scalar_ops s.Compile.allocs s.Compile.alloc_elems
          s.Compile.zero_bytes s.Compile.reallocs s.Compile.sorts
  end;
  if do_metrics then prerr_string (Metrics.to_prometheus ());
  match trace_file with
  | None -> ()
  | Some file ->
      Trace.write_chrome file;
      Printf.eprintf "trace written to %s\n" file

(* ------------------------------------------------------------------ *)
(* serve: a line protocol over stdin or a Unix socket                   *)
(* ------------------------------------------------------------------ *)

(* Per-line failures in a serve session raise [Diag.Error] (or [Failure]
   from int_of_string and friends); the session loop converts them to a
   one-line "error …" response and keeps serving. *)
let fail_input fmt = Diag.fail ~stage:Diag.Serve ~code:"E_SERVE_INPUT" fmt

let protocol_help =
  String.concat "\n"
    [
      "ok commands:";
      "  tensor NAME FMT DIMS [density D] [seed N]   make a random tensor,";
      "         e.g.: tensor B ds 1000,1000 density 0.01";
      "  eval EXPR [; CLAUSE]...                     evaluate and wait;";
      "         clauses: reorder A,B | precompute EXPR|VARS|NAME | parallelize V | domains N | auto";
      "                  format NAME:FMT (result storage) | deadline MS | backend c|closure";
      "                  semiring NAME (plus_times | min_plus | max_times | bool_or_and)";
      "  eval& EXPR [; CLAUSE]...                    evaluate asynchronously,";
      "         returns 'ok ticket ID'";
      "  wait ID                                     await an eval& ticket";
      "  stats                                       service counters as one JSON line";
      "  metrics                                     Prometheus text exposition of the";
      "         metrics registry, framed as 'ok metrics N' + N lines";
      "  quit                                        end this session";
      "  stop                                        (socket mode) stop the server";
    ]

(* "keyword rest-of-line" *)
let split_word s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))

let words s = String.split_on_char ' ' s |> List.filter (( <> ) "")

let make_tensor tensors args =
  match args with
  | name :: fmt_spec :: dims :: opts ->
      let dims =
        try String.split_on_char ',' dims |> List.map int_of_string |> Array.of_list
        with Failure _ -> fail_input "malformed dimensions %S" dims
      in
      let order = Array.length dims in
      if String.length fmt_spec <> order
         || String.exists (fun c -> c <> 'd' && c <> 's') fmt_spec
      then fail_input "format %S does not fit a tensor of order %d" fmt_spec order;
      let fmt =
        Format.of_levels
          (List.init order (fun l ->
               if fmt_spec.[l] = 'd' then Level.Dense else Level.Compressed))
      in
      let rec parse_opts density seed = function
        | [] -> (density, seed)
        | "density" :: v :: rest -> parse_opts (float_of_string v) seed rest
        | "seed" :: v :: rest -> parse_opts density (int_of_string v) rest
        | w :: _ -> fail_input "unknown tensor option %S" w
      in
      let density, seed = parse_opts 0.05 42 opts in
      let prng = Taco_support.Prng.create seed in
      let t =
        if Format.is_all_dense fmt then Tensor.of_dense (Gen.random_dense prng dims) fmt
        else Gen.random_density prng ~dims ~density fmt
      in
      Hashtbl.replace tensors name t;
      Printf.sprintf "ok tensor %s nnz=%d" name (Tensor.nnz t)
  | _ -> fail_input "usage: tensor NAME FMT DIMS [density D] [seed N]"

let build_request tensors line =
  match List.map String.trim (String.split_on_char ';' line) with
  | [] | "" :: _ -> fail_input "usage: eval EXPR [; CLAUSE]..."
  | expr :: clauses ->
      let deadline = ref None and directives = ref [] and fmt_clause = ref None in
      let domains = ref None and backend = ref None and semiring = ref None in
      List.iter
        (fun clause ->
          if clause <> "" then
            match split_word clause with
            | "auto", "" -> directives := Service.Auto :: !directives
            | "reorder", arg -> (
                match String.split_on_char ',' arg with
                | [ a; b ] ->
                    directives := Service.Reorder (String.trim a, String.trim b) :: !directives
                | _ -> fail_input "malformed reorder %S (expected A,B)" arg)
            | "precompute", arg -> (
                match String.split_on_char '|' arg with
                | [ e; vars; w ] ->
                    directives :=
                      Service.Precompute
                        {
                          expr = String.trim e;
                          over = List.map String.trim (String.split_on_char ',' vars);
                          workspace = String.trim w;
                        }
                      :: !directives
                | _ -> fail_input "malformed precompute %S (expected EXPR|VARS|NAME)" arg)
            | "parallelize", arg -> (
                match String.trim arg with
                | "" -> fail_input "malformed parallelize (expected an index variable)"
                | v -> directives := Service.Parallelize v :: !directives)
            | "domains", arg -> domains := Some (int_of_string arg)
            | "deadline", arg -> deadline := Some (int_of_string arg)
            | "backend", arg -> (
                match String.trim arg with
                | "closure" -> backend := Some `Closure
                | "c" | "native" -> backend := Some `Native
                | b -> fail_input "unknown backend %S (use c or closure)" b)
            | "semiring", arg -> (
                (* Validated again service-side; rejecting unknown names
                   here keeps the error on the offending line. *)
                match Semiring.of_string (String.trim arg) with
                | Some _ -> semiring := Some (String.trim arg)
                | None ->
                    fail_input "unknown semiring %S (known: %s)" (String.trim arg)
                      (String.concat ", " Semiring.names))
            | "format", arg -> (
                match String.index_opt arg ':' with
                | Some k ->
                    fmt_clause :=
                      Some
                        ( String.sub arg 0 k,
                          String.sub arg (k + 1) (String.length arg - k - 1) )
                | None -> fail_input "malformed format %S (expected NAME:FMT)" arg)
            | kw, _ -> fail_input "unknown clause %S" kw)
        clauses;
      let scanned = P.scan_tensors expr in
      (match scanned with
      | [] -> fail_input "no tensor access found in %S" expr
      | (result, result_order) :: _ ->
          let result_format =
            match !fmt_clause with
            | None -> None
            | Some (name, spec) when name = result ->
                Some (parse_format name result_order spec)
            | Some (name, _) ->
                fail_input "format clause names %s, not the result tensor %s" name result
          in
          let inputs =
            List.filter_map
              (fun (name, _) ->
                if name = result then None
                else
                  Option.map (fun t -> (name, t)) (Hashtbl.find_opt tensors name))
              scanned
          in
          ( Service.request ~directives:(List.rev !directives) ?result_format
              ?domains:!domains ?backend:!backend ?semiring:!semiring ~expr ~inputs (),
            !deadline ))

let response_line = function
  | Ok (r : Service.response) ->
      Printf.sprintf "ok result dims=%s nnz=%d kernel=%s wait_us=%Ld run_us=%Ld"
        (String.concat "x" (List.map string_of_int (Array.to_list (Tensor.dims r.tensor))))
        (Tensor.nnz r.tensor) r.Service.kernel_name
        (Int64.div r.Service.wait_ns 1000L)
        (Int64.div r.Service.run_ns 1000L)
  | Error d -> "error " ^ Diag.to_string d

let run_serve domains queue_depth socket trace_file =
  protect @@ fun () ->
  Obs.setup ();
  if trace_file <> None then Trace.enable ();
  (* Metrics are always on in a serving process: the registry is cheap
     (lock-free per-domain shards) and a server that cannot answer
     `metrics` is flying blind. *)
  Metrics.enable ();
  let svc = Service.create ~domains ~queue_depth () in
  let tensors : (string, Tensor.t) Hashtbl.t = Hashtbl.create 16 in
  let tickets : (int, Service.ticket) Hashtbl.t = Hashtbl.create 16 in
  let next_ticket = ref 0 in
  let stop_server = ref false in
  let handle_line line =
    let cmd, rest = split_word line in
    match cmd with
    | "" -> None
    | _ when cmd.[0] = '#' -> None
    | "tensor" -> Some (make_tensor tensors (words rest))
    | "eval" | "eval&" -> (
        let req, deadline_ms = build_request tensors rest in
        match Service.submit svc ?deadline_ms req with
        | Error d -> Some ("error " ^ Diag.to_string d)
        | Ok ticket ->
            if cmd = "eval" then Some (response_line (Service.await ticket))
            else begin
              incr next_ticket;
              Hashtbl.replace tickets !next_ticket ticket;
              Some (Printf.sprintf "ok ticket %d" !next_ticket)
            end)
    | "wait" -> (
        let id = try int_of_string rest with Failure _ -> fail_input "usage: wait ID" in
        match Hashtbl.find_opt tickets id with
        | None -> fail_input "unknown ticket %d" id
        | Some t ->
            Hashtbl.remove tickets id;
            Some (response_line (Service.await t)))
    | "stats" ->
        (* One JSON line, so scrapers and the fixture test can consume
           it without a protocol parser. The p50/p99 fields come from
           the metrics registry's latency histograms (merged across all
           backend/outcome series); 0 on a fresh session. *)
        let s = Service.stats svc in
        let c = Compile.cache_stats () in
        let pc = Autoschedule.cache_stats () in
        let q_us name q =
          match Metrics.quantile_ns name q with
          | None -> 0
          | Some ns -> int_of_float (ns /. 1e3)
        in
        Some
          (Printf.sprintf
             "{\"queue\":%d,\"domains\":%d,\"live_workers\":%d,\"peak_workers\":%d,\
              \"submitted\":%d,\"completed\":%d,\"rejected\":%d,\"timed_out\":%d,\
              \"failed\":%d,\"peak_queue\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\
              \"plan_hits\":%d,\"plan_misses\":%d,\
              \"shed\":%d,\"crashed\":%d,\"replaced\":%d,\"quarantined\":%d,\
              \"exec_native\":%d,\"exec_closure\":%d,\"backend_downgraded\":%d,\
              \"wait_p50_us\":%d,\"wait_p99_us\":%d,\"run_p50_us\":%d,\"run_p99_us\":%d}"
             (Service.queue_length svc) (Service.domains svc) s.Service.live_workers
             s.Service.peak_workers s.Service.submitted s.Service.completed
             s.Service.rejected s.Service.timed_out s.Service.failed s.Service.peak_queue
             c.Compile.hits c.Compile.misses pc.Plan_cache.hits pc.Plan_cache.misses
             s.Service.shed s.Service.crashed
             s.Service.replaced s.Service.quarantined s.Service.exec_native
             s.Service.exec_closure s.Service.backend_downgraded
             (q_us "taco_serve_wait_seconds" 0.5)
             (q_us "taco_serve_wait_seconds" 0.99)
             (q_us "taco_serve_run_seconds" 0.5)
             (q_us "taco_serve_run_seconds" 0.99))
    | "metrics" ->
        (* Prometheus text exposition, framed for the line protocol:
           "ok metrics N" then exactly N exposition lines, so a client
           (or the @metrics-smoke checker) can cut them out of a session
           transcript without guessing where they end. *)
        let text = Metrics.to_prometheus () in
        let lines = String.split_on_char '\n' text |> List.filter (( <> ) "") in
        Some
          (String.concat "\n"
             (Printf.sprintf "ok metrics %d" (List.length lines) :: lines))
    | "help" -> Some protocol_help
    | "quit" -> raise Exit
    | "stop" ->
        stop_server := true;
        raise Exit
    | _ -> fail_input "unknown command %S (try help)" cmd
  in
  let session ic oc =
    let out s =
      output_string oc s;
      output_char oc '\n';
      flush oc
    in
    out (Printf.sprintf "ok taco serve domains=%d queue_depth=%d" domains queue_depth);
    let rec loop () =
      match input_line ic with
      | exception End_of_file -> ()
      | line ->
          (match handle_line line with
          | resp -> Option.iter out resp
          | exception Exit -> out "ok bye"; raise Exit
          | exception Diag.Error d -> out ("error " ^ Diag.to_string d)
          | exception Failure s ->
              out
                ("error "
                ^ Diag.to_string
                    (Diag.make ~stage:Diag.Serve ~code:"E_SERVE_INPUT" s)));
          loop ()
    in
    try loop () with Exit -> ()
  in
  (match socket with
  | None -> session stdin stdout
  | Some path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      Printf.eprintf "tacocli serve: listening on %s\n%!" path;
      (* Sessions are sequential: one client at a time; concurrency lives
         in the worker pool behind the queue, not in the accept loop. *)
      while not !stop_server do
        let client, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr client in
        let oc = Unix.out_channel_of_descr client in
        (try session ic oc with End_of_file | Sys_error _ -> ());
        (try Unix.close client with Unix.Unix_error _ -> ())
      done;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ());
  Service.shutdown svc;
  let s = Service.stats svc in
  Printf.eprintf
    "tacocli serve: submitted=%d rejected=%d completed=%d timed_out=%d failed=%d peak_queue=%d\n"
    s.Service.submitted s.Service.rejected s.Service.completed s.Service.timed_out
    s.Service.failed s.Service.peak_queue;
  match trace_file with
  | None -> ()
  | Some file ->
      Trace.write_chrome file;
      Printf.eprintf "trace written to %s\n" file

(* ------------------------------------------------------------------ *)
(* graph: the semiring-kernel workloads on a random graph               *)
(* ------------------------------------------------------------------ *)

module G = Taco_graph.Graph

let run_graph workload nodes edge_prob seed src backend_str damping =
  protect @@ fun () ->
  let backend = parse_backend backend_str in
  if nodes < 1 then die "need at least one node";
  if src < 0 || src >= nodes then die "source node %d out of range [0, %d)" src nodes;
  let prng = Taco_support.Prng.create seed in
  let coo = Taco_tensor.Coo.create [| nodes; nodes |] in
  let edges = ref 0 in
  (* Triangles need a symmetric 0/1 adjacency; Bellman-Ford strictly
     positive weights; BFS and PageRank take any non-zero weights. *)
  (match workload with
  | "triangles" ->
      for i = 0 to nodes - 1 do
        for j = i + 1 to nodes - 1 do
          if Taco_support.Prng.bool prng edge_prob then begin
            Taco_tensor.Coo.push coo [| i; j |] 1.;
            Taco_tensor.Coo.push coo [| j; i |] 1.;
            edges := !edges + 2
          end
        done
      done
  | _ ->
      for i = 0 to nodes - 1 do
        for j = 0 to nodes - 1 do
          if i <> j && Taco_support.Prng.bool prng edge_prob then begin
            let w =
              if workload = "bellman-ford" then
                0.5 +. (5. *. Taco_support.Prng.float prng)
              else 1.
            in
            Taco_tensor.Coo.push coo [| i; j |] w;
            incr edges
          end
        done
      done);
  let a = Tensor.pack coo Format.csr in
  Printf.printf "graph: %d nodes, %d edges (seed %d)\n" nodes !edges seed;
  match workload with
  | "pagerank" ->
      let ranks, iters = get (G.pagerank ~backend ~damping a) in
      Printf.printf "pagerank: converged in %d iterations (damping %g)\n" iters damping;
      let order = Array.init nodes (fun i -> i) in
      Array.sort (fun i j -> compare ranks.(j) ranks.(i)) order;
      Array.iteri
        (fun k i -> if k < 5 then Printf.printf "  #%d node %d: %.6f\n" (k + 1) i ranks.(i))
        order
  | "bfs" ->
      let levels, rounds = get (G.bfs ~backend a ~src) in
      let reached = Array.fold_left (fun n l -> if l >= 0 then n + 1 else n) 0 levels in
      let depth = Array.fold_left max 0 levels in
      Printf.printf "bfs: from %d reached %d/%d nodes, depth %d, %d frontier expansions\n"
        src reached nodes depth rounds;
      if nodes <= 20 then
        Array.iteri
          (fun i l ->
            Printf.printf "  node %d: %s\n" i
              (if l < 0 then "unreachable" else string_of_int l))
          levels
  | "bellman-ford" ->
      let dist, rounds = get (G.bellman_ford ~backend a ~src) in
      let reached = Array.fold_left (fun n d -> if d < infinity then n + 1 else n) 0 dist in
      Printf.printf "bellman-ford: from %d reached %d/%d nodes in %d relaxation rounds\n"
        src reached nodes rounds;
      if nodes <= 20 then
        Array.iteri
          (fun i d ->
            Printf.printf "  node %d: %s\n" i
              (if d = infinity then "unreachable" else Printf.sprintf "%g" d))
          dist
  | "triangles" ->
      let t = get (G.triangle_count ~backend a) in
      Printf.printf "triangles: %.0f\n" t
  | w -> die "unknown graph workload %S (pagerank, bfs, bellman-ford, triangles)" w

(* ------------------------------------------------------------------ *)
(* Command line                                                         *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let expr_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR" ~doc:"Index notation statement.")

let formats_arg =
  Arg.(value & opt_all string [] & info [ "f" ] ~docv:"NAME:FMT" ~doc:"Tensor format, one d(ense)/s(parse) letter per mode, e.g. A:ds for CSR.")

let dims_arg =
  Arg.(value & opt_all string [] & info [ "d" ] ~docv:"NAME:DIMS" ~doc:"Tensor dimensions for --run, e.g. B:5000,5000.")

let density_arg =
  Arg.(value & opt float 0.01 & info [ "density" ] ~doc:"Density of random sparse inputs.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

let reorder_arg =
  Arg.(value & opt_all string [] & info [ "reorder" ] ~docv:"A,B" ~doc:"Exchange two index variables (repeatable).")

let precompute_arg =
  Arg.(value & opt_all string [] & info [ "precompute" ] ~docv:"EXPR|VARS|NAME" ~doc:"Precompute EXPR over VARS into workspace NAME (repeatable).")

let split_arg =
  Arg.(value & opt_all string [] & info [ "split" ] ~docv:"VAR:FACTOR" ~doc:"Strip-mine a dense loop (repeatable).")

let auto_arg = Arg.(value & flag & info [ "auto" ] ~doc:"Search for a schedule automatically.")

let backend_arg =
  Arg.(value & opt string "closure"
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"Execution backend: closure (default) interprets the kernel in-process; \
                 c (or native) compiles the generated C into a shared object with the \
                 system compiler and runs that, falling back to closure when no \
                 compiler is available.")

let semiring_arg =
  Arg.(value & opt string "plus_times"
       & info [ "semiring" ] ~docv:"NAME"
           ~doc:"Semiring to evaluate under: plus_times (default), min_plus (tropical: \
                 shortest paths), max_times, or bool_or_and (reachability). Sparse \
                 absent entries act as the semiring zero; dense operand cells are \
                 literal carrier values.")

let print_cin_arg = Arg.(value & flag & info [ "print-cin" ] ~doc:"Print concrete index notation (always shown).")

let print_c_arg = Arg.(value & flag & info [ "print-c" ] ~doc:"Print the generated C code.")

let run_arg = Arg.(value & flag & info [ "run" ] ~doc:"Run the kernel on random inputs.")

let time_arg = Arg.(value & flag & info [ "time" ] ~doc:"Run and report wall-clock time.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Trace the whole pipeline (parse through kernel execution) and \
               write Chrome trace-event JSON to FILE (load in Perfetto or \
               chrome://tracing).")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print a span/counter summary and kernel work counters to stderr.")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
       ~doc:"Record metrics (latency histograms per pipeline stage, counters) \
             and dump the registry in Prometheus text exposition to stderr on exit.")

let explain_arg =
  Arg.(value & flag & info [ "explain" ]
       ~doc:"Autoschedule (implies --auto) and print the plan search's audit \
             record: candidates considered, estimated default vs. chosen cost, \
             search time, and the cheapest alternatives.")

let serve_cmd =
  let domains_arg =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Worker domains in the pool.")
  in
  let depth_arg =
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N" ~doc:"Bound of the submission queue; further submissions are rejected.")
  in
  let socket_arg =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix domain socket at PATH (sequential sessions) instead of stdin.")
  in
  let serve_trace_arg =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write Chrome trace-event JSON for all served requests on shutdown.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the concurrent evaluation service over a line protocol (type 'help' at the prompt).")
    Term.(const run_serve $ domains_arg $ depth_arg $ socket_arg $ serve_trace_arg)

let graph_cmd =
  let workload_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"WORKLOAD"
             ~doc:"One of pagerank, bfs, bellman-ford, triangles.")
  in
  let nodes_arg =
    Arg.(value & opt int 200 & info [ "nodes" ] ~docv:"N" ~doc:"Number of graph nodes.")
  in
  let prob_arg =
    Arg.(value & opt float 0.02
         & info [ "edge-prob" ] ~docv:"P" ~doc:"Probability of each possible edge.")
  in
  let gseed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")
  in
  let src_arg =
    Arg.(value & opt int 0 & info [ "src" ] ~docv:"NODE" ~doc:"Source node for bfs and bellman-ford.")
  in
  let damping_arg =
    Arg.(value & opt float 0.85 & info [ "damping" ] ~doc:"PageRank damping factor.")
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:"Run a graph workload (PageRank, BFS, Bellman-Ford, triangle counting) on \
             a random graph via semiring-generalized compiled kernels: BFS iterates a \
             boolean or-and SpMV, Bellman-Ford a min-plus SpMV, to fixpoint.")
    Term.(const run_graph $ workload_arg $ nodes_arg $ prob_arg $ gseed_arg $ src_arg
          $ backend_arg $ damping_arg)

let () =
  let term =
    Term.(
      const run_cli $ expr_arg $ formats_arg $ dims_arg $ density_arg $ seed_arg
      $ reorder_arg $ precompute_arg $ split_arg $ auto_arg $ backend_arg
      $ semiring_arg $ print_cin_arg $ print_c_arg $ run_arg $ time_arg $ trace_arg
      $ stats_arg $ metrics_arg $ explain_arg)
  in
  let info =
    Cmd.info "tacocli"
      ~doc:"Compile and run sparse tensor algebra expressions with workspaces \
            (or serve them: see the serve subcommand)."
  in
  (* A positional EXPR can be anything, so [Cmd.group ~default] cannot
     distinguish it from an unknown subcommand — dispatch by hand. *)
  if Array.length Sys.argv > 1 && (Sys.argv.(1) = "serve" || Sys.argv.(1) = "graph")
  then exit (Cmd.eval (Cmd.group info [ serve_cmd; graph_cmd ]))
  else exit (Cmd.eval (Cmd.v info term))
