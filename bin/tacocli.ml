(* A command-line tensor algebra compiler in the spirit of the taco tool
   [Kjolstad et al., ASE 2017], extended with the workspace scheduling of
   the CGO 2019 paper.

   Examples:

     # show concrete index notation and generated C for CSR matmul with
     # an automatically found schedule
     tacocli "A(i,j) = B(i,k) * C(k,j)" -f A:ds -f B:ds -f C:ds --auto --print-c

     # schedule manually, like the paper's Fig. 2
     tacocli "A(i,j) = B(i,k) * C(k,j)" -f A:ds -f B:ds -f C:ds \
        --reorder k,j --precompute "B(i,k) * C(k,j)|j|w" --print-cin

     # generate random inputs, run, and time the kernel
     tacocli "y(i) = B(i,j) * x(j)" -f B:ds -d B:5000,5000 --density 0.001 --time
*)

open Taco
module P = Taco_frontend.Parser

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("tacocli: " ^ s); exit 1) fmt

let get = function Ok v -> v | Error e -> die "%s" e

let getd = function
  | Ok v -> v
  | Error d -> die "%s" (Taco_support.Diag.to_string d)

(* ------------------------------------------------------------------ *)
(* Pre-scan the expression for tensor names and orders.                *)
(* ------------------------------------------------------------------ *)

let prescan expr_str =
  let n = String.length expr_str in
  let tensors = ref [] in
  let is_ident c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' in
  let i = ref 0 in
  while !i < n do
    if is_ident expr_str.[!i] && (!i = 0 || not (is_ident expr_str.[!i - 1])) then begin
      let start = !i in
      while !i < n && is_ident expr_str.[!i] do
        incr i
      done;
      let name = String.sub expr_str start (!i - start) in
      let j = ref !i in
      while !j < n && expr_str.[!j] = ' ' do
        incr j
      done;
      if name <> "sum" && String.length name > 0 && not (name.[0] >= '0' && name.[0] <= '9')
      then
        if !j < n && expr_str.[!j] = '(' then begin
          (* Count top-level commas to find the order. *)
          let depth = ref 1 and commas = ref 0 and k = ref (!j + 1) in
          while !depth > 0 && !k < n do
            (match expr_str.[!k] with
            | '(' -> incr depth
            | ')' -> decr depth
            | ',' -> if !depth = 1 then incr commas
            | _ -> ());
            incr k
          done;
          if not (List.mem_assoc name !tensors) then
            tensors := (name, !commas + 1) :: !tensors
        end
        (* Identifiers without parentheses are index variables (the CLI
           does not support order-0 tensors). *)
    end
    else incr i
  done;
  List.rev !tensors

let parse_format name order spec =
  let spec = if spec = "" then String.make (max order 1) 'd' else spec in
  if String.length spec <> order then
    die "format %s for %s has %d levels but the tensor has order %d" spec name
      (String.length spec) order;
  let levels =
    List.init order (fun l ->
        match spec.[l] with
        | 'd' -> Level.Dense
        | 's' -> Level.Compressed
        | c -> die "unknown level format %c in %s (use d or s)" c spec)
  in
  Format.of_levels levels

(* ------------------------------------------------------------------ *)
(* Main                                                                 *)
(* ------------------------------------------------------------------ *)

let run_cli expr_str formats dims density seed reorders precomputes split_specs auto
    print_cin print_c do_run do_time trace_file do_stats =
  Obs.setup ();
  let observing = trace_file <> None || do_stats in
  if observing then Trace.enable ();
  let parse_pair what s =
    match String.index_opt s ':' with
    | Some k -> (String.sub s 0 k, String.sub s (k + 1) (String.length s - k - 1))
    | None -> die "malformed %s %S (expected NAME:SPEC)" what s
  in
  let formats = List.map (parse_pair "-f") formats in
  let dims_spec = List.map (parse_pair "-d") dims in
  (* Build tensor variables. *)
  let names = prescan expr_str in
  if names = [] then die "no tensors found in %S" expr_str;
  let tensors =
    List.map
      (fun (name, order) ->
        let fmt_spec = Option.value ~default:"" (List.assoc_opt name formats) in
        (name, Tensor_var.make name ~order ~format:(parse_format name order fmt_spec)))
      names
  in
  let stmt = getd (P.parse_statement ~tensors expr_str) in
  Printf.printf "statement:   %s\n" (Index_notation.to_string stmt);
  let sched = ref (get (Schedule.of_index_notation stmt)) in
  (* Manual schedule commands. *)
  List.iter
    (fun spec ->
      match String.split_on_char ',' spec with
      | [ a; b ] ->
          sched := get (Schedule.reorder (ivar (String.trim a)) (ivar (String.trim b)) !sched)
      | _ -> die "malformed --reorder %S (expected a,b)" spec)
    reorders;
  List.iteri
    (fun q spec ->
      match String.split_on_char '|' spec with
      | [ e; vars; ws ] ->
          let e = getd (P.parse_expr ~tensors e) in
          let e = get (Schedule.expr_of_index_notation e) in
          let over = List.map (fun v -> ivar (String.trim v)) (String.split_on_char ',' vars) in
          let w =
            Tensor_var.workspace
              (if ws = "" then Printf.sprintf "w%d" q else String.trim ws)
              ~order:(List.length over)
              ~format:(Format.dense (List.length over))
          in
          sched := get (Schedule.precompute_simple ~expr:e ~over ~workspace:w !sched)
      | _ -> die "malformed --precompute %S (expected EXPR|VARS|NAME)" spec)
    precomputes;
  let splits =
    List.map
      (fun spec ->
        match String.split_on_char ':' spec with
        | [ v; f ] -> (ivar (String.trim v), int_of_string (String.trim f))
        | _ -> die "malformed --split %S (expected VAR:FACTOR)" spec)
      split_specs
  in
  (* Compile, automatically scheduling if requested (or if needed and
     nothing manual was given). *)
  let compiled, steps =
    if auto then
      let c, steps = getd (auto_compile ~profile:observing !sched) in
      (c, steps)
    else
      match compile ~splits ~profile:observing !sched with
      | Ok c -> (c, [])
      | Error e ->
          die "%s\n(hint: pass --auto to search for a schedule automatically)"
            (Taco_support.Diag.to_string e)
  in
  List.iter (fun s -> Printf.printf "auto:        %s\n" (Autoschedule.step_to_string s)) steps;
  Printf.printf "concrete:    %s\n" (cin_string compiled);
  if print_cin then ();
  if print_c then begin
    print_endline "";
    print_string (c_source compiled)
  end;
  if do_run || do_time then begin
    (* Random inputs: dimensions from -d (default 1000 per mode). *)
    let prng = Taco_support.Prng.create seed in
    let result_name =
      Tensor_var.name (Kernel.info (kernel compiled)).Lower.result
    in
    let dim_env : (string, int array) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (name, spec) ->
        let ds = String.split_on_char ',' spec |> List.map int_of_string |> Array.of_list in
        Hashtbl.replace dim_env name ds)
      dims_spec;
    (* Unify index variable ranges across accesses. *)
    let ranges : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let rec walk = function
      | Index_notation.Access (tv, idxs) ->
          let name = Tensor_var.name tv in
          List.iteri
            (fun m v ->
              let key = Index_var.name v in
              let from_spec =
                match Hashtbl.find_opt dim_env name with
                | Some ds when Array.length ds > m -> Some ds.(m)
                | Some _ | None -> None
              in
              match (from_spec, Hashtbl.find_opt ranges key) with
              | Some d, _ -> Hashtbl.replace ranges key d
              | None, Some _ -> ()
              | None, None -> Hashtbl.replace ranges key 1000)
            idxs
      | Index_notation.Literal _ -> ()
      | Index_notation.Neg e | Index_notation.Sum (_, e) -> walk e
      | Index_notation.Add (a, b)
      | Index_notation.Sub (a, b)
      | Index_notation.Mul (a, b)
      | Index_notation.Div (a, b) ->
          walk a;
          walk b
    in
    walk stmt.Index_notation.rhs;
    List.iteri
      (fun m v -> Hashtbl.replace ranges (Index_var.name v)
          (match Hashtbl.find_opt dim_env result_name with
          | Some ds when Array.length ds > m -> ds.(m)
          | Some _ | None ->
              Option.value ~default:1000 (Hashtbl.find_opt ranges (Index_var.name v))))
      stmt.Index_notation.lhs_indices;
    let inputs =
      List.filter_map
        (fun (name, tv) ->
          if name = result_name then None
          else begin
            (* Reconstruct dims from the access. *)
            let rec find_access = function
              | Index_notation.Access (t, idxs) when Tensor_var.equal t tv -> Some idxs
              | Index_notation.Access _ | Index_notation.Literal _ -> None
              | Index_notation.Neg e | Index_notation.Sum (_, e) -> find_access e
              | Index_notation.Add (a, b)
              | Index_notation.Sub (a, b)
              | Index_notation.Mul (a, b)
              | Index_notation.Div (a, b) -> (
                  match find_access a with Some r -> Some r | None -> find_access b)
            in
            match find_access stmt.Index_notation.rhs with
            | None -> None
            | Some idxs ->
                let ds =
                  Array.of_list
                    (List.map (fun v -> Hashtbl.find ranges (Index_var.name v)) idxs)
                in
                let t =
                  if Format.is_all_dense (Tensor_var.format tv) then
                    Tensor.of_dense (Gen.random_dense prng ds) (Tensor_var.format tv)
                  else Gen.random_density prng ~dims:ds ~density (Tensor_var.format tv)
                in
                Printf.printf "input %s: %s\n" name (Stdlib.Format.asprintf "%a" Tensor.pp t);
                Some (tv, t)
          end)
        tensors
    in
    let (result, elapsed) = Taco_support.Util.time (fun () -> getd (run compiled ~inputs)) in
    Printf.printf "result %s: %s\n" result_name (Stdlib.Format.asprintf "%a" Tensor.pp result);
    if do_time then Printf.printf "time: %.6f s\n" elapsed
  end;
  if do_stats then begin
    prerr_string (Trace.summary ());
    match Kernel.profile_stats (kernel compiled) with
    | None -> ()
    | Some s ->
        Printf.eprintf
          "kernel counters: iterations=%d scalar_ops=%d allocs=%d alloc_elems=%d \
           zero_bytes=%d reallocs=%d sorts=%d\n"
          s.Compile.iterations s.Compile.scalar_ops s.Compile.allocs s.Compile.alloc_elems
          s.Compile.zero_bytes s.Compile.reallocs s.Compile.sorts
  end;
  match trace_file with
  | None -> ()
  | Some file ->
      Trace.write_chrome file;
      Printf.eprintf "trace written to %s\n" file

open Cmdliner

let expr_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR" ~doc:"Index notation statement.")

let formats_arg =
  Arg.(value & opt_all string [] & info [ "f" ] ~docv:"NAME:FMT" ~doc:"Tensor format, one d(ense)/s(parse) letter per mode, e.g. A:ds for CSR.")

let dims_arg =
  Arg.(value & opt_all string [] & info [ "d" ] ~docv:"NAME:DIMS" ~doc:"Tensor dimensions for --run, e.g. B:5000,5000.")

let density_arg =
  Arg.(value & opt float 0.01 & info [ "density" ] ~doc:"Density of random sparse inputs.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

let reorder_arg =
  Arg.(value & opt_all string [] & info [ "reorder" ] ~docv:"A,B" ~doc:"Exchange two index variables (repeatable).")

let precompute_arg =
  Arg.(value & opt_all string [] & info [ "precompute" ] ~docv:"EXPR|VARS|NAME" ~doc:"Precompute EXPR over VARS into workspace NAME (repeatable).")

let split_arg =
  Arg.(value & opt_all string [] & info [ "split" ] ~docv:"VAR:FACTOR" ~doc:"Strip-mine a dense loop (repeatable).")

let auto_arg = Arg.(value & flag & info [ "auto" ] ~doc:"Search for a schedule automatically.")

let print_cin_arg = Arg.(value & flag & info [ "print-cin" ] ~doc:"Print concrete index notation (always shown).")

let print_c_arg = Arg.(value & flag & info [ "print-c" ] ~doc:"Print the generated C code.")

let run_arg = Arg.(value & flag & info [ "run" ] ~doc:"Run the kernel on random inputs.")

let time_arg = Arg.(value & flag & info [ "time" ] ~doc:"Run and report wall-clock time.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Trace the whole pipeline (parse through kernel execution) and \
               write Chrome trace-event JSON to FILE (load in Perfetto or \
               chrome://tracing).")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print a span/counter summary and kernel work counters to stderr.")

let () =
  let term =
    Term.(
      const run_cli $ expr_arg $ formats_arg $ dims_arg $ density_arg $ seed_arg
      $ reorder_arg $ precompute_arg $ split_arg $ auto_arg $ print_cin_arg $ print_c_arg
      $ run_arg $ time_arg $ trace_arg $ stats_arg)
  in
  let info =
    Cmd.info "tacocli"
      ~doc:"Compile and run sparse tensor algebra expressions with workspaces."
  in
  exit (Cmd.eval (Cmd.v info term))
