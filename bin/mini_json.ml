(* A small recursive-descent JSON parser over the stdlib, shared by the
   observability checkers (trace_check, metrics_check) and benchdiff.
   The image has no JSON library, and the files these tools read — trace
   dumps, metrics snapshots, bench reports — use a plain subset of JSON
   anyway.

   [Bad] carries a byte position in its message; callers decide the exit
   discipline. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        true
    | _ -> false
  do
    ()
  done

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail "expected %c at byte %d, found %c" c st.pos c'
  | None -> fail "expected %c at byte %d, found end of input" c st.pos

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string at byte %d" st.pos
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail "dangling escape at byte %d" st.pos
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then fail "truncated \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail "bad \\u escape %S" hex
            in
            (* Keep it simple: escapes in these files are control chars. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_string b (Printf.sprintf "\\u%s" hex);
            st.pos <- st.pos + 4;
            go ()
        | Some c ->
            advance st;
            Buffer.add_char b
              (match c with
              | 'n' -> '\n'
              | 't' -> '\t'
              | 'r' -> '\r'
              | 'b' -> '\b'
              | 'f' -> '\012'
              | '"' | '\\' | '/' -> c
              | c -> fail "unknown escape \\%c" c);
            go ())
    | Some c ->
        advance st;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail "bad number %S at byte %d" s start

let parse_literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail "bad literal at byte %d" st.pos

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } at byte %d" st.pos
        in
        Obj (members [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail "expected , or ] at byte %d" st.pos
        in
        Arr (elements [])
      end
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse_document src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then
    fail "trailing bytes after JSON document at byte %d" st.pos;
  v

let of_file file =
  let ic = open_in_bin file in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_document src

(* ---- accessors ---- *)

let field obj k = match obj with Obj kvs -> List.assoc_opt k kvs | _ -> None

let str_field what obj k =
  match field obj k with
  | Some (Str s) -> s
  | Some _ -> fail "%s: %S is not a string" what k
  | None -> fail "%s: missing %S" what k

let num_field what obj k =
  match field obj k with
  | Some (Num f) -> f
  | Some _ -> fail "%s: %S is not a number" what k
  | None -> fail "%s: missing %S" what k
