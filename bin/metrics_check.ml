(* Validate Prometheus text exposition scraped from a `tacocli serve`
   session (the @metrics-smoke gate).

   Usage: metrics_check TRANSCRIPT [REQUIRED_FAMILY ...]

   The input is either a raw exposition file or a captured serve-session
   transcript; in the latter case the checker locates the last
   "ok metrics N" frame and validates exactly the N lines that follow
   it. Checks, failing with a nonzero exit on the first violation:

   - metric names match [a-zA-Z_:][a-zA-Z0-9_:]* and label names match
     [a-zA-Z_][a-zA-Z0-9_]* (the Prometheus data model);
   - every sample line parses: name, optional {k="v",...} block with
     properly quoted/escaped values, then a float;
   - every sample's family was declared by a preceding "# TYPE" line,
     with a known type (counter, gauge, summary), at most once;
   - counter samples are non-negative; "_count" samples are non-negative
     integers;
   - summary series are coherent: within one (family, labels) group the
     quantile values are non-decreasing in the quantile, and a group
     with quantile samples also carries its _sum and _count;
   - each REQUIRED_FAMILY is present. The default list pins the serving
     acceptance surface: the wait/run latency summaries must expose
     quantiles 0.5 and 0.99 with both "backend" and "outcome" labels,
     plus the request counters and the queue/worker gauges.

   A required family may be written "FAMILY>N" (e.g.
   "taco_plan_cache_hits_total>0"): the family must be present AND
   carry at least one sample whose value exceeds N — how @plan-smoke
   asserts that plan-cache hits actually happened, not merely that the
   counter exists. *)

let fail fmt = Printf.ksprintf (fun s -> raise (Mini_json.Bad s)) fmt

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

let valid_label s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

(* "name{k="v",...} value" -> (name, labels, value) *)
let parse_sample what line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && line.[!i] <> '{' && line.[!i] <> ' ' do
    incr i
  done;
  let name = String.sub line 0 !i in
  if not (valid_name name) then fail "%s: invalid metric name %S" what name;
  let labels = ref [] in
  if !i < n && line.[!i] = '{' then begin
    incr i;
    let rec pairs () =
      let start = !i in
      while !i < n && line.[!i] <> '=' do
        incr i
      done;
      if !i >= n then fail "%s: unterminated label block" what;
      let lname = String.sub line start (!i - start) in
      if not (valid_label lname) then fail "%s: invalid label name %S" what lname;
      incr i;
      if !i >= n || line.[!i] <> '"' then fail "%s: label %s value is not quoted" what lname;
      incr i;
      let b = Buffer.create 16 in
      let rec value () =
        if !i >= n then fail "%s: unterminated label value for %s" what lname
        else
          match line.[!i] with
          | '"' -> incr i
          | '\\' ->
              incr i;
              if !i >= n then fail "%s: dangling escape in label %s" what lname;
              (match line.[!i] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | 'n' -> Buffer.add_char b '\n'
              | c -> fail "%s: bad escape \\%c in label %s" what c lname);
              incr i;
              value ()
          | c ->
              Buffer.add_char b c;
              incr i;
              value ()
      in
      value ();
      labels := (lname, Buffer.contents b) :: !labels;
      if !i < n && line.[!i] = ',' then begin
        incr i;
        pairs ()
      end
      else if !i < n && line.[!i] = '}' then incr i
      else fail "%s: expected , or } in label block" what
    in
    (match !i < n && line.[!i] = '}' with
    | true -> incr i
    | false -> pairs ())
  end;
  if !i >= n || line.[!i] <> ' ' then fail "%s: expected a space before the value" what;
  let v = String.trim (String.sub line !i (n - !i)) in
  match float_of_string_opt v with
  | None -> fail "%s: value %S is not a number" what v
  | Some f -> (name, List.rev !labels, f)

(* A summary family's samples land under the family name itself
   (quantile series) or its _sum/_count companions. *)
let family_of types name =
  if Hashtbl.mem types name then name
  else
    let strip suffix =
      let ls = String.length suffix and ln = String.length name in
      if ln > ls && String.sub name (ln - ls) ls = suffix then
        Some (String.sub name 0 (ln - ls))
      else None
    in
    match strip "_sum" with
    | Some f when Hashtbl.mem types f -> f
    | _ -> (
        match strip "_count" with
        | Some f when Hashtbl.mem types f -> f
        | _ -> fail "sample %S has no preceding # TYPE" name)

let default_required =
  [
    "taco_serve_wait_seconds";
    "taco_serve_run_seconds";
    "taco_serve_compile_seconds";
    "taco_serve_requests_total";
    "taco_serve_submitted_total";
    "taco_serve_queue_depth";
    "taco_serve_live_workers";
    "taco_stage_duration_seconds";
  ]

let () =
  let file, required =
    match Array.to_list Sys.argv with
    | _ :: file :: rest -> (file, if rest = [] then default_required else rest)
    | _ ->
        prerr_endline "usage: metrics_check TRANSCRIPT [REQUIRED_FAMILY ...]";
        exit 2
  in
  let lines =
    let ic = open_in_bin file in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> go [])
  in
  match
    (* Prefer the last "ok metrics N" frame of a session transcript;
       fall back to treating the whole file as exposition. *)
    let exposition =
      let rec last_frame acc frame = function
        | [] -> frame
        | line :: rest -> (
            match Scanf.sscanf_opt line "ok metrics %d%!" (fun n -> n) with
            | Some n ->
                let taken = List.filteri (fun i _ -> i < n) rest in
                if List.length taken < n then
                  fail "frame promises %d lines but only %d follow" n (List.length taken);
                last_frame acc (Some taken) rest
            | None -> last_frame acc frame rest)
      in
      match last_frame [] None lines with
      | Some frame -> frame
      | None -> lines
    in
    if exposition = [] then fail "no exposition lines";
    let types : (string, string) Hashtbl.t = Hashtbl.create 32 in
    (* (family, labels sans quantile) -> (quantile, value) list, plus
       which companions were seen. *)
    let summaries : (string * (string * string) list, (float * float) list ref)
        Hashtbl.t =
      Hashtbl.create 32
    in
    let companions : (string * (string * string) list, unit) Hashtbl.t =
      Hashtbl.create 32
    in
    (* Largest sample seen per family, for the FAMILY>N requirements. *)
    let max_sample : (string, float) Hashtbl.t = Hashtbl.create 32 in
    let n_samples = ref 0 in
    List.iteri
      (fun i line ->
        let what = Printf.sprintf "line %d" (i + 1) in
        if line = "" then ()
        else if String.length line >= 1 && line.[0] = '#' then begin
          match String.split_on_char ' ' line with
          | "#" :: "TYPE" :: name :: [ ty ] ->
              if not (valid_name name) then
                fail "%s: invalid family name %S" what name;
              if not (List.mem ty [ "counter"; "gauge"; "summary"; "histogram"; "untyped" ])
              then fail "%s: unknown metric type %S" what ty;
              if Hashtbl.mem types name then
                fail "%s: duplicate # TYPE for %S" what name;
              Hashtbl.replace types name ty
          | "#" :: "HELP" :: _ -> ()
          | _ -> fail "%s: malformed comment %S" what line
        end
        else begin
          incr n_samples;
          let name, labels, value = parse_sample what line in
          let family = family_of types name in
          let ty = Hashtbl.find types family in
          (match Hashtbl.find_opt max_sample family with
          | Some m when m >= value -> ()
          | Some _ | None -> Hashtbl.replace max_sample family value);
          (match ty with
          | "counter" ->
              if value < 0. then fail "%s: counter %s is negative" what name
          | "summary" ->
              let is_count =
                String.length name > 6
                && String.sub name (String.length name - 6) 6 = "_count"
              in
              if is_count && (value < 0. || Float.rem value 1. <> 0.) then
                fail "%s: %s is not a non-negative integer" what name;
              let q, rest =
                List.partition (fun (k, _) -> k = "quantile") labels
              in
              let key = (family, List.sort compare rest) in
              if name = family then (
                match q with
                | [ (_, qs) ] -> (
                    match float_of_string_opt qs with
                    | Some qf when qf >= 0. && qf <= 1. ->
                        let cell =
                          match Hashtbl.find_opt summaries key with
                          | Some c -> c
                          | None ->
                              let c = ref [] in
                              Hashtbl.replace summaries key c;
                              c
                        in
                        cell := (qf, value) :: !cell
                    | _ -> fail "%s: bad quantile label %S" what qs)
                | _ -> fail "%s: summary sample %s needs one quantile label" what name)
              else begin
                if q <> [] then
                  fail "%s: %s must not carry a quantile label" what name;
                Hashtbl.replace companions key ()
              end
          | _ -> ())
        end)
      exposition;
    Hashtbl.iter
      (fun (family, labels) cell ->
        let sorted = List.sort compare !cell in
        let rec mono = function
          | (q1, v1) :: ((q2, v2) :: _ as tl) ->
              if v2 < v1 then
                fail "summary %s{%s}: quantile %.3f value %g < quantile %.3f value %g"
                  family
                  (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels))
                  q2 v2 q1 v1;
              mono tl
          | _ -> ()
        in
        mono sorted;
        if not (Hashtbl.mem companions (family, labels)) then
          fail "summary %s has quantiles but no _sum/_count" family)
      summaries;
    (* The acceptance surface: the latency summaries must be scrapeable
       with p50/p99 split by backend and outcome. *)
    List.iter
      (fun req ->
        let family, floor =
          match String.index_opt req '>' with
          | Some i ->
              let thr = String.sub req (i + 1) (String.length req - i - 1) in
              (match float_of_string_opt thr with
              | Some f -> (String.sub req 0 i, Some f)
              | None -> fail "bad requirement %S: %S is not a number" req thr)
          | None -> (req, None)
        in
        if not (Hashtbl.mem types family) then
          fail "required family %S is missing" family;
        (match floor with
        | Some f -> (
            match Hashtbl.find_opt max_sample family with
            | Some m when m > f -> ()
            | Some m -> fail "required family %S: max sample %g is not > %g" family m f
            | None -> fail "required family %S has no samples" family)
        | None -> ());
        if Hashtbl.find types family = "summary" then begin
          let series =
            Hashtbl.fold
              (fun (f, labels) cell acc ->
                if f = family then (labels, !cell) :: acc else acc)
              summaries []
          in
          if series = [] then fail "required summary %S has no quantile series" family;
          List.iter
            (fun (labels, qs) ->
              List.iter
                (fun q ->
                  if not (List.exists (fun (qf, _) -> qf = q) qs) then
                    fail "summary %S{%s} lacks quantile %g" family
                      (String.concat ","
                         (List.map (fun (k, v) -> k ^ "=" ^ v) labels))
                      q)
                [ 0.5; 0.99 ])
            series;
          if family = "taco_serve_wait_seconds" || family = "taco_serve_run_seconds"
          then
            List.iter
              (fun (labels, _) ->
                List.iter
                  (fun l ->
                    if not (List.mem_assoc l labels) then
                      fail "summary %S series lacks the %S label" family l)
                  [ "backend"; "outcome" ])
              series
        end)
      required;
    (!n_samples, Hashtbl.length types)
  with
  | n_samples, n_families ->
      Printf.printf
        "metrics_check: %s OK (%d samples, %d families, %d required present)\n" file
        n_samples n_families (List.length required)
  | exception Mini_json.Bad msg ->
      Printf.eprintf "metrics_check: %s: %s\n" file msg;
      exit 1
