(* Edge cases and cross-checks for the hand-written baseline kernels. *)

module F = Taco_tensor.Format
module T = Taco_tensor.Tensor
module D = Taco_tensor.Dense
module Kernel = Taco_exec.Kernel
module Spgemm = Taco_kernels.Spgemm
module Spadd = Taco_kernels.Spadd
module Mttkrp = Taco_kernels.Mttkrp

let spgemm_inputs bt ct = [ (Spgemm.b_var, bt); (Spgemm.c_var, ct) ]

let spgemm_oracle bt ct = T.to_dense (Spgemm.gustavson bt ct)

let run_spgemm info bt ct dims =
  T.to_dense (Kernel.run_assemble (Kernel.prepare info) ~inputs:(spgemm_inputs bt ct) ~dims)

let all_spgemm =
  [
    ("eigen", Spgemm.eigen_like);
    ("mkl", Spgemm.mkl_like);
    ("hash", Spgemm.hash_workspace ~capacity:256);
  ]

let test_spgemm_empty () =
  let bt = T.zero [| 5; 6 |] F.csr and ct = T.zero [| 6; 4 |] F.csr in
  List.iter
    (fun (name, info) ->
      Helpers.check_dense (name ^ " empty") (D.create [| 5; 4 |]) (run_spgemm info bt ct [| 5; 4 |]))
    all_spgemm

let test_spgemm_identity () =
  (* B * I = B. *)
  let n = 8 in
  let eye =
    let coo = Taco_tensor.Coo.create [| n; n |] in
    for i = 0 to n - 1 do
      Taco_tensor.Coo.push coo [| i; i |] 1.
    done;
    T.pack coo F.csr
  in
  let bt = Helpers.random_tensor 201 [| n; n |] 0.3 F.csr in
  List.iter
    (fun (name, info) ->
      Helpers.check_dense (name ^ " identity") (T.to_dense bt) (run_spgemm info bt eye [| n; n |]))
    all_spgemm

let test_spgemm_single_dense_row () =
  (* One fully dense row exercises workspace clearing. *)
  let coo = Taco_tensor.Coo.create [| 3; 10 |] in
  for j = 0 to 9 do
    Taco_tensor.Coo.push coo [| 1; j |] (float_of_int (j + 1))
  done;
  let bt = T.pack coo F.csr in
  let ct = Helpers.random_tensor 202 [| 10; 7 |] 0.4 F.csr in
  let oracle = spgemm_oracle bt ct in
  List.iter
    (fun (name, info) ->
      Helpers.check_dense (name ^ " dense row") oracle (run_spgemm info bt ct [| 3; 7 |]))
    all_spgemm

let test_spgemm_hash_matches_gustavson () =
  let bt = Helpers.random_tensor 203 [| 20; 16 |] 0.25 F.csr in
  let ct = Helpers.random_tensor 204 [| 16; 24 |] 0.25 F.csr in
  Helpers.check_dense "hash workspace" (spgemm_oracle bt ct)
    (run_spgemm (Spgemm.hash_workspace ~capacity:64) bt ct [| 20; 24 |])

let test_spgemm_hash_collisions () =
  (* Tiny capacity forces probe chains (row nnz up to 12 in 32 slots). *)
  let bt = Helpers.random_tensor 205 [| 10; 12 |] 0.5 F.csr in
  let ct = Helpers.random_tensor 206 [| 12; 12 |] 0.5 F.csr in
  Helpers.check_dense "hash with collisions" (spgemm_oracle bt ct)
    (run_spgemm (Spgemm.hash_workspace ~capacity:32) bt ct [| 10; 12 |])

let test_spgemm_hash_bad_capacity () =
  Alcotest.check_raises "power of two required"
    (Invalid_argument "Spgemm.hash_workspace: capacity must be a power of two")
    (fun () -> ignore (Spgemm.hash_workspace ~capacity:100))

let test_spgemm_rectangular () =
  let bt = Helpers.random_tensor 207 [| 3; 30 |] 0.2 F.csr in
  let ct = Helpers.random_tensor 208 [| 30; 5 |] 0.2 F.csr in
  let oracle = spgemm_oracle bt ct in
  List.iter
    (fun (name, info) ->
      Helpers.check_dense (name ^ " rectangular") oracle (run_spgemm info bt ct [| 3; 5 |]))
    all_spgemm

let spadd_inputs bt ct = [ (Spadd.b_var, bt); (Spadd.c_var, ct) ]

let test_spadd_disjoint () =
  (* Disjoint patterns: pure tail-loop merges. *)
  let coo1 = Taco_tensor.Coo.create [| 4; 10 |] in
  let coo2 = Taco_tensor.Coo.create [| 4; 10 |] in
  for i = 0 to 3 do
    for j = 0 to 4 do
      Taco_tensor.Coo.push coo1 [| i; j |] 1.;
      Taco_tensor.Coo.push coo2 [| i; j + 5 |] 2.
    done
  done;
  let bt = T.pack coo1 F.csr and ct = T.pack coo2 F.csr in
  let expected = D.map2 ( +. ) (T.to_dense bt) (T.to_dense ct) in
  List.iter
    (fun (name, info) ->
      let r = Kernel.run_assemble (Kernel.prepare info) ~inputs:(spadd_inputs bt ct) ~dims:[| 4; 10 |] in
      Helpers.check_dense (name ^ " disjoint") expected (T.to_dense r))
    [ ("eigen", Spadd.eigen_like); ("mkl", Spadd.mkl_like) ]

let test_spadd_one_empty () =
  let bt = Helpers.random_tensor 209 [| 6; 6 |] 0.3 F.csr in
  let ct = T.zero [| 6; 6 |] F.csr in
  List.iter
    (fun (name, info) ->
      let r = Kernel.run_assemble (Kernel.prepare info) ~inputs:(spadd_inputs bt ct) ~dims:[| 6; 6 |] in
      Helpers.check_dense (name ^ " one empty") (T.to_dense bt) (T.to_dense r))
    [ ("eigen", Spadd.eigen_like); ("mkl", Spadd.mkl_like) ]

let test_spadd_cancellation () =
  (* b + (-b) = explicit zeros; stored pattern is the union. *)
  let bt = Helpers.random_tensor 210 [| 5; 5 |] 0.4 F.csr in
  let neg =
    let coo = Taco_tensor.Coo.create [| 5; 5 |] in
    T.iteri_stored (fun c v -> if v <> 0. then Taco_tensor.Coo.push coo (Array.copy c) (-.v)) bt;
    T.pack coo F.csr
  in
  let r =
    Kernel.run_assemble (Kernel.prepare Spadd.eigen_like) ~inputs:(spadd_inputs bt neg)
      ~dims:[| 5; 5 |]
  in
  Alcotest.(check int) "union pattern stored" (T.nnz bt) (T.stored r);
  Helpers.check_dense "values cancel" (D.create [| 5; 5 |]) (T.to_dense r)

let test_mttkrp_empty_tensor () =
  let bt = T.zero [| 4; 5; 6 |] (F.csf 3) in
  let c = Helpers.random_tensor 211 [| 6; 3 |] 1.0 F.dense_matrix in
  let d = Helpers.random_tensor 212 [| 5; 3 |] 1.0 F.dense_matrix in
  let r =
    Kernel.run_dense (Kernel.prepare Mttkrp.splatt_like)
      ~inputs:[ (Mttkrp.b_var, bt); (Mttkrp.c_var, c); (Mttkrp.d_var, d) ]
      ~dims:[| 4; 3 |]
  in
  Helpers.check_dense "empty tensor" (D.create [| 4; 3 |]) (T.to_dense r)

let test_mttkrp_single_fiber () =
  let coo = Taco_tensor.Coo.create [| 3; 4; 5 |] in
  Taco_tensor.Coo.push coo [| 1; 2; 3 |] 2.;
  Taco_tensor.Coo.push coo [| 1; 2; 4 |] 3.;
  let bt = T.pack coo (F.csf 3) in
  let c = Helpers.random_tensor 213 [| 5; 2 |] 1.0 F.dense_matrix in
  let d = Helpers.random_tensor 214 [| 4; 2 |] 1.0 F.dense_matrix in
  let oracle = Mttkrp.reference bt (T.to_dense c) (T.to_dense d) in
  let r =
    Kernel.run_dense (Kernel.prepare Mttkrp.splatt_like)
      ~inputs:[ (Mttkrp.b_var, bt); (Mttkrp.c_var, c); (Mttkrp.d_var, d) ]
      ~dims:[| 3; 2 |]
  in
  Helpers.check_dense "single fiber" oracle (T.to_dense r)

let test_clustered_generator () =
  let prng = Taco_support.Prng.create 215 in
  let coo = Taco_tensor.Gen.clustered3 prng ~dims:[| 50; 60; 70 |] ~nnz:2000 ~avg_fiber:6. in
  let t = T.pack coo (F.csf 3) in
  Helpers.get (T.validate t) |> ignore;
  (* Count (i,k) fibers: average population should be well above 1. *)
  let fibers = Hashtbl.create 512 in
  T.iteri_stored (fun c _ -> Hashtbl.replace fibers (c.(0), c.(1)) ()) t;
  let avg = float_of_int (T.stored t) /. float_of_int (Hashtbl.length fibers) in
  if avg < 2. then Alcotest.failf "fibers too thin: %.2f" avg

let prop_baselines_agree =
  Helpers.qcheck_case ~count:20 "all spgemm baselines agree on random inputs"
    QCheck.(0 -- 10000)
    (fun seed ->
      let bt = Helpers.random_tensor seed [| 9; 11 |] 0.25 F.csr in
      let ct = Helpers.random_tensor (seed + 1) [| 11; 8 |] 0.25 F.csr in
      let oracle = spgemm_oracle bt ct in
      List.for_all
        (fun (_, info) ->
          D.equal ~eps:1e-9 oracle (run_spgemm info bt ct [| 9; 8 |]))
        all_spgemm)

let () =
  Alcotest.run "kernels"
    [
      ( "spgemm",
        [
          Alcotest.test_case "empty operands" `Quick test_spgemm_empty;
          Alcotest.test_case "identity" `Quick test_spgemm_identity;
          Alcotest.test_case "dense row" `Quick test_spgemm_single_dense_row;
          Alcotest.test_case "rectangular" `Quick test_spgemm_rectangular;
          prop_baselines_agree;
        ] );
      ( "hash workspace",
        [
          Alcotest.test_case "matches gustavson" `Quick test_spgemm_hash_matches_gustavson;
          Alcotest.test_case "probe collisions" `Quick test_spgemm_hash_collisions;
          Alcotest.test_case "capacity validation" `Quick test_spgemm_hash_bad_capacity;
        ] );
      ( "spadd",
        [
          Alcotest.test_case "disjoint patterns" `Quick test_spadd_disjoint;
          Alcotest.test_case "one empty operand" `Quick test_spadd_one_empty;
          Alcotest.test_case "cancellation keeps pattern" `Quick test_spadd_cancellation;
        ] );
      ( "mttkrp",
        [
          Alcotest.test_case "empty tensor" `Quick test_mttkrp_empty_tensor;
          Alcotest.test_case "single fiber" `Quick test_mttkrp_single_fiber;
          Alcotest.test_case "clustered generator" `Quick test_clustered_generator;
        ] );
    ]
