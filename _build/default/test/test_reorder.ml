open Taco_ir
open Taco_ir.Var
module F = Taco_tensor.Format

let vi = Helpers.vi and vj = Helpers.vj and vk = Helpers.vk

let a = Helpers.csr_tv "A"
let b = Helpers.csr_tv "B"
let c = Helpers.csr_tv "C"
let ad = Helpers.dense_mat_tv "Ad"
let w = Helpers.ws_vec "w"

let acc = Cin.access

let matmul vars =
  Cin.foralls vars
    (Cin.accumulate (acc ad [ vi; vj ])
       (Cin.Mul (Cin.Access (acc b [ vi; vk ]), Cin.Access (acc c [ vk; vj ]))))

let inputs seed =
  [
    (b, Helpers.random_tensor seed [| 4; 5 |] 0.4 F.csr);
    (c, Helpers.random_tensor (seed + 1) [| 5; 3 |] 0.4 F.csr);
  ]

(* Check that a transformation preserves the reference semantics. *)
let preserves name before after ins =
  Helpers.check_dense name (Helpers.eval_cin before ins) (Helpers.eval_cin after ins)

let test_exchange_semantics () =
  let before = matmul [ vi; vj; vk ] in
  let after = Helpers.get (Reorder.exchange_foralls before) in
  (match after with
  | Cin.Forall (v1, Cin.Forall (v2, _)) ->
      Alcotest.(check bool) "outer is j" true (Index_var.equal v1 vj);
      Alcotest.(check bool) "inner is i" true (Index_var.equal v2 vi)
  | _ -> Alcotest.fail "shape");
  preserves "exchange" before after (inputs 41)

let test_exchange_rejects_sequence () =
  let seq =
    Cin.foralls [ vi; vj ]
      (Cin.sequence
         (Cin.assign (acc ad [ vi; vj ]) (Cin.Access (acc b [ vi; vj ])))
         (Cin.accumulate (acc ad [ vi; vj ]) (Cin.Access (acc c [ vi; vj ]))))
  in
  ignore (Helpers.get_err "sequence inside" (Reorder.exchange_foralls seq))

let test_exchange_rejects_non_nest () =
  ignore
    (Helpers.get_err "not a nest"
       (Reorder.exchange_foralls (Cin.forall vi (Cin.assign (acc w [ vi ]) (Cin.Literal 1.)))))

(* ∀i ((∀j consumer) where producer(i)) where producer does not use j. *)
let hoistable =
  Cin.forall vi
    (Cin.forall vj
       (Cin.where
          ~consumer:(Cin.accumulate (acc ad [ vi; vj ]) (Cin.Access (acc w [ vi ])))
          ~producer:(Cin.accumulate (acc w [ vi ]) (Cin.Access (acc b [ vi; vi ])))))

let test_hoist_producer () =
  (* Inner statement: ∀j (S1 where S2), S2 independent of j. *)
  let inner =
    match hoistable with Cin.Forall (_, s) -> s | _ -> assert false
  in
  let hoisted = Helpers.get (Reorder.hoist_producer inner) in
  (match hoisted with
  | Cin.Where (Cin.Forall (v, _), _) ->
      Alcotest.(check bool) "forall moved to consumer" true (Index_var.equal v vj)
  | _ -> Alcotest.fail "shape");
  let before = Cin.forall vi inner and after = Cin.forall vi hoisted in
  let square = [ (b, Helpers.random_tensor 43 [| 4; 4 |] 0.5 F.csr) ] in
  (* Ad ranges need j: bind Ad's dims via c too... use b only; j ranges over Ad? *)
  ignore square;
  let ins =
    [ (b, Helpers.random_tensor 43 [| 4; 4 |] 0.5 F.csr);
      (ad, Taco_tensor.Tensor.zero [| 4; 4 |] F.dense_matrix) ]
  in
  preserves "hoist" before after ins

let test_hoist_rejects_dependent_producer () =
  let s =
    Cin.forall vj
      (Cin.where
         ~consumer:(Cin.accumulate (acc ad [ vj; vj ]) (Cin.Access (acc w [ vj ])))
         ~producer:(Cin.assign (acc w [ vj ]) (Cin.Literal 1.)))
  in
  ignore (Helpers.get_err "producer uses j" (Reorder.hoist_producer s))

let test_sink_inverts_hoist () =
  let inner =
    match hoistable with Cin.Forall (_, s) -> s | _ -> assert false
  in
  let hoisted = Helpers.get (Reorder.hoist_producer inner) in
  let back = Helpers.get (Reorder.sink_forall hoisted) in
  Alcotest.(check bool) "sink . hoist = id" true (Cin.equal_stmt inner back)

let split_fuse_subject =
  (* ∀j (A(i=const? ...)) — use ∀i∀j (consumer where producer) with
     assignment producer so split applies. *)
  Cin.forall vj
    (Cin.where
       ~consumer:(Cin.assign (acc ad [ vj; vj ]) (Cin.Access (acc w [ vj ])))
       ~producer:(Cin.assign (acc w [ vj ]) (Cin.Access (acc b [ vj; vj ]))))

let test_split_forall () =
  let split = Helpers.get (Reorder.split_forall split_fuse_subject) in
  (match split with
  | Cin.Where (Cin.Forall (_, _), Cin.Forall (_, _)) -> ()
  | _ -> Alcotest.fail "shape");
  let ins =
    [ (b, Helpers.random_tensor 44 [| 5; 5 |] 0.5 F.csr);
      (ad, Taco_tensor.Tensor.zero [| 5; 5 |] F.dense_matrix) ]
  in
  preserves "split" split_fuse_subject split ins

let test_split_rejects_accumulating_producer () =
  let s =
    Cin.forall vj
      (Cin.where
         ~consumer:(Cin.assign (acc ad [ vj; vj ]) (Cin.Access (acc w [ vj ])))
         ~producer:(Cin.accumulate (acc w [ vj ]) (Cin.Access (acc b [ vj; vj ]))))
  in
  ignore (Helpers.get_err "accumulating producer" (Reorder.split_forall s))

let test_fuse_inverts_split () =
  let split = Helpers.get (Reorder.split_forall split_fuse_subject) in
  let fused = Helpers.get (Reorder.fuse_forall split) in
  Alcotest.(check bool) "fuse . split = id" true
    (Cin.equal_stmt split_fuse_subject fused)

let test_fuse_rejects_different_vars () =
  let s =
    Cin.where
      ~consumer:(Cin.forall vi (Cin.assign (acc ad [ vi; vi ]) (Cin.Access (acc w [ vi ]))))
      ~producer:(Cin.forall vj (Cin.assign (acc w [ vj ]) (Cin.Literal 1.)))
  in
  ignore (Helpers.get_err "different vars" (Reorder.fuse_forall s))

let v_ws = Tensor_var.workspace "v" ~order:1 ~format:F.dense_vector

let nested_wheres =
  (* (S1 where S2) where S3 with S1 = A += w, S2 = w += v*B, S3 = v = C. *)
  Cin.forall vi
    (Cin.forall vj
       (Cin.where
          ~consumer:
            (Cin.where
               ~consumer:(Cin.accumulate (acc ad [ vi; vj ]) (Cin.Access (acc w [ vj ])))
               ~producer:
                 (Cin.accumulate (acc w [ vj ])
                    (Cin.Mul (Cin.Access (acc v_ws [ vj ]), Cin.Access (acc b [ vi; vj ])))))
          ~producer:(Cin.assign (acc v_ws [ vj ]) (Cin.Access (acc c [ vi; vj ])))))

let test_where_reassoc () =
  let inner2 =
    match nested_wheres with
    | Cin.Forall (_, Cin.Forall (_, s)) -> s
    | _ -> assert false
  in
  let re = Helpers.get (Reorder.where_reassoc inner2) in
  (match re with
  | Cin.Where (Cin.Assignment _, Cin.Where (_, _)) -> ()
  | _ -> Alcotest.fail "shape");
  let before = Cin.foralls [ vi; vj ] inner2 in
  let after = Cin.foralls [ vi; vj ] re in
  let ins =
    [ (b, Helpers.random_tensor 45 [| 4; 4 |] 0.5 F.csr);
      (c, Helpers.random_tensor 46 [| 4; 4 |] 0.5 F.csr) ]
  in
  preserves "reassoc" before after ins;
  (* and back *)
  let back = Helpers.get (Reorder.where_unassoc re) in
  Alcotest.(check bool) "unassoc inverts" true (Cin.equal_stmt inner2 back)

let test_where_reassoc_rejects_dependency () =
  (* S1 reads the tensor S3 writes. *)
  let s =
    Cin.where
      ~consumer:
        (Cin.where
           ~consumer:(Cin.accumulate (acc ad [ vi; vi ]) (Cin.Access (acc v_ws [ vi ])))
           ~producer:(Cin.accumulate (acc w [ vi ]) (Cin.Access (acc v_ws [ vi ]))))
      ~producer:(Cin.assign (acc v_ws [ vi ]) (Cin.Literal 1.))
  in
  ignore (Helpers.get_err "dependency" (Reorder.where_reassoc (Cin.forall vi s |> function Cin.Forall (_, x) -> x | _ -> assert false)))

let test_where_swap () =
  let inner2 =
    match nested_wheres with
    | Cin.Forall (_, Cin.Forall (_, s)) -> s
    | _ -> assert false
  in
  (* S2 reads v (written by S3): swap must be rejected. *)
  ignore (Helpers.get_err "S2 reads S3's tensor" (Reorder.where_swap inner2));
  (* Independent producers swap fine. *)
  let s =
    Cin.where
      ~consumer:
        (Cin.where
           ~consumer:
             (Cin.accumulate (acc ad [ vi; vi ])
                (Cin.Mul (Cin.Access (acc w [ vi ]), Cin.Access (acc v_ws [ vi ]))))
           ~producer:(Cin.assign (acc w [ vi ]) (Cin.Access (acc b [ vi; vi ]))))
      ~producer:(Cin.assign (acc v_ws [ vi ]) (Cin.Access (acc c [ vi; vi ])))
  in
  let swapped = Helpers.get (Reorder.where_swap s) in
  let before = Cin.forall vi s and after = Cin.forall vi swapped in
  let ins =
    [ (b, Helpers.random_tensor 47 [| 4; 4 |] 0.5 F.csr);
      (c, Helpers.random_tensor 48 [| 4; 4 |] 0.5 F.csr) ]
  in
  preserves "swap" before after ins

let test_user_reorder () =
  let before = matmul [ vi; vj; vk ] in
  let after = Helpers.get (Reorder.reorder vk vj before) in
  (match Cin.peel_foralls after with
  | [ v1; v2; v3 ], _ ->
      Alcotest.(check (list string)) "ikj order" [ "i"; "k"; "j" ]
        (List.map Index_var.name [ v1; v2; v3 ])
  | _ -> Alcotest.fail "shape");
  preserves "reorder k j" before after (inputs 49)

let test_user_reorder_inside_where () =
  (* The nest to reorder lives in the producer of a where. *)
  let s =
    Cin.forall vi
      (Cin.where
         ~consumer:(Cin.forall vj (Cin.assign (acc a [ vi; vj ]) (Cin.Access (acc w [ vj ]))))
         ~producer:
           (Cin.foralls [ vk; vj ]
              (Cin.accumulate (acc w [ vj ])
                 (Cin.Mul (Cin.Access (acc b [ vi; vk ]), Cin.Access (acc c [ vk; vj ]))))))
  in
  let after = Helpers.get (Reorder.reorder vk vj s) in
  Alcotest.(check bool) "something changed" false (Cin.equal_stmt s after);
  preserves "reorder in producer" s after (inputs 50)

let test_user_reorder_missing_var () =
  let before = matmul [ vi; vj; vk ] in
  ignore (Helpers.get_err "missing var" (Reorder.reorder vi Helpers.vl before))

let prop_exchange_random_matrices =
  Helpers.qcheck_case ~count:25 "forall exchange preserves semantics on random inputs"
    QCheck.(0 -- 10000)
    (fun seed ->
      let before = matmul [ vi; vj; vk ] in
      let after = Helpers.get (Reorder.reorder vi vk before) in
      let ins = inputs seed in
      Taco_tensor.Dense.equal ~eps:1e-9
        (Helpers.eval_cin before ins) (Helpers.eval_cin after ins))

(* Random sequences of legal reorders on the 4-deep MTTKRP nest keep the
   reference semantics. *)
let prop_reorder_sequences =
  let b3 = Tensor_var.make "B3" ~order:3 ~format:(Taco_tensor.Format.csf 3) in
  let acc = Cin.access in
  let mttkrp =
    Cin.foralls [ vi; vj; vk; Helpers.vl ]
      (Cin.accumulate (acc ad [ vi; vj ])
         (Cin.Mul
            ( Cin.Mul (Cin.Access (acc b3 [ vi; vk; Helpers.vl ]), Cin.Access (acc b [ Helpers.vl; vj ])),
              Cin.Access (acc c [ vk; vj ]) )))
  in
  Helpers.qcheck_case ~count:25 "random reorder sequences preserve semantics"
    QCheck.(pair (0 -- 10000) (list_of_size Gen.(1 -- 4) (pair (0 -- 3) (0 -- 3))))
    (fun (seed, swaps) ->
      let vars = [| vi; vj; vk; Helpers.vl |] in
      let after =
        List.fold_left
          (fun s (a, b) ->
            if a = b then s
            else match Reorder.reorder vars.(a) vars.(b) s with Ok s' -> s' | Error _ -> s)
          mttkrp swaps
      in
      let ins =
        [
          (b3, Helpers.random_tensor seed [| 4; 5; 6 |] 0.15 (Taco_tensor.Format.csf 3));
          (b, Helpers.random_tensor (seed + 1) [| 6; 3 |] 0.5 Taco_tensor.Format.csr);
          (c, Helpers.random_tensor (seed + 2) [| 5; 3 |] 0.5 Taco_tensor.Format.csr);
        ]
      in
      Taco_tensor.Dense.equal ~eps:1e-9 (Helpers.eval_cin mttkrp ins)
        (Helpers.eval_cin after ins))

let () =
  Alcotest.run "reorder"
    [
      ( "exchange",
        [
          Alcotest.test_case "swaps and preserves semantics" `Quick test_exchange_semantics;
          Alcotest.test_case "rejects sequences" `Quick test_exchange_rejects_sequence;
          Alcotest.test_case "rejects non-nests" `Quick test_exchange_rejects_non_nest;
          prop_exchange_random_matrices;
          prop_reorder_sequences;
        ] );
      ( "hoist/sink",
        [
          Alcotest.test_case "hoists invariant producers" `Quick test_hoist_producer;
          Alcotest.test_case "rejects dependent producers" `Quick test_hoist_rejects_dependent_producer;
          Alcotest.test_case "sink inverts hoist" `Quick test_sink_inverts_hoist;
        ] );
      ( "split/fuse",
        [
          Alcotest.test_case "splits foralls into both sides" `Quick test_split_forall;
          Alcotest.test_case "rejects accumulating producers" `Quick test_split_rejects_accumulating_producer;
          Alcotest.test_case "fuse inverts split" `Quick test_fuse_inverts_split;
          Alcotest.test_case "fuse rejects different vars" `Quick test_fuse_rejects_different_vars;
        ] );
      ( "where",
        [
          Alcotest.test_case "reassociation" `Quick test_where_reassoc;
          Alcotest.test_case "reassociation dependency check" `Quick test_where_reassoc_rejects_dependency;
          Alcotest.test_case "swap" `Quick test_where_swap;
        ] );
      ( "user reorder",
        [
          Alcotest.test_case "matmul k,j" `Quick test_user_reorder;
          Alcotest.test_case "inside a where producer" `Quick test_user_reorder_inside_where;
          Alcotest.test_case "missing variable" `Quick test_user_reorder_missing_var;
        ] );
    ]
