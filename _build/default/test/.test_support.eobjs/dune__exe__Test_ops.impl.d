test/test_ops.ml: Alcotest Array Helpers Taco_kernels Taco_ops Taco_support Taco_tensor
