test/test_kernels.ml: Alcotest Array Hashtbl Helpers List QCheck Taco_exec Taco_kernels Taco_support Taco_tensor
