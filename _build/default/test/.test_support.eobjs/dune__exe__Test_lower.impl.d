test/test_lower.ml: Alcotest Array Cin Float Helpers List String Taco_exec Taco_ir Taco_lower Taco_tensor Tensor_var
