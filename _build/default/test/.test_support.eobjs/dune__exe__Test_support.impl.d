test/test_support.ml: Alcotest Array Fun Gen Helpers List QCheck Taco_support
