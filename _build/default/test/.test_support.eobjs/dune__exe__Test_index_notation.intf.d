test/test_index_notation.mli:
