test/test_reorder.ml: Alcotest Array Cin Gen Helpers Index_var List QCheck Reorder Taco_ir Taco_tensor Tensor_var
