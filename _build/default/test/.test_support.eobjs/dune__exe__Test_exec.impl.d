test/test_exec.ml: Alcotest Array Taco_exec Taco_lower
