test/test_cin.mli:
