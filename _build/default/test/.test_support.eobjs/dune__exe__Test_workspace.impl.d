test/test_workspace.ml: Alcotest Cin Concretize Helpers Heuristics Index_notation Index_var List QCheck Schedule Taco_frontend Taco_ir Taco_tensor Tensor_var Workspace
