test/test_tensor.ml: Alcotest Array Helpers List Printf QCheck Taco_support Taco_tensor
