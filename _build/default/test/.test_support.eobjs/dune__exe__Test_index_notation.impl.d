test/test_index_notation.ml: Alcotest Helpers Index_notation Index_var Taco_frontend Taco_ir Taco_tensor Tensor_var
