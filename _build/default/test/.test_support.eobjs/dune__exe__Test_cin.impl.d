test/test_cin.ml: Alcotest Buffer Cin Cin_eval Concretize Helpers Index_notation Index_var List Stdlib String Taco_ir Taco_tensor Tensor_var
