test/test_io.ml: Alcotest Filename Helpers Sys Taco_kernels Taco_support Taco_tensor
