test/helpers.ml: Alcotest Array Cin_eval Index_var List QCheck QCheck_alcotest Taco_exec Taco_ir Taco_lower Taco_support Taco_tensor Tensor_var
