open Taco_ir
open Taco_ir.Var
module F = Taco_tensor.Format
module D = Taco_tensor.Dense
module T = Taco_tensor.Tensor
module I = Index_notation

let vi = Helpers.vi and vj = Helpers.vj and vk = Helpers.vk

let a = Helpers.csr_tv "A"
let b = Helpers.csr_tv "B"
let c = Helpers.csr_tv "C"
let ad = Helpers.dense_mat_tv "Ad"
let w = Helpers.ws_vec "w"

let acc tv vars = Cin.access tv vars

let stmt_testable = Alcotest.testable Cin.pp Cin.equal_stmt

(* Concretized form: free variables (i, j) outside the reduction (k). *)
let matmul_cin =
  Cin.foralls [ vi; vj; vk ]
    (Cin.accumulate (acc a [ vi; vj ])
       (Cin.Mul (Cin.Access (acc b [ vi; vk ]), Cin.Access (acc c [ vk; vj ]))))

let test_peel_foralls () =
  let vars, body = Cin.peel_foralls matmul_cin in
  Alcotest.(check int) "three loops" 3 (List.length vars);
  match body with Cin.Assignment _ -> () | _ -> Alcotest.fail "body not assignment"

let test_tensors () =
  Alcotest.(check (list string)) "written" [ "A" ]
    (List.map Tensor_var.name (Cin.tensors_written matmul_cin));
  Alcotest.(check (list string)) "read" [ "B"; "C" ]
    (List.map Tensor_var.name (Cin.tensors_read matmul_cin))

let test_uses_var () =
  Alcotest.(check bool) "uses k" true (Cin.uses_var matmul_cin vk);
  Alcotest.(check bool) "no l" false (Cin.uses_var matmul_cin Helpers.vl)

let test_contains_sequence () =
  Alcotest.(check bool) "no sequence" false (Cin.contains_sequence matmul_cin);
  let seq = Cin.sequence (Cin.assign (acc w [ vj ]) (Cin.Literal 1.)) (Cin.assign (acc w [ vj ]) (Cin.Literal 2.)) in
  Alcotest.(check bool) "sequence found" true (Cin.contains_sequence (Cin.forall vj seq))

let test_subst () =
  let from = Cin.Mul (Cin.Access (acc b [ vi; vk ]), Cin.Access (acc c [ vk; vj ])) in
  let into = Cin.Access (acc w [ vj ]) in
  let s = Cin.subst_stmt ~from ~into matmul_cin in
  Alcotest.(check bool) "B gone" false
    (List.exists (fun tv -> Tensor_var.name tv = "B") (Cin.tensors_read s));
  Alcotest.(check bool) "w introduced" true
    (List.exists (fun tv -> Tensor_var.name tv = "w") (Cin.tensors_read s))

let test_rename () =
  let jc = Index_var.make "jc" in
  let s = Cin.rename_var ~from:vj ~into:jc matmul_cin in
  Alcotest.(check bool) "j gone" false (Cin.uses_var s vj);
  Alcotest.(check bool) "jc bound" true (Cin.uses_var s jc)

let test_simplify () =
  let x = Cin.Access (acc w [ vj ]) in
  let checks =
    [
      (Cin.Mul (Cin.Literal 0., x), Cin.Literal 0.);
      (Cin.Mul (Cin.Literal 1., x), x);
      (Cin.Add (Cin.Literal 0., x), x);
      (Cin.Sub (x, Cin.Literal 0.), x);
      (Cin.Div (x, Cin.Literal 1.), x);
      (Cin.Add (Cin.Literal 2., Cin.Literal 3.), Cin.Literal 5.);
      (Cin.Neg (Cin.Literal 2.), Cin.Literal (-2.));
      (Cin.Mul (Cin.Add (Cin.Literal 0., Cin.Literal 0.), x), Cin.Literal 0.);
    ]
  in
  List.iter
    (fun (input, expected) ->
      if not (Cin.equal_expr (Cin.simplify input) expected) then
        Alcotest.failf "simplify %s" (Stdlib.Format.asprintf "%a" Cin.pp_expr input))
    checks

let test_zero_tensor () =
  let e = Cin.Add (Cin.Mul (Cin.Access (acc b [ vi; vj ]), Cin.Access (acc c [ vi; vj ])), Cin.Access (acc c [ vi; vj ])) in
  let z = Cin.zero_tensor b e in
  Alcotest.(check bool) "B*C term vanished" true
    (Cin.equal_expr z (Cin.Access (acc c [ vi; vj ])))

let test_validate_unbound () =
  let s = Cin.forall vi (Cin.assign (acc a [ vi; vj ]) (Cin.Literal 1.)) in
  ignore (Helpers.get_err "unbound j" (Cin.validate s))

let test_validate_duplicate_binder () =
  let s = Cin.foralls [ vi; vi ] (Cin.assign (acc w [ vi ]) (Cin.Literal 1.)) in
  ignore (Helpers.get_err "duplicate binder" (Cin.validate s))

let test_validate_disconnected_where () =
  let s =
    Cin.foralls [ vi; vj ]
      (Cin.where
         ~consumer:(Cin.assign (acc a [ vi; vj ]) (Cin.Access (acc b [ vi; vj ])))
         ~producer:(Cin.assign (acc w [ vj ]) (Cin.Literal 1.)))
  in
  ignore (Helpers.get_err "producer unused" (Cin.validate s))

let test_pp_pseudocode () =
  let buf = Buffer.create 64 in
  let fmt = Stdlib.Format.formatter_of_buffer buf in
  Cin.pp_pseudocode fmt matmul_cin;
  Stdlib.Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  List.iter
    (fun needle ->
      let contains =
        let lh = String.length out and ln = String.length needle in
        let rec go i = i + ln <= lh && (String.sub out i ln = needle || go (i + 1)) in
        go 0
      in
      if not contains then Alcotest.failf "pseudocode missing %S in:\n%s" needle out)
    [ "for i ∈ I"; "for k ∈ K"; "A(i,j) += B(i,k) * C(k,j)" ]

let test_pp_forall_merge () =
  Alcotest.(check string) "merged foralls"
    "∀i,j,k A(i,j) += B(i,k) * C(k,j)" (Cin.to_string matmul_cin)

let test_concretize_matmul () =
  let stmt =
    I.assign a [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ])))
  in
  let cin = Helpers.get (Concretize.run stmt) in
  Alcotest.check stmt_testable "matmul form" matmul_cin cin

let test_concretize_implicit_reduction () =
  let stmt = I.assign a [ vi; vj ] (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ])) in
  let cin = Helpers.get (Concretize.run stmt) in
  Alcotest.check stmt_testable "implicit = explicit" matmul_cin cin

let test_concretize_no_reduction_keeps_assign () =
  let stmt = I.assign a [ vi; vj ] (I.Add (I.access b [ vi; vj ], I.access c [ vi; vj ])) in
  match Helpers.get (Concretize.run stmt) with
  | Cin.Forall (_, Cin.Forall (_, Cin.Assignment { op = Cin.Assign; _ })) -> ()
  | s -> Alcotest.failf "unexpected shape %s" (Cin.to_string s)

let test_concretize_scalar_temps () =
  let stmt =
    I.assign ad [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ])))
  in
  let cin = Helpers.get (Concretize.run ~scalar_temps:true stmt) in
  match cin with
  | Cin.Forall (_, Cin.Forall (_, Cin.Where (Cin.Assignment { op = Cin.Assign; _ }, Cin.Forall (red, Cin.Assignment { op = Cin.Accumulate; lhs; _ }))))
    ->
      Alcotest.(check bool) "reduces over k" true (Index_var.equal red vk);
      Alcotest.(check int) "scalar temp" 0 (Tensor_var.order lhs.Cin.tensor);
      Alcotest.(check bool) "temp is workspace" true (Tensor_var.is_workspace lhs.Cin.tensor)
  | s -> Alcotest.failf "unexpected shape %s" (Cin.to_string s)

let test_concretize_modes_agree () =
  let stmt =
    I.assign ad [ vi; vj ] (I.sum vk (I.Mul (I.access b [ vi; vk ], I.access c [ vk; vj ])))
  in
  let plain = Helpers.get (Concretize.run stmt) in
  let temps = Helpers.get (Concretize.run ~scalar_temps:true stmt) in
  let bt = Helpers.random_tensor 21 [| 4; 5 |] 0.4 F.csr in
  let ct = Helpers.random_tensor 22 [| 5; 3 |] 0.4 F.csr in
  let inputs = [ (b, bt); (c, ct) ] in
  Helpers.check_dense "same semantics" (Helpers.eval_cin plain inputs)
    (Helpers.eval_cin temps inputs)

let test_concretize_rejects_invalid () =
  let stmt = I.assign a [ vi; vj ] (I.access a [ vi; vj ]) in
  ignore (Helpers.get_err "invalid input" (Concretize.run stmt))

let test_eval_matmul () =
  let bt = Helpers.random_tensor 31 [| 4; 5 |] 0.5 F.csr in
  let ct = Helpers.random_tensor 32 [| 5; 3 |] 0.5 F.csr in
  let result = Helpers.eval_cin matmul_cin [ (b, bt); (c, ct) ] in
  let bd = T.to_dense bt and cd = T.to_dense ct in
  let expected = D.create [| 4; 3 |] in
  for i = 0 to 3 do
    for k = 0 to 4 do
      for j = 0 to 2 do
        D.add_at expected [| i; j |] (D.get bd [| i; k |] *. D.get cd [| k; j |])
      done
    done
  done;
  Helpers.check_dense "matmul" expected result

let test_eval_where_zeroes_workspace () =
  let s =
    Cin.forall vi
      (Cin.where
         ~consumer:(Cin.forall vj (Cin.assign (acc a [ vi; vj ]) (Cin.Access (acc w [ vj ]))))
         ~producer:(Cin.forall vj (Cin.accumulate (acc w [ vj ]) (Cin.Access (acc b [ vi; vj ])))))
  in
  let bt = Helpers.random_tensor 33 [| 4; 4 |] 0.4 F.csr in
  let result = Helpers.eval_cin s [ (b, bt) ] in
  Helpers.check_dense "copy through workspace" (T.to_dense bt) result

let test_eval_sequence_updates () =
  let av = Helpers.dense_vec_tv "a" in
  let bv = Helpers.dense_vec_tv "bv" in
  let cv = Helpers.dense_vec_tv "cv" in
  let s =
    Cin.sequence
      (Cin.forall vi (Cin.assign (acc av [ vi ]) (Cin.Access (acc bv [ vi ]))))
      (Cin.forall vi (Cin.accumulate (acc av [ vi ]) (Cin.Access (acc cv [ vi ]))))
  in
  let bt = Helpers.random_tensor 34 [| 6 |] 1.0 F.dense_vector in
  let ct = Helpers.random_tensor 35 [| 6 |] 1.0 F.dense_vector in
  let result = Helpers.eval_cin s [ (bv, bt); (cv, ct) ] in
  let expected = D.map2 ( +. ) (T.to_dense bt) (T.to_dense ct) in
  Helpers.check_dense "sequence add" expected result

let test_eval_range_conflict () =
  let bt = T.zero [| 4; 5 |] F.csr in
  let ct = T.zero [| 6; 3 |] F.csr in
  match
    Cin_eval.eval1 matmul_cin
      ~inputs:[ (b, T.to_dense bt); (c, T.to_dense ct) ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a range conflict error"

let test_eval_unranged_var () =
  let s = Cin.forall vi (Cin.assign (acc w [ vi ]) (Cin.Literal 1.)) in
  match Cin_eval.eval1 s ~inputs:[] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an unranged variable error"

let () =
  Alcotest.run "cin"
    [
      ( "analysis",
        [
          Alcotest.test_case "peel foralls" `Quick test_peel_foralls;
          Alcotest.test_case "tensors read/written" `Quick test_tensors;
          Alcotest.test_case "uses_var" `Quick test_uses_var;
          Alcotest.test_case "contains_sequence" `Quick test_contains_sequence;
          Alcotest.test_case "substitution" `Quick test_subst;
          Alcotest.test_case "alpha renaming" `Quick test_rename;
          Alcotest.test_case "simplify" `Quick test_simplify;
          Alcotest.test_case "zero_tensor" `Quick test_zero_tensor;
          Alcotest.test_case "pretty printing" `Quick test_pp_forall_merge;
          Alcotest.test_case "pseudocode printing" `Quick test_pp_pseudocode;
        ] );
      ( "validate",
        [
          Alcotest.test_case "unbound variable" `Quick test_validate_unbound;
          Alcotest.test_case "duplicate binder" `Quick test_validate_duplicate_binder;
          Alcotest.test_case "disconnected where" `Quick test_validate_disconnected_where;
        ] );
      ( "concretize",
        [
          Alcotest.test_case "matmul" `Quick test_concretize_matmul;
          Alcotest.test_case "implicit reductions" `Quick test_concretize_implicit_reduction;
          Alcotest.test_case "assign preserved" `Quick test_concretize_no_reduction_keeps_assign;
          Alcotest.test_case "scalar temps" `Quick test_concretize_scalar_temps;
          Alcotest.test_case "both modes agree semantically" `Quick test_concretize_modes_agree;
          Alcotest.test_case "invalid input rejected" `Quick test_concretize_rejects_invalid;
        ] );
      ( "eval",
        [
          Alcotest.test_case "matmul oracle" `Quick test_eval_matmul;
          Alcotest.test_case "where zeroes workspaces" `Quick test_eval_where_zeroes_workspace;
          Alcotest.test_case "sequence updates results" `Quick test_eval_sequence_updates;
          Alcotest.test_case "range conflicts detected" `Quick test_eval_range_conflict;
          Alcotest.test_case "unranged variables detected" `Quick test_eval_unranged_var;
        ] );
    ]
