module Dyn = Taco_support.Dyn_array
module Prng = Taco_support.Prng
module Util = Taco_support.Util

let test_dyn_int_push () =
  let t = Dyn.Int.create () in
  for x = 0 to 99 do
    Dyn.Int.push t x
  done;
  Alcotest.(check int) "length" 100 (Dyn.Int.length t);
  Alcotest.(check int) "get 42" 42 (Dyn.Int.get t 42);
  Alcotest.(check (array int)) "to_array" (Array.init 100 Fun.id) (Dyn.Int.to_array t)

let test_dyn_int_ensure () =
  let t = Dyn.Int.create () in
  Dyn.Int.push t 7;
  Dyn.Int.ensure t 5;
  Alcotest.(check int) "length after ensure" 5 (Dyn.Int.length t);
  Alcotest.(check (array int)) "zero fill" [| 7; 0; 0; 0; 0 |] (Dyn.Int.to_array t);
  Dyn.Int.ensure t 3;
  Alcotest.(check int) "ensure never shrinks" 5 (Dyn.Int.length t)

let test_dyn_int_bounds () =
  let t = Dyn.Int.create () in
  Dyn.Int.push t 1;
  Alcotest.check_raises "get out of range" (Invalid_argument "Dyn_array.Int.get")
    (fun () -> ignore (Dyn.Int.get t 1));
  Alcotest.check_raises "set out of range" (Invalid_argument "Dyn_array.Int.set")
    (fun () -> Dyn.Int.set t 3 0)

let test_dyn_int_sort () =
  let t = Dyn.Int.of_array [| 5; 3; 9; 1 |] in
  Dyn.Int.sort t;
  Alcotest.(check (array int)) "sorted" [| 1; 3; 5; 9 |] (Dyn.Int.to_array t)

let test_dyn_float_roundtrip () =
  let t = Dyn.Float.of_array [| 1.5; -2.25 |] in
  Dyn.Float.push t 3.75;
  Alcotest.(check (array (float 0.))) "roundtrip" [| 1.5; -2.25; 3.75 |]
    (Dyn.Float.to_array t);
  Dyn.Float.clear t;
  Alcotest.(check int) "cleared" 0 (Dyn.Float.length t)

let test_prng_deterministic () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_bounds () =
  let p = Prng.create 5 in
  for _ = 1 to 1000 do
    let x = Prng.int p 7 in
    if x < 0 || x >= 7 then Alcotest.fail "int out of bounds";
    let f = Prng.float p in
    if f < 0. || f >= 1. then Alcotest.fail "float out of bounds"
  done

let test_prng_split_independent () =
  let p = Prng.create 9 in
  let q = Prng.split p in
  let a1 = Prng.int p 1000000 in
  let b1 = Prng.int q 1000000 in
  Alcotest.(check bool) "streams differ" true (a1 <> b1 || Prng.int p 1000000 <> Prng.int q 1000000)

let test_sample_without_replacement () =
  let p = Prng.create 11 in
  let s = Prng.sample_without_replacement p ~n:100 ~k:30 in
  Alcotest.(check int) "size" 30 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "already sorted" sorted s;
  let distinct = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 30 (List.length distinct);
  Array.iter (fun x -> if x < 0 || x >= 100 then Alcotest.fail "out of range") s

let test_sample_full_range () =
  let p = Prng.create 13 in
  let s = Prng.sample_without_replacement p ~n:10 ~k:10 in
  Alcotest.(check (array int)) "k = n takes everything" (Array.init 10 Fun.id) s

let test_binary_search () =
  let a = [| 1; 3; 5; 7; 9; 11 |] in
  Alcotest.(check (option int)) "found" (Some 2) (Util.binary_search a 0 6 5);
  Alcotest.(check (option int)) "absent" None (Util.binary_search a 0 6 6);
  Alcotest.(check (option int)) "outside slice" None (Util.binary_search a 0 2 5);
  Alcotest.(check (option int)) "in slice" (Some 4) (Util.binary_search a 3 6 9)

let test_lower_bound () =
  let a = [| 2; 4; 4; 8 |] in
  Alcotest.(check int) "before" 0 (Util.lower_bound a 0 4 1);
  Alcotest.(check int) "first equal" 1 (Util.lower_bound a 0 4 4);
  Alcotest.(check int) "between" 3 (Util.lower_bound a 0 4 5);
  Alcotest.(check int) "after" 4 (Util.lower_bound a 0 4 100)

let test_sort_paired () =
  let keys = [| 9; 3; 7; 1 |] and payload = [| 9.; 3.; 7.; 1. |] in
  Util.sort_paired keys payload 0 4;
  Alcotest.(check (array int)) "keys" [| 1; 3; 7; 9 |] keys;
  Alcotest.(check (array (float 0.))) "payload follows" [| 1.; 3.; 7.; 9. |] payload

let test_sort_paired_slice () =
  let keys = [| 9; 3; 7; 1 |] and payload = [| 9.; 3.; 7.; 1. |] in
  Util.sort_paired keys payload 1 3;
  Alcotest.(check (array int)) "only the slice" [| 9; 3; 7; 1 |] keys

let test_median () =
  Alcotest.(check (float 0.)) "odd" 3. (Util.median [ 5.; 1.; 3. ]);
  Alcotest.(check (float 0.)) "even" 2.5 (Util.median [ 4.; 1.; 2.; 3. ])

let test_dedup_subsets () =
  Alcotest.(check (list int)) "dedup keeps order" [ 3; 1; 2 ]
    (Util.dedup_stable [ 3; 1; 3; 2; 1 ]);
  Alcotest.(check int) "subset count" 8 (List.length (Util.subsets [ 1; 2; 3 ]))

let prop_binary_search_agrees =
  Helpers.qcheck_case "binary_search agrees with linear search"
    QCheck.(pair (list_of_size Gen.(1 -- 30) (0 -- 50)) (0 -- 50))
    (fun (xs, x) ->
      let a = Array.of_list (List.sort_uniq compare xs) in
      let n = Array.length a in
      let expected = Array.exists (( = ) x) a in
      let got = Util.binary_search a 0 n x <> None in
      expected = got)

let prop_sample_distinct =
  Helpers.qcheck_case "sample_without_replacement yields distinct sorted values"
    QCheck.(pair (1 -- 200) (0 -- 200))
    (fun (n, seed) ->
      let p = Prng.create seed in
      let k = min n (1 + (seed mod n)) in
      let s = Prng.sample_without_replacement p ~n ~k in
      Array.length s = k
      && List.length (List.sort_uniq compare (Array.to_list s)) = k
      && Array.for_all (fun x -> x >= 0 && x < n) s)

let () =
  Alcotest.run "support"
    [
      ( "dyn_array",
        [
          Alcotest.test_case "int push/get/to_array" `Quick test_dyn_int_push;
          Alcotest.test_case "int ensure zero-fills" `Quick test_dyn_int_ensure;
          Alcotest.test_case "int bounds checking" `Quick test_dyn_int_bounds;
          Alcotest.test_case "int sort" `Quick test_dyn_int_sort;
          Alcotest.test_case "float roundtrip and clear" `Quick test_dyn_float_roundtrip;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic per seed" `Quick test_prng_deterministic;
          Alcotest.test_case "bounded outputs" `Quick test_prng_bounds;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "floyd sampling" `Quick test_sample_without_replacement;
          Alcotest.test_case "sampling the full range" `Quick test_sample_full_range;
          prop_sample_distinct;
        ] );
      ( "util",
        [
          Alcotest.test_case "binary_search" `Quick test_binary_search;
          Alcotest.test_case "lower_bound" `Quick test_lower_bound;
          Alcotest.test_case "sort_paired" `Quick test_sort_paired;
          Alcotest.test_case "sort_paired slice only" `Quick test_sort_paired_slice;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "dedup and subsets" `Quick test_dedup_subsets;
          prop_binary_search_agrees;
        ] );
    ]
