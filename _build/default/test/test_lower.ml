open Taco_ir
open Taco_ir.Var
module F = Taco_tensor.Format
module ML = Taco_lower.Merge_lattice
module Lower = Taco_lower.Lower
module Imp = Taco_lower.Imp
module C = Taco_lower.Codegen_c

let vi = Helpers.vi and vj = Helpers.vj and vk = Helpers.vk

let a = Helpers.csr_tv "A"
let b = Helpers.csr_tv "B"
let c = Helpers.csr_tv "C"
let d = Helpers.csr_tv "D"
let ad = Helpers.dense_mat_tv "Ad"
let dd = Helpers.dense_mat_tv "Dd"
let w = Helpers.ws_vec "w"
let acc = Cin.access
let av tv vars = Cin.Access (acc tv vars)
let av_e = av

(* Iterator ids: B -> 0, C -> 1, D -> 2; dense tensors have no id. *)
let sparse_id (x : Cin.access) =
  match Tensor_var.name x.Cin.tensor with
  | "B" -> Some 0
  | "C" -> Some 1
  | "D" -> Some 2
  | _ -> None

let test_lattice_mul () =
  let l = ML.build ~sparse_id (Cin.Mul (av b [ vi; vj ], av c [ vi; vj ])) in
  Alcotest.(check bool) "no full" false l.ML.needs_full;
  Alcotest.(check (list (list int))) "single intersection point" [ [ 0; 1 ] ] l.ML.points

let test_lattice_add () =
  let l = ML.build ~sparse_id (Cin.Add (av b [ vi; vj ], av c [ vi; vj ])) in
  Alcotest.(check bool) "no full" false l.ML.needs_full;
  Alcotest.(check (list (list int))) "union closure" [ [ 0; 1 ]; [ 0 ]; [ 1 ] ] l.ML.points

let test_lattice_mixed () =
  (* B*C + D: points {B,C,D}? no — product of sums: {BC} x {D} ∪ {BC} ∪ {D}. *)
  let l =
    ML.build ~sparse_id
      (Cin.Add (Cin.Mul (av b [ vi; vj ], av c [ vi; vj ]), av d [ vi; vj ]))
  in
  Alcotest.(check (list (list int))) "sum of product"
    [ [ 0; 1; 2 ]; [ 0; 1 ]; [ 2 ] ] l.ML.points

let test_lattice_dense_union () =
  (* B + dense: dense contributes the empty point -> needs_full. *)
  let l = ML.build ~sparse_id (Cin.Add (av b [ vi; vj ], av ad [ vi; vj ])) in
  Alcotest.(check bool) "needs full" true l.ML.needs_full;
  Alcotest.(check (list (list int))) "sparse points remain" [ [ 0 ] ] l.ML.points

let test_lattice_dense_mul () =
  (* B * dense: intersection with a dense operand iterates B only. *)
  let l = ML.build ~sparse_id (Cin.Mul (av b [ vi; vj ], av ad [ vi; vj ])) in
  Alcotest.(check bool) "no full" false l.ML.needs_full;
  Alcotest.(check (list (list int))) "B only" [ [ 0 ] ] l.ML.points

let test_lattice_sub_points () =
  let l = ML.build ~sparse_id (Cin.Add (av b [ vi; vj ], av c [ vi; vj ])) in
  Alcotest.(check (list (list int))) "subs of {0,1}"
    [ [ 0; 1 ]; [ 0 ]; [ 1 ] ] (ML.sub_points l [ 0; 1 ]);
  Alcotest.(check (list (list int))) "subs of {0}" [ [ 0 ] ] (ML.sub_points l [ 0 ])

(* ------------------------------------------------------------------ *)
(* Lowering structure                                                  *)
(* ------------------------------------------------------------------ *)

let lower_ok ?(mode = Lower.Compute) stmt = Helpers.get (Lower.lower ~mode stmt)

let csource ?mode stmt = C.emit (lower_ok ?mode stmt).Lower.kernel

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let index_of hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i =
    if i + ln > lh then Alcotest.failf "pattern %S not found" needle
    else if String.sub hay i ln = needle then i
    else go (i + 1)
  in
  go 0

let check_contains src pats =
  List.iter
    (fun p -> if not (contains src p) then Alcotest.failf "missing pattern %S in:\n%s" p src)
    pats

let test_scatter_rejected () =
  let s =
    Cin.foralls [ vi; vk; vj ]
      (Cin.accumulate (acc a [ vi; vj ]) (Cin.Mul (av b [ vi; vk ], av c [ vk; vj ])))
  in
  let e = Helpers.get_err "scatter" (Lower.lower ~mode:Lower.Compute s) in
  Alcotest.(check bool) "mentions precompute" true (contains e "precompute")

let test_wrong_loop_order_rejected () =
  (* CSC matrix iterated row-major without reorder. *)
  let bcsc = Tensor_var.make "B" ~order:2 ~format:F.csc in
  let s = Cin.foralls [ vi; vj ] (Cin.assign (acc ad [ vi; vj ]) (av bcsc [ vi; vj ])) in
  let e = Helpers.get_err "format order" (Lower.lower ~mode:Lower.Compute s) in
  Alcotest.(check bool) "mentions reorder" true (contains e "reorder")

let test_fig1c_structure () =
  (* Dense-result matmul: memset + dense i loop + two sparse loops + +=. *)
  let s =
    Cin.foralls [ vi; vk; vj ]
      (Cin.accumulate (acc ad [ vi; vj ]) (Cin.Mul (av b [ vi; vk ], av c [ vk; vj ])))
  in
  check_contains (csource s)
    [
      "memset(Ad_vals";
      "for (int32_t i = 0; i < Ad1_dimension; i++)";
      "for (int32_t pB2 = B2_pos[i]; pB2 < B2_pos[(i + 1)]; pB2++)";
      "int32_t k = B2_crd[pB2];";
      "Ad_vals[((i * Ad2_dimension) + j)] += (B_vals[pB2] * C_vals[pC2]);";
    ]

let test_fig4a_merge_structure () =
  (* Inner product of rows: while loop with min and all-match test. *)
  let avec = Helpers.dense_vec_tv "a" in
  let s =
    Cin.foralls [ vi; vj ]
      (Cin.accumulate (acc avec [ vi ]) (Cin.Mul (av b [ vi; vj ], av c [ vi; vj ])))
  in
  check_contains (csource s)
    [
      "while (((pB2 < B2_pos[(i + 1)]) && (pC2 < C2_pos[(i + 1)])))";
      "int32_t j = TACO_MIN(jB, jC);";
      "if (((jB == j) && (jC == j)))";
      "if ((jB == j))";
      "if ((jC == j))";
    ]

let test_fig5a_union_structure () =
  let s =
    Cin.foralls [ vi; vj ]
      (Cin.assign (acc a [ vi; vj ]) (Cin.Add (av b [ vi; vj ], av c [ vi; vj ])))
  in
  let src = csource s in
  check_contains src
    [
      "while (((pB2 < B2_pos[(i + 1)]) && (pC2 < C2_pos[(i + 1)])))";
      "A_vals[pA2] = (B_vals[pB2] + C_vals[pC2]);";
      "while ((pB2 < B2_pos[(i + 1)]))";
      "while ((pC2 < C2_pos[(i + 1)]))";
    ]

let test_workspace_memset_hoisting () =
  (* Fig 5b: covered workspace memset hoists to the top; the copy loop
     restores zeros. *)
  let s =
    Cin.forall vi
      (Cin.where
         ~consumer:(Cin.forall vj (Cin.assign (acc a [ vi; vj ]) (av w [ vj ])))
         ~producer:
           (Cin.sequence
              (Cin.forall vj (Cin.assign (acc w [ vj ]) (av b [ vi; vj ])))
              (Cin.forall vj (Cin.accumulate (acc w [ vj ]) (av c [ vi; vj ])))))
  in
  let src = csource s in
  check_contains src [ "memset(w_vals"; "w_vals[j] = 0.0;" ];
  (* The memset must appear before the i loop, not inside it. *)
  let memset_at = index_of src "memset(w_vals" in
  let loop_at = index_of src "for (int32_t i" in
  Alcotest.(check bool) "memset hoisted above the row loop" true (memset_at < loop_at)

let test_workspace_memset_inside () =
  (* Fig 10: a consumer that multiplies the workspace with another sparse
     operand does not cover it; the memset stays inside the loops. *)
  let v_ws = Tensor_var.workspace "v" ~order:1 ~format:F.dense_vector in
  let s =
    Cin.forall vi
      (Cin.forall vk
         (Cin.where
            ~consumer:
              (Cin.forall vj
                 (Cin.accumulate (acc v_ws [ vj ]) (Cin.Mul (av w [ vj ], av d [ vk; vj ]))))
            ~producer:(Cin.forall vj (Cin.accumulate (acc w [ vj ]) (av b [ vi; vj ])))))
  in
  (* v is the result here? No: v is a workspace; make a dense result read v. *)
  let s =
    Cin.forall vi
      (Cin.where
         ~consumer:(Cin.forall vj (Cin.assign (acc ad [ vi; vj ]) (av v_ws [ vj ])))
         ~producer:(match s with Cin.Forall (_, inner) -> inner | _ -> assert false))
  in
  let src = csource s in
  (* memset of w must be inside the k loop *)
  let k_at = index_of src "for (int32_t k" in
  let w_memset_at = index_of src "memset(w_vals" in
  Alcotest.(check bool) "w memset inside the k loop" true (w_memset_at > k_at)

let test_assembly_kernel_structure () =
  (* Fig 8: guard array, coordinate list, sort, realloc doubling. *)
  let s =
    Cin.forall vi
      (Cin.where
         ~consumer:(Cin.forall vj (Cin.assign (acc a [ vi; vj ]) (av w [ vj ])))
         ~producer:
           (Cin.foralls [ vk; vj ]
              (Cin.accumulate (acc w [ vj ]) (Cin.Mul (av b [ vi; vk ], av c [ vk; vj ])))))
  in
  let src = csource ~mode:(Lower.Assemble { emit_values = true; sorted = true }) s in
  check_contains src
    [
      "if (!(w_seen[j]))";
      "w_list[w_list_size] = j;";
      "qsort(w_list";
      "A2_crd_capacity = (A2_crd_capacity * 2);";
      "A2_crd = realloc(";
      "A2_pos[(i + 1)] = pA2;";
    ]

let test_assembly_only_kernel () =
  (* emit_values:false must not touch A_vals. *)
  let s =
    Cin.forall vi
      (Cin.where
         ~consumer:(Cin.forall vj (Cin.assign (acc a [ vi; vj ]) (av w [ vj ])))
         ~producer:
           (Cin.foralls [ vk; vj ]
              (Cin.accumulate (acc w [ vj ]) (Cin.Mul (av b [ vi; vk ], av c [ vk; vj ])))))
  in
  let src = csource ~mode:(Lower.Assemble { emit_values = false; sorted = true }) s in
  Alcotest.(check bool) "no value stores" false (contains src "A_vals[pA2] =")

let test_fig7_csf_structure () =
  let a3 = Helpers.dense_mat_tv "Ad" in
  let b3 = Tensor_var.make "B" ~order:3 ~format:(F.csf 3) in
  let cv = Tensor_var.make "c" ~order:1 ~format:F.sparse_vector in
  let s =
    Cin.foralls [ vi; vj; vk ]
      (Cin.accumulate (acc a3 [ vi; vj ]) (Cin.Mul (av b3 [ vi; vj; vk ], av cv [ vk ])))
  in
  check_contains (csource s)
    [
      "for (int32_t pB1 = B1_pos[0]; pB1 < B1_pos[1]; pB1++)";
      "int32_t i = B1_crd[pB1];";
      "while (((pB3 < B3_pos[(pB2 + 1)]) && (pc1 < c1_pos[1])))";
      "int32_t k = TACO_MIN(kB, kc);";
    ]

let test_kernel_params () =
  let s =
    Cin.foralls [ vi; vj ] (Cin.assign (acc ad [ vi; vj ]) (av b [ vi; vj ]))
  in
  let info = lower_ok s in
  let names = List.map (fun p -> p.Imp.p_name) info.Lower.kernel.Imp.k_params in
  List.iter
    (fun expected ->
      if not (List.mem expected names) then Alcotest.failf "missing param %s" expected)
    [ "Ad1_dimension"; "Ad2_dimension"; "Ad_vals"; "B1_dimension"; "B2_dimension"; "B2_pos"; "B2_crd"; "B_vals" ];
  Alcotest.(check string) "naming helpers" "B2_pos" (Lower.pos_var b 1);
  Alcotest.(check string) "crd helper" "B2_crd" (Lower.crd_var b 1);
  Alcotest.(check string) "dim helper" "B1_dimension" (Lower.dimension_var b 0);
  Alcotest.(check string) "vals helper" "B_vals" (Lower.vals_var b)

let test_imp_check_catches_undeclared () =
  let k =
    {
      Imp.k_name = "bad";
      k_params = [];
      k_body = [ Imp.Assign ("x", Imp.Int_lit 1) ];
    }
  in
  match Imp.check k with Error _ -> () | Ok () -> Alcotest.fail "expected check failure"

let test_imp_smart_constructors () =
  Alcotest.(check bool) "0+x" true (Imp.add (Imp.Int_lit 0) (Imp.Var "x") = Imp.Var "x");
  Alcotest.(check bool) "x*1" true (Imp.mul (Imp.Var "x") (Imp.Int_lit 1) = Imp.Var "x");
  Alcotest.(check bool) "0*x" true (Imp.mul (Imp.Int_lit 0) (Imp.Var "x") = Imp.Int_lit 0);
  Alcotest.(check bool) "const fold" true (Imp.add (Imp.Int_lit 2) (Imp.Int_lit 3) = Imp.Int_lit 5)

let test_strip_mining () =
  (* Dense-result matmul with the j loop split by 4: the generated code
     has the outer/inner loop pair with a bounds guard, and computes the
     same values. *)
  let s =
    Cin.foralls [ vi; vk; vj ]
      (Cin.accumulate (acc ad [ vi; vj ]) (Cin.Mul (av b [ vi; vk ], av dd [ vk; vj ])))
  in
  let info = Helpers.get (Lower.lower ~splits:[ (vj, 4) ] ~mode:Lower.Compute s) in
  let src = C.emit info.Lower.kernel in
  check_contains src
    [ "for (int32_t j_o = 0;"; "for (int32_t j_i = 0; j_i < 4; j_i++)"; "if ((j <" ];
  (* Same values as the unsplit kernel (dimension 6 is not a multiple of
     4, exercising the guard). *)
  let bt = Helpers.random_tensor 171 [| 5; 7 |] 0.4 Taco_tensor.Format.csr in
  let dt = Helpers.random_tensor 172 [| 7; 6 |] 1.0 Taco_tensor.Format.dense_matrix in
  let inputs = [ (b, bt); (dd, dt) ] in
  let kern = Taco_exec.Kernel.prepare info in
  let split_result = Taco_exec.Kernel.run_dense kern ~inputs ~dims:[| 5; 6 |] in
  let oracle = Helpers.eval_cin s inputs in
  Helpers.check_dense "strip-mined result" oracle (Taco_tensor.Tensor.to_dense split_result)

let test_strip_mining_rejects_sparse () =
  let avec = Helpers.dense_vec_tv "a" in
  let s = Cin.foralls [ vi; vj ] (Cin.accumulate (acc avec [ vi ]) (av b [ vi; vj ])) in
  let e = Helpers.get_err "sparse split" (Lower.lower ~splits:[ (vj, 8) ] ~mode:Lower.Compute s) in
  Alcotest.(check bool) "mentions strip-mine" true (contains e "strip-mine")

let test_strip_mining_bad_factor () =
  let s = Cin.foralls [ vi; vj ] (Cin.assign (acc ad [ vi; vj ]) (av dd [ vi; vj ])) in
  ignore (Helpers.get_err "bad factor" (Lower.lower ~splits:[ (vj, 0) ] ~mode:Lower.Compute s))

let test_mixed_precision_workspace () =
  (* §III: the workspace's component type can differ from operands and
     result. Accumulating a long sum in a single-precision workspace
     loses digits that a double workspace keeps. *)
  let av = Helpers.dense_vec_tv "a" in
  let w0 = Tensor_var.workspace "t" ~order:0 ~format:(Taco_tensor.Format.of_levels []) in
  let s =
    Cin.forall vi
      (Cin.where
         ~consumer:(Cin.assign (acc av [ vi ]) (Cin.Access (acc w0 [])))
         ~producer:(Cin.forall vj (Cin.accumulate (acc w0 []) (av_e dd [ vi; vj ]))))
  in
  (* Values chosen so single-precision accumulation visibly drifts. *)
  let n = 400 in
  let d =
    Taco_tensor.Dense.init [| 2; n |] (fun c ->
        if c.(1) = 0 then 1e8 else 0.0625 +. (1e-4 *. float_of_int c.(1)))
  in
  let dt = Taco_tensor.Tensor.of_dense d Taco_tensor.Format.dense_matrix in
  let run ~single =
    let single_precision = if single then [ w0 ] else [] in
    let info = Helpers.get (Lower.lower ~single_precision ~mode:Lower.Compute s) in
    let kern = Taco_exec.Kernel.prepare info in
    Taco_tensor.Tensor.vals (Taco_exec.Kernel.run_dense kern ~inputs:[ (dd, dt) ] ~dims:[| 2 |])
  in
  let double_result = (run ~single:false).(0) in
  let single_result = (run ~single:true).(0) in
  let exact = Taco_tensor.Dense.buffer d |> Array.to_list |> List.filteri (fun q _ -> q < n) |> List.fold_left ( +. ) 0. in
  Alcotest.(check (float 1e-6)) "double accumulation is exact enough" exact double_result;
  Alcotest.(check bool) "single accumulation drifts" true
    (Float.abs (single_result -. exact) > Float.abs (double_result -. exact));
  (* And the emitted C shows the rounding cast. *)
  let info = Helpers.get (Lower.lower ~single_precision:[ w0 ] ~mode:Lower.Compute s) in
  check_contains (C.emit info.Lower.kernel) [ "(double)(float)(" ]

let test_two_results_rejected () =
  let s =
    Cin.forall vi
      (Cin.sequence
         (Cin.assign (acc (Helpers.dense_vec_tv "x") [ vi ]) (Cin.Literal 1.))
         (Cin.assign (acc (Helpers.dense_vec_tv "y") [ vi ]) (Cin.Literal 2.)))
  in
  ignore (Helpers.get_err "two results" (Lower.lower ~mode:Lower.Compute s))

let () =
  ignore dd;
  Alcotest.run "lower"
    [
      ( "merge_lattice",
        [
          Alcotest.test_case "multiplication intersects" `Quick test_lattice_mul;
          Alcotest.test_case "addition unions" `Quick test_lattice_add;
          Alcotest.test_case "sum of products" `Quick test_lattice_mixed;
          Alcotest.test_case "dense operand in a union" `Quick test_lattice_dense_union;
          Alcotest.test_case "dense operand in a product" `Quick test_lattice_dense_mul;
          Alcotest.test_case "sub points" `Quick test_lattice_sub_points;
        ] );
      ( "errors",
        [
          Alcotest.test_case "scatter into sparse result" `Quick test_scatter_rejected;
          Alcotest.test_case "loop order vs format order" `Quick test_wrong_loop_order_rejected;
          Alcotest.test_case "two results" `Quick test_two_results_rejected;
        ] );
      ( "paper listings",
        [
          Alcotest.test_case "fig 1c dense-result matmul" `Quick test_fig1c_structure;
          Alcotest.test_case "fig 4a merge loop" `Quick test_fig4a_merge_structure;
          Alcotest.test_case "fig 5a union merge" `Quick test_fig5a_union_structure;
          Alcotest.test_case "fig 5b memset hoisting" `Quick test_workspace_memset_hoisting;
          Alcotest.test_case "fig 10 memset placement" `Quick test_workspace_memset_inside;
          Alcotest.test_case "fig 8 assembly kernel" `Quick test_assembly_kernel_structure;
          Alcotest.test_case "assembly-only kernels" `Quick test_assembly_only_kernel;
          Alcotest.test_case "fig 7 csf tensor-vector" `Quick test_fig7_csf_structure;
        ] );
      ( "imp",
        [
          Alcotest.test_case "parameter naming" `Quick test_kernel_params;
          Alcotest.test_case "check catches undeclared" `Quick test_imp_check_catches_undeclared;
          Alcotest.test_case "smart constructors fold" `Quick test_imp_smart_constructors;
        ] );
      ( "mixed precision",
        [ Alcotest.test_case "single vs double workspace" `Quick test_mixed_precision_workspace ] );
      ( "strip mining",
        [
          Alcotest.test_case "splits dense loops" `Quick test_strip_mining;
          Alcotest.test_case "rejects sparse loops" `Quick test_strip_mining_rejects_sparse;
          Alcotest.test_case "rejects bad factors" `Quick test_strip_mining_bad_factor;
        ] );
    ]
