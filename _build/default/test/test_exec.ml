module Imp = Taco_lower.Imp
module Compile = Taco_exec.Compile

let kernel ?(params = []) body = { Imp.k_name = "t"; k_params = params; k_body = body }

let run ?(args = []) k = Compile.run (Compile.compile k) ~args

let read_int reader name =
  match reader name with
  | Compile.Aint v -> v
  | _ -> Alcotest.fail "expected int"

let read_iarr reader name =
  match reader name with
  | Compile.Aint_array v -> v
  | _ -> Alcotest.fail "expected int array"

let read_farr reader name =
  match reader name with
  | Compile.Afloat_array v -> v
  | _ -> Alcotest.fail "expected float array"

let v = fun n -> Imp.Var n
let i = fun n -> Imp.Int_lit n

let test_arithmetic () =
  let r =
    run
      (kernel
         [
           Imp.Decl (Imp.Int, "x", Imp.Binop (Imp.Add, i 2, Imp.Binop (Imp.Mul, i 3, i 4)));
           Imp.Decl (Imp.Int, "y", Imp.Binop (Imp.Min, v "x", i 10));
           Imp.Decl (Imp.Int, "z", Imp.Binop (Imp.Max, v "x", i 100));
           Imp.Decl (Imp.Int, "q", Imp.Binop (Imp.Div, v "x", i 5));
         ])
  in
  Alcotest.(check int) "x" 14 (read_int r "x");
  Alcotest.(check int) "min" 10 (read_int r "y");
  Alcotest.(check int) "max" 100 (read_int r "z");
  Alcotest.(check int) "div" 2 (read_int r "q")

let test_float_arithmetic () =
  let r =
    run
      (kernel
         [
           Imp.Decl (Imp.Float, "x", Imp.Binop (Imp.Sub, Imp.Float_lit 1.5, Imp.Float_lit 0.25));
           Imp.Decl (Imp.Float, "y", Imp.Binop (Imp.Div, v "x", Imp.Float_lit 2.));
         ])
  in
  (match r "y" with
  | Compile.Afloat f -> Alcotest.(check (float 1e-12)) "y" 0.625 f
  | _ -> Alcotest.fail "expected float")

let test_for_loop () =
  let r =
    run
      (kernel
         [
           Imp.Alloc (Imp.Int, "a", i 10);
           Imp.For ("x", i 0, i 10, [ Imp.Store ("a", v "x", Imp.Binop (Imp.Mul, v "x", v "x")) ]);
         ])
  in
  Alcotest.(check (array int)) "squares" (Array.init 10 (fun x -> x * x)) (read_iarr r "a")

let test_while_and_if () =
  let r =
    run
      (kernel
         [
           Imp.Decl (Imp.Int, "n", i 0);
           Imp.Decl (Imp.Int, "sum", i 0);
           Imp.While
             ( Imp.Binop (Imp.Lt, v "n", i 10),
               [
                 Imp.If
                   ( Imp.Binop (Imp.Eq, Imp.Binop (Imp.Sub, v "n", Imp.Binop (Imp.Mul, Imp.Binop (Imp.Div, v "n", i 2), i 2)), i 0),
                     [ Imp.Assign ("sum", Imp.Binop (Imp.Add, v "sum", v "n")) ],
                     [] );
                 Imp.Assign ("n", Imp.Binop (Imp.Add, v "n", i 1));
               ] );
         ])
  in
  Alcotest.(check int) "sum of evens below 10" 20 (read_int r "sum")

let test_realloc_preserves () =
  let r =
    run
      (kernel
         [
           Imp.Alloc (Imp.Int, "a", i 4);
           Imp.For ("x", i 0, i 4, [ Imp.Store ("a", v "x", v "x") ]);
           Imp.Realloc ("a", i 16);
           Imp.Store ("a", i 10, i 99);
         ])
  in
  let a = read_iarr r "a" in
  Alcotest.(check int) "grown" 16 (Array.length a);
  Alcotest.(check int) "content preserved" 3 a.(3);
  Alcotest.(check int) "new cell" 99 a.(10)

let test_memset () =
  let r =
    run
      (kernel
         [
           Imp.Alloc (Imp.Float, "a", i 5);
           Imp.For ("x", i 0, i 5, [ Imp.Store ("a", v "x", Imp.Float_lit 7.) ]);
           Imp.Memset ("a", i 3);
         ])
  in
  Alcotest.(check (array (float 0.))) "prefix zeroed" [| 0.; 0.; 0.; 7.; 7. |] (read_farr r "a")

let test_sort_range () =
  let r =
    run
      ~args:[ ("a", Compile.Aint_array [| 5; 4; 3; 2; 1 |]) ]
      (kernel
         ~params:[ { Imp.p_name = "a"; p_dtype = Imp.Int; p_array = true; p_output = true } ]
         [ Imp.Sort ("a", i 1, i 4) ])
  in
  Alcotest.(check (array int)) "slice sorted" [| 5; 2; 3; 4; 1 |] (read_iarr r "a")

let test_bool_arrays_and_ternary () =
  let r =
    run
      (kernel
         [
           Imp.Alloc (Imp.Bool, "seen", i 4);
           Imp.Store ("seen", i 2, Imp.Bool_lit true);
           Imp.Decl (Imp.Int, "x", Imp.Ternary (Imp.Load ("seen", i 2), i 1, i 0));
           Imp.Decl (Imp.Int, "y", Imp.Ternary (Imp.Not (Imp.Load ("seen", i 1)), i 1, i 0));
         ])
  in
  Alcotest.(check int) "ternary true" 1 (read_int r "x");
  Alcotest.(check int) "not false" 1 (read_int r "y")

let test_store_add () =
  let r =
    run
      (kernel
         [
           Imp.Alloc (Imp.Float, "a", i 2);
           Imp.For ("x", i 0, i 5, [ Imp.Store_add ("a", i 0, Imp.Float_lit 1.5) ]);
         ])
  in
  Alcotest.(check (float 1e-12)) "accumulated" 7.5 (read_farr r "a").(0)

let test_param_binding () =
  let k =
    kernel
      ~params:
        [
          { Imp.p_name = "n"; p_dtype = Imp.Int; p_array = false; p_output = false };
          { Imp.p_name = "xs"; p_dtype = Imp.Float; p_array = true; p_output = false };
        ]
      [
        Imp.Decl (Imp.Float, "sum", Imp.Float_lit 0.);
        Imp.For ("q", i 0, v "n", [ Imp.Assign ("sum", Imp.Binop (Imp.Add, v "sum", Imp.Load ("xs", v "q"))) ]);
      ]
  in
  let r = run ~args:[ ("n", Compile.Aint 3); ("xs", Compile.Afloat_array [| 1.; 2.; 3.; 100. |]) ] k in
  (match r "sum" with
  | Compile.Afloat f -> Alcotest.(check (float 1e-12)) "sum of first n" 6. f
  | _ -> Alcotest.fail "float expected")

let test_missing_binding () =
  let k =
    kernel ~params:[ { Imp.p_name = "n"; p_dtype = Imp.Int; p_array = false; p_output = false } ] []
  in
  Alcotest.(check bool) "missing binding raises" true
    (match (run k : string -> Compile.arg) with exception Invalid_argument _ -> true | _ -> false)

let test_type_errors_rejected () =
  let bad1 = kernel [ Imp.Decl (Imp.Int, "x", Imp.Float_lit 1.) ] in
  Alcotest.(check bool) "float in int context" true
    (match Compile.compile bad1 with exception Invalid_argument _ -> true | _ -> false);
  let bad2 = kernel [ Imp.Decl (Imp.Int, "x", Imp.Var "nope") ] in
  Alcotest.(check bool) "unknown variable" true
    (match Compile.compile bad2 with exception Invalid_argument _ -> true | _ -> false);
  let bad3 =
    kernel
      [ Imp.Alloc (Imp.Float, "a", i 2); Imp.Decl (Imp.Int, "x", Imp.Load ("a", i 0)) ]
  in
  Alcotest.(check bool) "float array in int load" true
    (match Compile.compile bad3 with exception Invalid_argument _ -> true | _ -> false)

let test_output_shared_inplace () =
  (* Arrays bound as args are mutated in place, not copied. *)
  let buf = [| 0.; 0. |] in
  let k =
    kernel
      ~params:[ { Imp.p_name = "out"; p_dtype = Imp.Float; p_array = true; p_output = true } ]
      [ Imp.Store ("out", i 1, Imp.Float_lit 42.) ]
  in
  ignore (run ~args:[ ("out", Compile.Afloat_array buf) ] k : string -> Compile.arg);
  Alcotest.(check (float 0.)) "written through" 42. buf.(1)

let () =
  Alcotest.run "exec"
    [
      ( "expressions",
        [
          Alcotest.test_case "integer arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "float arithmetic" `Quick test_float_arithmetic;
          Alcotest.test_case "bool arrays and ternary" `Quick test_bool_arrays_and_ternary;
        ] );
      ( "statements",
        [
          Alcotest.test_case "for loop" `Quick test_for_loop;
          Alcotest.test_case "while and if" `Quick test_while_and_if;
          Alcotest.test_case "realloc preserves contents" `Quick test_realloc_preserves;
          Alcotest.test_case "memset prefix" `Quick test_memset;
          Alcotest.test_case "sort range" `Quick test_sort_range;
          Alcotest.test_case "store_add accumulates" `Quick test_store_add;
        ] );
      ( "binding",
        [
          Alcotest.test_case "parameters" `Quick test_param_binding;
          Alcotest.test_case "missing binding" `Quick test_missing_binding;
          Alcotest.test_case "type errors" `Quick test_type_errors_rejected;
          Alcotest.test_case "outputs written in place" `Quick test_output_shared_inplace;
        ] );
    ]
