(* The pre-packaged operations library (Taco_ops). *)

module F = Taco_tensor.Format
module T = Taco_tensor.Tensor
module D = Taco_tensor.Dense
module Ops = Taco_ops.Ops

let dense_oracle_matmul b c =
  let bd = T.to_dense b and cd = T.to_dense c in
  let m = (T.dims b).(0) and kk = (T.dims b).(1) and n = (T.dims c).(1) in
  D.init [| m; n |] (fun coord ->
      let acc = ref 0. in
      for k = 0 to kk - 1 do
        acc := !acc +. (D.get bd [| coord.(0); k |] *. D.get cd [| k; coord.(1) |])
      done;
      !acc)

let test_matmul_sparse () =
  let b = Helpers.random_tensor 401 [| 8; 9 |] 0.25 F.csr in
  let c = Helpers.random_tensor 402 [| 9; 7 |] 0.25 F.csr in
  let r = Helpers.get (Ops.matmul b c) in
  Alcotest.(check bool) "sparse output by default" true
    (F.equal (T.format r) F.csr);
  Helpers.check_dense "values" (dense_oracle_matmul b c) (T.to_dense r)

let test_matmul_dense () =
  let b = T.of_dense (Taco_tensor.Gen.random_dense (Taco_support.Prng.create 403) [| 5; 6 |]) F.dense_matrix in
  let c = T.of_dense (Taco_tensor.Gen.random_dense (Taco_support.Prng.create 404) [| 6; 4 |]) F.dense_matrix in
  let r = Helpers.get (Ops.matmul b c) in
  Alcotest.(check bool) "dense output" true (F.equal (T.format r) F.dense_matrix);
  Helpers.check_dense "values" (dense_oracle_matmul b c) (T.to_dense r)

let test_matmul_mixed_and_cache () =
  (* Same formats twice: second call hits the kernel cache. *)
  let b = Helpers.random_tensor 405 [| 6; 6 |] 0.3 F.csr in
  let c = T.of_dense (Taco_tensor.Gen.random_dense (Taco_support.Prng.create 406) [| 6; 6 |]) F.dense_matrix in
  let r1 = Helpers.get (Ops.matmul b c) in
  let r2 = Helpers.get (Ops.matmul b c) in
  Helpers.check_dense "repeat call" (T.to_dense r1) (T.to_dense r2)

let test_matmul_dim_mismatch () =
  let b = T.zero [| 3; 4 |] F.csr and c = T.zero [| 5; 3 |] F.csr in
  match Ops.matmul b c with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dimension mismatch accepted"

let test_add_and_mul () =
  let b = Helpers.random_tensor 407 [| 7; 7 |] 0.3 F.csr in
  let c = Helpers.random_tensor 408 [| 7; 7 |] 0.3 F.csr in
  let sum = Helpers.get (Ops.add b c) in
  Helpers.check_dense "add" (D.map2 ( +. ) (T.to_dense b) (T.to_dense c)) (T.to_dense sum);
  let prod = Helpers.get (Ops.mul b c) in
  Helpers.check_dense "hadamard" (D.map2 ( *. ) (T.to_dense b) (T.to_dense c)) (T.to_dense prod)

let test_spmv () =
  let b = Helpers.random_tensor 409 [| 9; 6 |] 0.3 F.csr in
  let x = Helpers.random_tensor 410 [| 6 |] 1.0 F.dense_vector in
  let y = Helpers.get (Ops.spmv b x) in
  let expected =
    D.init [| 9 |] (fun c ->
        let acc = ref 0. in
        for j = 0 to 5 do
          acc := !acc +. (T.get b [| c.(0); j |] *. T.get x [| j |])
        done;
        !acc)
  in
  Helpers.check_dense "spmv" expected (T.to_dense y)

let test_scale () =
  let b = Helpers.random_tensor 411 [| 5; 5 |] 0.4 F.csr in
  let r = Helpers.get (Ops.scale 2.5 b) in
  Alcotest.(check bool) "format preserved" true (F.equal (T.format r) F.csr);
  let expected = D.map2 (fun v _ -> 2.5 *. v) (T.to_dense b) (T.to_dense b) in
  Helpers.check_dense "scaled" expected (T.to_dense r)

let test_inner () =
  let a = Helpers.random_tensor 412 [| 6; 7 |] 0.4 F.csr in
  let b = Helpers.random_tensor 413 [| 6; 7 |] 0.4 F.csr in
  let got = Helpers.get (Ops.inner a b) in
  let expected = ref 0. in
  D.iteri (fun c v -> expected := !expected +. (v *. D.get (T.to_dense b) c)) (T.to_dense a);
  Alcotest.(check (float 1e-9)) "inner product" !expected got

let test_inner_vectors () =
  let a = Helpers.random_tensor 414 [| 40 |] 0.3 F.sparse_vector in
  let b = Helpers.random_tensor 415 [| 40 |] 0.3 F.sparse_vector in
  let got = Helpers.get (Ops.inner a b) in
  let expected = ref 0. in
  D.iteri (fun c v -> expected := !expected +. (v *. D.get (T.to_dense b) c)) (T.to_dense a);
  Alcotest.(check (float 1e-9)) "sparse-sparse dot" !expected got

let test_mttkrp () =
  let x = Helpers.random_tensor 416 [| 6; 5; 7 |] 0.1 (F.csf 3) in
  let c = T.of_dense (Taco_tensor.Gen.random_dense (Taco_support.Prng.create 417) [| 7; 4 |]) F.dense_matrix in
  let d = T.of_dense (Taco_tensor.Gen.random_dense (Taco_support.Prng.create 418) [| 5; 4 |]) F.dense_matrix in
  let r = Helpers.get (Ops.mttkrp x c d) in
  let oracle = Taco_kernels.Mttkrp.reference x (T.to_dense c) (T.to_dense d) in
  Helpers.check_dense "mttkrp" oracle (T.to_dense r)

let test_sddmm () =
  let b = Helpers.random_tensor 419 [| 8; 9 |] 0.2 F.csr in
  let c = T.of_dense (Taco_tensor.Gen.random_dense (Taco_support.Prng.create 420) [| 8; 5 |]) F.dense_matrix in
  let d = T.of_dense (Taco_tensor.Gen.random_dense (Taco_support.Prng.create 421) [| 5; 9 |]) F.dense_matrix in
  let r = Helpers.get (Ops.sddmm b c d) in
  Alcotest.(check bool) "sparse output" true (F.equal (T.format r) F.csr);
  let cd = T.to_dense c and dd = T.to_dense d in
  let expected =
    D.init [| 8; 9 |] (fun coord ->
        let bv = T.get b [| coord.(0); coord.(1) |] in
        if bv = 0. then 0.
        else begin
          let acc = ref 0. in
          for k = 0 to 4 do
            acc := !acc +. (D.get cd [| coord.(0); k |] *. D.get dd [| k; coord.(1) |])
          done;
          bv *. !acc
        end)
  in
  Helpers.check_dense "sddmm values" expected (T.to_dense r)

let test_transpose () =
  let b = Helpers.random_tensor 422 [| 4; 7 |] 0.3 F.csr in
  let bt = Ops.transpose b in
  Alcotest.(check (array int)) "dims swapped" [| 7; 4 |] (T.dims bt);
  D.iteri
    (fun c v ->
      if T.get bt [| c.(1); c.(0) |] <> v then Alcotest.fail "transpose value mismatch")
    (T.to_dense b)

let test_chained_expression () =
  (* (B·C + D)ᵀ·x through the ops API. *)
  let b = Helpers.random_tensor 423 [| 6; 6 |] 0.3 F.csr in
  let c = Helpers.random_tensor 424 [| 6; 6 |] 0.3 F.csr in
  let d = Helpers.random_tensor 425 [| 6; 6 |] 0.3 F.csr in
  let x = Helpers.random_tensor 426 [| 6 |] 1.0 F.dense_vector in
  let bc = Helpers.get (Ops.matmul b c) in
  let s = Helpers.get (Ops.add bc d) in
  let st = Ops.transpose s in
  let y = Helpers.get (Ops.spmv st x) in
  (* oracle *)
  let sd = D.map2 ( +. ) (dense_oracle_matmul b c) (T.to_dense d) in
  let expected =
    D.init [| 6 |] (fun cc ->
        let acc = ref 0. in
        for i = 0 to 5 do
          acc := !acc +. (D.get sd [| i; cc.(0) |] *. T.get x [| i |])
        done;
        !acc)
  in
  Helpers.check_dense "chained expression" expected (T.to_dense y)

let () =
  Alcotest.run "ops"
    [
      ( "matmul",
        [
          Alcotest.test_case "sparse" `Quick test_matmul_sparse;
          Alcotest.test_case "dense" `Quick test_matmul_dense;
          Alcotest.test_case "mixed + cache" `Quick test_matmul_mixed_and_cache;
          Alcotest.test_case "dimension mismatch" `Quick test_matmul_dim_mismatch;
        ] );
      ( "elementwise",
        [
          Alcotest.test_case "add and hadamard" `Quick test_add_and_mul;
          Alcotest.test_case "scale" `Quick test_scale;
        ] );
      ( "contractions",
        [
          Alcotest.test_case "spmv" `Quick test_spmv;
          Alcotest.test_case "inner (matrices)" `Quick test_inner;
          Alcotest.test_case "inner (sparse vectors)" `Quick test_inner_vectors;
          Alcotest.test_case "mttkrp" `Quick test_mttkrp;
          Alcotest.test_case "sddmm" `Quick test_sddmm;
        ] );
      ( "structure",
        [
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "chained expression" `Quick test_chained_expression;
        ] );
    ]
